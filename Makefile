# Convenience targets for the bounded polynomial randomized consensus repo.

GO ?= go

.PHONY: all build test test-race test-short bench experiments experiments-quick fuzz vet fmt clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 1200s ./...

test-race:
	$(GO) test -race -timeout 1800s ./...

test-short:
	$(GO) test -short -timeout 600s ./...

bench:
	$(GO) test -bench=. -benchmem -timeout 3600s ./...

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Run each fuzz target briefly (extend -fuzztime for deeper exploration).
fuzz:
	$(GO) test -fuzz FuzzShrinkNormalize -fuzztime 30s ./internal/strip/
	$(GO) test -fuzz FuzzGameCounterEquivalence -fuzztime 30s ./internal/strip/
	$(GO) test -fuzz FuzzEdgeFromCounters -fuzztime 30s ./internal/strip/

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
