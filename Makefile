# Convenience targets for the bounded polynomial randomized consensus repo.

GO ?= go

.PHONY: all ci build test test-race test-short bench bench-json bench-check live-smoke prof-smoke space-smoke native-smoke dispatch-smoke tail-smoke native-stress experiments experiments-quick fuzz vet fmt fmt-check clean

all: vet test build

# ci is the full gate: formatting, vet, build, tests, a short -race pass
# over the whole module (the batch engine fans instances over a worker pool,
# and the -race pass drives the dispatch engine's equivalence suite, so the
# direct-dispatch run loop is race-checked on every CI run — including the
# audit monitor's probe paths), a benchmark smoke pass (compile + a short run
# of the solve and scheduler-engine microbenchmarks, catching benchmarks
# broken by refactors), an audit smoke pass (every protocol under the online
# invariant monitor with sampled probes escalated; consensus-sim exits
# non-zero if any probe fires), the live-telemetry smoke test, and a
# benchdiff self-compare to keep the regression gate runnable, and the
# profiler smoke pass (one profiled seed per protocol, Perfetto validation,
# and the traceview -prof golden), the space-accounting smoke pass (every
# protocol metered, the bounded protocol's static payload bounds enforced,
# and the traceview -space golden), and the native-substrate smoke test (every
# protocol on real goroutines + lock-free registers with the audit monitor as
# the online correctness oracle), and the commuting-dispatch smoke test
# (every protocol under both dispatch modes with the monitor escalated, a
# seed-determinism check, the native+commuting rejection, and a capped n=32
# commuting workload), and the tail-latency smoke test (a metered batch with
# straggler digest + deterministic replay, bundle completeness, the traceview
# -tail views, and the live /timeseries + /stream SSE feed). The -short -race
# pass is also the native race lane: it
# drives the substrate conformance suite and the native preemption stress
# sweep (GOMAXPROCS x randomized yields), so the lock-free register stack is
# race-checked on every CI run — and the commuting engine's replay
# equivalence suite, so the batched grant path is race-checked too.
ci: fmt-check vet build test
	$(GO) test -short -race -timeout 900s ./...
	$(GO) test -run XXX_none -bench 'BenchmarkSolveObservability|BenchmarkSolveDispatch|BenchmarkDispatch|BenchmarkRendezvous' -benchtime 0.2s -timeout 600s . ./internal/sched/
	for alg in bounded aspnes-herlihy local-coin strong-coin abrahamson anonymous; do \
		$(GO) run ./cmd/consensus-sim -alg $$alg -inputs 0,1,1,0 -schedule random -seed 42 -audit -audit-sample 1 >/dev/null || exit 1; \
	done
	./scripts/live_smoke.sh
	./scripts/prof_smoke.sh
	./scripts/space_smoke.sh
	./scripts/native_smoke.sh
	./scripts/dispatch_smoke.sh
	./scripts/tail_smoke.sh
	$(GO) run ./cmd/benchdiff BENCH_batch.json BENCH_batch.json

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 1200s ./...

test-race:
	$(GO) test -race -timeout 1800s ./...

test-short:
	$(GO) test -short -timeout 600s ./...

bench:
	$(GO) test -bench=. -benchmem -timeout 3600s ./...

# bench-json emits the machine-readable batch benchmark artifact (schema in
# DESIGN.md): the standard workload matrix ({bounded, aspnes-herlihy} x
# {n=4, n=8, n=16, n=32} x {simulated, native} plus the commuting-dispatch
# rows, the K/M space-time frontier rows and the anonymous variant), each
# entry carrying throughput, the step distribution, the merged metrics
# snapshot, derived ratios, the phase histograms, the space-accounting
# block (peak/live registers, words, per-layer bits) that benchdiff's space
# gates compare, and the wall-clock latency block (quantiles + straggler
# digests + environment stamp) behind benchdiff's p99 tail gate and the
# traceview -tail view. The substrate, dispatch mode and K/M knobs are part of each
# workload's key, so benchdiff never pair-compares a native row against a
# simulated one, a commuting row against a sequential one, or across knobs.
bench-json:
	$(GO) run ./cmd/consensus-load -matrix -seed 42 -json > BENCH_batch.json
	@echo "wrote BENCH_batch.json"

# bench-check regenerates the benchmark under the committed artifact's exact
# workload matrix and diffs it against BENCH_batch.json with the default
# thresholds; exits nonzero on a throughput, step-distribution, or phase-mean
# regression in any workload.
bench-check:
	$(GO) run ./cmd/consensus-load -matrix -seed 42 -json > BENCH_batch.new.json
	$(GO) run ./cmd/benchdiff BENCH_batch.json BENCH_batch.new.json
	@rm -f BENCH_batch.new.json

live-smoke:
	./scripts/live_smoke.sh

prof-smoke:
	./scripts/prof_smoke.sh

space-smoke:
	./scripts/space_smoke.sh

native-smoke:
	./scripts/native_smoke.sh

dispatch-smoke:
	./scripts/dispatch_smoke.sh

tail-smoke:
	./scripts/tail_smoke.sh

# native-stress is the full (non -short) race-checked native sweep: the
# substrate conformance suite plus the preemption/crash stress matrices.
native-stress:
	$(GO) test -race -timeout 1800s -run 'TestNative|TestSubstrateConformance' . ./internal/core/ ./internal/conformance/

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Run each fuzz target briefly (extend -fuzztime for deeper exploration).
fuzz:
	$(GO) test -fuzz FuzzShrinkNormalize -fuzztime 30s ./internal/strip/
	$(GO) test -fuzz FuzzGameCounterEquivalence -fuzztime 30s ./internal/strip/
	$(GO) test -fuzz FuzzEdgeFromCounters -fuzztime 30s ./internal/strip/
	$(GO) test -fuzz FuzzParseEvent -fuzztime 30s ./internal/obs/
	$(GO) test -fuzz FuzzAuditDump -fuzztime 30s ./internal/obs/audit/
	$(GO) test -fuzz FuzzProfReport -fuzztime 30s ./internal/obs/prof/
	$(GO) test -fuzz FuzzParseUsage -fuzztime 30s ./internal/obs/space/
	$(GO) test -fuzz FuzzCommutingGrant -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzTimeseriesDelta -fuzztime 30s ./internal/obs/tail/

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# fmt-check fails (listing the offending files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

clean:
	$(GO) clean ./...
