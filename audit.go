package consensus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/dsrepro/consensus/internal/obs/audit"
)

// This file is the single source of truth for the dump ↔ Config mapping: a
// flight dump's RunInfo header carries everything needed to rebuild the
// exact run, and ReplayConfig inverts it. cmd/consensus-audit uses the pair
// for deterministic post-mortem replay.

// runInfoFor encodes an effective Config as the self-describing replay
// header stamped into flight dumps. instance is the batch instance index (-1
// for a single Solve run); batchSeed is the batch-level seed instance seeds
// derive from (0 for single runs).
func runInfoFor(cfg Config, alg Algorithm, instance int, batchSeed int64) audit.RunInfo {
	var replayable *bool
	substrate := ""
	if cfg.Substrate == NativeSubstrate {
		// Native interleavings are chosen by the hardware, not the seed: the
		// dump documents the failure but cannot re-derive the schedule.
		substrate = "native"
		f := false
		replayable = &f
	}
	dispatch := ""
	if cfg.ParallelDispatch {
		dispatch = "commuting"
	}
	return audit.RunInfo{
		Algorithm:  alg.String(),
		N:          len(cfg.Inputs),
		Seed:       cfg.Seed,
		Instance:   instance,
		BatchSeed:  batchSeed,
		Inputs:     append([]int(nil), cfg.Inputs...),
		Schedule:   scheduleString(cfg.Schedule),
		Crash:      crashString(cfg.Schedule.CrashAt),
		K:          cfg.K,
		B:          cfg.B,
		M:          cfg.M,
		Memory:     memoryString(cfg.Memory),
		Bloom:      cfg.UseBloomArrows,
		FastPath:   cfg.FastDecide,
		MaxSteps:   cfg.MaxSteps,
		Mutation:   audit.ActiveMutation(),
		Substrate:  substrate,
		Dispatch:   dispatch,
		Replayable: replayable,
	}
}

// ReplayConfig inverts a flight dump's RunInfo back into a Config that
// replays the dumped instance deterministically, with auditing enabled and
// every sampled probe escalated to run at each opportunity (SampleEvery 1).
// The caller is responsible for re-enabling info.Mutation (see
// audit.EnableMutation) when the dump came from a fault-injected run, and
// for attaching trace surfaces before Solve.
func ReplayConfig(info audit.RunInfo) (Config, error) {
	if !info.IsReplayable() {
		return Config{}, fmt.Errorf("consensus: dump from the %s substrate is not replayable (the interleaving was chosen by the hardware, not the seed)", info.Substrate)
	}
	alg, err := algorithmForName(info.Algorithm)
	if err != nil {
		return Config{}, err
	}
	schedule, err := parseScheduleString(info.Schedule)
	if err != nil {
		return Config{}, err
	}
	schedule.CrashAt, err = parseCrashString(info.Crash)
	if err != nil {
		return Config{}, err
	}
	mem, err := memoryForName(info.Memory)
	if err != nil {
		return Config{}, err
	}
	if len(info.Inputs) == 0 {
		return Config{}, fmt.Errorf("consensus: replay info has no inputs")
	}
	if info.N != 0 && info.N != len(info.Inputs) {
		return Config{}, fmt.Errorf("consensus: replay info n=%d but %d inputs", info.N, len(info.Inputs))
	}
	if info.Dispatch != "" && info.Dispatch != "sequential" && info.Dispatch != "commuting" {
		return Config{}, fmt.Errorf("consensus: unknown dispatch mode %q", info.Dispatch)
	}
	return Config{
		Inputs:           append([]int(nil), info.Inputs...),
		Algorithm:        alg,
		Seed:             info.Seed,
		Schedule:         schedule,
		MaxSteps:         info.MaxSteps,
		K:                info.K,
		B:                info.B,
		M:                info.M,
		Memory:           mem,
		UseBloomArrows:   info.Bloom,
		FastDecide:       info.FastPath,
		ParallelDispatch: info.Dispatch == "commuting",
		Audit:            true,
		AuditSampleEvery: 1,
	}, nil
}

// algorithmForName inverts Algorithm.String.
func algorithmForName(name string) (Algorithm, error) {
	for _, a := range []Algorithm{Bounded, AspnesHerlihy, LocalCoin, StrongCoin, Abrahamson, Anonymous} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("consensus: unknown algorithm %q", name)
}

// memoryString encodes a MemoryKind for RunInfo ("" = default arrow).
func memoryString(m MemoryKind) string {
	switch m {
	case 0, ArrowMemory:
		return "arrow"
	case SeqSnapMemory:
		return "seqsnap"
	case WaitFreeMemory:
		return "waitfree"
	default:
		return fmt.Sprintf("memory-%d", int(m))
	}
}

// memoryForName inverts memoryString ("" picks the default).
func memoryForName(name string) (MemoryKind, error) {
	switch name {
	case "", "arrow":
		return ArrowMemory, nil
	case "seqsnap":
		return SeqSnapMemory, nil
	case "waitfree":
		return WaitFreeMemory, nil
	default:
		return 0, fmt.Errorf("consensus: unknown memory kind %q", name)
	}
}

// scheduleString encodes a Schedule's kind (crashes are carried separately
// by crashString).
func scheduleString(s Schedule) string {
	switch s.Kind {
	case 0, RoundRobin:
		return "round-robin"
	case RandomSchedule:
		return "random"
	case LaggerSchedule:
		return fmt.Sprintf("lagger:%d:%d", s.Victim, s.Period)
	default:
		return fmt.Sprintf("kind-%d", int(s.Kind))
	}
}

// parseScheduleString inverts scheduleString ("" picks the default).
func parseScheduleString(str string) (Schedule, error) {
	switch {
	case str == "" || str == "round-robin":
		return Schedule{Kind: RoundRobin}, nil
	case str == "random":
		return Schedule{Kind: RandomSchedule}, nil
	case strings.HasPrefix(str, "lagger:"):
		parts := strings.Split(str, ":")
		if len(parts) != 3 {
			return Schedule{}, fmt.Errorf("consensus: bad lagger schedule %q (want lagger:victim:period)", str)
		}
		victim, err := strconv.Atoi(parts[1])
		if err != nil {
			return Schedule{}, fmt.Errorf("consensus: bad lagger victim in %q: %w", str, err)
		}
		period, err := strconv.Atoi(parts[2])
		if err != nil {
			return Schedule{}, fmt.Errorf("consensus: bad lagger period in %q: %w", str, err)
		}
		return Schedule{Kind: LaggerSchedule, Victim: victim, Period: period}, nil
	default:
		return Schedule{}, fmt.Errorf("consensus: unknown schedule %q", str)
	}
}

// crashString encodes a CrashAt map as "pid@step,pid@step", sorted by pid so
// the encoding is deterministic.
func crashString(crashAt map[int]int64) string {
	if len(crashAt) == 0 {
		return ""
	}
	pids := make([]int, 0, len(crashAt))
	for pid := range crashAt {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	parts := make([]string, len(pids))
	for i, pid := range pids {
		parts[i] = fmt.Sprintf("%d@%d", pid, crashAt[pid])
	}
	return strings.Join(parts, ",")
}

// parseCrashString inverts crashString ("" means no crashes).
func parseCrashString(str string) (map[int]int64, error) {
	if str == "" {
		return nil, nil
	}
	out := make(map[int]int64)
	for _, part := range strings.Split(str, ",") {
		pidStr, stepStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("consensus: bad crash spec %q (want pid@step)", part)
		}
		pid, err := strconv.Atoi(pidStr)
		if err != nil {
			return nil, fmt.Errorf("consensus: bad crash pid in %q: %w", part, err)
		}
		step, err := strconv.ParseInt(stepStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("consensus: bad crash step in %q: %w", part, err)
		}
		out[pid] = step
	}
	return out, nil
}
