package consensus

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/dsrepro/consensus/internal/obs/audit"
)

// TestAuditCleanAllAlgorithms runs every protocol with the monitor on and
// checks (a) no probe fires on a healthy execution and (b) the audited run's
// decision and step count are byte-identical to the unaudited run — probes
// are passive: they take no scheduler steps and consume no process
// randomness.
func TestAuditCleanAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Bounded, AspnesHerlihy, LocalCoin, StrongCoin, Abrahamson} {
		cfg := Config{
			Inputs:    []int{0, 1, 1, 0},
			Algorithm: alg,
			Seed:      11,
			Schedule:  Schedule{Kind: RandomSchedule},
			MaxSteps:  20_000_000,
		}
		plain, err := Solve(cfg)
		if err != nil {
			t.Fatalf("%v: unaudited: %v", alg, err)
		}
		cfg.Audit = true
		cfg.AuditSampleEvery = 1 // every sampled probe at every opportunity
		audited, err := Solve(cfg)
		if err != nil {
			t.Fatalf("%v: audited: %v", alg, err)
		}
		if len(audited.Violations) > 0 {
			t.Fatalf("%v: healthy run reported violations: %v", alg, audited.Violations)
		}
		if audited.Value != plain.Value || audited.Steps != plain.Steps {
			t.Fatalf("%v: audit changed the run: (%d,%d) vs (%d,%d)",
				alg, audited.Value, audited.Steps, plain.Value, plain.Steps)
		}
	}
}

// Mutation recipes: each runtime fault hook paired with a config whose
// execution provably trips the matching probe (seeds found empirically;
// deterministic thereafter).
var mutationRecipes = []struct {
	mutation string
	probe    string
	cfg      Config
}{
	// Double-applied walk move with saturation skipped: a counter at ±M jumps
	// to ±(M+2). Needs a small explicit M so counters actually reach the bound.
	{"walk.unclamped", "coin.range", Config{
		Inputs: []int{0, 1, 1, 0}, Seed: 1, M: 8, MaxSteps: 20_000_000,
	}},
	// Un-reduced strip counter (wrap without Mod3K): every moved row entry
	// escapes {0..3K-1} immediately, on any execution that advances a round.
	{"strip.skipmod", "strip.range", Config{
		Inputs: []int{0, 1, 1, 0}, Seed: 1, Schedule: Schedule{Kind: RandomSchedule},
		MaxSteps: 20_000_000,
	}},
	// Torn double collect returned as clean: the handshake audit re-compares
	// the two collects' toggles. AspnesHerlihy tolerates torn views enough to
	// keep running (the bounded protocols can panic decoding them).
	{"scan.torn", "scan.handshake", Config{
		Inputs: []int{0, 1, 1, 0}, Algorithm: AspnesHerlihy, Seed: 1,
		Schedule: Schedule{Kind: RandomSchedule}, MaxSteps: 20_000_000,
	}},
}

// TestMutationsFireProbes injects each runtime fault and asserts the paired
// probe fires — the monitor's end-to-end detection test. Each recipe also
// exercises the flight recorder: a dump file lands in the audit dir and
// replays to the same violation via ReplayConfig.
func TestMutationsFireProbes(t *testing.T) {
	for _, rec := range mutationRecipes {
		t.Run(rec.mutation, func(t *testing.T) {
			dir := t.TempDir()
			if err := audit.EnableMutation(rec.mutation); err != nil {
				t.Fatal(err)
			}
			defer audit.DisableAll()
			cfg := rec.cfg
			cfg.Audit = true
			cfg.AuditDumpDir = dir
			res, err := Solve(cfg)
			if err != nil {
				t.Fatalf("Solve under %s: %v", rec.mutation, err)
			}
			if res.Violations[rec.probe] == 0 {
				t.Fatalf("%s did not fire %s: violations = %v", rec.mutation, rec.probe, res.Violations)
			}
			if len(res.AuditDumps) == 0 {
				t.Fatalf("%s produced no flight dumps", rec.mutation)
			}

			// Post-mortem loop: the dump's RunInfo header must rebuild a config
			// that reproduces the violation deterministically.
			d, err := audit.ReadDumpFile(res.AuditDumps[0])
			if err != nil {
				t.Fatal(err)
			}
			if d.Probe != rec.probe {
				t.Fatalf("dump probe = %q, want %q", d.Probe, rec.probe)
			}
			if d.Info.Mutation != rec.mutation {
				t.Fatalf("dump mutation = %q, want %q", d.Info.Mutation, rec.mutation)
			}
			replayCfg, err := ReplayConfig(d.Info)
			if err != nil {
				t.Fatal(err)
			}
			replay, err := Solve(replayCfg)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if replay.Violations[rec.probe] != res.Violations[rec.probe] {
				t.Fatalf("replay violations[%s] = %d, original run had %d",
					rec.probe, replay.Violations[rec.probe], res.Violations[rec.probe])
			}
		})
	}
}

// TestMutationsOffByDefault locks the zero-cost default: with no mutation
// enabled, the recipes above run violation-free.
func TestMutationsOffByDefault(t *testing.T) {
	if active := audit.ActiveMutation(); active != "" {
		t.Fatalf("mutation %q enabled at test start", active)
	}
	for _, rec := range mutationRecipes {
		cfg := rec.cfg
		cfg.Audit = true
		res, err := Solve(cfg)
		if err != nil {
			t.Fatalf("%s recipe config failed clean: %v", rec.mutation, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("%s recipe config violated without the fault: %v", rec.mutation, res.Violations)
		}
	}
}

// TestReplayConfigRoundTrip checks runInfoFor and ReplayConfig are inverses
// over the encodable schedule/crash/memory space.
func TestReplayConfigRoundTrip(t *testing.T) {
	cfgs := []Config{
		{Inputs: []int{0, 1}, Seed: 3},
		{Inputs: []int{1, 0, 1}, Algorithm: StrongCoin, Seed: 9,
			Schedule: Schedule{Kind: RandomSchedule}, Memory: SeqSnapMemory, MaxSteps: 1000},
		{Inputs: []int{0, 1, 1, 0}, Algorithm: Abrahamson, Seed: -4,
			Schedule: Schedule{Kind: LaggerSchedule, Victim: 2, Period: 64},
			Memory:   WaitFreeMemory, K: 3, B: 2, M: 99, UseBloomArrows: true, FastDecide: true},
		{Inputs: []int{1, 1, 0}, Algorithm: AspnesHerlihy, Seed: 7,
			Schedule: Schedule{Kind: RandomSchedule, CrashAt: map[int]int64{2: 500, 0: 40}}},
	}
	for _, cfg := range cfgs {
		alg := cfg.Algorithm
		if alg == 0 {
			alg = Bounded
		}
		info := runInfoFor(cfg, alg, -1, 0)
		got, err := ReplayConfig(info)
		if err != nil {
			t.Fatalf("ReplayConfig(%+v): %v", info, err)
		}
		if !got.Audit || got.AuditSampleEvery != 1 {
			t.Fatalf("replay config not escalated: %+v", got)
		}
		// Normalize the fields ReplayConfig intentionally sets or canonicalizes
		// before comparing against the original.
		got.Audit, got.AuditSampleEvery = false, 0
		want := cfg
		want.Algorithm = alg
		if want.Memory == 0 {
			want.Memory = ArrowMemory
		}
		if want.Schedule.Kind == 0 {
			want.Schedule.Kind = RoundRobin
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestReplayConfigRejectsBadInfo(t *testing.T) {
	for _, info := range []audit.RunInfo{
		{Algorithm: "bounded"},                                           // no inputs
		{Algorithm: "nope", Inputs: []int{0}},                            // unknown algorithm
		{Algorithm: "bounded", Inputs: []int{0, 1}, N: 3},                // n mismatch
		{Algorithm: "bounded", Inputs: []int{0}, Schedule: "warp"},       // unknown schedule
		{Algorithm: "bounded", Inputs: []int{0}, Schedule: "lagger:x:2"}, // bad lagger
		{Algorithm: "bounded", Inputs: []int{0}, Crash: "1-2"},           // bad crash spec
		{Algorithm: "bounded", Inputs: []int{0}, Memory: "tape"},         // unknown memory
	} {
		if _, err := ReplayConfig(info); err == nil {
			t.Fatalf("ReplayConfig(%+v) accepted bad info", info)
		}
	}
}

// TestBatchAuditDeterministicAcrossParallel runs an audited fault-injected
// batch at Parallel 1 and 4: merged violation counts, truncations and the
// dump-file list (instance order) must be identical.
func TestBatchAuditDeterministicAcrossParallel(t *testing.T) {
	if err := audit.EnableMutation("strip.skipmod"); err != nil {
		t.Fatal(err)
	}
	defer audit.DisableAll()
	run := func(parallel int) BatchResult {
		dir := t.TempDir()
		res, err := SolveBatch(BatchConfig{
			Instances: 8,
			Parallel:  parallel,
			Seed:      21,
			Base: Config{
				Inputs:       []int{0, 1, 1, 0},
				Schedule:     Schedule{Kind: RandomSchedule},
				MaxSteps:     20_000_000,
				Audit:        true,
				AuditDumpDir: dir,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Dump paths embed the per-run temp dir; compare basenames only.
		for i, p := range res.AuditDumps {
			res.AuditDumps[i] = filepath.Base(p)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	if serial.ErrCount != 0 {
		t.Fatalf("batch errors: %v", serial.Errors)
	}
	if len(serial.Violations) == 0 {
		t.Fatal("fault-injected batch reported no violations")
	}
	if !reflect.DeepEqual(serial.Violations, parallel.Violations) {
		t.Fatalf("violations diverged across Parallel: %v vs %v", serial.Violations, parallel.Violations)
	}
	if serial.Truncations != parallel.Truncations {
		t.Fatalf("truncations diverged: %d vs %d", serial.Truncations, parallel.Truncations)
	}
	if !reflect.DeepEqual(serial.AuditDumps, parallel.AuditDumps) {
		t.Fatalf("dump lists diverged:\n %v\n %v", serial.AuditDumps, parallel.AuditDumps)
	}
	if !reflect.DeepEqual(serial.Decisions, parallel.Decisions) ||
		!reflect.DeepEqual(serial.Steps, parallel.Steps) {
		t.Fatal("batch outcomes diverged across Parallel")
	}
}

// TestAuditDumpFilesOnDisk checks the dump naming contract under DumpDir:
// audit-i<instance>-<probe>-<seq>.jsonl, parseable by ReadDumpFile.
func TestAuditDumpFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	if err := audit.EnableMutation("walk.unclamped"); err != nil {
		t.Fatal(err)
	}
	defer audit.DisableAll()
	res, err := Solve(Config{
		Inputs: []int{0, 1, 1, 0}, Seed: 1, M: 8, MaxSteps: 20_000_000,
		Audit: true, AuditDumpDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AuditDumps) == 0 {
		t.Fatal("no dumps written")
	}
	want := filepath.Join(dir, "audit-i0-coin.range-0.jsonl")
	if res.AuditDumps[0] != want {
		t.Fatalf("dump path = %q, want %q", res.AuditDumps[0], want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatal(err)
	}
	d, err := audit.ReadDumpFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if d.Info.Algorithm != "bounded" || d.Info.M != 8 || len(d.Events) == 0 {
		t.Fatalf("dump = %+v", d)
	}
}
