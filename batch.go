package consensus

import (
	"fmt"
	"math"
	"sort"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/obs/tail"
)

// InstanceSeed derives the seed of batch instance k from the batch seed. The
// derivation (a splitmix64 mix) depends only on (batchSeed, k), so
// Solve(cfg with Seed: InstanceSeed(s, k)) reproduces exactly what instance k
// of SolveBatch with Seed s computed — regardless of worker count or
// completion order.
func InstanceSeed(batchSeed int64, k int) int64 {
	return core.InstanceSeed(batchSeed, k)
}

// BatchConfig configures SolveBatch: M independent consensus instances fanned
// over a worker pool.
type BatchConfig struct {
	// Instances is the number of independent runs. Required.
	Instances int

	// Base is the configuration template every instance starts from. Its Seed
	// is ignored (instance k runs with InstanceSeed(Seed, k)) and its trace
	// surfaces (TraceWriter, TraceJSONL, Recorder) must be nil — per-event
	// recording from concurrent workers would interleave streams; trace a
	// single instance with Solve instead.
	Base Config

	// Seed is the batch seed all instance seeds derive from.
	Seed int64

	// Parallel is the worker count: 0 means GOMAXPROCS, 1 runs serially on
	// the calling goroutine. Results are identical at any setting.
	Parallel int

	// PerInstance, if non-nil, customizes instance k's config after seeding
	// and before the batch starts (e.g. vary inputs or schedule per instance).
	// It is called serially in instance order, so customization cannot depend
	// on scheduling either.
	PerInstance func(k int, cfg *Config)

	// Sink, if non-nil, replaces the batch's private metrics sink: every
	// instance reports into its registry, so a live telemetry server holding
	// the same sink sees the counters move while the batch runs. A recorder
	// on the sink receives events from all workers with no ordering guarantee
	// between instances — use a self-synchronizing recorder such as obs.Ring,
	// and treat it as a debugging tail, not a faithful trace. The registry
	// path stays deterministic regardless (atomic sums and maxes commute).
	Sink *obs.Sink

	// Progress, if non-nil, is re-armed for this batch and updated as
	// instances start and finish — the probe behind the live server's
	// consensus_batch_* gauges. Reporting-only; results are unaffected.
	Progress *obs.BatchProgress

	// Stragglers, when > 0, keeps a digest of the k slowest instances by
	// wall-clock latency in BatchResult.Stragglers — seed, latency, step
	// count and decision per entry, everything needed to replay the instance
	// deterministically with full instrumentation (see ReplayStraggler). The
	// digest is computed after the batch from the per-instance latencies, so
	// it never affects execution.
	Stragglers int
}

// BatchResult aggregates a batch: per-instance decisions, step counts and
// errors, plus the merged cross-layer metrics registry of all instances.
type BatchResult struct {
	// Decisions[k] is instance k's agreed value, or -1 if it did not decide.
	Decisions []int
	// Steps[k] is instance k's total atomic shared-memory steps.
	Steps []int64
	// Errors[k] is instance k's error (setup, ErrStepBudget/ErrStalled, or a
	// consistency violation), nil for a clean run.
	Errors []error
	// ErrCount is the number of non-nil entries in Errors.
	ErrCount int

	// Latencies[k] is instance k's wall-clock solve latency in nanoseconds,
	// measured on the monotonic clock around the instance's execution. Always
	// populated (the measurement is observation-only and free); unlike every
	// other per-instance column it is NOT deterministic — re-running the
	// batch measures different values. Summarize with LatencySummary.
	Latencies []int64
	// Stragglers digests the BatchConfig.Stragglers slowest instances,
	// slowest first (latency ties break toward the lower index). Nil when the
	// knob is 0. Each entry replays deterministically via ReplayStraggler.
	Stragglers []tail.Straggler

	// Counters and Gauges merge the observability registries of every
	// instance (event counts sum; gauges take the batch-wide maximum).
	Counters map[string]int64
	Gauges   map[string]int64
	// Hists holds the merged histograms; "core.steps_to_decide" aggregates
	// per-process steps-to-decision across the whole batch.
	Hists map[string]obs.HistSnapshot
	// Matrices holds the merged matrix-valued metrics when Base.Profile is
	// set: "prof.blame" and "prof.contention", summed element-wise across
	// instances in instance order (deterministic at any Parallel). Nil when
	// profiling is off.
	Matrices map[string]obs.MatrixSnapshot

	// Space is the batch-wide space-accounting report when Base.Space is set:
	// per-instance usages combined with space.Merge (an element-wise max), in
	// instance order — deterministic at any Parallel, since max commutes. Nil
	// when metering is off.
	Space *space.Usage

	// Violations sums invariant-probe firings by probe name across every
	// instance when Base.Audit is set; nil when auditing is off or the batch
	// was clean. Instance attribution is in the dumps (AuditDumps).
	Violations map[string]int64
	// Truncations sums coin-counter saturations across the batch.
	Truncations int64
	// AuditDumps lists every flight-recorder dump file written under
	// Base.AuditDumpDir, in instance order (deterministic at any Parallel).
	AuditDumps []string
}

// LatencySummary summarizes the per-instance wall-clock latencies with exact
// nearest-rank quantiles (p50/p90/p99/p999), the distribution behind the
// bench artifact's latency block.
func (r BatchResult) LatencySummary() tail.Summary {
	return tail.Summarize(r.Latencies)
}

// StepsPercentile returns the exact nearest-rank p-th percentile (0 < p <=
// 100) of the per-instance step totals, or 0 for an empty batch.
func (r BatchResult) StepsPercentile(p float64) int64 {
	if len(r.Steps) == 0 {
		return 0
	}
	s := append([]int64(nil), r.Steps...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// SolveBatch runs cfg.Instances independent consensus instances over a pool
// of cfg.Parallel workers and aggregates the outcomes. Each worker owns an
// arena of pooled protocol state, so consecutive same-shaped instances reuse
// one register fabric instead of reallocating it.
//
// The returned error reports configuration problems only; per-instance
// failures (step budget, stalls) land in BatchResult.Errors.
func SolveBatch(cfg BatchConfig) (BatchResult, error) {
	if cfg.Instances < 1 {
		return BatchResult{}, fmt.Errorf("consensus: BatchConfig.Instances must be >= 1, got %d", cfg.Instances)
	}
	instances := make([]core.Instance, cfg.Instances)
	var mons []*audit.Monitor  // indexed by instance; nil when auditing is off
	var profs []*prof.Profiler // indexed by instance; nil when profiling is off
	var meters []*space.Meter  // indexed by instance; nil when metering is off
	for k := range instances {
		c := cfg.Base
		c.Seed = InstanceSeed(cfg.Seed, k)
		if cfg.PerInstance != nil {
			cfg.PerInstance(k, &c)
		}
		if c.TraceWriter != nil || c.TraceJSONL != nil || c.Recorder != nil {
			return BatchResult{}, fmt.Errorf("consensus: batch instance %d: trace surfaces are not supported in SolveBatch; trace a single instance with Solve", k)
		}
		if len(c.Inputs) == 0 {
			return BatchResult{}, fmt.Errorf("consensus: batch instance %d: Inputs must not be empty", k)
		}
		alg := c.Algorithm
		if alg == 0 {
			alg = Bounded
		}
		kind, err := alg.kind()
		if err != nil {
			return BatchResult{}, err
		}
		memKind, err := c.Memory.kind()
		if err != nil {
			return BatchResult{}, err
		}
		adv, err := c.Schedule.adversary(c.Seed)
		if err != nil {
			return BatchResult{}, err
		}
		sub, err := c.substrate()
		if err != nil {
			return BatchResult{}, err
		}
		if sub != nil && sub.NativeRegisters() && c.Profile {
			return BatchResult{}, fmt.Errorf("consensus: batch instance %d: Profile requires the simulated substrate", k)
		}
		if sub != nil && sub.NativeRegisters() && c.ParallelDispatch {
			return BatchResult{}, fmt.Errorf("consensus: batch instance %d: ParallelDispatch requires the simulated substrate", k)
		}
		// Each audited instance gets its own monitor: flight rings and
		// violation counters are per-instance state, so workers never share.
		var mon *audit.Monitor
		if c.Audit {
			mon = audit.New(audit.Options{
				SampleEvery: c.AuditSampleEvery,
				DumpDir:     c.AuditDumpDir,
			})
			mon.SetRun(runInfoFor(c, alg, k, cfg.Seed))
			if mons == nil {
				mons = make([]*audit.Monitor, cfg.Instances)
			}
			mons[k] = mon
		}
		// Each profiled instance gets its own profiler (per-instance matrices
		// and chains); spans are not retained — batch aggregation merges only
		// counters and matrices.
		var pr *prof.Profiler
		if c.Profile {
			pr = prof.New(prof.Options{N: len(c.Inputs)})
			if profs == nil {
				profs = make([]*prof.Profiler, cfg.Instances)
			}
			profs[k] = pr
		}
		// Each metered instance gets its own meter: declared layouts accumulate
		// per install, so a shared meter would double-count pooled instances.
		var sm *space.Meter
		if c.Space {
			sm = space.NewMeter()
			if meters == nil {
				meters = make([]*space.Meter, cfg.Instances)
			}
			meters[k] = sm
		}
		instances[k] = core.Instance{
			Kind: kind,
			Cfg: core.Config{
				K:              c.K,
				B:              c.B,
				M:              c.M,
				MemKind:        memKind,
				UseBloomArrows: c.UseBloomArrows,
				FastDecide:     c.FastDecide,
			},
			Inputs:    c.Inputs,
			Seed:      c.Seed,
			Adversary: adv,
			MaxSteps:  c.MaxSteps,
			Monitor:   mon,
			Profiler:  pr,
			Space:     sm,
			Substrate: sub,
			Commuting: c.ParallelDispatch,
			Latency:   c.Latency,
		}
	}

	// One sink serves the whole batch: every registry mutation path is an
	// atomic add or max, which commutes, so the merged registry is
	// deterministic even though workers emit concurrently. By default it is
	// metrics-only; a caller-supplied cfg.Sink may carry a concurrent-safe
	// recorder (see BatchConfig.Sink).
	sink := cfg.Sink
	if sink == nil {
		sink = obs.NewSink(nil)
	}
	outs := core.RunBatchProgress(cfg.Parallel, sink, cfg.Progress, instances)

	res := BatchResult{
		Decisions: make([]int, cfg.Instances),
		Steps:     make([]int64, cfg.Instances),
		Errors:    make([]error, cfg.Instances),
		Latencies: make([]int64, cfg.Instances),
	}
	for k, bo := range outs {
		res.Decisions[k] = -1
		res.Latencies[k] = bo.ElapsedNS
		err := bo.Err
		if err == nil {
			res.Steps[k] = bo.Out.Sched.Steps
			if bo.Out.Err != nil {
				err = bo.Out.Err
			}
			if v, aerr := bo.Out.Agreement(); aerr != nil {
				err = aerr
			} else {
				res.Decisions[k] = v
			}
		}
		if err != nil {
			res.Errors[k] = err
			res.ErrCount++
		}
	}
	if cfg.Stragglers > 0 {
		// Build the digest in instance order from the post-run columns; given
		// the measured latencies the selection is a pure function, so any
		// Parallel produces the same digest for the same measurements.
		tk := tail.TopK{K: cfg.Stragglers}
		for k := range outs {
			s := tail.Straggler{
				Index:     k,
				Seed:      instances[k].Seed, // post-PerInstance, the seed that actually ran
				LatencyNS: res.Latencies[k],
				Steps:     res.Steps[k],
				Decision:  res.Decisions[k],
			}
			if res.Errors[k] != nil {
				s.Err = res.Errors[k].Error()
			}
			tk.Add(s)
		}
		res.Stragglers = tk.Sorted()
	}
	snap := sink.Registry().Snapshot()
	if profs != nil {
		// Merge per-instance profiler snapshots in instance order: counter
		// sums, gauge maxes and padded matrix addition all commute, so the
		// result is identical at any Parallel.
		merged := make([]obs.Snapshot, 0, len(profs)+1)
		merged = append(merged, snap)
		for _, pr := range profs {
			if pr.Enabled() {
				merged = append(merged, pr.Snapshot())
			}
		}
		snap = obs.MergeSnapshots(merged...)
		res.Matrices = snap.Matrices
	}
	res.Counters = snap.Counters
	res.Gauges = snap.Gauges
	res.Hists = snap.Hists
	if meters != nil {
		// Merge per-instance usages in instance order; element-wise max
		// commutes, so the result is identical at any Parallel.
		var u space.Usage
		for _, sm := range meters {
			if sm != nil {
				u = space.Merge(u, sm.Usage())
			}
		}
		res.Space = &u
	}
	// Aggregate per-instance audit results in instance order, so the merged
	// view is deterministic at any parallelism.
	for _, mon := range mons {
		if mon == nil {
			continue
		}
		res.Violations = audit.MergeViolations(res.Violations, mon.Violations())
		res.Truncations += mon.Truncations()
		res.AuditDumps = append(res.AuditDumps, mon.DumpFiles()...)
	}
	return res, nil
}
