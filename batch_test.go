package consensus

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

func batchConfig(m, parallel int) BatchConfig {
	return BatchConfig{
		Instances: m,
		Base: Config{
			Inputs:   []int{0, 1, 1, 0},
			Schedule: Schedule{Kind: RandomSchedule},
			MaxSteps: 5_000_000,
		},
		Seed:     42,
		Parallel: parallel,
	}
}

// TestSolveBatchDeterministicAcrossParallelism is the engine's core
// guarantee: per-instance decisions, step counts, and the merged metrics
// registry are identical at parallel = 1, 4 and 8.
func TestSolveBatchDeterministicAcrossParallelism(t *testing.T) {
	const m = 12
	base, err := SolveBatch(batchConfig(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 8} {
		got, err := SolveBatch(batchConfig(m, par))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Decisions, base.Decisions) {
			t.Errorf("parallel=%d: decisions %v, want %v", par, got.Decisions, base.Decisions)
		}
		if !reflect.DeepEqual(got.Steps, base.Steps) {
			t.Errorf("parallel=%d: steps %v, want %v", par, got.Steps, base.Steps)
		}
		if got.ErrCount != base.ErrCount {
			t.Errorf("parallel=%d: ErrCount %d, want %d", par, got.ErrCount, base.ErrCount)
		}
		if !reflect.DeepEqual(got.Counters, base.Counters) {
			t.Errorf("parallel=%d: merged counters diverge:\n got %v\nwant %v", par, got.Counters, base.Counters)
		}
		if !reflect.DeepEqual(got.Gauges, base.Gauges) {
			t.Errorf("parallel=%d: merged gauges diverge: got %v want %v", par, got.Gauges, base.Gauges)
		}
		if !reflect.DeepEqual(got.Hists, base.Hists) {
			t.Errorf("parallel=%d: merged histograms (incl. phase.steps.*) diverge:\n got %v\nwant %v",
				par, got.Hists, base.Hists)
		}
	}
}

// TestSolveBatchMatchesSerialSolve: instance k of a batch is exactly
// Solve(Base with Seed = InstanceSeed(batchSeed, k)).
func TestSolveBatchMatchesSerialSolve(t *testing.T) {
	const m = 6
	cfg := batchConfig(m, 0)
	batch, err := SolveBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m; k++ {
		single := cfg.Base
		single.Seed = InstanceSeed(cfg.Seed, k)
		res, err := Solve(single)
		if err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		if res.Value != batch.Decisions[k] {
			t.Errorf("instance %d: batch decided %d, serial Solve decided %d", k, batch.Decisions[k], res.Value)
		}
		if res.Steps != batch.Steps[k] {
			t.Errorf("instance %d: batch took %d steps, serial Solve took %d", k, batch.Steps[k], res.Steps)
		}
	}
}

// TestSolveBatchPerInstance varies the algorithm per instance and checks the
// customization sticks (unbounded algorithms report MaxRound; bounded ones
// cannot).
func TestSolveBatchPerInstance(t *testing.T) {
	cfg := batchConfig(4, 2)
	cfg.PerInstance = func(k int, c *Config) {
		if k%2 == 1 {
			c.Algorithm = StrongCoin
		}
	}
	res, err := SolveBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrCount != 0 {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
	for k, d := range res.Decisions {
		if d != 0 && d != 1 {
			t.Errorf("instance %d decided %d, want 0 or 1", k, d)
		}
	}
	if res.Gauges["core.max_round"] == 0 {
		t.Error("strong-coin instances should have raised core.max_round")
	}
}

// TestSolveBatchAggregates sanity-checks the merged registry and the
// steps-to-decide histogram: every process of every clean instance
// contributes one decision and one histogram observation.
func TestSolveBatchAggregates(t *testing.T) {
	const m, n = 5, 4
	res, err := SolveBatch(batchConfig(m, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrCount != 0 {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
	if got := res.Counters["core.decide"]; got != m*n {
		t.Errorf("core.decide = %d, want %d", got, m*n)
	}
	h, ok := res.Hists["core.steps_to_decide"]
	if !ok {
		t.Fatal("missing core.steps_to_decide histogram")
	}
	if h.Count != m*n {
		t.Errorf("steps-to-decide count = %d, want %d", h.Count, m*n)
	}
	// Phase decomposition: each phase histogram carries one sample per
	// decided process, and the family's sums partition steps-to-decide.
	var phaseSum int64
	for _, name := range []string{"phase.steps.prefer", "phase.steps.coin", "phase.steps.strip", "phase.steps.decide"} {
		ph, ok := res.Hists[name]
		if !ok {
			t.Fatalf("missing %s histogram", name)
		}
		if ph.Count != m*n {
			t.Errorf("%s count = %d, want %d", name, ph.Count, m*n)
		}
		phaseSum += ph.Sum
	}
	if phaseSum != h.Sum {
		t.Errorf("phase sums total %d, steps_to_decide sum %d — every step must belong to exactly one phase",
			phaseSum, h.Sum)
	}
}

// TestSolveBatchProgressAndSink exercises the caller-supplied sink, ring tail
// and progress probe SolveBatch accepts for live telemetry.
func TestSolveBatchProgressAndSink(t *testing.T) {
	cfg := batchConfig(6, 3)
	ring := obs.NewRing(64)
	cfg.Sink = obs.NewSink(ring)
	cfg.Progress = &obs.BatchProgress{}
	res, err := SolveBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrCount != 0 {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
	// Results must match a plain run: the telemetry surfaces are
	// reporting-only.
	plain, err := SolveBatch(batchConfig(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Decisions, plain.Decisions) || !reflect.DeepEqual(res.Steps, plain.Steps) {
		t.Errorf("sink/progress perturbed results: %v/%v vs %v/%v",
			res.Decisions, res.Steps, plain.Decisions, plain.Steps)
	}
	if !reflect.DeepEqual(res.Counters, plain.Counters) {
		t.Errorf("caller sink counters diverge from private-sink counters")
	}
	snap := cfg.Progress.Snapshot()
	if snap.Total != 6 || snap.Completed != 6 || snap.InFlight != 0 {
		t.Errorf("progress after batch: %+v, want total=6 completed=6 inflight=0", snap)
	}
	if ring.Len() == 0 {
		t.Error("ring recorder saw no events")
	}
}

func TestSolveBatchValidation(t *testing.T) {
	if _, err := SolveBatch(BatchConfig{}); err == nil {
		t.Error("zero instances must be rejected")
	}
	cfg := batchConfig(2, 1)
	cfg.Base.Inputs = nil
	if _, err := SolveBatch(cfg); err == nil {
		t.Error("empty inputs must be rejected")
	}
	cfg = batchConfig(2, 1)
	cfg.Base.TraceWriter = &bytes.Buffer{}
	if _, err := SolveBatch(cfg); err == nil {
		t.Error("trace surfaces must be rejected")
	}
	cfg = batchConfig(2, 1)
	cfg.PerInstance = func(k int, c *Config) { c.TraceJSONL = &bytes.Buffer{} }
	if _, err := SolveBatch(cfg); err == nil {
		t.Error("trace surfaces injected via PerInstance must be rejected")
	}
}

func TestBatchResultStepsPercentile(t *testing.T) {
	r := BatchResult{Steps: []int64{50, 10, 40, 20, 30}}
	cases := []struct {
		p    float64
		want int64
	}{
		{1, 10}, {20, 10}, {50, 30}, {80, 40}, {99, 50}, {100, 50},
	}
	for _, c := range cases {
		if got := r.StepsPercentile(c.p); got != c.want {
			t.Errorf("StepsPercentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := (BatchResult{}).StepsPercentile(50); got != 0 {
		t.Errorf("empty batch percentile = %d, want 0", got)
	}
}
