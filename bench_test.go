package consensus

// This file holds the benchmark harness required by DESIGN.md §5: one
// benchmark per experiment (E1..E10 — the paper's quantitative lemmas and
// claims; the preliminary paper has no numbered tables or figures, so the
// per-lemma experiments play that role), plus micro-benchmarks for the
// library's hot paths. Regenerate all experiment tables with
//
//	go run ./cmd/experiments
//
// and the benchmark numbers with
//
//	go test -bench=. -benchmem ./...

import (
	"fmt"
	"io"
	"testing"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/strip"
	"github.com/dsrepro/consensus/internal/walk"
)

// benchExperiment runs one experiment in quick mode per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		harness.RunAndRender(e, harness.RunOpts{Quick: true, Trials: 3, Seed: int64(i + 1)}, io.Discard)
	}
}

func BenchmarkE1CoinAgreement(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2CoinSteps(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Overflow(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4Rounds(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5TotalWork(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6Space(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7ScanRetries(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8Strip(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9Adversary(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10WalkTrace(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11Ablations(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Quadrants(b *testing.B)    { benchExperiment(b, "E12") }

// BenchmarkSolve measures one full consensus instance (mixed inputs, random
// schedule) at several sizes and for each algorithm.
func BenchmarkSolve(b *testing.B) {
	cases := []struct {
		name string
		alg  Algorithm
		n    int
	}{
		{"bounded/n=2", Bounded, 2},
		{"bounded/n=4", Bounded, 4},
		{"bounded/n=8", Bounded, 8},
		{"aspnes-herlihy/n=4", AspnesHerlihy, 4},
		{"local-coin/n=4", LocalCoin, 4},
		{"strong-coin/n=4", StrongCoin, 4},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			inputs := make([]int, c.n)
			for i := range inputs {
				inputs[i] = i % 2
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Solve(Config{
					Inputs:    inputs,
					Algorithm: c.alg,
					Seed:      int64(i + 1),
					Schedule:  Schedule{Kind: RandomSchedule},
					MaxSteps:  200_000_000,
					B:         2,
				})
				if err != nil {
					b.Fatalf("Solve: %v", err)
				}
				if res.Value != 0 && res.Value != 1 {
					b.Fatalf("bad decision %d", res.Value)
				}
			}
		})
	}
}

// BenchmarkSolveDispatch compares sequential and commuting dispatch on the
// sizes where scan retries dominate — the n-scaling wall the commuting
// engine exists to crack.
func BenchmarkSolveDispatch(b *testing.B) {
	for _, c := range []struct {
		name     string
		n        int
		parallel bool
	}{
		{"sequential/n=8", 8, false},
		{"commuting/n=8", 8, true},
		{"sequential/n=16", 16, false},
		{"commuting/n=16", 16, true},
	} {
		b.Run(c.name, func(b *testing.B) {
			inputs := make([]int, c.n)
			for i := range inputs {
				inputs[i] = i % 2
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Solve(Config{
					Inputs:           inputs,
					Seed:             int64(i + 1),
					Schedule:         Schedule{Kind: RandomSchedule},
					MaxSteps:         200_000_000,
					B:                2,
					ParallelDispatch: c.parallel,
				})
				if err != nil {
					b.Fatalf("Solve: %v", err)
				}
				if res.Value != 0 && res.Value != 1 {
					b.Fatalf("bad decision %d", res.Value)
				}
			}
		})
	}
}

// BenchmarkSolveBatch measures batch throughput at several worker counts:
// 32 pooled instances per iteration, seed-sharded. Speedup over parallel=1
// scales with hardware threads (the per-instance scheduler is itself
// goroutine-heavy, so a 1-core machine shows ~1x across the board); the
// per-op numbers report honestly whatever the machine provides.
func BenchmarkSolveBatch(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := SolveBatch(BatchConfig{
					Instances: 32,
					Base: Config{
						Inputs:   []int{0, 1, 1, 0},
						Schedule: Schedule{Kind: RandomSchedule},
						MaxSteps: 200_000_000,
						B:        2,
					},
					Seed:     int64(i + 1),
					Parallel: par,
				})
				if err != nil {
					b.Fatalf("SolveBatch: %v", err)
				}
				if res.ErrCount != 0 {
					b.Fatalf("batch errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkSolveObservability quantifies the observability overhead on a full
// Bounded solve: the default metrics-only path (atomic counters, no recorder)
// against a ring-buffer recorder and a JSONL export to io.Discard.
func BenchmarkSolveObservability(b *testing.B) {
	run := func(b *testing.B, mutate func(*Config)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := Config{
				Inputs:   []int{0, 1, 1, 0},
				Seed:     int64(i + 1),
				B:        2,
				MaxSteps: 200_000_000,
			}
			if mutate != nil {
				mutate(&cfg)
			}
			if _, err := Solve(cfg); err != nil {
				b.Fatalf("Solve: %v", err)
			}
		}
	}
	b.Run("metrics-only", func(b *testing.B) { run(b, nil) })
	b.Run("ring-recorder", func(b *testing.B) {
		run(b, func(c *Config) { c.Recorder = obs.NewRing(4096) })
	})
	b.Run("jsonl-discard", func(b *testing.B) {
		run(b, func(c *Config) { c.TraceJSONL = io.Discard })
	})
}

// BenchmarkSharedCoinFlip measures a standalone weak shared coin resolution.
func BenchmarkSharedCoinFlip(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run("n="+string(rune('0'+n)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := FlipCoin(CoinConfig{N: n, B: 2, Seed: int64(i + 1)}); err != nil {
					b.Fatalf("FlipCoin: %v", err)
				}
			}
		})
	}
}

// BenchmarkSnapshotScan measures the arrow scannable memory's scan cost with
// quiescent writers (the clean fast path).
func BenchmarkSnapshotScan(b *testing.B) {
	for _, n := range []int{4, 16} {
		name := "n=4"
		if n == 16 {
			name = "n=16"
		}
		b.Run(name, func(b *testing.B) {
			mem := scan.NewArrow[int](n, register.DirectFactory)
			b.ReportAllocs()
			b.ResetTimer()
			_, err := sched.Run(sched.Config{N: n, Seed: 1}, func(p *sched.Proc) {
				if p.ID() != 0 {
					return
				}
				for i := 0; i < b.N; i++ {
					mem.Scan(p)
				}
			})
			if err != nil {
				b.Fatalf("Run: %v", err)
			}
		})
	}
}

// BenchmarkIncRow measures one rounds-strip advance (graph decode + max-path
// analysis + counter increment), the protocol's per-round bookkeeping cost.
func BenchmarkIncRow(b *testing.B) {
	for _, n := range []int{4, 16, 32} {
		name := map[int]string{4: "n=4", 16: "n=16", 32: "n=32"}[n]
		b.Run(name, func(b *testing.B) {
			e := strip.CounterMatrix(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row, err := strip.IncRow(i%n, e, 2)
				if err != nil {
					b.Fatalf("IncRow: %v", err)
				}
				e[i%n] = row
			}
		})
	}
}

// BenchmarkWalkValue measures the pure coin_value evaluation.
func BenchmarkWalkValue(b *testing.B) {
	params := walk.Params{N: 32, B: 4, M: 1024}
	c := make([]int, 32)
	for i := range c {
		c[i] = i - 16
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = params.Value(c)
	}
}

// BenchmarkSchedulerStep measures the raw cost of one scheduled atomic step
// (channel handoff round trip), the simulation's unit of time.
func BenchmarkSchedulerStep(b *testing.B) {
	b.ReportAllocs()
	_, err := sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		for i := 0; i < b.N; i++ {
			p.Step()
		}
	})
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// BenchmarkExecuteBoundedBloom measures the full stack over Bloom-constructed
// arrow registers (deepest substrate).
func BenchmarkExecuteBoundedBloom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := core.Execute(core.KindBounded, core.Config{B: 2, UseBloomArrows: true}, core.ExecConfig{
			Inputs:    []int{0, 1},
			Seed:      int64(i + 1),
			Adversary: sched.NewRandom(int64(i)),
			MaxSteps:  200_000_000,
		})
		if err != nil || out.Err != nil {
			b.Fatalf("Execute: %v / %v", err, out.Err)
		}
	}
}
