// Command benchdiff compares two consensus-load JSON artifacts (the
// BENCH_batch.json matrix, or a legacy single-report file) and exits nonzero
// when any workload of the new one regressed beyond the thresholds — the
// repo's bench regression gate (`make bench-check`). Workloads are paired by
// (algorithm, n); a workload that vanished from the new artifact is an error.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -max-step-growth 0.10 BENCH_batch.json BENCH_batch.new.json
//
// Exit status: 0 no regression, 1 regression found, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dsrepro/consensus/internal/benchfmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	th := benchfmt.DefaultThresholds()
	flag.Float64Var(&th.MaxThroughputDrop, "max-throughput-drop", th.MaxThroughputDrop,
		"max fractional drop of instances_per_sec")
	flag.Float64Var(&th.MaxStepGrowth, "max-step-growth", th.MaxStepGrowth,
		"max fractional growth of the steps mean/p50/p90/p99")
	flag.Float64Var(&th.MaxPhaseMeanGrowth, "max-phase-growth", th.MaxPhaseMeanGrowth,
		"max fractional growth of each phase.steps.* mean")
	flag.Float64Var(&th.MaxLatencyP99Growth, "max-latency-p99-growth", th.MaxLatencyP99Growth,
		"max fractional growth of the wall-clock latency p99 (workloads carrying a latency block)")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		flag.PrintDefaults()
		return 2
	}
	oldMat, err := benchfmt.ReadAny(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	newMat, err := benchfmt.ReadAny(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	// Environment mismatches are warnings, not findings: they tell the reader
	// why wall-clock deltas may be meaningless, without failing the gate over
	// a machine or toolchain change.
	for _, w := range benchfmt.EnvWarnings(oldMat, newMat) {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %s\n", w)
	}

	findings, err := benchfmt.CompareMatrix(oldMat, newMat, th)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	keys := make([]string, len(newMat.Workloads))
	for i, r := range newMat.Workloads {
		keys[i] = r.Key()
	}
	if len(findings) == 0 {
		fmt.Printf("benchdiff: ok — %s, no regression\n", strings.Join(keys, ", "))
		return 0
	}
	fmt.Printf("benchdiff: %d regression(s) across %s\n", len(findings), strings.Join(keys, ", "))
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
	return 1
}
