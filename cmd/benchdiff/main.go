// Command benchdiff compares two consensus-load JSON reports (the
// BENCH_batch.json artifact) and exits nonzero when the new one regressed
// beyond the thresholds — the repo's bench regression gate (`make
// bench-check`).
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -max-step-growth 0.10 BENCH_batch.json BENCH_batch.new.json
//
// Exit status: 0 no regression, 1 regression found, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dsrepro/consensus/internal/benchfmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	th := benchfmt.DefaultThresholds()
	flag.Float64Var(&th.MaxThroughputDrop, "max-throughput-drop", th.MaxThroughputDrop,
		"max fractional drop of instances_per_sec")
	flag.Float64Var(&th.MaxStepGrowth, "max-step-growth", th.MaxStepGrowth,
		"max fractional growth of the steps mean/p50/p90/p99")
	flag.Float64Var(&th.MaxPhaseMeanGrowth, "max-phase-growth", th.MaxPhaseMeanGrowth,
		"max fractional growth of each phase.steps.* mean")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		flag.PrintDefaults()
		return 2
	}
	oldRep, err := benchfmt.Read(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	newRep, err := benchfmt.Read(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	findings, err := benchfmt.Compare(oldRep, newRep, th)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(findings) == 0 {
		fmt.Printf("benchdiff: ok — %s n=%d, %d instances, no regression\n",
			newRep.Algorithm, newRep.N, newRep.Instances)
		return 0
	}
	fmt.Printf("benchdiff: %d regression(s) — %s n=%d\n", len(findings), newRep.Algorithm, newRep.N)
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
	return 1
}
