// Command cointool explores the paper's bounded weak shared coin (§3): it
// runs standalone coin instances, reports per-process outcomes, agreement
// rate, walk lengths, and compares them with the theoretical bounds of
// Lemmas 3.1 and 3.2.
//
// Usage:
//
//	cointool -n 8 -b 4 -trials 100
//	cointool -n 8 -b 4 -m 16 -trials 100      # aggressively bounded counters
//	cointool -n 8 -b 4 -trace                 # print one walk trajectory
package main

import (
	"flag"
	"fmt"
	"os"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/walk"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n      = flag.Int("n", 8, "number of processes")
		b      = flag.Int("b", 4, "barrier multiplier")
		m      = flag.Int("m", 0, "counter bound (0 = derived default, -1 = unbounded)")
		trials = flag.Int("trials", 50, "number of coin instances")
		seed   = flag.Int64("seed", 1, "random seed")
		trace  = flag.Bool("trace", false, "print one walk trajectory and exit")
	)
	flag.Parse()

	if *trace {
		return runTrace(*n, *b, *m, *seed)
	}

	params := walk.Params{N: *n, B: *b, M: *m}
	if params.M == 0 {
		params.M = params.DefaultM()
	}
	agreed, headsRuns := 0, 0
	var totalSteps int64
	for k := 0; k < *trials; k++ {
		res, err := consensus.FlipCoin(consensus.CoinConfig{
			N: *n, B: *b, M: *m, Seed: *seed + int64(k),
			Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cointool: %v\n", err)
			return 1
		}
		if res.Agreed {
			agreed++
			if res.Outcomes[0] == "heads" {
				headsRuns++
			}
		}
		totalSteps += res.WalkSteps
	}
	fmt.Printf("params            : n=%d b=%d m=%d (barrier ±%d)\n", *n, *b, params.M, *b**n)
	fmt.Printf("trials            : %d\n", *trials)
	fmt.Printf("agreement rate    : %.3f (Lemma 3.1 lower bound: %.3f)\n",
		float64(agreed)/float64(*trials), 1-params.TheoreticalDisagreement())
	fmt.Printf("heads | agreement : %.3f\n", float64(headsRuns)/float64(max(agreed, 1)))
	fmt.Printf("mean walk steps   : %.1f (Lemma 3.2 theory: %.1f)\n",
		float64(totalSteps)/float64(*trials), params.TheoreticalExpectedSteps())
	return 0
}

func runTrace(n, b, m int, seed int64) int {
	params := walk.Params{N: n, B: b, M: m}
	if params.M == 0 {
		params.M = params.DefaultM()
	}
	coin, err := walk.NewSharedCoin(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cointool: %v\n", err)
		return 1
	}
	var values []int
	coin.OnStep = func(_, v int) { values = append(values, v) }
	if _, err := sched.Run(sched.Config{
		N: n, Seed: seed, Adversary: sched.NewRandom(seed + 1), MaxSteps: 200_000_000,
	}, func(p *sched.Proc) { coin.Flip(p) }); err != nil {
		fmt.Fprintf(os.Stderr, "cointool: %v\n", err)
		return 1
	}
	barrier := b * n
	fmt.Printf("walk trajectory (n=%d b=%d, barriers ±%d, %d steps):\n", n, b, barrier, len(values))
	width := 61
	for i, v := range values {
		if len(values) > 120 && i%(len(values)/120) != 0 && i != len(values)-1 {
			continue
		}
		pos := (v + barrier) * (width - 1) / (2 * barrier)
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		row[0], row[width/2], row[width-1] = '|', '.', '|'
		row[pos] = '*'
		fmt.Printf("%6d %s %+d\n", i, string(row), v)
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
