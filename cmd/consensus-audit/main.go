// Command consensus-audit inspects a flight-recorder dump written by an
// audited run (consensus-sim -audit -audit-dir, consensus-load -audit-dir, or
// the library with Config.AuditDumpDir) and replays the dumped instance
// deterministically to confirm the violation reproduces.
//
// The dump header carries the run's full identity — algorithm, inputs, seed,
// schedule, protocol constants, active fault injection — so the replay needs
// nothing but the dump file. Sampled probes are escalated to run at every
// opportunity during replay, and the recorded mutation (if any) is re-enabled
// so injected faults fire again.
//
// Usage:
//
//	consensus-audit dump.jsonl              # inspect + replay
//	consensus-audit -no-replay dump.jsonl   # inspect only
//	consensus-audit -events 50 dump.jsonl   # show the last 50 flight events
//	consensus-audit -trace dump.jsonl       # replay with the protocol log on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/obs/audit"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		noReplay = flag.Bool("no-replay", false, "inspect the dump without replaying the run")
		events   = flag.Int("events", 10, "print the last N flight-recorder events (0 = none, -1 = all)")
		trace    = flag.Bool("trace", false, "replay: print the protocol event log to stderr")
		traceOut = flag.String("trace-out", "", "replay: write the full cross-layer event stream as JSONL to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: consensus-audit [flags] dump.jsonl")
		flag.PrintDefaults()
		return 2
	}
	path := flag.Arg(0)

	d, err := audit.ReadDumpFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-audit: %v\n", err)
		return 2
	}
	printDump(path, d, *events)
	if *noReplay {
		return 0
	}
	if !d.Info.IsReplayable() {
		// Native-substrate dumps document the failure but carry no schedule to
		// re-derive: the interleaving was the hardware's. Inspection is all
		// there is — exit clean so scripted triage can tell "not replayable"
		// from "replay failed".
		fmt.Printf("replay    : skipped — %s substrate dumps are not replayable (no recorded schedule)\n",
			orDefault(d.Info.Substrate, "this"))
		return 0
	}
	return replay(d, *trace, *traceOut)
}

func printDump(path string, d audit.Dump, events int) {
	fmt.Printf("dump      : %s (format v%d)\n", path, d.Version)
	fmt.Printf("violation : %s at step %d, process %d\n", d.Probe, d.Step, d.Pid)
	if d.Detail != "" {
		fmt.Printf("detail    : %s\n", d.Detail)
	}
	in := d.Info
	fmt.Printf("run       : %s n=%d seed=%d", in.Algorithm, in.N, in.Seed)
	if in.Instance >= 0 {
		fmt.Printf(" (batch instance %d of seed %d)", in.Instance, in.BatchSeed)
	}
	fmt.Println()
	fmt.Printf("inputs    : %v\n", in.Inputs)
	if in.Substrate != "" && in.Substrate != "simulated" {
		fmt.Printf("substrate : %s (not replayable)\n", in.Substrate)
	}
	fmt.Printf("schedule  : %s", orDefault(in.Schedule, "round-robin"))
	if in.Crash != "" {
		fmt.Printf(" crash=%s", in.Crash)
	}
	fmt.Println()
	fmt.Printf("constants : K=%d B=%d M=%d memory=%s bloom=%v fast=%v max-steps=%d\n",
		in.K, in.B, in.M, orDefault(in.Memory, "arrow"), in.Bloom, in.FastPath, in.MaxSteps)
	if in.Mutation != "" {
		fmt.Printf("mutation  : %s (fault injection was active)\n", in.Mutation)
	}
	printState(d.State)
	if d.EventsDropped > 0 {
		fmt.Printf("flight    : %d events retained, %d older events overwritten\n", len(d.Events), d.EventsDropped)
	} else {
		fmt.Printf("flight    : %d events retained\n", len(d.Events))
	}
	if events != 0 && len(d.Events) > 0 {
		tail := d.Events
		if events > 0 && len(tail) > events {
			tail = tail[len(tail)-events:]
		}
		for _, e := range tail {
			fmt.Printf("  %s\n", e)
		}
	}
}

func printState(st audit.State) {
	if st.Prefs != nil {
		fmt.Printf("state     : prefs=%v\n", st.Prefs)
	}
	if st.Rounds != nil {
		fmt.Printf("            rounds=%v\n", st.Rounds)
	}
	if st.Coins != nil {
		fmt.Printf("            coins=%v\n", st.Coins)
	}
	for i, row := range st.Edges {
		fmt.Printf("            edges[%d]=%v\n", i, row)
	}
	for i, row := range st.Strips {
		fmt.Printf("            strip[%d]=%v\n", i, row)
	}
}

// replay rebuilds the run from the dump header and re-executes it with every
// sampled probe escalated, then checks the recorded probe fires again.
func replay(d audit.Dump, trace bool, traceOut string) int {
	cfg, err := consensus.ReplayConfig(d.Info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-audit: %v\n", err)
		return 2
	}
	if d.Info.Mutation != "" {
		if err := audit.EnableMutation(d.Info.Mutation); err != nil {
			fmt.Fprintf(os.Stderr, "consensus-audit: %v\n", err)
			return 2
		}
		defer audit.DisableAll()
	}
	if trace {
		cfg.TraceWriter = os.Stderr
	}
	var traceFile *os.File
	if traceOut != "" {
		traceFile, err = os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-audit: %v\n", err)
			return 2
		}
		cfg.TraceJSONL = traceFile
	}
	fmt.Printf("replay    : %s n=%d seed=%d, probes at every opportunity\n", d.Info.Algorithm, len(cfg.Inputs), cfg.Seed)
	res, err := consensus.Solve(cfg)
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Printf("replay    : run ended early: %v\n", err)
	}
	if len(res.Violations) == 0 {
		fmt.Printf("replay    : CLEAN — recorded violation %s did not reproduce\n", d.Probe)
		return 1
	}
	keys := make([]string, 0, len(res.Violations))
	for k := range res.Violations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("replay    : %-16s fired %d times\n", k, res.Violations[k])
	}
	if res.Violations[d.Probe] > 0 {
		fmt.Printf("replay    : REPRODUCED %s\n", d.Probe)
		return 0
	}
	fmt.Printf("replay    : recorded probe %s did not fire (other probes did)\n", d.Probe)
	return 1
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
