// Command consensus-load drives the batch engine at full throughput and
// reports instances/sec plus the step-count distribution — the repo's load
// generator and the producer of the machine-readable bench artifact
// (`make bench-json` > BENCH_batch.json).
//
// Usage examples:
//
//	consensus-load -instances 200
//	consensus-load -alg strong-coin -n 8 -instances 50 -parallel 4
//	consensus-load -matrix -json > BENCH_batch.json
//	consensus-load -instances 5000 -listen 127.0.0.1:9090   # then scrape /metrics
//	consensus-load -instances 500 -stragglers 3 -straggler-replay   # forensic bundles
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/benchfmt"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/live"
	"github.com/dsrepro/consensus/internal/obs/prof"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		instances = flag.Int("instances", 100, "independent consensus instances to run")
		parallel  = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); decisions are identical at any setting")
		n         = flag.Int("n", 4, "processes per instance (alternating binary inputs)")
		algFlag   = flag.String("alg", "bounded", "algorithm: bounded | aspnes-herlihy | local-coin | strong-coin | abrahamson | anonymous")
		schedFlag = flag.String("schedule", "random", "schedule: round-robin | random (ignored by -substrate native: the hardware schedules)")
		subFlag   = flag.String("substrate", "simulated", "execution backend: simulated | native (real goroutines on lock-free registers; not deterministic)")
		dispFlag  = flag.String("dispatch", "sequential", "dispatch engine: sequential | commuting (batch disjoint-footprint steps between adversary consults; simulated substrate only)")
		seed      = flag.Int64("seed", 1, "batch seed (instance k replays with Seed = InstanceSeed(seed, k))")
		maxSteps  = flag.Int64("max-steps", 100_000_000, "per-instance step budget")
		b         = flag.Int("b", 4, "shared-coin barrier multiplier")
		kFlag     = flag.Int("k", 0, "rounds-strip constant (0 = algorithm default)")
		mFlag     = flag.Int("m", 0, "coin-counter bound (0 = algorithm default)")
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON object instead of text")
		matrix    = flag.Bool("matrix", false, "run the standard workload matrix ({bounded, aspnes-herlihy} x {n=4, n=8, n=16}) instead of one workload; -instances/-n/-alg/-tail are ignored")
		listen    = flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/pprof) on this address while the batch runs (e.g. 127.0.0.1:9090, :0 for a free port)")
		linger    = flag.Duration("linger", 0, "with -listen, keep serving telemetry this long after the batch completes")
		tail      = flag.Int("tail", 0, "keep the last N events in a ring for post-run inspection (0 = off; ordering across workers is unspecified)")
		profOn    = flag.Bool("prof", false, "run the step profiler on every instance: prof.* counters plus blame/contention matrices in the report (and, with -listen, at /metrics once the workload completes)")
		auditOn   = flag.Bool("audit", false, "run the online invariant monitor on every instance; non-zero exit if any probe fires")
		auditN    = flag.Int("audit-sample", 0, "audit: run sampled probes every N opportunities (0 = default 64, 1 = every)")
		auditDir  = flag.String("audit-dir", "", "audit: write flight-recorder dumps to this directory (replay with consensus-audit)")

		latency     = flag.Bool("latency", true, "meter per-instance wall-clock latency (the lat.solve histogram and the report's latency block); values jitter run to run, identities stay deterministic")
		stragglers  = flag.Int("stragglers", 0, "keep a digest of the N slowest instances per workload (seed, latency, steps, decision) in the report")
		stragReplay = flag.Bool("straggler-replay", false, "deterministically re-execute each straggler with trace+prof+audit into a forensic bundle (simulated substrate only)")
		stragDir    = flag.String("straggler-dir", "stragglers", "directory for -straggler-replay bundles (one subdirectory per straggler)")
		progEvery   = flag.Duration("progress", 0, "print batch progress with ETA to stderr at this interval (0 = off)")
	)
	flag.Parse()

	schedule, err := parseSchedule(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}
	if _, err := parseSubstrate(*subFlag); err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}
	if _, err := parseDispatch(*dispFlag); err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}

	prog := &obs.BatchProgress{}
	var srv *live.Server
	if *listen != "" {
		srv = live.New()
		srv.AddProgress(prog)
		// The timeseries ring turns point scrapes into trends: /timeseries
		// dumps the retained window, /stream pushes it as SSE.
		srv.EnableTimeseries(300, time.Second)
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "consensus-load: telemetry on http://%s/metrics (also /healthz /timeseries /stream)\n", addr)
	}
	lingerAtExit := func() {
		if srv != nil {
			// Stamp one final sample so short batches leave a trend behind.
			srv.SampleTimeseries()
		}
		if srv != nil && *linger > 0 {
			fmt.Fprintf(os.Stderr, "consensus-load: lingering %s for scrapes\n", *linger)
			time.Sleep(*linger)
		}
	}

	// The progress printer is a stderr-side view of the same probe /healthz
	// serves: completion fraction, windowed rate, and the ETA estimate.
	if *progEvery > 0 {
		stopProg := make(chan struct{})
		defer close(stopProg)
		go func() {
			tick := time.NewTicker(*progEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-tick.C:
					s := prog.Snapshot()
					if s.Total == 0 {
						continue
					}
					fmt.Fprintf(os.Stderr, "consensus-load: progress %d/%d (%.1f%%), %.1f/s, eta %s\n",
						s.Completed, s.Total, 100*float64(s.Completed)/float64(s.Total),
						s.WindowPerSec, etaLabel(s.ETASec))
				}
			}
		}()
	}

	opts := workloadOpts{
		schedule:   schedule,
		seed:       *seed,
		maxSteps:   *maxSteps,
		b:          *b,
		parallel:   *parallel,
		prog:       prog,
		srv:        srv,
		profile:    *profOn,
		latency:    *latency,
		stragglers: *stragglers,
	}
	if *auditOn || *auditDir != "" || *auditN > 0 {
		opts.audit = true
		opts.auditSample = *auditN
		opts.auditDir = *auditDir
	}

	if *matrix {
		m := benchfmt.Matrix{}
		bad := 0
		for _, ws := range matrixWorkloads {
			r, res, base, code := runWorkload(ws, opts, nil)
			if code == 2 {
				return 2
			}
			bad += reportErrors(res)
			bad += int(reportViolations(res))
			if *stragReplay {
				bad += replayStragglers(base, r, *stragDir)
			}
			m.Workloads = append(m.Workloads, r)
			if !*jsonOut {
				printReport(r, nil)
				fmt.Println()
			}
		}
		if *jsonOut {
			if err := benchfmt.WriteMatrix(os.Stdout, m); err != nil {
				fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
				return 1
			}
		}
		lingerAtExit()
		if bad > 0 {
			return 1
		}
		return 0
	}

	if *n < 1 {
		fmt.Fprintf(os.Stderr, "consensus-load: -n must be >= 1\n")
		return 2
	}
	// The optional ring is a debugging tail: concurrency-safe, but with no
	// cross-worker ordering guarantee. Single-workload mode only.
	var ring *obs.Ring
	if *tail > 0 {
		ring = obs.NewRing(*tail)
	}
	r, res, base, code := runWorkload(workloadSpec{Alg: *algFlag, N: *n, Instances: *instances, Substrate: *subFlag, Dispatch: *dispFlag, K: *kFlag, M: *mFlag}, opts, ring)
	if code == 2 {
		return 2
	}
	reconcileTailDrops(&r, ring)
	bad := 0
	if *stragReplay {
		bad = replayStragglers(base, r, *stragDir)
	}

	if *jsonOut {
		if err := benchfmt.Write(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
			return 1
		}
	} else {
		printReport(r, ring)
	}
	lingerAtExit()
	if bad+reportErrors(res)+int(reportViolations(res)) > 0 {
		return 1
	}
	return 0
}

// replayStragglers re-executes each straggler of a workload's digest into a
// forensic bundle under dir (one subdirectory per straggler, keyed by the
// workload and instance index). Native workloads are skipped with a notice —
// hardware interleavings are not replayable — and replay failures count
// toward the exit status without aborting the remaining stragglers.
func replayStragglers(base consensus.Config, r benchfmt.Report, dir string) int {
	if len(r.Stragglers) == 0 {
		return 0
	}
	if base.Substrate == consensus.NativeSubstrate {
		fmt.Fprintf(os.Stderr, "consensus-load: %s/n=%d: straggler digest is print-only on the native substrate (no deterministic replay)\n", r.Algorithm, r.N)
		return 0
	}
	bad := 0
	for _, s := range r.Stragglers {
		name := fmt.Sprintf("%s-n%d-i%d", r.Algorithm, r.N, s.Index)
		b, err := consensus.ReplayStraggler(base, s, filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-load: straggler %s: %v\n", name, err)
			bad++
			continue
		}
		fmt.Fprintf(os.Stderr, "consensus-load: straggler %s: %d steps, decision %d, bundle %s\n",
			name, b.ReplaySteps, b.ReplayDecision, b.Dir)
	}
	return bad
}

// etaLabel renders an ETA estimate: "?" before any completion establishes a
// rate, otherwise a rounded duration.
func etaLabel(sec float64) string {
	if sec < 0 {
		return "?"
	}
	return (time.Duration(sec * float64(time.Second))).Round(100 * time.Millisecond).String()
}

// workloadSpec names one batch workload of the matrix: an algorithm, a
// process count, a substrate ("" = simulated), a dispatch mode ("" =
// sequential), how many instances to run, and optional K/M overrides for the
// space–time frontier rows (0 = defaults).
type workloadSpec struct {
	Alg       string
	N         int
	Instances int
	Substrate string
	Dispatch  string
	K         int
	M         int
}

// matrixWorkloads is the standard bench matrix (`make bench-json`). The
// bounded n=4 entry is the historical single-workload artifact and must keep
// its instance count so new matrix artifacts stay comparable against
// pre-matrix baselines; the other entries are sized so the whole matrix runs
// in the same ballpark as the original single workload.
// The n=16 entries measure the scaling wall past the n=4→n=8 throughput
// collapse; they are small (a few seconds each, ~8 inst/s serial) and sized so
// the profiler has enough contended instances to attribute.
// The native rows mirror the simulated grid on the native substrate (real
// goroutines, lock-free registers): same (algorithm, n) pairs, so the
// artifact reads as a substrate column. Native instances are cheap — no step
// arbiter — so the counts match the simulated rows. Native rows never
// pair-compare against simulated ones (the substrate is part of the workload
// key).
// The frontier rows sweep the space knobs on the simulated substrate —
// strip constant K, coin bound M, and the anonymous variant — so the
// artifact carries the measured space–time frontier: every report's space
// block (peak registers, bits per register) pairs with its steps summary.
// Explicit K/M are part of the workload key.
// The n=32 rows measure past the scaling wall on both substrates; the
// sequential simulated pair is deliberately tiny (each instance runs
// millions of steps), which is itself the datum motivating the rows below
// them. The commuting rows rerun the contended sizes under commuting-step
// dispatch (batched disjoint-footprint grants + epoch scan repair) — the
// dispatch mode is part of the workload key, so they never pair-compare
// against sequential rows.
var matrixWorkloads = []workloadSpec{
	{Alg: "bounded", N: 4, Instances: 400},
	{Alg: "bounded", N: 8, Instances: 60},
	{Alg: "bounded", N: 16, Instances: 12},
	{Alg: "bounded", N: 32, Instances: 4},
	{Alg: "aspnes-herlihy", N: 4, Instances: 200},
	{Alg: "aspnes-herlihy", N: 8, Instances: 40},
	{Alg: "aspnes-herlihy", N: 16, Instances: 8},
	{Alg: "aspnes-herlihy", N: 32, Instances: 4},
	{Alg: "bounded", N: 4, Instances: 400, Substrate: "native"},
	{Alg: "bounded", N: 8, Instances: 60, Substrate: "native"},
	{Alg: "bounded", N: 16, Instances: 12, Substrate: "native"},
	{Alg: "bounded", N: 32, Instances: 12, Substrate: "native"},
	{Alg: "aspnes-herlihy", N: 4, Instances: 200, Substrate: "native"},
	{Alg: "aspnes-herlihy", N: 8, Instances: 40, Substrate: "native"},
	{Alg: "aspnes-herlihy", N: 16, Instances: 8, Substrate: "native"},
	{Alg: "aspnes-herlihy", N: 32, Instances: 12, Substrate: "native"},
	{Alg: "bounded", N: 8, Instances: 200, Dispatch: "commuting"},
	{Alg: "bounded", N: 16, Instances: 40, Dispatch: "commuting"},
	{Alg: "bounded", N: 32, Instances: 12, Dispatch: "commuting"},
	{Alg: "aspnes-herlihy", N: 8, Instances: 200, Dispatch: "commuting"},
	{Alg: "aspnes-herlihy", N: 32, Instances: 12, Dispatch: "commuting"},
	{Alg: "bounded", N: 4, Instances: 200, K: 3},
	{Alg: "bounded", N: 4, Instances: 200, K: 4},
	{Alg: "bounded", N: 4, Instances: 200, M: 64},
	{Alg: "bounded", N: 8, Instances: 40, M: 64},
	{Alg: "anonymous", N: 4, Instances: 400},
	{Alg: "anonymous", N: 8, Instances: 100},
}

// workloadOpts carries the flag settings shared by every workload of a run.
type workloadOpts struct {
	schedule    consensus.Schedule
	seed        int64
	maxSteps    int64
	b           int
	parallel    int
	prog        *obs.BatchProgress
	srv         *live.Server
	audit       bool
	auditSample int
	auditDir    string
	profile     bool
	latency     bool
	stragglers  int
}

// reconcileTailDrops folds the ring's final drop total into the report. The
// batch counters were snapshotted inside SolveBatch, but the ring can still
// overwrite events after that snapshot (a racing worker's last emissions, or a
// live scrape draining the tail), so the authoritative count is the ring's own
// — take it last and raise the obs.trace_dropped counter to match, never
// lowering it.
func reconcileTailDrops(r *benchfmt.Report, ring *obs.Ring) {
	if ring == nil {
		return
	}
	d := ring.Dropped()
	r.Dropped = d
	if d == 0 {
		return
	}
	if r.Counters == nil {
		r.Counters = map[string]int64{}
	}
	if c := r.Counters[obs.TraceDropped.ID()]; c < d {
		r.Counters[obs.TraceDropped.ID()] = d
	}
}

// runWorkload runs one batch workload into a fresh sink and builds its
// report. It also returns the base config the batch ran with, so straggler
// digests can be replayed against exactly the configuration that produced
// them. The returned code is 0 on success and 2 on a usage/config error
// (already printed); per-instance errors are in the result, not the code.
func runWorkload(ws workloadSpec, opts workloadOpts, ring *obs.Ring) (benchfmt.Report, consensus.BatchResult, consensus.Config, int) {
	alg, err := parseAlg(ws.Alg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return benchfmt.Report{}, consensus.BatchResult{}, consensus.Config{}, 2
	}
	sub, err := parseSubstrate(ws.Substrate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return benchfmt.Report{}, consensus.BatchResult{}, consensus.Config{}, 2
	}
	commuting, err := parseDispatch(ws.Dispatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return benchfmt.Report{}, consensus.BatchResult{}, consensus.Config{}, 2
	}
	if sub == consensus.NativeSubstrate && commuting {
		fmt.Fprintf(os.Stderr, "consensus-load: %s/n=%d: commuting dispatch requires the simulated substrate\n", ws.Alg, ws.N)
		return benchfmt.Report{}, consensus.BatchResult{}, consensus.Config{}, 2
	}
	profile := opts.profile
	if sub == consensus.NativeSubstrate && profile {
		// The step profiler requires serialized steps; native workloads of a
		// mixed matrix run unprofiled rather than failing the whole run.
		fmt.Fprintf(os.Stderr, "consensus-load: %s/n=%d: profiler disabled on the native substrate\n", ws.Alg, ws.N)
		profile = false
	}
	inputs := make([]int, ws.N)
	for i := range inputs {
		inputs[i] = i % 2
	}

	// The batch reports into a caller-owned sink so the telemetry server can
	// scrape its registry mid-run.
	var rec obs.Recorder
	if ring != nil {
		rec = ring
	}
	sink := obs.NewSink(rec)
	if ring != nil {
		// Account ring overwrites into the registry so trace loss is visible
		// at /metrics (obs.trace_dropped) and in the report counters.
		ring.CountDropsInto(sink)
	}
	if opts.srv != nil {
		opts.srv.AddRegistry(sink.Registry())
	}

	base := consensus.Config{
		Inputs:           inputs,
		Algorithm:        alg,
		Schedule:         opts.schedule,
		Substrate:        sub,
		ParallelDispatch: commuting,
		MaxSteps:         opts.maxSteps,
		B:                opts.b,
		K:                ws.K,
		M:                ws.M,
		Audit:            opts.audit,
		AuditSampleEvery: opts.auditSample,
		AuditDumpDir:     opts.auditDir,
		Profile:          profile,
		Space:            true,
		Latency:          opts.latency,
	}
	start := time.Now()
	res, err := consensus.SolveBatch(consensus.BatchConfig{
		Instances:  ws.Instances,
		Base:       base,
		Seed:       opts.seed,
		Parallel:   opts.parallel,
		Sink:       sink,
		Progress:   opts.prog,
		Stragglers: opts.stragglers,
	})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return benchfmt.Report{}, consensus.BatchResult{}, consensus.Config{}, 2
	}

	workers := opts.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dispatch := ""
	if commuting {
		dispatch = "commuting"
	}
	r := benchfmt.Report{
		Algorithm:       ws.Alg,
		N:               ws.N,
		K:               ws.K,
		M:               ws.M,
		Substrate:       sub.String(),
		Dispatch:        dispatch,
		Instances:       ws.Instances,
		Parallel:        workers,
		Seed:            opts.seed,
		ElapsedSec:      elapsed.Seconds(),
		InstancesPerSec: float64(ws.Instances) / elapsed.Seconds(),
		Errors:          res.ErrCount,
		Steps:           summarize(res),
		Counters:        res.Counters,
		Gauges:          res.Gauges,
		Hists:           res.Hists,
		Matrices:        res.Matrices,
		Derived:         derivedStats(res.Counters),
	}
	if res.Space != nil {
		r.Space = benchfmt.SpaceFromUsage(*res.Space)
	}
	if opts.latency {
		lat := res.LatencySummary()
		r.Latency = &lat
		// Wall-clock numbers are only comparable between matching
		// environments, so the stamp travels with them.
		r.Env = benchfmt.CurrentEnv()
	}
	r.Stragglers = res.Stragglers
	for _, v := range res.Violations {
		r.Violations += v
	}
	if profile && opts.srv != nil {
		// Profiler aggregates are not in the sink registry the server already
		// scrapes; publish the prof-only slice of the merged snapshot so the
		// prof.* series and matrices appear at /metrics (useful with -linger).
		ps := profSnapshot(res)
		opts.srv.AddSnapshot(func() obs.Snapshot { return ps })
	}
	return r, res, base, 0
}

// profSnapshot extracts the profiler-owned portion of a batch result — the
// prof.* counters and the matrices — as a standalone snapshot. The registry
// counters stay out: the live server already scrapes the sink registry, and
// re-publishing them would double every scan/core series.
func profSnapshot(res consensus.BatchResult) obs.Snapshot {
	s := obs.Snapshot{Counters: map[string]int64{}, Matrices: res.Matrices}
	for k, v := range res.Counters {
		if strings.HasPrefix(k, "prof.") {
			s.Counters[k] = v
		}
	}
	return s
}

// derivedStats computes the informational ratios carried in Report.Derived.
// scan.retry_ratio is retries per clean double-collect — the scan-layer
// contention indicator the harness tables and bench artifacts both surface.
func derivedStats(counters map[string]int64) map[string]float64 {
	clean, retry := counters["scan.clean"], counters["scan.retry"]
	if clean <= 0 {
		return nil
	}
	return map[string]float64{"scan.retry_ratio": float64(retry) / float64(clean)}
}

// printReport renders one workload's report in the human text format.
func printReport(r benchfmt.Report, ring *obs.Ring) {
	fmt.Printf("algorithm     : %s (n=%d, %s substrate, %s dispatch)\n",
		r.Algorithm, r.N, benchfmt.NormSubstrate(r.Substrate), benchfmt.NormDispatch(r.Dispatch))
	if r.K != 0 || r.M != 0 {
		fmt.Printf("knobs         : K=%d M=%d (0 = default)\n", r.K, r.M)
	}
	fmt.Printf("instances     : %d over %d workers\n", r.Instances, r.Parallel)
	fmt.Printf("elapsed       : %.3fs (%.1f instances/sec)\n", r.ElapsedSec, r.InstancesPerSec)
	fmt.Printf("steps/instance: p50 %d, p90 %d, p99 %d (mean %.1f, min %d, max %d)\n",
		r.Steps.P50, r.Steps.P90, r.Steps.P99, r.Steps.Mean, r.Steps.Min, r.Steps.Max)
	if line := phaseMeansLine(r.Hists); line != "" {
		fmt.Printf("phase means   : %s\n", line)
	}
	if ratio, ok := r.Derived["scan.retry_ratio"]; ok {
		fmt.Printf("scan retries  : %.3f per clean double-collect\n", ratio)
	}
	if total := r.Counters[prof.CounterStepsTotal]; total > 0 {
		fmt.Printf("prof classes  : productive %d, scan-retry %d, coin-spin %d, strip-wait %d (of %d)\n",
			r.Counters[prof.CounterStepsProductive], r.Counters[prof.CounterStepsScanRetry],
			r.Counters[prof.CounterStepsCoinSpin], r.Counters[prof.CounterStepsStripWait], total)
	}
	if r.Space != nil {
		fmt.Printf("space         : %d regs peak (%d live), %d words, %s/register\n",
			r.Space.PeakRegs, r.Space.LiveRegs, r.Space.PeakWords, bitsLabel(r.Space.MaxBits))
	}
	if r.Latency != nil && r.Latency.Count > 0 {
		fmt.Printf("latency       : p50 %s, p90 %s, p99 %s, p999 %s (max %s)\n",
			nsLabel(r.Latency.P50NS), nsLabel(r.Latency.P90NS), nsLabel(r.Latency.P99NS),
			nsLabel(r.Latency.P999NS), nsLabel(r.Latency.MaxNS))
	}
	for _, s := range r.Stragglers {
		fmt.Printf("straggler     : instance %d, %s, %d steps, decision %d (seed %d)\n",
			s.Index, nsLabel(s.LatencyNS), s.Steps, s.Decision, s.Seed)
	}
	fmt.Printf("errors        : %d\n", r.Errors)
	if r.Violations > 0 {
		fmt.Printf("audit         : %d VIOLATIONS (see stderr for probes and dumps)\n", r.Violations)
	}
	if ring != nil {
		fmt.Printf("tail          : kept %d events, dropped %d\n", ring.Len(), ring.Dropped())
	}
}

// reportErrors prints every per-instance error and returns how many there
// were.
func reportErrors(res consensus.BatchResult) int {
	if res.ErrCount > 0 {
		for k, e := range res.Errors {
			if e != nil {
				fmt.Fprintf(os.Stderr, "consensus-load: instance %d: %v\n", k, e)
			}
		}
	}
	return res.ErrCount
}

// reportViolations prints the batch's invariant violations by probe plus the
// flight dumps written, and returns the total count.
func reportViolations(res consensus.BatchResult) int64 {
	var total int64
	keys := make([]string, 0, len(res.Violations))
	for k, v := range res.Violations {
		keys = append(keys, k)
		total += v
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(os.Stderr, "consensus-load: audit violation %s x%d\n", k, res.Violations[k])
	}
	for _, f := range res.AuditDumps {
		fmt.Fprintf(os.Stderr, "consensus-load: audit dump %s (replay with: go run ./cmd/consensus-audit %s)\n", f, f)
	}
	return total
}

// phaseMeansLine renders the phase.steps.* family as "prefer 1234.5, coin
// 67.8, ..." in stable phase order (empty when the family is absent).
func phaseMeansLine(hists map[string]obs.HistSnapshot) string {
	type pm struct {
		phase string
		mean  float64
	}
	var parts []pm
	for key, h := range hists {
		if ph, ok := strings.CutPrefix(key, obs.PhaseStepsPrefix); ok {
			parts = append(parts, pm{ph, h.Mean})
		}
	}
	if len(parts) == 0 {
		return ""
	}
	order := map[string]int{"prefer": 0, "coin": 1, "strip": 2, "decide": 3}
	sort.Slice(parts, func(i, j int) bool { return order[parts[i].phase] < order[parts[j].phase] })
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %.1f", p.phase, p.mean)
	}
	return sb.String()
}

func summarize(res consensus.BatchResult) benchfmt.StepsSummary {
	s := benchfmt.StepsSummary{
		P50: res.StepsPercentile(50),
		P90: res.StepsPercentile(90),
		P99: res.StepsPercentile(99),
	}
	if len(res.Steps) == 0 {
		return s
	}
	s.Min, s.Max = res.Steps[0], res.Steps[0]
	var sum int64
	for _, v := range res.Steps {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(sum) / float64(len(res.Steps))
	return s
}

func parseAlg(s string) (consensus.Algorithm, error) {
	switch s {
	case "bounded":
		return consensus.Bounded, nil
	case "aspnes-herlihy", "ah":
		return consensus.AspnesHerlihy, nil
	case "local-coin", "local":
		return consensus.LocalCoin, nil
	case "strong-coin", "strong":
		return consensus.StrongCoin, nil
	case "abrahamson", "a88":
		return consensus.Abrahamson, nil
	case "anonymous", "anon":
		return consensus.Anonymous, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

// nsLabel renders a nanosecond latency as a rounded duration.
func nsLabel(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// bitsLabel renders a bit width, with space.UnboundedBits as "unbounded bits".
func bitsLabel(bits int) string {
	if bits < 0 {
		return "unbounded bits"
	}
	return fmt.Sprintf("%d bits", bits)
}

func parseSubstrate(s string) (consensus.SubstrateKind, error) {
	switch s {
	case "", "simulated", "sim":
		return consensus.SimulatedSubstrate, nil
	case "native":
		return consensus.NativeSubstrate, nil
	default:
		return 0, fmt.Errorf("unknown substrate %q (want simulated | native)", s)
	}
}

func parseDispatch(s string) (bool, error) {
	switch s {
	case "", "sequential", "seq":
		return false, nil
	case "commuting":
		return true, nil
	default:
		return false, fmt.Errorf("unknown dispatch %q (want sequential | commuting)", s)
	}
}

func parseSchedule(kind string) (consensus.Schedule, error) {
	switch kind {
	case "round-robin", "rr":
		return consensus.Schedule{Kind: consensus.RoundRobin}, nil
	case "random":
		return consensus.Schedule{Kind: consensus.RandomSchedule}, nil
	default:
		return consensus.Schedule{}, fmt.Errorf("unknown schedule %q (batch supports round-robin | random)", kind)
	}
}
