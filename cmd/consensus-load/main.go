// Command consensus-load drives the batch engine at full throughput and
// reports instances/sec plus the step-count distribution — the repo's load
// generator and the producer of the machine-readable bench artifact
// (`make bench-json` > BENCH_batch.json).
//
// Usage examples:
//
//	consensus-load -instances 200
//	consensus-load -alg strong-coin -n 8 -instances 50 -parallel 4
//	consensus-load -instances 400 -json > BENCH_batch.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	consensus "github.com/dsrepro/consensus"
)

func main() {
	os.Exit(run())
}

// report is the JSON schema of -json mode (documented in DESIGN.md). One
// object per invocation; field names are stable.
type report struct {
	Algorithm       string           `json:"algorithm"`
	N               int              `json:"n"`
	Instances       int              `json:"instances"`
	Parallel        int              `json:"parallel"`
	Seed            int64            `json:"seed"`
	ElapsedSec      float64          `json:"elapsed_sec"`
	InstancesPerSec float64          `json:"instances_per_sec"`
	Errors          int              `json:"errors"`
	Steps           stepsSummary     `json:"steps"`
	Counters        map[string]int64 `json:"counters"`
	Gauges          map[string]int64 `json:"gauges"`
}

type stepsSummary struct {
	Mean float64 `json:"mean"`
	Min  int64   `json:"min"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
}

func run() int {
	var (
		instances = flag.Int("instances", 100, "independent consensus instances to run")
		parallel  = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); decisions are identical at any setting")
		n         = flag.Int("n", 4, "processes per instance (alternating binary inputs)")
		algFlag   = flag.String("alg", "bounded", "algorithm: bounded | aspnes-herlihy | local-coin | strong-coin | abrahamson")
		schedFlag = flag.String("schedule", "random", "schedule: round-robin | random")
		seed      = flag.Int64("seed", 1, "batch seed (instance k replays with Seed = InstanceSeed(seed, k))")
		maxSteps  = flag.Int64("max-steps", 100_000_000, "per-instance step budget")
		b         = flag.Int("b", 4, "shared-coin barrier multiplier")
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON object instead of text")
	)
	flag.Parse()

	alg, err := parseAlg(*algFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}
	schedule, err := parseSchedule(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}
	if *n < 1 {
		fmt.Fprintf(os.Stderr, "consensus-load: -n must be >= 1\n")
		return 2
	}
	inputs := make([]int, *n)
	for i := range inputs {
		inputs[i] = i % 2
	}

	start := time.Now()
	res, err := consensus.SolveBatch(consensus.BatchConfig{
		Instances: *instances,
		Base: consensus.Config{
			Inputs:    inputs,
			Algorithm: alg,
			Schedule:  schedule,
			MaxSteps:  *maxSteps,
			B:         *b,
		},
		Seed:     *seed,
		Parallel: *parallel,
	})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := report{
		Algorithm:       *algFlag,
		N:               *n,
		Instances:       *instances,
		Parallel:        workers,
		Seed:            *seed,
		ElapsedSec:      elapsed.Seconds(),
		InstancesPerSec: float64(*instances) / elapsed.Seconds(),
		Errors:          res.ErrCount,
		Steps:           summarize(res),
		Counters:        res.Counters,
		Gauges:          res.Gauges,
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
			return 1
		}
	} else {
		fmt.Printf("algorithm     : %s (n=%d)\n", r.Algorithm, r.N)
		fmt.Printf("instances     : %d over %d workers\n", r.Instances, r.Parallel)
		fmt.Printf("elapsed       : %.3fs (%.1f instances/sec)\n", r.ElapsedSec, r.InstancesPerSec)
		fmt.Printf("steps/instance: p50 %d, p90 %d, p99 %d (mean %.1f, min %d, max %d)\n",
			r.Steps.P50, r.Steps.P90, r.Steps.P99, r.Steps.Mean, r.Steps.Min, r.Steps.Max)
		fmt.Printf("errors        : %d\n", r.Errors)
	}
	if res.ErrCount > 0 {
		for k, e := range res.Errors {
			if e != nil {
				fmt.Fprintf(os.Stderr, "consensus-load: instance %d: %v\n", k, e)
			}
		}
		return 1
	}
	return 0
}

func summarize(res consensus.BatchResult) stepsSummary {
	s := stepsSummary{
		P50: res.StepsPercentile(50),
		P90: res.StepsPercentile(90),
		P99: res.StepsPercentile(99),
	}
	if len(res.Steps) == 0 {
		return s
	}
	s.Min, s.Max = res.Steps[0], res.Steps[0]
	var sum int64
	for _, v := range res.Steps {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(sum) / float64(len(res.Steps))
	return s
}

func parseAlg(s string) (consensus.Algorithm, error) {
	switch s {
	case "bounded":
		return consensus.Bounded, nil
	case "aspnes-herlihy", "ah":
		return consensus.AspnesHerlihy, nil
	case "local-coin", "local":
		return consensus.LocalCoin, nil
	case "strong-coin", "strong":
		return consensus.StrongCoin, nil
	case "abrahamson", "a88":
		return consensus.Abrahamson, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSchedule(kind string) (consensus.Schedule, error) {
	switch kind {
	case "round-robin", "rr":
		return consensus.Schedule{Kind: consensus.RoundRobin}, nil
	case "random":
		return consensus.Schedule{Kind: consensus.RandomSchedule}, nil
	default:
		return consensus.Schedule{}, fmt.Errorf("unknown schedule %q (batch supports round-robin | random)", kind)
	}
}
