// Command consensus-load drives the batch engine at full throughput and
// reports instances/sec plus the step-count distribution — the repo's load
// generator and the producer of the machine-readable bench artifact
// (`make bench-json` > BENCH_batch.json).
//
// Usage examples:
//
//	consensus-load -instances 200
//	consensus-load -alg strong-coin -n 8 -instances 50 -parallel 4
//	consensus-load -instances 400 -json > BENCH_batch.json
//	consensus-load -instances 5000 -listen 127.0.0.1:9090   # then scrape /metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/benchfmt"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/live"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		instances = flag.Int("instances", 100, "independent consensus instances to run")
		parallel  = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); decisions are identical at any setting")
		n         = flag.Int("n", 4, "processes per instance (alternating binary inputs)")
		algFlag   = flag.String("alg", "bounded", "algorithm: bounded | aspnes-herlihy | local-coin | strong-coin | abrahamson")
		schedFlag = flag.String("schedule", "random", "schedule: round-robin | random")
		seed      = flag.Int64("seed", 1, "batch seed (instance k replays with Seed = InstanceSeed(seed, k))")
		maxSteps  = flag.Int64("max-steps", 100_000_000, "per-instance step budget")
		b         = flag.Int("b", 4, "shared-coin barrier multiplier")
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON object instead of text")
		listen    = flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/pprof) on this address while the batch runs (e.g. 127.0.0.1:9090, :0 for a free port)")
		linger    = flag.Duration("linger", 0, "with -listen, keep serving telemetry this long after the batch completes")
		tail      = flag.Int("tail", 0, "keep the last N events in a ring for post-run inspection (0 = off; ordering across workers is unspecified)")
	)
	flag.Parse()

	alg, err := parseAlg(*algFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}
	schedule, err := parseSchedule(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}
	if *n < 1 {
		fmt.Fprintf(os.Stderr, "consensus-load: -n must be >= 1\n")
		return 2
	}
	inputs := make([]int, *n)
	for i := range inputs {
		inputs[i] = i % 2
	}

	// The batch reports into a caller-owned sink so the telemetry server can
	// scrape its registry mid-run. The optional ring is a debugging tail:
	// concurrency-safe, but with no cross-worker ordering guarantee.
	var ring *obs.Ring
	var rec obs.Recorder
	if *tail > 0 {
		ring = obs.NewRing(*tail)
		rec = ring
	}
	sink := obs.NewSink(rec)
	prog := &obs.BatchProgress{}

	if *listen != "" {
		srv := live.New()
		srv.AddRegistry(sink.Registry())
		srv.AddProgress(prog)
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "consensus-load: telemetry on http://%s/metrics\n", addr)
	}

	start := time.Now()
	res, err := consensus.SolveBatch(consensus.BatchConfig{
		Instances: *instances,
		Base: consensus.Config{
			Inputs:    inputs,
			Algorithm: alg,
			Schedule:  schedule,
			MaxSteps:  *maxSteps,
			B:         *b,
		},
		Seed:     *seed,
		Parallel: *parallel,
		Sink:     sink,
		Progress: prog,
	})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		return 2
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := benchfmt.Report{
		Algorithm:       *algFlag,
		N:               *n,
		Instances:       *instances,
		Parallel:        workers,
		Seed:            *seed,
		ElapsedSec:      elapsed.Seconds(),
		InstancesPerSec: float64(*instances) / elapsed.Seconds(),
		Errors:          res.ErrCount,
		Steps:           summarize(res),
		Counters:        res.Counters,
		Gauges:          res.Gauges,
		Hists:           res.Hists,
	}
	if ring != nil {
		r.Dropped = ring.Dropped()
	}

	if *jsonOut {
		if err := benchfmt.Write(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
			return 1
		}
	} else {
		fmt.Printf("algorithm     : %s (n=%d)\n", r.Algorithm, r.N)
		fmt.Printf("instances     : %d over %d workers\n", r.Instances, r.Parallel)
		fmt.Printf("elapsed       : %.3fs (%.1f instances/sec)\n", r.ElapsedSec, r.InstancesPerSec)
		fmt.Printf("steps/instance: p50 %d, p90 %d, p99 %d (mean %.1f, min %d, max %d)\n",
			r.Steps.P50, r.Steps.P90, r.Steps.P99, r.Steps.Mean, r.Steps.Min, r.Steps.Max)
		if line := phaseMeansLine(r.Hists); line != "" {
			fmt.Printf("phase means   : %s\n", line)
		}
		fmt.Printf("errors        : %d\n", r.Errors)
		if ring != nil {
			fmt.Printf("tail          : kept %d events, dropped %d\n", ring.Len(), ring.Dropped())
		}
	}
	if *listen != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "consensus-load: lingering %s for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	if res.ErrCount > 0 {
		for k, e := range res.Errors {
			if e != nil {
				fmt.Fprintf(os.Stderr, "consensus-load: instance %d: %v\n", k, e)
			}
		}
		return 1
	}
	return 0
}

// phaseMeansLine renders the phase.steps.* family as "prefer 1234.5, coin
// 67.8, ..." in stable phase order (empty when the family is absent).
func phaseMeansLine(hists map[string]obs.HistSnapshot) string {
	type pm struct {
		phase string
		mean  float64
	}
	var parts []pm
	for key, h := range hists {
		if ph, ok := strings.CutPrefix(key, obs.PhaseStepsPrefix); ok {
			parts = append(parts, pm{ph, h.Mean})
		}
	}
	if len(parts) == 0 {
		return ""
	}
	order := map[string]int{"prefer": 0, "coin": 1, "strip": 2, "decide": 3}
	sort.Slice(parts, func(i, j int) bool { return order[parts[i].phase] < order[parts[j].phase] })
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %.1f", p.phase, p.mean)
	}
	return sb.String()
}

func summarize(res consensus.BatchResult) benchfmt.StepsSummary {
	s := benchfmt.StepsSummary{
		P50: res.StepsPercentile(50),
		P90: res.StepsPercentile(90),
		P99: res.StepsPercentile(99),
	}
	if len(res.Steps) == 0 {
		return s
	}
	s.Min, s.Max = res.Steps[0], res.Steps[0]
	var sum int64
	for _, v := range res.Steps {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(sum) / float64(len(res.Steps))
	return s
}

func parseAlg(s string) (consensus.Algorithm, error) {
	switch s {
	case "bounded":
		return consensus.Bounded, nil
	case "aspnes-herlihy", "ah":
		return consensus.AspnesHerlihy, nil
	case "local-coin", "local":
		return consensus.LocalCoin, nil
	case "strong-coin", "strong":
		return consensus.StrongCoin, nil
	case "abrahamson", "a88":
		return consensus.Abrahamson, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSchedule(kind string) (consensus.Schedule, error) {
	switch kind {
	case "round-robin", "rr":
		return consensus.Schedule{Kind: consensus.RoundRobin}, nil
	case "random":
		return consensus.Schedule{Kind: consensus.RandomSchedule}, nil
	default:
		return consensus.Schedule{}, fmt.Errorf("unknown schedule %q (batch supports round-robin | random)", kind)
	}
}
