package main

import (
	"testing"

	"github.com/dsrepro/consensus/internal/benchfmt"
	"github.com/dsrepro/consensus/internal/obs"
)

// TestReconcileTailDrops is the regression test for the -tail drain race:
// the batch counters are snapshotted inside SolveBatch, so ring overwrites
// that land after that snapshot used to be reported in Dropped but missing
// from the obs.trace_dropped counter. Reconciliation must take the ring's
// final total and raise the counter to match.
func TestReconcileTailDrops(t *testing.T) {
	ring := obs.NewRing(2)
	sink := obs.NewSink(nil)
	ring.CountDropsInto(sink)
	for i := 0; i < 5; i++ { // 3 counted overwrites
		ring.Record(obs.Event{Step: int64(i)})
	}

	// The "final snapshot": counters frozen with 3 drops.
	r := benchfmt.Report{Counters: sink.Registry().Snapshot().Counters}

	// Two more overwrites land after the snapshot (the drain race).
	ring.Record(obs.Event{Step: 5})
	ring.Record(obs.Event{Step: 6})

	reconcileTailDrops(&r, ring)
	if r.Dropped != 5 {
		t.Errorf("Dropped = %d, want the ring's final total 5", r.Dropped)
	}
	if got := r.Counters[obs.TraceDropped.ID()]; got != 5 {
		t.Errorf("counter %s = %d, want raised to 5", obs.TraceDropped.ID(), got)
	}
}

// TestReconcileTailDropsEdges: nil ring is a no-op; a dropless ring reports
// zero without inventing a counters map; an existing higher counter (another
// ring feeding the same sink) is never lowered.
func TestReconcileTailDropsEdges(t *testing.T) {
	r := benchfmt.Report{}
	reconcileTailDrops(&r, nil)
	if r.Dropped != 0 || r.Counters != nil {
		t.Errorf("nil ring mutated report: %+v", r)
	}

	reconcileTailDrops(&r, obs.NewRing(4))
	if r.Dropped != 0 || r.Counters != nil {
		t.Errorf("dropless ring mutated counters: %+v", r)
	}

	ring := obs.NewRing(1)
	ring.Record(obs.Event{Step: 1})
	ring.Record(obs.Event{Step: 2}) // 1 drop
	r = benchfmt.Report{Counters: map[string]int64{obs.TraceDropped.ID(): 9}}
	reconcileTailDrops(&r, ring)
	if r.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", r.Dropped)
	}
	if got := r.Counters[obs.TraceDropped.ID()]; got != 9 {
		t.Errorf("counter lowered to %d, want kept at 9", got)
	}
}
