// Command consensus-sim runs one consensus instance and reports the outcome
// and cost, exposing every knob of the public API.
//
// Usage examples:
//
//	consensus-sim -inputs 0,1,1,0
//	consensus-sim -inputs 0,1 -alg aspnes-herlihy -schedule random -seed 7
//	consensus-sim -inputs 1,0,1 -schedule lagger -victim 0 -period 64
//	consensus-sim -inputs 0,1,1 -crash 1:200,2:800
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/live"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/walk"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		inputsFlag = flag.String("inputs", "0,1", "comma-separated binary inputs, one per process")
		algFlag    = flag.String("alg", "bounded", "algorithm: bounded | aspnes-herlihy | local-coin | strong-coin | abrahamson | anonymous")
		schedFlag  = flag.String("schedule", "round-robin", "schedule: round-robin | random | lagger")
		subFlag    = flag.String("substrate", "simulated", "execution backend: simulated | native (real goroutines on lock-free registers; -crash and lagger starvation are emulated, other schedule kinds and replay do not apply)")
		dispFlag   = flag.String("dispatch", "sequential", "dispatch engine: sequential (one adversary grant per step) | commuting (batch steps with disjoint register footprints between consults; simulated substrate only)")
		victim     = flag.Int("victim", 0, "lagger: starved process id")
		period     = flag.Int("period", 16, "lagger: victim scheduled once per period steps")
		crashFlag  = flag.String("crash", "", "crashes as pid:step,pid:step")
		seed       = flag.Int64("seed", 1, "random seed (runs replay exactly for equal seeds)")
		maxSteps   = flag.Int64("max-steps", 100_000_000, "abort after this many atomic steps")
		b          = flag.Int("b", 4, "shared-coin barrier multiplier")
		m          = flag.Int("m", 0, "coin counter bound (0 = derived default)")
		k          = flag.Int("k", 0, "rounds-strip constant (0 = default 2)")
		bloom      = flag.Bool("bloom", false, "build arrow registers from Bloom's 2W2R construction")
		trace      = flag.Bool("trace", false, "print the protocol event log to stderr (round advances, preference changes, coin flips, decisions)")
		traceOut   = flag.String("trace-out", "", "write the full cross-layer event stream (register/scan/walk/strip/core) as JSONL to this file")
		metrics    = flag.Bool("metrics", false, "print the cross-layer observability counters after the run")
		profFlag   = flag.Bool("prof", false, "run the step profiler and print the step-class/blame/critical-path summary (implied by -prof-out/-prof-json)")
		profOut    = flag.String("prof-out", "", "write the profiled run as a Chrome-trace-event/Perfetto JSON file (open in ui.perfetto.dev)")
		profJSON   = flag.String("prof-json", "", "write the raw profile (classes, blame matrix, critical path) as JSON to this file (analyse with: traceview -prof)")
		spaceFlag  = flag.Bool("space", false, "meter space usage and print the per-layer accounting table; for -alg bounded, non-zero exit if a measured payload exceeds the static bounds (|coin| > M+1 or a strip counter >= 3K)")
		spaceJSON  = flag.String("space-json", "", "write the space usage snapshot as JSON to this file (analyse with: traceview -space); implies -space")
		auditFlag  = flag.Bool("audit", false, "run the online invariant monitor; non-zero exit if any probe fires")
		auditEvery = flag.Int("audit-sample", 0, "audit: run sampled probes every N opportunities (0 = default 64, 1 = every)")
		auditDir   = flag.String("audit-dir", "", "audit: write flight-recorder dumps to this directory (replay with consensus-audit)")
		listen     = flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/pprof) on this address while the run executes (e.g. 127.0.0.1:9090, :0 for a free port)")
		linger     = flag.Duration("linger", 0, "with -listen, keep serving telemetry this long after the run completes")
	)
	flag.Parse()

	inputs, err := parseInputs(*inputsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
		return 2
	}
	alg, err := parseAlg(*algFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
		return 2
	}
	schedule, err := parseSchedule(*schedFlag, *victim, *period, *crashFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
		return 2
	}
	substrate, err := parseSubstrate(*subFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
		return 2
	}
	commuting, err := parseDispatch(*dispFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
		return 2
	}

	cfg := consensus.Config{
		Inputs:           inputs,
		Algorithm:        alg,
		Seed:             *seed,
		Schedule:         schedule,
		Substrate:        substrate,
		ParallelDispatch: commuting,
		MaxSteps:         *maxSteps,
		B:                *b,
		M:                *m,
		K:                *k,
		UseBloomArrows:   *bloom,
	}
	if *spaceJSON != "" {
		*spaceFlag = true
	}
	cfg.Space = *spaceFlag
	if *auditFlag || *auditDir != "" || *auditEvery > 0 {
		cfg.Audit = true
		cfg.AuditSampleEvery = *auditEvery
		cfg.AuditDumpDir = *auditDir
	}
	if *profOut != "" || *profJSON != "" {
		*profFlag = true
	}
	cfg.Profile = *profFlag
	if *trace {
		cfg.TraceWriter = os.Stderr
	}
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
			return 2
		}
		cfg.TraceJSONL = traceFile
	}
	if *listen != "" {
		cfg.Sink = obs.NewSink(nil)
		srv := live.New()
		srv.AddRegistry(cfg.Sink.Registry())
		addr, lerr := srv.Start(*listen)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", lerr)
			return 2
		}
		defer srv.Close()
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "consensus-sim: lingering %s for scrapes\n", *linger)
				time.Sleep(*linger)
			}
		}()
		fmt.Fprintf(os.Stderr, "consensus-sim: telemetry on http://%s/metrics\n", addr)
	}
	res, err := consensus.Solve(cfg)
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-sim: run ended early: %v\n", err)
	}

	fmt.Printf("algorithm : %v\n", alg)
	if substrate == consensus.NativeSubstrate {
		fmt.Printf("substrate : native (hardware interleaving — not replayable)\n")
	}
	if commuting {
		fmt.Printf("dispatch  : commuting (batched disjoint-footprint grants; deterministic, seed-reproducible)\n")
	}
	fmt.Printf("inputs    : %v\n", inputs)
	fmt.Printf("decision  : %d\n", res.Value)
	fmt.Printf("steps     : %d (per process %v)\n", res.Steps, res.PerProcSteps)
	fmt.Printf("rounds    : %v\n", res.Rounds)
	fmt.Printf("coinflips : %v\n", res.CoinFlips)
	fmt.Printf("max|coin| : %d\n", res.MaxAbsCoin)
	if res.MaxRound > 0 {
		fmt.Printf("max round : %d (unbounded round numbers!)\n", res.MaxRound)
	} else {
		fmt.Printf("max round : none stored (bounded rounds strip)\n")
	}
	for i, d := range res.Decided {
		if !d {
			fmt.Printf("process %d : UNDECIDED (crashed or budget)\n", i)
		}
	}
	if *metrics {
		printMetrics(res)
	}
	spaceExceeded := false
	if *spaceFlag {
		if res.Space == nil {
			fmt.Fprintln(os.Stderr, "consensus-sim: metering produced no space report")
			return 1
		}
		printSpace(*res.Space)
		if *spaceJSON != "" {
			data, jerr := json.MarshalIndent(res.Space, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*spaceJSON, append(data, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", jerr)
				return 1
			}
			fmt.Printf("space-json: %s (analyse with: go run ./cmd/traceview -space %s)\n", *spaceJSON, *spaceJSON)
		}
		if alg == consensus.Bounded {
			spaceExceeded = checkStaticBounds(*res.Space, len(inputs), *b, *m, *k)
		}
	}
	if *profFlag {
		if code := reportProfile(res.Profile, *profOut, *profJSON); code != 0 {
			return code
		}
	}
	if traceFile != nil {
		fmt.Printf("trace     : %s (analyse with: go run ./cmd/traceview %s)\n", *traceOut, *traceOut)
	}
	violated := false
	if cfg.Audit {
		if len(res.Violations) == 0 {
			fmt.Printf("audit     : clean (%d coin truncations)\n", res.Truncations)
		} else {
			violated = true
			fmt.Printf("audit     : VIOLATIONS\n")
			for _, k := range sortedKeys(res.Violations) {
				fmt.Printf("  %-16s %d\n", k, res.Violations[k])
			}
			for _, f := range res.AuditDumps {
				fmt.Printf("  dump: %s (replay with: go run ./cmd/consensus-audit %s)\n", f, f)
			}
		}
	}
	if err != nil || violated || spaceExceeded {
		return 1
	}
	return 0
}

// printSpace renders the per-layer accounting table in enum order, with the
// totals line first to match the rest of the summary.
func printSpace(u space.Usage) {
	fmt.Printf("space     : %d regs (%d live), %d words, %d bits/register max\n",
		u.Regs, u.LiveRegs, u.PeakWords, u.MaxBits)
	fmt.Printf("  %-9s %5s %5s %6s  %-9s %-9s %7s\n",
		"layer", "regs", "live", "words", "declared", "measured", "max|v|")
	for _, name := range space.LayerNames() {
		lu, ok := u.Layers[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-9s %5d %5d %6d  %-9s %-9s %7d\n",
			name, lu.Regs, lu.LiveRegs, lu.Words,
			widthLabel(lu.DeclaredBits), widthLabel(lu.MeasuredBits), lu.MaxAbs)
	}
}

// widthLabel renders a bit width, with space.UnboundedBits as "unbound".
func widthLabel(bits int) string {
	if bits == space.UnboundedBits {
		return "unbound"
	}
	return fmt.Sprintf("%d bit", bits)
}

// checkStaticBounds verifies the bounded protocol's measured payloads against
// the paper's static bounds — coin counters clamp to ±(M+1), strip counters
// live mod 3K — and reports (printing the verdict) whether any was exceeded.
// This is the teeth behind scripts/space_smoke.sh.
func checkStaticBounds(u space.Usage, n, b, m, k int) bool {
	if k <= 0 {
		k = 2 // the protocol default
	}
	exceeded := false
	if m >= 0 { // m < 0 runs the walk unbounded: no static bound to hold
		if m == 0 {
			m = (walk.Params{N: n, B: b}).DefaultM()
		}
		if got := u.Layers["walk"].MaxAbs; got > int64(m)+1 {
			exceeded = true
			fmt.Printf("space     : BOUND EXCEEDED: walk |counter| %d > M+1 = %d\n", got, m+1)
		}
	}
	if got := u.Layers["strip"].MaxAbs; got >= int64(3*k) {
		exceeded = true
		fmt.Printf("space     : BOUND EXCEEDED: strip counter %d >= 3K = %d\n", got, 3*k)
	}
	if !exceeded {
		fmt.Printf("space     : static bounds hold (|coin| <= M+1, strip < 3K)\n")
	}
	return exceeded
}

// reportProfile prints the three-line profile summary and writes the optional
// Perfetto and raw-JSON artifacts. Non-zero return is an I/O failure.
func reportProfile(p *prof.Profile, perfettoPath, jsonPath string) int {
	if p == nil {
		fmt.Fprintln(os.Stderr, "consensus-sim: profiling produced no profile")
		return 1
	}
	c := p.Classes
	fmt.Printf("prof      : %d steps = %d productive + %d scan-retry + %d coin-spin + %d strip-wait\n",
		c.Total, c.Productive, c.ScanRetry, c.CoinSpin, c.StripWait)
	if scanner, writer, v := hottestCell(p.Blame); v > 0 {
		_, reg, rv := hottestCell(p.Contention)
		fmt.Printf("blame     : worst pair scanner %d <- writer %d (%d retries); hottest register %d (%d)\n",
			scanner, writer, v, reg, rv)
	}
	if cp := p.CriticalPath; cp.Decider >= 0 {
		fmt.Printf("crit path : chain length %d (%d joins) ends at process %d deciding at step %d\n",
			cp.Len, len(cp.Nodes)-1, cp.Decider, cp.DecideStep)
	}
	if perfettoPath != "" {
		f, err := os.Create(perfettoPath)
		if err == nil {
			err = prof.WritePerfetto(f, p)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
			return 1
		}
		fmt.Printf("perfetto  : %s (open in ui.perfetto.dev)\n", perfettoPath)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(p, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-sim: %v\n", err)
			return 1
		}
		fmt.Printf("profile   : %s (analyse with: go run ./cmd/traceview -prof %s)\n", jsonPath, jsonPath)
	}
	return 0
}

// hottestCell returns the row, column and value of the matrix's maximum cell
// (first in row-major order on ties; value 0 when the matrix is empty).
func hottestCell(m obs.MatrixSnapshot) (row, col int, v int64) {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if cv := m.At(r, c); cv > v {
				row, col, v = r, c, cv
			}
		}
	}
	return row, col, v
}

func printMetrics(res consensus.Result) {
	fmt.Println("observability counters:")
	for _, k := range sortedKeys(res.Counters) {
		fmt.Printf("  %-22s %d\n", k, res.Counters[k])
	}
	for _, k := range sortedKeys(res.Gauges) {
		fmt.Printf("  %-22s %d (max)\n", k, res.Gauges[k])
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func parseInputs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || (v != 0 && v != 1) {
			return nil, fmt.Errorf("invalid input %q (want 0 or 1)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseAlg(s string) (consensus.Algorithm, error) {
	switch s {
	case "bounded":
		return consensus.Bounded, nil
	case "aspnes-herlihy", "ah":
		return consensus.AspnesHerlihy, nil
	case "local-coin", "local":
		return consensus.LocalCoin, nil
	case "strong-coin", "strong":
		return consensus.StrongCoin, nil
	case "abrahamson", "a88":
		return consensus.Abrahamson, nil
	case "anonymous", "anon":
		return consensus.Anonymous, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseDispatch(s string) (bool, error) {
	switch s {
	case "", "sequential", "seq":
		return false, nil
	case "commuting":
		return true, nil
	default:
		return false, fmt.Errorf("unknown dispatch %q (want sequential | commuting)", s)
	}
}

func parseSubstrate(s string) (consensus.SubstrateKind, error) {
	switch s {
	case "", "simulated", "sim":
		return consensus.SimulatedSubstrate, nil
	case "native":
		return consensus.NativeSubstrate, nil
	default:
		return 0, fmt.Errorf("unknown substrate %q (want simulated | native)", s)
	}
}

func parseSchedule(kind string, victim, period int, crash string) (consensus.Schedule, error) {
	var s consensus.Schedule
	switch kind {
	case "round-robin", "rr":
		s.Kind = consensus.RoundRobin
	case "random":
		s.Kind = consensus.RandomSchedule
	case "lagger":
		s.Kind = consensus.LaggerSchedule
		s.Victim, s.Period = victim, period
	default:
		return s, fmt.Errorf("unknown schedule %q", kind)
	}
	if crash != "" {
		s.CrashAt = make(map[int]int64)
		for _, part := range strings.Split(crash, ",") {
			var pid int
			var step int64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &pid, &step); err != nil {
				return s, fmt.Errorf("invalid crash spec %q (want pid:step)", part)
			}
			s.CrashAt[pid] = step
		}
	}
	return s, nil
}
