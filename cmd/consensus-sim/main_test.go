package main

import (
	"testing"

	consensus "github.com/dsrepro/consensus"
)

func TestParseInputs(t *testing.T) {
	in, err := parseInputs("0,1, 1 ,0")
	if err != nil {
		t.Fatalf("parseInputs: %v", err)
	}
	want := []int{0, 1, 1, 0}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("parseInputs = %v, want %v", in, want)
		}
	}
	for _, bad := range []string{"", "2", "a", "0,,1"} {
		if _, err := parseInputs(bad); err == nil {
			t.Fatalf("parseInputs(%q): expected error", bad)
		}
	}
}

func TestParseAlg(t *testing.T) {
	cases := map[string]consensus.Algorithm{
		"bounded":        consensus.Bounded,
		"aspnes-herlihy": consensus.AspnesHerlihy,
		"ah":             consensus.AspnesHerlihy,
		"local-coin":     consensus.LocalCoin,
		"local":          consensus.LocalCoin,
		"strong-coin":    consensus.StrongCoin,
		"strong":         consensus.StrongCoin,
		"abrahamson":     consensus.Abrahamson,
		"a88":            consensus.Abrahamson,
	}
	for s, want := range cases {
		got, err := parseAlg(s)
		if err != nil || got != want {
			t.Fatalf("parseAlg(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseAlg("nope"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := parseSchedule("lagger", 2, 64, "")
	if err != nil || s.Kind != consensus.LaggerSchedule || s.Victim != 2 || s.Period != 64 {
		t.Fatalf("parseSchedule lagger = %+v, %v", s, err)
	}
	s, err = parseSchedule("random", 0, 0, "1:100, 2:500")
	if err != nil {
		t.Fatalf("parseSchedule crash: %v", err)
	}
	if s.CrashAt[1] != 100 || s.CrashAt[2] != 500 {
		t.Fatalf("CrashAt = %v", s.CrashAt)
	}
	if _, err := parseSchedule("bogus", 0, 0, ""); err == nil {
		t.Fatal("expected error for unknown schedule")
	}
	if _, err := parseSchedule("rr", 0, 0, "oops"); err == nil {
		t.Fatal("expected error for malformed crash spec")
	}
}
