// Command consensus-straggler is the tail-forensics driver: it runs a batch
// with wall-clock metering, names the k slowest instances, deterministically
// re-executes each one with full instrumentation (JSONL trace, causal step
// profiler, escalated audit probes), and prints a blame table explaining
// where every straggler's steps went. Bundles land under -dir, one
// subdirectory per straggler (inspect with: traceview -tail DIR/summary.json).
//
// Usage examples:
//
//	consensus-straggler -instances 500
//	consensus-straggler -alg aspnes-herlihy -n 8 -instances 200 -stragglers 5
//	consensus-straggler -instances 1000 -schedule random -seed 7 -dir /tmp/forensics
//
// Exit status: 0 all replays matched, 1 a replay diverged or failed, 2 usage
// error. The native substrate is refused: hardware interleavings are not
// replayable, so there is nothing deterministic to instrument.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	consensus "github.com/dsrepro/consensus"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		instances  = flag.Int("instances", 200, "independent consensus instances to run")
		stragglers = flag.Int("stragglers", 3, "replay the N slowest instances")
		parallel   = flag.Int("parallel", 0, "batch worker count (0 = GOMAXPROCS); the digest and replays are unaffected")
		n          = flag.Int("n", 4, "processes per instance (alternating binary inputs)")
		algFlag    = flag.String("alg", "bounded", "algorithm: bounded | aspnes-herlihy | local-coin | strong-coin | abrahamson | anonymous")
		schedFlag  = flag.String("schedule", "random", "schedule: round-robin | random")
		subFlag    = flag.String("substrate", "simulated", "execution backend; only simulated is replayable (native is refused)")
		seed       = flag.Int64("seed", 1, "batch seed (instance k replays with Seed = InstanceSeed(seed, k))")
		maxSteps   = flag.Int64("max-steps", 100_000_000, "per-instance step budget")
		b          = flag.Int("b", 4, "shared-coin barrier multiplier")
		kFlag      = flag.Int("k", 0, "rounds-strip constant (0 = algorithm default)")
		mFlag      = flag.Int("m", 0, "coin-counter bound (0 = algorithm default)")
		dir        = flag.String("dir", "stragglers", "directory for forensic bundles (one subdirectory per straggler)")
	)
	flag.Parse()

	if *subFlag != "" && *subFlag != "simulated" && *subFlag != "sim" {
		fmt.Fprintf(os.Stderr, "consensus-straggler: substrate %q is not replayable — straggler forensics needs the simulated substrate's deterministic interleavings (native stragglers are print-only; see consensus-load -stragglers)\n", *subFlag)
		return 2
	}
	alg, err := parseAlg(*algFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-straggler: %v\n", err)
		return 2
	}
	schedule, err := parseSchedule(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-straggler: %v\n", err)
		return 2
	}
	if *n < 1 || *instances < 1 || *stragglers < 1 {
		fmt.Fprintf(os.Stderr, "consensus-straggler: -n, -instances and -stragglers must be >= 1\n")
		return 2
	}

	inputs := make([]int, *n)
	for i := range inputs {
		inputs[i] = i % 2
	}
	base := consensus.Config{
		Inputs:    inputs,
		Algorithm: alg,
		Schedule:  schedule,
		MaxSteps:  *maxSteps,
		B:         *b,
		K:         *kFlag,
		M:         *mFlag,
		Latency:   true,
	}

	res, err := consensus.SolveBatch(consensus.BatchConfig{
		Instances:  *instances,
		Base:       base,
		Seed:       *seed,
		Parallel:   *parallel,
		Stragglers: *stragglers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-straggler: %v\n", err)
		return 2
	}

	lat := res.LatencySummary()
	fmt.Printf("batch         : %s n=%d, %d instances, seed %d\n", *algFlag, *n, *instances, *seed)
	fmt.Printf("latency       : p50 %.2fms, p90 %.2fms, p99 %.2fms, p999 %.2fms (max %.2fms)\n",
		ms(lat.P50NS), ms(lat.P90NS), ms(lat.P99NS), ms(lat.P999NS), ms(lat.MaxNS))
	fmt.Println()

	bad := 0
	fmt.Printf("%-4s %9s %10s %8s  %-24s %s\n", "inst", "latency", "steps", "decision", "blame (steps by class)", "bundle")
	for _, s := range res.Stragglers {
		bdir := filepath.Join(*dir, fmt.Sprintf("%s-n%d-i%d", *algFlag, *n, s.Index))
		bundle, err := consensus.ReplayStraggler(base, s, bdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-straggler: instance %d: %v\n", s.Index, err)
			bad++
			continue
		}
		fmt.Printf("%-4d %7.2fms %10d %8d  %-24s %s\n",
			s.Index, ms(s.LatencyNS), bundle.ReplaySteps, bundle.ReplayDecision,
			blameLine(bundle), bundle.Dir)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// blameLine compresses a bundle's summary.json blame digest into one table
// cell: the dominant step classes as percentages of the replayed step total.
func blameLine(b consensus.StragglerBundle) string {
	data, err := os.ReadFile(b.SummaryPath)
	if err != nil {
		return "?"
	}
	sum, err := consensus.ParseStragglerSummary(data)
	if err != nil {
		return "?"
	}
	total := float64(b.ReplaySteps)
	if total <= 0 {
		return "-"
	}
	num := func(key string) float64 {
		// ParseStragglerSummary keeps numbers as json.Number (exact int64s).
		if n, ok := sum[key].(json.Number); ok {
			v, _ := n.Float64()
			return v
		}
		v, _ := sum[key].(float64)
		return v
	}
	return fmt.Sprintf("prod %.0f%% retry %.0f%% coin %.0f%%",
		100*num("steps_productive")/total,
		100*num("steps_scan_retry")/total,
		100*num("steps_coin_spin")/total)
}

// ms converts nanoseconds to milliseconds for the table.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

func parseAlg(s string) (consensus.Algorithm, error) {
	switch s {
	case "bounded":
		return consensus.Bounded, nil
	case "aspnes-herlihy", "ah":
		return consensus.AspnesHerlihy, nil
	case "local-coin", "local":
		return consensus.LocalCoin, nil
	case "strong-coin", "strong":
		return consensus.StrongCoin, nil
	case "abrahamson", "a88":
		return consensus.Abrahamson, nil
	case "anonymous", "anon":
		return consensus.Anonymous, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSchedule(kind string) (consensus.Schedule, error) {
	switch kind {
	case "round-robin", "rr":
		return consensus.Schedule{Kind: consensus.RoundRobin}, nil
	case "random":
		return consensus.Schedule{Kind: consensus.RandomSchedule}, nil
	default:
		return consensus.Schedule{}, fmt.Errorf("unknown schedule %q (want round-robin | random)", kind)
	}
}
