// Command experiments regenerates every experiment table from DESIGN.md /
// EXPERIMENTS.md: the quantitative lemmas and claims of Attiya–Dolev–Shavit,
// "Bounded Polynomial Randomized Consensus" (PODC 1989).
//
// Usage:
//
//	experiments [-run E1,E5] [-trials N] [-seed S] [-parallel P] [-quick] [-list]
//
// With no -run flag every experiment runs in ID order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dsrepro/consensus/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment IDs (e.g. E1,E5); empty = all")
		trials = flag.Int("trials", 0, "trials per configuration (0 = per-experiment default)")
		seed   = flag.Int64("seed", 1, "random seed")
		par    = flag.Int("parallel", 0, "trial worker count (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list   = flag.Bool("list", false, "list experiments and exit")
		format = flag.String("format", "text", "output format: text | markdown | csv")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %-50s paper: %s\n", e.ID, e.Title, e.PaperRef)
		}
		return 0
	}

	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	f, err := harness.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	opts := harness.RunOpts{Trials: *trials, Seed: *seed, Quick: *quick, Parallel: *par}
	for _, e := range selected {
		harness.RunAndRenderAs(e, opts, os.Stdout, f)
	}
	return 0
}
