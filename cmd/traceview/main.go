// Command traceview summarises a JSONL trace produced by
// consensus-sim -trace-out (or by consensus.Config.TraceJSONL directly).
//
// It renders per-layer and per-kind event counts, the steps each process
// took to decide, and a scan-retry histogram:
//
//	consensus-sim -inputs 0,1,1,0 -trace-out run.jsonl
//	traceview run.jsonl
//	traceview -format markdown run.jsonl
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	formatFlag := flag.String("format", "text", "output format: text | markdown | csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: traceview [-format text|markdown|csv] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	format, err := harness.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 2
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "traceview: trace is empty")
		return 1
	}
	for _, t := range summarise(flag.Arg(0), events) {
		t.RenderAs(os.Stdout, format)
	}
	return 0
}

// summarise builds the analysis tables from a decoded event stream.
func summarise(name string, events []Event) []*harness.Table {
	var tables []*harness.Table

	// Per-layer totals, in stack order (register at the bottom, core on top).
	layerCounts := map[obs.Layer]int64{}
	kindCounts := map[obs.Kind]int64{}
	lastStep := int64(0)
	for _, e := range events {
		layerCounts[e.Kind.Layer()]++
		kindCounts[e.Kind]++
		if e.Step > lastStep {
			lastStep = e.Step
		}
	}
	lt := &harness.Table{
		Title:   fmt.Sprintf("%s: events per layer (%d events over %d steps)", name, len(events), lastStep),
		Columns: []string{"layer", "events", "share"},
	}
	for _, l := range []obs.Layer{obs.LayerRegister, obs.LayerScan, obs.LayerWalk, obs.LayerStrip, obs.LayerSched, obs.LayerCore} {
		if c, ok := layerCounts[l]; ok {
			lt.Add(l.String(), c, fmt.Sprintf("%.1f%%", 100*float64(c)/float64(len(events))))
		}
	}
	tables = append(tables, lt)

	kt := &harness.Table{
		Title:   fmt.Sprintf("%s: events per kind", name),
		Columns: []string{"kind", "events"},
	}
	for _, k := range obs.Kinds() {
		if c, ok := kindCounts[k]; ok {
			kt.Add(k.ID(), c)
		}
	}
	tables = append(tables, kt)

	// Steps to decide, per process: the Step field of each CoreDecide event.
	decided := map[int]int64{}
	started := map[int]bool{}
	for _, e := range events {
		switch e.Kind {
		case obs.CoreStart:
			started[e.Pid] = true
		case obs.CoreDecide:
			if _, ok := decided[e.Pid]; !ok {
				decided[e.Pid] = e.Step
			}
		}
	}
	if len(started) > 0 || len(decided) > 0 {
		pids := make([]int, 0, len(started))
		for p := range started {
			pids = append(pids, p)
		}
		for p := range decided {
			if !started[p] {
				pids = append(pids, p)
			}
		}
		sort.Ints(pids)
		dt := &harness.Table{
			Title:   fmt.Sprintf("%s: steps to decide per process", name),
			Columns: []string{"process", "decided at step"},
		}
		for _, p := range pids {
			if s, ok := decided[p]; ok {
				dt.Add(fmt.Sprintf("p%d", p), s)
			} else {
				dt.Add(fmt.Sprintf("p%d", p), "UNDECIDED")
			}
		}
		dt.Note("steps are global scheduler steps, so later deciders include every process's work.")
		tables = append(tables, dt)
	}

	// Scan-retry distribution: each scan.clean / scan.borrow event carries the
	// number of retried collects that scan took in Value.
	h := harness.NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128)
	for _, e := range events {
		if e.Kind == obs.ScanClean || e.Kind == obs.ScanBorrow {
			h.Observe(e.Value)
		}
	}
	if snap := h.Snapshot(); snap.Count > 0 {
		ht := &harness.Table{
			Title:   fmt.Sprintf("%s: double-collect retries per scan (%d scans)", name, snap.Count),
			Columns: []string{"retries ≤", "scans"},
		}
		for _, b := range snap.Buckets {
			if b.Count == 0 {
				continue
			}
			label := fmt.Sprintf("%d", b.Le)
			if b.Le == math.MaxInt64 {
				label = "more"
			}
			ht.Add(label, b.Count)
		}
		ht.Note("p50=%s p90=%s p99=%s max=%d", harness.F(snap.P50), harness.F(snap.P90), harness.F(snap.P99), snap.Max)
		tables = append(tables, ht)
	}

	return tables
}

// Event aliases obs.Event for brevity in this package.
type Event = obs.Event
