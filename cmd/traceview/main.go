// Command traceview summarises a JSONL trace produced by
// consensus-sim -trace-out (or by consensus.Config.TraceJSONL directly).
//
// It renders per-layer and per-kind event counts, the steps each process
// took to decide, a per-phase step attribution table, and a scan-retry
// histogram:
//
//	consensus-sim -inputs 0,1,1,0 -trace-out run.jsonl
//	traceview run.jsonl
//	traceview -format markdown run.jsonl
//	traceview -phase coin run.jsonl   # plus a per-process table for one phase
//	traceview -audit run.jsonl        # only the invariant-audit tables
//
// Traces from audited runs (consensus-sim -audit) carry audit-layer events;
// traceview summarises the violations by probe and lists the flight dumps.
// It also reads the JSONL tail of a flight-dump file directly.
//
// Profiles from consensus-sim -prof-json are a different artifact (step
// classes, blame matrix, critical path — not an event stream) and get their
// own modes:
//
//	consensus-sim -inputs 0,1,1,0 -prof-json run.prof.json
//	traceview -prof run.prof.json        # blame matrix, contention, critical path
//	traceview -perfetto run.trace.json   # validate + summarise a Perfetto export
//
// Space usage snapshots from consensus-sim -space-json are a third artifact
// (per-layer register/word/width accounting, see internal/obs/space):
//
//	consensus-sim -inputs 0,1,1,0 -space-json run.space.json
//	traceview -space run.space.json      # per-layer accounting + totals
//
// Bench artifacts carrying latency blocks (consensus-load -json, see
// internal/benchfmt) have a tail-latency view — wall-clock quantiles per
// workload, straggler digests, environment stamps — which also reads a
// straggler bundle's summary.json:
//
//	consensus-load -matrix -json > BENCH_batch.json
//	traceview -tail BENCH_batch.json
//	traceview -tail stragglers/bounded-n4-i40/summary.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	formatFlag := flag.String("format", "text", "output format: text | markdown | csv")
	phaseFlag := flag.String("phase", "", "also render a per-process breakdown of one phase: prefer | coin | strip | decide")
	auditFlag := flag.Bool("audit", false, "render only the invariant-audit tables (violations by probe, flight dumps)")
	profFlag := flag.String("prof", "", "render a profile JSON (consensus-sim -prof-json): step classes, blame matrix, contention, critical path")
	perfettoFlag := flag.String("perfetto", "", "validate and summarise a Perfetto export (consensus-sim -prof-out)")
	spaceFlag := flag.String("space", "", "render a space usage snapshot (consensus-sim -space-json): per-layer register/word/width accounting")
	tailFlag := flag.String("tail", "", "render the tail-latency view of a bench artifact (consensus-load -json): latency quantiles, straggler digests, environment stamps; also accepts a straggler bundle's summary.json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: traceview [-format text|markdown|csv] [-phase name] [-audit] trace.jsonl\n")
		fmt.Fprintf(os.Stderr, "       traceview [-format ...] -prof profile.json | -perfetto trace.json | -space usage.json | -tail bench.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	format, err := harness.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 2
	}
	if *profFlag != "" {
		return runProf(*profFlag, format)
	}
	if *spaceFlag != "" {
		return runSpace(*spaceFlag, format)
	}
	if *tailFlag != "" {
		return runTail(*tailFlag, format)
	}
	if *perfettoFlag != "" {
		return runPerfetto(*perfettoFlag, format)
	}
	if *phaseFlag != "" {
		if _, ok := obs.PhaseForName(*phaseFlag); !ok {
			fmt.Fprintf(os.Stderr, "traceview: unknown phase %q (want prefer | coin | strip | decide)\n", *phaseFlag)
			return 2
		}
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "traceview: trace is empty")
		return 1
	}
	if *auditFlag {
		for _, t := range auditTables(flag.Arg(0), events) {
			t.RenderAs(os.Stdout, format)
		}
		return 0
	}
	for _, t := range summarise(flag.Arg(0), events, *phaseFlag) {
		t.RenderAs(os.Stdout, format)
	}
	return 0
}

// auditTables summarises the audit-layer events of a trace: violations
// grouped by probe with first/last firing step, and the flight dumps
// produced. Returns a single empty-notice table when the trace has none.
func auditTables(name string, events []Event) []*harness.Table {
	type probeAgg struct {
		count       int64
		first, last int64
	}
	probes := map[string]*probeAgg{}
	var order []string
	var dumps []Event
	for _, e := range events {
		switch e.Kind {
		case obs.AuditViolation:
			probe := e.Detail
			if p, _, ok := strings.Cut(e.Detail, ":"); ok {
				probe = p
			}
			a := probes[probe]
			if a == nil {
				a = &probeAgg{first: e.Step}
				probes[probe] = a
				order = append(order, probe)
			}
			a.count++
			a.last = e.Step
		case obs.FlightDump:
			dumps = append(dumps, e)
		}
	}
	vt := &harness.Table{
		Title:   fmt.Sprintf("%s: invariant violations by probe", name),
		Columns: []string{"probe", "violations", "first step", "last step"},
	}
	sort.Strings(order)
	for _, probe := range order {
		a := probes[probe]
		vt.Add(probe, a.count, a.first, a.last)
	}
	if len(order) == 0 {
		vt.Note("no audit violations in this trace.")
	}
	tables := []*harness.Table{vt}
	if len(dumps) > 0 {
		dt := &harness.Table{
			Title:   fmt.Sprintf("%s: flight dumps", name),
			Columns: []string{"step", "process", "events", "dump"},
		}
		for _, e := range dumps {
			dt.Add(e.Step, fmt.Sprintf("p%d", e.Pid), e.Value, e.Detail)
		}
		dt.Note("replay a dump file with: go run ./cmd/consensus-audit <dump>")
		tables = append(tables, dt)
	}
	return tables
}

// summarise builds the analysis tables from a decoded event stream. phase, if
// non-empty, must be a valid phase label and adds that phase's per-process
// breakdown.
func summarise(name string, events []Event, phase string) []*harness.Table {
	var tables []*harness.Table

	// Per-layer totals, in stack order (register at the bottom, core on top).
	layerCounts := map[obs.Layer]int64{}
	kindCounts := map[obs.Kind]int64{}
	lastStep := int64(0)
	for _, e := range events {
		layerCounts[e.Kind.Layer()]++
		kindCounts[e.Kind]++
		if e.Step > lastStep {
			lastStep = e.Step
		}
	}
	lt := &harness.Table{
		Title:   fmt.Sprintf("%s: events per layer (%d events over %d steps)", name, len(events), lastStep),
		Columns: []string{"layer", "events", "share"},
	}
	for _, l := range []obs.Layer{obs.LayerRegister, obs.LayerScan, obs.LayerWalk, obs.LayerStrip, obs.LayerSched, obs.LayerCore, obs.LayerPhase, obs.LayerAudit, obs.LayerObs} {
		if c, ok := layerCounts[l]; ok {
			lt.Add(l.String(), c, fmt.Sprintf("%.1f%%", 100*float64(c)/float64(len(events))))
		}
	}
	tables = append(tables, lt)

	kt := &harness.Table{
		Title:   fmt.Sprintf("%s: events per kind", name),
		Columns: []string{"kind", "events"},
	}
	for _, k := range obs.Kinds() {
		if c, ok := kindCounts[k]; ok {
			kt.Add(k.ID(), c)
		}
	}
	tables = append(tables, kt)

	// Steps to decide, per process: the Step field of each CoreDecide event.
	decided := map[int]int64{}
	started := map[int]bool{}
	for _, e := range events {
		switch e.Kind {
		case obs.CoreStart:
			started[e.Pid] = true
		case obs.CoreDecide:
			if _, ok := decided[e.Pid]; !ok {
				decided[e.Pid] = e.Step
			}
		}
	}
	if len(started) > 0 || len(decided) > 0 {
		pids := make([]int, 0, len(started))
		for p := range started {
			pids = append(pids, p)
		}
		for p := range decided {
			if !started[p] {
				pids = append(pids, p)
			}
		}
		sort.Ints(pids)
		dt := &harness.Table{
			Title:   fmt.Sprintf("%s: steps to decide per process", name),
			Columns: []string{"process", "decided at step"},
		}
		for _, p := range pids {
			if s, ok := decided[p]; ok {
				dt.Add(fmt.Sprintf("p%d", p), s)
			} else {
				dt.Add(fmt.Sprintf("p%d", p), "UNDECIDED")
			}
		}
		dt.Note("steps are global scheduler steps, so later deciders include every process's work.")
		tables = append(tables, dt)
	}

	// Phase attribution: each phase-layer span event carries the atomic steps
	// of one closed phase segment in Value.
	var spanCounts, spanSteps [obs.NumPhases]int64
	var phaseTotal int64
	for _, e := range events {
		if ph, ok := obs.PhaseForSpanKind(e.Kind); ok {
			spanCounts[ph]++
			spanSteps[ph] += e.Value
			phaseTotal += e.Value
		}
	}
	if phaseTotal > 0 {
		pt := &harness.Table{
			Title:   fmt.Sprintf("%s: steps per phase (%d attributed steps)", name, phaseTotal),
			Columns: []string{"phase", "spans", "steps", "share", "steps/span"},
		}
		for ph := obs.PhaseID(0); ph < obs.NumPhases; ph++ {
			if spanCounts[ph] == 0 {
				continue
			}
			pt.Add(ph.String(), spanCounts[ph], spanSteps[ph],
				fmt.Sprintf("%.1f%%", 100*float64(spanSteps[ph])/float64(phaseTotal)),
				fmt.Sprintf("%.1f", float64(spanSteps[ph])/float64(spanCounts[ph])))
		}
		pt.Note("prefer = agreement work, coin = randomness, strip = round advance, decide = decision publication.")
		tables = append(tables, pt)
	}

	// Optional per-process breakdown of one phase.
	if ph, ok := obs.PhaseForName(phase); ok && phase != "" {
		perSpans := map[int]int64{}
		perSteps := map[int]int64{}
		for _, e := range events {
			if e.Kind == ph.SpanKind() {
				perSpans[e.Pid]++
				perSteps[e.Pid] += e.Value
			}
		}
		ft := &harness.Table{
			Title:   fmt.Sprintf("%s: phase %q per process", name, ph),
			Columns: []string{"process", "spans", "steps"},
		}
		pids := make([]int, 0, len(perSpans))
		for p := range perSpans {
			pids = append(pids, p)
		}
		sort.Ints(pids)
		for _, p := range pids {
			ft.Add(fmt.Sprintf("p%d", p), perSpans[p], perSteps[p])
		}
		if len(pids) == 0 {
			ft.Note("no %q spans in this trace.", ph)
		}
		tables = append(tables, ft)
	}

	// Scan-retry distribution: each scan.clean / scan.borrow event carries the
	// number of retried collects that scan took in Value.
	h := harness.NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128)
	for _, e := range events {
		if e.Kind == obs.ScanClean || e.Kind == obs.ScanBorrow {
			h.Observe(e.Value)
		}
	}
	if snap := h.Snapshot(); snap.Count > 0 {
		ht := &harness.Table{
			Title:   fmt.Sprintf("%s: double-collect retries per scan (%d scans)", name, snap.Count),
			Columns: []string{"retries ≤", "scans"},
		}
		for _, b := range snap.Buckets {
			if b.Count == 0 {
				continue
			}
			label := fmt.Sprintf("%d", b.Le)
			if b.Le == math.MaxInt64 {
				label = "more"
			}
			ht.Add(label, b.Count)
		}
		ht.Note("p50=%s p90=%s p99=%s max=%d", harness.F(snap.P50), harness.F(snap.P90), harness.F(snap.P99), snap.Max)
		tables = append(tables, ht)
	}

	// Audit summary, only when the trace carries audit-layer events (audited
	// runs; clean unaudited traces keep their historical output).
	for _, e := range events {
		if e.Kind.Layer() == obs.LayerAudit {
			tables = append(tables, auditTables(name, events)...)
			break
		}
	}

	return tables
}

// Event aliases obs.Event for brevity in this package.
type Event = obs.Event
