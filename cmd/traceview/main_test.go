package main

import (
	"bytes"
	"os"
	"testing"

	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs"
)

// TestSummariseGolden locks the full rendered analysis of a checked-in trace,
// including the phase-attribution table and the -phase per-process breakdown.
// Regenerate testdata with:
//
//	go run . -phase coin testdata/sample.jsonl > testdata/sample.golden
func TestSummariseGolden(t *testing.T) {
	f, err := os.Open("testdata/sample.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/sample.golden")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	for _, tbl := range summarise("testdata/sample.jsonl", events, "coin") {
		tbl.RenderAs(&buf, harness.FormatText)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered analysis diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSummarisePhaseInvariant checks, on the sample trace, that the span
// events attribute exactly the steps the run took: per phase-layer event
// Values summed equal the trace's final global step count (every atomic step
// belongs to exactly one phase segment).
func TestSummarisePhaseInvariant(t *testing.T) {
	f, err := os.Open("testdata/sample.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var attributed, lastStep int64
	for _, e := range events {
		if _, ok := obs.PhaseForSpanKind(e.Kind); ok {
			attributed += e.Value
		}
		if e.Step > lastStep {
			lastStep = e.Step
		}
	}
	if attributed != lastStep {
		t.Errorf("phase spans attribute %d steps, trace has %d", attributed, lastStep)
	}
}

// TestAuditGolden locks the -audit rendering of a checked-in trace from an
// audited run with the walk.unclamped fault injected (Bounded, n=4, seed 1,
// M=8: one coin.range violation plus its flight dump). Regenerate with:
//
//	go run . -audit testdata/audit.jsonl > testdata/audit.golden
func TestAuditGolden(t *testing.T) {
	f, err := os.Open("testdata/audit.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/audit.golden")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	for _, tbl := range auditTables("testdata/audit.jsonl", events) {
		tbl.RenderAs(&buf, harness.FormatText)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("audit tables diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The full summary of an audited trace appends the same audit tables; the
	// violations table must be present there too.
	var full bytes.Buffer
	for _, tbl := range summarise("testdata/audit.jsonl", events, "") {
		tbl.RenderAs(&full, harness.FormatText)
	}
	if !bytes.Contains(full.Bytes(), []byte("invariant violations by probe")) {
		t.Error("full summary of an audited trace is missing the violations table")
	}
}
