package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs/prof"
)

// runProf renders a profile artifact (consensus-sim -prof-json).
func runProf(path string, format harness.Format) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	p, err := prof.ParseProfile(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	for _, t := range profTables(path, p) {
		t.RenderAs(os.Stdout, format)
	}
	return 0
}

// runPerfetto validates a Perfetto export (consensus-sim -prof-out) and
// prints its shape.
func runPerfetto(path string, format harness.Format) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	st, err := prof.ParsePerfetto(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: invalid perfetto trace: %v\n", err)
		return 1
	}
	t := &harness.Table{
		Title:   fmt.Sprintf("%s: perfetto trace", path),
		Columns: []string{"what", "value"},
	}
	t.Add("events", st.Events)
	t.Add("process tracks", st.Tracks)
	t.Add("phase slices", st.Slices)
	t.Add("blame flows", st.Flows)
	t.Add("first step", st.FirstStep)
	t.Add("last step", st.LastStep)
	t.Note("trace is well-formed; open it in ui.perfetto.dev or chrome://tracing.")
	for _, tbl := range []*harness.Table{t} {
		tbl.RenderAs(os.Stdout, format)
	}
	return 0
}

// profTables builds the analysis tables of one profile: the step-class
// partition (whole run and per process), the scan blame matrix with its
// failure-reason breakdown, the most contended registers, and the critical
// path that gated the decision.
func profTables(name string, p *prof.Profile) []*harness.Table {
	var tables []*harness.Table

	c := p.Classes
	ct := &harness.Table{
		Title:   fmt.Sprintf("%s: step classes (%d steps over %d processes)", name, c.Total, p.N),
		Columns: []string{"class", "steps", "share"},
	}
	share := func(v int64) string {
		if c.Total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(c.Total))
	}
	ct.Add("productive", c.Productive, share(c.Productive))
	ct.Add("scan-retry", c.ScanRetry, share(c.ScanRetry))
	ct.Add("coin-spin", c.CoinSpin, share(c.CoinSpin))
	ct.Add("strip-wait", c.StripWait, share(c.StripWait))
	ct.Note("scan-retry = collects burned on failed double-collects; coin-spin = random-walk steps; strip-wait = round-advance handshakes.")
	tables = append(tables, ct)

	if len(p.PerProc) > 0 {
		pt := &harness.Table{
			Title:   fmt.Sprintf("%s: step classes per process", name),
			Columns: []string{"process", "total", "productive", "scan-retry", "coin-spin", "strip-wait", "decided at"},
		}
		for _, pp := range p.PerProc {
			decided := "UNDECIDED"
			if pp.Decided {
				decided = fmt.Sprintf("%d", pp.DecideStep)
			}
			pt.Add(fmt.Sprintf("p%d", pp.Pid), pp.Classes.Total, pp.Classes.Productive,
				pp.Classes.ScanRetry, pp.Classes.CoinSpin, pp.Classes.StripWait, decided)
		}
		tables = append(tables, pt)
	}

	if !p.Blame.Empty() && p.Blame.Sum() > 0 {
		bt := &harness.Table{
			Title:   fmt.Sprintf("%s: scan blame matrix (%d attributed retries)", name, p.Blame.Sum()),
			Columns: blameColumns(p.Blame.Cols),
		}
		for r := 0; r < p.Blame.Rows; r++ {
			row := make([]any, 0, p.Blame.Cols+1)
			row = append(row, fmt.Sprintf("p%d", r))
			for w := 0; w < p.Blame.Cols; w++ {
				row = append(row, p.Blame.At(r, w))
			}
			bt.Add(row...)
		}
		bt.Note("cell (scanner, writer) counts scanner's double-collect failures tripped by that writer's register.")
		tables = append(tables, bt)

		if len(p.Reasons) > 0 {
			rt := &harness.Table{
				Title:   fmt.Sprintf("%s: retry reasons", name),
				Columns: []string{"reason", "retries"},
			}
			reasons := make([]string, 0, len(p.Reasons))
			for k := range p.Reasons {
				reasons = append(reasons, k)
			}
			sort.Strings(reasons)
			for _, k := range reasons {
				rt.Add(k, p.Reasons[k])
			}
			tables = append(tables, rt)
		}

		tables = append(tables, contentionTable(name, p))
	}

	cp := p.CriticalPath
	st := &harness.Table{
		Title:   fmt.Sprintf("%s: critical path", name),
		Columns: []string{"what", "value"},
	}
	if cp.Decider < 0 {
		st.Note("no process decided; no critical path.")
		tables = append(tables, st)
		return tables
	}
	st.Add("decider", fmt.Sprintf("p%d", cp.Decider))
	st.Add("decide step", cp.DecideStep)
	st.Add("chain length", cp.Len)
	st.Add("joins", len(cp.Nodes)-1)
	if cp.Truncated {
		st.Add("truncated", "yes (node arena filled; tail cut)")
	}
	st.Note("the chain of reads-from joins whose work gated the decision; everything off it ran in parallel slack.")
	tables = append(tables, st)

	if n := len(cp.Nodes); n > 0 {
		nt := &harness.Table{
			Title:   fmt.Sprintf("%s: critical-path tail (last %d of %d links)", name, min(10, n), n),
			Columns: []string{"step", "link", "phase", "chain len"},
		}
		for _, node := range cp.Nodes[max(0, n-10):] {
			link := fmt.Sprintf("p%d decides", node.Pid)
			if node.Kind == "join" {
				link = fmt.Sprintf("p%d reads p%d (written @%d)", node.Pid, node.From, node.WriteStep)
			}
			nt.Add(node.Step, link, node.Phase, node.CP)
		}
		tables = append(tables, nt)
	}
	return tables
}

// contentionHotK is how many of the hottest registers the contention table
// lists individually; the rest are folded into one aggregate row so the table
// stays readable at n=32 and beyond.
const contentionHotK = 5

// contentionTable lists the hottest registers by attributed scan failures,
// busiest first (ties by register index): the top contentionHotK
// individually with a running cumulative share, then one aggregate row for
// the remainder. The cumulative column is the profile-guided repair signal —
// a steep head means the epoch scan's hot-register settling is buying steps.
func contentionTable(name string, p *prof.Profile) *harness.Table {
	type reg struct {
		idx int
		v   int64
	}
	regs := make([]reg, 0, p.Contention.Cols)
	for i := 0; i < p.Contention.Cols; i++ {
		if v := p.Contention.At(0, i); v > 0 {
			regs = append(regs, reg{i, v})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].v != regs[j].v {
			return regs[i].v > regs[j].v
		}
		return regs[i].idx < regs[j].idx
	})
	t := &harness.Table{
		Title:   fmt.Sprintf("%s: hottest registers (top %d of %d contended)", name, min(contentionHotK, len(regs)), len(regs)),
		Columns: []string{"register", "owner", "tripped scans", "share", "cum share"},
	}
	total := p.Contention.Sum()
	pct := func(v int64) string { return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total)) }
	var cum int64
	for i, r := range regs {
		if i >= contentionHotK {
			break
		}
		cum += r.v
		t.Add(fmt.Sprintf("r%d", r.idx), fmt.Sprintf("p%d", r.idx), r.v, pct(r.v), pct(cum))
	}
	if rest := len(regs) - contentionHotK; rest > 0 {
		t.Add(fmt.Sprintf("(%d more)", rest), "-", total-cum, pct(total-cum), pct(total))
	}
	t.Note("registers are single-writer: register i is process i's slot in the snapshot object.")
	return t
}

// blameColumns builds the blame matrix header: one column per writer.
func blameColumns(cols int) []string {
	out := make([]string, 0, cols+1)
	out = append(out, "scanner\\writer")
	for w := 0; w < cols; w++ {
		out = append(out, fmt.Sprintf("w%d", w))
	}
	return out
}
