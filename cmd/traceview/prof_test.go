package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs/prof"
)

var updateProf = flag.Bool("update-prof", false, "regenerate testdata/prof-n8.{json,golden} from the fixed seed")

// profGoldenConfig is the fixed workload behind the profiler golden: the
// bounded protocol at n=8 under the random adversary, the contended regime
// the ISSUE's scaling wall is about.
func profGoldenConfig() consensus.Config {
	return consensus.Config{
		Inputs:   []int{1, 0, 1, 0, 1, 0, 1, 0},
		Seed:     7,
		Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
		Profile:  true,
	}
}

// TestProfGolden locks the profiler end to end: re-running the fixed-seed
// n=8 bounded workload must reproduce the checked-in profile artifact byte
// for byte (blame matrix and critical path included), and its rendered
// analysis must match the golden. Regenerate both with:
//
//	go test ./cmd/traceview -run TestProfGolden -update-prof
func TestProfGolden(t *testing.T) {
	res, err := consensus.Solve(profGoldenConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	data, err := json.MarshalIndent(res.Profile, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n') // consensus-sim -prof-json writes a trailing newline

	p, err := prof.ParseProfile(data)
	if err != nil {
		t.Fatalf("fresh profile does not parse: %v", err)
	}
	var buf bytes.Buffer
	for _, tbl := range profTables("testdata/prof-n8.json", p) {
		tbl.RenderAs(&buf, harness.FormatText)
	}

	if *updateProf {
		if err := os.WriteFile("testdata/prof-n8.json", data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/prof-n8.golden", buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("testdata/prof-n8.{json,golden} regenerated")
		return
	}

	want, err := os.ReadFile("testdata/prof-n8.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("fixed-seed profile diverged from testdata/prof-n8.json (%d vs %d bytes); blame matrix / critical path are no longer deterministic, or the schema changed without -update-prof",
			len(data), len(want))
	}
	golden, err := os.ReadFile("testdata/prof-n8.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("rendered profile diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), golden)
	}
}

// TestProfGoldenParsesFromDisk exercises the -prof input path on the
// checked-in artifact: the file must parse and its blame matrix must agree
// with the retry total (the invariant traceview relies on for the shares).
func TestProfGoldenParsesFromDisk(t *testing.T) {
	data, err := os.ReadFile("testdata/prof-n8.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := prof.ParseProfile(data)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.N != 8 {
		t.Errorf("n = %d, want 8", p.N)
	}
	if p.Blame.Sum() != p.Contention.Sum() {
		t.Errorf("blame sum %d != contention sum %d", p.Blame.Sum(), p.Contention.Sum())
	}
	if p.CriticalPath.Decider < 0 || len(p.CriticalPath.Nodes) == 0 {
		t.Error("checked-in profile has no critical path")
	}
}
