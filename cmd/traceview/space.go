package main

import (
	"fmt"
	"os"

	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs/space"
)

// runSpace renders a space usage artifact (consensus-sim -space-json).
func runSpace(path string, format harness.Format) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	u, err := space.ParseUsage(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	for _, t := range spaceTables(path, u) {
		t.RenderAs(os.Stdout, format)
	}
	return 0
}

// spaceTables builds the analysis tables of one space usage snapshot: the
// per-layer accounting (registers, words, declared vs measured widths) and
// the totals the bench gate compares.
func spaceTables(name string, u space.Usage) []*harness.Table {
	lt := &harness.Table{
		Title:   fmt.Sprintf("%s: space per layer", name),
		Columns: []string{"layer", "regs", "live", "words", "declared", "measured", "max|value|", "width"},
	}
	for _, layer := range space.LayerNames() {
		lu, ok := u.Layers[layer]
		if !ok {
			continue
		}
		lt.Add(layer, lu.Regs, lu.LiveRegs, lu.Words,
			bitsCell(lu.DeclaredBits), bitsCell(lu.MeasuredBits), lu.MaxAbs, bitsCell(lu.Bits()))
	}
	lt.Note("declared = information-theoretic width of the layer's value domain; measured = widest payload actually stored; width = max of the two.")
	if len(u.Layers) == 0 {
		lt.Note("snapshot is empty (metering was off or the run recorded nothing).")
	}

	tt := &harness.Table{
		Title:   fmt.Sprintf("%s: space totals", name),
		Columns: []string{"what", "value"},
	}
	tt.Add("registers (peak)", u.Regs)
	tt.Add("registers (live)", u.LiveRegs)
	tt.Add("state words (peak)", u.PeakWords)
	tt.Add("bits/register (max)", bitsCell(u.MaxBits))
	tt.Note("the benchdiff space gate compares these totals between artifacts.")

	return []*harness.Table{lt, tt}
}

// bitsCell renders a bit width, with space.UnboundedBits as "unbounded".
func bitsCell(bits int) string {
	if bits == space.UnboundedBits {
		return "unbounded"
	}
	return fmt.Sprintf("%d", bits)
}
