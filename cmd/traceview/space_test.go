package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs/space"
)

var updateSpace = flag.Bool("update-space", false, "regenerate testdata/space-n4.{json,golden} from the fixed seed")

// spaceGoldenConfig is the fixed workload behind the space golden: the
// bounded protocol at n=4 under the random adversary, the smallest workload
// that exercises every layer of the accounting (register, scan, strip, walk,
// core).
func spaceGoldenConfig() consensus.Config {
	return consensus.Config{
		Inputs:   []int{1, 0, 1, 0},
		Seed:     7,
		Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
		Space:    true,
	}
}

// TestSpaceGolden locks the space meters end to end: re-running the
// fixed-seed n=4 bounded workload must reproduce the checked-in usage
// artifact byte for byte (per-layer counts and widths included), and its
// rendered analysis must match the golden. Regenerate both with:
//
//	go test ./cmd/traceview -run TestSpaceGolden -update-space
func TestSpaceGolden(t *testing.T) {
	res, err := consensus.Solve(spaceGoldenConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Space == nil {
		t.Fatal("Space: true produced no usage snapshot")
	}
	data, err := json.MarshalIndent(res.Space, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n') // consensus-sim -space-json writes a trailing newline

	u, err := space.ParseUsage(data)
	if err != nil {
		t.Fatalf("fresh usage does not parse: %v", err)
	}
	var buf bytes.Buffer
	for _, tbl := range spaceTables("testdata/space-n4.json", u) {
		tbl.RenderAs(&buf, harness.FormatText)
	}

	if *updateSpace {
		if err := os.WriteFile("testdata/space-n4.json", data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/space-n4.golden", buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("testdata/space-n4.{json,golden} regenerated")
		return
	}

	want, err := os.ReadFile("testdata/space-n4.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("fixed-seed usage diverged from testdata/space-n4.json:\n--- got ---\n%s\n--- want ---\n%s", data, want)
	}
	golden, err := os.ReadFile("testdata/space-n4.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("rendered usage diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), golden)
	}
}

// TestSpaceGoldenParsesFromDisk exercises the -space input path on the
// checked-in artifact: the file must parse, validate, and carry the bounded
// protocol's layer structure (a bounded walk domain, a mod-3K strip).
func TestSpaceGoldenParsesFromDisk(t *testing.T) {
	data, err := os.ReadFile("testdata/space-n4.json")
	if err != nil {
		t.Fatal(err)
	}
	u, err := space.ParseUsage(data)
	if err != nil {
		t.Fatalf("ParseUsage: %v", err)
	}
	if u.Regs == 0 || u.PeakWords == 0 {
		t.Errorf("checked-in usage has empty totals: %+v", u)
	}
	walk, ok := u.Layers["walk"]
	if !ok || walk.DeclaredBits <= 0 {
		t.Errorf("bounded walk layer should declare a bounded domain, got %+v", walk)
	}
	strip, ok := u.Layers["strip"]
	if !ok || strip.DeclaredBits <= 0 {
		t.Errorf("bounded strip layer should declare a bounded domain, got %+v", strip)
	}
}
