package main

import (
	"encoding/json"
	"fmt"
	"os"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/benchfmt"
	"github.com/dsrepro/consensus/internal/harness"
)

// runTail renders the tail-latency view of a bench artifact (consensus-load
// -json with -latency): per-workload wall-clock quantiles, the straggler
// digests, and the environment stamps the numbers were measured under. It
// also accepts a straggler bundle's summary.json (consensus-straggler /
// consensus-load -straggler-replay) and renders the replay verdict and blame
// digest instead.
func runTail(path string, format harness.Format) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}

	// A bundle summary carries a "straggler" object; bench artifacts carry
	// "workloads" (matrix) or a top-level "algorithm" (legacy single report).
	var probe struct {
		Straggler json.RawMessage `json:"straggler"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && probe.Straggler != nil {
		sum, err := consensus.ParseStragglerSummary(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
			return 1
		}
		summaryTable(path, sum).RenderAs(os.Stdout, format)
		return 0
	}

	m, err := benchfmt.ReadAny(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	for _, t := range tailTables(path, m) {
		t.RenderAs(os.Stdout, format)
	}
	return 0
}

// tailTables builds the tail view of a bench artifact: the latency-quantile
// table (one row per metered workload) and the straggler digest table.
func tailTables(name string, m benchfmt.Matrix) []*harness.Table {
	lt := &harness.Table{
		Title:   fmt.Sprintf("%s: wall-clock latency per workload", name),
		Columns: []string{"workload", "count", "mean", "p50", "p90", "p99", "p999", "max"},
	}
	unmetered := 0
	for _, r := range m.Workloads {
		if r.Latency == nil || r.Latency.Count == 0 {
			unmetered++
			continue
		}
		l := r.Latency
		lt.Add(r.Key(), l.Count, msCell(int64(l.MeanNS)), msCell(l.P50NS), msCell(l.P90NS),
			msCell(l.P99NS), msCell(l.P999NS), msCell(l.MaxNS))
	}
	lt.Note("wall-clock values jitter run to run; benchdiff gates only the p99 ratio (see -max-latency-p99-growth).")
	if unmetered > 0 {
		lt.Note(fmt.Sprintf("%d workload(s) carry no latency block (run without -latency, or an older artifact).", unmetered))
	}
	for _, env := range envStamps(m) {
		lt.Note("measured on " + env)
	}
	out := []*harness.Table{lt}

	st := &harness.Table{
		Title:   fmt.Sprintf("%s: straggler digests", name),
		Columns: []string{"workload", "inst", "latency", "steps", "decision", "seed"},
	}
	rows := 0
	for _, r := range m.Workloads {
		for _, s := range r.Stragglers {
			st.Add(r.Key(), s.Index, msCell(s.LatencyNS), s.Steps, s.Decision, s.Seed)
			rows++
		}
	}
	if rows > 0 {
		st.Note("each digest replays deterministically: consensus-straggler, or consensus-load -stragglers -straggler-replay.")
		out = append(out, st)
	}
	return out
}

// summaryTable renders one straggler bundle's summary.json (already parsed
// and verified by ParseStragglerSummary) as an attribute table.
func summaryTable(name string, sum map[string]any) *harness.Table {
	t := &harness.Table{
		Title:   fmt.Sprintf("%s: straggler replay", name),
		Columns: []string{"what", "value"},
	}
	num := func(key string) int64 { return sumInt(sum[key]) }
	str := func(key string) string {
		v, _ := sum[key].(string)
		return v
	}
	t.Add("workload", fmt.Sprintf("%s/n=%d (%s schedule)", str("algorithm"), num("n"), str("schedule")))
	if s, ok := sum["straggler"].(map[string]any); ok {
		t.Add("instance", sumInt(s["index"]))
		t.Add("seed", sumInt(s["seed"]))
		t.Add("original latency", msCell(sumInt(s["latency_ns"])))
	}
	t.Add("replay latency", msCell(num("replay_latency_ns")))
	t.Add("replay steps", num("replay_steps"))
	t.Add("replay decision", num("replay_decision"))
	t.Add("steps productive", num("steps_productive"))
	t.Add("steps scan-retry", num("steps_scan_retry"))
	t.Add("steps coin-spin", num("steps_coin_spin"))
	t.Add("steps strip-wait", num("steps_strip_wait"))
	if num("blame_retries") > 0 {
		t.Add("worst blame pair", fmt.Sprintf("scanner %d <- writer %d (%d retries)",
			num("blame_scanner"), num("blame_writer"), num("blame_retries")))
	}
	if num("hot_register_hits") > 0 {
		t.Add("hot register", fmt.Sprintf("r%d (%d hits)", num("hot_register"), num("hot_register_hits")))
	}
	t.Add("audit violations", num("audit_violations"))
	t.Note("replay latency is measured under full instrumentation and is expected to exceed the original; steps and decision are the deterministic fingerprint.")
	return t
}

// envStamps lists the distinct environment stamps of an artifact, rendered
// one per line.
func envStamps(m benchfmt.Matrix) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range m.Workloads {
		if r.Env == nil {
			continue
		}
		s := fmt.Sprintf("%s %s/%s, GOMAXPROCS %d, %d CPUs",
			r.Env.GoVersion, r.Env.OS, r.Env.Arch, r.Env.GOMAXPROCS, r.Env.NumCPU)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// sumInt reads one numeric value of a parsed straggler summary. The parser
// keeps numbers as json.Number (seeds are full-range int64s, which float64
// would corrupt past 2^53); float64 is accepted for any hand-built map.
func sumInt(v any) int64 {
	switch x := v.(type) {
	case json.Number:
		n, err := x.Int64()
		if err != nil {
			f, _ := x.Float64()
			return int64(f)
		}
		return n
	case float64:
		return int64(x)
	}
	return 0
}

// msCell renders a nanosecond latency as milliseconds.
func msCell(ns int64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }
