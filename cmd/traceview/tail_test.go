package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	consensus "github.com/dsrepro/consensus"
	"github.com/dsrepro/consensus/internal/benchfmt"
	"github.com/dsrepro/consensus/internal/harness"
	"github.com/dsrepro/consensus/internal/obs/tail"
)

var updateTail = flag.Bool("update-tail", false, "regenerate testdata/tail-bench.{json,golden} from the fixed artifact literal")

// tailGoldenMatrix is the fixed bench artifact behind the tail golden. Real
// latency measurements jitter run to run, so the golden locks the *rendering*
// of a synthetic artifact, not a live run: fixed quantiles, one straggler
// digest per workload, one unmetered legacy row, and a fixed environment
// stamp.
func tailGoldenMatrix() benchfmt.Matrix {
	mk := func(alg string, n int, count, scaleNS int64) benchfmt.Report {
		return benchfmt.Report{
			Algorithm: alg,
			N:         n,
			Instances: int(count),
			Parallel:  4,
			Seed:      42,
			Latency: &tail.Summary{
				Count:  int(count),
				MeanNS: float64(2 * scaleNS),
				MinNS:  scaleNS / 2,
				P50NS:  scaleNS,
				P90NS:  4 * scaleNS,
				P99NS:  9 * scaleNS,
				P999NS: 12 * scaleNS,
				MaxNS:  13 * scaleNS,
			},
			Stragglers: []tail.Straggler{
				{Index: 7, Seed: -1234567890123, LatencyNS: 13 * scaleNS, Steps: 31_000, Decision: 1},
			},
			Env: &benchfmt.EnvStamp{GoVersion: "go1.22.1", GOMAXPROCS: 8, NumCPU: 8, OS: "linux", Arch: "amd64"},
		}
	}
	legacy := benchfmt.Report{Algorithm: "local-coin", N: 4, Instances: 50, Parallel: 4, Seed: 42}
	return benchfmt.Matrix{Workloads: []benchfmt.Report{
		mk("bounded", 4, 400, 1_000_000),
		mk("aspnes-herlihy", 8, 60, 25_000_000),
		legacy,
	}}
}

// TestTailGolden locks the -tail rendering end to end: the fixed artifact
// must render byte-identically to the checked-in golden. Regenerate with:
//
//	go test ./cmd/traceview -run TestTailGolden -update-tail
func TestTailGolden(t *testing.T) {
	m := tailGoldenMatrix()
	var art bytes.Buffer
	if err := benchfmt.WriteMatrix(&art, m); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tbl := range tailTables("testdata/tail-bench.json", m) {
		tbl.RenderAs(&buf, harness.FormatText)
	}

	if *updateTail {
		if err := os.WriteFile("testdata/tail-bench.json", art.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/tail-bench.golden", buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("testdata/tail-bench.{json,golden} regenerated")
		return
	}

	want, err := os.ReadFile("testdata/tail-bench.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art.Bytes(), want) {
		t.Errorf("fixed artifact diverged from testdata/tail-bench.json:\n--- got ---\n%s\n--- want ---\n%s", art.Bytes(), want)
	}
	golden, err := os.ReadFile("testdata/tail-bench.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("rendered tail view diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), golden)
	}
}

// TestTailGoldenParsesFromDisk exercises the -tail input path on the
// checked-in artifact: ReadAny must decode it, and the latency blocks and
// straggler digests must survive the round trip.
func TestTailGoldenParsesFromDisk(t *testing.T) {
	m, err := benchfmt.ReadAny("testdata/tail-bench.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads) != 3 {
		t.Fatalf("got %d workloads, want 3", len(m.Workloads))
	}
	r := m.Workloads[0]
	if r.Latency == nil || r.Latency.P99NS != 9_000_000 {
		t.Errorf("latency block did not survive: %+v", r.Latency)
	}
	if len(r.Stragglers) != 1 || r.Stragglers[0].Seed != -1234567890123 {
		t.Errorf("straggler digest did not survive: %+v", r.Stragglers)
	}
	if r.Env == nil || r.Env.GoVersion != "go1.22.1" {
		t.Errorf("env stamp did not survive: %+v", r.Env)
	}
	if m.Workloads[2].Latency != nil {
		t.Errorf("legacy workload grew a latency block: %+v", m.Workloads[2].Latency)
	}
}

// TestTailSummaryTable renders a real straggler bundle's summary.json through
// the -tail summary path: replay a straggler from a small fixed-seed batch
// and check the rendered table names the replay fingerprint.
func TestTailSummaryTable(t *testing.T) {
	base := consensus.Config{
		Inputs:   []int{0, 1, 0, 1},
		Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
		Latency:  true,
	}
	res, err := consensus.SolveBatch(consensus.BatchConfig{
		Instances:  8,
		Base:       base,
		Seed:       42,
		Stragglers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stragglers) != 1 {
		t.Fatalf("got %d stragglers, want 1", len(res.Stragglers))
	}
	dir := filepath.Join(t.TempDir(), "bundle")
	b, err := consensus.ReplayStraggler(base, res.Stragglers[0], dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(b.SummaryPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := consensus.ParseStragglerSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	summaryTable(b.SummaryPath, sum).RenderAs(&buf, harness.FormatText)
	out := buf.String()
	for _, want := range []string{"bounded/n=4", "replay steps", "steps scan-retry", "audit violations"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}
