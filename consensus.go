// Package consensus is a Go implementation of bounded polynomial randomized
// consensus for asynchronous shared-memory systems, after Attiya, Dolev and
// Shavit, "Bounded Polynomial Randomized Consensus" (PODC 1989).
//
// The package lets n simulated asynchronous processes, communicating only
// through atomic read/write registers, agree on a binary value with:
//
//   - consistency — no two processes decide differently,
//   - validity — a common input is the decision,
//   - finite expected waiting — every process decides in polynomial expected
//     time, against any schedule, and
//   - bounded memory — every register holds values from a fixed finite range,
//     no matter how long the execution runs.
//
// The primary algorithm (Bounded) is the paper's: a bounded scannable memory
// (snapshot) built from single-writer registers plus two-writer "arrow"
// handshake bits, a bounded weak shared coin driven by a random walk with
// truncated counters, and a bounded rounds strip that represents only the
// K-clamped distances between process rounds as a weighted graph maintained
// with per-edge counters modulo 3K.
//
// Three baselines are included for comparison: AspnesHerlihy (polynomial time
// but unbounded memory — the algorithm the paper bounds), LocalCoin (bounded
// memory but exponential expected time — independent local flips), and
// StrongCoin (assumes the atomic global coin-flip primitive of Chor, Israeli
// and Li).
//
// Executions run under a deterministic, seedable adversarial scheduler:
// every atomic register access is one scheduler step, and a pluggable
// adversary chooses the interleaving — including starvation and crash
// failures. Given equal seeds, runs replay exactly.
//
// # Quick start
//
//	res, err := consensus.Solve(consensus.Config{
//		Inputs: []int{0, 1, 1, 0},
//		Seed:   42,
//	})
//	if err != nil { ... }
//	fmt.Println("agreed on", res.Value)
package consensus

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/walk"
)

// Algorithm selects the consensus protocol.
type Algorithm int

// Available algorithms.
const (
	// Bounded is the paper's algorithm: bounded memory, polynomial expected
	// time. The default.
	Bounded Algorithm = iota + 1
	// AspnesHerlihy is the unbounded-memory polynomial-time baseline.
	AspnesHerlihy
	// LocalCoin is the bounded-memory exponential-time baseline using
	// independent local coin flips.
	LocalCoin
	// StrongCoin assumes an atomic global coin-flip primitive (one shared
	// random bit per round).
	StrongCoin
	// Abrahamson is the unbounded-memory exponential-time baseline ([A88]
	// style): explicit round numbers and independent local coin flips — the
	// fourth quadrant of the design matrix the paper's introduction narrates.
	Abrahamson
	// Anonymous is the anonymous-process variant (Gelashvili's setting): no
	// process identifiers anywhere in the shared memory — every register is
	// multi-writer and no payload or index depends on a pid. Registers stay
	// two bits wide but their count grows with rounds, the opposite frontier
	// point from Bounded's n fixed registers of bounded width.
	Anonymous
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Bounded:
		return "bounded"
	case AspnesHerlihy:
		return "aspnes-herlihy"
	case LocalCoin:
		return "local-coin"
	case StrongCoin:
		return "strong-coin"
	case Abrahamson:
		return "abrahamson"
	case Anonymous:
		return "anonymous"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

func (a Algorithm) kind() (core.Kind, error) {
	switch a {
	case Bounded:
		return core.KindBounded, nil
	case AspnesHerlihy:
		return core.KindAHUnbounded, nil
	case LocalCoin:
		return core.KindExpLocal, nil
	case StrongCoin:
		return core.KindStrongCoin, nil
	case Abrahamson:
		return core.KindAbrahamson, nil
	case Anonymous:
		return core.KindAnonymous, nil
	default:
		return 0, fmt.Errorf("consensus: unknown algorithm %d", int(a))
	}
}

// ScheduleKind selects the adversary controlling the interleaving.
type ScheduleKind int

// Available schedule kinds.
const (
	// RoundRobin cycles through processes fairly. The default.
	RoundRobin ScheduleKind = iota + 1
	// RandomSchedule picks a uniformly random runnable process each step.
	RandomSchedule
	// LaggerSchedule starves one victim process, scheduling it only once
	// every Period steps.
	LaggerSchedule
)

// Schedule configures the adversary. The zero value is round-robin with no
// crashes.
type Schedule struct {
	Kind ScheduleKind
	// Victim and Period configure LaggerSchedule.
	Victim int
	Period int
	// CrashAt permanently stops scheduling each listed process once the
	// global step count reaches the given value, on top of any Kind.
	CrashAt map[int]int64
}

func (s Schedule) adversary(seed int64) (sched.Adversary, error) {
	var adv sched.Adversary
	switch s.Kind {
	case 0, RoundRobin:
		adv = sched.NewRoundRobin()
	case RandomSchedule:
		adv = sched.NewRandom(seed ^ 0x5ca1ab1e)
	case LaggerSchedule:
		period := s.Period
		if period <= 0 {
			period = 16
		}
		adv = sched.NewLagger(s.Victim, period, seed^0x5ca1ab1e)
	default:
		return nil, fmt.Errorf("consensus: unknown schedule kind %d", int(s.Kind))
	}
	if len(s.CrashAt) > 0 {
		adv = sched.NewCrash(adv, s.CrashAt)
	}
	return adv, nil
}

// SubstrateKind selects the execution backend processes run on.
type SubstrateKind int

// Available substrates.
const (
	// SimulatedSubstrate runs processes under the deterministic adversarial
	// step scheduler: one atomic step at a time, byte-reproducible per seed.
	// The default.
	SimulatedSubstrate SubstrateKind = iota + 1
	// NativeSubstrate runs each process as a real goroutine against
	// lock-free cache-line-padded sync/atomic registers with no step
	// arbiter: the Go runtime and the hardware are the adversary. Equal
	// seeds reproduce each process's private coins but not the
	// interleaving, so trace replay does not apply — enable Audit to check
	// correctness online instead. Schedule.Kind is ignored (the hardware
	// schedules), but Schedule.CrashAt and LaggerSchedule's victim/period
	// are emulated at the step gate. Profile is rejected on this substrate.
	NativeSubstrate
)

// String implements fmt.Stringer.
func (s SubstrateKind) String() string {
	switch s {
	case 0, SimulatedSubstrate:
		return "simulated"
	case NativeSubstrate:
		return "native"
	default:
		return fmt.Sprintf("SubstrateKind(%d)", int(s))
	}
}

// substrate builds the sched.Substrate for the config, nil meaning the
// default simulated path (which core executes without indirection).
func (c Config) substrate() (sched.Substrate, error) {
	switch c.Substrate {
	case 0, SimulatedSubstrate:
		return nil, nil
	case NativeSubstrate:
		opts := sched.NativeOptions{
			CrashAt:      c.Schedule.CrashAt,
			PreemptEvery: c.NativePreemptEvery,
			PreemptSeed:  c.Seed ^ 0x5ca1ab1e,
		}
		if c.Schedule.Kind == LaggerSchedule {
			opts.LaggerVictim = c.Schedule.Victim
			opts.LaggerPeriod = c.Schedule.Period
			if opts.LaggerPeriod <= 0 {
				opts.LaggerPeriod = 16
			}
		}
		return sched.NewNative(opts), nil
	default:
		return nil, fmt.Errorf("consensus: unknown substrate kind %d", int(c.Substrate))
	}
}

// MemoryKind selects the scannable-memory (snapshot) implementation.
type MemoryKind int

// Available memory kinds.
const (
	// ArrowMemory is the paper's bounded arrow-handshake snapshot. The
	// default.
	ArrowMemory MemoryKind = iota + 1
	// SeqSnapMemory is the unbounded sequence-number snapshot baseline.
	SeqSnapMemory
	// WaitFreeMemory is the bounded wait-free atomic snapshot (Afek et al.),
	// the successor construction to the paper's scannable memory: scans
	// cannot be starved by writers.
	WaitFreeMemory
)

func (m MemoryKind) kind() (scan.Kind, error) {
	switch m {
	case 0, ArrowMemory:
		return scan.KindArrow, nil
	case SeqSnapMemory:
		return scan.KindSeqSnap, nil
	case WaitFreeMemory:
		return scan.KindWaitFree, nil
	default:
		return 0, fmt.Errorf("consensus: unknown memory kind %d", int(m))
	}
}

// Config configures one consensus instance.
type Config struct {
	// Inputs holds each process's initial binary value; len(Inputs) is the
	// number of processes. Required.
	Inputs []int

	// Algorithm selects the protocol (default Bounded).
	Algorithm Algorithm

	// Seed makes the run deterministic: process randomness and seeded
	// adversaries derive from it.
	Seed int64

	// Schedule configures the adversarial scheduler (default round-robin).
	Schedule Schedule

	// Substrate selects the execution backend (default SimulatedSubstrate).
	// NativeSubstrate trades determinism for real hardware concurrency; see
	// the SubstrateKind docs for what carries over.
	Substrate SubstrateKind

	// ParallelDispatch enables commuting-step dispatch on the simulated
	// substrate: each adversary pick seeds a batch of steps with pairwise
	// disjoint register footprints (different registers, or read-read on the
	// same register), granted together between adversary consults. Every
	// schedule it produces is a legal sequential grant order — the equivalence
	// suite proves each run's trace byte-identical to replaying its recorded
	// grant sequence through the sequential engine — so agreement, validity
	// and step-accounting semantics are unchanged; only the adversary's
	// consult granularity coarsens (it still picks every batch leader, and
	// eligibility-aware adversaries veto extensions; adversaries without an
	// eligibility notion degrade to exact sequential dispatch). Runs are
	// deterministic and seed-reproducible, but a seed's schedule differs from
	// its sequential-dispatch schedule. It also switches the scan layer to
	// the dirty-bit epoch retry path, which re-checks only tripped registers
	// on failed double collects. Rejected with NativeSubstrate (hardware
	// picks that schedule, there is no dispatcher to batch).
	ParallelDispatch bool

	// NativePreemptEvery > 0 injects a randomized goroutine yield with
	// probability 1/k before each step on the native substrate — a stress
	// knob that forces fine-grained interleavings even on few cores. The
	// preemption coins are separate from protocol randomness, so Seed still
	// reproduces each process's private coins. Ignored on the simulated
	// substrate (its adversary already controls the interleaving).
	NativePreemptEvery int

	// MaxSteps aborts the run after this many atomic steps (0 = no limit).
	// Aborted runs return ErrStepBudget with partial results.
	MaxSteps int64

	// K is the rounds-strip constant (default 2, the paper's choice).
	K int
	// B is the shared-coin barrier multiplier (default 4). Larger B lowers
	// the per-round disagreement probability at the cost of longer walks.
	B int
	// M bounds each coin counter (default: derived from B and n per the
	// paper's Lemma 3.3).
	M int

	// Memory selects the snapshot implementation (default ArrowMemory).
	Memory MemoryKind
	// UseBloomArrows builds the arrow registers from Bloom's 2W2R
	// construction over SWMR registers instead of the direct atomic model.
	UseBloomArrows bool
	// FastDecide enables the footnote-5 style speedup of the Bounded
	// algorithm: deciders publish a decided marker that others adopt
	// immediately. Ignored by the other algorithms.
	FastDecide bool

	// Audit enables the online invariant monitor (internal/obs/audit): range
	// probes on coin counters and strip edges, sampled strip-graph and
	// register-regularity audits, scan handshake checks, and end-of-instance
	// agreement/validity checks. Probes are passive — decisions and step
	// counts are byte-identical with auditing on or off. Violations surface
	// in Result.Violations and each produces a flight-recorder dump.
	Audit bool
	// AuditSampleEvery controls how often the expensive sampled probes run
	// (graph validation, register linearization windows): every Nth
	// opportunity (default 64; 1 = every opportunity, as replay uses).
	AuditSampleEvery int
	// AuditDumpDir, if non-empty, is where flight-recorder dumps are written
	// as JSONL files (see Result.AuditDumps). When empty, dumps are kept
	// in memory only.
	AuditDumpDir string

	// Profile enables the causal step profiler (internal/obs/prof): every
	// granted step is classified as productive / scan-retry / coin-spin /
	// strip-wait, each failed scan pass is blamed on the (writer, register)
	// that tripped the re-check, and the reads-from chain gating the decision
	// is reconstructed. Hooks are passive like the audit probes — profiled
	// runs are byte-identical to unprofiled ones. Results surface as prof.*
	// entries in Result.Counters/Gauges, Result.Matrices, and the full
	// Result.Profile report.
	Profile bool

	// Latency enables wall-clock accounting: the solve's monotonic elapsed
	// time is reported in Result.LatencyNS and observed into the lat.solve
	// histogram (Result.Hists). Measurement happens strictly outside the
	// execution — the clock is read before the first step and after the last,
	// never in between — so metered runs are byte-identical to unmetered ones
	// (same traces, decisions and step counts); only the lat.solve entry and
	// LatencyNS differ, and their values are wall-clock noise, not replayable
	// state. See internal/obs/tail for the batch-level tail machinery.
	Latency bool

	// Space enables the space-accounting meters (internal/obs/space): live
	// and peak register counts, per-layer word layouts, and bits-per-register
	// both declared (information-theoretic width of the value domain — coin
	// counters clamped to ±(M+1), strip counters mod 3K, round numbers
	// unbounded) and measured (widest payload actually stored). Meter hooks
	// are passive — no scheduler steps, no randomness, no events, no
	// allocation — so metered runs are byte-identical to unmetered ones.
	// Results surface in Result.Space and as space.* entries in Result.Gauges.
	Space bool

	// TraceWriter, if non-nil, receives a human-readable protocol event log
	// (round advances, preference changes, coin flips, decisions) in
	// scheduler order — one line per event. Only core-layer (protocol) events
	// are written; the lower layers are too chatty for a human log.
	TraceWriter io.Writer

	// TraceJSONL, if non-nil, receives the full cross-layer event stream —
	// register operations, scan retries, walk steps, strip moves, protocol
	// events — as JSON lines (see internal/obs for the schema). The stream is
	// flushed before Solve returns. Analyze it with cmd/traceview.
	TraceJSONL io.Writer

	// Recorder, if non-nil, receives every event as a value (no encoding) —
	// e.g. an obs.Ring keeping the last N events in memory. It can be
	// combined with TraceWriter and TraceJSONL.
	Recorder obs.Recorder

	// Sink, if non-nil, is the observability hub the run reports into: its
	// metrics registry accumulates across every run sharing the sink, so a
	// live telemetry server (internal/obs/live) holding the same sink can be
	// scraped while the run is in flight. The trace surfaces above stack on
	// top of any recorder the sink already carries. When nil, Solve builds a
	// private sink and its registry is visible only through Result.
	Sink *obs.Sink
}

// Result reports the outcome of a consensus run.
type Result struct {
	// Value is the agreed value (0 or 1), or -1 if no process decided.
	Value int
	// Decided and Values report each process's individual outcome.
	Decided []bool
	Values  []int

	// Steps is the total number of atomic shared-memory steps taken.
	Steps int64
	// LatencyNS is the wall-clock solve latency in nanoseconds when
	// Config.Latency is set; 0 otherwise. Unlike Steps it is NOT
	// deterministic — equal seeds measure different wall clocks.
	LatencyNS int64
	// PerProcSteps breaks Steps down by process.
	PerProcSteps []int64
	// Rounds is each process's count of round advances.
	Rounds []int64
	// CoinFlips is each process's count of random-walk steps.
	CoinFlips []int64

	// MaxAbsCoin is the largest |coin counter| written (space accounting).
	MaxAbsCoin int64
	// MaxRound is the largest explicit round number written — 0 for the
	// bounded algorithm, which stores none.
	MaxRound int64

	// Counters is the cross-layer event-count registry keyed by stable event
	// identifiers ("register.swmr.read", "scan.retry", "core.decide", ...).
	// Zero-count kinds are omitted. Collected on every run — the counting
	// path is a handful of atomic increments with no allocation.
	Counters map[string]int64
	// Gauges holds the registry's max-gauges ("core.max_abs_coin", ...),
	// zero-valued gauges omitted.
	Gauges map[string]int64
	// Hists holds the registry's histograms keyed by stable identifiers:
	// "core.steps_to_decide", "scan.retries_per_scan", and the per-phase
	// "phase.steps.*" family (one sample per decided process; the family's
	// sums decompose core.steps_to_decide). Empty histograms are omitted.
	Hists map[string]obs.HistSnapshot
	// Matrices holds matrix-valued metrics when Config.Profile is set: the
	// n×n "prof.blame" grid (scans by row pid failed because of column pid's
	// register) and the 1×n "prof.contention" register heatmap. Nil when
	// profiling is off.
	Matrices map[string]obs.MatrixSnapshot

	// Profile is the full profiler report (step classes, per-process ledger,
	// blame and contention matrices, phase slices, and the critical path)
	// when Config.Profile is set; nil otherwise. Export it with
	// prof.WritePerfetto or analyze it with cmd/traceview -prof.
	Profile *prof.Profile

	// Space is the space-accounting report (register counts, per-layer word
	// layouts, declared and measured bits-per-register) when Config.Space is
	// set; nil otherwise. Analyze it with cmd/traceview -space.
	Space *space.Usage

	// Violations counts invariant-probe firings by probe name ("coin.range",
	// "strip.graph", ...) when Config.Audit is set; nil when auditing is off
	// or the run was clean.
	Violations map[string]int64
	// Truncations counts coin-counter saturations at ±(M+1) observed by the
	// monitor (legal per the paper — accounting, not a violation).
	Truncations int64
	// AuditDumps lists the flight-recorder dump files written under
	// Config.AuditDumpDir, in violation order. Feed one to cmd/consensus-audit
	// to replay the instance post-mortem.
	AuditDumps []string
}

// Errors returned by Solve, wrapped from the scheduler.
var (
	// ErrStepBudget reports that MaxSteps elapsed before every process
	// decided.
	ErrStepBudget = sched.ErrStepBudget
	// ErrStalled reports that every remaining process was crashed by the
	// schedule before deciding. Survivors' decisions are still reported.
	ErrStalled = sched.ErrStalled
)

// Solve runs one consensus instance to completion and returns the outcome.
// The error is nil when every process decided; ErrStepBudget or ErrStalled
// (with partial results) otherwise.
func Solve(cfg Config) (Result, error) {
	if len(cfg.Inputs) == 0 {
		return Result{}, errors.New("consensus: Config.Inputs must not be empty")
	}
	alg := cfg.Algorithm
	if alg == 0 {
		alg = Bounded
	}
	kind, err := alg.kind()
	if err != nil {
		return Result{}, err
	}
	memKind, err := cfg.Memory.kind()
	if err != nil {
		return Result{}, err
	}
	adv, err := cfg.Schedule.adversary(cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	sub, err := cfg.substrate()
	if err != nil {
		return Result{}, err
	}
	if sub != nil && sub.NativeRegisters() && cfg.Profile {
		return Result{}, errors.New("consensus: Profile requires the simulated substrate (profiler hooks assume serialized steps)")
	}
	if sub != nil && sub.NativeRegisters() && cfg.ParallelDispatch {
		return Result{}, errors.New("consensus: ParallelDispatch requires the simulated substrate (native runs schedule on the hardware, not the adversary)")
	}
	// One sink serves every trace surface: the human-readable log filters the
	// shared event stream to the core layer, the JSONL export takes all of
	// it, and the metrics registry counts regardless. With no consumer the
	// sink is metrics-only, which costs atomic increments and no allocation.
	var recs []obs.Recorder
	if cfg.TraceWriter != nil {
		recs = append(recs, obs.FilterLayers(obs.NewTextRecorder(cfg.TraceWriter), obs.LayerCore))
	}
	var jsonl *obs.JSONLRecorder
	if cfg.TraceJSONL != nil {
		jsonl = obs.NewJSONLRecorder(cfg.TraceJSONL)
		recs = append(recs, jsonl)
	}
	if cfg.Recorder != nil {
		recs = append(recs, cfg.Recorder)
	}
	sink := obs.NewSink(obs.Tee(recs...))
	if cfg.Sink != nil {
		// Share the caller's registry; stack this run's trace surfaces onto
		// any recorder the caller's sink already has.
		all := append([]obs.Recorder{cfg.Sink.Recorder()}, recs...)
		sink = cfg.Sink.WithRecorder(obs.Tee(all...))
	}
	var mon *audit.Monitor
	if cfg.Audit {
		mon = audit.New(audit.Options{
			SampleEvery: cfg.AuditSampleEvery,
			DumpDir:     cfg.AuditDumpDir,
		})
		mon.SetRun(runInfoFor(cfg, alg, -1, 0))
	}
	var profiler *prof.Profiler
	if cfg.Profile {
		profiler = prof.New(prof.Options{N: len(cfg.Inputs), RetainSpans: true})
	}
	var meter *space.Meter
	if cfg.Space {
		meter = space.NewMeter()
	}
	solveStart := time.Now() // monotonic; read only when cfg.Latency below
	out, err := core.Execute(kind, core.Config{
		K:              cfg.K,
		B:              cfg.B,
		M:              cfg.M,
		MemKind:        memKind,
		UseBloomArrows: cfg.UseBloomArrows,
		FastDecide:     cfg.FastDecide,
	}, core.ExecConfig{
		Inputs:    cfg.Inputs,
		Seed:      cfg.Seed,
		Adversary: adv,
		MaxSteps:  cfg.MaxSteps,
		Sink:      sink,
		Monitor:   mon,
		Profiler:  profiler,
		Space:     meter,
		Substrate: sub,
		Commuting: cfg.ParallelDispatch,
	})
	var latencyNS int64
	if cfg.Latency {
		// The clock is read strictly after execution finished, so the meter
		// cannot perturb the run; it lands in the registry before Snapshot.
		latencyNS = time.Since(solveStart).Nanoseconds()
		if h := sink.Registry().Hist(obs.HistLatSolve); h != nil {
			h.Observe(latencyNS)
		}
	}
	if jsonl != nil {
		if ferr := jsonl.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("consensus: flushing JSONL trace: %w", ferr)
		}
	}
	if err != nil {
		return Result{}, err
	}
	value, err := out.Agreement()
	if err != nil {
		// A consistency violation would be a bug in the library, not a user
		// error; surface it loudly.
		return Result{}, err
	}
	snap := sink.Registry().Snapshot()
	if profiler.Enabled() {
		// Registry snapshots never carry matrices; the profiler contributes
		// its prof.* counters, gauges and matrices through the merge.
		snap = obs.MergeSnapshots(snap, profiler.Snapshot())
	}
	res := Result{
		Value:        value,
		Decided:      out.Decided,
		Values:       out.Values,
		Steps:        out.Sched.Steps,
		LatencyNS:    latencyNS,
		PerProcSteps: out.Sched.PerProc,
		Rounds:       out.Metrics.Rounds,
		CoinFlips:    out.Metrics.CoinFlips,
		MaxAbsCoin:   out.Metrics.MaxAbsCoin,
		MaxRound:     out.Metrics.MaxRound,
		Counters:     snap.Counters,
		Gauges:       snap.Gauges,
		Hists:        snap.Hists,
	}
	if mon != nil {
		res.Violations = mon.Violations()
		res.Truncations = mon.Truncations()
		res.AuditDumps = mon.DumpFiles()
	}
	if profiler.Enabled() {
		res.Matrices = snap.Matrices
		res.Profile = profiler.Report()
	}
	if meter.Enabled() {
		u := meter.Usage()
		res.Space = &u
	}
	return res, out.Err
}

// CoinConfig configures a standalone weak shared coin (see FlipCoin).
type CoinConfig struct {
	// N is the number of processes driving the walk. Required.
	N int
	// B is the barrier multiplier (default 4).
	B int
	// M bounds each counter (default: derived; negative = unbounded).
	M int
	// Seed makes the run deterministic.
	Seed int64
	// Schedule configures the adversary (default round-robin).
	Schedule Schedule
}

// CoinResult reports a standalone shared-coin run.
type CoinResult struct {
	// Outcomes[i] is what process i observed: "heads" or "tails". Processes
	// may disagree — that is the coin's weakness, bounded by (n-1)/(2B).
	Outcomes []string
	// Agreed reports whether all processes observed the same outcome.
	Agreed bool
	// WalkSteps is the total number of counter moves.
	WalkSteps int64
	// MaxAbsCounter is the largest |counter| reached.
	MaxAbsCounter int
}

// FlipCoin runs the paper's bounded weak shared coin once, standalone, and
// reports what each process observed.
func FlipCoin(cfg CoinConfig) (CoinResult, error) {
	if cfg.N < 1 {
		return CoinResult{}, fmt.Errorf("consensus: CoinConfig.N must be >= 1, got %d", cfg.N)
	}
	params := walk.Params{N: cfg.N, B: cfg.B, M: cfg.M}
	if params.B == 0 {
		params.B = 4
	}
	if params.M == 0 {
		params.M = params.DefaultM()
	}
	if params.M < 0 {
		params.M = 0 // unbounded
	}
	coin, err := walk.NewSharedCoin(params)
	if err != nil {
		return CoinResult{}, err
	}
	adv, err := cfg.Schedule.adversary(cfg.Seed)
	if err != nil {
		return CoinResult{}, err
	}
	outcomes := make([]walk.Outcome, cfg.N)
	_, err = sched.Run(sched.Config{N: cfg.N, Seed: cfg.Seed, Adversary: adv}, func(p *sched.Proc) {
		outcomes[p.ID()] = coin.Flip(p)
	})
	if err != nil {
		return CoinResult{}, err
	}
	res := CoinResult{
		Outcomes:      make([]string, cfg.N),
		Agreed:        true,
		WalkSteps:     coin.TotalWalkSteps(),
		MaxAbsCounter: coin.MaxAbsCounter(),
	}
	for i, o := range outcomes {
		res.Outcomes[i] = o.String()
		if o != outcomes[0] {
			res.Agreed = false
		}
	}
	return res, nil
}
