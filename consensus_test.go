package consensus

import (
	"errors"
	"fmt"
	"testing"
)

func TestSolveDefaultsQuickstart(t *testing.T) {
	res, err := Solve(Config{Inputs: []int{0, 1, 1, 0}, Seed: 42, MaxSteps: 20_000_000})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Value != 0 && res.Value != 1 {
		t.Fatalf("Value = %d", res.Value)
	}
	for i, d := range res.Decided {
		if !d {
			t.Fatalf("process %d undecided", i)
		}
		if res.Values[i] != res.Value {
			t.Fatalf("process %d decided %d, agreement says %d", i, res.Values[i], res.Value)
		}
	}
	if res.Steps == 0 || res.MaxAbsCoin < 0 {
		t.Fatalf("metrics not populated: %+v", res)
	}
}

func TestSolveValidityAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Bounded, AspnesHerlihy, LocalCoin, StrongCoin, Abrahamson} {
		for _, input := range []int{0, 1} {
			res, err := Solve(Config{
				Inputs:    []int{input, input, input},
				Algorithm: alg,
				Seed:      7,
				Schedule:  Schedule{Kind: RandomSchedule},
				MaxSteps:  20_000_000,
			})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if res.Value != input {
				t.Fatalf("%v: validity violated: decided %d from all-%d inputs", alg, res.Value, input)
			}
		}
	}
}

func TestSolveRejectsBadConfig(t *testing.T) {
	if _, err := Solve(Config{}); err == nil {
		t.Fatal("expected error for empty inputs")
	}
	if _, err := Solve(Config{Inputs: []int{0}, Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	if _, err := Solve(Config{Inputs: []int{0}, Memory: MemoryKind(99)}); err == nil {
		t.Fatal("expected error for unknown memory kind")
	}
	if _, err := Solve(Config{Inputs: []int{0}, Schedule: Schedule{Kind: ScheduleKind(99)}}); err == nil {
		t.Fatal("expected error for unknown schedule kind")
	}
	if _, err := Solve(Config{Inputs: []int{0, 3}}); err == nil {
		t.Fatal("expected error for non-binary input")
	}
}

func TestSolveStepBudget(t *testing.T) {
	_, err := Solve(Config{Inputs: []int{0, 1, 0, 1}, Seed: 1, MaxSteps: 50})
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestSolveCrashSchedule(t *testing.T) {
	res, err := Solve(Config{
		Inputs:   []int{0, 1, 1},
		Seed:     9,
		Schedule: Schedule{Kind: RandomSchedule, CrashAt: map[int]int64{1: 100, 2: 300}},
		MaxSteps: 20_000_000,
	})
	if err != nil && !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v", err)
	}
	if !res.Decided[0] {
		t.Fatal("survivor did not decide")
	}
}

func TestSolveLaggerSchedule(t *testing.T) {
	res, err := Solve(Config{
		Inputs:   []int{1, 0, 1},
		Seed:     5,
		Schedule: Schedule{Kind: LaggerSchedule, Victim: 1, Period: 32},
		MaxSteps: 30_000_000,
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Value != 0 && res.Value != 1 {
		t.Fatalf("Value = %d", res.Value)
	}
}

func TestSolveDeterministicReplay(t *testing.T) {
	cfg := Config{Inputs: []int{1, 0, 1, 0}, Seed: 77, Schedule: Schedule{Kind: RandomSchedule}, MaxSteps: 20_000_000}
	a, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Steps != b.Steps {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", a.Value, a.Steps, b.Value, b.Steps)
	}
}

func TestSolveBoundedHasNoExplicitRounds(t *testing.T) {
	res, err := Solve(Config{Inputs: []int{0, 1}, Seed: 3, MaxSteps: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRound != 0 {
		t.Fatalf("bounded algorithm wrote explicit round %d", res.MaxRound)
	}
	res, err = Solve(Config{Inputs: []int{0, 1}, Algorithm: AspnesHerlihy, Seed: 3, MaxSteps: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRound == 0 {
		t.Fatal("unbounded baseline reported no rounds")
	}
}

func TestSolveSeqSnapMemory(t *testing.T) {
	res, err := Solve(Config{
		Inputs: []int{0, 1, 0}, Seed: 11, Memory: SeqSnapMemory,
		Schedule: Schedule{Kind: RandomSchedule}, MaxSteps: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 && res.Value != 1 {
		t.Fatalf("Value = %d", res.Value)
	}
}

func TestFlipCoin(t *testing.T) {
	res, err := FlipCoin(CoinConfig{N: 4, B: 4, Seed: 13, Schedule: Schedule{Kind: RandomSchedule}})
	if err != nil {
		t.Fatalf("FlipCoin: %v", err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("outcomes = %v", res.Outcomes)
	}
	for _, o := range res.Outcomes {
		if o != "heads" && o != "tails" {
			t.Fatalf("bad outcome %q", o)
		}
	}
	if res.WalkSteps == 0 {
		t.Fatal("no walk steps recorded")
	}
	if _, err := FlipCoin(CoinConfig{N: 0}); err == nil {
		t.Fatal("expected error for N=0")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range []Algorithm{Bounded, AspnesHerlihy, LocalCoin, StrongCoin, Abrahamson} {
		if a.String() == "" {
			t.Fatalf("algorithm %d has empty name", int(a))
		}
	}
}

func ExampleSolve() {
	res, err := Solve(Config{
		Inputs: []int{1, 1, 1},
		Seed:   1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decided:", res.Value)
	// Output: decided: 1
}
