package consensus_test

import (
	"fmt"

	consensus "github.com/dsrepro/consensus"
)

// Agree on a binary value among processes with conflicting inputs.
func ExampleSolve_mixedInputs() {
	res, err := consensus.Solve(consensus.Config{
		Inputs:   []int{0, 1, 1, 0},
		Seed:     7,
		Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	agreed := true
	for _, v := range res.Values {
		if v != res.Value {
			agreed = false
		}
	}
	fmt.Println("all processes agreed:", agreed)
	// Output: all processes agreed: true
}

// Multivalued consensus: the paper's "arbitrary initial values" extension.
func ExampleSolveMulti() {
	v, err := consensus.SolveMulti(consensus.Config{Seed: 11}, []uint64{42, 42, 42})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decided:", v)
	// Output: decided: 42
}

// The standalone weak shared coin (§3): all processes usually observe the
// same outcome; the disagreement probability is bounded by (n-1)/(2B).
func ExampleFlipCoin() {
	res, err := consensus.FlipCoin(consensus.CoinConfig{N: 4, B: 8, Seed: 5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("processes observed one outcome:", res.Agreed)
	// Output: processes observed one outcome: true
}

// Crash tolerance: survivors decide even when others stop forever.
func ExampleSolve_crashes() {
	res, err := consensus.Solve(consensus.Config{
		Inputs:   []int{1, 0, 1},
		Seed:     3,
		Schedule: consensus.Schedule{Kind: consensus.RandomSchedule, CrashAt: map[int]int64{2: 200}},
		MaxSteps: 100_000_000,
	})
	if err != nil && err != consensus.ErrStalled {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("survivor 0 decided:", res.Decided[0])
	// Output: survivor 0 decided: true
}
