// Adversary showcase: the same consensus instance is run against
// progressively nastier schedulers — fair round-robin, random, a scheduler
// that starves one process, and one that crashes two of four processes
// mid-run. Wait-freedom means the survivors always decide, and consistency
// means nobody ever disagrees, no matter the schedule.
//
// Run with:
//
//	go run ./examples/adversary
package main

import (
	"errors"
	"fmt"
	"log"

	consensus "github.com/dsrepro/consensus"
)

func main() {
	inputs := []int{0, 1, 0, 1}

	scenarios := []struct {
		name     string
		schedule consensus.Schedule
	}{
		{"fair round-robin", consensus.Schedule{Kind: consensus.RoundRobin}},
		{"uniformly random", consensus.Schedule{Kind: consensus.RandomSchedule}},
		{"starve process 0 (1 step in 64)", consensus.Schedule{
			Kind: consensus.LaggerSchedule, Victim: 0, Period: 64,
		}},
		{"crash processes 2 and 3 mid-run", consensus.Schedule{
			Kind:    consensus.RandomSchedule,
			CrashAt: map[int]int64{2: 300, 3: 900},
		}},
	}

	fmt.Printf("inputs: %v\n\n", inputs)
	for _, sc := range scenarios {
		res, err := consensus.Solve(consensus.Config{
			Inputs:   inputs,
			Seed:     777,
			Schedule: sc.schedule,
			MaxSteps: 100_000_000,
		})
		switch {
		case err == nil:
			// every process decided
		case errors.Is(err, consensus.ErrStalled):
			// crashes stopped some processes; survivors' results stand
		default:
			log.Fatalf("%s: %v", sc.name, err)
		}

		fmt.Printf("%-34s decision=%d steps=%-7d", sc.name, res.Value, res.Steps)
		undecided := 0
		for _, d := range res.Decided {
			if !d {
				undecided++
			}
		}
		if undecided > 0 {
			fmt.Printf(" (%d crashed before deciding; survivors agree)", undecided)
		}
		fmt.Println()

		// Consistency check: every decided value matches.
		for i, d := range res.Decided {
			if d && res.Values[i] != res.Value {
				log.Fatalf("%s: CONSISTENCY VIOLATION at process %d", sc.name, i)
			}
		}
	}
	fmt.Println("\nall schedules: every decider agreed — consistency and wait-freedom hold.")
}
