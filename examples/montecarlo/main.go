// Monte-Carlo bias study: for every split of 8 inputs between 0 and 1, run
// many independent consensus instances and measure how often the protocol
// decides 1. Validity pins the endpoints (all-0 must decide 0, all-1 must
// decide 1); in between, randomized consensus gives no distributional
// guarantee — the decision depends on leadership races and shared-coin
// outcomes — but the measured curve shows the protocol tracks the input
// majority without ever violating validity or agreement.
//
// Run with:
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"
	"strings"

	consensus "github.com/dsrepro/consensus"
)

func main() {
	const n, trials = 8, 60

	fmt.Printf("decision bias of bounded randomized consensus, n=%d, %d trials per split\n\n", n, trials)
	fmt.Printf("%-8s  %-10s  %s\n", "#ones", "P[decide 1]", "")

	for ones := 0; ones <= n; ones++ {
		inputs := make([]int, n)
		for i := 0; i < ones; i++ {
			inputs[i] = 1
		}
		decided1 := 0
		for k := 0; k < trials; k++ {
			res, err := consensus.Solve(consensus.Config{
				Inputs:   inputs,
				Seed:     int64(ones*1000 + k),
				Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
				MaxSteps: 200_000_000,
			})
			if err != nil {
				log.Fatalf("ones=%d trial %d: %v", ones, k, err)
			}
			if res.Value == 1 {
				decided1++
			}
			// Validity is a hard guarantee at the endpoints.
			if ones == 0 && res.Value != 0 || ones == n && res.Value != 1 {
				log.Fatalf("validity violated at ones=%d: decided %d", ones, res.Value)
			}
		}
		p := float64(decided1) / trials
		bar := strings.Repeat("#", int(p*40+0.5))
		fmt.Printf("%-8d  %-10.3f  %s\n", ones, p, bar)
	}

	fmt.Println("\nendpoints are pinned by validity; the interior curve is unconstrained by")
	fmt.Println("the spec but tracks the majority — leadership races favor the popular value.")
}
