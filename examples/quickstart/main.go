// Quickstart: four asynchronous processes with conflicting inputs agree on a
// value using the paper's bounded polynomial randomized consensus algorithm.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	consensus "github.com/dsrepro/consensus"
)

func main() {
	res, err := consensus.Solve(consensus.Config{
		// One binary input per process — here they conflict, so the protocol
		// has real work to do.
		Inputs: []int{0, 1, 1, 0},
		// Every run is deterministic in the seed: rerun with the same seed
		// and you get the same schedule, the same coin flips, the same
		// decision.
		Seed: 2026,
		// An adversarial scheduler picks the interleaving; random is a good
		// default stress.
		Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
	})
	if err != nil {
		log.Fatalf("consensus failed: %v", err)
	}

	fmt.Printf("decision: %d\n", res.Value)
	fmt.Printf("every process agreed: %v\n", res.Values)
	fmt.Printf("total atomic register operations: %d\n", res.Steps)
	fmt.Printf("rounds per process: %v\n", res.Rounds)
	fmt.Printf("largest coin counter ever written: %d (bounded!)\n", res.MaxAbsCoin)
}
