// Replicated log: the classic application of consensus. Three replicas each
// receive client commands in different orders; for every log slot they run
// one multivalued-consensus instance (consensus.SolveMulti — the paper's
// "arbitrary initial values" extension) to agree which command commits. The
// result is an identical command sequence on every replica — built purely
// from the wait-free consensus primitive, with no locks and no leader
// election.
//
// Run with:
//
//	go run ./examples/replicatedlog
package main

import (
	"fmt"
	"log"

	consensus "github.com/dsrepro/consensus"
)

// command is a small client command identifier.
type command uint64

var names = map[command]string{
	0: "SET x=1",
	1: "SET y=2",
	2: "DEL x",
	3: "INCR y",
}

func main() {
	// Each replica sees client commands arrive in a different order.
	arrivals := [][]command{
		{0, 1, 2, 3}, // replica 0
		{1, 0, 3, 2}, // replica 1
		{2, 3, 0, 1}, // replica 2
	}
	nReplicas := len(arrivals)
	slots := len(arrivals[0])

	fmt.Println("replica arrival orders:")
	for r, a := range arrivals {
		fmt.Printf("  replica %d: ", r)
		for _, c := range a {
			fmt.Printf("%-9s ", names[c])
		}
		fmt.Println()
	}
	fmt.Println()

	logOut := make([]command, 0, slots)
	committed := make(map[command]bool)
	for slot := 0; slot < slots; slot++ {
		// Each replica proposes its earliest not-yet-committed command.
		proposals := make([]uint64, nReplicas)
		for r := range arrivals {
			for _, c := range arrivals[r] {
				if !committed[c] {
					proposals[r] = uint64(c)
					break
				}
			}
		}
		agreed, err := consensus.SolveMulti(consensus.Config{
			Seed:     9000 + int64(slot),
			Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
			MaxSteps: 100_000_000,
		}, proposals)
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		c := command(agreed)
		committed[c] = true
		logOut = append(logOut, c)
		fmt.Printf("slot %d: proposals %v -> committed %q on every replica\n",
			slot, proposals, names[c])
	}

	fmt.Println("\nfinal replicated log (identical on all replicas):")
	for i, c := range logOut {
		fmt.Printf("  %d: %s\n", i, names[c])
	}
}
