// Shared coin demo: the paper's §3 weak shared coin, standalone. Eight
// processes drive a common random walk by flipping local coins and moving
// bounded per-process counters; the walk's exit barrier determines a global
// outcome that all processes usually — but not always — agree on. The demo
// measures the agreement rate against the Lemma 3.1 bound for several
// barrier settings.
//
// Run with:
//
//	go run ./examples/sharedcoin
package main

import (
	"fmt"
	"log"

	consensus "github.com/dsrepro/consensus"
)

func main() {
	const n, trials = 8, 60

	fmt.Printf("weak shared coin, n=%d processes, %d flips per setting\n\n", n, trials)
	fmt.Printf("%-4s  %-10s  %-10s  %-12s  %s\n", "B", "agreement", "bound", "mean steps", "theory steps")

	for _, b := range []int{1, 2, 4, 8} {
		agreed := 0
		var steps int64
		for k := 0; k < trials; k++ {
			res, err := consensus.FlipCoin(consensus.CoinConfig{
				N: n, B: b, Seed: int64(b*1000 + k),
				Schedule: consensus.Schedule{Kind: consensus.RandomSchedule},
			})
			if err != nil {
				log.Fatalf("B=%d: %v", b, err)
			}
			if res.Agreed {
				agreed++
			}
			steps += res.WalkSteps
		}
		bound := 1 - float64(n-1)/float64(2*b)
		if bound < 0 {
			bound = 0
		}
		theory := float64((b+1)*(b+1)) * n * n
		fmt.Printf("%-4d  %-10.3f  >=%-8.3f  %-12.1f  %.0f\n",
			b, float64(agreed)/trials, bound, float64(steps)/trials, theory)
	}

	fmt.Println("\nlarger barriers buy more agreement (Lemma 3.1) at the price of longer")
	fmt.Println("walks (Lemma 3.2) — the exact trade the consensus protocol tunes with B.")
}
