// Universal objects inside one simulated execution: the paper's introduction
// notes that randomized consensus "provides a basis for constructing novel
// universal synchronization primitives, such as the fetch and cons of [H88],
// or the sticky bits of [P89]". This example runs four asynchronous processes
// under an adversarial scheduler and has them use, concurrently:
//
//   - a sticky bit (write-once register): two processes race to stick
//     opposite values; everyone ends up seeing the same winner;
//   - a universal append log: all four processes append commands
//     concurrently; every process reads back the identical committed order.
//
// (This example uses the library's internal packages directly because the
// objects live inside a single simulated execution; the public API wraps
// whole executions.)
//
// Run with:
//
//	go run ./examples/universal
package main

import (
	"fmt"
	"log"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/universal"
)

func main() {
	const n = 4
	bit, err := universal.NewStickyBit(n, core.Config{B: 2})
	if err != nil {
		log.Fatal(err)
	}
	ulog, err := universal.NewLog(n, core.Config{B: 2})
	if err != nil {
		log.Fatal(err)
	}

	stuck := make([]int, n)
	slots := make([]int, n)
	views := make([][]uint64, n)
	viewOK := make([][]bool, n)
	appended := 0

	_, err = sched.Run(sched.Config{
		N: n, Seed: 2026, Adversary: sched.NewRandom(7), MaxSteps: 400_000_000,
	}, func(p *sched.Proc) {
		i := p.ID()

		// Phase 1: processes 0 and 1 race on the sticky bit; 2 and 3 read it.
		switch i {
		case 0, 1:
			v, err := bit.Write(p, i) // 0 tries to stick 0, 1 tries to stick 1
			if err != nil {
				log.Fatal(err)
			}
			stuck[i] = v
		default:
			stuck[i] = bit.Read(p)
		}

		// Phase 2: everyone appends one command to the universal log.
		slot, err := ulog.Append(p, uint64(1000+i))
		if err != nil {
			log.Fatal(err)
		}
		slots[i] = slot
		appended++
		for appended < n {
			p.Step() // barrier so reads don't turn pending slots into no-ops
		}

		// Phase 3: everyone reads the committed log.
		cmds, oks, err := ulog.Committed(p, 12)
		if err != nil {
			log.Fatal(err)
		}
		views[i], viewOK[i] = cmds, oks
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sticky bit: writers raced to stick 0 vs 1")
	for i, v := range stuck {
		if v == universal.Unset {
			fmt.Printf("  p%d observed: unset (read before any write started)\n", i)
		} else {
			fmt.Printf("  p%d observed: %d\n", i, v)
		}
	}

	fmt.Println("\nuniversal log: concurrent appends")
	for i, s := range slots {
		fmt.Printf("  p%d committed command %d at slot %d\n", i, 1000+i, s)
	}
	fmt.Println("\ncommitted order (identical from every process):")
	for s := range views[0] {
		if !viewOK[0][s] {
			continue
		}
		fmt.Printf("  slot %-2d: %d\n", s, views[0][s])
	}
	for i := 1; i < n; i++ {
		for s := range views[0] {
			if viewOK[i][s] != viewOK[0][s] || (viewOK[0][s] && views[i][s] != views[0][s]) {
				log.Fatalf("views diverge at slot %d — universality broken", s)
			}
		}
	}
	fmt.Println("\nall views agree — consensus really is universal.")
}
