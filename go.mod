module github.com/dsrepro/consensus

go 1.22
