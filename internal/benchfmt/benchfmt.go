// Package benchfmt defines the machine-readable benchmark report produced by
// cmd/consensus-load -json (the BENCH_batch.json artifact) and the regression
// comparison over two such reports used by cmd/benchdiff and `make
// bench-check`. It lives in internal so the load generator and the diff tool
// share one schema definition; DESIGN.md §10 documents the wire format.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/obs/tail"
)

// Report is one consensus-load invocation's results. Field names are the
// stable JSON schema; new fields are only ever added (older artifacts decode
// with the new fields zero).
type Report struct {
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	// K and M are the workload's strip constant and coin bound when the sweep
	// set them explicitly; 0 means the algorithm defaults (and keeps
	// pre-frontier artifacts on their historical keys).
	K int `json:"k,omitempty"`
	M int `json:"m,omitempty"`
	// Substrate names the execution backend the workload ran on ("simulated"
	// or "native"). Empty means simulated — artifacts predate the field — so
	// old and new artifacts keep pairing on the same keys.
	Substrate string `json:"substrate,omitempty"`
	// Dispatch names the scheduling engine ("sequential" or "commuting").
	// Empty means sequential — artifacts predate the field — so old and new
	// artifacts keep pairing on the same keys. Dispatch modes are different
	// workloads: commuting schedules have a different interleaving
	// distribution, so their step counts must never pair-compare against
	// sequential rows.
	Dispatch        string           `json:"dispatch,omitempty"`
	Instances       int              `json:"instances"`
	Parallel        int              `json:"parallel"`
	Seed            int64            `json:"seed"`
	ElapsedSec      float64          `json:"elapsed_sec"`
	InstancesPerSec float64          `json:"instances_per_sec"`
	Errors          int              `json:"errors"`
	Steps           StepsSummary     `json:"steps"`
	Counters        map[string]int64 `json:"counters"`
	Gauges          map[string]int64 `json:"gauges"`
	// Hists carries the batch's full histogram snapshots, including the
	// phase.steps.* family. Absent from artifacts generated before the field
	// existed (nil map — benchdiff then skips phase comparisons).
	Hists map[string]obs.HistSnapshot `json:"hists,omitempty"`
	// Dropped counts ring-recorder events overwritten during the run (0 when
	// no tail was attached or the ring kept up).
	Dropped int64 `json:"dropped_events,omitempty"`
	// Violations counts invariant-monitor probe firings across the batch
	// (0 when auditing was off or the batch was clean; see internal/obs/audit).
	Violations int64 `json:"audit_violations,omitempty"`
	// Matrices carries matrix-valued metrics merged across the batch — today
	// the profiler's blame matrix and contention heatmap (-prof). Absent when
	// profiling was off. benchdiff reports their totals via the prof.* counters
	// rather than comparing cells.
	Matrices map[string]obs.MatrixSnapshot `json:"matrices,omitempty"`
	// Derived holds ratios computed from the raw counters at report time
	// ("scan.retry_ratio" = scan.retry / scan.clean). They are informational:
	// benchdiff reports them but never gates on them, since each is derivable
	// from counters that are themselves compared.
	Derived map[string]float64 `json:"derived,omitempty"`
	// Space is the batch-wide space accounting (peak register count, word
	// layout, bits-per-register) when the workload ran with meters attached.
	// Absent from artifacts generated before the field existed — benchdiff
	// then skips space comparisons.
	Space *SpaceStats `json:"space,omitempty"`
	// Latency is the per-instance wall-clock distribution when the workload
	// ran with -latency metering. Unlike steps it is NOT deterministic per
	// seed: benchdiff gates only the p99 ratio, and loosely. Absent from
	// artifacts generated before the field existed.
	Latency *tail.Summary `json:"latency,omitempty"`
	// Stragglers digests the top-k slowest instances (seed, latency, steps,
	// decision) when the workload ran with -stragglers. The seeds make each
	// one replayable offline via cmd/consensus-straggler.
	Stragglers []tail.Straggler `json:"stragglers,omitempty"`
	// Env stamps the environment the workload ran in. Latency numbers are
	// only comparable between matching environments; benchdiff warns (never
	// errors) on a mismatch. Absent from artifacts generated before the
	// field existed.
	Env *EnvStamp `json:"env,omitempty"`
}

// EnvStamp records the run environment a report's wall-clock numbers were
// measured in. Step counts are environment-independent; latency and
// throughput are not, so benchdiff surfaces stamp mismatches as warnings.
type EnvStamp struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// CurrentEnv stamps the calling process's environment.
func CurrentEnv() *EnvStamp {
	return &EnvStamp{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// Diff lists the fields on which two stamps disagree, formatted for the
// benchdiff warning stream ("go_version: go1.22.1 -> go1.23.0"). A nil stamp
// on either side yields no diffs — artifacts predating the field are mute,
// not mismatched.
func (e *EnvStamp) Diff(other *EnvStamp) []string {
	if e == nil || other == nil {
		return nil
	}
	var out []string
	if e.GoVersion != other.GoVersion {
		out = append(out, fmt.Sprintf("go_version: %s -> %s", e.GoVersion, other.GoVersion))
	}
	if e.GOMAXPROCS != other.GOMAXPROCS {
		out = append(out, fmt.Sprintf("gomaxprocs: %d -> %d", e.GOMAXPROCS, other.GOMAXPROCS))
	}
	if e.NumCPU != other.NumCPU {
		out = append(out, fmt.Sprintf("num_cpu: %d -> %d", e.NumCPU, other.NumCPU))
	}
	if e.OS != other.OS {
		out = append(out, fmt.Sprintf("os: %s -> %s", e.OS, other.OS))
	}
	if e.Arch != other.Arch {
		out = append(out, fmt.Sprintf("arch: %s -> %s", e.Arch, other.Arch))
	}
	return out
}

// SpaceStats is the bench-artifact form of a space.Usage: the totals benchdiff
// gates on plus the per-layer bit widths the frontier tables render.
type SpaceStats struct {
	// PeakRegs is the batch-wide maximum register count of one instance;
	// LiveRegs counts the registers actually written.
	PeakRegs int64 `json:"peak_regs"`
	LiveRegs int64 `json:"live_regs,omitempty"`
	// PeakWords is the maximum abstract word count across all layers.
	PeakWords int64 `json:"peak_words"`
	// MaxBits is the widest register payload, in bits: the max over layers of
	// max(measured, declared) width, space.UnboundedBits (-1) when some layer
	// declares an unbounded domain AND never stored anything measurable.
	MaxBits int `json:"max_bits"`
	// LayerBits maps layer name -> that layer's payload width in bits.
	LayerBits map[string]int `json:"layer_bits,omitempty"`
}

// SpaceFromUsage converts a meter's usage into the bench-artifact form.
func SpaceFromUsage(u space.Usage) *SpaceStats {
	s := &SpaceStats{
		PeakRegs:  u.Regs,
		LiveRegs:  u.LiveRegs,
		PeakWords: u.PeakWords,
		MaxBits:   u.MaxBits,
	}
	if len(u.Layers) > 0 {
		s.LayerBits = make(map[string]int, len(u.Layers))
		for name, lu := range u.Layers {
			s.LayerBits[name] = lu.Bits()
		}
	}
	return s
}

// Key identifies the workload a report measured, for pairing the entries of
// two matrix artifacts. The substrate is part of the key — native and
// simulated runs of the same (algorithm, n) are different workloads and must
// never pair-compare — but the default simulated substrate is omitted so
// pre-substrate artifacts keep their historical keys.
func (r Report) Key() string {
	k := fmt.Sprintf("%s/n=%d", r.Algorithm, r.N)
	if r.K != 0 {
		k += fmt.Sprintf("/K=%d", r.K)
	}
	if r.M != 0 {
		k += fmt.Sprintf("/M=%d", r.M)
	}
	if s := NormSubstrate(r.Substrate); s != "simulated" {
		k += "/" + s
	}
	if d := NormDispatch(r.Dispatch); d != "sequential" {
		k += "/" + d
	}
	return k
}

// NormSubstrate maps a report's substrate name to its canonical form: the
// empty string (artifacts predating the field) is the simulated substrate.
func NormSubstrate(s string) string {
	if s == "" {
		return "simulated"
	}
	return s
}

// NormDispatch maps a report's dispatch name to its canonical form: the
// empty string (artifacts predating the field) is sequential dispatch.
func NormDispatch(s string) string {
	if s == "" {
		return "sequential"
	}
	return s
}

// StepsSummary is the per-instance step-total distribution.
type StepsSummary struct {
	Mean float64 `json:"mean"`
	Min  int64   `json:"min"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
}

// Matrix is a multi-workload bench artifact: one consensus-load -matrix
// invocation producing one Report per (algorithm, n) workload. It is the
// current BENCH_batch.json format; single-Report artifacts from older
// checkouts still decode via ReadAny.
type Matrix struct {
	Workloads []Report `json:"workloads"`
}

// Read decodes a report from the JSON file at path.
func Read(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return r, nil
}

// ReadAny decodes either artifact shape from the JSON file at path: a matrix
// (the current format, detected by its "workloads" key) or a legacy single
// report, which is returned as a one-workload matrix. This keeps benchdiff
// able to gate a new matrix artifact against a pre-matrix baseline.
func ReadAny(path string) (Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Matrix{}, err
	}
	var probe struct {
		Workloads []json.RawMessage `json:"workloads"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Matrix{}, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	if probe.Workloads != nil {
		var m Matrix
		if err := json.Unmarshal(data, &m); err != nil {
			return Matrix{}, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
		}
		return m, nil
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Matrix{}, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return Matrix{Workloads: []Report{r}}, nil
}

// Write encodes the report as indented JSON (the legacy single-workload
// BENCH_batch.json format).
func Write(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMatrix encodes the matrix as indented JSON (the BENCH_batch.json
// format).
func WriteMatrix(w io.Writer, m Matrix) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
