// Package benchfmt defines the machine-readable benchmark report produced by
// cmd/consensus-load -json (the BENCH_batch.json artifact) and the regression
// comparison over two such reports used by cmd/benchdiff and `make
// bench-check`. It lives in internal so the load generator and the diff tool
// share one schema definition; DESIGN.md §10 documents the wire format.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/dsrepro/consensus/internal/obs"
)

// Report is one consensus-load invocation's results. Field names are the
// stable JSON schema; new fields are only ever added (older artifacts decode
// with the new fields zero).
type Report struct {
	Algorithm       string           `json:"algorithm"`
	N               int              `json:"n"`
	Instances       int              `json:"instances"`
	Parallel        int              `json:"parallel"`
	Seed            int64            `json:"seed"`
	ElapsedSec      float64          `json:"elapsed_sec"`
	InstancesPerSec float64          `json:"instances_per_sec"`
	Errors          int              `json:"errors"`
	Steps           StepsSummary     `json:"steps"`
	Counters        map[string]int64 `json:"counters"`
	Gauges          map[string]int64 `json:"gauges"`
	// Hists carries the batch's full histogram snapshots, including the
	// phase.steps.* family. Absent from artifacts generated before the field
	// existed (nil map — benchdiff then skips phase comparisons).
	Hists map[string]obs.HistSnapshot `json:"hists,omitempty"`
	// Dropped counts ring-recorder events overwritten during the run (0 when
	// no tail was attached or the ring kept up).
	Dropped int64 `json:"dropped_events,omitempty"`
}

// StepsSummary is the per-instance step-total distribution.
type StepsSummary struct {
	Mean float64 `json:"mean"`
	Min  int64   `json:"min"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
}

// Read decodes a report from the JSON file at path.
func Read(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return r, nil
}

// Write encodes the report as indented JSON (the BENCH_batch.json format).
func Write(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
