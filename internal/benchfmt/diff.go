package benchfmt

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dsrepro/consensus/internal/obs"
)

// Thresholds bounds how much a metric may degrade from the old report to the
// new one before Compare flags a regression. Ratios are fractional: 0.25
// allows up to +25% growth (or -25% throughput). Benchmarks on shared CI
// machines are noisy, so the defaults are deliberately loose — they catch
// algorithmic blowups (a phase suddenly costing 2x its steps), not jitter.
type Thresholds struct {
	// MaxThroughputDrop bounds the relative drop of instances_per_sec.
	MaxThroughputDrop float64
	// MaxStepGrowth bounds the relative growth of the steps summary
	// (mean/p50/p90/p99). Step counts are deterministic per seed, so this can
	// be tighter than the wall-clock thresholds.
	MaxStepGrowth float64
	// MaxPhaseMeanGrowth bounds the relative growth of each phase.steps.*
	// histogram mean.
	MaxPhaseMeanGrowth float64
	// MaxPeakRegsGrowth bounds the relative growth of space.peak_regs. Space
	// is deterministic per seed (register counts and layouts don't jitter),
	// so this is the tightest gate.
	MaxPeakRegsGrowth float64
	// MaxPeakWordsGrowth bounds the relative growth of space.peak_words.
	MaxPeakWordsGrowth float64
	// MaxBitsGrowthAbs bounds the absolute growth of space.max_bits (a
	// register quietly widening by more than this many bits is a regression;
	// going from bounded to unbounded always is).
	MaxBitsGrowthAbs int
	// MaxLatencyP99Growth bounds the relative growth of the per-instance
	// wall-clock p99 (latency.p99_ns), compared only when both reports carry
	// a latency block. Wall clocks on shared machines are by far the
	// noisiest metric here, so the default allows a doubling — the gate is
	// for tail blowups (lock convoys, a quadratic slow path), not jitter.
	MaxLatencyP99Growth float64
}

// DefaultThresholds are the `make bench-check` settings.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxThroughputDrop:   0.40,
		MaxStepGrowth:       0.25,
		MaxPhaseMeanGrowth:  0.35,
		MaxPeakRegsGrowth:   0.10,
		MaxPeakWordsGrowth:  0.25,
		MaxBitsGrowthAbs:    1,
		MaxLatencyP99Growth: 1.00,
	}
}

// Finding is one detected regression.
type Finding struct {
	// Metric names what regressed ("instances_per_sec", "steps.p90",
	// "phase.steps.coin.mean", "errors").
	Metric string
	// Old and New are the compared values.
	Old, New float64
	// Limit is the threshold the change exceeded (as a fraction).
	Limit float64
}

// String renders the finding for the benchdiff report.
func (f Finding) String() string {
	return fmt.Sprintf("%-28s %14.2f -> %-14.2f (limit %+.0f%%)", f.Metric, f.Old, f.New, f.Limit*100)
}

// Compare diffs two reports and returns the regressions found under the given
// thresholds. The reports must describe the same workload (algorithm, n,
// substrate and dispatch mode — native timings are not comparable to
// simulated ones, and commuting schedules draw from a different interleaving
// distribution than sequential ones); a mismatch is an error, not a finding,
// since the comparison would be meaningless. Improvements never produce
// findings.
func Compare(old, new Report, th Thresholds) ([]Finding, error) {
	if old.Algorithm != new.Algorithm || old.N != new.N ||
		old.K != new.K || old.M != new.M ||
		NormSubstrate(old.Substrate) != NormSubstrate(new.Substrate) ||
		NormDispatch(old.Dispatch) != NormDispatch(new.Dispatch) {
		return nil, fmt.Errorf("benchfmt: incomparable reports: %s vs %s", old.Key(), new.Key())
	}
	var out []Finding

	if new.Errors > old.Errors {
		out = append(out, Finding{Metric: "errors", Old: float64(old.Errors), New: float64(new.Errors)})
	}

	if old.InstancesPerSec > 0 {
		drop := (old.InstancesPerSec - new.InstancesPerSec) / old.InstancesPerSec
		if drop > th.MaxThroughputDrop {
			out = append(out, Finding{
				Metric: "instances_per_sec",
				Old:    old.InstancesPerSec, New: new.InstancesPerSec,
				Limit: th.MaxThroughputDrop,
			})
		}
	}

	stepPairs := []struct {
		name     string
		old, new float64
	}{
		{"steps.mean", old.Steps.Mean, new.Steps.Mean},
		{"steps.p50", float64(old.Steps.P50), float64(new.Steps.P50)},
		{"steps.p90", float64(old.Steps.P90), float64(new.Steps.P90)},
		{"steps.p99", float64(old.Steps.P99), float64(new.Steps.P99)},
	}
	for _, sp := range stepPairs {
		if growth(sp.old, sp.new) > th.MaxStepGrowth {
			out = append(out, Finding{Metric: sp.name, Old: sp.old, New: sp.new, Limit: th.MaxStepGrowth})
		}
	}

	// Phase means: compared only for phases present in both reports, so
	// artifacts predating the hists field diff clean against themselves.
	phases := make([]string, 0, len(old.Hists))
	for key := range old.Hists {
		if strings.HasPrefix(key, obs.PhaseStepsPrefix) {
			if _, ok := new.Hists[key]; ok {
				phases = append(phases, key)
			}
		}
	}
	sort.Strings(phases)
	for _, key := range phases {
		o, n := old.Hists[key].Mean, new.Hists[key].Mean
		if growth(o, n) > th.MaxPhaseMeanGrowth {
			out = append(out, Finding{Metric: key + ".mean", Old: o, New: n, Limit: th.MaxPhaseMeanGrowth})
		}
	}

	// Space: compared only when both reports carry it, so artifacts predating
	// the field diff clean against themselves.
	if old.Space != nil && new.Space != nil {
		o, n := old.Space, new.Space
		if growth(float64(o.PeakRegs), float64(n.PeakRegs)) > th.MaxPeakRegsGrowth {
			out = append(out, Finding{
				Metric: "space.peak_regs",
				Old:    float64(o.PeakRegs), New: float64(n.PeakRegs),
				Limit: th.MaxPeakRegsGrowth,
			})
		}
		if growth(float64(o.PeakWords), float64(n.PeakWords)) > th.MaxPeakWordsGrowth {
			out = append(out, Finding{
				Metric: "space.peak_words",
				Old:    float64(o.PeakWords), New: float64(n.PeakWords),
				Limit: th.MaxPeakWordsGrowth,
			})
		}
		// Bits gate in absolute terms; a bounded->unbounded flip (MaxBits
		// going to -1) is always a finding.
		unboundedFlip := n.MaxBits < 0 && o.MaxBits >= 0
		if unboundedFlip || (n.MaxBits >= 0 && o.MaxBits >= 0 && n.MaxBits-o.MaxBits > th.MaxBitsGrowthAbs) {
			out = append(out, Finding{
				Metric: "space.max_bits",
				Old:    float64(o.MaxBits), New: float64(n.MaxBits),
				Limit: float64(th.MaxBitsGrowthAbs),
			})
		}
	}

	// Latency tail: compared only when both reports carry a measured latency
	// block, so artifacts predating the field (or runs without -latency) diff
	// clean. growth's denominator floor of 1 is inert here — p99s are in
	// nanoseconds, far above 1.
	if old.Latency != nil && new.Latency != nil && old.Latency.Count > 0 && new.Latency.Count > 0 {
		o, n := float64(old.Latency.P99NS), float64(new.Latency.P99NS)
		if growth(o, n) > th.MaxLatencyP99Growth {
			out = append(out, Finding{Metric: "latency.p99_ns", Old: o, New: n, Limit: th.MaxLatencyP99Growth})
		}
	}
	return out, nil
}

// EnvWarnings reports environment-stamp mismatches between paired workloads
// of two matrix artifacts. Mismatches are warnings, never findings: latency
// numbers measured on different machines aren't comparable, but failing the
// gate over a toolchain upgrade would make every environment change a
// false regression. Workloads missing a stamp on either side (older
// artifacts) produce no warnings. Duplicate messages (every workload of an
// artifact usually shares one environment) are collapsed.
func EnvWarnings(old, new Matrix) []string {
	byKey := make(map[string]Report, len(new.Workloads))
	for _, r := range new.Workloads {
		byKey[r.Key()] = r
	}
	seen := make(map[string]bool)
	var out []string
	for _, o := range old.Workloads {
		n, ok := byKey[o.Key()]
		if !ok {
			continue
		}
		for _, d := range o.Env.Diff(n.Env) {
			if !seen[d] {
				seen[d] = true
				out = append(out, "environment mismatch: "+d)
			}
		}
	}
	return out
}

// CompareMatrix diffs two matrix artifacts workload by workload, pairing
// entries on Key() — (algorithm, n) plus any explicit K/M and non-default
// substrate. Every workload of the old artifact must appear in
// the new one — a vanished workload means the gate silently lost coverage, so
// it is an error. Workloads only present in the new artifact are ignored
// (coverage grew; there is nothing to compare against yet). Findings are
// prefixed with the workload key ("bounded/n=4: steps.p90").
func CompareMatrix(old, new Matrix, th Thresholds) ([]Finding, error) {
	byKey := make(map[string]Report, len(new.Workloads))
	for _, r := range new.Workloads {
		byKey[r.Key()] = r
	}
	var out []Finding
	for _, o := range old.Workloads {
		n, ok := byKey[o.Key()]
		if !ok {
			return nil, fmt.Errorf("benchfmt: workload %s present in old artifact but missing from new", o.Key())
		}
		findings, err := Compare(o, n, th)
		if err != nil {
			return nil, err
		}
		for _, f := range findings {
			f.Metric = o.Key() + ": " + f.Metric
			out = append(out, f)
		}
	}
	return out, nil
}

// growth is the relative increase from o to n, with the denominator floored
// at 1 so tiny baselines (a phase averaging 0.2 steps) don't turn absolute
// noise into huge ratios.
func growth(o, n float64) float64 {
	den := o
	if den < 1 {
		den = 1
	}
	return (n - o) / den
}
