package benchfmt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

func baseline() Report {
	return Report{
		Algorithm:       "bounded",
		N:               4,
		Instances:       400,
		Parallel:        4,
		Seed:            42,
		ElapsedSec:      1.5,
		InstancesPerSec: 266.7,
		Steps:           StepsSummary{Mean: 7000, Min: 220, P50: 4500, P90: 19000, P99: 32000, Max: 47000},
		Counters:        map[string]int64{"core.decide": 1600},
		Hists: map[string]obs.HistSnapshot{
			"phase.steps.prefer": {Count: 1600, Sum: 8_000_000, Mean: 5000},
			"phase.steps.coin":   {Count: 1600, Sum: 2_400_000, Mean: 1500},
			"phase.steps.strip":  {Count: 1600, Sum: 800_000, Mean: 500},
			"phase.steps.decide": {Count: 1600, Sum: 0, Mean: 0},
		},
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	r := baseline()
	findings, err := Compare(r, r, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("self-compare produced findings: %v", findings)
	}
}

func TestCompareImprovementIsClean(t *testing.T) {
	old, new := baseline(), baseline()
	new.InstancesPerSec *= 2
	new.Steps.P90 /= 2
	new.Hists["phase.steps.coin"] = obs.HistSnapshot{Count: 1600, Sum: 1_000_000, Mean: 625}
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("improvements flagged as regressions: %v", findings)
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	old, new := baseline(), baseline()
	new.InstancesPerSec = old.InstancesPerSec * 0.5 // -50% > default 40% limit
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "instances_per_sec" {
		t.Errorf("findings = %v, want one instances_per_sec regression", findings)
	}
}

func TestCompareFlagsStepGrowth(t *testing.T) {
	old, new := baseline(), baseline()
	new.Steps.P90 = int64(float64(old.Steps.P90) * 1.5) // +50% > default 25% limit
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "steps.p90" {
		t.Errorf("findings = %v, want one steps.p90 regression", findings)
	}
}

func TestCompareFlagsPhaseMeanGrowth(t *testing.T) {
	old, new := baseline(), baseline()
	new.Hists["phase.steps.coin"] = obs.HistSnapshot{Count: 1600, Sum: 4_800_000, Mean: 3000} // 2x
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "phase.steps.coin.mean" {
		t.Errorf("findings = %v, want one phase.steps.coin.mean regression", findings)
	}
}

func TestCompareErrorsIncrease(t *testing.T) {
	old, new := baseline(), baseline()
	new.Errors = 3
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "errors" {
		t.Errorf("findings = %v, want one errors regression", findings)
	}
}

func TestCompareTinyPhaseMeanIsDamped(t *testing.T) {
	// A phase averaging 0.2 steps jumping to 0.5 is +150% relatively but
	// absolute noise; the floored denominator must keep it clean.
	old, new := baseline(), baseline()
	old.Hists["phase.steps.decide"] = obs.HistSnapshot{Count: 1600, Mean: 0.2}
	new.Hists["phase.steps.decide"] = obs.HistSnapshot{Count: 1600, Mean: 0.5}
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("sub-step phase jitter flagged: %v", findings)
	}
}

func TestCompareMismatchedWorkloads(t *testing.T) {
	old, new := baseline(), baseline()
	new.N = 8
	if _, err := Compare(old, new, DefaultThresholds()); err == nil {
		t.Error("expected an error comparing different n")
	}
	new = baseline()
	new.Algorithm = "strong-coin"
	if _, err := Compare(old, new, DefaultThresholds()); err == nil {
		t.Error("expected an error comparing different algorithms")
	}
}

func TestKeyIncludesNonDefaultSubstrate(t *testing.T) {
	r := baseline()
	if got := r.Key(); got != "bounded/n=4" {
		t.Errorf("Key() = %q, want bounded/n=4 (empty substrate is simulated)", got)
	}
	r.Substrate = "simulated"
	if got := r.Key(); got != "bounded/n=4" {
		t.Errorf("Key() = %q, want bounded/n=4 (explicit simulated is the default)", got)
	}
	r.Substrate = "native"
	if got := r.Key(); got != "bounded/n=4/native" {
		t.Errorf("Key() = %q, want bounded/n=4/native", got)
	}
}

func TestCompareMismatchedSubstrates(t *testing.T) {
	old, new := baseline(), baseline()
	new.Substrate = "native"
	if _, err := Compare(old, new, DefaultThresholds()); err == nil {
		t.Error("expected an error comparing simulated against native")
	}
	// An explicit "simulated" must still pair with the legacy empty field.
	new = baseline()
	new.Substrate = "simulated"
	if _, err := Compare(old, new, DefaultThresholds()); err != nil {
		t.Errorf("explicit simulated vs legacy empty: %v", err)
	}
}

// TestCompareMatrixMixedSubstrateArtifacts mimics gating the first artifact
// that carries native rows against a pre-substrate baseline: the simulated
// rows pair on their historical keys, the native rows are new coverage to
// ignore — a native row must never pair-compare against a simulated one even
// though it shares (algorithm, n).
func TestCompareMatrixMixedSubstrateArtifacts(t *testing.T) {
	old := matrixBaseline() // legacy: no substrate field anywhere
	new := matrixBaseline()
	for _, r := range matrixBaseline().Workloads {
		nat := r
		nat.Substrate = "native"
		// Native runs are wildly faster/slower per workload; if one ever
		// paired with its simulated twin these deltas would trip every gate.
		nat.InstancesPerSec = r.InstancesPerSec * 20
		nat.Steps.P90 = r.Steps.P90 * 3
		new.Workloads = append(new.Workloads, nat)
	}
	findings, err := CompareMatrix(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("mixed-substrate artifact produced findings: %v", findings)
	}
	// And the reverse direction: once the baseline has native rows, losing
	// them is lost coverage, exactly like any other vanished workload.
	if _, err := CompareMatrix(new, old, DefaultThresholds()); err == nil {
		t.Error("expected an error when the new artifact lost the native workloads")
	}
}

// TestCompareOldArtifactWithoutHists mimics diffing against a BENCH file
// generated before the hists field existed: phase comparisons are skipped,
// the rest still runs.
func TestCompareOldArtifactWithoutHists(t *testing.T) {
	old, new := baseline(), baseline()
	old.Hists = nil
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("hist-less artifact produced findings: %v", findings)
	}
}

func matrixBaseline() Matrix {
	small := baseline()
	small.Algorithm = "aspnes-herlihy"
	small.Instances = 40
	big := baseline()
	big.N = 8
	big.Instances = 60
	return Matrix{Workloads: []Report{baseline(), big, small}}
}

func TestCompareMatrixSelfIsClean(t *testing.T) {
	m := matrixBaseline()
	findings, err := CompareMatrix(m, m, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("matrix self-compare produced findings: %v", findings)
	}
}

func TestCompareMatrixPrefixesWorkloadKey(t *testing.T) {
	old, new := matrixBaseline(), matrixBaseline()
	new.Workloads[1].Steps.P90 = int64(float64(old.Workloads[1].Steps.P90) * 1.5)
	findings, err := CompareMatrix(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "bounded/n=8: steps.p90" {
		t.Errorf("findings = %v, want one bounded/n=8 steps.p90 regression", findings)
	}
}

func TestCompareMatrixPairsByKeyNotOrder(t *testing.T) {
	old, new := matrixBaseline(), matrixBaseline()
	new.Workloads[0], new.Workloads[2] = new.Workloads[2], new.Workloads[0]
	findings, err := CompareMatrix(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("reordered matrix produced findings: %v", findings)
	}
}

func TestCompareMatrixMissingWorkloadIsError(t *testing.T) {
	old, new := matrixBaseline(), matrixBaseline()
	new.Workloads = new.Workloads[:2] // drop aspnes-herlihy/n=4
	if _, err := CompareMatrix(old, new, DefaultThresholds()); err == nil {
		t.Error("expected an error when the new artifact lost a workload")
	}
}

func TestCompareMatrixExtraWorkloadIsOK(t *testing.T) {
	old, new := matrixBaseline(), matrixBaseline()
	extra := baseline()
	extra.Algorithm = "strong-coin"
	new.Workloads = append(new.Workloads, extra)
	findings, err := CompareMatrix(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("grown matrix produced findings: %v", findings)
	}
}

func TestReadAnyDetectsBothShapes(t *testing.T) {
	dir := t.TempDir()

	single := filepath.Join(dir, "single.json")
	var buf bytes.Buffer
	r := baseline()
	r.Derived = map[string]float64{"scan.retry_ratio": 1.36}
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(single, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadAny(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads) != 1 || m.Workloads[0].Key() != "bounded/n=4" {
		t.Errorf("legacy artifact: got %+v, want one bounded/n=4 workload", m.Workloads)
	}
	if m.Workloads[0].Derived["scan.retry_ratio"] != 1.36 {
		t.Errorf("derived map did not survive the round trip: %+v", m.Workloads[0].Derived)
	}

	matrix := filepath.Join(dir, "matrix.json")
	buf.Reset()
	if err := WriteMatrix(&buf, matrixBaseline()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matrix, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err = ReadAny(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads) != 3 || m.Workloads[1].Key() != "bounded/n=8" {
		t.Errorf("matrix artifact: got %d workloads (%+v)", len(m.Workloads), m.Workloads)
	}

	if _, err := ReadAny(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("expected an error reading a missing file")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	r := baseline()
	r.Dropped = 12
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != r.Algorithm || got.Seed != r.Seed || got.Dropped != 12 {
		t.Errorf("round trip: got %+v", got)
	}
	if got.Hists["phase.steps.coin"].Sum != r.Hists["phase.steps.coin"].Sum {
		t.Errorf("hists did not survive the round trip")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected an error reading a missing file")
	}
}
