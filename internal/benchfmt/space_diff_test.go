package benchfmt

import (
	"strings"
	"testing"

	"github.com/dsrepro/consensus/internal/obs/space"
)

func spaceBaseline() Report {
	r := baseline()
	r.Space = &SpaceStats{
		PeakRegs:  16,
		LiveRegs:  16,
		PeakWords: 56,
		MaxBits:   12,
		LayerBits: map[string]int{"scan": 1, "strip": 3, "walk": 12, "core": 3},
	}
	return r
}

func findMetric(findings []Finding, metric string) bool {
	for _, f := range findings {
		if strings.HasSuffix(f.Metric, metric) {
			return true
		}
	}
	return false
}

func TestCompareSpaceSelfIsClean(t *testing.T) {
	r := spaceBaseline()
	findings, err := Compare(r, r, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("self-compare with space produced findings: %v", findings)
	}
}

func TestCompareFlagsPeakRegsGrowth(t *testing.T) {
	old, new := spaceBaseline(), spaceBaseline()
	new.Space = &SpaceStats{PeakRegs: 20, PeakWords: 56, MaxBits: 12} // +25% > 10% limit
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !findMetric(findings, "space.peak_regs") {
		t.Errorf("peak register growth not flagged: %v", findings)
	}
}

func TestCompareFlagsPeakWordsGrowth(t *testing.T) {
	old, new := spaceBaseline(), spaceBaseline()
	new.Space = &SpaceStats{PeakRegs: 16, PeakWords: 80, MaxBits: 12} // +43% > 25% limit
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !findMetric(findings, "space.peak_words") {
		t.Errorf("peak word growth not flagged: %v", findings)
	}
}

func TestCompareFlagsBitsGrowth(t *testing.T) {
	old, new := spaceBaseline(), spaceBaseline()
	new.Space = &SpaceStats{PeakRegs: 16, PeakWords: 56, MaxBits: 14} // +2 > 1 bit limit
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !findMetric(findings, "space.max_bits") {
		t.Errorf("register widening not flagged: %v", findings)
	}

	// One extra bit is within the default absolute allowance.
	new.Space.MaxBits = 13
	findings, err = Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if findMetric(findings, "space.max_bits") {
		t.Errorf("+1 bit flagged despite MaxBitsGrowthAbs=1: %v", findings)
	}
}

func TestCompareUnboundedFlipAlwaysFlagged(t *testing.T) {
	old, new := spaceBaseline(), spaceBaseline()
	new.Space = &SpaceStats{PeakRegs: 16, PeakWords: 56, MaxBits: space.UnboundedBits}
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !findMetric(findings, "space.max_bits") {
		t.Errorf("bounded->unbounded width flip not flagged: %v", findings)
	}
}

// TestCompareLegacyArtifactsWithoutSpace locks the schema-evolution contract:
// artifacts predating the space field (nil Space) compare clean against
// themselves and against new artifacts that do carry it, in both directions.
func TestCompareLegacyArtifactsWithoutSpace(t *testing.T) {
	legacy, modern := baseline(), spaceBaseline()
	for _, c := range []struct {
		name     string
		old, new Report
	}{
		{"legacy-vs-legacy", legacy, legacy},
		{"legacy-vs-modern", legacy, modern},
		{"modern-vs-legacy", modern, legacy},
	} {
		findings, err := Compare(c.old, c.new, DefaultThresholds())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(findings) != 0 {
			t.Errorf("%s: produced findings: %v", c.name, findings)
		}
	}
}

// TestCompareMismatchedKnobs locks the pairing rule: explicit K/M are part of
// the workload identity, so reports differing in them are incomparable.
func TestCompareMismatchedKnobs(t *testing.T) {
	old, new := spaceBaseline(), spaceBaseline()
	new.M = 64
	if _, err := Compare(old, new, DefaultThresholds()); err == nil {
		t.Error("comparing M=default against M=64 did not error")
	}
	new = spaceBaseline()
	new.K = 4
	if _, err := Compare(old, new, DefaultThresholds()); err == nil {
		t.Error("comparing K=default against K=4 did not error")
	}
}

func TestKeyIncludesKnobs(t *testing.T) {
	r := spaceBaseline()
	if got, want := r.Key(), "bounded/n=4"; got != want {
		t.Errorf("default-knob key = %q, want %q (historical keys must not change)", got, want)
	}
	r.K, r.M = 3, 64
	if got, want := r.Key(), "bounded/n=4/K=3/M=64"; got != want {
		t.Errorf("knob key = %q, want %q", got, want)
	}
	r.Substrate = "native"
	if got, want := r.Key(), "bounded/n=4/K=3/M=64/native"; got != want {
		t.Errorf("knob+substrate key = %q, want %q", got, want)
	}
}

func TestSpaceFromUsage(t *testing.T) {
	u := space.Usage{
		Layers: map[string]LayerUsageAlias{
			"walk": {Words: 12, DeclaredBits: 12, MeasuredBits: 5, MaxAbs: 9},
			"core": {Words: 12, DeclaredBits: space.UnboundedBits, MeasuredBits: 3, MaxAbs: 2},
		},
		Regs: 16, LiveRegs: 16, PeakWords: 56, MaxBits: 12,
	}
	s := SpaceFromUsage(u)
	if s.PeakRegs != 16 || s.PeakWords != 56 || s.MaxBits != 12 {
		t.Errorf("totals = %+v, want 16/56/12", s)
	}
	if s.LayerBits["walk"] != 12 {
		t.Errorf("walk layer bits = %d, want declared 12", s.LayerBits["walk"])
	}
	if s.LayerBits["core"] != 3 {
		t.Errorf("core layer bits = %d, want measured 3 (declared unbounded)", s.LayerBits["core"])
	}
}

// LayerUsageAlias keeps the fixture literal readable.
type LayerUsageAlias = space.LayerUsage
