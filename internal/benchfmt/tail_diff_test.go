package benchfmt

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dsrepro/consensus/internal/obs/tail"
)

// latencyBaseline is baseline() extended with the tail-latency block: a
// measured latency summary, a straggler digest, and an environment stamp.
func latencyBaseline() Report {
	r := baseline()
	r.Latency = &tail.Summary{
		Count:  400,
		MeanNS: 1_200_000,
		MinNS:  200_000,
		P50NS:  900_000,
		P90NS:  2_500_000,
		P99NS:  6_000_000,
		P999NS: 9_000_000,
		MaxNS:  9_500_000,
	}
	r.Stragglers = []tail.Straggler{
		{Index: 17, Seed: -7489203, LatencyNS: 9_500_000, Steps: 44_000, Decision: 1},
		{Index: 3, Seed: 112233, LatencyNS: 8_100_000, Steps: 39_500, Decision: 0},
	}
	r.Env = &EnvStamp{GoVersion: "go1.22.1", GOMAXPROCS: 8, NumCPU: 8, OS: "linux", Arch: "amd64"}
	return r
}

func TestCompareLatencySelfIsClean(t *testing.T) {
	r := latencyBaseline()
	findings, err := Compare(r, r, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("latency self-compare produced findings: %v", findings)
	}
}

// TestCompareFlagsLatencyP99Regression is the acceptance criterion: a
// synthetic p99 blowup must trip the tail gate.
func TestCompareFlagsLatencyP99Regression(t *testing.T) {
	old, new := latencyBaseline(), latencyBaseline()
	lat := *old.Latency
	lat.P99NS = old.Latency.P99NS * 3 // +200% > default 100% limit
	lat.MaxNS = lat.P99NS
	new.Latency = &lat
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "latency.p99_ns" {
		t.Errorf("findings = %v, want one latency.p99_ns regression", findings)
	}
}

func TestCompareLatencyWithinThresholdIsClean(t *testing.T) {
	old, new := latencyBaseline(), latencyBaseline()
	lat := *old.Latency
	lat.P99NS = int64(float64(old.Latency.P99NS) * 1.8) // +80% < default 100% limit
	new.Latency = &lat
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("sub-threshold latency jitter flagged: %v", findings)
	}
}

// TestCompareLatencySkippedWhenAbsent mimics diffing a metered artifact
// against one generated before the latency field existed (or without
// -latency): the tail gate is skipped, never tripped by the missing block.
func TestCompareLatencySkippedWhenAbsent(t *testing.T) {
	old, new := baseline(), latencyBaseline()
	new.Latency.P99NS *= 100
	findings, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("latency-less baseline produced findings: %v", findings)
	}
	// Empty (Count 0) blocks are equally mute: nothing was measured.
	old = latencyBaseline()
	old.Latency = &tail.Summary{}
	if findings, err = Compare(old, new, DefaultThresholds()); err != nil {
		t.Fatal(err)
	} else if len(findings) != 0 {
		t.Errorf("empty latency block produced findings: %v", findings)
	}
}

func TestEnvStampDiff(t *testing.T) {
	a := &EnvStamp{GoVersion: "go1.22.1", GOMAXPROCS: 8, NumCPU: 8, OS: "linux", Arch: "amd64"}
	if d := a.Diff(a); len(d) != 0 {
		t.Errorf("identical stamps diff: %v", d)
	}
	b := &EnvStamp{GoVersion: "go1.23.0", GOMAXPROCS: 4, NumCPU: 8, OS: "linux", Arch: "amd64"}
	d := a.Diff(b)
	if len(d) != 2 {
		t.Fatalf("diff = %v, want [go_version, gomaxprocs]", d)
	}
	if !strings.Contains(d[0], "go1.22.1 -> go1.23.0") || !strings.Contains(d[1], "8 -> 4") {
		t.Errorf("diff messages = %v", d)
	}
	// Nil on either side (artifacts predating the stamp) is mute.
	if d := (*EnvStamp)(nil).Diff(b); d != nil {
		t.Errorf("nil stamp diff: %v", d)
	}
	if d := a.Diff(nil); d != nil {
		t.Errorf("diff against nil: %v", d)
	}
}

func TestEnvWarnings(t *testing.T) {
	mk := func(env *EnvStamp) Matrix {
		m := Matrix{Workloads: []Report{latencyBaseline(), latencyBaseline()}}
		m.Workloads[1].N = 8
		for i := range m.Workloads {
			m.Workloads[i].Env = env
		}
		return m
	}
	same := mk(&EnvStamp{GoVersion: "go1.22.1", GOMAXPROCS: 8, NumCPU: 8, OS: "linux", Arch: "amd64"})
	if w := EnvWarnings(same, same); len(w) != 0 {
		t.Errorf("matching environments warned: %v", w)
	}

	other := mk(&EnvStamp{GoVersion: "go1.22.1", GOMAXPROCS: 2, NumCPU: 2, OS: "linux", Arch: "amd64"})
	w := EnvWarnings(same, other)
	// Both workloads share the stamp, so the two field diffs dedupe to two
	// messages, not four.
	if len(w) != 2 {
		t.Fatalf("warnings = %v, want 2 deduped messages", w)
	}
	for _, msg := range w {
		if !strings.Contains(msg, "environment mismatch") {
			t.Errorf("warning %q missing prefix", msg)
		}
	}

	// Stamp-less artifacts are mute, not mismatched.
	if w := EnvWarnings(mk(nil), other); len(w) != 0 {
		t.Errorf("stamp-less baseline warned: %v", w)
	}
}

func TestCurrentEnvIsPopulated(t *testing.T) {
	e := CurrentEnv()
	if e.GoVersion == "" || e.GOMAXPROCS <= 0 || e.NumCPU <= 0 || e.OS == "" || e.Arch == "" {
		t.Errorf("CurrentEnv() = %+v, want all fields populated", e)
	}
}

// TestLatencyBlockRoundTrip pins the artifact schema: latency, stragglers and
// the env stamp survive the JSON round trip, and their absence decodes as nil.
func TestLatencyBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, Matrix{Workloads: []Report{latencyBaseline()}}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"latency"`, `"p99_ns"`, `"stragglers"`, `"env"`, `"go_version"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("artifact missing %s:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	if err := WriteMatrix(&buf, matrixBaseline()); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{`"latency"`, `"stragglers"`, `"env"`} {
		if bytes.Contains(buf.Bytes(), []byte(absent)) {
			t.Errorf("unmetered artifact leaked %s:\n%s", absent, buf.String())
		}
	}
}
