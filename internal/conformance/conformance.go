// Package conformance is the cross-substrate conformance suite: a
// table-driven battery of correctness checks that every execution substrate
// (see sched.Substrate) must pass with every protocol, run against each
// registered substrate by name.
//
// The suite is substrate-agnostic on purpose. A third substrate registered
// via sched.RegisterSubstrate inherits it with no new test code: the
// package's own test iterates sched.SubstrateNames(), and external packages
// can call Run directly against their substrate's name.
//
// Arms:
//
//   - validity: unanimous inputs must decide that input, on every protocol.
//   - agreement: mixed inputs over many seeds must decide a common binary
//     value everywhere, with the online invariant monitor attached and clean.
//   - budget: observed step totals must stay under core.StepBudget(kind, n)
//     plus the documented per-process overshoot, and a deliberately
//     undersized MaxSteps must surface sched.ErrStepBudget.
//   - audit: a large batch per protocol (sized by Options.AuditInstances)
//     with a per-instance monitor must produce zero probe firings. This is
//     the online correctness oracle for substrates whose interleavings are
//     not replayable.
//   - faults: the crash and lagger fault matrix, emulated with the
//     substrate-appropriate mechanism (adversary wrappers on the simulated
//     engine, step-gate emulation on the native one). Substrates the suite
//     does not know how to inject faults into skip this arm.
package conformance

import (
	"errors"
	"fmt"
	"testing"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/sched"
)

// Protocols is every protocol kind the suite covers — the four quadrants of
// the design matrix, the strong-coin baseline, and the anonymous-setting
// variant.
var Protocols = []core.Kind{
	core.KindBounded,
	core.KindAHUnbounded,
	core.KindExpLocal,
	core.KindStrongCoin,
	core.KindAbrahamson,
	core.KindAnonymous,
}

// polynomial reports whether the kind has a polynomial expected-step bound;
// the exponential baselines are exercised only at small n.
func polynomial(k core.Kind) bool {
	return k != core.KindExpLocal && k != core.KindAbrahamson
}

// Options tunes the suite's expensive arms.
type Options struct {
	// AuditInstances is the audit arm's batch size per protocol. 0 picks the
	// default: 5000 on substrates with native registers (the arm is their
	// correctness oracle), 300 on simulated ones (already covered by the
	// replay and PCT suites).
	AuditInstances int
	// AgreementSeeds is the agreement arm's seed count per protocol
	// (default 20).
	AgreementSeeds int
}

// Run executes the full conformance suite against the named registered
// substrate. It is the entry point a future substrate's own tests should
// call; the package test applies it to every sched.SubstrateNames() entry.
func Run(t *testing.T, name string, opts Options) {
	sub, err := sched.NewSubstrate(name)
	if err != nil {
		t.Fatalf("substrate %q: %v", name, err)
	}
	if opts.AuditInstances == 0 {
		if sub.NativeRegisters() {
			opts.AuditInstances = 5000
		} else {
			opts.AuditInstances = 300
		}
		if testing.Short() {
			opts.AuditInstances /= 10
		}
	}
	if opts.AgreementSeeds == 0 {
		opts.AgreementSeeds = 20
		if testing.Short() {
			opts.AgreementSeeds = 5
		}
	}
	t.Run("validity", func(t *testing.T) { runValidity(t, name) })
	t.Run("agreement", func(t *testing.T) { runAgreement(t, name, opts.AgreementSeeds) })
	t.Run("budget", func(t *testing.T) { runBudget(t, name) })
	t.Run("audit", func(t *testing.T) { runAudit(t, name, opts.AuditInstances) })
	t.Run("faults", func(t *testing.T) { runFaults(t, name) })
}

// execute runs one instance on a fresh substrate value. Substrates are
// stateless, but fault options differ per run, so each execution builds its
// own (newSub hides the per-substrate construction).
func execute(t *testing.T, sub sched.Substrate, kind core.Kind, inputs []int, seed int64, mon *audit.Monitor) core.Outcome {
	t.Helper()
	out, err := core.Execute(kind, core.Config{}, core.ExecConfig{
		Inputs:    inputs,
		Seed:      seed,
		MaxSteps:  core.StepBudget(kind, len(inputs)),
		Monitor:   mon,
		Substrate: sub,
	})
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return out
}

// sizesFor is each arm's n sweep: the polynomial protocols cover the bench
// matrix sizes, the exponential baselines stay small.
func sizesFor(kind core.Kind) []int {
	if polynomial(kind) {
		return []int{4, 8, 16}
	}
	return []int{2, 4}
}

// mixedInputs derives a deterministic non-unanimous binary input vector from
// a seed (bit i of the splitmix-mixed seed, patched to contain both values).
func mixedInputs(n int, seed int64) []int {
	bits := uint64(core.InstanceSeed(seed, 0))
	in := make([]int, n)
	for i := range in {
		in[i] = int(bits >> uint(i%64) & 1)
	}
	in[0], in[n-1] = 0, 1
	return in
}

func unanimous(n, v int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = v
	}
	return in
}

func runValidity(t *testing.T, name string) {
	for _, kind := range Protocols {
		for _, n := range sizesFor(kind) {
			for v := 0; v <= 1; v++ {
				sub, _ := sched.NewSubstrate(name)
				out := execute(t, sub, kind, unanimous(n, v), int64(100*n+v), nil)
				if out.Err != nil {
					t.Fatalf("%v n=%d: run error: %v", kind, n, out.Err)
				}
				if !out.AllDecided() {
					t.Fatalf("%v n=%d: not all decided", kind, n)
				}
				got, err := out.Agreement()
				if err != nil {
					t.Fatalf("%v n=%d: %v", kind, n, err)
				}
				if got != v {
					t.Fatalf("%v n=%d: unanimous input %d decided %d (validity violated)", kind, n, v, got)
				}
			}
		}
	}
}

func runAgreement(t *testing.T, name string, seeds int) {
	for _, kind := range Protocols {
		for _, n := range sizesFor(kind) {
			for seed := int64(0); seed < int64(seeds); seed++ {
				sub, _ := sched.NewSubstrate(name)
				mon := audit.New(audit.Options{SampleEvery: 8})
				out := execute(t, sub, kind, mixedInputs(n, seed), seed, mon)
				if out.Err != nil {
					t.Fatalf("%v n=%d seed=%d: run error: %v", kind, n, seed, out.Err)
				}
				if !out.AllDecided() {
					t.Fatalf("%v n=%d seed=%d: not all decided", kind, n, seed)
				}
				v, err := out.Agreement()
				if err != nil {
					t.Fatalf("%v n=%d seed=%d: %v", kind, n, seed, err)
				}
				if v != 0 && v != 1 {
					t.Fatalf("%v n=%d seed=%d: non-binary decision %d", kind, n, seed, v)
				}
				if vio := mon.Violations(); len(vio) != 0 {
					t.Fatalf("%v n=%d seed=%d: audit violations %v", kind, n, seed, vio)
				}
			}
		}
	}
}

func runBudget(t *testing.T, name string) {
	for _, kind := range Protocols {
		for _, n := range sizesFor(kind) {
			budget := core.StepBudget(kind, n)
			sub, _ := sched.NewSubstrate(name)
			out := execute(t, sub, kind, mixedInputs(n, int64(7*n)), int64(7*n), nil)
			if out.Err != nil {
				t.Fatalf("%v n=%d: run error under budget %d: %v", kind, n, budget, out.Err)
			}
			// Substrates may overshoot by up to one step per process before
			// the halt propagates.
			if out.Sched.Steps > budget+int64(n) {
				t.Fatalf("%v n=%d: %d steps exceeds budget %d+%d", kind, n, out.Sched.Steps, budget, n)
			}
		}
		// Enforcement: a budget far below any protocol's cost must trip.
		sub, _ := sched.NewSubstrate(name)
		out, err := core.Execute(kind, core.Config{}, core.ExecConfig{
			Inputs:    mixedInputs(4, 3),
			Seed:      3,
			MaxSteps:  16,
			Substrate: sub,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !errors.Is(out.Err, sched.ErrStepBudget) {
			t.Fatalf("%v: MaxSteps=16 returned %v, want ErrStepBudget", kind, out.Err)
		}
		if out.Sched.Steps > 16+4 {
			t.Fatalf("%v: tripped budget still took %d steps, want <= 20", kind, out.Sched.Steps)
		}
	}
}

func runAudit(t *testing.T, name string, instances int) {
	for _, kind := range Protocols {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const n = 4
			sub, _ := sched.NewSubstrate(name)
			insts := make([]core.Instance, instances)
			mons := make([]*audit.Monitor, instances)
			for k := range insts {
				seed := core.InstanceSeed(0xC0FFEE, k)
				mons[k] = audit.New(audit.Options{SampleEvery: 16})
				insts[k] = core.Instance{
					Kind:      kind,
					Inputs:    mixedInputs(n, seed),
					Seed:      seed,
					MaxSteps:  core.StepBudget(kind, n),
					Monitor:   mons[k],
					Substrate: sub,
				}
			}
			outs := core.RunBatch(0, nil, insts)
			for k, bo := range outs {
				if bo.Err != nil {
					t.Fatalf("instance %d: %v", k, bo.Err)
				}
				if bo.Out.Err != nil {
					t.Fatalf("instance %d: run error: %v", k, bo.Out.Err)
				}
				if _, err := bo.Out.Agreement(); err != nil {
					t.Fatalf("instance %d: %v", k, err)
				}
			}
			var total int64
			for k, mon := range mons {
				for probe, c := range mon.Violations() {
					t.Errorf("instance %d: probe %s fired %d times", k, probe, c)
					total += c
				}
			}
			if total > 0 {
				t.Fatalf("%d audit violations over %d instances", total, instances)
			}
		})
	}
}

// faultSubstrate builds a substrate with the given crash map and lagger
// emulation for the named backend, plus the matching adversary (simulated
// substrates inject faults through the schedule; native ones at the step
// gate). ok is false when the suite does not know how to inject faults into
// this substrate.
func faultSubstrate(name string, crashAt map[int]int64, victim, period int) (sched.Substrate, sched.Adversary, bool) {
	switch name {
	case "simulated":
		var adv sched.Adversary = sched.NewRoundRobin()
		if period > 0 {
			adv = sched.NewLagger(victim, period, 1)
		}
		if len(crashAt) > 0 {
			adv = sched.NewCrash(adv, crashAt)
		}
		return sched.Simulated(), adv, true
	case "native":
		opts := sched.NativeOptions{CrashAt: crashAt}
		if period > 0 {
			opts.LaggerVictim, opts.LaggerPeriod = victim, period
		}
		return sched.NewNative(opts), nil, true
	default:
		return nil, nil, false
	}
}

func runFaults(t *testing.T, name string) {
	if _, _, ok := faultSubstrate(name, nil, 0, 0); !ok {
		t.Skipf("no fault injection for substrate %q", name)
	}
	const n = 4
	for _, kind := range Protocols {
		// Crash: the victim stalls early, the survivors must still decide a
		// common valid value and the run must surface ErrStalled. The crash
		// step must precede the protocol's fastest possible decision: the
		// anonymous variant can decide in 5 register operations, so its
		// victim dies at step 3; every other protocol needs well over 10.
		crashStep := int64(10)
		if kind == core.KindAnonymous {
			crashStep = 3
		}
		for victim := 0; victim < n; victim++ {
			sub, adv, _ := faultSubstrate(name, map[int]int64{victim: crashStep}, 0, 0)
			out, err := core.Execute(kind, core.Config{}, core.ExecConfig{
				Inputs:    mixedInputs(n, int64(victim)),
				Seed:      int64(victim),
				Adversary: adv,
				MaxSteps:  core.StepBudget(kind, n),
				Substrate: sub,
			})
			if err != nil {
				t.Fatalf("%v crash victim=%d: %v", kind, victim, err)
			}
			if !errors.Is(out.Err, sched.ErrStalled) {
				t.Fatalf("%v crash victim=%d: err=%v, want ErrStalled", kind, victim, out.Err)
			}
			if out.Decided[victim] {
				t.Fatalf("%v crash victim=%d: crashed process decided", kind, victim)
			}
			for i := range out.Decided {
				if i != victim && !out.Decided[i] {
					t.Fatalf("%v crash victim=%d: survivor %d undecided (wait-freedom violated)", kind, victim, i)
				}
			}
			if _, err := out.Agreement(); err != nil {
				t.Fatalf("%v crash victim=%d: %v", kind, victim, err)
			}
		}
		// Lagger: starvation slows the victim but must never block decisions.
		for _, period := range []int{16, 256} {
			sub, adv, _ := faultSubstrate(name, nil, 1, period)
			mon := audit.New(audit.Options{SampleEvery: 8})
			out, err := core.Execute(kind, core.Config{}, core.ExecConfig{
				Inputs:    mixedInputs(n, int64(period)),
				Seed:      int64(period),
				Adversary: adv,
				MaxSteps:  core.StepBudget(kind, n),
				Monitor:   mon,
				Substrate: sub,
			})
			if err != nil {
				t.Fatalf("%v lagger period=%d: %v", kind, period, err)
			}
			if out.Err != nil || !out.AllDecided() {
				t.Fatalf("%v lagger period=%d: err=%v decided=%v", kind, period, out.Err, out.Decided)
			}
			if _, err := out.Agreement(); err != nil {
				t.Fatalf("%v lagger period=%d: %v", kind, period, err)
			}
			if vio := mon.Violations(); len(vio) != 0 {
				t.Fatalf("%v lagger period=%d: audit violations %v", kind, period, vio)
			}
		}
	}
}

// Name returns the canonical subtest name for a substrate, so every caller
// groups results identically.
func Name(substrate string) string { return fmt.Sprintf("substrate=%s", substrate) }
