package conformance

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestSubstrateConformance applies the full suite to every registered
// substrate. A third substrate registered via sched.RegisterSubstrate is
// picked up here automatically — it inherits the suite by existing.
func TestSubstrateConformance(t *testing.T) {
	names := sched.SubstrateNames()
	if len(names) < 2 {
		t.Fatalf("substrate registry lists %v, want at least simulated and native", names)
	}
	for _, name := range names {
		name := name
		t.Run(Name(name), func(t *testing.T) {
			Run(t, name, Options{})
		})
	}
}
