package core

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestAblationK1BreaksConsistency shows the paper's K=2 is load-bearing: with
// K=1 (decide as soon as every disagreer is one round behind), a disagreeing
// process one round back can catch up and decide the other value. Measured
// over 300 adversarial runs, K=1 violates consistency in a substantial
// fraction, while K=2 and K=3 never do.
func TestAblationK1BreaksConsistency(t *testing.T) {
	violationsAt := func(k int, trials int64) int {
		violations := 0
		for seed := int64(0); seed < trials; seed++ {
			out, err := Execute(KindBounded, Config{K: k, B: 2}, ExecConfig{
				Inputs: []int{0, 1, 0, 1}, Seed: seed,
				Adversary: sched.NewRandom(seed*3 + 1), MaxSteps: 50_000_000,
			})
			if err != nil {
				t.Fatalf("K=%d seed %d: %v", k, seed, err)
			}
			if out.Err != nil {
				continue
			}
			if _, err := out.Agreement(); err != nil {
				violations++
			}
		}
		return violations
	}

	if v := violationsAt(1, 300); v == 0 {
		t.Fatal("K=1 never violated consistency over 300 runs — the K=2 requirement would look unnecessary, contradicting the paper's analysis")
	}
	for _, k := range []int{2, 3} {
		if v := violationsAt(k, 100); v != 0 {
			t.Fatalf("K=%d violated consistency %d times — the protocol is broken", k, v)
		}
	}
}
