package core

import (
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
)

// Abrahamson is the remaining quadrant of the paper's related-work matrix:
// an [A88]-style protocol that is unbounded in memory (explicit round
// numbers) AND exponential in expected time (independent local coin flips,
// no shared coin). Together with AHUnbounded (unbounded, polynomial),
// ExpLocal (bounded, exponential) and Bounded (bounded, polynomial — the
// paper), the four protocols cover the full space/time design matrix the
// introduction narrates:
//
//	                 exponential time        polynomial time
//	unbounded space  Abrahamson [A88]        AHUnbounded [AH88]
//	bounded space    ExpLocal [ADS89-style]  Bounded (this paper)
type Abrahamson struct {
	cfg Config
	mem scan.Memory[UEntry]

	rounds   []pad.Int64
	flips    []pad.Int64
	maxRound atomic.Int64

	traceSink
}

// NewAbrahamson builds an instance. B and M are ignored (no shared coin).
func NewAbrahamson(cfg Config) (*Abrahamson, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factory := register.DirectFactory
	if cfg.UseBloomArrows {
		factory = register.BloomFactory
	}
	mem, err := scan.New[UEntry](cfg.MemKind, cfg.N, factory)
	if err != nil {
		return nil, err
	}
	return &Abrahamson{
		cfg:    cfg,
		mem:    mem,
		rounds: make([]pad.Int64, cfg.N),
		flips:  make([]pad.Int64, cfg.N),
	}, nil
}

// Name implements Protocol.
func (a *Abrahamson) Name() string { return "abrahamson" }

// SetSink installs the observability sink on the protocol and the memory
// stack beneath it.
func (a *Abrahamson) SetSink(s *obs.Sink) {
	a.setSink(s)
	if ss, ok := a.mem.(interface{ SetSink(*obs.Sink) }); ok {
		ss.SetSink(s)
	}
}

// SetMonitor installs the invariant monitor on the protocol and the memory
// stack beneath it, and provides the flight-recorder state snapshot.
func (a *Abrahamson) SetMonitor(m *audit.Monitor) {
	a.setMonitor(m)
	if sm, ok := a.mem.(interface{ SetMonitor(*audit.Monitor) }); ok {
		sm.SetMonitor(m)
	}
	m.SetStateFn(a.captureState)
}

// SetProfiler installs the step profiler on the protocol and the memory
// stack beneath it (nil detaches; see Bounded.SetProfiler).
func (a *Abrahamson) SetProfiler(f *prof.Profiler) {
	a.setProfiler(f)
	if sp, ok := a.mem.(interface{ SetProfiler(*prof.Profiler) }); ok {
		sp.SetProfiler(f)
	}
}

// SetNative switches the memory stack's register storage to the substrate's
// mode (see Bounded.SetNative).
func (a *Abrahamson) SetNative(on bool) {
	if sn, ok := a.mem.(interface{ SetNative(bool) }); ok {
		sn.SetNative(on)
	}
}

// SetScanEpoch toggles the scan layer's dirty-bit epoch retry path (see
// Bounded.SetScanEpoch).
func (a *Abrahamson) SetScanEpoch(on bool) {
	if se, ok := a.mem.(interface{ SetEpoch(bool) }); ok {
		se.SetEpoch(on)
	}
}

// SetSpace installs the space meter (nil detaches). Entries carry only a
// preference and an explicit round number, so the static layout is tiny —
// the unbounded part is the round magnitude, measured online in inc.
func (a *Abrahamson) SetSpace(m *space.Meter) {
	a.setSpace(m)
	if sp, ok := a.mem.(register.SpaceSetter); ok {
		sp.SetSpace(m, space.LayerRegister)
	}
	if m == nil {
		return
	}
	n := int64(a.cfg.N)
	m.AddWords(space.LayerCore, n*2) // pref + round
	m.DeclareDomain(space.LayerCore, 3)
	m.DeclareUnbounded(space.LayerCore) // explicit round numbers
}

// captureState snapshots the published state for flight dumps (no coin
// strips: this protocol's entries carry only preference and round).
func (a *Abrahamson) captureState() audit.State {
	pk, ok := a.mem.(interface{ PeekSlot(int) UEntry })
	if !ok {
		return audit.State{}
	}
	n := a.cfg.N
	st := audit.State{Prefs: make([]int, n), Rounds: make([]int64, n)}
	for i := 0; i < n; i++ {
		e := pk.PeekSlot(i)
		st.Prefs[i] = int(e.Pref)
		st.Rounds[i] = e.Round
	}
	return st
}

// Reset restores the instance to its initial state for pooling (core.Arena),
// reporting whether the memory stack supported it. Call only between runs.
func (a *Abrahamson) Reset() bool {
	r, ok := a.mem.(interface{ Reset() bool })
	if !ok || !r.Reset() {
		return false
	}
	for i := range a.rounds {
		a.rounds[i].Store(0)
		a.flips[i].Store(0)
	}
	a.maxRound.Store(0)
	a.traceSink = traceSink{}
	return true
}

// Metrics implements Protocol.
func (a *Abrahamson) Metrics() Metrics {
	m := Metrics{
		Rounds:    make([]int64, a.cfg.N),
		CoinFlips: make([]int64, a.cfg.N),
		MaxRound:  a.maxRound.Load(),
	}
	for i := 0; i < a.cfg.N; i++ {
		m.Rounds[i] = a.rounds[i].Load()
		m.CoinFlips[i] = a.flips[i].Load()
	}
	return m
}

func (a *Abrahamson) inc(p *sched.Proc, st UEntry) UEntry {
	st.Round++ // value field (this protocol's entries never grow a strip)
	a.spc.NoteValue(space.LayerCore, st.Round)
	a.rounds[p.ID()].Add(1)
	atomicMax(&a.maxRound, st.Round)
	a.sink.GaugeMax(obs.GaugeMaxRound, st.Round)
	a.emit(Event{Step: p.Now(), Pid: p.ID(), Kind: EvRoundAdvance, Round: st.Round})
	return st
}

// Run implements Protocol for one process: the unbounded-round decide/adopt
// structure with an independent local coin on conflict.
func (a *Abrahamson) Run(p *sched.Proc, input int) int {
	i := p.ID()
	st := UEntry{Pref: int8(input)}
	span := obs.StartPhaseSpan(p.Steps())
	if a.prof.Enabled() {
		span.Observe(a.prof)
	}
	span.To(a.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
	st = a.inc(p, st)
	a.mem.Write(p, st)
	a.emit(Event{Step: p.Now(), Pid: i, Kind: EvStart, Round: st.Round, Detail: "pref=" + prefString(st.Pref)})
	span.To(a.sink, obs.PhasePrefer, i, p.Now(), p.Steps())

	for {
		view := a.mem.Scan(p)
		normalizeUView(view)
		view[i] = st

		rmax, agree, v := uLeaders(view)

		if st.Pref != Bottom && st.Round == rmax {
			ok := true
			for j, ent := range view {
				if j == i || ent.Pref == st.Pref {
					continue
				}
				if ent.Round > st.Round-int64(a.cfg.K) {
					ok = false
					break
				}
			}
			if ok {
				span.To(a.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
				a.sink.Observe(obs.HistStepsToDecide, p.Steps())
				a.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: st.Round, Detail: prefString(st.Pref)})
				span.Finish(a.sink, i, p.Now(), p.Steps())
				return int(st.Pref)
			}
		}

		if agree {
			span.To(a.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st = a.inc(p, st)
			st.Pref = v
			a.mem.Write(p, st)
			span.To(a.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
			continue
		}

		// Conflict: withdraw first (the paper's ⊥ pause — see ExpLocal for
		// why it is load-bearing), then flip and advance.
		if st.Pref != Bottom {
			st.Pref = Bottom // value field: no clone needed
			a.mem.Write(p, st)
			continue
		}
		span.To(a.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
		st = a.inc(p, st)
		span.To(a.sink, obs.PhaseCoin, i, p.Now(), p.Steps())
		st.Pref = int8(p.Rand().Intn(2))
		a.flips[i].Add(1)
		a.mem.Write(p, st)
		a.emit(Event{Step: p.Now(), Pid: i, Kind: EvCoinFlip, Round: st.Round, Detail: "local=" + prefString(st.Pref)})
		span.To(a.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
	}
}
