package core

import (
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

// Anonymous is a consensus protocol in Gelashvili's anonymous setting ("On
// the Optimal Space Complexity of Consensus for Anonymous Processes"):
// processes have no identifiers, every process runs the same code, and no
// register payload or register index may depend on a pid. The paper's own
// layout — one SWMR entry per process, indexed by pid — is therefore
// unavailable; everything lives in multi-writer registers.
//
// The protocol is a round-based conciliator/commit–adopt loop:
//
//   - Conciliator (probabilistic): each round has one MRMW register S. A
//     process reads S and adopts a non-⊥ value; otherwise it writes its own
//     preference with probability 1/2 (and on tails looks again). With
//     constant probability the surviving preferences agree.
//   - Commit–adopt (Gafni-style, binary): registers A0, A1, D. With value v:
//     set A[v]; if A[1−v] is set, adopt D (or keep v if D=⊥) and continue;
//     else write D:=v and re-read A[1−v] — still clear means commit (decide
//     v), set means adopt v. If any process commits v in a round, every
//     process leaving that round holds v: A-bits are never cleared, so a
//     later 1−v arrival must see A[v] set and adopt D, and no D:=1−v write
//     can be ordered after the committer's A[v] write without contradicting
//     its final clear read of A[1−v].
//
// Space shape (the point of including it in the frontier tables): each
// register is 2 bits wide — the payload domain is {⊥,0,1} — but the register
// COUNT grows with rounds (4 per round, created lazily), where the paper's
// protocol holds n fixed registers of bounded width. The meters show exactly
// this trade: tiny max-bits, unbounded peak-regs.
type Anonymous struct {
	cfg Config

	mu     sync.RWMutex
	rnds   []anonRound
	native bool

	// Per-pid counters and the last adopted preference, for metrics and
	// flight dumps only — the protocol itself never consults them (anonymity
	// is a property of the shared registers, not of the harness).
	rounds   []pad.Int64
	flips    []pad.Int64
	prefs    []pad.Int64
	maxRound atomic.Int64

	traceSink
}

// anonRound is one round's register quartet: the conciliator register S and
// the commit–adopt registers A0, A1, D.
type anonRound struct {
	s, a0, a1, d *register.DirectMRMW[int8]
}

func (rd anonRound) each(f func(*register.DirectMRMW[int8])) {
	f(rd.s)
	f(rd.a0)
	f(rd.a1)
	f(rd.d)
}

// NewAnonymous builds an anonymous-setting instance. K, B and M are ignored
// (no strip, no shared coin).
func NewAnonymous(cfg Config) (*Anonymous, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Anonymous{
		cfg:    cfg,
		rounds: make([]pad.Int64, cfg.N),
		flips:  make([]pad.Int64, cfg.N),
		prefs:  make([]pad.Int64, cfg.N),
	}
	for i := range a.prefs {
		a.prefs[i].Store(int64(Bottom))
	}
	return a, nil
}

// Name implements Protocol.
func (a *Anonymous) Name() string { return "anonymous" }

// round returns round r's register quartet, creating it (and any missing
// earlier rounds) on first touch. Creation installs the current sink, space
// meter and storage mode, and meters the growth online: four registers and
// four payload words per round — the register count is where this protocol
// pays for anonymity.
func (a *Anonymous) round(r int64) anonRound {
	idx := int(r) - 1
	a.mu.RLock()
	if idx < len(a.rnds) {
		rd := a.rnds[idx]
		a.mu.RUnlock()
		return rd
	}
	a.mu.RUnlock()
	a.mu.Lock()
	for idx >= len(a.rnds) {
		rd := anonRound{
			s:  register.NewDirectMRMW(Bottom, a.native),
			a0: register.NewDirectMRMW(int8(0), a.native),
			a1: register.NewDirectMRMW(int8(0), a.native),
			d:  register.NewDirectMRMW(Bottom, a.native),
		}
		rd.each(func(reg *register.DirectMRMW[int8]) {
			reg.SetSink(a.sink)
			reg.SetSpace(a.spc, space.LayerRegister)
		})
		a.spc.AddWords(space.LayerCore, 4)
		a.rnds = append(a.rnds, rd)
	}
	rd := a.rnds[idx]
	a.mu.Unlock()
	return rd
}

// SetSink installs the observability sink on the protocol and every register
// created so far (later rounds pick it up at creation).
func (a *Anonymous) SetSink(s *obs.Sink) {
	a.setSink(s)
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, rd := range a.rnds {
		rd.each(func(reg *register.DirectMRMW[int8]) { reg.SetSink(s) })
	}
}

// SetMonitor installs the invariant monitor and the flight-recorder state
// snapshot. There is no memory stack beneath to propagate to.
func (a *Anonymous) SetMonitor(m *audit.Monitor) {
	a.setMonitor(m)
	m.SetStateFn(a.captureState)
}

// SetProfiler installs the step profiler on the protocol level (nil
// detaches). There is no scan layer, so only the phase spans report.
func (a *Anonymous) SetProfiler(f *prof.Profiler) { a.setProfiler(f) }

// SetNative switches register storage to the substrate's mode; rounds
// created later inherit it.
func (a *Anonymous) SetNative(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.native = on
	for _, rd := range a.rnds {
		rd.each(func(reg *register.DirectMRMW[int8]) { reg.SetNative(on) })
	}
}

// SetSpace installs the space meter (nil detaches). Almost everything is
// metered online in round(): the static part is only the payload domain —
// every register holds a value in {⊥,0,1}, two bits.
func (a *Anonymous) SetSpace(m *space.Meter) {
	a.setSpace(m)
	a.mu.Lock()
	for _, rd := range a.rnds {
		rd.each(func(reg *register.DirectMRMW[int8]) { reg.SetSpace(m, space.LayerRegister) })
	}
	if m != nil {
		m.AddWords(space.LayerCore, int64(len(a.rnds))*4)
	}
	a.mu.Unlock()
	if m == nil {
		return
	}
	m.DeclareDomain(space.LayerCore, 3) // every payload is in {⊥,0,1}
}

// captureState snapshots per-pid adopted preferences and round counts for
// flight dumps (harness-side mirrors; the registers themselves are
// anonymous).
func (a *Anonymous) captureState() audit.State {
	n := a.cfg.N
	st := audit.State{Prefs: make([]int, n), Rounds: make([]int64, n)}
	for i := 0; i < n; i++ {
		st.Prefs[i] = int(a.prefs[i].Load())
		st.Rounds[i] = a.rounds[i].Load()
	}
	return st
}

// Reset restores the instance to its initial state for pooling, dropping all
// lazily-created rounds (they are re-created, and re-metered, on the next
// run). Call only between runs.
func (a *Anonymous) Reset() bool {
	a.mu.Lock()
	a.rnds = a.rnds[:0]
	a.mu.Unlock()
	for i := range a.rounds {
		a.rounds[i].Store(0)
		a.flips[i].Store(0)
		a.prefs[i].Store(int64(Bottom))
	}
	a.maxRound.Store(0)
	a.traceSink = traceSink{}
	return true
}

// Metrics implements Protocol.
func (a *Anonymous) Metrics() Metrics {
	m := Metrics{
		Rounds:    make([]int64, a.cfg.N),
		CoinFlips: make([]int64, a.cfg.N),
		MaxRound:  a.maxRound.Load(),
	}
	for i := 0; i < a.cfg.N; i++ {
		m.Rounds[i] = a.rounds[i].Load()
		m.CoinFlips[i] = a.flips[i].Load()
	}
	return m
}

// Run implements Protocol for one process: conciliate, then commit–adopt,
// decide on commit.
func (a *Anonymous) Run(p *sched.Proc, input int) int {
	i := p.ID()
	v := int8(input)
	a.prefs[i].Store(int64(v))
	span := obs.StartPhaseSpan(p.Steps())
	if a.prof.Enabled() {
		span.Observe(a.prof)
	}
	a.emit(Event{Step: p.Now(), Pid: i, Kind: EvStart, Detail: "pref=" + prefString(v)})

	for r := int64(1); ; r++ {
		rd := a.round(r)
		a.rounds[i].Add(1)
		atomicMax(&a.maxRound, r)
		a.sink.GaugeMax(obs.GaugeMaxRound, r)
		a.emit(Event{Step: p.Now(), Pid: i, Kind: EvRoundAdvance, Round: r})

		// Conciliator: adopt a published value, or publish with prob 1/2.
		span.To(a.sink, obs.PhaseCoin, i, p.Now(), p.Steps())
		if s := rd.s.Read(p); s != Bottom {
			v = s
		} else if p.Rand().Intn(2) == 0 {
			rd.s.Write(p, v)
			a.flips[i].Add(1)
			a.emit(Event{Step: p.Now(), Pid: i, Kind: EvCoinFlip, Round: r, Detail: "anon=" + prefString(v)})
		} else {
			a.flips[i].Add(1)
			a.emit(Event{Step: p.Now(), Pid: i, Kind: EvCoinFlip, Round: r, Detail: "anon=skip"})
			if s := rd.s.Read(p); s != Bottom {
				v = s
			}
		}
		a.spc.NoteValue(space.LayerCore, int64(v))
		a.prefs[i].Store(int64(v))

		// Commit–adopt.
		span.To(a.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
		my, other := rd.a0, rd.a1
		if v == 1 {
			my, other = rd.a1, rd.a0
		}
		my.Write(p, 1)
		if other.Read(p) != 0 {
			// Conflict seen before proposing: adopt the proposal register.
			if d := rd.d.Read(p); d != Bottom {
				v = d
				a.emit(Event{Step: p.Now(), Pid: i, Kind: EvPrefChange, Round: r, Detail: "adopt=" + prefString(v)})
			}
			a.prefs[i].Store(int64(v))
			continue
		}
		rd.d.Write(p, v)
		a.spc.NoteValue(space.LayerCore, int64(v))
		if other.Read(p) == 0 {
			span.To(a.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
			a.sink.Observe(obs.HistStepsToDecide, p.Steps())
			a.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: r, Detail: prefString(v)})
			span.Finish(a.sink, i, p.Now(), p.Steps())
			return int(v)
		}
	}
}
