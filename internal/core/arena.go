package core

// Resettable is the between-run reset capability of a protocol instance: it
// restores the zero-run state (memory stack, metrics, trace hooks) and reports
// whether every layer beneath it supported the operation. A false return means
// the instance must be rebuilt from scratch.
type Resettable interface {
	Reset() bool
}

// Arena is a worker-owned cache of protocol instances for batch execution:
// one slot per protocol kind, reused via Reset when the next instance asks for
// the same configuration. Building a protocol allocates the full register
// fabric (O(n²) arrow registers for the Arrow memory), so a worker running
// many same-shaped instances pays that cost once.
//
// An Arena is NOT safe for concurrent use — each batch worker owns its own.
// Reset clears protocol-level trace hooks but leaves previously installed
// sinks on the register fabric; callers must install the current sink each run
// (ExecuteProto does) or use one uniform sink per arena, as RunBatch does.
type Arena struct {
	slots map[Kind]*arenaSlot
}

type arenaSlot struct {
	cfg   Config // the caller's config, pre-defaulting, used as the reuse key
	proto Protocol
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{slots: make(map[Kind]*arenaSlot)}
}

// Protocol returns an instance of the given kind ready to run once: the
// cached one, reset, when the configuration matches exactly and the instance
// supports resetting; a freshly built one (replacing the slot) otherwise.
// cfg.N must be set by the caller.
func (a *Arena) Protocol(kind Kind, cfg Config) (Protocol, error) {
	if s, ok := a.slots[kind]; ok && s.cfg == cfg {
		if r, ok := s.proto.(Resettable); ok && r.Reset() {
			return s.proto, nil
		}
	}
	proto, err := New(kind, cfg)
	if err != nil {
		return nil, err
	}
	a.slots[kind] = &arenaSlot{cfg: cfg, proto: proto}
	return proto, nil
}
