package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/sched"
)

// InstanceSeed derives the seed of instance k from a batch seed via a
// splitmix64 mix. The derivation depends only on (batchSeed, k) — never on
// worker count or completion order — so instance k of a batch replays
// identically at any parallelism.
func InstanceSeed(batchSeed int64, k int) int64 {
	z := uint64(batchSeed) + (uint64(k)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Instance is one consensus execution of a batch: everything Execute needs,
// pre-derived so running it is order-independent.
type Instance struct {
	Kind      Kind
	Cfg       Config // N is overwritten from len(Inputs)
	Inputs    []int
	Seed      int64
	Adversary sched.Adversary
	MaxSteps  int64
	// Monitor, if non-nil, audits this instance (see ExecConfig.Monitor).
	// Each instance needs its own monitor — flight rings and violation
	// counters are per-instance state.
	Monitor *audit.Monitor
	// Profiler, if non-nil, profiles this instance (see ExecConfig.Profiler).
	// Like monitors, profilers are per-instance state: aggregate across a
	// batch by merging their Snapshots in instance order.
	Profiler *prof.Profiler
	// Space, if non-nil, meters this instance's space (see ExecConfig.Space).
	// Meters are per-instance state; aggregate across a batch with
	// space.Merge, which is a commutative element-wise max — deterministic at
	// any parallelism.
	Space *space.Meter
	// Substrate selects the execution backend (see ExecConfig.Substrate);
	// nil runs the simulated step scheduler. Substrates are stateless across
	// runs, so one value may be shared by every instance of a batch.
	Substrate sched.Substrate
	// Commuting selects commuting-step dispatch (see ExecConfig.Commuting).
	// Rejected when Substrate is native.
	Commuting bool
	// Latency, when set, records this instance's wall-clock solve latency
	// into the sink's lat.solve histogram. The elapsed time is always
	// measured (BatchOutcome.ElapsedNS); the flag only controls whether it
	// enters the metrics registry, so determinism suites that DeepEqual
	// merged histograms across parallelism keep passing with the flag off.
	Latency bool
}

// BatchOutcome pairs one instance's outcome with its setup error. Out is
// meaningful only when Err is nil (Out.Err separately carries the run-level
// budget/stall error, as with Execute).
type BatchOutcome struct {
	Out Outcome
	Err error
	// ElapsedNS is the instance's wall-clock solve latency in nanoseconds
	// (validation through ExecuteProto return), measured on the monotonic
	// clock. Populated for every instance, including failed ones. Not
	// deterministic: re-running measures a different value.
	ElapsedNS int64
}

// RunBatch executes the instances over a pool of parallel workers, each
// owning an Arena so consecutive same-shaped instances reuse one protocol's
// register fabric. parallel <= 0 means GOMAXPROCS; parallel == 1 runs inline
// on the calling goroutine. Results are indexed by instance, so the output is
// identical at any parallelism provided each Instance is self-contained
// (seeded adversary, own inputs).
//
// sink, if non-nil, is installed on every instance; it must be metrics-only
// (atomic registry — no recorder or tracer), since workers emit concurrently.
func RunBatch(parallel int, sink *obs.Sink, instances []Instance) []BatchOutcome {
	return RunBatchProgress(parallel, sink, nil, instances)
}

// RunBatchProgress is RunBatch with a live progress probe: prog (nil allowed)
// is re-armed for the batch and its instance counters updated around every
// execution, so a telemetry server can report completion while the batch runs.
// The probe is reporting-only and does not affect scheduling or results.
func RunBatchProgress(parallel int, sink *obs.Sink, prog *obs.BatchProgress, instances []Instance) []BatchOutcome {
	m := len(instances)
	out := make([]BatchOutcome, m)
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > m {
		parallel = m
	}
	prog.Begin(m)

	run1 := func(arena *Arena, k int) {
		prog.InstanceStarted()
		defer prog.InstanceDone()
		inst := instances[k]
		start := time.Now() // monotonic; elapsed survives wall-clock jumps
		defer func() {
			elapsed := time.Since(start).Nanoseconds()
			out[k].ElapsedNS = elapsed
			// Metering is observation-only: the elapsed value is read after
			// the instance finished, so it cannot feed back into execution.
			if inst.Latency && sink != nil {
				if h := sink.Registry().Hist(obs.HistLatSolve); h != nil {
					h.Observe(elapsed)
				}
			}
		}()
		if err := validateInputs(inst.Inputs); err != nil {
			out[k] = BatchOutcome{Err: err}
			return
		}
		cfg := inst.Cfg
		cfg.N = len(inst.Inputs)
		proto, err := arena.Protocol(inst.Kind, cfg)
		if err != nil {
			out[k] = BatchOutcome{Err: err}
			return
		}
		o, err := ExecuteProto(proto, ExecConfig{
			Inputs:    inst.Inputs,
			Seed:      inst.Seed,
			Adversary: inst.Adversary,
			MaxSteps:  inst.MaxSteps,
			Sink:      sink,
			Monitor:   inst.Monitor,
			Profiler:  inst.Profiler,
			Space:     inst.Space,
			Substrate: inst.Substrate,
			Commuting: inst.Commuting,
		})
		out[k] = BatchOutcome{Out: o, Err: err}
	}

	if parallel <= 1 {
		arena := NewArena()
		for k := range instances {
			run1(arena, k)
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := NewArena()
			for {
				k := int(next.Add(1)) - 1
				if k >= m {
					return
				}
				run1(arena, k)
			}
		}()
	}
	wg.Wait()
	return out
}
