package core

import (
	"reflect"
	"testing"

	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
)

// batchInstances builds m self-contained instances of one kind: derived
// seeds, per-instance seeded random adversaries. Instances carry mutable
// adversary state, so every RunBatch call needs a freshly built slice.
func batchInstances(kind Kind, cfg Config, m int, seed int64) []Instance {
	inputs := []int{0, 1, 1, 0}
	insts := make([]Instance, m)
	for k := range insts {
		s := InstanceSeed(seed, k)
		insts[k] = Instance{
			Kind:      kind,
			Cfg:       cfg,
			Inputs:    inputs,
			Seed:      s,
			Adversary: sched.NewRandom(s),
			MaxSteps:  5_000_000,
		}
	}
	return insts
}

// assertBatchEqual compares two batch results instance by instance.
func assertBatchEqual(t *testing.T, label string, a, b []BatchOutcome) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length mismatch %d vs %d", label, len(a), len(b))
	}
	for k := range a {
		if (a[k].Err == nil) != (b[k].Err == nil) {
			t.Fatalf("%s: instance %d error mismatch: %v vs %v", label, k, a[k].Err, b[k].Err)
		}
		ao, bo := a[k].Out, b[k].Out
		if !reflect.DeepEqual(ao.Decided, bo.Decided) || !reflect.DeepEqual(ao.Values, bo.Values) {
			t.Errorf("%s: instance %d decisions diverge: %v/%v vs %v/%v",
				label, k, ao.Decided, ao.Values, bo.Decided, bo.Values)
		}
		if ao.Sched.Steps != bo.Sched.Steps {
			t.Errorf("%s: instance %d steps diverge: %d vs %d", label, k, ao.Sched.Steps, bo.Sched.Steps)
		}
		if !reflect.DeepEqual(ao.Metrics, bo.Metrics) {
			t.Errorf("%s: instance %d metrics diverge: %+v vs %+v", label, k, ao.Metrics, bo.Metrics)
		}
	}
}

// TestRunBatchMatchesExecute proves reset-replay fidelity: a pooled protocol
// (serial batch, one arena reused across instances) produces byte-identical
// outcomes to a fresh Execute per instance, for every protocol kind.
func TestRunBatchMatchesExecute(t *testing.T) {
	kinds := []Kind{KindBounded, KindAHUnbounded, KindExpLocal, KindStrongCoin, KindAbrahamson}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			const m = 4
			pooled := RunBatch(1, nil, batchInstances(kind, Config{}, m, 7))
			fresh := make([]BatchOutcome, m)
			for k, inst := range batchInstances(kind, Config{}, m, 7) {
				out, err := Execute(inst.Kind, inst.Cfg, ExecConfig{
					Inputs:    inst.Inputs,
					Seed:      inst.Seed,
					Adversary: inst.Adversary,
					MaxSteps:  inst.MaxSteps,
				})
				fresh[k] = BatchOutcome{Out: out, Err: err}
			}
			assertBatchEqual(t, kind.String(), pooled, fresh)
		})
	}
}

// TestRunBatchMemKinds runs the pooled-vs-fresh comparison across snapshot
// implementations, so every memory Reset path is exercised.
func TestRunBatchMemKinds(t *testing.T) {
	for _, mk := range []scan.Kind{scan.KindArrow, scan.KindSeqSnap, scan.KindWaitFree} {
		mk := mk
		t.Run(mk.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{MemKind: mk}
			const m = 3
			pooled := RunBatch(1, nil, batchInstances(KindBounded, cfg, m, 11))
			fresh := make([]BatchOutcome, m)
			for k, inst := range batchInstances(KindBounded, cfg, m, 11) {
				out, err := Execute(inst.Kind, inst.Cfg, ExecConfig{
					Inputs:    inst.Inputs,
					Seed:      inst.Seed,
					Adversary: inst.Adversary,
					MaxSteps:  inst.MaxSteps,
				})
				fresh[k] = BatchOutcome{Out: out, Err: err}
			}
			assertBatchEqual(t, mk.String(), pooled, fresh)
		})
	}
}

// TestRunBatchParallelDeterminism: the batch result is identical at any
// worker count.
func TestRunBatchParallelDeterminism(t *testing.T) {
	const m = 8
	base := RunBatch(1, nil, batchInstances(KindBounded, Config{}, m, 3))
	for _, par := range []int{2, 4, 8} {
		got := RunBatch(par, nil, batchInstances(KindBounded, Config{}, m, 3))
		assertBatchEqual(t, kindLabel(par), base, got)
	}
}

func kindLabel(par int) string { return "parallel=" + string(rune('0'+par)) }

// TestInstanceSeedStable pins the seed derivation: changing it would silently
// invalidate every recorded batch, so the constants are golden.
func TestInstanceSeedStable(t *testing.T) {
	golden := map[[2]int64]int64{
		{0, 0}:  -2152535657050944081,
		{0, 1}:  7960286522194355700,
		{0, 2}:  487617019471545679,
		{42, 0}: -4767286540954276203,
		{42, 1}: 2949826092126892291,
	}
	for in, want := range golden {
		if got := InstanceSeed(in[0], int(in[1])); got != want {
			t.Errorf("InstanceSeed(%d, %d) = %d, want %d", in[0], in[1], got, want)
		}
	}
	seen := map[int64]bool{}
	for k := 0; k < 1000; k++ {
		s := InstanceSeed(99, k)
		if seen[s] {
			t.Fatalf("InstanceSeed collision at k=%d", k)
		}
		seen[s] = true
	}
}

// TestArenaReuse checks the cache policy: same (kind, cfg) reuses the
// instance, a different cfg rebuilds it.
func TestArenaReuse(t *testing.T) {
	arena := NewArena()
	cfg := Config{N: 3}
	p1, err := arena.Protocol(KindBounded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := arena.Protocol(KindBounded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same configuration should reuse the pooled instance")
	}
	p3, err := arena.Protocol(KindBounded, Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if interface{}(p3) == interface{}(p1) {
		t.Error("changed configuration must rebuild the instance")
	}
	p4, err := arena.Protocol(KindExpLocal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if interface{}(p4) == interface{}(p3) {
		t.Error("kinds must not share slots")
	}
}

// TestArenaAcquireAllocFree pins the steady-state pooling contract: acquiring
// a warm same-shaped instance (map hit + full Reset of the register fabric)
// performs zero heap allocations.
func TestArenaAcquireAllocFree(t *testing.T) {
	arena := NewArena()
	cfg := Config{N: 4}
	if _, err := arena.Protocol(KindBounded, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := arena.Protocol(KindBounded, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm arena acquire allocated %.1f times per run, want 0", allocs)
	}
}
