package core

import (
	"fmt"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/strip"
	"github.com/dsrepro/consensus/internal/walk"
)

// Config parameterizes a protocol instance.
type Config struct {
	// N is the number of processes.
	N int
	// K is the rounds-strip constant; the paper fixes K = 2 (the default
	// when zero).
	K int
	// B is the shared-coin barrier multiplier (paper's b; default 4).
	B int
	// M bounds each coin counter to {-(M+1)..M+1}; 0 picks the Lemma 3.3
	// default (comfortably above the barrier); negative means unbounded
	// counters (only meaningful for the unbounded baseline).
	M int
	// MemKind selects the scannable-memory implementation (default Arrow).
	MemKind scan.Kind
	// UseBloomArrows builds the Arrow memory's 2W2R registers from Bloom's
	// SWMR construction instead of the direct atomic model.
	UseBloomArrows bool
	// FastDecide enables the footnote-5 style speedup in the bounded
	// protocol: deciders publish a decided marker, and any process seeing
	// one immediately decides the same value (safe because a decision is
	// final — Lemma 6.6 makes every future decision equal to it).
	FastDecide bool
}

// withDefaults fills in zero fields.
func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 2
	}
	if c.B == 0 {
		c.B = 4
	}
	if c.MemKind == 0 {
		c.MemKind = scan.KindArrow
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: N must be >= 1, got %d", c.N)
	}
	if c.K < 0 || c.B < 0 || c.M < 0 {
		return fmt.Errorf("core: negative parameter in %+v", c)
	}
	return nil
}

// Metrics aggregates per-run accounting common to all protocols.
type Metrics struct {
	// Rounds[i] is the number of inc operations (local round advances)
	// process i performed.
	Rounds []int64
	// CoinFlips[i] is the number of walk steps process i performed.
	CoinFlips []int64
	// MaxAbsCoin is the largest |coin counter| ever written.
	MaxAbsCoin int64
	// MaxRound is the largest explicit round number ever written (unbounded
	// protocols only; 0 for the bounded protocol, which has none).
	MaxRound int64
	// StripLen is the largest per-process coin-strip length ever written
	// (unbounded protocols only).
	StripLen int64
}

// Bounded is the paper's §5 consensus protocol with bounded memory and
// polynomial expected time.
type Bounded struct {
	cfg    Config
	params walk.Params
	mem    scan.Memory[Entry]

	rounds     []pad.Int64
	flips      []pad.Int64
	maxAbsCoin atomic.Int64

	// scratch[i] is pid i's decode/coin working storage, touched only by the
	// goroutine running pid i. Views and entries published to scannable memory
	// are never built from it.
	scratch []bscratch

	traceSink

	// OnScan, if non-nil, is invoked after every scan with the scanning
	// process and its (normalized) view, in scan-serialization order. It is
	// an analysis hook (e.g. the §6.1 virtual-round tracker in
	// internal/vround); invocations are serialized under the step scheduler.
	// Do not set in free-running mode.
	OnScan func(pid int, view []Entry)
}

// NewBounded builds a bounded-protocol instance.
func NewBounded(cfg Config) (*Bounded, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := walk.Params{N: cfg.N, B: cfg.B, M: cfg.M}
	if params.M == 0 {
		params.M = params.DefaultM()
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	factory := register.DirectFactory
	if cfg.UseBloomArrows {
		factory = register.BloomFactory
	}
	mem, err := scan.New[Entry](cfg.MemKind, cfg.N, factory)
	if err != nil {
		return nil, err
	}
	return &Bounded{
		cfg:     cfg,
		params:  params,
		mem:     mem,
		rounds:  make([]pad.Int64, cfg.N),
		flips:   make([]pad.Int64, cfg.N),
		scratch: newScratch(cfg.N, cfg.K, true),
	}, nil
}

// bscratch is one process's reusable decode/coin storage: separate graphs for
// the view decode and the inc-graph decode (both alive within one loop
// iteration), the edge-matrix header slice, and the coin-assembly array.
type bscratch struct {
	gView, gInc *strip.Graph
	mat         [][]int
	coins       []int
}

func newScratch(n, k int, coins bool) []bscratch {
	sc := make([]bscratch, n)
	for i := range sc {
		sc[i].gView = strip.NewGraph(n, k)
		sc[i].gInc = strip.NewGraph(n, k)
		sc[i].mat = make([][]int, n)
		if coins {
			sc[i].coins = make([]int, n)
		}
	}
	return sc
}

// fillEdgeMatrix is edgeMatrix into a reused header slice.
func fillEdgeMatrix(mat [][]int, view []Entry) {
	for i, ent := range view {
		mat[i] = ent.Edge
	}
}

// decodeViewAt is decodeView through pid i's scratch graph.
func (b *Bounded) decodeViewAt(i int, view []Entry) (*strip.Graph, error) {
	sc := &b.scratch[i]
	fillEdgeMatrix(sc.mat, view)
	g, err := strip.DecodeInto(sc.gView, sc.mat, b.cfg.K)
	if err != nil {
		return nil, fmt.Errorf("core: scanned view undecodable: %w", err)
	}
	sc.gView = g
	return g, nil
}

// Reset restores the instance to its initial state for pooling (core.Arena),
// reporting whether the memory stack supported it. Trace hooks are cleared;
// callers reinstall sinks per run. Call only between runs.
func (b *Bounded) Reset() bool {
	r, ok := b.mem.(interface{ Reset() bool })
	if !ok || !r.Reset() {
		return false
	}
	for i := range b.rounds {
		b.rounds[i].Store(0)
		b.flips[i].Store(0)
	}
	b.maxAbsCoin.Store(0)
	b.traceSink = traceSink{}
	b.OnScan = nil
	return true
}

// Name implements Protocol.
func (b *Bounded) Name() string { return "bounded" }

// Config returns the effective configuration.
func (b *Bounded) Config() Config { return b.cfg }

// SetSink installs the observability sink on the protocol and the whole
// memory stack beneath it (scannable memory down to individual registers).
func (b *Bounded) SetSink(s *obs.Sink) {
	b.setSink(s)
	if ss, ok := b.mem.(interface{ SetSink(*obs.Sink) }); ok {
		ss.SetSink(s)
	}
}

// SetMonitor installs the invariant monitor on the protocol, propagates it
// down the memory stack (scan handshake and register probes), and provides
// the flight-recorder state snapshot. A nil m detaches everything.
func (b *Bounded) SetMonitor(m *audit.Monitor) {
	b.setMonitor(m)
	if sm, ok := b.mem.(interface{ SetMonitor(*audit.Monitor) }); ok {
		sm.SetMonitor(m)
	}
	m.SetStateFn(b.captureState)
}

// SetProfiler installs the step profiler on the protocol and propagates it
// down the memory stack (write/scan blame hooks). A nil f detaches
// everything — ExecuteProto always calls it, so pooled instances never
// carry a stale profiler.
func (b *Bounded) SetProfiler(f *prof.Profiler) {
	b.setProfiler(f)
	if sp, ok := b.mem.(interface{ SetProfiler(*prof.Profiler) }); ok {
		sp.SetProfiler(f)
	}
}

// SetNative switches the memory stack's register storage to the substrate's
// mode (see register.NativeSetter). ExecuteProto always calls it, so pooled
// instances never carry a stale mode across substrates.
func (b *Bounded) SetNative(on bool) {
	if sn, ok := b.mem.(interface{ SetNative(bool) }); ok {
		sn.SetNative(on)
	}
}

// SetScanEpoch toggles the scan layer's dirty-bit epoch retry path (see
// scan.Arrow.SetEpoch). ExecuteProto enables it together with commuting
// dispatch and always calls it, so pooled instances never carry a stale mode.
func (b *Bounded) SetScanEpoch(on bool) {
	if se, ok := b.mem.(interface{ SetEpoch(bool) }); ok {
		se.SetEpoch(on)
	}
}

// SetSpace installs the space meter on the protocol and the memory stack
// beneath it (nil detaches — ExecuteProto always calls it), and declares the
// protocol's static layout: per process the entry carries pref +
// current_coin pointer + decided flag (core), K+1 cyclic coin counters
// clamped to ±(M+1) (walk), and n mod-3K edge counters (strip). All bounded
// — this is the protocol whose meters must never move past their declared
// domains.
func (b *Bounded) SetSpace(m *space.Meter) {
	b.setSpace(m)
	if sp, ok := b.mem.(register.SpaceSetter); ok {
		sp.SetSpace(m, space.LayerRegister)
	}
	if m == nil {
		return
	}
	n, k := int64(b.cfg.N), int64(b.cfg.K)
	m.AddWords(space.LayerCore, n*3)
	m.AddWords(space.LayerWalk, n*(k+1))
	m.AddWords(space.LayerStrip, n*n)
	m.DeclareDomain(space.LayerCore, 3)   // pref {⊥,0,1}
	m.DeclareDomain(space.LayerCore, k+1) // current_coin pointer
	m.DeclareDomain(space.LayerWalk, 2*int64(b.params.M)+3)
	m.DeclareDomain(space.LayerStrip, 3*k)
}

// captureState snapshots the published protocol state for flight dumps:
// preferences, round counts, the current coin counter and edge row of every
// process, via the memory's no-step Peek path.
func (b *Bounded) captureState() audit.State {
	pk, ok := b.mem.(interface{ PeekSlot(j int) Entry })
	if !ok {
		return audit.State{}
	}
	n, k := b.cfg.N, b.cfg.K
	st := audit.State{
		Prefs:  make([]int, n),
		Rounds: make([]int64, n),
		Coins:  make([]int, n),
		Edges:  make([][]int, n),
	}
	for i := 0; i < n; i++ {
		e := pk.PeekSlot(i)
		if e.Coin == nil {
			e = NewEntry(n, k)
		}
		st.Prefs[i] = int(e.Pref)
		st.Rounds[i] = b.rounds[i].Load()
		st.Coins[i] = e.Coin[coinSlot(e.CurrentCoin, 0, k)]
		st.Edges[i] = append([]int(nil), e.Edge...)
	}
	return st
}

// CoinParams returns the effective shared-coin parameters.
func (b *Bounded) CoinParams() walk.Params { return b.params }

// Metrics implements Protocol. Call only after the run completes.
func (b *Bounded) Metrics() Metrics {
	m := Metrics{
		Rounds:     make([]int64, b.cfg.N),
		CoinFlips:  make([]int64, b.cfg.N),
		MaxAbsCoin: b.maxAbsCoin.Load(),
	}
	for i := 0; i < b.cfg.N; i++ {
		m.Rounds[i] = b.rounds[i].Load()
		m.CoinFlips[i] = b.flips[i].Load()
	}
	return m
}

// inc is the paper's inc(round): advance the cyclic coin pointer, zero the
// slot that will serve the next round's coin, and recompute the edge-counter
// row from the scanned view via inc_graph.
func (b *Bounded) inc(p *sched.Proc, st Entry, view []Entry) (Entry, error) {
	k := b.cfg.K
	st = st.CloneCoin() // Edge is replaced wholesale by the fresh row below
	st.CurrentCoin = next(st.CurrentCoin, k)
	st.Coin[next(st.CurrentCoin, k)] = 0
	sc := &b.scratch[p.ID()]
	fillEdgeMatrix(sc.mat, view)
	sc.mat[p.ID()] = st.Edge
	row, err := strip.IncRowAudited(p.ID(), sc.mat, k, sc.gInc, p, b.sink, b.mon)
	if err != nil {
		return Entry{}, err
	}
	st.Edge = row
	if b.spc.Enabled() {
		for _, v := range row {
			b.spc.NoteValue(space.LayerStrip, int64(v))
		}
		b.spc.NoteValue(space.LayerCore, int64(st.CurrentCoin))
		b.spc.NoteValue(space.LayerCore, int64(st.Pref))
	}
	b.rounds[p.ID()].Add(1)
	b.emit(Event{Step: p.Now(), Pid: p.ID(), Kind: EvRoundAdvance, Round: b.rounds[p.ID()].Load()})
	return st, nil
}

// nextCoinValue is the paper's next_coin_value(round): assemble the counter
// array for the caller's current round from the scanned view — own current
// slot, plus the matching slot of every process at most K-1 rounds ahead —
// and evaluate the walk.
func (b *Bounded) nextCoinValue(i int, st Entry, view []Entry, g *strip.Graph) walk.Outcome {
	k := b.cfg.K
	c := b.scratch[i].coins
	for j := range view {
		switch {
		case j == i:
			c[j] = st.Coin[coinSlot(st.CurrentCoin, 0, k)]
		case g.Has[j][i] && g.W[j][i] < k:
			c[j] = view[j].Coin[coinSlot(view[j].CurrentCoin, g.W[j][i], k)]
		default:
			c[j] = 0 // more than K-1 ahead (contribution withdrawn) or behind
		}
	}
	return b.params.Value(c)
}

// flipNextCoin is the paper's flip_next_coin: one bounded walk step on the
// caller's coin counter for its current round.
func (b *Bounded) flipNextCoin(p *sched.Proc, st Entry) Entry {
	k := b.cfg.K
	st = st.CloneCoin() // only a coin slot is mutated; Edge stays shared
	slot := coinSlot(st.CurrentCoin, 0, k)
	st.Coin[slot] = b.params.StepCounterAudited(st.Coin[slot], p, b.sink, b.mon)
	b.spc.NoteValue(space.LayerWalk, int64(st.Coin[slot]))
	b.flips[p.ID()].Add(1)
	atomicMax(&b.maxAbsCoin, int64(abs(st.Coin[slot])))
	b.sink.GaugeMax(obs.GaugeMaxAbsCoin, int64(abs(st.Coin[slot])))
	ev := Event{Step: p.Now(), Pid: p.ID(), Kind: EvCoinFlip, Round: b.rounds[p.ID()].Load()}
	if b.tracing() {
		ev.Detail = fmt.Sprintf("c=%d", st.Coin[slot])
	}
	b.emit(ev)
	return st
}

// atomicMax raises *a to v if v is larger (CAS loop; safe under free-running
// concurrency).
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Run implements Protocol: the §5 main loop for one process. It returns the
// decided value (0 or 1).
func (b *Bounded) Run(p *sched.Proc, input int) int {
	i := p.ID()
	st := NewEntry(b.cfg.N, b.cfg.K)
	span := obs.StartPhaseSpan(p.Steps())
	if b.prof.Enabled() {
		span.Observe(b.prof)
	}

	// Initial write: prefer the input and enter round 1. The first inc sees
	// the scanned (possibly already-moving) edge counters.
	view := b.mem.Scan(p)
	normalizeView(view, b.cfg.N, b.cfg.K)
	if b.OnScan != nil {
		b.OnScan(i, view)
	}
	span.To(b.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
	st, err := b.inc(p, st, view)
	if err != nil {
		panic(fmt.Sprintf("core: bounded proc %d: %v", i, err))
	}
	st.Pref = int8(input)
	b.mem.Write(p, st)
	b.emit(Event{Step: p.Now(), Pid: i, Kind: EvStart, Round: b.rounds[i].Load(), Detail: "pref=" + prefString(st.Pref)})
	span.To(b.sink, obs.PhasePrefer, i, p.Now(), p.Steps())

	for {
		view := b.mem.Scan(p)
		normalizeView(view, b.cfg.N, b.cfg.K)
		view[i] = st // own slot: exactly what we last wrote
		if b.OnScan != nil {
			b.OnScan(i, view)
		}
		g, err := b.decodeViewAt(i, view)
		if err != nil {
			panic(fmt.Sprintf("core: bounded proc %d: %v", i, err))
		}
		if b.mon.AuditGraphs() {
			b.mon.GraphResult(p.Now(), i, g.Validate())
		}

		// FastDecide short-circuit: a published decision is final, so adopt
		// and decide it immediately (footnote 5 speedup; off by default).
		if b.cfg.FastDecide {
			for j := range view {
				if j != i && view[j].Decided {
					v := view[j].Pref
					span.To(b.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
					b.sink.Observe(obs.HistStepsToDecide, p.Steps())
					b.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: b.rounds[i].Load(), Detail: prefString(v) + " (fast)"})
					span.Finish(b.sink, i, p.Now(), p.Steps())
					return int(v)
				}
			}
		}

		// Line 2: decide when leading and every disagreer trails by K.
		if st.Pref != Bottom && g.Leader(i) && disagreersTrailByK(view, g, i, st.Pref) {
			span.To(b.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
			if b.cfg.FastDecide {
				// Decided is a value field: flipping it on the local copy
				// cannot affect already-published entries, so no clone.
				st.Decided = true
				b.mem.Write(p, st)
			}
			b.sink.Observe(obs.HistStepsToDecide, p.Steps())
			b.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: b.rounds[i].Load(), Detail: prefString(st.Pref)})
			span.Finish(b.sink, i, p.Now(), p.Steps())
			return int(st.Pref)
		}

		// Lines 3-4: adopt the leaders' common value and advance a round.
		if v, ok := leadersAgree(view, g); ok {
			span.To(b.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st, err = b.inc(p, st, view)
			if err != nil {
				panic(fmt.Sprintf("core: bounded proc %d: %v", i, err))
			}
			old := st.Pref
			st.Pref = v
			b.mem.Write(p, st)
			if old != v {
				b.emit(Event{Step: p.Now(), Pid: i, Kind: EvPrefChange, Round: b.rounds[i].Load(),
					Detail: prefString(old) + "->" + prefString(v)})
			}
			span.To(b.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
			continue
		}

		// Lines 5-6: leaders disagree — withdraw the preference.
		if st.Pref != Bottom {
			old := st.Pref
			st.Pref = Bottom // value field: no clone needed
			b.mem.Write(p, st)
			b.emit(Event{Step: p.Now(), Pid: i, Kind: EvPrefChange, Round: b.rounds[i].Load(),
				Detail: prefString(old) + "->⊥"})
			continue
		}

		// Lines 7-8: drive the shared coin; adopt its outcome when decided.
		switch cv := b.nextCoinValue(i, st, view, g); cv {
		case walk.Undecided:
			span.To(b.sink, obs.PhaseCoin, i, p.Now(), p.Steps())
			st = b.flipNextCoin(p, st)
			b.mem.Write(p, st)
			span.To(b.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
		default:
			b.emit(Event{Step: p.Now(), Pid: i, Kind: EvCoinDecided, Round: b.rounds[i].Load(), Detail: cv.String()})
			span.To(b.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st, err = b.inc(p, st, view)
			if err != nil {
				panic(fmt.Sprintf("core: bounded proc %d: %v", i, err))
			}
			st.Pref = outcomeBit(cv)
			b.mem.Write(p, st)
			b.emit(Event{Step: p.Now(), Pid: i, Kind: EvPrefChange, Round: b.rounds[i].Load(),
				Detail: "⊥->" + prefString(st.Pref)})
			span.To(b.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
		}
	}
}

// outcomeBit maps a decided coin outcome to a consensus value.
func outcomeBit(o walk.Outcome) int8 {
	if o == walk.Heads {
		return 1
	}
	return 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
