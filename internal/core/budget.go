package core

// StepBudget returns the conformance step budget for one instance of the
// given protocol at n processes: a deliberately generous bound that no
// correct execution should ever reach, used by the cross-substrate
// conformance suite (internal/conformance) as both the MaxSteps it grants a
// run and the ceiling it asserts the observed step total stayed under.
//
// The polynomial protocols (bounded, Aspnes-Herlihy, strong-coin) decide in
// polynomial expected total work; 4M·n dominates the observed p99 of every
// simulated bench-matrix workload by more than two orders of magnitude, and
// free-running native runs land even lower (near-serial hardware
// interleavings resolve the shared coin quickly). Native totals are bounded
// only in expectation, though: the scan layer is lock-free, not wait-free,
// so under fine-grained injected preemption a rare metastable retry storm —
// every scan pass overlapped by fresh writes — can push a single run past
// ANY fixed budget (observed at 4x this bound under -race, against a
// ~1M-step typical run at n=16). Widening the bound would only delay a
// storm's cut-off, so tests that inject such preemption instead treat a
// budget trip as retryable; see the stress suite's stressAttempts. The
// exponential baselines (local-coin, Abrahamson) have no polynomial bound,
// so they get the stress suite's flat 100M — the conformance suite only
// exercises them at small n, where that budget is astronomically safe.
//
// Substrates may overshoot MaxSteps by up to one step per process before the
// halt propagates (the native backend's processes race the budget flag), so
// budget assertions on observed totals must allow StepBudget(kind, n) + n.
func StepBudget(kind Kind, n int) int64 {
	switch kind {
	case KindExpLocal, KindAbrahamson:
		return 100_000_000
	default:
		return 4_000_000 * int64(n)
	}
}
