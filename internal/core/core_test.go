package core

import (
	"errors"
	"testing"

	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
)

// allKinds lists every protocol under test.
var allKinds = []Kind{KindBounded, KindAHUnbounded, KindExpLocal, KindStrongCoin, KindAbrahamson}

func mustExecute(t *testing.T, kind Kind, cfg Config, ec ExecConfig) Outcome {
	t.Helper()
	out, err := Execute(kind, cfg, ec)
	if err != nil {
		t.Fatalf("%v: Execute: %v", kind, err)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{N: 0}).Validate(); err == nil {
		t.Fatal("expected error for N=0")
	}
	if err := (Config{N: 2, K: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative K")
	}
	c := Config{N: 3}.withDefaults()
	if c.K != 2 || c.B != 4 || c.MemKind != scan.KindArrow {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	if _, err := New(Kind(42), Config{N: 2}); err == nil {
		t.Fatal("expected error")
	}
	if Kind(42).String() == "" {
		t.Fatal("Kind.String empty")
	}
	for _, k := range allKinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
}

func TestExecuteRejectsBadInputs(t *testing.T) {
	if _, err := Execute(KindBounded, Config{}, ExecConfig{}); err == nil {
		t.Fatal("expected error for empty inputs")
	}
	if _, err := Execute(KindBounded, Config{}, ExecConfig{Inputs: []int{0, 2}}); err == nil {
		t.Fatal("expected error for non-binary input")
	}
}

func TestSingleProcessDecidesItsInput(t *testing.T) {
	for _, kind := range allKinds {
		for _, input := range []int{0, 1} {
			out := mustExecute(t, kind, Config{}, ExecConfig{Inputs: []int{input}, Seed: 1, MaxSteps: 1_000_000})
			if out.Err != nil {
				t.Fatalf("%v input %d: %v", kind, input, out.Err)
			}
			if !out.AllDecided() || out.Values[0] != input {
				t.Fatalf("%v input %d: decided=%v values=%v", kind, input, out.Decided, out.Values)
			}
		}
	}
}

// TestValidity: all processes share an input — they must all decide it,
// for every protocol, under benign and adversarial schedules.
func TestValidity(t *testing.T) {
	for _, kind := range allKinds {
		for _, input := range []int{0, 1} {
			for seed := int64(0); seed < 10; seed++ {
				inputs := []int{input, input, input}
				out := mustExecute(t, kind, Config{}, ExecConfig{
					Inputs: inputs, Seed: seed,
					Adversary: sched.NewRandom(seed * 3),
					MaxSteps:  5_000_000,
				})
				if out.Err != nil {
					t.Fatalf("%v seed %d: run error: %v", kind, seed, out.Err)
				}
				if !out.AllDecided() {
					t.Fatalf("%v seed %d: not all decided: %v", kind, seed, out.Decided)
				}
				for i, v := range out.Values {
					if v != input {
						t.Fatalf("%v seed %d: process %d decided %d, want %d (validity)", kind, seed, i, v, input)
					}
				}
			}
		}
	}
}

// TestAgreementMixedInputs: mixed inputs — everyone must decide, on a common
// value that is some process's input.
func TestAgreementMixedInputs(t *testing.T) {
	for _, kind := range allKinds {
		for seed := int64(0); seed < 25; seed++ {
			inputs := []int{0, 1, 0, 1}
			out := mustExecute(t, kind, Config{B: 2}, ExecConfig{
				Inputs: inputs, Seed: seed,
				Adversary: sched.NewRandom(seed*7 + 1),
				MaxSteps:  20_000_000,
			})
			if out.Err != nil {
				t.Fatalf("%v seed %d: run error: %v (rounds=%v)", kind, seed, out.Err, out.Metrics.Rounds)
			}
			if !out.AllDecided() {
				t.Fatalf("%v seed %d: not all decided", kind, seed)
			}
			v, err := out.Agreement()
			if err != nil {
				t.Fatalf("%v seed %d: %v (values=%v)", kind, seed, err, out.Values)
			}
			if v != 0 && v != 1 {
				t.Fatalf("%v seed %d: decided %d, not an input", kind, seed, v)
			}
		}
	}
}

// TestAgreementUnderLagger: a starved process must not break agreement or
// termination.
func TestAgreementUnderLagger(t *testing.T) {
	for _, kind := range allKinds {
		for seed := int64(0); seed < 10; seed++ {
			out := mustExecute(t, kind, Config{B: 2}, ExecConfig{
				Inputs: []int{1, 0, 1},
				Seed:   seed, Adversary: sched.NewLagger(0, 40, seed+9),
				MaxSteps: 20_000_000,
			})
			if out.Err != nil {
				t.Fatalf("%v seed %d: run error: %v", kind, seed, out.Err)
			}
			if !out.AllDecided() {
				t.Fatalf("%v seed %d: not all decided", kind, seed)
			}
			if _, err := out.Agreement(); err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
		}
	}
}

// TestCrashFaultTolerance: crash all but one process mid-run; the survivor
// must still decide (wait-freedom), and agreement must hold among deciders.
func TestCrashFaultTolerance(t *testing.T) {
	for _, kind := range allKinds {
		for seed := int64(0); seed < 10; seed++ {
			out := mustExecute(t, kind, Config{B: 2}, ExecConfig{
				Inputs: []int{0, 1, 1},
				Seed:   seed,
				Adversary: sched.NewCrash(sched.NewRandom(seed+3), map[int]int64{
					1: 150, 2: 400,
				}),
				MaxSteps: 20_000_000,
			})
			if out.Err != nil && !errors.Is(out.Err, sched.ErrStalled) {
				t.Fatalf("%v seed %d: run error: %v", kind, seed, out.Err)
			}
			if !out.Decided[0] {
				t.Fatalf("%v seed %d: survivor did not decide (wait-freedom violated)", kind, seed)
			}
			if _, err := out.Agreement(); err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
		}
	}
}

// TestBoundedDeterministicReplay: same seed and adversary give identical
// outcomes and step counts.
func TestBoundedDeterministicReplay(t *testing.T) {
	run := func() Outcome {
		return mustExecute(t, KindBounded, Config{B: 2}, ExecConfig{
			Inputs: []int{0, 1, 0}, Seed: 1234,
			Adversary: sched.NewRandom(99), MaxSteps: 20_000_000,
		})
	}
	a, b := run(), run()
	if a.Sched.Steps != b.Sched.Steps {
		t.Fatalf("replay diverged: %d vs %d steps", a.Sched.Steps, b.Sched.Steps)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] || a.Decided[i] != b.Decided[i] {
			t.Fatalf("replay diverged at process %d", i)
		}
	}
}

// TestBoundedSpaceStaysBounded: coin counters stay within M+1 and rounds
// metrics are recorded; contrast with the unbounded baseline whose round
// numbers grow.
func TestBoundedSpaceStaysBounded(t *testing.T) {
	cfg := Config{B: 2, M: 64}
	out := mustExecute(t, KindBounded, cfg, ExecConfig{
		Inputs: []int{0, 1, 0, 1}, Seed: 7,
		Adversary: sched.NewRandom(5), MaxSteps: 20_000_000,
	})
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	if out.Metrics.MaxAbsCoin > int64(cfg.M+1) {
		t.Fatalf("coin counter escaped bound: %d > %d", out.Metrics.MaxAbsCoin, cfg.M+1)
	}
	if out.Metrics.MaxRound != 0 {
		t.Fatalf("bounded protocol reported an explicit round number: %d", out.Metrics.MaxRound)
	}
}

func TestUnboundedBaselineGrowsRounds(t *testing.T) {
	out := mustExecute(t, KindAHUnbounded, Config{B: 2}, ExecConfig{
		Inputs: []int{0, 1}, Seed: 3,
		Adversary: sched.NewRandom(11), MaxSteps: 20_000_000,
	})
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	if out.Metrics.MaxRound < 2 {
		t.Fatalf("MaxRound = %d, want >= 2", out.Metrics.MaxRound)
	}
	if out.Metrics.StripLen < out.Metrics.MaxRound {
		t.Fatalf("strip (%d) shorter than rounds (%d)", out.Metrics.StripLen, out.Metrics.MaxRound)
	}
}

// TestBoundedOverBloomArrows runs the full stack on Bloom-constructed 2W2R
// registers — the deepest substrate path.
func TestBoundedOverBloomArrows(t *testing.T) {
	out := mustExecute(t, KindBounded, Config{B: 2, UseBloomArrows: true}, ExecConfig{
		Inputs: []int{1, 0}, Seed: 21,
		Adversary: sched.NewRandom(2), MaxSteps: 20_000_000,
	})
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	if !out.AllDecided() {
		t.Fatal("not all decided over Bloom arrows")
	}
	if _, err := out.Agreement(); err != nil {
		t.Fatal(err)
	}
}

// TestAntiAgreementAdversary: an adaptive adversary that always schedules a
// process whose preference is in the minority (trying to keep the system
// split) must still not prevent termination or agreement.
func TestAntiAgreementAdversary(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		proto, err := NewBounded(Config{N: 4, B: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Adaptive: prefer scheduling lower pids on even phases and higher on
		// odd phases of 64 steps, churning the leadership.
		adv := sched.FuncAdversary(func(waiting []int, step int64) int {
			if (step/64)%2 == 0 {
				return waiting[0]
			}
			return waiting[len(waiting)-1]
		})
		out, err := ExecuteProto(proto, ExecConfig{
			Inputs: []int{0, 1, 0, 1}, Seed: seed, Adversary: adv, MaxSteps: 30_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != nil {
			t.Fatalf("seed %d: run error: %v", seed, out.Err)
		}
		if !out.AllDecided() {
			t.Fatalf("seed %d: not all decided", seed)
		}
		if _, err := out.Agreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCoinSlotArithmetic(t *testing.T) {
	const k = 2
	// Own slot: w=0 -> next(cur).
	for cur := 0; cur <= k; cur++ {
		if coinSlot(cur, 0, k) != next(cur, k) {
			t.Fatalf("coinSlot(cur=%d, 0) != next(cur)", cur)
		}
	}
	// One round ahead: the slot it zeroed one inc ago.
	if coinSlot(1, 1, k) != 1 {
		t.Fatalf("coinSlot(1,1,2) = %d, want 1", coinSlot(1, 1, k))
	}
	// Wraparound stays in range.
	for cur := 0; cur <= k; cur++ {
		for w := 0; w <= k; w++ {
			s := coinSlot(cur, w, k)
			if s < 0 || s > k {
				t.Fatalf("coinSlot(%d,%d) = %d out of range", cur, w, s)
			}
		}
	}
}

func TestLeadersAgreeHelper(t *testing.T) {
	n, k := 3, 2
	view := []Entry{NewEntry(n, k), NewEntry(n, k), NewEntry(n, k)}
	g, err := decodeView(view, k)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := leadersAgree(view, g); ok {
		t.Fatal("all-Bottom leaders cannot agree")
	}
	for i := range view {
		view[i].Pref = 1
	}
	v, ok := leadersAgree(view, g)
	if !ok || v != 1 {
		t.Fatalf("leadersAgree = %d,%v want 1,true", v, ok)
	}
	view[1].Pref = 0
	if _, ok := leadersAgree(view, g); ok {
		t.Fatal("split leaders reported agreeing")
	}
}

func TestOutcomeAgreementDetectsSplit(t *testing.T) {
	o := Outcome{Decided: []bool{true, true}, Values: []int{0, 1}}
	if _, err := o.Agreement(); err == nil {
		t.Fatal("expected consistency error")
	}
	o = Outcome{Decided: []bool{true, false}, Values: []int{1, 0}}
	v, err := o.Agreement()
	if err != nil || v != 1 {
		t.Fatalf("Agreement = %d,%v", v, err)
	}
}
