package core

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/sched"
)

// This suite proves the commuting-dispatch determinism contract at the
// protocol level: a commuting run's full cross-layer JSONL trace — every
// register read, scan retry, coin flip and decision, in scheduler order — is
// byte-identical to replaying its recorded grant sequence one step at a time
// through the sequential dispatch engine. The commuting schedule therefore IS
// a sequential grant order, and every safety result proven for sequential
// schedules transfers unchanged.

// stepRec is one scheduler grant observed through ExecConfig.OnStep.
type stepRec struct {
	pid  int
	step int64
}

// execCommutingTraced runs one protocol instance under commuting dispatch
// with a full JSONL trace attached, recording the grant sequence.
func execCommutingTraced(t *testing.T, kind Kind, seed int64) (Outcome, []byte, []stepRec) {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewJSONLRecorder(&buf)
	var grants []stepRec
	out, err := Execute(kind, Config{}, ExecConfig{
		Inputs:    []int{0, 1, 1, 0},
		Seed:      seed,
		Adversary: sched.NewRandom(seed),
		MaxSteps:  5_000_000,
		Sink:      obs.NewSink(rec),
		Commuting: true,
		OnStep:    func(pid int, step int64) { grants = append(grants, stepRec{pid, step}) },
	})
	if err != nil {
		t.Fatalf("Execute(%v, seed=%d, commuting): %v", kind, seed, err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("trace flush: %v", err)
	}
	return out, buf.Bytes(), grants
}

// execReplayTraced re-executes the instance under the sequential dispatcher,
// with the recorded grant sequence as the adversary and the scan layer held
// in the same epoch mode the commuting run used.
func execReplayTraced(t *testing.T, kind Kind, seed int64, grants []stepRec) (Outcome, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewJSONLRecorder(&buf)
	i := 0
	replay := sched.FuncAdversary(func(waiting []int, step int64) int {
		if i >= len(grants) {
			return -1
		}
		pick := grants[i].pid
		i++
		return pick
	})
	out, err := Execute(kind, Config{}, ExecConfig{
		Inputs:    []int{0, 1, 1, 0},
		Seed:      seed,
		Adversary: replay,
		MaxSteps:  5_000_000,
		Sink:      obs.NewSink(rec),
		ScanEpoch: true,
	})
	if err != nil {
		t.Fatalf("Execute(%v, seed=%d, replay): %v", kind, seed, err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("trace flush: %v", err)
	}
	return out, buf.Bytes()
}

func TestCommutingDispatchByteIdenticalToSequentialReplay(t *testing.T) {
	kinds := []Kind{KindBounded, KindAHUnbounded, KindExpLocal, KindStrongCoin, KindAbrahamson, KindAnonymous}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				comOut, comTrace, grants := execCommutingTraced(t, kind, seed)
				if len(grants) == 0 {
					t.Fatalf("seed %d: no grants recorded", seed)
				}
				seqOut, seqTrace := execReplayTraced(t, kind, seed, grants)
				if !bytes.Equal(comTrace, seqTrace) {
					t.Fatalf("seed %d: JSONL traces diverge between commuting run and sequential replay (%d vs %d bytes)",
						seed, len(comTrace), len(seqTrace))
				}
				if len(comTrace) == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}
				if !reflect.DeepEqual(comOut.Values, seqOut.Values) ||
					!reflect.DeepEqual(comOut.Decided, seqOut.Decided) {
					t.Fatalf("seed %d: decisions diverge: %v/%v vs %v/%v",
						seed, comOut.Values, comOut.Decided, seqOut.Values, seqOut.Decided)
				}
				if comOut.Sched.Steps != seqOut.Sched.Steps {
					t.Fatalf("seed %d: steps diverge: %d vs %d", seed, comOut.Sched.Steps, seqOut.Sched.Steps)
				}
				if !reflect.DeepEqual(comOut.Sched.PerProc, seqOut.Sched.PerProc) ||
					!reflect.DeepEqual(comOut.Sched.WaitSteps, seqOut.Sched.WaitSteps) {
					t.Fatalf("seed %d: sched accounting diverges", seed)
				}
				if !reflect.DeepEqual(comOut.Metrics, seqOut.Metrics) {
					t.Fatalf("seed %d: metrics diverge: %+v vs %+v", seed, comOut.Metrics, seqOut.Metrics)
				}
			}
		})
	}
}

// TestCommutingDispatchUnderBatch proves batching preserves the dispatch
// mode's determinism: serial and Parallel=4 batches of commuting instances
// yield identical outcomes.
func TestCommutingDispatchUnderBatch(t *testing.T) {
	const m = 6
	mk := func() []Instance {
		insts := batchInstances(KindBounded, Config{}, m, 21)
		for k := range insts {
			insts[k].Commuting = true
		}
		return insts
	}
	serial := RunBatch(1, nil, mk())
	par := RunBatch(4, nil, mk())
	assertBatchEqual(t, "parallel=4", serial, par)
}
