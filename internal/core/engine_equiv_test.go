package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/sched"
)

// execTraced runs one protocol instance with a full JSONL trace attached and
// returns the outcome plus the raw trace bytes.
func execTraced(t *testing.T, kind Kind, seed int64, rendezvous bool) (Outcome, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewJSONLRecorder(&buf)
	out, err := Execute(kind, Config{}, ExecConfig{
		Inputs:     []int{0, 1, 1, 0},
		Seed:       seed,
		Adversary:  sched.NewRandom(seed),
		MaxSteps:   5_000_000,
		Sink:       obs.NewSink(rec),
		Rendezvous: rendezvous,
	})
	if err != nil {
		t.Fatalf("Execute(%v, seed=%d): %v", kind, seed, err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("trace flush: %v", err)
	}
	return out, buf.Bytes()
}

// TestEnginesByteIdenticalTraces proves engine equivalence at the protocol
// level: for every protocol kind, the full cross-layer JSONL event stream —
// every register read, scan retry, coin flip and decision, in scheduler
// order — plus decisions and step accounting are byte-identical whether the
// run executes under the legacy rendezvous engine or the direct-dispatch
// engine. Both engines serialize body startup, so even events emitted before
// a process's first scheduler step (each protocol's initial round advance)
// arrive in pid order and the comparison is a plain byte-equality check.
func TestEnginesByteIdenticalTraces(t *testing.T) {
	kinds := []Kind{KindBounded, KindAHUnbounded, KindExpLocal, KindStrongCoin, KindAbrahamson}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				oldOut, oldTrace := execTraced(t, kind, seed, true)
				newOut, newTrace := execTraced(t, kind, seed, false)
				if !bytes.Equal(oldTrace, newTrace) {
					t.Fatalf("seed %d: JSONL traces diverge between engines (%d vs %d bytes)",
						seed, len(oldTrace), len(newTrace))
				}
				if len(newTrace) == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}
				if !reflect.DeepEqual(oldOut.Values, newOut.Values) ||
					!reflect.DeepEqual(oldOut.Decided, newOut.Decided) {
					t.Fatalf("seed %d: decisions diverge: %v/%v vs %v/%v",
						seed, oldOut.Values, oldOut.Decided, newOut.Values, newOut.Decided)
				}
				if oldOut.Sched.Steps != newOut.Sched.Steps {
					t.Fatalf("seed %d: steps diverge: %d vs %d", seed, oldOut.Sched.Steps, newOut.Sched.Steps)
				}
				if !reflect.DeepEqual(oldOut.Sched.PerProc, newOut.Sched.PerProc) ||
					!reflect.DeepEqual(oldOut.Sched.WaitSteps, newOut.Sched.WaitSteps) {
					t.Fatalf("seed %d: sched accounting diverges", seed)
				}
				if !reflect.DeepEqual(oldOut.Metrics, newOut.Metrics) {
					t.Fatalf("seed %d: metrics diverge: %+v vs %+v", seed, oldOut.Metrics, newOut.Metrics)
				}
			}
		})
	}
}

// TestEnginesAgreeUnderBatch proves the dispatch engine preserves the batch
// engine's worker-count invariance: rendezvous serial, dispatch serial and
// dispatch Parallel=4 all yield identical outcomes.
func TestEnginesAgreeUnderBatch(t *testing.T) {
	const m = 6
	mk := func() []Instance { return batchInstances(KindBounded, Config{}, m, 21) }

	rendezvous := make([]BatchOutcome, m)
	for k, inst := range mk() {
		out, err := Execute(inst.Kind, inst.Cfg, ExecConfig{
			Inputs:     inst.Inputs,
			Seed:       inst.Seed,
			Adversary:  inst.Adversary,
			MaxSteps:   inst.MaxSteps,
			Rendezvous: true,
		})
		rendezvous[k] = BatchOutcome{Out: out, Err: err}
	}
	for _, par := range []int{1, 4} {
		got := RunBatch(par, nil, mk())
		assertBatchEqual(t, fmt.Sprintf("parallel=%d", par), rendezvous, got)
	}
}
