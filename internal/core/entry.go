// Package core implements the paper's §5 consensus protocol — bounded
// polynomial randomized consensus — together with the baselines used by the
// experiments, covering the full space/time design matrix of §1:
//
//   - Bounded: the paper's algorithm (bounded space, polynomial time).
//     Preferences plus a bounded rounds strip (K+1 cyclic coin counters and
//     n mod-3K edge counters per process) in scannable memory; a bounded
//     weak shared coin resolves conflicts.
//   - AHUnbounded: an Aspnes–Herlihy-style protocol [AH88] with unbounded
//     round numbers, an unbounded strip of coins and unbounded counters —
//     unbounded space, polynomial time.
//   - ExpLocal: the bounded rounds machinery with independent local coin
//     flips instead of the shared coin — bounded space, exponential time
//     (ADS89-style).
//   - Abrahamson: explicit unbounded rounds with local coin flips [A88] —
//     unbounded space, exponential time.
//   - StrongCoin: a Chor–Israeli–Li-style protocol assuming an atomic
//     global coin-flip primitive (one common random bit per round).
//
// All protocols run on the sched/scan substrate, decide by the same
// leader-and-laggards rule, and expose step/round/space metrics. The bounded
// protocol additionally supports the footnote-5 FastDecide speedup.
package core

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/strip"
)

// Pref values. Bottom is the paper's ⊥ ("undecided preference").
const (
	Bottom int8 = -1
)

// Entry is the register value of one process in the bounded protocol: its
// preference plus the paper's round structure (§5) — the cyclic coin-counter
// strip and the edge-counter row of the bounded rounds graph.
//
// Entries are immutable once written to scannable memory: every mutation goes
// through Clone, and readers must not modify the slices they observe.
type Entry struct {
	// Pref is the process's preferred value: 0, 1 or Bottom.
	Pref int8
	// CurrentCoin is the cyclic pointer into Coin, in [0..K].
	CurrentCoin int
	// Coin holds the process's contributions to the K+1 latest shared coins,
	// each bounded in {-(M+1)..M+1}.
	Coin []int
	// Edge is the process's row of the §4.3 edge-counter matrix, each counter
	// in [0..3K).
	Edge []int
	// Decided marks an entry written by a process that has decided Pref and
	// halted. It is used only by the FastDecide optimization (the paper's
	// footnote 5 notes such speedups exist); the base protocol ignores it.
	Decided bool
}

// NewEntry returns the initial entry for a protocol instance with n
// processes and round constant k: Bottom preference, zeroed counters.
func NewEntry(n, k int) Entry {
	return Entry{
		Pref: Bottom,
		Coin: make([]int, k+1),
		Edge: make([]int, n),
	}
}

// Clone returns a deep copy safe to mutate.
func (e Entry) Clone() Entry {
	e.Coin = append([]int(nil), e.Coin...)
	e.Edge = append([]int(nil), e.Edge...)
	return e
}

// CloneCoin returns a copy whose Coin strip is freshly allocated but whose
// Edge row is shared with the receiver. Sufficient for mutations that touch
// only the coin strip (flip_next_coin) or replace Edge wholesale with a fresh
// row (inc): published entries never have their Edge mutated in place, so
// sharing it preserves immutability while halving the copy per mutation.
func (e Entry) CloneCoin() Entry {
	e.Coin = append([]int(nil), e.Coin...)
	return e
}

// next is the paper's next(current_coin): the cyclic successor pointer.
func next(cur, k int) int { return (cur + 1) % (k + 1) }

// coinSlot returns the index of the coin counter a process w rounds ahead of
// the reader uses for the reader's current round: (current_coin + 1 - w) mod
// (K+1). With w = 0 this is the process's own current coin slot.
func coinSlot(cur, w, k int) int {
	return ((cur+1-w)%(k+1) + (k + 1)) % (k + 1)
}

// normalizeView replaces zero-value entries (slots whose process has not yet
// performed its first write) with the explicit initial entry: Bottom
// preference, zeroed counters. Without this, an unwritten slot's zero Pref
// would read as a genuine preference for 0.
func normalizeView(view []Entry, n, k int) {
	for j := range view {
		if view[j].Coin == nil {
			view[j] = NewEntry(n, k)
		}
	}
}

// normalizeUView does the same for the unbounded protocols: a slot at round 0
// has not been written and must carry a Bottom preference.
func normalizeUView(view []UEntry) {
	for j := range view {
		if view[j].Round == 0 {
			view[j].Pref = Bottom
		}
	}
}

// edgeMatrix assembles the §4.3 counter matrix from a scanned view.
func edgeMatrix(view []Entry) [][]int {
	e := make([][]int, len(view))
	for i, ent := range view {
		e[i] = ent.Edge
	}
	return e
}

// decodeView decodes the distance graph from a scanned view.
func decodeView(view []Entry, k int) (*strip.Graph, error) {
	g, err := strip.Decode(edgeMatrix(view), k)
	if err != nil {
		return nil, fmt.Errorf("core: scanned view undecodable: %w", err)
	}
	return g, nil
}

// leadersAgree reports whether every leader in g holds the same non-Bottom
// preference, and that preference.
func leadersAgree(view []Entry, g *strip.Graph) (int8, bool) {
	var v int8 = Bottom
	for i := range view {
		if !g.Leader(i) {
			continue
		}
		p := view[i].Pref
		if p == Bottom {
			return Bottom, false
		}
		if v == Bottom {
			v = p
		} else if v != p {
			return Bottom, false
		}
	}
	return v, v != Bottom
}

// disagreersTrailByK reports the paper's decision guard for process i with
// preference pref: every process whose preference differs (including Bottom)
// is at distance >= K behind i in the rounds graph.
func disagreersTrailByK(view []Entry, g *strip.Graph, i int, pref int8) bool {
	for j := range view {
		if j == i || view[j].Pref == pref {
			continue
		}
		d, ok := g.Dist(i, j)
		if !ok || d < g.K {
			return false
		}
	}
	return true
}
