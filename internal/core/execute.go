package core

import (
	"errors"
	"fmt"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/sched"
)

// Protocol is a consensus protocol instance ready to run once: per-process
// bodies that each return a decision, plus post-run metrics.
type Protocol interface {
	// Name identifies the protocol in tables and logs.
	Name() string
	// Run executes one process's side of the protocol and returns its
	// decision. It must be called exactly once per pid, concurrently for all
	// pids of one instance.
	Run(p *sched.Proc, input int) int
	// Metrics returns accounting collected during the run. Call after the
	// run completes.
	Metrics() Metrics
}

// Kind names a protocol implementation.
type Kind int

// Protocol kinds.
const (
	KindBounded Kind = iota + 1
	KindAHUnbounded
	KindExpLocal
	KindStrongCoin
	KindAbrahamson
	KindAnonymous
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBounded:
		return "bounded"
	case KindAHUnbounded:
		return "ah-unbounded"
	case KindExpLocal:
		return "exp-local"
	case KindStrongCoin:
		return "strong-coin"
	case KindAbrahamson:
		return "abrahamson"
	case KindAnonymous:
		return "anonymous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New builds a fresh protocol instance of the given kind.
func New(kind Kind, cfg Config) (Protocol, error) {
	switch kind {
	case KindBounded:
		return NewBounded(cfg)
	case KindAHUnbounded:
		return NewAHUnbounded(cfg)
	case KindExpLocal:
		return NewExpLocal(cfg)
	case KindStrongCoin:
		return NewStrongCoin(cfg)
	case KindAbrahamson:
		return NewAbrahamson(cfg)
	case KindAnonymous:
		return NewAnonymous(cfg)
	default:
		return nil, fmt.Errorf("core: unknown protocol kind %d", int(kind))
	}
}

// Outcome is the result of executing one consensus instance.
type Outcome struct {
	// Decided[i] reports whether process i decided; Values[i] is its
	// decision (meaningful only when Decided[i]).
	Decided []bool
	Values  []int
	// Sched is the scheduler-level accounting (total atomic steps etc.).
	Sched sched.Result
	// Metrics is the protocol-level accounting.
	Metrics Metrics
	// Err is nil for a clean run, or sched.ErrStepBudget / sched.ErrStalled.
	Err error
}

// AllDecided reports whether every process decided.
func (o Outcome) AllDecided() bool {
	for _, d := range o.Decided {
		if !d {
			return false
		}
	}
	return true
}

// Agreement checks consistency: no two decided processes hold different
// values. It returns the common decided value (or -1 if nobody decided).
func (o Outcome) Agreement() (int, error) {
	v := -1
	for i, d := range o.Decided {
		if !d {
			continue
		}
		if v == -1 {
			v = o.Values[i]
		} else if v != o.Values[i] {
			return -1, fmt.Errorf("core: consistency violated: processes decided both %d and %d", v, o.Values[i])
		}
	}
	return v, nil
}

// ExecConfig configures one execution of a protocol instance.
type ExecConfig struct {
	// Inputs holds each process's initial value (0 or 1); its length sets N.
	Inputs []int
	// Seed drives all randomness (process coins and seeded adversaries).
	Seed int64
	// Adversary picks the schedule; nil defaults to round-robin.
	Adversary sched.Adversary
	// MaxSteps bounds the run (0 = unbounded).
	MaxSteps int64
	// Tracer, if non-nil, receives protocol events (round advances,
	// preference changes, coin flips, decisions) in scheduler order. Events
	// emitted before a process's first scheduler step (each protocol's
	// initial round advance) arrive in pid order: both engines serialize
	// body startup, so the whole event stream is deterministic. Calls are
	// totally ordered with happens-before edges (startup arrival signals,
	// then token handoffs), so a Tracer needs no locking of its own.
	Tracer Tracer

	// Sink, if non-nil, is the unified observability sink: it is installed on
	// the protocol and propagated down the whole memory stack (scan layer,
	// registers) and into the scheduler, so one run produces a cross-layer
	// event stream and metrics registry. Nil disables observability at zero
	// cost.
	Sink *obs.Sink

	// Rendezvous selects the legacy rendezvous step engine (test-only; see
	// sched.Config.Rendezvous). Used by the engine-equivalence suite to prove
	// protocol-level executions are byte-identical under both engines.
	// Ignored when Substrate is non-nil.
	Rendezvous bool

	// Commuting selects the commuting-step dispatch engine (see
	// sched.Config.Commuting): the adversary's pick seeds a batch of steps
	// with pairwise-disjoint register footprints, granted together between
	// consults. Every schedule it produces is a legal sequential grant order,
	// so safety results transfer unchanged. Enabling it also switches the scan
	// layer to the dirty-bit epoch retry path (Arrow.SetEpoch), which is where
	// the step savings compound. Incompatible with native substrates (their
	// scheduling is the hardware's, not the adversary's).
	Commuting bool

	// CommuteQuantum caps each batch member's run extension under commuting
	// dispatch (0 = the sched default). See sched.Config.CommuteQuantum.
	CommuteQuantum int

	// ScanEpoch forces the scan layer's dirty-bit epoch retry path even under
	// sequential dispatch (Commuting implies it). The dispatch-equivalence
	// suite uses it to replay a commuting run's recorded schedule through the
	// sequential engine with the process bodies unchanged — the retry path is
	// body behavior, not engine behavior, so it must match across the pair.
	ScanEpoch bool

	// OnStep, if non-nil, is forwarded to sched.Config.OnStep: it observes
	// every scheduler grant as (pid, step) in grant order. The equivalence
	// suites use it to record a commuting run's schedule for sequential
	// replay.
	OnStep func(pid int, step int64)

	// Substrate selects the execution backend (see sched.Substrate). Nil
	// runs the deterministic simulated step scheduler — the default and the
	// only mode with byte-reproducible traces. A substrate with
	// NativeRegisters() switches the whole register stack to its lock-free
	// sync/atomic storage before the run; determinism is forfeited, so
	// correctness is checked online by the Monitor instead of by replay.
	// The Profiler is incompatible with native substrates (its hooks assume
	// serialized steps) and is rejected.
	Substrate sched.Substrate

	// Monitor, if non-nil, is the invariant monitor (see internal/obs/audit):
	// its probes are installed down the whole stack, its flight-recorder ring
	// is teed into the event stream, and the end-of-instance agreement and
	// validity checks run after the scheduler returns. Probes are passive (no
	// scheduler steps, no process randomness), so decisions and step counts
	// are identical with and without a monitor. Nil disables auditing at one
	// branch per probe site.
	Monitor *audit.Monitor

	// Profiler, if non-nil, is the causal step profiler (see
	// internal/obs/prof): its hooks are installed down the whole stack
	// (phase-span observer on the protocol, write/scan blame hooks on the
	// scan layer). Hooks are passive like the monitor's probes, so profiled
	// runs are byte-identical to unprofiled ones. Nil disables profiling at
	// one branch per hook site.
	Profiler *prof.Profiler

	// Space, if non-nil, is the space meter (see internal/obs/space): it is
	// installed down the whole stack, each layer declares its register count,
	// word layout and value domains, and write sites record measured payload
	// magnitudes. Meter hooks take no scheduler steps, consume no randomness,
	// emit no events and allocate nothing, so metered runs are byte-identical
	// to unmetered ones; after the run the meter's usage is published onto
	// the sink's gauge registry. Nil disables metering at one nil check per
	// hook site. Works on every substrate (all meter state is atomic).
	Space *space.Meter
}

// validateInputs checks that inputs is a non-empty binary vector.
func validateInputs(inputs []int) error {
	if len(inputs) == 0 {
		return fmt.Errorf("core: no inputs")
	}
	for _, v := range inputs {
		if v != 0 && v != 1 {
			return fmt.Errorf("core: inputs must be binary, got %d", v)
		}
	}
	return nil
}

// Execute builds a protocol of the given kind and runs it once under the
// adversarial scheduler, collecting decisions and metrics.
func Execute(kind Kind, cfg Config, ec ExecConfig) (Outcome, error) {
	if err := validateInputs(ec.Inputs); err != nil {
		return Outcome{}, err
	}
	cfg.N = len(ec.Inputs)
	proto, err := New(kind, cfg)
	if err != nil {
		return Outcome{}, err
	}
	return ExecuteProto(proto, ec)
}

// ExecuteProto runs an already-constructed protocol instance once.
func ExecuteProto(proto Protocol, ec ExecConfig) (Outcome, error) {
	native := ec.Substrate != nil && ec.Substrate.NativeRegisters()
	if native && ec.Profiler.Enabled() {
		return Outcome{}, errors.New("core: the step profiler requires the simulated substrate (its hooks assume serialized steps)")
	}
	if native && ec.Commuting {
		return Outcome{}, errors.New("core: commuting dispatch requires the simulated substrate (native runs schedule on the hardware, not the adversary)")
	}
	// Always set the storage mode — a pooled instance may have last run on a
	// different substrate.
	if s, ok := proto.(interface{ SetNative(bool) }); ok {
		s.SetNative(native)
	}
	// Always set the scan-retry mode too — a pooled instance may have last run
	// under the other dispatch engine.
	if s, ok := proto.(interface{ SetScanEpoch(bool) }); ok {
		s.SetScanEpoch((ec.Commuting || ec.ScanEpoch) && !native)
	}
	// Native runs are not step-serialized: register-ops reach the monitor out
	// of linearization order (phantom regularity violations) and hardware
	// preemption stretches the scan-to-write window past what the §4.2
	// sequential-game graph invariants cover. The monitor disables exactly
	// those two probe families; value-based probes stay armed.
	ec.Monitor.SetNonSerialized(native)
	if ec.Tracer != nil {
		if s, ok := proto.(interface{ SetTracer(Tracer) }); ok {
			s.SetTracer(ec.Tracer)
		}
	}
	sink := ec.Sink
	if ec.Monitor.Enabled() {
		// Tee the monitor's bounded flight ring into the run's event stream so
		// the most recent events are on hand for violation dumps, and bind the
		// sink so violations land in the run's registry and trace.
		ring := ec.Monitor.FlightRecorder()
		if sink != nil {
			sink = sink.WithRecorder(obs.Tee(sink.Recorder(), ring))
		} else {
			sink = obs.NewSink(ring)
		}
		ec.Monitor.BindSink(sink)
	}
	if sink != nil {
		if s, ok := proto.(interface{ SetSink(*obs.Sink) }); ok {
			s.SetSink(sink)
		}
	}
	// Always install the monitor — a nil Monitor must clear any stale one a
	// pooled instance might still carry from a previous audited run.
	if s, ok := proto.(interface{ SetMonitor(*audit.Monitor) }); ok {
		s.SetMonitor(ec.Monitor)
	}
	// Same for the profiler: always install, so pooled instances never carry
	// a stale one.
	if s, ok := proto.(interface{ SetProfiler(*prof.Profiler) }); ok {
		s.SetProfiler(ec.Profiler)
	}
	// And the space meter: always install (nil detaches).
	if s, ok := proto.(interface{ SetSpace(*space.Meter) }); ok {
		s.SetSpace(ec.Space)
	}
	n := len(ec.Inputs)
	out := Outcome{
		Decided: make([]bool, n),
		Values:  make([]int, n),
	}
	runCfg := sched.Config{
		N:              n,
		Seed:           ec.Seed,
		Adversary:      ec.Adversary,
		MaxSteps:       ec.MaxSteps,
		Sink:           sink,
		Rendezvous:     ec.Rendezvous,
		Commuting:      ec.Commuting,
		CommuteQuantum: ec.CommuteQuantum,
		OnStep:         ec.OnStep,
	}
	body := func(p *sched.Proc) {
		v := proto.Run(p, ec.Inputs[p.ID()])
		out.Values[p.ID()] = v
		out.Decided[p.ID()] = true
	}
	var res sched.Result
	var runErr error
	if ec.Substrate != nil {
		res, runErr = ec.Substrate.Run(runCfg, body)
	} else {
		res, runErr = sched.Run(runCfg, body)
	}
	out.Sched = res
	out.Metrics = proto.Metrics()
	out.Err = runErr
	ec.Space.Publish(sink)
	ec.Monitor.EndOfInstance(res.Steps, out.Decided, out.Values, ec.Inputs,
		errors.Is(runErr, sched.ErrStepBudget) && !out.AllDecided())
	return out, nil
}
