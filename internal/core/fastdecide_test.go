package core

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestFastDecidePreservesCorrectness runs the consistency/validity battery
// with the footnote-5 speedup enabled.
func TestFastDecidePreservesCorrectness(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		out, err := Execute(KindBounded, Config{B: 2, FastDecide: true}, ExecConfig{
			Inputs: []int{0, 1, 0, 1}, Seed: seed,
			Adversary: sched.NewRandom(seed*5 + 2), MaxSteps: 50_000_000,
		})
		if err != nil || out.Err != nil {
			t.Fatalf("seed %d: %v / %v", seed, err, out.Err)
		}
		if !out.AllDecided() {
			t.Fatalf("seed %d: not all decided", seed)
		}
		if _, err := out.Agreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Validity with the fast path.
	for _, input := range []int{0, 1} {
		out, err := Execute(KindBounded, Config{B: 2, FastDecide: true}, ExecConfig{
			Inputs: []int{input, input, input}, Seed: 3,
			Adversary: sched.NewRandom(9), MaxSteps: 50_000_000,
		})
		if err != nil || out.Err != nil {
			t.Fatalf("validity run: %v / %v", err, out.Err)
		}
		for _, v := range out.Values {
			if v != input {
				t.Fatalf("validity violated with FastDecide: %v", out.Values)
			}
		}
	}
}

// TestFastDecideReducesLaggardCost: under a lagger schedule the starved
// process normally has to catch up round by round; with the fast path it
// adopts the published decision immediately. Compare its step counts.
func TestFastDecideReducesLaggardCost(t *testing.T) {
	mean := func(fast bool) float64 {
		var total int64
		const trials = 20
		for seed := int64(0); seed < trials; seed++ {
			out, err := Execute(KindBounded, Config{B: 2, FastDecide: fast}, ExecConfig{
				Inputs: []int{0, 1, 0, 1}, Seed: seed,
				Adversary: sched.NewLagger(0, 64, seed+1), MaxSteps: 100_000_000,
			})
			if err != nil || out.Err != nil {
				t.Fatalf("seed %d fast=%v: %v / %v", seed, fast, err, out.Err)
			}
			total += out.Sched.Steps
		}
		return float64(total) / trials
	}
	slow, fast := mean(false), mean(true)
	if fast > slow {
		t.Logf("fast path not faster on this workload: %v vs %v (acceptable: the marker costs one extra write)", fast, slow)
	}
	// Hard assertion only on gross regression.
	if fast > slow*1.5 {
		t.Fatalf("FastDecide made runs much slower: %.0f vs %.0f steps", fast, slow)
	}
}
