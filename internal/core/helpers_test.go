package core

import (
	"testing"

	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/walk"
)

func TestEntryCloneIsDeep(t *testing.T) {
	e := NewEntry(3, 2)
	c := e.Clone()
	c.Coin[0] = 9
	c.Edge[1] = 5
	if e.Coin[0] == 9 || e.Edge[1] == 5 {
		t.Fatal("Clone shares slice storage")
	}
	if e.Pref != Bottom {
		t.Fatalf("NewEntry Pref = %d, want Bottom", e.Pref)
	}
	if len(e.Coin) != 3 || len(e.Edge) != 3 {
		t.Fatalf("NewEntry sizes wrong: %+v", e)
	}
}

func TestUEntryCloneIsDeep(t *testing.T) {
	e := UEntry{Pref: 1, Round: 2, Strip: []int{1, 2}}
	c := e.Clone()
	c.Strip[0] = 99
	if e.Strip[0] == 99 {
		t.Fatal("UEntry.Clone shares strip storage")
	}
}

func TestNormalizeViewFillsUnwrittenSlots(t *testing.T) {
	view := make([]Entry, 3)
	view[1] = NewEntry(3, 2)
	view[1].Pref = 1
	normalizeView(view, 3, 2)
	if view[0].Pref != Bottom || view[2].Pref != Bottom {
		t.Fatal("unwritten slots must normalize to Bottom preference")
	}
	if view[1].Pref != 1 {
		t.Fatal("written slot must be preserved")
	}
	if len(view[0].Edge) != 3 || len(view[0].Coin) != 3 {
		t.Fatal("normalized slots must have full counter arrays")
	}
}

func TestNormalizeUViewBottomsRoundZero(t *testing.T) {
	view := []UEntry{{Pref: 0, Round: 0}, {Pref: 0, Round: 1}}
	normalizeUView(view)
	if view[0].Pref != Bottom {
		t.Fatal("round-0 slot must read as Bottom")
	}
	if view[1].Pref != 0 {
		t.Fatal("written slot must be preserved")
	}
}

func TestDisagreersTrailByK(t *testing.T) {
	const n, k = 3, 2
	view := []Entry{NewEntry(n, k), NewEntry(n, k), NewEntry(n, k)}
	view[0].Pref, view[1].Pref, view[2].Pref = 1, 0, 1
	g, err := decodeView(view, k)
	if err != nil {
		t.Fatal(err)
	}
	// All tied: the disagreeing process 1 does not trail.
	if disagreersTrailByK(view, g, 0, 1) {
		t.Fatal("tied disagreer must block the decision")
	}
	// Agreeing processes never block.
	view[1].Pref = 1
	if !disagreersTrailByK(view, g, 0, 1) {
		t.Fatal("unanimous preferences must allow the decision")
	}
	// Bottom counts as disagreeing.
	view[2].Pref = Bottom
	if disagreersTrailByK(view, g, 0, 1) {
		t.Fatal("Bottom at the same round must block the decision")
	}
}

func TestOracleIsConsistentPerRound(t *testing.T) {
	o := NewOracle()
	var first, second int8
	_, err := sched.Run(sched.Config{N: 2, Seed: 5}, func(p *sched.Proc) {
		if p.ID() == 0 {
			first = o.Flip(p, 7)
		} else {
			second = o.Flip(p, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("oracle gave different bits for one round: %d vs %d", first, second)
	}
	if o.Rounds() != 1 {
		t.Fatalf("oracle Rounds = %d, want 1", o.Rounds())
	}
	_, err = sched.Run(sched.Config{N: 1, Seed: 5}, func(p *sched.Proc) {
		o.Flip(p, 8)
		o.Flip(p, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Rounds() != 3 {
		t.Fatalf("oracle Rounds = %d, want 3", o.Rounds())
	}
}

func TestOutcomeBitMapping(t *testing.T) {
	if outcomeBit(walk.Heads) != 1 || outcomeBit(walk.Tails) != 0 {
		t.Fatal("outcomeBit mapping wrong")
	}
}

func TestAHPeekEntryReflectsWrites(t *testing.T) {
	proto, err := NewAHUnbounded(Config{N: 2, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := proto.PeekEntry(0); got.Round != 0 {
		t.Fatalf("initial PeekEntry round = %d", got.Round)
	}
	out, err := ExecuteProto(proto, ExecConfig{Inputs: []int{1, 1}, Seed: 1, MaxSteps: 10_000_000})
	if err != nil || out.Err != nil {
		t.Fatalf("run: %v / %v", err, out.Err)
	}
	if got := proto.PeekEntry(0); got.Round < 1 {
		t.Fatalf("PeekEntry after run: round %d, want >= 1", got.Round)
	}
}

func TestCoinParamsDerivedDefaults(t *testing.T) {
	proto, err := NewBounded(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	params := proto.CoinParams()
	if params.B != 4 || params.N != 4 {
		t.Fatalf("params = %+v", params)
	}
	if params.M != params.DefaultM() {
		t.Fatalf("M = %d, want derived default %d", params.M, params.DefaultM())
	}
}

// TestBoundedSeqSnapMemoryAgreement exercises the bounded protocol over the
// unbounded-baseline snapshot to show the protocol is memory-implementation
// agnostic.
func TestBoundedSeqSnapMemoryAgreement(t *testing.T) {
	out, err := Execute(KindBounded, Config{B: 2, MemKind: scan.KindSeqSnap}, ExecConfig{
		Inputs: []int{0, 1, 1}, Seed: 6, Adversary: sched.NewRandom(2), MaxSteps: 50_000_000,
	})
	if err != nil || out.Err != nil {
		t.Fatalf("run: %v / %v", err, out.Err)
	}
	if _, err := out.Agreement(); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedOverWaitFreeSnapshot runs the paper's protocol over the
// wait-free snapshot extension — the full stack with the strongest substrate.
func TestBoundedOverWaitFreeSnapshot(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		out, err := Execute(KindBounded, Config{B: 2, MemKind: scan.KindWaitFree}, ExecConfig{
			Inputs: []int{0, 1, 1}, Seed: seed, Adversary: sched.NewRandom(seed + 8), MaxSteps: 50_000_000,
		})
		if err != nil || out.Err != nil {
			t.Fatalf("seed %d: %v / %v", seed, err, out.Err)
		}
		if !out.AllDecided() {
			t.Fatalf("seed %d: not all decided", seed)
		}
		if _, err := out.Agreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
