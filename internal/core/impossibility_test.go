package core

import (
	"errors"
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestDeterministicProtocolsCanBeDrivenForever is an executable illustration
// of the impossibility result the paper's introduction cites ([AG88, CIL87,
// LA87], implicitly [DDS87, FLP85]): with only atomic reads and writes there
// is no *deterministic* wait-free consensus. We take the local-coin protocol
// and replace its coin with deterministic rules; a plain lockstep scheduler
// then keeps the symmetric two-process configuration bivalent forever — both
// processes mirror each other's moves and never separate. The same schedule
// against the *randomized* coin terminates almost surely (checked as a
// control).
//
// This is a demonstration on a specific protocol shape, not a proof of the
// general theorem — but the mechanism (the adversary exploits symmetry that
// determinism cannot break) is exactly the one the proofs formalize.
func TestDeterministicProtocolsCanBeDrivenForever(t *testing.T) {
	deterministicRules := map[string]func(p *sched.Proc, cur int8) int8{
		// Each process deterministically re-adopts its own identity's bit:
		// under lockstep the configuration stays split forever.
		"own-id": func(p *sched.Proc, _ int8) int8 { return int8(p.ID() % 2) },
		// The complementary fixed assignment: same bivalence, mirrored.
		"opposite-id": func(p *sched.Proc, _ int8) int8 { return int8(1 - p.ID()%2) },
		// A value-symmetric rule that breaks the tie identically for all
		// processes converges — the contrast case showing determinism per se
		// is not the problem; it is determinism that preserves the split.
		"always-zero": func(_ *sched.Proc, _ int8) int8 { return 0 },
	}
	for name, rule := range deterministicRules {
		name, rule := name, rule
		t.Run(name, func(t *testing.T) {
			for _, budget := range []int64{50_000, 500_000} {
				proto, err := NewExpLocal(Config{N: 2})
				if err != nil {
					t.Fatal(err)
				}
				proto.Flip = rule
				out, err := ExecuteProto(proto, ExecConfig{
					Inputs:    []int{0, 1},
					Seed:      1,
					Adversary: sched.NewRoundRobin(),
					MaxSteps:  budget,
				})
				if err != nil {
					t.Fatal(err)
				}
				if name == "always-zero" {
					// A rule that sends every conflicted process to the same
					// value converges; it exists as the contrast case.
					continue
				}
				if !errors.Is(out.Err, sched.ErrStepBudget) {
					t.Fatalf("budget %d: deterministic %q protocol terminated (err=%v, decided=%v) — lockstep failed to keep it bivalent",
						budget, name, out.Err, out.Decided)
				}
			}
		})
	}

	// Control: the genuinely randomized coin terminates under the exact same
	// lockstep schedule.
	proto, err := NewExpLocal(Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteProto(proto, ExecConfig{
		Inputs:    []int{0, 1},
		Seed:      1,
		Adversary: sched.NewRoundRobin(),
		MaxSteps:  50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil || !out.AllDecided() {
		t.Fatalf("randomized control failed to terminate: %v", out.Err)
	}
}
