package core

import (
	"sync"
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/vround"
)

// This file replays the §6 correctness lemmas on live executions of the
// bounded protocol: it records every scan (preferences + virtual rounds from
// the §6.1 tracker) and every preference-change event, then checks the
// lemmas offline.

type lemmaScan struct {
	step    int64
	prefs   []int8
	vrounds []int64
}

type lemmaAdopt struct {
	step   int64
	pid    int
	value  int8
	vround int64
	random bool // adopted from the shared coin (vs deterministically)
}

type lemmaTrace struct {
	scans  []lemmaScan
	adopts []lemmaAdopt
}

// recordLemmaTrace runs one bounded instance under the given adversary and
// collects the lemma-checking trace.
func recordLemmaTrace(t *testing.T, n int, inputs []int, seed int64, adv sched.Adversary) *lemmaTrace {
	t.Helper()
	proto, err := NewBounded(Config{N: n, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	tracker := vround.New(n, proto.Config().K)
	tr := &lemmaTrace{}
	var trErr error
	lastCoinDecided := make(map[int]int64) // pid -> step of latest EvCoinDecided

	proto.OnScan = func(pid int, view []Entry) {
		if trErr != nil {
			return
		}
		if err := tracker.Observe(edgeMatrix(view)); err != nil {
			trErr = err
			return
		}
		s := lemmaScan{prefs: make([]int8, n), vrounds: tracker.Rounds()}
		for j := range view {
			s.prefs[j] = view[j].Pref
		}
		tr.scans = append(tr.scans, s)
	}
	// Tracer calls are totally ordered (serialized startup + token handoffs;
	// see ExecConfig.Tracer), so this lock is belt-and-braces only.
	var mu sync.Mutex
	proto.SetTracer(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Kind {
		case EvCoinDecided:
			lastCoinDecided[e.Pid] = 1 // latch: the next adoption is coin-driven
		case EvPrefChange:
			// (EvStart is excluded: initial writes carry the processes'
			// inputs, which may legitimately differ — Lemma 6.7 is about
			// the selections made when entering later rounds.)
			val := Bottom
			if len(e.Detail) > 0 {
				switch e.Detail[len(e.Detail)-1] {
				case '0':
					val = 0
				case '1':
					val = 1
				}
			}
			if val == Bottom {
				return // withdrawal, not an adoption
			}
			tr.adopts = append(tr.adopts, lemmaAdopt{
				step:   e.Step,
				pid:    e.Pid,
				value:  val,
				vround: tracker.Round(e.Pid),
				random: lastCoinDecided[e.Pid] > 0,
			})
			lastCoinDecided[e.Pid] = 0 // consumed
		}
	})

	_, err = sched.Run(sched.Config{N: n, Seed: seed, Adversary: adv, MaxSteps: 100_000_000}, func(p *sched.Proc) {
		proto.Run(p, inputs[p.ID()])
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if trErr != nil {
		t.Fatalf("trace: %v", trErr)
	}
	return tr
}

// TestLemma67DeterministicSelectionsAgree: all *deterministic* preference
// adoptions for one virtual round carry the same value (Lemma 6.7). Random
// (coin) adoptions may differ — that is the coin's weakness.
func TestLemma67DeterministicSelectionsAgree(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := recordLemmaTrace(t, 4, []int{0, 1, 0, 1}, seed, sched.NewRandom(seed*9+4))
		detValue := map[int64]int8{}
		for _, a := range tr.adopts {
			if a.random {
				continue
			}
			if v, ok := detValue[a.vround]; ok {
				if v != a.value {
					t.Fatalf("seed %d: deterministic selections for virtual round %d disagree: %d vs %d",
						seed, a.vround, v, a.value)
				}
			} else {
				detValue[a.vround] = a.value
			}
		}
	}
}

// TestLemma62UnanimityIsStable: Lemma 6.2 says that once no process prefers
// v̄ while round r is among the 2 largest, no process ever prefers v̄ at a
// round > r. We check the observable consequence: scanning the serialized
// snapshots, once a snapshot shows every non-Bottom preference equal to v
// with every process within K of the maximal virtual round, all later
// snapshots' non-Bottom preferences at rounds > that max equal v.
func TestLemma62UnanimityIsStable(t *testing.T) {
	const n, k = 4, 2
	for seed := int64(0); seed < 25; seed++ {
		tr := recordLemmaTrace(t, n, []int{1, 0, 1, 0}, seed, sched.NewRandom(seed*13+5))
		var lockVal int8 = Bottom
		var lockRound int64 = -1
		for si, s := range tr.scans {
			maxR := s.vrounds[0]
			for _, r := range s.vrounds[1:] {
				if r > maxR {
					maxR = r
				}
			}
			if lockVal != Bottom {
				for j := 0; j < n; j++ {
					if s.vrounds[j] > lockRound && s.prefs[j] != Bottom && s.prefs[j] != lockVal {
						t.Fatalf("seed %d scan %d: process %d prefers %d at virtual round %d after unanimity on %d at round %d",
							seed, si, j, s.prefs[j], s.vrounds[j], lockVal, lockRound)
					}
				}
				continue
			}
			// Detect unanimity among processes within K of the max round.
			var v int8 = Bottom
			unanimous := true
			for j := 0; j < n; j++ {
				if maxR-s.vrounds[j] >= int64(k) {
					continue // trailing processes don't count
				}
				if s.prefs[j] == Bottom {
					unanimous = false
					break
				}
				if v == Bottom {
					v = s.prefs[j]
				} else if v != s.prefs[j] {
					unanimous = false
					break
				}
			}
			if unanimous && v != Bottom {
				lockVal, lockRound = v, maxR
			}
		}
	}
}
