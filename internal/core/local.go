package core

import (
	"fmt"
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/strip"
)

// ExpLocal is the exponential-time, bounded-space baseline (Abrahamson-style
// as reconstructed over the paper's bounded rounds strip): identical control
// structure to the bounded protocol, but conflicts are resolved by each
// process flipping an *independent local* coin instead of driving the shared
// coin. Agreement then requires the independent flips to coincide, which
// happens with exponentially small probability as n grows — the behaviour the
// shared coin exists to fix. It is an exact ablation: same substrate, same
// decide rule, only the randomness source differs.
type ExpLocal struct {
	cfg Config
	mem scan.Memory[Entry]

	rounds []pad.Int64
	flips  []pad.Int64

	// scratch[i] is pid i's decode working storage (owner-goroutine only).
	scratch []bscratch

	traceSink

	// Flip chooses the preference adopted on a leader conflict. It defaults
	// to a fair local coin. Tests override it with a deterministic rule to
	// demonstrate the impossibility the paper's introduction cites: with
	// only atomic reads and writes, *deterministic* protocols can be
	// scheduled so that they never decide.
	Flip func(p *sched.Proc, cur int8) int8
}

// NewExpLocal builds an exponential-baseline instance. B and M are ignored
// (no shared coin).
func NewExpLocal(cfg Config) (*ExpLocal, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factory := register.DirectFactory
	if cfg.UseBloomArrows {
		factory = register.BloomFactory
	}
	mem, err := scan.New[Entry](cfg.MemKind, cfg.N, factory)
	if err != nil {
		return nil, err
	}
	return &ExpLocal{
		cfg:     cfg,
		mem:     mem,
		rounds:  make([]pad.Int64, cfg.N),
		flips:   make([]pad.Int64, cfg.N),
		scratch: newScratch(cfg.N, cfg.K, false),
		Flip:    defaultLocalFlip,
	}, nil
}

// defaultLocalFlip is the fair local coin ExpLocal ships with (and Reset
// restores after a test override).
func defaultLocalFlip(p *sched.Proc, _ int8) int8 { return int8(p.Rand().Intn(2)) }

// decodeViewAt is decodeView through pid i's scratch graph.
func (l *ExpLocal) decodeViewAt(i int, view []Entry) (*strip.Graph, error) {
	sc := &l.scratch[i]
	fillEdgeMatrix(sc.mat, view)
	g, err := strip.DecodeInto(sc.gView, sc.mat, l.cfg.K)
	if err != nil {
		return nil, fmt.Errorf("core: scanned view undecodable: %w", err)
	}
	sc.gView = g
	return g, nil
}

// Reset restores the instance to its initial state for pooling (core.Arena),
// reporting whether the memory stack supported it. The Flip hook reverts to
// the fair local coin. Call only between runs.
func (l *ExpLocal) Reset() bool {
	r, ok := l.mem.(interface{ Reset() bool })
	if !ok || !r.Reset() {
		return false
	}
	for i := range l.rounds {
		l.rounds[i].Store(0)
		l.flips[i].Store(0)
	}
	l.traceSink = traceSink{}
	l.Flip = defaultLocalFlip
	return true
}

// Name implements Protocol.
func (l *ExpLocal) Name() string { return "exp-local" }

// SetSink installs the observability sink on the protocol and the memory
// stack beneath it.
func (l *ExpLocal) SetSink(s *obs.Sink) {
	l.setSink(s)
	if ss, ok := l.mem.(interface{ SetSink(*obs.Sink) }); ok {
		ss.SetSink(s)
	}
}

// SetMonitor installs the invariant monitor on the protocol and the memory
// stack beneath it, and provides the flight-recorder state snapshot.
func (l *ExpLocal) SetMonitor(m *audit.Monitor) {
	l.setMonitor(m)
	if sm, ok := l.mem.(interface{ SetMonitor(*audit.Monitor) }); ok {
		sm.SetMonitor(m)
	}
	m.SetStateFn(l.captureState)
}

// SetProfiler installs the step profiler on the protocol and the memory
// stack beneath it (nil detaches; see Bounded.SetProfiler).
func (l *ExpLocal) SetProfiler(f *prof.Profiler) {
	l.setProfiler(f)
	if sp, ok := l.mem.(interface{ SetProfiler(*prof.Profiler) }); ok {
		sp.SetProfiler(f)
	}
}

// SetNative switches the memory stack's register storage to the substrate's
// mode (see Bounded.SetNative).
func (l *ExpLocal) SetNative(on bool) {
	if sn, ok := l.mem.(interface{ SetNative(bool) }); ok {
		sn.SetNative(on)
	}
}

// SetScanEpoch toggles the scan layer's dirty-bit epoch retry path (see
// Bounded.SetScanEpoch).
func (l *ExpLocal) SetScanEpoch(on bool) {
	if se, ok := l.mem.(interface{ SetEpoch(bool) }); ok {
		se.SetEpoch(on)
	}
}

// SetSpace installs the space meter (nil detaches). The layout is identical
// to the bounded protocol's — the baseline keeps the coin slots in its
// entries, they just stay zero — so the frontier tables show it matching
// Bounded on space while losing on expected time.
func (l *ExpLocal) SetSpace(m *space.Meter) {
	l.setSpace(m)
	if sp, ok := l.mem.(register.SpaceSetter); ok {
		sp.SetSpace(m, space.LayerRegister)
	}
	if m == nil {
		return
	}
	n, k := int64(l.cfg.N), int64(l.cfg.K)
	m.AddWords(space.LayerCore, n*3)       // pref + pointer + decided flag
	m.AddWords(space.LayerWalk, n*(k+1))   // coin slots (present, always zero)
	m.AddWords(space.LayerStrip, n*n)      // one strip row per entry
	m.DeclareDomain(space.LayerCore, 3)    // pref ∈ {⊥,0,1}
	m.DeclareDomain(space.LayerCore, k+1)  // strip pointer
	m.DeclareDomain(space.LayerWalk, 1)    // slots never leave zero
	m.DeclareDomain(space.LayerStrip, 3*k) // counters mod 3K
}

// captureState snapshots the published state for flight dumps (no coin
// counters: this baseline's coin slots stay zero).
func (l *ExpLocal) captureState() audit.State {
	pk, ok := l.mem.(interface{ PeekSlot(j int) Entry })
	if !ok {
		return audit.State{}
	}
	n, k := l.cfg.N, l.cfg.K
	st := audit.State{
		Prefs:  make([]int, n),
		Rounds: make([]int64, n),
		Edges:  make([][]int, n),
	}
	for i := 0; i < n; i++ {
		e := pk.PeekSlot(i)
		if e.Coin == nil {
			e = NewEntry(n, k)
		}
		st.Prefs[i] = int(e.Pref)
		st.Rounds[i] = l.rounds[i].Load()
		st.Edges[i] = append([]int(nil), e.Edge...)
	}
	return st
}

// Metrics implements Protocol.
func (l *ExpLocal) Metrics() Metrics {
	m := Metrics{Rounds: make([]int64, l.cfg.N), CoinFlips: make([]int64, l.cfg.N)}
	for i := 0; i < l.cfg.N; i++ {
		m.Rounds[i] = l.rounds[i].Load()
		m.CoinFlips[i] = l.flips[i].Load()
	}
	return m
}

// inc advances the rounds strip exactly as the bounded protocol does (the
// coin slots exist but stay zero).
func (l *ExpLocal) inc(p *sched.Proc, st Entry, view []Entry) (Entry, error) {
	k := l.cfg.K
	st = st.CloneCoin() // Edge is replaced wholesale by the fresh row below
	st.CurrentCoin = next(st.CurrentCoin, k)
	sc := &l.scratch[p.ID()]
	fillEdgeMatrix(sc.mat, view)
	sc.mat[p.ID()] = st.Edge
	row, err := strip.IncRowAudited(p.ID(), sc.mat, k, sc.gInc, p, l.sink, l.mon)
	if err != nil {
		return Entry{}, err
	}
	st.Edge = row
	if l.spc.Enabled() {
		for _, v := range row {
			l.spc.NoteValue(space.LayerStrip, int64(v))
		}
		l.spc.NoteValue(space.LayerCore, int64(st.CurrentCoin))
		l.spc.NoteValue(space.LayerCore, int64(st.Pref))
	}
	l.rounds[p.ID()].Add(1)
	l.emit(Event{Step: p.Now(), Pid: p.ID(), Kind: EvRoundAdvance, Round: l.rounds[p.ID()].Load()})
	return st, nil
}

// Run implements Protocol for one process.
func (l *ExpLocal) Run(p *sched.Proc, input int) int {
	i := p.ID()
	st := NewEntry(l.cfg.N, l.cfg.K)
	span := obs.StartPhaseSpan(p.Steps())
	if l.prof.Enabled() {
		span.Observe(l.prof)
	}

	view := l.mem.Scan(p)
	normalizeView(view, l.cfg.N, l.cfg.K)
	span.To(l.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
	st, err := l.inc(p, st, view)
	if err != nil {
		panic(fmt.Sprintf("core: exp-local proc %d: %v", i, err))
	}
	st.Pref = int8(input)
	l.mem.Write(p, st)
	span.To(l.sink, obs.PhasePrefer, i, p.Now(), p.Steps())

	for {
		view := l.mem.Scan(p)
		normalizeView(view, l.cfg.N, l.cfg.K)
		view[i] = st
		g, err := l.decodeViewAt(i, view)
		if err != nil {
			panic(fmt.Sprintf("core: exp-local proc %d: %v", i, err))
		}
		if l.mon.AuditGraphs() {
			l.mon.GraphResult(p.Now(), i, g.Validate())
		}

		if st.Pref != Bottom && g.Leader(i) && disagreersTrailByK(view, g, i, st.Pref) {
			span.To(l.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
			l.sink.Observe(obs.HistStepsToDecide, p.Steps())
			l.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: l.rounds[i].Load(), Detail: prefString(st.Pref)})
			span.Finish(l.sink, i, p.Now(), p.Steps())
			return int(st.Pref)
		}

		if v, ok := leadersAgree(view, g); ok {
			span.To(l.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st, err = l.inc(p, st, view)
			if err != nil {
				panic(fmt.Sprintf("core: exp-local proc %d: %v", i, err))
			}
			st.Pref = v
			l.mem.Write(p, st)
			span.To(l.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
			continue
		}

		// Conflict: first withdraw the preference at the same round (the
		// paper's lines 5-6 — the pause is load-bearing: without it a
		// climbing process can pass a decided leader without ever seeing
		// it, breaking consistency at ~1/2000 schedules), then adopt an
		// independent local coin flip and advance.
		if st.Pref != Bottom {
			old := st.Pref
			st.Pref = Bottom // value field: no clone needed
			l.mem.Write(p, st)
			l.emit(Event{Step: p.Now(), Pid: i, Kind: EvPrefChange, Round: l.rounds[i].Load(),
				Detail: prefString(old) + "->⊥"})
			continue
		}
		span.To(l.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
		st, err = l.inc(p, st, view)
		if err != nil {
			panic(fmt.Sprintf("core: exp-local proc %d: %v", i, err))
		}
		span.To(l.sink, obs.PhaseCoin, i, p.Now(), p.Steps())
		st.Pref = l.Flip(p, st.Pref)
		l.flips[i].Add(1)
		l.mem.Write(p, st)
		l.emit(Event{Step: p.Now(), Pid: i, Kind: EvCoinFlip, Round: l.rounds[i].Load(),
			Detail: "local=" + prefString(st.Pref)})
		span.To(l.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
	}
}
