package core

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/sched"
)

// stressAttempts bounds the budget-trip retries per stress run. The scan
// layer is lock-free, not wait-free, so under fine-grained injected
// preemption a run's step total is bounded only in expectation: a rare
// metastable retry storm — every scan pass overlapped by fresh writes —
// can push one run past any fixed budget (typical runs finish in ~1M
// steps at n=16; storms have been observed past 4x the budget under
// -race). A budget trip gets a fresh attempt on a different preemption
// lane; a deterministic livelock would fail every attempt.
const stressAttempts = 3

// nativeStressSizes is the stress grid: the polynomial protocols sweep the
// bench-matrix sizes, the exponential baselines stay at n=4 (their expected
// time is exponential in n and the preempted interleavings are genuinely
// adversarial).
func nativeStressSizes(kind Kind) []int {
	switch kind {
	case KindExpLocal, KindAbrahamson:
		return []int{4}
	default:
		return []int{4, 8, 16}
	}
}

// stressInputs derives a deterministic mixed input vector from the seed.
func stressInputs(n int, seed int64) []int {
	bits := uint64(InstanceSeed(seed, 0))
	in := make([]int, n)
	for i := range in {
		in[i] = int(bits >> uint(i%64) & 1)
	}
	in[0], in[n-1] = 0, 1
	return in
}

// TestNativePreemptionStress is the native analogue of the PCT sweep: every
// protocol runs on the native substrate with randomized step-gate preemption
// (a goroutine yield with probability 1/3 per step, seeds varied), under a
// GOMAXPROCS sweep covering serial, dual and full parallelism. Each run is
// audited online — the monitor is the correctness oracle, since native
// interleavings cannot be replayed — and must decide a common valid value
// within the conformance step budget. Run under -race (make ci does) this
// doubles as the data-race proof for the whole lock-free register stack.
func TestNativePreemptionStress(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 3
	}
	for _, gmp := range gomaxprocsSweep() {
		gmp := gmp
		t.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(gmp)
			defer runtime.GOMAXPROCS(prev)
			for _, kind := range allKinds {
				for _, n := range nativeStressSizes(kind) {
					for seed := int64(0); seed < seeds; seed++ {
						var out Outcome
						var mon *audit.Monitor
						for attempt := int64(0); ; attempt++ {
							sub := sched.NewNative(sched.NativeOptions{
								PreemptEvery: 3,
								PreemptSeed:  seed*1000 + int64(n) + attempt*7919,
							})
							mon = audit.New(audit.Options{SampleEvery: 8})
							var err error
							out, err = Execute(kind, Config{}, ExecConfig{
								Inputs:    stressInputs(n, seed),
								Seed:      seed,
								MaxSteps:  StepBudget(kind, n),
								Monitor:   mon,
								Substrate: sub,
							})
							if err != nil {
								t.Fatalf("%v n=%d seed=%d: %v", kind, n, seed, err)
							}
							if !errors.Is(out.Err, sched.ErrStepBudget) || attempt == stressAttempts-1 {
								break
							}
							t.Logf("%v n=%d seed=%d: budget trip (scan-retry storm), retrying on a fresh preemption lane", kind, n, seed)
						}
						if out.Err != nil {
							t.Fatalf("%v n=%d seed=%d: run error: %v", kind, n, seed, out.Err)
						}
						if !out.AllDecided() {
							t.Fatalf("%v n=%d seed=%d: not all decided", kind, n, seed)
						}
						if _, err := out.Agreement(); err != nil {
							t.Fatalf("%v n=%d seed=%d: %v", kind, n, seed, err)
						}
						if vio := mon.Violations(); len(vio) != 0 {
							t.Fatalf("%v n=%d seed=%d: audit violations %v", kind, n, seed, vio)
						}
					}
				}
			}
		})
	}
}

// gomaxprocsSweep is {1, 2, NumCPU} deduplicated in order.
func gomaxprocsSweep() []int {
	sweep := []int{1, 2, runtime.NumCPU()}
	out := sweep[:0]
	seen := map[int]bool{}
	for _, v := range sweep {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestNativeCrashMatrix ports the crash fault matrix to the native substrate
// at every stress size: for each victim, the crashed process must stall, the
// survivors must decide a common value anyway (wait-freedom), and the run
// must surface ErrStalled exactly like the simulated crash adversary.
func TestNativeCrashMatrix(t *testing.T) {
	for _, kind := range allKinds {
		for _, n := range nativeStressSizes(kind) {
			if testing.Short() && n > 4 {
				continue
			}
			for victim := 0; victim < n; victim++ {
				var out Outcome
				for attempt := int64(0); ; attempt++ {
					sub := sched.NewNative(sched.NativeOptions{
						CrashAt:      map[int]int64{victim: 10},
						PreemptEvery: 4,
						PreemptSeed:  int64(victim+1) + attempt*7919,
					})
					var err error
					out, err = Execute(kind, Config{}, ExecConfig{
						Inputs:    stressInputs(n, int64(victim)),
						Seed:      int64(victim),
						MaxSteps:  StepBudget(kind, n),
						Substrate: sub,
					})
					if err != nil {
						t.Fatalf("%v n=%d victim=%d: %v", kind, n, victim, err)
					}
					if !errors.Is(out.Err, sched.ErrStepBudget) || attempt == stressAttempts-1 {
						break
					}
					t.Logf("%v n=%d victim=%d: budget trip (scan-retry storm), retrying on a fresh preemption lane", kind, n, victim)
				}
				if out.Err != sched.ErrStalled {
					t.Fatalf("%v n=%d victim=%d: err=%v, want ErrStalled", kind, n, victim, out.Err)
				}
				if out.Decided[victim] {
					t.Fatalf("%v n=%d victim=%d: crashed process decided", kind, n, victim)
				}
				for i := range out.Decided {
					if i != victim && !out.Decided[i] {
						t.Fatalf("%v n=%d victim=%d: survivor %d undecided", kind, n, victim, i)
					}
				}
				if _, err := out.Agreement(); err != nil {
					t.Fatalf("%v n=%d victim=%d: %v", kind, n, victim, err)
				}
			}
		}
	}
}
