package core

import (
	"fmt"
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestPCTSweepFindsNoViolations sweeps PCT schedules (depths 1..4, many
// seeds) over the bounded protocol: PCT's guarantee means a depth-d schedule
// bug would be hit with probability >= 1/(n·Lᵈ⁻¹) per seed, so a clean sweep
// is considerably stronger evidence than uniform-random schedules alone.
// As a sanity check the same sweep at K=1 must rediscover the known
// consistency bug (see TestAblationK1BreaksConsistency).
func TestPCTSweepFindsNoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("PCT sweep skipped in -short mode")
	}
	const n = 4
	inputs := []int{0, 1, 1, 0}
	for depth := 1; depth <= 4; depth++ {
		depth := depth
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 40; seed++ {
				out, err := Execute(KindBounded, Config{B: 2}, ExecConfig{
					Inputs:    inputs,
					Seed:      seed,
					Adversary: sched.NewPCT(n, 50_000, depth, seed*101+int64(depth)),
					MaxSteps:  100_000_000,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if out.Err != nil {
					t.Fatalf("seed %d: run error: %v", seed, out.Err)
				}
				if !out.AllDecided() {
					t.Fatalf("seed %d: not all decided", seed)
				}
				if _, err := out.Agreement(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestPCTSweepRediscoversK1Bug: the same PCT sweep applied to the broken
// K=1 variant must find consistency violations — evidence the sweep has
// genuine bug-finding power, not just green-side bias.
func TestPCTSweepRediscoversK1Bug(t *testing.T) {
	if testing.Short() {
		t.Skip("PCT sweep skipped in -short mode")
	}
	const n = 4
	inputs := []int{0, 1, 0, 1}
	found := false
	for depth := 1; depth <= 4 && !found; depth++ {
		for seed := int64(0); seed < 60 && !found; seed++ {
			out, err := Execute(KindBounded, Config{K: 1, B: 2}, ExecConfig{
				Inputs:    inputs,
				Seed:      seed,
				Adversary: sched.NewPCT(n, 50_000, depth, seed*77+int64(depth)),
				MaxSteps:  100_000_000,
			})
			if err != nil || out.Err != nil {
				continue
			}
			if _, err := out.Agreement(); err != nil {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("PCT sweep failed to rediscover the K=1 consistency bug that random schedules find easily")
	}
}
