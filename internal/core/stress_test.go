package core

import (
	"fmt"
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestStressConsistencyAcrossSeedsAndAdversaries is the soak test: hundreds
// of seeded executions per protocol across the full adversary zoo, each
// checked for termination, consistency, and non-triviality (the decision is
// some process's input). Run time is a few seconds; skipped with -short.
func TestStressConsistencyAcrossSeedsAndAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	advs := []struct {
		name string
		mk   func(seed int64) sched.Adversary
	}{
		{"rr", func(int64) sched.Adversary { return sched.NewRoundRobin() }},
		{"random", func(s int64) sched.Adversary { return sched.NewRandom(s) }},
		{"lagger", func(s int64) sched.Adversary { return sched.NewLagger(int(s)%3, 24, s) }},
		{"quantum", func(s int64) sched.Adversary { return sched.NewQuantum(32) }},
		{"flipflop", func(s int64) sched.Adversary {
			return sched.FuncAdversary(func(w []int, step int64) int {
				if (step/32)%2 == 0 {
					return w[0]
				}
				return w[len(w)-1]
			})
		}},
	}
	inputSets := [][]int{
		{0, 0, 0},
		{1, 1, 1},
		{0, 1, 1},
		{1, 0, 1, 0},
		{1, 1, 0, 0, 1},
	}
	for _, kind := range allKinds {
		for _, adv := range advs {
			t.Run(fmt.Sprintf("%v/%s", kind, adv.name), func(t *testing.T) {
				t.Parallel()
				for seed := int64(0); seed < 25; seed++ {
					inputs := inputSets[seed%int64(len(inputSets))]
					out, err := Execute(kind, Config{B: 2}, ExecConfig{
						Inputs:    inputs,
						Seed:      seed,
						Adversary: adv.mk(seed*37 + 5),
						MaxSteps:  100_000_000,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if out.Err != nil {
						t.Fatalf("seed %d: run error %v (rounds %v)", seed, out.Err, out.Metrics.Rounds)
					}
					if !out.AllDecided() {
						t.Fatalf("seed %d: not all decided", seed)
					}
					v, err := out.Agreement()
					if err != nil {
						t.Fatalf("seed %d: %v (values %v, inputs %v)", seed, err, out.Values, inputs)
					}
					hasInput := false
					for _, in := range inputs {
						if in == v {
							hasInput = true
						}
					}
					if !hasInput {
						t.Fatalf("seed %d: decided %d, not among inputs %v (non-triviality)", seed, v, inputs)
					}
					allSame := true
					for _, in := range inputs {
						if in != inputs[0] {
							allSame = false
						}
					}
					if allSame && v != inputs[0] {
						t.Fatalf("seed %d: validity violated: inputs %v, decided %d", seed, inputs, v)
					}
				}
			})
		}
	}
}

// TestStressCrashQuorums crashes every proper subset pattern of a 4-process
// run; survivors must decide and agree, for every protocol.
func TestStressCrashQuorums(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for mask := 1; mask < 15; mask++ { // at least one crash, at least one survivor
				crashAt := map[int]int64{}
				for pid := 0; pid < 4; pid++ {
					if mask&(1<<pid) != 0 {
						crashAt[pid] = int64(100 * (pid + 1))
					}
				}
				for seed := int64(0); seed < 4; seed++ {
					out, err := Execute(kind, Config{B: 2}, ExecConfig{
						Inputs:    []int{0, 1, 1, 0},
						Seed:      seed,
						Adversary: sched.NewCrash(sched.NewRandom(seed+int64(mask)), crashAt),
						MaxSteps:  100_000_000,
					})
					if err != nil {
						t.Fatalf("mask %04b seed %d: %v", mask, seed, err)
					}
					for pid := 0; pid < 4; pid++ {
						if mask&(1<<pid) == 0 && !out.Decided[pid] {
							t.Fatalf("mask %04b seed %d: survivor %d undecided (err %v)", mask, seed, pid, out.Err)
						}
					}
					if _, err := out.Agreement(); err != nil {
						t.Fatalf("mask %04b seed %d: %v", mask, seed, err)
					}
				}
			}
		})
	}
}

// TestStressLargeN runs the bounded protocol at n=24 once per schedule to
// catch scaling assumptions (graph decode, slot arithmetic) that small-n
// tests would miss.
func TestStressLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const n = 24
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i % 2
	}
	for _, adv := range []sched.Adversary{sched.NewRoundRobin(), sched.NewRandom(3)} {
		out, err := Execute(KindBounded, Config{B: 1}, ExecConfig{
			Inputs: inputs, Seed: 11, Adversary: adv, MaxSteps: 400_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != nil {
			t.Fatalf("run error: %v", out.Err)
		}
		if !out.AllDecided() {
			t.Fatal("not all decided at n=24")
		}
		if _, err := out.Agreement(); err != nil {
			t.Fatal(err)
		}
	}
}
