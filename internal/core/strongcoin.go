package core

import (
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
)

// Oracle models the Chor–Israeli–Li atomic coin-flip primitive: for each
// round there is one globally shared random bit; the first process to flip
// for a round draws it, and every later flipper for the same round observes
// the same bit. One flip is one atomic step. (This is exactly the "powerful
// atomic coin flip operation" whose availability [CIL87] assumes and whose
// absence motivates the rest of the literature.)
type Oracle struct {
	fp   int64 // footprint key: every flip mutates the shared bit store
	mu   sync.Mutex
	bits map[int64]int8
	spc  *space.Meter
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{fp: sched.NewFootprintKey(), bits: make(map[int64]int8)}
}

// Flip returns the shared random bit of the given round, drawing it from the
// caller's randomness if this is the first flip for that round.
func (o *Oracle) Flip(p *sched.Proc, round int64) int8 {
	p.DeclareWrite(o.fp)
	p.Step()
	o.mu.Lock()
	defer o.mu.Unlock()
	if b, ok := o.bits[round]; ok {
		return b
	}
	b := int8(p.Rand().Intn(2))
	o.bits[round] = b
	o.spc.AddWords(space.LayerWalk, 1) // the bit store grows one slot per round
	return b
}

// Rounds returns how many distinct rounds have been flipped (a space
// accounting hook: the oracle's state grows with rounds).
func (o *Oracle) Rounds() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.bits)
}

// Reset forgets all drawn bits (between runs only; the map is kept to reuse
// its buckets).
func (o *Oracle) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for r := range o.bits {
		delete(o.bits, r)
	}
}

// StrongCoin is the CIL-style baseline: the unbounded round structure of
// AHUnbounded with the Oracle primitive replacing the random-walk shared
// coin. Because flippers of one round always agree, conflicts die in O(1)
// expected rounds regardless of the adversary.
type StrongCoin struct {
	cfg    Config
	mem    scan.Memory[UEntry]
	oracle *Oracle

	rounds   []pad.Int64
	flips    []pad.Int64
	maxRound atomic.Int64

	traceSink
}

// NewStrongCoin builds a strong-coin baseline instance. B and M are ignored.
func NewStrongCoin(cfg Config) (*StrongCoin, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factory := register.DirectFactory
	if cfg.UseBloomArrows {
		factory = register.BloomFactory
	}
	mem, err := scan.New[UEntry](cfg.MemKind, cfg.N, factory)
	if err != nil {
		return nil, err
	}
	return &StrongCoin{
		cfg:    cfg,
		mem:    mem,
		oracle: NewOracle(),
		rounds: make([]pad.Int64, cfg.N),
		flips:  make([]pad.Int64, cfg.N),
	}, nil
}

// Name implements Protocol.
func (s *StrongCoin) Name() string { return "strong-coin" }

// SetSink installs the observability sink on the protocol and the memory
// stack beneath it.
func (s *StrongCoin) SetSink(sk *obs.Sink) {
	s.setSink(sk)
	if ss, ok := s.mem.(interface{ SetSink(*obs.Sink) }); ok {
		ss.SetSink(sk)
	}
}

// SetMonitor installs the invariant monitor on the protocol and the memory
// stack beneath it, and provides the flight-recorder state snapshot.
func (s *StrongCoin) SetMonitor(m *audit.Monitor) {
	s.setMonitor(m)
	if sm, ok := s.mem.(interface{ SetMonitor(*audit.Monitor) }); ok {
		sm.SetMonitor(m)
	}
	m.SetStateFn(s.captureState)
}

// SetProfiler installs the step profiler on the protocol and the memory
// stack beneath it (nil detaches; see Bounded.SetProfiler).
func (s *StrongCoin) SetProfiler(f *prof.Profiler) {
	s.setProfiler(f)
	if sp, ok := s.mem.(interface{ SetProfiler(*prof.Profiler) }); ok {
		sp.SetProfiler(f)
	}
}

// SetNative switches the memory stack's register storage to the substrate's
// mode (see Bounded.SetNative). The oracle coin needs no switch: it is
// mutex-guarded and correct under real concurrency.
func (s *StrongCoin) SetNative(on bool) {
	if sn, ok := s.mem.(interface{ SetNative(bool) }); ok {
		sn.SetNative(on)
	}
}

// SetScanEpoch toggles the scan layer's dirty-bit epoch retry path (see
// Bounded.SetScanEpoch).
func (s *StrongCoin) SetScanEpoch(on bool) {
	if se, ok := s.mem.(interface{ SetEpoch(bool) }); ok {
		se.SetEpoch(on)
	}
}

// SetSpace installs the space meter (nil detaches). Entries carry only a
// preference and an explicit round number; the oracle plays the shared
// coin's role, so its one-bit-per-flipped-round store is metered online on
// the walk layer (see Oracle.Flip).
func (s *StrongCoin) SetSpace(m *space.Meter) {
	s.setSpace(m)
	if sp, ok := s.mem.(register.SpaceSetter); ok {
		sp.SetSpace(m, space.LayerRegister)
	}
	s.oracle.spc = m
	if m == nil {
		return
	}
	n := int64(s.cfg.N)
	m.AddWords(space.LayerCore, n*2) // pref + round
	m.DeclareDomain(space.LayerCore, 3)
	m.DeclareUnbounded(space.LayerCore) // explicit round numbers
	m.DeclareDomain(space.LayerWalk, 2) // oracle bits are 1 bit wide...
	// ...but their count is unbounded: AddWords in Flip records the growth.
}

// captureState snapshots the published state for flight dumps.
func (s *StrongCoin) captureState() audit.State {
	pk, ok := s.mem.(interface{ PeekSlot(int) UEntry })
	if !ok {
		return audit.State{}
	}
	n := s.cfg.N
	st := audit.State{Prefs: make([]int, n), Rounds: make([]int64, n)}
	for i := 0; i < n; i++ {
		e := pk.PeekSlot(i)
		st.Prefs[i] = int(e.Pref)
		st.Rounds[i] = e.Round
	}
	return st
}

// Reset restores the instance to its initial state for pooling (core.Arena),
// reporting whether the memory stack supported it. Call only between runs.
func (s *StrongCoin) Reset() bool {
	r, ok := s.mem.(interface{ Reset() bool })
	if !ok || !r.Reset() {
		return false
	}
	s.oracle.Reset()
	for i := range s.rounds {
		s.rounds[i].Store(0)
		s.flips[i].Store(0)
	}
	s.maxRound.Store(0)
	s.traceSink = traceSink{}
	return true
}

// Metrics implements Protocol.
func (s *StrongCoin) Metrics() Metrics {
	m := Metrics{
		Rounds:    make([]int64, s.cfg.N),
		CoinFlips: make([]int64, s.cfg.N),
		MaxRound:  s.maxRound.Load(),
	}
	for i := 0; i < s.cfg.N; i++ {
		m.Rounds[i] = s.rounds[i].Load()
		m.CoinFlips[i] = s.flips[i].Load()
	}
	return m
}

func (s *StrongCoin) inc(p *sched.Proc, st UEntry) UEntry {
	st.Round++ // value field (the strong-coin entry never grows a strip)
	s.spc.NoteValue(space.LayerCore, st.Round)
	s.rounds[p.ID()].Add(1)
	atomicMax(&s.maxRound, st.Round)
	s.sink.GaugeMax(obs.GaugeMaxRound, st.Round)
	s.emit(Event{Step: p.Now(), Pid: p.ID(), Kind: EvRoundAdvance, Round: st.Round})
	return st
}

// Run implements Protocol for one process.
func (s *StrongCoin) Run(p *sched.Proc, input int) int {
	i := p.ID()
	st := UEntry{Pref: int8(input)}
	span := obs.StartPhaseSpan(p.Steps())
	if s.prof.Enabled() {
		span.Observe(s.prof)
	}
	span.To(s.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
	st = s.inc(p, st)
	s.mem.Write(p, st)
	span.To(s.sink, obs.PhasePrefer, i, p.Now(), p.Steps())

	for {
		view := s.mem.Scan(p)
		normalizeUView(view)
		view[i] = st

		rmax, agree, v := uLeaders(view)

		if st.Pref != Bottom && st.Round == rmax {
			ok := true
			for j, ent := range view {
				if j == i || ent.Pref == st.Pref {
					continue
				}
				if ent.Round > st.Round-int64(s.cfg.K) {
					ok = false
					break
				}
			}
			if ok {
				span.To(s.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
				s.sink.Observe(obs.HistStepsToDecide, p.Steps())
				s.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: st.Round, Detail: prefString(st.Pref)})
				span.Finish(s.sink, i, p.Now(), p.Steps())
				return int(st.Pref)
			}
		}

		if agree {
			span.To(s.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st = s.inc(p, st)
			st.Pref = v
			s.mem.Write(p, st)
			span.To(s.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
			continue
		}

		// Conflict: withdraw first (the paper's ⊥ pause — see ExpLocal for
		// why it is load-bearing), then one atomic oracle flip resolves the
		// round's coin.
		if st.Pref != Bottom {
			st.Pref = Bottom // value field: no clone needed
			s.mem.Write(p, st)
			continue
		}
		span.To(s.sink, obs.PhaseCoin, i, p.Now(), p.Steps())
		bit := s.oracle.Flip(p, st.Round)
		s.flips[i].Add(1)
		s.emit(Event{Step: p.Now(), Pid: i, Kind: EvCoinFlip, Round: st.Round, Detail: "oracle=" + prefString(bit)})
		span.To(s.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
		st = s.inc(p, st)
		st.Pref = bit
		s.mem.Write(p, st)
		span.To(s.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
	}
}
