package core

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
)

// EventKind classifies protocol trace events.
type EventKind int

// Trace event kinds.
const (
	// EvStart: the process wrote its initial preference.
	EvStart EventKind = iota + 1
	// EvRoundAdvance: the process performed inc (entered a new round).
	EvRoundAdvance
	// EvPrefChange: the process's published preference changed.
	EvPrefChange
	// EvCoinFlip: one random-walk step on the shared coin.
	EvCoinFlip
	// EvCoinDecided: the process observed a decided shared coin.
	EvCoinDecided
	// EvDecide: the process decided and halted.
	EvDecide
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvStart:
		return "start"
	case EvRoundAdvance:
		return "round+"
	case EvPrefChange:
		return "pref"
	case EvCoinFlip:
		return "flip"
	case EvCoinDecided:
		return "coin"
	case EvDecide:
		return "decide"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one protocol-level occurrence during a run. It predates the
// unified obs.Event and is kept as the protocol-facing trace type; traceSink
// mirrors every emission onto the obs sink as a core-layer obs.Event.
type Event struct {
	// Step is the global scheduler step at emission.
	Step int64
	// Pid is the process the event belongs to.
	Pid int
	// Kind classifies the event.
	Kind EventKind
	// Round is the process's local round count at emission.
	Round int64
	// Detail is a short human-readable annotation (new preference, coin
	// outcome, decided value, ...).
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("step %7d  p%-2d r%-3d %-7s", e.Step, e.Pid, e.Round, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer receives protocol events. Under the step scheduler invocations are
// serialized; in free-running mode a Tracer must synchronize itself.
type Tracer func(Event)

// obsKind maps a legacy protocol event kind onto the unified obs kind.
func obsKind(k EventKind) obs.Kind {
	switch k {
	case EvStart:
		return obs.CoreStart
	case EvRoundAdvance:
		return obs.CoreRound
	case EvPrefChange:
		return obs.CorePref
	case EvCoinFlip:
		return obs.CoreFlip
	case EvCoinDecided:
		return obs.CoreCoin
	case EvDecide:
		return obs.CoreDecide
	default:
		panic(fmt.Sprintf("core: unmapped event kind %d", int(k)))
	}
}

// FromObs converts a core-layer obs event back to the legacy protocol event
// (used to adapt legacy Tracer consumers onto an obs recorder). Non-core
// events have no legacy equivalent; FromObs reports ok=false for them.
func FromObs(e obs.Event) (Event, bool) {
	var k EventKind
	switch e.Kind {
	case obs.CoreStart:
		k = EvStart
	case obs.CoreRound:
		k = EvRoundAdvance
	case obs.CorePref:
		k = EvPrefChange
	case obs.CoreFlip:
		k = EvCoinFlip
	case obs.CoreCoin:
		k = EvCoinDecided
	case obs.CoreDecide:
		k = EvDecide
	default:
		return Event{}, false
	}
	return Event{Step: e.Step, Pid: e.Pid, Kind: k, Round: e.Round, Detail: e.Detail}, true
}

// traceSink embeds the protocol-side trace plumbing: an optional legacy
// tracer, the unified observability sink, and the invariant monitor. Every
// protocol embeds it; protocol Resets clear it wholesale (traceSink{}), so a
// pooled instance never carries a stale tracer, sink or monitor.
type traceSink struct {
	tracer Tracer
	sink   *obs.Sink
	mon    *audit.Monitor
	prof   *prof.Profiler
	spc    *space.Meter
}

// SetTracer installs t (call before the run starts).
func (s *traceSink) SetTracer(t Tracer) { s.tracer = t }

// setSink installs the observability sink on the protocol level. Protocols
// expose SetSink methods that also propagate the sink to the memory stack
// beneath them.
func (s *traceSink) setSink(sk *obs.Sink) { s.sink = sk }

// Sink returns the installed observability sink (nil when none).
func (s *traceSink) Sink() *obs.Sink { return s.sink }

// setMonitor installs the invariant monitor on the protocol level. Protocols
// expose SetMonitor methods that also propagate the monitor to the memory
// stack and install their state-snapshot provider for flight dumps.
func (s *traceSink) setMonitor(m *audit.Monitor) { s.mon = m }

// Monitor returns the installed invariant monitor (nil when auditing is
// off).
func (s *traceSink) Monitor() *audit.Monitor { return s.mon }

// setProfiler installs the step profiler on the protocol level. Protocols
// expose SetProfiler methods that also propagate the profiler to the memory
// stack beneath them (the scan-layer blame hooks).
func (s *traceSink) setProfiler(f *prof.Profiler) { s.prof = f }

// Profiler returns the installed step profiler (nil when profiling is off).
func (s *traceSink) Profiler() *prof.Profiler { return s.prof }

// setSpace installs the space meter on the protocol level. Protocols expose
// SetSpace methods that also propagate the meter down the memory stack and
// declare their static word layout and value domains.
func (s *traceSink) setSpace(m *space.Meter) { s.spc = m }

// Space returns the installed space meter (nil when metering is off).
func (s *traceSink) Space() *space.Meter { return s.spc }

// tracing reports whether any trace consumer is attached. Emit sites use it
// to skip building Detail strings (the only allocating part of an event) when
// nobody will see them.
func (s *traceSink) tracing() bool { return s.tracer != nil || s.sink.Tracing() }

// emit fires a protocol event to the legacy tracer (if any) and mirrors it
// onto the obs sink, where it is counted in the registry and, with a recorder
// installed, recorded as a core-layer event.
func (s *traceSink) emit(e Event) {
	if s.tracer != nil {
		s.tracer(e)
	}
	s.sink.Emit(obs.Event{Step: e.Step, Pid: e.Pid, Kind: obsKind(e.Kind), Round: e.Round, Detail: e.Detail})
}

// prefString renders a preference value for trace details.
func prefString(p int8) string {
	if p == Bottom {
		return "⊥"
	}
	return fmt.Sprintf("%d", p)
}
