package core

import "fmt"

// EventKind classifies protocol trace events.
type EventKind int

// Trace event kinds.
const (
	// EvStart: the process wrote its initial preference.
	EvStart EventKind = iota + 1
	// EvRoundAdvance: the process performed inc (entered a new round).
	EvRoundAdvance
	// EvPrefChange: the process's published preference changed.
	EvPrefChange
	// EvCoinFlip: one random-walk step on the shared coin.
	EvCoinFlip
	// EvCoinDecided: the process observed a decided shared coin.
	EvCoinDecided
	// EvDecide: the process decided and halted.
	EvDecide
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvStart:
		return "start"
	case EvRoundAdvance:
		return "round+"
	case EvPrefChange:
		return "pref"
	case EvCoinFlip:
		return "flip"
	case EvCoinDecided:
		return "coin"
	case EvDecide:
		return "decide"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one protocol-level occurrence during a run.
type Event struct {
	// Step is the global scheduler step at emission.
	Step int64
	// Pid is the process the event belongs to.
	Pid int
	// Kind classifies the event.
	Kind EventKind
	// Round is the process's local round count at emission.
	Round int64
	// Detail is a short human-readable annotation (new preference, coin
	// outcome, decided value, ...).
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("step %7d  p%-2d r%-3d %-7s", e.Step, e.Pid, e.Round, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer receives protocol events. Under the step scheduler invocations are
// serialized; in free-running mode a Tracer must synchronize itself.
type Tracer func(Event)

// traceSink embeds an optional tracer into a protocol.
type traceSink struct {
	tracer Tracer
}

// SetTracer installs t (call before the run starts).
func (s *traceSink) SetTracer(t Tracer) { s.tracer = t }

// emit fires an event if a tracer is installed.
func (s *traceSink) emit(e Event) {
	if s.tracer != nil {
		s.tracer(e)
	}
}

// prefString renders a preference value for trace details.
func prefString(p int8) string {
	if p == Bottom {
		return "⊥"
	}
	return fmt.Sprintf("%d", p)
}
