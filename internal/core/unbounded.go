package core

import (
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/walk"
)

// UEntry is the register value of the Aspnes–Herlihy-style unbounded
// baseline: an explicit (unbounded) round number and an unbounded strip of
// unbounded coin counters, one slot per round. This is the memory layout the
// paper's contribution eliminates.
type UEntry struct {
	Pref  int8
	Round int64
	// Strip[r-1] is the process's contribution to the shared coin of round r.
	// It only ever grows.
	Strip []int
}

// Clone returns a deep copy safe to mutate.
func (e UEntry) Clone() UEntry {
	e.Strip = append([]int(nil), e.Strip...)
	return e
}

// AHUnbounded is the unbounded polynomial-time baseline ([AH88]-style): the
// same decide/adopt/flip structure as the bounded protocol, but rounds are
// plain integers and every round has its own fresh unbounded coin counter.
type AHUnbounded struct {
	cfg    Config
	params walk.Params // M unbounded
	mem    scan.Memory[UEntry]

	rounds   []pad.Int64
	flips    []pad.Int64
	maxAbs   atomic.Int64
	maxRound atomic.Int64
	stripLen atomic.Int64

	// coins[i] is pid i's reused coin-assembly scratch (owner-only access).
	coins [][]int

	traceSink
}

// NewAHUnbounded builds an unbounded-baseline instance. Config.M is ignored:
// counters are always unbounded.
func NewAHUnbounded(cfg Config) (*AHUnbounded, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := walk.Params{N: cfg.N, B: cfg.B} // M=0: unbounded
	if err := params.Validate(); err != nil {
		return nil, err
	}
	factory := register.DirectFactory
	if cfg.UseBloomArrows {
		factory = register.BloomFactory
	}
	mem, err := scan.New[UEntry](cfg.MemKind, cfg.N, factory)
	if err != nil {
		return nil, err
	}
	u := &AHUnbounded{
		cfg:    cfg,
		params: params,
		mem:    mem,
		rounds: make([]pad.Int64, cfg.N),
		flips:  make([]pad.Int64, cfg.N),
		coins:  make([][]int, cfg.N),
	}
	for i := range u.coins {
		u.coins[i] = make([]int, cfg.N)
	}
	return u, nil
}

// Name implements Protocol.
func (u *AHUnbounded) Name() string { return "ah-unbounded" }

// SetSink installs the observability sink on the protocol and the memory
// stack beneath it.
func (u *AHUnbounded) SetSink(s *obs.Sink) {
	u.setSink(s)
	if ss, ok := u.mem.(interface{ SetSink(*obs.Sink) }); ok {
		ss.SetSink(s)
	}
}

// SetMonitor installs the invariant monitor on the protocol and the memory
// stack beneath it, and provides the flight-recorder state snapshot. The
// coin-range probe stays dormant here (counters are genuinely unbounded) but
// the scan, register and end-of-instance probes all apply.
func (u *AHUnbounded) SetMonitor(m *audit.Monitor) {
	u.setMonitor(m)
	if sm, ok := u.mem.(interface{ SetMonitor(*audit.Monitor) }); ok {
		sm.SetMonitor(m)
	}
	m.SetStateFn(u.captureState)
}

// SetProfiler installs the step profiler on the protocol and the memory
// stack beneath it (nil detaches; see Bounded.SetProfiler).
func (u *AHUnbounded) SetProfiler(f *prof.Profiler) {
	u.setProfiler(f)
	if sp, ok := u.mem.(interface{ SetProfiler(*prof.Profiler) }); ok {
		sp.SetProfiler(f)
	}
}

// SetNative switches the memory stack's register storage to the substrate's
// mode (see Bounded.SetNative).
func (u *AHUnbounded) SetNative(on bool) {
	if sn, ok := u.mem.(interface{ SetNative(bool) }); ok {
		sn.SetNative(on)
	}
}

// SetScanEpoch toggles the scan layer's dirty-bit epoch retry path (see
// Bounded.SetScanEpoch).
func (u *AHUnbounded) SetScanEpoch(on bool) {
	if se, ok := u.mem.(interface{ SetEpoch(bool) }); ok {
		se.SetEpoch(on)
	}
}

// SetSpace installs the space meter (nil detaches). The static layout is
// pref + round per process (core); everything else — the explicit round
// number, the per-round coin counters and the strip itself — is unbounded,
// which is exactly what the meters exist to show: inc adds strip words
// online as the strip grows, and the round/counter magnitudes are measured
// at their write sites.
func (u *AHUnbounded) SetSpace(m *space.Meter) {
	u.setSpace(m)
	if sp, ok := u.mem.(register.SpaceSetter); ok {
		sp.SetSpace(m, space.LayerRegister)
	}
	if m == nil {
		return
	}
	n := int64(u.cfg.N)
	m.AddWords(space.LayerCore, n*2) // pref + round
	m.DeclareDomain(space.LayerCore, 3)
	m.DeclareUnbounded(space.LayerCore)  // explicit round numbers
	m.DeclareUnbounded(space.LayerWalk)  // no ±(M+1) clamp
	m.DeclareUnbounded(space.LayerStrip) // one slot per round, forever
}

// captureState snapshots the published state for flight dumps.
func (u *AHUnbounded) captureState() audit.State {
	pk, ok := u.mem.(interface{ PeekSlot(int) UEntry })
	if !ok {
		return audit.State{}
	}
	n := u.cfg.N
	st := audit.State{
		Prefs:  make([]int, n),
		Rounds: make([]int64, n),
		Coins:  make([]int, n),
		Strips: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		e := pk.PeekSlot(i)
		st.Prefs[i] = int(e.Pref)
		st.Rounds[i] = e.Round
		if e.Round >= 1 && int(e.Round) <= len(e.Strip) {
			st.Coins[i] = e.Strip[e.Round-1]
		}
		st.Strips[i] = append([]int(nil), e.Strip...)
	}
	return st
}

// Reset restores the instance to its initial state for pooling (core.Arena),
// reporting whether the memory stack supported it. Call only between runs.
func (u *AHUnbounded) Reset() bool {
	r, ok := u.mem.(interface{ Reset() bool })
	if !ok || !r.Reset() {
		return false
	}
	for i := range u.rounds {
		u.rounds[i].Store(0)
		u.flips[i].Store(0)
	}
	u.maxAbs.Store(0)
	u.maxRound.Store(0)
	u.stripLen.Store(0)
	u.traceSink = traceSink{}
	return true
}

// PeekEntry returns the current register value of process j without a
// scheduler step — a hook for protocol-aware ("strong") adversaries and
// metrics. Returns the zero entry if the memory implementation does not
// support peeking.
func (u *AHUnbounded) PeekEntry(j int) UEntry {
	if p, ok := u.mem.(interface{ PeekSlot(int) UEntry }); ok {
		return p.PeekSlot(j)
	}
	return UEntry{}
}

// Metrics implements Protocol.
func (u *AHUnbounded) Metrics() Metrics {
	m := Metrics{
		Rounds:     make([]int64, u.cfg.N),
		CoinFlips:  make([]int64, u.cfg.N),
		MaxAbsCoin: u.maxAbs.Load(),
		MaxRound:   u.maxRound.Load(),
		StripLen:   u.stripLen.Load(),
	}
	for i := 0; i < u.cfg.N; i++ {
		m.Rounds[i] = u.rounds[i].Load()
		m.CoinFlips[i] = u.flips[i].Load()
	}
	return m
}

// coinValue sums every process's contribution to round r's coin, assembling
// the counter array into pid i's reused scratch.
func (u *AHUnbounded) coinValue(i int, view []UEntry, r int64) walk.Outcome {
	c := u.coins[i]
	for j, ent := range view {
		if int(r) <= len(ent.Strip) {
			c[j] = ent.Strip[r-1]
		} else {
			c[j] = 0
		}
	}
	return u.params.Value(c)
}

// leaders returns the maximal round and whether all processes at it share one
// non-Bottom preference (and that preference).
func uLeaders(view []UEntry) (rmax int64, agree bool, v int8) {
	for _, ent := range view {
		if ent.Round > rmax {
			rmax = ent.Round
		}
	}
	v = Bottom
	for _, ent := range view {
		if ent.Round != rmax {
			continue
		}
		if ent.Pref == Bottom {
			return rmax, false, Bottom
		}
		if v == Bottom {
			v = ent.Pref
		} else if v != ent.Pref {
			return rmax, false, Bottom
		}
	}
	return rmax, v != Bottom, v
}

// inc advances the process's round, growing the strip with a fresh counter.
func (u *AHUnbounded) inc(p *sched.Proc, st UEntry) UEntry {
	st = st.Clone()
	st.Round++
	for int64(len(st.Strip)) < st.Round {
		st.Strip = append(st.Strip, 0)
		u.spc.AddWords(space.LayerStrip, 1) // online growth: the unbounded strip
	}
	u.spc.NoteValue(space.LayerCore, st.Round)
	u.rounds[p.ID()].Add(1)
	atomicMax(&u.maxRound, st.Round)
	atomicMax(&u.stripLen, int64(len(st.Strip)))
	u.sink.GaugeMax(obs.GaugeMaxRound, st.Round)
	u.sink.GaugeMax(obs.GaugeMaxStripLen, int64(len(st.Strip)))
	u.emit(Event{Step: p.Now(), Pid: p.ID(), Kind: EvRoundAdvance, Round: st.Round})
	return st
}

// Run implements Protocol for one process.
func (u *AHUnbounded) Run(p *sched.Proc, input int) int {
	i := p.ID()
	st := UEntry{Pref: int8(input)}
	span := obs.StartPhaseSpan(p.Steps())
	if u.prof.Enabled() {
		span.Observe(u.prof)
	}
	span.To(u.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
	st = u.inc(p, st)
	u.mem.Write(p, st)
	u.emit(Event{Step: p.Now(), Pid: i, Kind: EvStart, Round: st.Round, Detail: "pref=" + prefString(st.Pref)})
	span.To(u.sink, obs.PhasePrefer, i, p.Now(), p.Steps())

	for {
		view := u.mem.Scan(p)
		normalizeUView(view)
		view[i] = st

		rmax, agree, v := uLeaders(view)

		// Decide: leading, and every disagreer at least K rounds behind.
		if st.Pref != Bottom && st.Round == rmax {
			ok := true
			for j, ent := range view {
				if j == i || ent.Pref == st.Pref {
					continue
				}
				if ent.Round > st.Round-int64(u.cfg.K) {
					ok = false
					break
				}
			}
			if ok {
				span.To(u.sink, obs.PhaseDecide, i, p.Now(), p.Steps())
				u.sink.Observe(obs.HistStepsToDecide, p.Steps())
				u.emit(Event{Step: p.Now(), Pid: i, Kind: EvDecide, Round: st.Round, Detail: prefString(st.Pref)})
				span.Finish(u.sink, i, p.Now(), p.Steps())
				return int(st.Pref)
			}
		}

		// Adopt the leaders' common value.
		if agree {
			span.To(u.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st = u.inc(p, st)
			st.Pref = v
			u.mem.Write(p, st)
			span.To(u.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
			continue
		}

		// Withdraw a conflicting preference.
		if st.Pref != Bottom {
			st.Pref = Bottom // value field: no clone needed
			u.mem.Write(p, st)
			continue
		}

		// Drive the coin of the current round.
		switch cv := u.coinValue(i, view, st.Round); cv {
		case walk.Undecided:
			span.To(u.sink, obs.PhaseCoin, i, p.Now(), p.Steps())
			st = st.Clone()
			st.Strip[st.Round-1] = u.params.StepCounterAudited(st.Strip[st.Round-1], p, u.sink, u.mon)
			u.spc.NoteValue(space.LayerWalk, int64(st.Strip[st.Round-1]))
			u.flips[i].Add(1)
			atomicMax(&u.maxAbs, int64(abs(st.Strip[st.Round-1])))
			u.sink.GaugeMax(obs.GaugeMaxAbsCoin, int64(abs(st.Strip[st.Round-1])))
			u.mem.Write(p, st)
			span.To(u.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
		default:
			span.To(u.sink, obs.PhaseStrip, i, p.Now(), p.Steps())
			st = u.inc(p, st)
			st.Pref = outcomeBit(cv)
			u.mem.Write(p, st)
			span.To(u.sink, obs.PhasePrefer, i, p.Now(), p.Steps())
		}
	}
}
