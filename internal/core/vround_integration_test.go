package core

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/vround"
)

// TestVirtualRoundsOnRealExecutions replays the §6.1 analysis on live runs of
// the bounded protocol: feed every scan (in serialization order) to the
// virtual-round tracker and check the properties the correctness proof needs:
//
//   - virtual rounds never decrease (§6.1),
//   - every process decides at a virtual round >= 1,
//   - Lemma 6.5: once some process has decided in virtual round r, no process
//     is ever observed in a round larger than r + 2.
func TestVirtualRoundsOnRealExecutions(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		const n = 4
		proto, err := NewBounded(Config{N: n, B: 2})
		if err != nil {
			t.Fatal(err)
		}
		tracker := vround.New(n, proto.Config().K)
		prev := tracker.Rounds()
		firstDecision := int64(-1)
		maxAfterDecision := int64(0)
		var observeErr error
		proto.OnScan = func(pid int, view []Entry) {
			if observeErr != nil {
				return
			}
			if err := tracker.Observe(edgeMatrix(view)); err != nil {
				observeErr = err
				return
			}
			cur := tracker.Rounds()
			for j := range cur {
				if cur[j] < prev[j] {
					observeErr = errDecreased(j, prev[j], cur[j])
					return
				}
			}
			prev = cur
			if firstDecision >= 0 && tracker.MaxRound() > maxAfterDecision {
				maxAfterDecision = tracker.MaxRound()
			}
		}

		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = i % 2
		}
		decideRounds := make([]int64, n)
		_, err = sched.Run(sched.Config{
			N: n, Seed: seed, Adversary: sched.NewRandom(seed*3 + 1), MaxSteps: 50_000_000,
		}, func(p *sched.Proc) {
			proto.Run(p, inputs[p.ID()])
			// Decision happens immediately after the deciding scan; capture
			// the decider's virtual round (serialized under the scheduler).
			r := tracker.Round(p.ID())
			decideRounds[p.ID()] = r
			if firstDecision < 0 || r < firstDecision {
				firstDecision = r
				maxAfterDecision = tracker.MaxRound()
			}
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if observeErr != nil {
			t.Fatalf("seed %d: %v", seed, observeErr)
		}
		for i, r := range decideRounds {
			if r < 1 {
				t.Fatalf("seed %d: process %d decided at virtual round %d", seed, i, r)
			}
		}
		if firstDecision >= 0 && maxAfterDecision > firstDecision+2 {
			t.Fatalf("seed %d: Lemma 6.5 violated: first decision at round %d, later round %d observed",
				seed, firstDecision, maxAfterDecision)
		}
	}
}

func errDecreased(pid int, from, to int64) error {
	return &vroundErr{pid: pid, from: from, to: to}
}

type vroundErr struct {
	pid      int
	from, to int64
}

func (e *vroundErr) Error() string {
	return "virtual round decreased"
}
