package harness

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
)

// e11Ablations sweeps the design choices DESIGN.md calls out:
//
//   - the rounds-strip constant K (the paper fixes K=2; K=1 breaks
//     consistency, K>2 only costs),
//   - the coin barrier B (small B: frequent coin disagreement, more rounds;
//     large B: longer walks — a U-shaped total-cost curve),
//   - the snapshot implementation (bounded arrows vs unbounded seqsnap),
//   - the 2W2R register substrate (direct atomic model vs Bloom's
//     construction from SWMR registers).
func e11Ablations() Experiment {
	return Experiment{
		ID: "E11", Title: "design-choice ablations (K, B, memory, registers)", PaperRef: "§4-§5 design choices",
		Run: func(o RunOpts) []*Table {
			const n = 4
			trials := o.trials(40)
			var tables []*Table

			// --- K sweep: consistency and cost ---
			kt := &Table{
				Title:   fmt.Sprintf("rounds-strip constant K (n=%d, %d trials per K, random adversary)", n, trials),
				Columns: []string{"K", "consistency violations", "steps mean"},
			}
			ks := []int{1, 2, 3}
			if o.Quick {
				ks = []int{1, 2}
			}
			for _, k := range ks {
				violations := 0
				var steps []float64
				for s := 0; s < trials; s++ {
					out, err := consensusTrial(o, core.KindBounded, core.Config{K: k, B: 2},
						mixedInputs(n), o.Seed+int64(s*7+1), sched.NewRandom(int64(s*3+1)), 50_000_000)
					if err != nil || out.Err != nil {
						continue
					}
					if _, err := out.Agreement(); err != nil {
						violations++
						continue
					}
					steps = append(steps, float64(out.Sched.Steps))
				}
				kt.Add(k, violations, Mean(steps))
			}
			kt.Note("K=1 decides while a disagreer is only one round back and breaks consistency; the paper's K=2 is the minimum safe value.")
			tables = append(tables, kt)

			// --- B sweep: the coin trade-off ---
			bt := &Table{
				Title:   fmt.Sprintf("coin barrier B (n=%d, %d trials per B, lockstep schedule)", n, trials),
				Columns: []string{"B", "steps mean", "coin flips mean", "rounds mean"},
			}
			bs := []int{1, 2, 4, 8, 16}
			if o.Quick {
				bs = []int{1, 4}
			}
			for _, b := range bs {
				var steps, flips, rounds []float64
				for s := 0; s < trials; s++ {
					out, err := consensusTrial(o, core.KindBounded, core.Config{B: b},
						mixedInputs(n), o.Seed+int64(s*11+2), sched.NewRoundRobin(), 50_000_000)
					if err != nil || out.Err != nil {
						continue
					}
					steps = append(steps, float64(out.Sched.Steps))
					var f int64
					for _, v := range out.Metrics.CoinFlips {
						f += v
					}
					flips = append(flips, float64(f))
					rounds = append(rounds, maxRounds(out))
				}
				bt.Add(b, Mean(steps), Mean(flips), Mean(rounds))
			}
			bt.Note("larger B lengthens each walk but rarely buys fewer rounds at this scale — the paper's analysis needs B = Θ(1) only.")
			tables = append(tables, bt)

			// --- substrate: memory and register implementations ---
			st := &Table{
				Title:   fmt.Sprintf("substrate variants (n=%d, %d trials each, random adversary)", n, trials),
				Columns: []string{"variant", "steps mean", "steps p95"},
			}
			variants := []struct {
				name string
				cfg  core.Config
			}{
				{"arrow memory + direct 2W2R", core.Config{B: 2}},
				{"arrow memory + Bloom 2W2R", core.Config{B: 2, UseBloomArrows: true}},
				{"seqsnap memory (unbounded)", core.Config{B: 2, MemKind: scan.KindSeqSnap}},
				{"waitfree snapshot (Afek et al.)", core.Config{B: 2, MemKind: scan.KindWaitFree}},
				{"arrow + fast-decide (footnote 5)", core.Config{B: 2, FastDecide: true}},
			}
			for _, v := range variants {
				var steps []float64
				for s := 0; s < trials; s++ {
					out, err := consensusTrial(o, core.KindBounded, v.cfg,
						mixedInputs(n), o.Seed+int64(s*13+3), sched.NewRandom(int64(s*5+2)), 50_000_000)
					if err != nil || out.Err != nil {
						continue
					}
					steps = append(steps, float64(out.Sched.Steps))
				}
				st.Add(v.name, Mean(steps), Percentile(steps, 95))
			}
			st.Note("Bloom arrows double each arrow operation's step cost; the unbounded snapshot is cheaper per scan but pays with unbounded registers (E6).")
			tables = append(tables, st)

			return tables
		},
	}
}
