package harness

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
)

// e11Ablations sweeps the design choices DESIGN.md calls out:
//
//   - the rounds-strip constant K (the paper fixes K=2; K=1 breaks
//     consistency, K>2 only costs),
//   - the coin barrier B (small B: frequent coin disagreement, more rounds;
//     large B: longer walks — a U-shaped total-cost curve),
//   - the snapshot implementation (bounded arrows vs unbounded seqsnap),
//   - the 2W2R register substrate (direct atomic model vs Bloom's
//     construction from SWMR registers).
func e11Ablations() Experiment {
	return Experiment{
		ID: "E11", Title: "design-choice ablations (K, B, memory, registers)", PaperRef: "§4-§5 design choices",
		Run: func(o RunOpts) []*Table {
			const n = 4
			trials := o.trials(40)
			var tables []*Table

			// --- K sweep: consistency and cost ---
			kt := &Table{
				Title:   fmt.Sprintf("rounds-strip constant K (n=%d, %d trials per K, random adversary)", n, trials),
				Columns: []string{"K", "consistency violations", "steps mean"},
			}
			ks := []int{1, 2, 3}
			if o.Quick {
				ks = []int{1, 2}
			}
			for _, k := range ks {
				k := k
				outs := runTrials(o, trials, func(s int) core.Instance {
					return core.Instance{
						Kind: core.KindBounded, Cfg: core.Config{K: k, B: 2}, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(s*7+1), Adversary: sched.NewRandom(int64(s*3 + 1)), MaxSteps: 50_000_000,
					}
				})
				violations := 0
				var steps []float64
				for _, bo := range outs {
					if bo.Err != nil || bo.Out.Err != nil {
						continue
					}
					if _, err := bo.Out.Agreement(); err != nil {
						violations++
						continue
					}
					steps = append(steps, float64(bo.Out.Sched.Steps))
				}
				kt.Add(k, violations, Mean(steps))
			}
			kt.Note("K=1 decides while a disagreer is only one round back and breaks consistency; the paper's K=2 is the minimum safe value.")
			tables = append(tables, kt)

			// --- B sweep: the coin trade-off ---
			bt := &Table{
				Title:   fmt.Sprintf("coin barrier B (n=%d, %d trials per B, lockstep schedule)", n, trials),
				Columns: []string{"B", "steps mean", "coin flips mean", "rounds mean"},
			}
			bs := []int{1, 2, 4, 8, 16}
			if o.Quick {
				bs = []int{1, 4}
			}
			for _, b := range bs {
				b := b
				outs := runTrials(o, trials, func(s int) core.Instance {
					return core.Instance{
						Kind: core.KindBounded, Cfg: core.Config{B: b}, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(s*11+2), Adversary: sched.NewRoundRobin(), MaxSteps: 50_000_000,
					}
				})
				var steps, flips, rounds []float64
				for _, bo := range outs {
					if bo.Err != nil || bo.Out.Err != nil {
						continue
					}
					steps = append(steps, float64(bo.Out.Sched.Steps))
					var f int64
					for _, v := range bo.Out.Metrics.CoinFlips {
						f += v
					}
					flips = append(flips, float64(f))
					rounds = append(rounds, maxRounds(bo.Out))
				}
				bt.Add(b, Mean(steps), Mean(flips), Mean(rounds))
			}
			bt.Note("larger B lengthens each walk but rarely buys fewer rounds at this scale — the paper's analysis needs B = Θ(1) only.")
			tables = append(tables, bt)

			// --- substrate: memory and register implementations ---
			st := &Table{
				Title:   fmt.Sprintf("substrate variants (n=%d, %d trials each, random adversary)", n, trials),
				Columns: []string{"variant", "steps mean", "steps p95"},
			}
			variants := []struct {
				name string
				cfg  core.Config
			}{
				{"arrow memory + direct 2W2R", core.Config{B: 2}},
				{"arrow memory + Bloom 2W2R", core.Config{B: 2, UseBloomArrows: true}},
				{"seqsnap memory (unbounded)", core.Config{B: 2, MemKind: scan.KindSeqSnap}},
				{"waitfree snapshot (Afek et al.)", core.Config{B: 2, MemKind: scan.KindWaitFree}},
				{"arrow + fast-decide (footnote 5)", core.Config{B: 2, FastDecide: true}},
			}
			for _, v := range variants {
				v := v
				outs := runTrials(o, trials, func(s int) core.Instance {
					return core.Instance{
						Kind: core.KindBounded, Cfg: v.cfg, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(s*13+3), Adversary: sched.NewRandom(int64(s*5 + 2)), MaxSteps: 50_000_000,
					}
				})
				var steps []float64
				for _, bo := range outs {
					if bo.Err != nil || bo.Out.Err != nil {
						continue
					}
					steps = append(steps, float64(bo.Out.Sched.Steps))
				}
				st.Add(v.name, Mean(steps), Percentile(steps, 95))
			}
			st.Note("Bloom arrows double each arrow operation's step cost; the unbounded snapshot is cheaper per scan but pays with unbounded registers (E6).")
			tables = append(tables, st)

			return tables
		},
	}
}
