package harness

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/walk"
)

// coinTrial runs one standalone shared-coin instance and reports whether all
// processes agreed, the total walk steps, and whether any counter overflowed.
func coinTrial(params walk.Params, seed int64) (agreed bool, steps int64, overflowed bool, err error) {
	coin, err := walk.NewSharedCoin(params)
	if err != nil {
		return false, 0, false, err
	}
	outcomes := make([]walk.Outcome, params.N)
	_, err = sched.Run(sched.Config{
		N: params.N, Seed: seed,
		Adversary: sched.NewRandom(seed ^ 0x9bdcf),
		MaxSteps:  200_000_000,
	}, func(p *sched.Proc) {
		outcomes[p.ID()] = coin.Flip(p)
	})
	if err != nil {
		return false, 0, false, err
	}
	agreed = true
	for _, o := range outcomes {
		if o != outcomes[0] {
			agreed = false
		}
	}
	overflowed = params.Bounded() && coin.MaxAbsCounter() > params.M
	return agreed, coin.TotalWalkSteps(), overflowed, nil
}

// e1CoinAgreement measures the empirical coin disagreement probability as a
// function of the barrier multiplier B (Lemma 3.1: bounded by (n-1)/(2B)).
func e1CoinAgreement() Experiment {
	return Experiment{
		ID: "E1", Title: "shared-coin agreement vs barrier B", PaperRef: "Lemma 3.1",
		Run: func(o RunOpts) []*Table {
			const n = 8
			bs := []int{1, 2, 4, 8, 16}
			if o.Quick {
				bs = []int{1, 4}
			}
			trials := o.trials(200)
			t := &Table{
				Title:   fmt.Sprintf("n=%d, %d trials per B, random adversary", n, trials),
				Columns: []string{"B", "disagree(meas)", "bound (n-1)/2B", "within bound"},
			}
			for _, b := range bs {
				params := walk.Params{N: n, B: b}
				params.M = params.DefaultM()
				dis := 0
				for k := 0; k < trials; k++ {
					agreed, _, _, err := coinTrial(params, o.Seed+int64(1000*b+k))
					if err != nil {
						t.Note("B=%d trial %d failed: %v", b, k, err)
						continue
					}
					if !agreed {
						dis++
					}
				}
				meas := float64(dis) / float64(trials)
				bound := params.TheoreticalDisagreement()
				t.Add(b, meas, bound, meas <= bound)
			}
			t.Note("Lemma 3.1 is an upper bound on adversarial schedules; random schedules should sit well inside it.")

			// Second table: a protocol-aware ("strong") adversary that tries
			// to manufacture disagreement — it rushes a designated victim to
			// scan whenever the walk hovers at the barrier, so the victim
			// decides on a fleeting crossing while everyone else keeps
			// walking and may exit through the other barrier.
			adv := &Table{
				Title:   fmt.Sprintf("n=%d, %d trials per B, barrier-chasing strong adversary", n, trials),
				Columns: []string{"B", "disagree(meas)", "bound (n-1)/2B", "within bound"},
			}
			for _, b := range bs {
				params := walk.Params{N: n, B: b}
				params.M = params.DefaultM()
				dis := 0
				for k := 0; k < trials; k++ {
					if strongAdversaryDisagrees(params, o.Seed+int64(9000*b+k)) {
						dis++
					}
				}
				meas := float64(dis) / float64(trials)
				bound := params.TheoreticalDisagreement()
				adv.Add(b, meas, bound, meas <= bound)
			}
			adv.Note("disagreement becomes visible and shrinks as B grows — Lemma 3.1's trade-off.")
			return []*Table{t, adv}
		},
	}
}

// strongAdversaryDisagrees runs one coin instance under a barrier-chasing
// adversary and reports whether processes disagreed on the outcome.
func strongAdversaryDisagrees(params walk.Params, seed int64) bool {
	coin, err := walk.NewSharedCoin(params)
	if err != nil {
		return false
	}
	outcomes := make([]walk.Outcome, params.N)
	const victim = 0
	barrier := params.B * params.N
	adv := sched.FuncAdversary(func(waiting []int, step int64) int {
		sum := coin.WalkValuePeek()
		near := sum >= barrier-1 || sum <= -(barrier-1)
		if near && outcomes[victim] == walk.Undecided {
			for _, pid := range waiting {
				if pid == victim {
					return pid
				}
			}
		}
		// Otherwise keep the walk moving without the victim when possible.
		for i := len(waiting) - 1; i >= 0; i-- {
			if waiting[i] != victim {
				return waiting[(int(step)+i)%len(waiting)]
			}
		}
		return waiting[0]
	})
	_, err = sched.Run(sched.Config{N: params.N, Seed: seed, Adversary: adv, MaxSteps: 200_000_000},
		func(p *sched.Proc) { outcomes[p.ID()] = coin.Flip(p) })
	if err != nil {
		return false
	}
	for _, o := range outcomes {
		if o != outcomes[0] {
			return true
		}
	}
	return false
}

// e2CoinSteps measures expected total walk steps versus n (Lemma 3.2:
// (B+1)·n²) and fits the growth exponent.
func e2CoinSteps() Experiment {
	return Experiment{
		ID: "E2", Title: "shared-coin walk steps vs n", PaperRef: "Lemma 3.2",
		Run: func(o RunOpts) []*Table {
			const b = 3
			ns := []int{2, 4, 8, 16, 32}
			if o.Quick {
				ns = []int{2, 4, 8}
			}
			trials := o.trials(25)
			t := &Table{
				Title:   fmt.Sprintf("B=%d, %d trials per n", b, trials),
				Columns: []string{"n", "steps(meas mean)", "steps(meas p95)", "theory (B+1)^2 n^2", "ratio"},
			}
			var xs, ys []float64
			for _, n := range ns {
				params := walk.Params{N: n, B: b}
				params.M = params.DefaultM()
				var samples []float64
				for k := 0; k < trials; k++ {
					_, steps, _, err := coinTrial(params, o.Seed+int64(100*n+k))
					if err != nil {
						t.Note("n=%d trial %d failed: %v", n, k, err)
						continue
					}
					samples = append(samples, float64(steps))
				}
				mean := Mean(samples)
				theory := params.TheoreticalExpectedSteps()
				t.Add(n, mean, Percentile(samples, 95), theory, mean/theory)
				xs = append(xs, float64(n))
				ys = append(ys, mean)
			}
			exp, _ := FitPowerLaw(xs, ys)
			t.Note("fitted growth exponent: %.2f (theory: 2.0)", exp)
			return []*Table{t}
		},
	}
}

// e3Overflow measures how often bounded counters saturate (forcing heads) as
// a function of the bound M (Lemmas 3.3/3.4: vanishing for M >> barrier).
func e3Overflow() Experiment {
	return Experiment{
		ID: "E3", Title: "counter-overflow frequency vs bound M", PaperRef: "Lemmas 3.3/3.4",
		Run: func(o RunOpts) []*Table {
			const n, b = 4, 2
			barrier := b * n
			ms := []int{barrier, 2 * barrier, 4 * barrier, barrier * barrier, 4 * barrier * barrier}
			if o.Quick {
				ms = []int{barrier, 4 * barrier}
			}
			trials := o.trials(200)
			t := &Table{
				Title:   fmt.Sprintf("n=%d B=%d (barrier %d), %d trials per M", n, b, barrier, trials),
				Columns: []string{"M", "overflow freq", "heads freq", "disagree freq"},
			}
			for _, m := range ms {
				params := walk.Params{N: n, B: b, M: m}
				over, heads, dis := 0, 0, 0
				for k := 0; k < trials; k++ {
					coin, err := walk.NewSharedCoin(params)
					if err != nil {
						t.Note("M=%d: %v", m, err)
						break
					}
					outcomes := make([]walk.Outcome, n)
					_, err = sched.Run(sched.Config{
						N: n, Seed: o.Seed + int64(17*m+k),
						Adversary: sched.NewRandom(int64(m + k)),
						MaxSteps:  200_000_000,
					}, func(p *sched.Proc) { outcomes[p.ID()] = coin.Flip(p) })
					if err != nil {
						t.Note("M=%d trial %d: %v", m, k, err)
						continue
					}
					if coin.MaxAbsCounter() > m {
						over++
					}
					agreedHeads := true
					for _, oc := range outcomes {
						if oc != outcomes[0] {
							dis++
							agreedHeads = false
							break
						}
					}
					if agreedHeads && outcomes[0] == walk.Heads {
						heads++
					}
				}
				t.Add(m, float64(over)/float64(trials), float64(heads)/float64(trials), float64(dis)/float64(trials))
			}
			t.Note("overflow frequency must vanish as M grows past the barrier; heads freq should approach 1/2.")
			return []*Table{t}
		},
	}
}
