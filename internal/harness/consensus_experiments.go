package harness

import (
	"errors"
	"fmt"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/sched"
)

// mixedInputs returns alternating binary inputs of length n.
func mixedInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i % 2
	}
	return in
}

// runTrials executes m trials through the batch engine at the run's
// parallelism, returning outcomes in trial order. build(k) is called serially
// in k order before anything executes, so a trial's seed and adversary cannot
// depend on scheduling — which is what keeps experiment output identical at
// any worker count. Parallel=1 is the serial special case (one inline worker
// whose arena pools protocol state across trials).
func runTrials(o RunOpts, m int, build func(k int) core.Instance) []core.BatchOutcome {
	insts := make([]core.Instance, m)
	for k := range insts {
		insts[k] = build(k)
	}
	return core.RunBatch(o.Parallel, o.Sink, insts)
}

// maxRounds returns the largest per-process round count in an outcome.
func maxRounds(out core.Outcome) float64 {
	var m int64
	for _, r := range out.Metrics.Rounds {
		if r > m {
			m = r
		}
	}
	return float64(m)
}

// e4Rounds measures the distribution of rounds until global decision versus
// n (§6.3: constant expected rounds, independent of n).
func e4Rounds() Experiment {
	return Experiment{
		ID: "E4", Title: "rounds to decision vs n", PaperRef: "§6.3 (constant expected rounds)",
		Run: func(o RunOpts) []*Table {
			ns := []int{2, 4, 8, 16}
			if o.Quick {
				ns = []int{2, 4}
			}
			trials := o.trials(60)
			t := &Table{
				Title:   fmt.Sprintf("bounded protocol, mixed inputs, random adversary, %d trials per n", trials),
				Columns: []string{"n", "rounds mean", "rounds p95", "rounds max", "undecided runs"},
			}
			for _, n := range ns {
				n := n
				outs := runTrials(o, trials, func(k int) core.Instance {
					return core.Instance{
						Kind: core.KindBounded, Cfg: core.Config{B: 2}, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(31*n+k), Adversary: sched.NewRandom(int64(n*1000 + k)), MaxSteps: 100_000_000,
					}
				})
				var rounds []float64
				fails := 0
				for _, bo := range outs {
					if bo.Err != nil || bo.Out.Err != nil || !bo.Out.AllDecided() {
						fails++
						continue
					}
					rounds = append(rounds, maxRounds(bo.Out))
				}
				t.Add(n, Mean(rounds), Percentile(rounds, 95), Max(rounds), fails)
			}
			t.Note("the paper predicts O(1) expected rounds: the mean column should stay flat as n grows.")
			return []*Table{t}
		},
	}
}

// e5TotalWork measures expected total atomic steps to global decision versus
// n for the bounded protocol and the three baselines — the paper's headline:
// polynomial for Bounded, exponential blow-up for the local-coin baseline.
func e5TotalWork() Experiment {
	return Experiment{
		ID: "E5", Title: "total work vs n, bounded vs baselines", PaperRef: "title claim (polynomial expected time)",
		Run: func(o RunOpts) []*Table {
			type row struct {
				kind core.Kind
				ns   []int
			}
			sweep := []row{
				{core.KindBounded, []int{2, 3, 4, 6, 8, 12, 16}},
				{core.KindAHUnbounded, []int{2, 3, 4, 6, 8, 12, 16}},
				{core.KindStrongCoin, []int{2, 3, 4, 6, 8, 12, 16}},
				{core.KindExpLocal, []int{2, 3, 4, 5, 6, 8}}, // exponential: capped
			}
			if o.Quick {
				for i := range sweep {
					sweep[i].ns = []int{2, 4}
				}
			}
			trials := o.trials(15)
			const budget = 60_000_000
			var tables []*Table
			for _, s := range sweep {
				t := &Table{
					Title:   fmt.Sprintf("%v: mixed inputs, random adversary, %d trials per n (budget %d steps)", s.kind, trials, budget),
					Columns: []string{"n", "steps mean", "steps p95", "over budget"},
				}
				var xs, ys []float64
				for _, n := range s.ns {
					n := n
					outs := runTrials(o, trials, func(k int) core.Instance {
						return core.Instance{
							Kind: s.kind, Cfg: core.Config{B: 2}, Inputs: mixedInputs(n),
							Seed: o.Seed + int64(7*n+k), Adversary: sched.NewRandom(int64(n*77 + k)), MaxSteps: budget,
						}
					})
					var steps []float64
					over := 0
					for k, bo := range outs {
						if bo.Err != nil {
							t.Note("n=%d trial %d: %v", n, k, bo.Err)
							continue
						}
						if errors.Is(bo.Out.Err, sched.ErrStepBudget) || !bo.Out.AllDecided() {
							over++
							continue
						}
						steps = append(steps, float64(bo.Out.Sched.Steps))
					}
					t.Add(n, Mean(steps), Percentile(steps, 95), over)
					if len(steps) > 0 {
						xs = append(xs, float64(n))
						ys = append(ys, Mean(steps))
					}
				}
				if exp, _ := FitPowerLaw(xs, ys); exp != 0 {
					t.Add("fit", fmt.Sprintf("n^%.2f", exp), "", "")
				}
				tables = append(tables, t)
			}

			// The headline comparison needs the right adversary: under a
			// *random* scheduler the local-coin baseline gets lucky (its
			// exponential lower bound is against worst-case schedules). A
			// lockstep (round-robin) schedule keeps all processes advancing
			// together, so agreement by independent local coins requires all
			// n flips to coincide — expected 2^Θ(n) rounds — while the shared
			// coin stays polynomial. This table shows the crossover.
			lockNs := []int{2, 4, 6, 8, 10, 12}
			lockTrials := o.trials(8)
			if o.Quick {
				lockNs = []int{2, 4}
			}
			lt := &Table{
				Title:   fmt.Sprintf("lockstep (round-robin) schedule: bounded vs exp-local, %d trials per n", lockTrials),
				Columns: []string{"n", "bounded steps", "exp-local steps", "ratio exp/bounded"},
			}
			for _, n := range lockNs {
				n := n
				// One batch interleaves both kinds: even slots run the bounded
				// protocol, odd slots the local-coin baseline, with the pair at
				// (2k, 2k+1) sharing trial k's seed as before.
				outs := runTrials(o, 2*lockTrials, func(i int) core.Instance {
					kind := core.KindBounded
					if i%2 == 1 {
						kind = core.KindExpLocal
					}
					return core.Instance{
						Kind: kind, Cfg: core.Config{B: 2}, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(5*n+i/2), Adversary: sched.NewRoundRobin(), MaxSteps: budget,
					}
				})
				var sb, sl []float64
				for i, bo := range outs {
					if bo.Err != nil || bo.Out.Err != nil {
						continue
					}
					if i%2 == 0 {
						sb = append(sb, float64(bo.Out.Sched.Steps))
					} else {
						sl = append(sl, float64(bo.Out.Sched.Steps))
					}
				}
				mb, ml := Mean(sb), Mean(sl)
				ratio := 0.0
				if mb > 0 {
					ratio = ml / mb
				}
				lt.Add(n, mb, ml, ratio)
			}
			lt.Note("the local-coin baseline overtakes (crossover ~n=8) and then explodes; the bounded protocol stays polynomial.")
			tables = append(tables, lt)
			return tables
		},
	}
}

// e6Space demonstrates the paper's headline space claim. Expected rounds are
// constant for both protocols (that is the *time* theorem), so the space
// difference is structural, and the experiment shows it two ways: (a) the
// bounded protocol's payloads respect a *static* bound — |coin| <= M+1, edge
// counters < 3K, no round numbers at all — verified across every trial even
// with an aggressively small M; (b) the unbounded baseline's payloads have no
// static bound: its coin counters exceed any small M, and the maximum round
// (= strip length, = register width in words) observed creeps up as more
// adversarial trials sample the geometric tail.
func e6Space() Experiment {
	return Experiment{
		ID: "E6", Title: "register payload bounds, bounded vs unbounded", PaperRef: "title claim (bounded memory)",
		Run: func(o RunOpts) []*Table {
			const n, b, m = 4, 1, 6 // tight coin bound: barrier b·n = 4, M+1 = 7
			sweeps := []int{20, 100, 400}
			if o.Quick {
				sweeps = []int{10, 20}
			}
			var tables []*Table
			for _, kind := range []core.Kind{core.KindBounded, core.KindAHUnbounded} {
				t := &Table{
					Title:   fmt.Sprintf("%v: n=%d B=%d M=%d, lockstep schedule (forces coin usage), cumulative maxima", kind, n, b, m),
					Columns: []string{"trials", "max|coin|", "max round", "max entry words", "rounds histogram"},
				}
				kind := kind
				outs := runTrials(o, sweeps[len(sweeps)-1], func(k int) core.Instance {
					return core.Instance{
						Kind: kind, Cfg: core.Config{B: b, M: m}, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(k*13+1), Adversary: sched.NewRoundRobin(), MaxSteps: 100_000_000,
					}
				})
				hist := map[int64]int{}
				var maxCoin, maxRound, stripLen int64
				done := 0
				for _, target := range sweeps {
					for ; done < target; done++ {
						out := outs[done].Out
						if outs[done].Err != nil || out.Err != nil {
							continue
						}
						if out.Metrics.MaxAbsCoin > maxCoin {
							maxCoin = out.Metrics.MaxAbsCoin
						}
						if out.Metrics.MaxRound > maxRound {
							maxRound = out.Metrics.MaxRound
						}
						if out.Metrics.StripLen > stripLen {
							stripLen = out.Metrics.StripLen
						}
						hist[int64(maxRounds(out))]++
					}
					words := int64(2 + (2 + 1) + n) // pref + coin strip (K+1) + pointer + edges: static
					if kind == core.KindAHUnbounded {
						words = 2 + stripLen // pref + round + grown strip
					}
					t.Add(target, maxCoin, maxRound, words, fmt.Sprintf("%v", histString(hist)))
				}
				if kind == core.KindBounded {
					t.Note("static bounds hold over every trial: |coin| <= M+1 = %d, edge counters < 3K = %d, entry width constant.", m+1, 3*2)
				} else {
					t.Note("counters exceed any small bound and the entry grows with the round tail — no static bound exists.")
				}
				tables = append(tables, t)
			}
			return tables
		},
	}
}

// histString renders a small int64 histogram deterministically.
func histString(h map[int64]int) string {
	var keys []int64
	for k := range h {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%d:%d ", k, h[k])
	}
	return s
}

// e9Adversaries compares decision cost across schedules for the bounded
// protocol (§6: no adversary forces non-termination).
func e9Adversaries() Experiment {
	return Experiment{
		ID: "E9", Title: "bounded protocol vs adversaries", PaperRef: "§6 (termination against any adversary)",
		Run: func(o RunOpts) []*Table {
			const n = 8
			trials := o.trials(15)
			advs := []struct {
				name string
				mk   func(seed int64) sched.Adversary
			}{
				{"round-robin", func(int64) sched.Adversary { return sched.NewRoundRobin() }},
				{"random", func(s int64) sched.Adversary { return sched.NewRandom(s) }},
				{"lagger(p=64)", func(s int64) sched.Adversary { return sched.NewLagger(0, 64, s) }},
				{"crash 3 of 8", func(s int64) sched.Adversary {
					return sched.NewCrash(sched.NewRandom(s), map[int]int64{5: 500, 6: 1500, 7: 4000})
				}},
				{"anti-agreement", func(s int64) sched.Adversary {
					return sched.FuncAdversary(func(w []int, step int64) int {
						if (step/48)%2 == 0 {
							return w[0]
						}
						return w[len(w)-1]
					})
				}},
				{"PCT(d=3)", func(s int64) sched.Adversary { return sched.NewPCT(n, 50_000, 3, s) }},
				{"quantum(64)", func(int64) sched.Adversary { return sched.NewQuantum(64) }},
			}
			t := &Table{
				Title:   fmt.Sprintf("n=%d, mixed inputs, %d trials per adversary", n, trials),
				Columns: []string{"adversary", "steps mean", "steps p95", "rounds mean", "agreement"},
			}
			for _, a := range advs {
				a := a
				outs := runTrials(o, trials, func(k int) core.Instance {
					return core.Instance{
						Kind: core.KindBounded, Cfg: core.Config{B: 2}, Inputs: mixedInputs(n),
						Seed: o.Seed + int64(k), Adversary: a.mk(int64(k*191 + 7)), MaxSteps: 100_000_000,
					}
				})
				var steps, rounds []float64
				agreeOK := true
				for _, bo := range outs {
					if bo.Err != nil {
						continue
					}
					if _, err := bo.Out.Agreement(); err != nil {
						agreeOK = false
					}
					steps = append(steps, float64(bo.Out.Sched.Steps))
					rounds = append(rounds, maxRounds(bo.Out))
				}
				t.Add(a.name, Mean(steps), Percentile(steps, 95), Mean(rounds), agreeOK)
			}
			return []*Table{t}
		},
	}
}
