package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStddevPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if s := Stddev(xs); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v", s)
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Percentile(nil, 50) != 0 || Max(nil) != 0 {
		t.Fatal("empty-input behaviour wrong")
	}
	if Max(xs) != 5 {
		t.Fatalf("Max = %v", Max(xs))
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5 * math.Pow(x, 2.25)
	}
	e, c := FitPowerLaw(xs, ys)
	if math.Abs(e-2.25) > 1e-9 || math.Abs(c-3.5) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (2.25, 3.5)", e, c)
	}
	if e, _ := FitPowerLaw([]float64{1}, []float64{1}); e != 0 {
		t.Fatal("short input must return 0")
	}
	if e, _ := FitPowerLaw([]float64{1, -2}, []float64{1, 2}); e != 0 {
		t.Fatal("non-positive input must return 0")
	}
}

func TestQuickFitPowerLawExact(t *testing.T) {
	f := func(e8 uint8, c8 uint8) bool {
		e := float64(e8%50)/10 + 0.1
		c := float64(c8%90)/10 + 0.1
		xs := []float64{1, 2, 3, 5, 8, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, e)
		}
		ge, gc := FitPowerLaw(xs, ys)
		return math.Abs(ge-e) < 1e-6 && math.Abs(gc-c) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("x", "y")
	tab.Note("hello %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"## demo", "a", "bb", "2.500", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	es := All()
	if len(es) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(es))
	}
	for i, e := range es {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if idNum(e.ID) != i+1 {
			t.Fatalf("experiments out of order: %v at %d", e.ID, i)
		}
	}
	if _, ok := Get("E3"); !ok {
		t.Fatal("Get(E3) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("Get(E99) should fail")
	}
}

// TestExperimentsParallelDeterminism renders every batch-driven experiment at
// parallel=1 and parallel=4 and requires byte-identical output, including the
// aggregated metrics table: rewiring the trial loops onto the batch engine
// must change nothing observable at any worker count.
func TestExperimentsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep skipped in -short mode")
	}
	for _, id := range []string{"E4", "E5", "E6", "E9", "E11", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			render := func(par int) string {
				var buf bytes.Buffer
				RunAndRender(e, RunOpts{Quick: true, Trials: 3, Seed: 777, Parallel: par}, &buf)
				return buf.String()
			}
			base := render(1)
			if got := render(4); got != base {
				t.Errorf("output differs between parallel=1 and parallel=4:\n--- parallel=1\n%s\n--- parallel=4\n%s", base, got)
			}
		})
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode — a
// smoke test that the full harness produces tables without errors.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			RunAndRender(e, RunOpts{Quick: true, Trials: 3, Seed: 12345}, &buf)
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("output missing header:\n%s", out)
			}
			if strings.Count(out, "\n") < 4 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if strings.Contains(out, "failed:") {
				t.Fatalf("experiment reported failures:\n%s", out)
			}
		})
	}
}
