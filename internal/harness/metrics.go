package harness

import (
	"fmt"
	"sort"

	"github.com/dsrepro/consensus/internal/obs"
)

// MetricsTable renders an observability-registry snapshot as an experiment
// table: per-layer event totals, per-kind counters, max-gauges, and histogram
// summaries. It returns nil when the snapshot is empty (observability was
// off or nothing ran).
func MetricsTable(id string, snap obs.Snapshot) *Table {
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Hists) == 0 {
		return nil
	}
	t := &Table{
		Title:   fmt.Sprintf("%s observability: cross-layer metrics over all trials", id),
		Columns: []string{"metric", "value"},
	}
	layers := snap.LayerCounts()
	for _, l := range sortedKeys(layers) {
		t.Add("events."+l, layers[l])
	}
	for _, k := range sortedKeys(snap.Counters) {
		t.Add(k, snap.Counters[k])
		// Derived contention indicator, rendered right under its inputs:
		// retries per clean double-collect of the scan layer.
		if k == "scan.retry" && snap.Counters["scan.clean"] > 0 {
			t.Add("scan.retry_ratio", fmt.Sprintf("%.3f",
				float64(snap.Counters["scan.retry"])/float64(snap.Counters["scan.clean"])))
		}
	}
	for _, g := range sortedKeys(snap.Gauges) {
		t.Add(g, snap.Gauges[g])
	}
	for _, name := range sortedKeys(snap.Hists) {
		h := snap.Hists[name]
		t.Add(name, fmt.Sprintf("n=%d min=%d p50=%s p90=%s p99=%s max=%d mean=%s",
			h.Count, h.Min, F(h.P50), F(h.P90), F(h.P99), h.Max, F(h.Mean)))
	}
	t.Note("counters are cumulative across every trial of the experiment; histogram percentiles are bucket-resolution estimates.")
	return t
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
