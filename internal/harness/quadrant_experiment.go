package harness

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/sched"
)

// e12Quadrants is the capstone: the full design matrix the paper's
// introduction narrates, measured. Four protocols cover the four quadrants
// of {bounded, unbounded} space × {polynomial, exponential} expected time:
//
//	                 exponential time        polynomial time
//	unbounded space  Abrahamson [A88]        AHUnbounded [AH88]
//	bounded space    ExpLocal [ADS89-style]  Bounded (this paper)
//
// Both axes are machine-measured. Space comes from the accounting meters
// (internal/obs/space): a protocol is unbounded-space when some layer
// declares a domain with no static width (explicit round numbers, growing
// strips), and the register/word/width columns are the meters' peaks. Time
// comes from total-step growth under the lockstep schedule, where the
// local-coin protocols blow up exponentially.
//
// A second table renders the measured space–time frontier within the
// bounded quadrant: sweeping the strip constant K and the coin bound M
// trades register width against expected steps, and the anonymous variant
// sits at the opposite end — constant-width registers whose *count* grows
// with the rounds the run happens to take.
func e12Quadrants() Experiment {
	return Experiment{
		ID: "E12", Title: "the space/time quadrant matrix, measured", PaperRef: "§1 (problem statement and related work)",
		Run: func(o RunOpts) []*Table {
			return []*Table{e12Matrix(o), e12Frontier(o)}
		},
	}
}

// spaceTrials runs m trials of one configuration with a meter per trial and
// returns the outcomes plus the trial-merged usage (element-wise max, folded
// in trial order).
func spaceTrials(o RunOpts, m int, build func(k int) core.Instance) ([]core.BatchOutcome, space.Usage) {
	meters := make([]*space.Meter, m)
	outs := runTrials(o, m, func(k int) core.Instance {
		inst := build(k)
		meters[k] = space.NewMeter()
		inst.Space = meters[k]
		return inst
	})
	var u space.Usage
	for _, sm := range meters {
		u = space.Merge(u, sm.Usage())
	}
	return outs, u
}

// usageUnbounded reports whether some layer declared a width with no static
// bound — the meters' version of "this protocol stores round numbers".
func usageUnbounded(u space.Usage) bool {
	for _, lu := range u.Layers {
		if lu.DeclaredBits == space.UnboundedBits {
			return true
		}
	}
	return false
}

// widthCell renders a usage's widest register payload, marking widths that
// have no static bound (the measured value is then just how far this run got).
func widthCell(u space.Usage) string {
	if usageUnbounded(u) {
		return fmt.Sprintf("unbounded (saw %d)", u.MaxBits)
	}
	return fmt.Sprintf("%d", u.MaxBits)
}

// e12Matrix builds the measured quadrant matrix, plus the anonymous variant
// as a fifth row: it is off the classical axes (bounded register width but a
// register count that grows with the rounds taken).
func e12Matrix(o RunOpts) *Table {
	trials := o.trials(8)
	nSmall, nBig := 6, 12
	if o.Quick {
		nSmall, nBig = 3, 4
	}
	const budget = 200_000_000

	kinds := []core.Kind{core.KindBounded, core.KindAHUnbounded, core.KindExpLocal, core.KindAbrahamson, core.KindAnonymous}
	t := &Table{
		Title: fmt.Sprintf("lockstep schedule, mixed inputs, %d trials per cell (n=%d and n=%d)", trials, nSmall, nBig),
		Columns: []string{
			"protocol", "regs", "words", "bits/reg", "space class",
			fmt.Sprintf("steps n=%d", nSmall), fmt.Sprintf("steps n=%d", nBig), "growth", "time class",
		},
	}
	for _, kind := range kinds {
		kind := kind
		measure := func(n int) (float64, space.Usage) {
			outs, u := spaceTrials(o, trials, func(k int) core.Instance {
				return core.Instance{
					Kind: kind, Cfg: core.Config{B: 2}, Inputs: mixedInputs(n),
					Seed: o.Seed + int64(17*n+k), Adversary: sched.NewRoundRobin(), MaxSteps: budget,
				}
			})
			var steps []float64
			for _, bo := range outs {
				if bo.Err != nil || bo.Out.Err != nil {
					continue
				}
				steps = append(steps, float64(bo.Out.Sched.Steps))
			}
			return Mean(steps), u
		}
		small, u1 := measure(nSmall)
		big, u2 := measure(nBig)
		u := space.Merge(u1, u2)
		growth := 0.0
		if small > 0 {
			growth = big / small
		}
		spaceClass := "bounded"
		if usageUnbounded(u) {
			spaceClass = "UNBOUNDED"
		} else if kind == core.KindAnonymous {
			spaceClass = "bounded width*"
		}
		// Polynomial reference: n doubling from nSmall to nBig with a
		// degree<=4 polynomial grows at most 2^4 = 16x; the
		// exponential protocols grow far faster under lockstep.
		timeClass := "polynomial"
		if growth > 40 {
			timeClass = "EXPONENTIAL"
		}
		t.Add(kind.String(), u.Regs, u.PeakWords, widthCell(u), spaceClass, small, big, fmt.Sprintf("%.1fx", growth), timeClass)
	}
	t.Note("the paper's contribution is the bottom-right cell: bounded space AND polynomial time.")
	t.Note("space columns are the accounting meters' trial maxima; a protocol is UNBOUNDED when some layer declares a width with no static bound (round numbers, growing strips).")
	t.Note("*anonymous trades the other way: registers stay %d bits wide but their count (regs above) grows with the rounds a run takes.", 2)
	return t
}

// e12Frontier sweeps the bounded protocol's space knobs — strip constant K
// (edge counters live mod 3K) and coin bound M (counters clamp to ±(M+1)) —
// against n, pairing each point's measured peak space with its expected
// steps. The anonymous variant closes each n block as the opposite frontier
// point.
func e12Frontier(o RunOpts) *Table {
	trials := o.trials(12)
	ns := []int{4, 8}
	if o.Quick {
		ns = []int{4}
	}
	const budget = 100_000_000
	type point struct {
		kind core.Kind
		k, m int
	}
	points := []point{
		{core.KindBounded, 2, 6},
		{core.KindBounded, 2, 64},
		{core.KindBounded, 4, 6},
		{core.KindBounded, 4, 64},
		{core.KindAnonymous, 0, 0},
	}
	t := &Table{
		Title:   fmt.Sprintf("space–time frontier, lockstep schedule, %d trials per point (K = strip constant, M = coin bound)", trials),
		Columns: []string{"protocol", "n", "K", "M", "regs", "words", "bits/reg", "steps mean"},
	}
	for _, n := range ns {
		n := n
		for _, p := range points {
			p := p
			outs, u := spaceTrials(o, trials, func(k int) core.Instance {
				return core.Instance{
					Kind: p.kind, Cfg: core.Config{B: 1, K: p.k, M: p.m}, Inputs: mixedInputs(n),
					Seed: o.Seed + int64(29*n+k), Adversary: sched.NewRoundRobin(), MaxSteps: budget,
				}
			})
			var steps []float64
			for _, bo := range outs {
				if bo.Err != nil || bo.Out.Err != nil {
					continue
				}
				steps = append(steps, float64(bo.Out.Sched.Steps))
			}
			kCell, mCell := "-", "-"
			if p.kind == core.KindBounded {
				kCell, mCell = fmt.Sprintf("%d", p.k), fmt.Sprintf("%d", p.m)
			}
			t.Add(p.kind.String(), n, kCell, mCell, u.Regs, u.PeakWords, widthCell(u), Mean(steps))
		}
	}
	t.Note("shrinking M narrows the walk registers (width ~ log2(2M+3) bits) at the cost of more coin truncations; growing K widens the strip counters (mod 3K) but relaxes round-advance contention.")
	t.Note("the anonymous variant holds width at 2 bits and pays in register count instead — the frontier's other endpoint.")
	return t
}
