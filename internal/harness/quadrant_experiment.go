package harness

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/core"
	"github.com/dsrepro/consensus/internal/sched"
)

// e12Quadrants is the capstone: the full design matrix the paper's
// introduction narrates, measured. Four protocols cover the four quadrants
// of {bounded, unbounded} space × {polynomial, exponential} expected time:
//
//	                 exponential time        polynomial time
//	unbounded space  Abrahamson [A88]        AHUnbounded [AH88]
//	bounded space    ExpLocal [ADS89-style]  Bounded (this paper)
//
// Space is classified from measured register contents (explicit round
// numbers present or not); time from total-step growth under the lockstep
// schedule, where the local-coin protocols blow up exponentially.
func e12Quadrants() Experiment {
	return Experiment{
		ID: "E12", Title: "the space/time quadrant matrix, measured", PaperRef: "§1 (problem statement and related work)",
		Run: func(o RunOpts) []*Table {
			trials := o.trials(8)
			nSmall, nBig := 6, 12
			if o.Quick {
				nSmall, nBig = 3, 4
			}
			const budget = 200_000_000

			kinds := []core.Kind{core.KindBounded, core.KindAHUnbounded, core.KindExpLocal, core.KindAbrahamson}
			t := &Table{
				Title: fmt.Sprintf("lockstep schedule, mixed inputs, %d trials per cell (n=%d and n=%d)", trials, nSmall, nBig),
				Columns: []string{
					"protocol", "rounds stored", "space class",
					fmt.Sprintf("steps n=%d", nSmall), fmt.Sprintf("steps n=%d", nBig), "growth", "time class",
				},
			}
			for _, kind := range kinds {
				kind := kind
				measure := func(n int) (float64, bool) {
					outs := runTrials(o, trials, func(k int) core.Instance {
						return core.Instance{
							Kind: kind, Cfg: core.Config{B: 2}, Inputs: mixedInputs(n),
							Seed: o.Seed + int64(17*n+k), Adversary: sched.NewRoundRobin(), MaxSteps: budget,
						}
					})
					var steps []float64
					unboundedSpace := false
					for _, bo := range outs {
						if bo.Err != nil || bo.Out.Err != nil {
							continue
						}
						steps = append(steps, float64(bo.Out.Sched.Steps))
						if bo.Out.Metrics.MaxRound > 0 {
							unboundedSpace = true
						}
					}
					return Mean(steps), unboundedSpace
				}
				small, ub1 := measure(nSmall)
				big, ub2 := measure(nBig)
				unbounded := ub1 || ub2
				growth := 0.0
				if small > 0 {
					growth = big / small
				}
				spaceClass := "bounded"
				if unbounded {
					spaceClass = "UNBOUNDED"
				}
				// Polynomial reference: n doubling from nSmall to nBig with a
				// degree<=4 polynomial grows at most 2^4 = 16x; the
				// exponential protocols grow far faster under lockstep.
				timeClass := "polynomial"
				if growth > 40 {
					timeClass = "EXPONENTIAL"
				}
				t.Add(kind.String(), unbounded, spaceClass, small, big, fmt.Sprintf("%.1fx", growth), timeClass)
			}
			t.Note("the paper's contribution is the bottom-right cell: bounded space AND polynomial time.")
			return []*Table{t}
		},
	}
}
