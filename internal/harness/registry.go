package harness

import (
	"fmt"
	"io"
	"sort"

	"github.com/dsrepro/consensus/internal/obs"
)

// RunOpts scales an experiment run.
type RunOpts struct {
	// Trials is the per-configuration trial count (each experiment applies
	// its own sensible floor/ceiling). Zero picks the default.
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks sweeps for smoke tests and benchmarks.
	Quick bool
	// Parallel is the trial-execution worker count passed to the batch
	// engine (core.RunBatch): 0 means GOMAXPROCS, 1 runs trials serially.
	// Experiment outputs are identical at any setting — trials derive their
	// seeds and adversaries before execution and results fold in trial order.
	Parallel int
	// Sink, if non-nil, aggregates cross-layer observability over every
	// trial the experiment runs; RunAndRender installs one automatically and
	// appends a metrics table per experiment.
	Sink *obs.Sink
}

func (o RunOpts) trials(def int) int {
	t := o.Trials
	if t <= 0 {
		t = def
	}
	if o.Quick && t > 5 {
		t = 5
	}
	return t
}

// Experiment is one reproducible experiment from DESIGN.md §5.
type Experiment struct {
	// ID is the experiment identifier ("E1" .. "E10").
	ID string
	// Title is a short human label.
	Title string
	// PaperRef names the lemma/claim of the paper the experiment probes.
	PaperRef string
	// Run executes the experiment and returns its result tables.
	Run func(o RunOpts) []*Table
}

// All returns every experiment in ID order.
func All() []Experiment {
	es := []Experiment{
		e1CoinAgreement(),
		e2CoinSteps(),
		e3Overflow(),
		e4Rounds(),
		e5TotalWork(),
		e6Space(),
		e7ScanRetries(),
		e8StripRange(),
		e9Adversaries(),
		e10WalkTrace(),
		e11Ablations(),
		e12Quadrants(),
	}
	sort.Slice(es, func(i, j int) bool { return idNum(es[i].ID) < idNum(es[j].ID) })
	return es
}

func idNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender runs an experiment and writes its tables to w, followed by the
// cross-layer metrics table aggregated over the experiment's trials.
func RunAndRender(e Experiment, o RunOpts, w io.Writer) {
	fmt.Fprintf(w, "# %s — %s  (paper: %s)\n\n", e.ID, e.Title, e.PaperRef)
	if o.Sink == nil {
		o.Sink = obs.NewSink(nil) // metrics-only
	}
	for _, t := range e.Run(o) {
		t.Render(w)
	}
	if mt := MetricsTable(e.ID, o.Sink.Registry().Snapshot()); mt != nil {
		mt.Render(w)
	}
}
