package harness

import (
	"fmt"
	"io"
	"strings"

	"github.com/dsrepro/consensus/internal/obs"
)

// Format selects an output rendering for experiment tables.
type Format int

// Output formats.
const (
	// FormatText is the fixed-width plain-text rendering (default).
	FormatText Format = iota + 1
	// FormatMarkdown renders GitHub-flavoured markdown tables.
	FormatMarkdown
	// FormatCSV renders one CSV block per table, prefixed with a comment
	// line carrying the title.
	FormatCSV
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "text":
		return FormatText, nil
	case "markdown", "md":
		return FormatMarkdown, nil
	case "csv":
		return FormatCSV, nil
	default:
		return 0, fmt.Errorf("harness: unknown format %q (want text, markdown or csv)", s)
	}
}

// RenderAs writes the table in the requested format.
func (t *Table) RenderAs(w io.Writer, f Format) {
	switch f {
	case FormatMarkdown:
		t.renderMarkdown(w)
	case FormatCSV:
		t.renderCSV(w)
	default:
		t.Render(w)
	}
}

func (t *Table) renderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(t.Columns, "|", "\\|"), " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(row, "|", "\\|"), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func (t *Table) renderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintln(w, strings.Join(csvCells(t.Columns), ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(csvCells(row), ","))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

func escapeCells(cells []string, old, new string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, old, new)
	}
	return out
}

func csvCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	return out
}

// RunAndRenderAs runs an experiment and writes its tables in the requested
// format, followed by the cross-layer metrics table aggregated over the
// experiment's trials.
func RunAndRenderAs(e Experiment, o RunOpts, w io.Writer, f Format) {
	switch f {
	case FormatMarkdown:
		fmt.Fprintf(w, "## %s — %s  (paper: %s)\n\n", e.ID, e.Title, e.PaperRef)
	case FormatCSV:
		fmt.Fprintf(w, "# === %s — %s (paper: %s) ===\n", e.ID, e.Title, e.PaperRef)
	default:
		fmt.Fprintf(w, "# %s — %s  (paper: %s)\n\n", e.ID, e.Title, e.PaperRef)
	}
	if o.Sink == nil {
		o.Sink = obs.NewSink(nil) // metrics-only
	}
	for _, t := range e.Run(o) {
		t.RenderAs(w, f)
	}
	if mt := MetricsTable(e.ID, o.Sink.Registry().Snapshot()); mt != nil {
		mt.RenderAs(w, f)
	}
}
