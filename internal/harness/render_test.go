package harness

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "sample", Columns: []string{"a", "b|c"}}
	t.Add(1, "x,y")
	t.Add(2.5, `quo"te`)
	t.Note("note %d", 1)
	return t
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"":         FormatText,
		"text":     FormatText,
		"markdown": FormatMarkdown,
		"MD":       FormatMarkdown,
		"csv":      FormatCSV,
	}
	for s, want := range cases {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().RenderAs(&buf, FormatMarkdown)
	out := buf.String()
	for _, want := range []string{"### sample", "| a | b\\|c |", "| --- | --- |", "| 1 | x,y |", "*note 1*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().RenderAs(&buf, FormatCSV)
	out := buf.String()
	for _, want := range []string{"# sample", "a,b|c", `1,"x,y"`, `2.500,"quo""te"`, "# note 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAsTextDefault(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().RenderAs(&buf, FormatText)
	if !strings.Contains(buf.String(), "## sample") {
		t.Fatalf("text render wrong:\n%s", buf.String())
	}
}

func TestRunAndRenderAsHeaders(t *testing.T) {
	e, ok := Get("E8")
	if !ok {
		t.Fatal("E8 missing")
	}
	for f, want := range map[Format]string{
		FormatText:     "# E8 —",
		FormatMarkdown: "## E8 —",
		FormatCSV:      "# === E8 —",
	} {
		var buf bytes.Buffer
		RunAndRenderAs(e, RunOpts{Quick: true, Trials: 2, Seed: 1}, &buf, f)
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("format %d missing header %q", int(f), want)
		}
	}
}

func TestHistString(t *testing.T) {
	got := histString(map[int64]int{3: 2, 1: 5})
	if got != "1:5 3:2 " {
		t.Fatalf("histString = %q", got)
	}
	if histString(nil) != "" {
		t.Fatal("empty histogram should render empty")
	}
}

func TestMixedInputs(t *testing.T) {
	in := mixedInputs(5)
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("mixedInputs = %v", in)
		}
	}
}
