// Package harness provides the experiment infrastructure that regenerates
// every quantitative claim of the paper (see DESIGN.md §5 and
// EXPERIMENTS.md): workload construction, parameter sweeps, summary
// statistics, power-law fitting, and fixed-width table rendering shared by
// cmd/experiments and the root benchmark suite.
package harness

import (
	"fmt"
	"math"
	"sort"

	"github.com/dsrepro/consensus/internal/obs"
)

// Histogram is the fixed-bucket integer histogram shared with the
// observability registry (count, min/max, mean, nearest-rank percentiles).
// It lives in internal/obs — which must stay a leaf package — and is aliased
// here so experiment code has its statistics toolkit in one import.
type Histogram = obs.Histogram

// NewHistogram returns a histogram with the given ascending inclusive bucket
// upper bounds (values above the last bound land in an overflow bucket).
func NewHistogram(bounds ...int64) *Histogram { return obs.NewHistogram(bounds...) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FitPowerLaw fits y = c·x^e by least squares in log-log space and returns
// the exponent e and coefficient c. All inputs must be positive; series
// shorter than 2 return (0, 0).
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	exponent = (n*sxy - sx*sy) / den
	coeff = math.Exp((sy - exponent*sx) / n)
	return exponent, coeff
}

// F formats a float compactly for tables.
func F(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e7:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}
