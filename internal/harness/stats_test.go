package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

func TestHistogramAlias(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []int64{0, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Min() != 0 || h.Max() != 500 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// The alias is the same type as obs.Histogram, so registry histograms and
	// harness tables interoperate without conversion.
	var _ *obs.Histogram = h
	if p := h.Percentile(50); p != 10 {
		t.Fatalf("p50 = %v, want 10 (bucket upper bound)", p)
	}
}

func TestHistogramObservations(t *testing.T) {
	h := NewHistogram(2, 4)
	for i := int64(1); i <= 5; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Mean != 3 {
		t.Fatalf("count/mean = %d/%v, want 5/3", s.Count, s.Mean)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
}

func TestMetricsTable(t *testing.T) {
	if MetricsTable("E0", obs.Snapshot{}) != nil {
		t.Fatal("empty snapshot should yield no table")
	}
	sink := obs.NewSink(nil)
	sink.Emit(obs.Event{Kind: obs.ScanRetry})
	sink.Emit(obs.Event{Kind: obs.CoreDecide})
	sink.GaugeMax(obs.GaugeMaxAbsCoin, 7)
	sink.Observe(obs.HistScanRetries, 3)
	mt := MetricsTable("E0", sink.Registry().Snapshot())
	if mt == nil {
		t.Fatal("non-empty snapshot yielded no table")
	}
	var buf bytes.Buffer
	mt.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"E0", "events.scan", "events.core",
		"scan.retry", "core.decide", "core.max_abs_coin", "scan.retries_per_scan",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsTableDerivesScanRetryRatio(t *testing.T) {
	sink := obs.NewSink(nil)
	for i := 0; i < 4; i++ {
		sink.Emit(obs.Event{Kind: obs.ScanClean})
	}
	for i := 0; i < 6; i++ {
		sink.Emit(obs.Event{Kind: obs.ScanRetry})
	}
	var buf bytes.Buffer
	MetricsTable("E0", sink.Registry().Snapshot()).Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "scan.retry_ratio") || !strings.Contains(out, "1.500") {
		t.Errorf("metrics table missing derived scan.retry_ratio=1.500:\n%s", out)
	}

	// Without clean scans the ratio is undefined and must stay absent.
	sink = obs.NewSink(nil)
	sink.Emit(obs.Event{Kind: obs.ScanRetry})
	buf.Reset()
	MetricsTable("E0", sink.Registry().Snapshot()).Render(&buf)
	if strings.Contains(buf.String(), "scan.retry_ratio") {
		t.Errorf("retry ratio rendered without clean scans:\n%s", buf.String())
	}
}

func TestRunAndRenderEmitsMetricsTable(t *testing.T) {
	e, ok := Get("E7")
	if !ok {
		t.Skip("experiment E7 not registered")
	}
	var buf bytes.Buffer
	RunAndRender(e, RunOpts{Quick: true, Trials: 2, Seed: 1}, &buf)
	if !strings.Contains(buf.String(), "observability: cross-layer metrics") {
		t.Fatalf("experiment output missing metrics table:\n%s", buf.String())
	}
}
