package harness

import (
	"fmt"
	"math/rand"

	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/scan"
	"github.com/dsrepro/consensus/internal/sched"
	"github.com/dsrepro/consensus/internal/strip"
	"github.com/dsrepro/consensus/internal/walk"
)

// e7ScanRetries measures scan retry behaviour of the arrow scannable memory
// under writer contention (§2: scans retry only on account of new writes).
func e7ScanRetries() Experiment {
	return Experiment{
		ID: "E7", Title: "snapshot scan retries vs concurrent writers", PaperRef: "§2 (progress discussion)",
		Run: func(o RunOpts) []*Table {
			ns := []int{2, 4, 8}
			if o.Quick {
				ns = []int{2, 4}
			}
			// Writer duty cycle: idle scheduler steps between writes. 0 means
			// writers write back-to-back — under that load the scan can
			// starve, which is exactly the paper's point: write is wait-free,
			// scan is only non-blocking (it retries while new writes keep
			// completing).
			paces := []int{0, 8, 32, 128}
			const scansPerRun = 40
			var tables []*Table
			for _, n := range ns {
				t := &Table{
					Title:   fmt.Sprintf("n=%d: 1 scanner (%d scans), %d writers, random adversary", n, scansPerRun, n-1),
					Columns: []string{"writer idle steps", "arrow retries/scan", "seqsnap retries/scan", "waitfree retries/scan"},
				}
				for _, pace := range paces {
					measure := func(mem scan.Memory[int], retries func(int) int64) string {
						done := false // written by scanner, read by writers (serialized under the step scheduler)
						completed := 0
						_, _ = sched.Run(sched.Config{
							N: n, Seed: o.Seed + int64(n*1000+pace), Adversary: sched.NewRandom(int64(n*3 + pace)),
							MaxSteps: 3_000_000, Sink: o.Sink,
						}, func(p *sched.Proc) {
							if p.ID() == 0 {
								for k := 0; k < scansPerRun; k++ {
									mem.Scan(p)
									completed++
								}
								done = true
								return
							}
							for k := 0; !done; k++ {
								mem.Write(p, k)
								for d := 0; d < pace && !done; d++ {
									p.Step() // local work between writes
								}
							}
						})
						if completed == 0 {
							return "starved"
						}
						return F(float64(retries(0)) / float64(completed))
					}
					arrow := scan.NewArrow[int](n, register.DirectFactory)
					seq := scan.NewSeqSnap[int](n)
					wf := scan.NewWaitFree[int](n)
					arrow.SetSink(o.Sink)
					seq.SetSink(o.Sink)
					wf.SetSink(o.Sink)
					t.Add(pace, measure(arrow, arrow.Retries), measure(seq, seq.Retries), measure(wf, wf.Retries))
				}
				t.Note("retries fall as writers idle longer; back-to-back writers can starve the paper's scan (non-blocking, not wait-free) — the Afek-et-al. wait-free snapshot never starves (it borrows embedded views).")
				tables = append(tables, t)
			}
			return tables
		},
	}
}

// e8StripRange verifies the §4 compression claims over long random games:
// normalized positions stay in [0..K·n], counters stay in [0..3K), and the
// counter representation tracks the game exactly (Claim 4.1).
func e8StripRange() Experiment {
	return Experiment{
		ID: "E8", Title: "rounds-strip compression over long games", PaperRef: "§4, Claim 4.1",
		Run: func(o RunOpts) []*Table {
			const k = 2
			ns := []int{4, 8, 16}
			moves := 200_000
			if o.Quick {
				ns = []int{4}
				moves = 20_000
			}
			t := &Table{
				Title:   fmt.Sprintf("K=%d, %d random moves per n", k, moves),
				Columns: []string{"n", "max position", "bound K*n", "max gap", "max counter", "bound 3K-1", "graph==game"},
			}
			for _, n := range ns {
				game, err := strip.NewGame(n, k, strip.Normalized)
				if err != nil {
					t.Note("n=%d: %v", n, err)
					continue
				}
				e := strip.CounterMatrix(n)
				rng := rand.New(rand.NewSource(o.Seed + int64(n)))
				maxPos, maxGap, maxCtr := 0, 0, 0
				equal := true
				for s := 0; s < moves; s++ {
					i := rng.Intn(n)
					game.Move(i)
					row, err := strip.IncRow(i, e, k)
					if err != nil {
						t.Note("n=%d move %d: %v", n, s, err)
						equal = false
						break
					}
					e[i] = row
					if _, hi := strip.Range(game.Pos); hi > maxPos {
						maxPos = hi
					}
					if g := strip.MaxGap(game.Pos); g > maxGap {
						maxGap = g
					}
					for _, r := range e {
						for _, c := range r {
							if c > maxCtr {
								maxCtr = c
							}
						}
					}
					if s%1000 == 0 {
						dec, err := strip.Decode(e, k)
						if err != nil || !dec.Equal(strip.FromPositions(game.Pos, k)) {
							equal = false
						}
					}
				}
				t.Add(n, maxPos, k*n, maxGap, maxCtr, 3*k-1, equal)
			}
			t.Note("all columns must respect their bounds regardless of game length — the strip is genuinely bounded.")
			return []*Table{t}
		},
	}
}

// e10WalkTrace prints one sample random-walk trajectory with its barriers —
// the figure analogue for §3.
func e10WalkTrace() Experiment {
	return Experiment{
		ID: "E10", Title: "sample shared-coin walk trajectory", PaperRef: "§3 (random walk)",
		Run: func(o RunOpts) []*Table {
			params := walk.Params{N: 8, B: 4}
			params.M = params.DefaultM()
			coin, err := walk.NewSharedCoin(params)
			if err != nil {
				t := &Table{Title: "walk trace"}
				t.Note("setup failed: %v", err)
				return []*Table{t}
			}
			var trace []int
			coin.OnStep = func(_, walkValue int) { trace = append(trace, walkValue) }
			_, _ = sched.Run(sched.Config{
				N: 8, Seed: o.Seed + 5, Adversary: sched.NewRandom(o.Seed + 6), MaxSteps: 100_000_000,
			}, func(p *sched.Proc) {
				coin.Flip(p)
			})
			t := &Table{
				Title:   fmt.Sprintf("n=%d B=%d: walk value per step (barriers at ±%d)", params.N, params.B, params.B*params.N),
				Columns: []string{"step", "walk value"},
			}
			stride := len(trace)/24 + 1
			for i := 0; i < len(trace); i += stride {
				t.Add(i, trace[i])
			}
			if len(trace) > 0 {
				t.Add(len(trace)-1, trace[len(trace)-1])
				t.Note("decided after %d walk steps (theory mean: %s)", len(trace), F(params.TheoreticalExpectedSteps()))
			}
			return []*Table{t}
		},
	}
}
