package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table with a title and optional commentary —
// the rendering format of every experiment result.
type Table struct {
	Title   string
	Notes   []string
	Columns []string
	Rows    [][]string
}

// Add appends one row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = F(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a commentary line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	fmt.Fprintln(w, line(t.Columns))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}
