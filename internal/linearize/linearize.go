// Package linearize provides a Wing–Gong style linearizability checker for
// single-register read/write histories. It is a test oracle: the register
// constructions in internal/register and the atomicity assumptions of the
// scannable memory are validated by recording operation histories under
// adversarial schedules and asking this package whether each history is
// linearizable with respect to a sequential register.
//
// The search is exponential in the worst case but histories produced by the
// tests are small (tens of operations), and memoization on (completed-set,
// register-value) keeps it fast in practice.
package linearize

import (
	"fmt"
	"sort"
)

// Op is one completed operation on a single register.
type Op struct {
	Proc    int   // process that performed the operation
	IsWrite bool  // write or read
	Val     int   // value written, or value the read returned
	Start   int64 // global step at invocation
	End     int64 // global step at response; must be >= Start
}

func (o Op) String() string {
	kind := "R"
	if o.IsWrite {
		kind = "W"
	}
	return fmt.Sprintf("%s(p%d,v%d)[%d,%d]", kind, o.Proc, o.Val, o.Start, o.End)
}

// History is a set of completed operations on one register.
type History []Op

// Check reports whether h is linearizable for an atomic read/write register
// with the given initial value: there must exist a total order of the
// operations that respects real-time precedence (a.End < b.Start ⇒ a before
// b) in which every read returns the value of the latest preceding write (or
// init if none precedes it).
//
// Histories longer than 64 operations are rejected with an error (the checker
// uses a bitmask over operations).
func Check(h History, init int) (bool, error) {
	n := len(h)
	if n == 0 {
		return true, nil
	}
	if n > 64 {
		return false, fmt.Errorf("linearize: history too long (%d ops, max 64)", n)
	}
	ops := make([]Op, n)
	copy(ops, h)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	for _, o := range ops {
		if o.End < o.Start {
			return false, fmt.Errorf("linearize: operation %v ends before it starts", o)
		}
	}

	// precedes[i] lists ops that must come after op i is scheduled... we need
	// the converse: an op is a candidate to linearize next iff no pending op
	// strictly precedes it in real time.
	type key struct {
		mask uint64
		val  int
	}
	seen := make(map[key]bool)

	var dfs func(doneMask uint64, cur int) bool
	dfs = func(doneMask uint64, cur int) bool {
		if doneMask == (uint64(1)<<n)-1 {
			return true
		}
		k := key{doneMask, cur}
		if seen[k] {
			return false
		}
		seen[k] = true
		for i := 0; i < n; i++ {
			if doneMask&(1<<i) != 0 {
				continue
			}
			// i is a candidate iff no other pending op strictly precedes it.
			candidate := true
			for j := 0; j < n; j++ {
				if j == i || doneMask&(1<<j) != 0 {
					continue
				}
				if ops[j].End < ops[i].Start {
					candidate = false
					break
				}
			}
			if !candidate {
				continue
			}
			if ops[i].IsWrite {
				if dfs(doneMask|1<<i, ops[i].Val) {
					return true
				}
			} else if ops[i].Val == cur {
				if dfs(doneMask|1<<i, cur) {
					return true
				}
			}
		}
		return false
	}
	return dfs(0, init), nil
}

// RegularityViolation pins down the first conflicting operation pair of a
// failed CheckRegularSWMR: the offending read, and the latest write that
// completed before the read began (HasWrite false when no write preceded it —
// the read should then have returned the initial value, possibly shadowed by
// an overlapping write).
type RegularityViolation struct {
	// Read is the read that returned a disallowed value.
	Read Op
	// LatestWrite is the latest write completed before Read began.
	LatestWrite Op
	// HasWrite reports whether any write completed before Read began.
	HasWrite bool
	// Expected is the value of LatestWrite (or init), i.e. what a
	// non-overlapped read must have returned.
	Expected int
}

// String implements fmt.Stringer.
func (v RegularityViolation) String() string {
	if v.HasWrite {
		return fmt.Sprintf("read %v conflicts with latest preceding write %v (expected %d)", v.Read, v.LatestWrite, v.Expected)
	}
	return fmt.Sprintf("read %v conflicts with initial value %d (no preceding write)", v.Read, v.Expected)
}

// CheckRegularSWMR verifies the regular-register contract on a single-writer
// history: every read must return either the value of the latest write that
// completed before the read began (or init if none), or the value of some
// write overlapping the read. Writes must be sequential (single writer).
func CheckRegularSWMR(h History, init int) (bool, error) {
	v, err := CheckRegularSWMRDetail(h, init)
	return v == nil && err == nil, err
}

// CheckRegularSWMRDetail is CheckRegularSWMR exporting the failure: it
// returns nil when the history is regular, and otherwise the first
// conflicting (read, latest-preceding-write) pair in read start order. The
// error reports malformed histories (an op ending before it starts, or
// overlapping writes in a single-writer history).
func CheckRegularSWMRDetail(h History, init int) (*RegularityViolation, error) {
	var writes []Op
	var reads []Op
	for _, o := range h {
		if o.End < o.Start {
			return nil, fmt.Errorf("linearize: operation %v ends before it starts", o)
		}
		if o.IsWrite {
			writes = append(writes, o)
		} else {
			reads = append(reads, o)
		}
	}
	sort.SliceStable(writes, func(i, j int) bool { return writes[i].Start < writes[j].Start })
	for i := 1; i < len(writes); i++ {
		// End == Start of the next op is adjacency under the step-clock
		// convention (Start is sampled before the op's first step), not
		// overlap.
		if writes[i-1].End > writes[i].Start {
			return nil, fmt.Errorf("linearize: writes overlap in single-writer history: %v, %v", writes[i-1], writes[i])
		}
	}
	sort.SliceStable(reads, func(i, j int) bool { return reads[i].Start < reads[j].Start })
	for _, r := range reads {
		allowed := map[int]bool{}
		latest := init
		var latestW Op
		hasW := false
		for _, w := range writes {
			if w.End < r.Start {
				latest = w.Val // writes sorted: last such wins
				latestW = w
				hasW = true
			} else if w.Start <= r.End {
				allowed[w.Val] = true // overlapping write
			}
		}
		allowed[latest] = true
		if !allowed[r.Val] {
			return &RegularityViolation{Read: r, LatestWrite: latestW, HasWrite: hasW, Expected: latest}, nil
		}
	}
	return nil, nil
}

// Recorder collects a History from concurrent operations. It is not itself
// synchronized; under the step scheduler the recorded sections are naturally
// serialized, and free-running tests must guard it externally.
//
// The zero value grows without bound (the original test-oracle behaviour).
// NewRecorder returns an allocation-bounded recorder for runtime audit
// windows: the ops buffer is preallocated once, Add drops (and counts) past
// capacity, and Reset rewinds for the next window without freeing storage.
type Recorder struct {
	ops     History
	capped  bool
	dropped int64
}

// NewRecorder returns a bounded recorder holding up to capacity operations
// (minimum 1) in a preallocated buffer.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ops: make(History, 0, capacity), capped: true}
}

// Add appends one completed operation, reporting whether it was retained (a
// bounded recorder at capacity drops it and counts it instead).
func (r *Recorder) Add(op Op) bool {
	if r.capped && len(r.ops) == cap(r.ops) {
		r.dropped++
		return false
	}
	r.ops = append(r.ops, op)
	return true
}

// Len returns the number of retained operations.
func (r *Recorder) Len() int { return len(r.ops) }

// Full reports whether a bounded recorder has reached capacity (always false
// for an unbounded zero-value recorder).
func (r *Recorder) Full() bool { return r.capped && len(r.ops) == cap(r.ops) }

// Dropped returns how many operations were dropped at capacity.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Reset rewinds the recorder for a new window, keeping the preallocated
// buffer (and the drop count, which is cumulative).
func (r *Recorder) Reset() { r.ops = r.ops[:0] }

// History returns the recorded operations. The returned slice aliases the
// recorder's buffer: a bounded recorder invalidates it on Reset.
func (r *Recorder) History() History { return r.ops }
