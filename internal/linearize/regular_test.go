package linearize

import "testing"

func mustRegular(t *testing.T, h History, init int) bool {
	t.Helper()
	ok, err := CheckRegularSWMR(h, init)
	if err != nil {
		t.Fatalf("CheckRegularSWMR: %v", err)
	}
	return ok
}

func TestRegularEmptyAndInitOnly(t *testing.T) {
	if !mustRegular(t, nil, 0) {
		t.Fatal("empty history must be regular")
	}
	h := History{{Proc: 1, Val: 7, Start: 0, End: 1}}
	if mustRegular(t, h, 0) {
		t.Fatal("read of unwritten value must fail")
	}
	if !mustRegular(t, h, 7) {
		t.Fatal("read of init must pass")
	}
}

func TestRegularLatestCompletedWrite(t *testing.T) {
	h := History{
		{Proc: 0, IsWrite: true, Val: 1, Start: 0, End: 1},
		{Proc: 0, IsWrite: true, Val: 2, Start: 2, End: 3},
		{Proc: 1, Val: 2, Start: 4, End: 5},
	}
	if !mustRegular(t, h, 0) {
		t.Fatal("read of latest completed write must pass")
	}
	h[2].Val = 1 // stale: an intervening write completed
	if mustRegular(t, h, 0) {
		t.Fatal("stale read must fail regularity")
	}
}

func TestRegularOverlappingWriteAllowsOldOrNew(t *testing.T) {
	w := Op{Proc: 0, IsWrite: true, Val: 5, Start: 10, End: 20}
	for _, val := range []int{0, 5} {
		h := History{w, {Proc: 1, Val: val, Start: 12, End: 18}}
		if !mustRegular(t, h, 0) {
			t.Fatalf("overlapping read of %d must pass", val)
		}
	}
	h := History{w, {Proc: 1, Val: 9, Start: 12, End: 18}}
	if mustRegular(t, h, 0) {
		t.Fatal("overlapping read must not invent values")
	}
}

func TestRegularPermitsNewOldInversion(t *testing.T) {
	// The defining gap between regular and atomic: two sequential reads
	// overlapping one write may return new then old.
	h := History{
		{Proc: 0, IsWrite: true, Val: 1, Start: 0, End: 100},
		{Proc: 1, Val: 1, Start: 10, End: 20},
		{Proc: 1, Val: 0, Start: 30, End: 40},
	}
	if !mustRegular(t, h, 0) {
		t.Fatal("regularity must permit new-old inversion")
	}
	// ... which atomicity must reject.
	ok, err := Check(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("atomicity must reject new-old inversion")
	}
}

func TestRegularDetailPinpointsConflict(t *testing.T) {
	h := History{
		{Proc: 0, IsWrite: true, Val: 1, Start: 0, End: 1},
		{Proc: 0, IsWrite: true, Val: 2, Start: 2, End: 3},
		{Proc: 1, Val: 1, Start: 4, End: 5}, // stale: write of 2 completed first
	}
	v, err := CheckRegularSWMRDetail(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("stale read not reported")
	}
	if v.Read != h[2] || v.LatestWrite != h[1] || !v.HasWrite || v.Expected != 2 {
		t.Fatalf("violation = %+v", v)
	}
	if s := v.String(); s == "" {
		t.Fatal("empty violation description")
	}

	// No preceding write: the read must have returned init.
	h = History{{Proc: 1, Val: 9, Start: 0, End: 1}}
	v, err = CheckRegularSWMRDetail(h, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.HasWrite || v.Expected != 7 {
		t.Fatalf("violation = %+v", v)
	}

	// Clean history: nil violation.
	h = History{
		{Proc: 0, IsWrite: true, Val: 1, Start: 0, End: 1},
		{Proc: 1, Val: 1, Start: 2, End: 3},
	}
	if v, err = CheckRegularSWMRDetail(h, 0); err != nil || v != nil {
		t.Fatalf("clean history: v=%+v err=%v", v, err)
	}
}

func TestRegularRejectsMalformedHistories(t *testing.T) {
	h := History{{Proc: 0, IsWrite: true, Val: 1, Start: 5, End: 3}}
	if _, err := CheckRegularSWMR(h, 0); err == nil {
		t.Fatal("expected error for End < Start")
	}
	h = History{
		{Proc: 0, IsWrite: true, Val: 1, Start: 0, End: 10},
		{Proc: 0, IsWrite: true, Val: 2, Start: 5, End: 15},
	}
	if _, err := CheckRegularSWMR(h, 0); err == nil {
		t.Fatal("expected error for overlapping single-writer writes")
	}
}

func TestRegularAdjacentWritesAreNotOverlap(t *testing.T) {
	// End == next Start is adjacency under the step-clock convention.
	h := History{
		{Proc: 0, IsWrite: true, Val: 1, Start: 0, End: 5},
		{Proc: 0, IsWrite: true, Val: 2, Start: 5, End: 9},
		{Proc: 1, Val: 2, Start: 10, End: 11},
	}
	if !mustRegular(t, h, 0) {
		t.Fatal("adjacent writes must be accepted")
	}
}
