// Package audit is the online invariant monitor: a set of pluggable runtime
// probes that continuously check the boundedness and consistency properties
// the paper proves — coin counters confined to {-(M+1)..M+1} (§3, Lemmas
// 3.3–3.4), strip edge counters confined to {0..3K-1} with decoded weights
// clamped at K (§4), scan handshake integrity and sampled register
// regularity (§2, P1), and end-of-instance agreement/validity — paired with
// a per-instance bounded flight recorder that dumps recent events plus a
// state snapshot as JSONL whenever any probe fires (see flight.go).
//
// Like the obs bus it plugs into, the monitor has a zero-cost disabled path:
// a nil *Monitor is valid and every probe method nil-checks the receiver, so
// instrumented hot paths (walk steps, strip incs, register reads) pay one
// predictable branch and zero allocations when auditing is off. Probes are
// strictly passive — they never take scheduler steps and never consume
// process randomness — so enabling them cannot perturb decisions or step
// counts.
//
// The package sits between obs and the protocol layers: it imports only obs,
// linearize and the standard library, so walk, strip, scan, register and
// core can all depend on it without cycles. Probe signatures therefore take
// primitives (step, pid, counter values) rather than layer types.
package audit

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/linearize"
	"github.com/dsrepro/consensus/internal/obs"
)

// Probe identifies one invariant checker.
type Probe uint8

// Probes, bottom-up through the protocol stack. DESIGN.md §12 maps each to
// the paper property it guards.
const (
	// ProbeCoinRange: every coin counter stays in {-(M+1)..M+1} (Lemmas
	// 3.3/3.4 make the truncation at ±(M+1) safe; beyond it is a bug).
	ProbeCoinRange Probe = iota
	// ProbeStripRange: every strip edge counter stays in {0..3K-1} (§4.3's
	// cyclic pointer representation).
	ProbeStripRange
	// ProbeStripGraph: a decoded distance graph satisfies the §4.2 reachable-
	// state properties (edge existence, weights in [0..K], no positive
	// cycles, distances at most K·n). Sampled.
	ProbeStripGraph
	// ProbeScanHandshake: a scan returned as clean although the two collects
	// disagree on a toggle bit — a torn double collect (§2.2).
	ProbeScanHandshake
	// ProbeRegRegular: a sampled single-writer register history failed the
	// regular-register contract (P1) under linearize.CheckRegularSWMRDetail.
	ProbeRegRegular
	// ProbeAgreement: two processes decided different values (consistency).
	ProbeAgreement
	// ProbeValidity: a process decided a value nobody proposed.
	ProbeValidity
	// ProbeBudget: the run exhausted its step budget before every process
	// decided — not a safety violation, but it triggers a flight dump so the
	// stuck state is inspectable.
	ProbeBudget
	numProbes
)

// String returns the stable probe identifier used in violation details,
// Violations maps and dump headers.
func (p Probe) String() string {
	switch p {
	case ProbeCoinRange:
		return "coin.range"
	case ProbeStripRange:
		return "strip.range"
	case ProbeStripGraph:
		return "strip.graph"
	case ProbeScanHandshake:
		return "scan.handshake"
	case ProbeRegRegular:
		return "reg.regular"
	case ProbeAgreement:
		return "core.agreement"
	case ProbeValidity:
		return "core.validity"
	case ProbeBudget:
		return "core.budget"
	default:
		return fmt.Sprintf("Probe(%d)", int(p))
	}
}

// ProbeForName inverts String.
func ProbeForName(name string) (Probe, bool) {
	for p := Probe(0); p < numProbes; p++ {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Probes returns every probe in declaration order.
func Probes() []Probe {
	out := make([]Probe, 0, numProbes)
	for p := Probe(0); p < numProbes; p++ {
		out = append(out, p)
	}
	return out
}

// Options configures a Monitor.
type Options struct {
	// SampleEvery thins the expensive probes (graph validation, register
	// regularity windows) to one audit per SampleEvery opportunities; 1 runs
	// them at every opportunity (the post-mortem escalation), 0 picks the
	// default (64). The cheap range probes always run on every step.
	SampleEvery int
	// FlightCap is the flight recorder's ring capacity (default 256).
	FlightCap int
	// DumpDir, when non-empty, writes each flight dump as a JSONL file there;
	// when empty dumps are kept in memory only (Dumps).
	DumpDir string
	// MaxDumps bounds the dumps produced per instance (default 4) so a
	// violation storm cannot fill the disk.
	MaxDumps int
	// RegWindow is the sampled regularity window length in operations
	// (default 24; at most 64 — the linearize checker's bitmask limit).
	RegWindow int
}

func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.FlightCap <= 0 {
		o.FlightCap = 256
	}
	if o.MaxDumps <= 0 {
		o.MaxDumps = 4
	}
	if o.RegWindow <= 0 {
		o.RegWindow = 24
	}
	if o.RegWindow > 64 {
		o.RegWindow = 64
	}
	return o
}

// RunInfo identifies the execution a monitor watches — everything the
// post-mortem replay tool needs to rebuild the exact run deterministically.
// The consensus package fills it; cmd/consensus-audit consumes it.
type RunInfo struct {
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	// Instance is the batch instance index, or -1 for a single Solve run.
	Instance  int    `json:"instance"`
	BatchSeed int64  `json:"batch_seed,omitempty"`
	Inputs    []int  `json:"inputs"`
	Schedule  string `json:"schedule,omitempty"` // "round-robin" | "random" | "lagger:victim:period"
	Crash     string `json:"crash,omitempty"`    // "pid:step,pid:step"
	K         int    `json:"k,omitempty"`
	B         int    `json:"b,omitempty"`
	M         int    `json:"m,omitempty"`
	Memory    string `json:"memory,omitempty"` // "arrow" | "seqsnap" | "waitfree"
	Bloom     bool   `json:"bloom,omitempty"`
	FastPath  bool   `json:"fast_decide,omitempty"`
	MaxSteps  int64  `json:"max_steps,omitempty"`
	// Mutation names the fault-injection hook active during the run (see
	// mutation.go); replay re-enables it so the violation reproduces.
	Mutation string `json:"mutation,omitempty"`
	// Substrate names the execution backend ("" or "simulated" means the
	// deterministic step scheduler; "native" means real goroutines with no
	// arbiter).
	Substrate string `json:"substrate,omitempty"`
	// Dispatch names the scheduling engine ("" or "sequential" means one
	// adversary grant per step; "commuting" means batched commuting-step
	// dispatch). Replay restores the mode so schedules re-derive exactly.
	Dispatch string `json:"dispatch,omitempty"`
	// Replayable reports whether the dump can be replayed deterministically
	// from this header. Nil means true (dumps predating the field were all
	// simulated); native-substrate dumps carry an explicit false, and
	// cmd/consensus-audit prints them instead of replaying.
	Replayable *bool `json:"replayable,omitempty"`
}

// IsReplayable reports whether a dump with this header replays
// deterministically (nil Replayable means yes, for dumps predating the
// native substrate).
func (i RunInfo) IsReplayable() bool { return i.Replayable == nil || *i.Replayable }

// Monitor is one instance's invariant monitor. A nil *Monitor is fully
// disabled at zero cost; construct one with New to enable auditing.
//
// Probe entry points are safe to call from the simulated processes'
// goroutines: counters are atomic, and the few stateful probes (register
// windows, dumps) take a small mutex on paths that are either rare
// (violations) or already sampled.
type Monitor struct {
	opts Options
	info RunInfo

	sink *obs.Sink
	ring *obs.Ring

	// stateFn captures the protocol's current shared state for flight dumps;
	// installed by the protocol via SetStateFn.
	stateFn func() State

	viol        [numProbes]atomic.Int64
	truncations atomic.Int64

	// nonSerialized marks a run whose steps are NOT serialized by the step
	// arbiter (native substrates). Two probe families assume serialization
	// and are disabled: the interval-based regularity windows (a reader can
	// register the op that saw a write before the writer registers the write
	// itself, so windows would report phantom violations) and the decoded-
	// graph global validation (see AuditGraphs: scan-to-write staleness
	// under hardware preemption reaches states the §4.2 sequential-game
	// invariants do not cover). Every other probe checks process-local
	// values and stays armed.
	nonSerialized bool

	// graphTick thins ProbeStripGraph; under the step scheduler its order of
	// increments is deterministic.
	graphTick atomic.Int64

	reg regAudit

	dumpMu    sync.Mutex
	dumps     []Dump
	dumpFiles []string
}

// regAudit is the sampled register-regularity state: one window at a time,
// armed at a write (whose toggle determines the pre-window value — toggles
// alternate, so the value before a write of toggle t is !t), filled to
// RegWindow ops, checked, then cooled down for SampleEvery ops.
type regAudit struct {
	mu       sync.Mutex
	armed    int // register id the window watches; -1 when idle
	initVal  int
	rec      *linearize.Recorder
	cooldown int
}

// New returns an enabled monitor.
func New(opts Options) *Monitor {
	opts = opts.withDefaults()
	m := &Monitor{opts: opts, ring: obs.NewRing(opts.FlightCap)}
	m.info.Instance = -1
	m.reg.armed = -1
	m.reg.rec = linearize.NewRecorder(opts.RegWindow)
	return m
}

// Enabled reports whether auditing is on (m non-nil).
func (m *Monitor) Enabled() bool { return m != nil }

// Options returns the effective options (zero value on a nil monitor).
func (m *Monitor) Options() Options {
	if m == nil {
		return Options{}
	}
	return m.opts
}

// SetRun records the execution's identity for dump headers. Call before the
// run starts.
func (m *Monitor) SetRun(info RunInfo) {
	if m == nil {
		return
	}
	m.info = info
}

// Run returns the recorded execution identity.
func (m *Monitor) Run() RunInfo {
	if m == nil {
		return RunInfo{}
	}
	return m.info
}

// BindSink attaches the run's observability sink: violations are emitted on
// it (landing in its registry and any trace surfaces). Call before the run
// starts. A nil sink leaves violations counted only in the monitor.
func (m *Monitor) BindSink(s *obs.Sink) {
	if m == nil {
		return
	}
	m.sink = s
}

// FlightRecorder returns the monitor's bounded event ring. The executor tees
// the run's event stream into it (obs.Tee with any existing recorder) so the
// most recent events are available for dumps.
func (m *Monitor) FlightRecorder() *obs.Ring {
	if m == nil {
		return nil
	}
	return m.ring
}

// SetStateFn installs the protocol's state-snapshot provider for flight
// dumps. fn is called on the violating process's goroutine; it may allocate
// (violations are off the hot path) but must not take scheduler steps.
func (m *Monitor) SetStateFn(fn func() State) {
	if m == nil {
		return
	}
	m.stateFn = fn
}

// violate counts a probe firing, emits an AuditViolation event, raises the
// last-violation gauge and produces a flight dump. detail is only built by
// callers on the (rare) violation path.
func (m *Monitor) violate(p Probe, step int64, pid int, value int64, detail string) {
	m.viol[p].Add(1)
	m.sink.Emit(obs.Event{Step: step, Pid: pid, Kind: obs.AuditViolation, Value: value,
		Detail: p.String() + ": " + detail})
	m.sink.GaugeMax(obs.GaugeAuditLastStep, step)
	m.dump(p, step, pid, detail)
}

// CoinCounter audits one walk-counter value c against bound M (Lemmas
// 3.3/3.4): |c| must never exceed M+1, and |c| == M+1 is a truncation, which
// is legal but accounted. M <= 0 (unbounded counters) disables the probe.
func (m *Monitor) CoinCounter(step int64, pid, c, bound int) {
	if m == nil || bound <= 0 {
		return
	}
	a := c
	if a < 0 {
		a = -a
	}
	switch {
	case a > bound+1:
		m.violate(ProbeCoinRange, step, pid, int64(c),
			fmt.Sprintf("counter %d outside {-(M+1)..M+1}, M=%d", c, bound))
	case a == bound+1:
		m.truncations.Add(1)
	}
}

// Truncations returns how many walk steps saturated at ±(M+1) — the
// truncation accounting that pairs with ProbeCoinRange (legal saturations
// are counted, not flagged).
func (m *Monitor) Truncations() int64 {
	if m == nil {
		return 0
	}
	return m.truncations.Load()
}

// StripRow audits a freshly computed strip counter row: every entry must lie
// in {0..3K-1} (§4.3).
func (m *Monitor) StripRow(step int64, pid int, row []int, k int) {
	if m == nil {
		return
	}
	hi := 3 * k
	for j, v := range row {
		if v < 0 || v >= hi {
			m.violate(ProbeStripRange, step, pid, int64(v),
				fmt.Sprintf("counter e[%d][%d]=%d outside {0..%d}", pid, j, v, hi-1))
		}
	}
}

// AuditGraphs reports whether this call site should run the (sampled)
// decoded-graph validation; callers pair it with GraphResult:
//
//	if mon.AuditGraphs() { mon.GraphResult(step, pid, g.Validate()) }
//
// False on non-serialized (native) runs. Validate's global properties (no
// positive cycles, bounded path weights) are §4.2 sequential-game invariants
// that hold concurrently only while the window between a process's scan and
// the publish of the row computed from it stays small: a process descheduled
// between the two publishes a consistently-stale row, and a third party's
// (perfectly linearizable) snapshot of it alongside fresher rows can decode
// to, e.g., A one round ahead of B yet tied with C while B and C are tied —
// a positive cycle from a reachable state. The step arbiter's schedules keep
// the window tight; hardware preemption does not, so only the per-pair
// decode checks (which EdgeFromCounters enforces on every scan) are sound
// there.
func (m *Monitor) AuditGraphs() bool {
	if m == nil || m.nonSerialized {
		return false
	}
	return m.graphTick.Add(1)%int64(m.opts.SampleEvery) == 0
}

// GraphResult records the outcome of a sampled graph validation (§4.2): a
// non-nil err fires ProbeStripGraph.
func (m *Monitor) GraphResult(step int64, pid int, err error) {
	if m == nil || err == nil {
		return
	}
	m.violate(ProbeStripGraph, step, pid, 0, err.Error())
}

// ScanHandshake audits a returning scan: firstBad is the lowest slot whose
// toggle bits differ between the two collects as independently re-compared
// by the caller at the clean-return point, or -1 when they all match. A
// non-negative firstBad means the scan is returning a torn double collect.
func (m *Monitor) ScanHandshake(step int64, pid, firstBad int) {
	if m == nil || firstBad < 0 {
		return
	}
	m.violate(ProbeScanHandshake, step, pid, int64(firstBad),
		fmt.Sprintf("scan by p%d returned with toggle mismatch at slot %d (torn double collect)", pid, firstBad))
}

// SetNonSerialized marks (or clears) the run as one whose steps are not
// serialized by the step arbiter — a native substrate. Call before the run
// starts; it switches the regularity windows and the decoded-graph global
// validation off while leaving the value-based probes armed. Idempotent and
// cheap, so the executor always calls it (clearing any stale mark on a
// pooled monitor is moot — monitors are per-instance — but the symmetry
// keeps the contract simple).
func (m *Monitor) SetNonSerialized(on bool) {
	if m != nil {
		m.nonSerialized = on
	}
}

// AuditRegisters reports whether register-level op recording is active; the
// instrumented register checks it once per operation (one nil-check when
// auditing is off). False on non-serialized (native) runs: the regularity
// windows' interval analysis is only sound when ops are registered in
// linearization order, which only the step arbiter provides.
func (m *Monitor) AuditRegisters() bool { return m != nil && !m.nonSerialized }

// RegOp feeds one completed register operation into the sampled regularity
// window. reg identifies the register (slot index), val is the op's toggle
// bit as 0/1, and start/end are the global steps at invocation and response.
// Windows arm on a write (toggle bits alternate, so the pre-window value is
// the complement of the arming write's), fill to RegWindow ops on that
// register, then run linearize.CheckRegularSWMRDetail.
func (m *Monitor) RegOp(reg, pid int, isWrite bool, val int, start, end int64) {
	if m == nil {
		return
	}
	ra := &m.reg
	ra.mu.Lock()
	if ra.armed < 0 {
		if ra.cooldown > 0 {
			ra.cooldown--
			ra.mu.Unlock()
			return
		}
		if !isWrite {
			ra.mu.Unlock()
			return
		}
		ra.armed = reg
		ra.initVal = 1 - val
		ra.rec.Reset()
		ra.rec.Add(linearize.Op{Proc: pid, IsWrite: true, Val: val, Start: start, End: end})
		ra.mu.Unlock()
		return
	}
	if reg != ra.armed {
		ra.mu.Unlock()
		return
	}
	ra.rec.Add(linearize.Op{Proc: pid, IsWrite: isWrite, Val: val, Start: start, End: end})
	if !ra.rec.Full() {
		ra.mu.Unlock()
		return
	}
	v, err := linearize.CheckRegularSWMRDetail(ra.rec.History(), ra.initVal)
	armedReg := ra.armed
	ra.armed = -1
	ra.cooldown = m.opts.SampleEvery
	ra.mu.Unlock()
	if err != nil {
		m.violate(ProbeRegRegular, end, pid, int64(armedReg), "malformed history: "+err.Error())
		return
	}
	if v != nil {
		m.violate(ProbeRegRegular, v.Read.End, v.Read.Proc, int64(armedReg),
			fmt.Sprintf("register %d: %v", armedReg, v))
	}
}

// EndOfInstance runs the terminal checks once the instance finished:
// agreement (no two decided processes differ), validity (every decision was
// somebody's input) and the step-budget dump trigger.
func (m *Monitor) EndOfInstance(step int64, decided []bool, values, inputs []int, budgetExceeded bool) {
	if m == nil {
		return
	}
	agreed := -1
	for i, d := range decided {
		if !d {
			continue
		}
		if agreed == -1 {
			agreed = values[i]
		} else if values[i] != agreed {
			m.violate(ProbeAgreement, step, i,
				int64(values[i]), fmt.Sprintf("p%d decided %d but an earlier process decided %d", i, values[i], agreed))
		}
		valid := false
		for _, in := range inputs {
			if in == values[i] {
				valid = true
				break
			}
		}
		if !valid {
			m.violate(ProbeValidity, step, i, int64(values[i]),
				fmt.Sprintf("p%d decided %d, proposed by nobody (inputs %v)", i, values[i], inputs))
		}
	}
	if budgetExceeded {
		m.violate(ProbeBudget, step, -1, 0, "step budget exhausted before all processes decided")
	}
}

// ViolationCount returns how many times probe p fired.
func (m *Monitor) ViolationCount(p Probe) int64 {
	if m == nil || p >= numProbes {
		return 0
	}
	return m.viol[p].Load()
}

// TotalViolations sums every probe's firings.
func (m *Monitor) TotalViolations() int64 {
	if m == nil {
		return 0
	}
	var t int64
	for p := Probe(0); p < numProbes; p++ {
		t += m.viol[p].Load()
	}
	return t
}

// Violations returns the per-probe firing counts keyed by probe name;
// zero-count probes are omitted. Nil when nothing fired (or m is nil).
func (m *Monitor) Violations() map[string]int64 {
	if m == nil {
		return nil
	}
	var out map[string]int64
	for p := Probe(0); p < numProbes; p++ {
		if c := m.viol[p].Load(); c != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[p.String()] = c
		}
	}
	return out
}

// MergeViolations folds src into dst (allocating dst when needed) — the
// batch aggregation helper.
func MergeViolations(dst, src map[string]int64) map[string]int64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]int64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}
