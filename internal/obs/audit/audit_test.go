package audit

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

func TestProbeNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Probes() {
		name := p.String()
		if strings.Contains(name, "Probe(") {
			t.Fatalf("probe %d has no name", p)
		}
		if seen[name] {
			t.Fatalf("duplicate probe name %q", name)
		}
		seen[name] = true
		got, ok := ProbeForName(name)
		if !ok || got != p {
			t.Fatalf("ProbeForName(%q) = %v, %v; want %v", name, got, ok, p)
		}
	}
	if _, ok := ProbeForName("no.such.probe"); ok {
		t.Fatal("ProbeForName accepted an unknown name")
	}
}

// TestNilMonitorIsSafe locks the disabled path: every probe entry point must
// be a no-op on a nil receiver.
func TestNilMonitorIsSafe(t *testing.T) {
	var m *Monitor
	if m.Enabled() {
		t.Fatal("nil monitor reports enabled")
	}
	m.SetRun(RunInfo{})
	m.BindSink(nil)
	m.SetStateFn(nil)
	m.CoinCounter(1, 0, 99, 2)
	m.StripRow(1, 0, []int{99}, 2)
	if m.AuditGraphs() {
		t.Fatal("nil monitor wants graph audits")
	}
	m.GraphResult(1, 0, nil)
	m.ScanHandshake(1, 0, 3)
	if m.AuditRegisters() {
		t.Fatal("nil monitor wants register audits")
	}
	m.RegOp(0, 0, true, 1, 0, 1)
	m.EndOfInstance(1, []bool{true}, []int{0}, []int{0}, true)
	if m.TotalViolations() != 0 || m.Truncations() != 0 || m.Violations() != nil {
		t.Fatal("nil monitor accumulated state")
	}
	if m.FlightRecorder() != nil || m.Dumps() != nil || m.DumpFiles() != nil {
		t.Fatal("nil monitor returned recorder state")
	}
}

func TestCoinCounterProbe(t *testing.T) {
	m := New(Options{})
	m.CoinCounter(1, 0, 3, 8)    // in range
	m.CoinCounter(2, 0, -8, 8)   // at M: in range
	m.CoinCounter(3, 0, 9, 8)    // M+1: truncation, legal
	m.CoinCounter(4, 0, -9, 8)   // -(M+1): truncation, legal
	m.CoinCounter(5, 0, 100, 0)  // unbounded: probe disabled
	m.CoinCounter(6, 0, -100, 0) // unbounded
	if got := m.ViolationCount(ProbeCoinRange); got != 0 {
		t.Fatalf("in-range/truncated counters fired the probe %d times", got)
	}
	if got := m.Truncations(); got != 2 {
		t.Fatalf("Truncations = %d, want 2", got)
	}
	m.CoinCounter(7, 1, 10, 8)
	m.CoinCounter(8, 1, -10, 8)
	if got := m.ViolationCount(ProbeCoinRange); got != 2 {
		t.Fatalf("out-of-range counters fired %d times, want 2", got)
	}
}

func TestStripRowProbe(t *testing.T) {
	m := New(Options{})
	k := 2
	m.StripRow(1, 0, []int{0, 5, 3}, k) // all in {0..5}
	if m.ViolationCount(ProbeStripRange) != 0 {
		t.Fatal("in-range row fired the probe")
	}
	m.StripRow(2, 0, []int{0, 6, -1}, k) // two entries escape the cycle
	if got := m.ViolationCount(ProbeStripRange); got != 2 {
		t.Fatalf("out-of-range row fired %d times, want 2", got)
	}
}

func TestGraphSamplingCadence(t *testing.T) {
	m := New(Options{SampleEvery: 4})
	fired := 0
	for i := 0; i < 16; i++ {
		if m.AuditGraphs() {
			fired++
		}
	}
	if fired != 4 {
		t.Fatalf("AuditGraphs fired %d of 16 with SampleEvery=4, want 4", fired)
	}
	m.GraphResult(1, 0, nil) // clean validation: no violation
	if m.ViolationCount(ProbeStripGraph) != 0 {
		t.Fatal("clean graph validation fired the probe")
	}
	m.GraphResult(2, 0, errTest("w[0][1] exceeds K"))
	if m.ViolationCount(ProbeStripGraph) != 1 {
		t.Fatal("failed graph validation did not fire the probe")
	}
}

// TestNonSerializedDisablesArbiterProbes pins the native carve-outs: marking
// a run non-serialized must switch off exactly the two probe families whose
// soundness needs the step arbiter — register regularity windows and the
// decoded-graph global validation — and clearing the mark re-arms them.
func TestNonSerializedDisablesArbiterProbes(t *testing.T) {
	m := New(Options{SampleEvery: 1})
	m.SetNonSerialized(true)
	if m.AuditRegisters() {
		t.Fatal("AuditRegisters true on a non-serialized run")
	}
	for i := 0; i < 4; i++ {
		if m.AuditGraphs() {
			t.Fatal("AuditGraphs true on a non-serialized run")
		}
	}
	m.SetNonSerialized(false)
	if !m.AuditRegisters() {
		t.Fatal("AuditRegisters stayed off after clearing the mark")
	}
	if !m.AuditGraphs() {
		t.Fatal("AuditGraphs stayed off after clearing the mark")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestScanHandshakeProbe(t *testing.T) {
	m := New(Options{})
	m.ScanHandshake(1, 0, -1) // clean
	if m.ViolationCount(ProbeScanHandshake) != 0 {
		t.Fatal("clean handshake fired the probe")
	}
	m.ScanHandshake(2, 0, 3)
	if m.ViolationCount(ProbeScanHandshake) != 1 {
		t.Fatal("torn handshake did not fire the probe")
	}
}

// TestRegOpWindow drives the sampled regularity window directly: a clean
// alternating-toggle history passes, and a stale read (old value returned
// after the write completed) fires ProbeRegRegular.
func TestRegOpWindow(t *testing.T) {
	clean := New(Options{RegWindow: 2, SampleEvery: 1})
	clean.RegOp(0, 0, true, 1, 0, 1) // arms: initVal=0
	clean.RegOp(0, 1, false, 1, 2, 3)
	if got := clean.ViolationCount(ProbeRegRegular); got != 0 {
		t.Fatalf("clean window fired %d times", got)
	}

	stale := New(Options{RegWindow: 2, SampleEvery: 1})
	stale.RegOp(0, 0, true, 1, 0, 1)  // write 1 completes at step 1
	stale.RegOp(0, 1, false, 0, 2, 3) // read after it returns the old value
	if got := stale.ViolationCount(ProbeRegRegular); got != 1 {
		t.Fatalf("stale read fired %d times, want 1", got)
	}

	// Ops on other registers must not pollute an armed window.
	other := New(Options{RegWindow: 2, SampleEvery: 1})
	other.RegOp(0, 0, true, 1, 0, 1)
	other.RegOp(5, 1, false, 0, 2, 3) // different register: ignored
	other.RegOp(0, 1, false, 1, 4, 5)
	if got := other.ViolationCount(ProbeRegRegular); got != 0 {
		t.Fatalf("cross-register ops polluted the window: %d violations", got)
	}
}

func TestEndOfInstanceChecks(t *testing.T) {
	m := New(Options{})
	// Clean: both decided 1, which p1 proposed.
	m.EndOfInstance(10, []bool{true, true}, []int{1, 1}, []int{0, 1}, false)
	if m.TotalViolations() != 0 {
		t.Fatalf("clean instance produced violations: %v", m.Violations())
	}

	m = New(Options{})
	m.EndOfInstance(10, []bool{true, true}, []int{0, 1}, []int{0, 1}, false)
	if m.ViolationCount(ProbeAgreement) != 1 {
		t.Fatal("disagreement did not fire core.agreement")
	}

	m = New(Options{})
	m.EndOfInstance(10, []bool{true}, []int{7}, []int{0, 1}, false)
	if m.ViolationCount(ProbeValidity) != 1 {
		t.Fatal("invalid decision did not fire core.validity")
	}

	m = New(Options{})
	m.EndOfInstance(10, []bool{false, false}, []int{-1, -1}, []int{0, 1}, true)
	if m.ViolationCount(ProbeBudget) != 1 {
		t.Fatal("budget overrun did not fire core.budget")
	}
}

func TestViolationsMapAndMerge(t *testing.T) {
	m := New(Options{})
	if m.Violations() != nil {
		t.Fatal("clean monitor returned a non-nil violations map")
	}
	m.ScanHandshake(1, 0, 0)
	m.ScanHandshake(2, 0, 1)
	m.StripRow(3, 0, []int{-1}, 2)
	v := m.Violations()
	if v["scan.handshake"] != 2 || v["strip.range"] != 1 || len(v) != 2 {
		t.Fatalf("Violations = %v", v)
	}
	if m.TotalViolations() != 3 {
		t.Fatalf("TotalViolations = %d, want 3", m.TotalViolations())
	}

	merged := MergeViolations(nil, v)
	merged = MergeViolations(merged, map[string]int64{"scan.handshake": 1})
	if merged["scan.handshake"] != 3 || merged["strip.range"] != 1 {
		t.Fatalf("merged = %v", merged)
	}
	if got := MergeViolations(nil, nil); got != nil {
		t.Fatalf("MergeViolations(nil, nil) = %v, want nil", got)
	}
}

// TestViolationEmitsEvent checks a probe firing lands on the bound sink as an
// AuditViolation event with the probe name in the detail, and raises the
// last-violation gauge.
func TestViolationEmitsEvent(t *testing.T) {
	ring := obs.NewRing(8)
	sink := obs.NewSink(ring)
	m := New(Options{})
	m.BindSink(sink)
	m.ScanHandshake(42, 1, 0)
	events := ring.Events()
	var found bool
	for _, e := range events {
		if e.Kind == obs.AuditViolation {
			found = true
			if e.Step != 42 || e.Pid != 1 || !strings.HasPrefix(e.Detail, "scan.handshake: ") {
				t.Fatalf("violation event = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no AuditViolation event emitted")
	}
	if got := sink.Registry().Snapshot().Gauges[obs.GaugeAuditLastStep.String()]; got != 42 {
		t.Fatalf("last-violation gauge = %d, want 42", got)
	}
}

// testHook is registered once per process so the test survives -count>1
// (RegisterMutation panics on duplicates by design).
var (
	testHook     atomic.Bool
	testHookOnce sync.Once
)

func TestMutationRegistry(t *testing.T) {
	testHookOnce.Do(func() { RegisterMutation("test.hook", &testHook) })
	hook := &testHook
	defer DisableAll()

	names := Mutations()
	found := false
	for _, n := range names {
		if n == "test.hook" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Mutations() = %v, missing test.hook", names)
	}
	if err := EnableMutation("nope.nothing"); err == nil {
		t.Fatal("EnableMutation accepted an unknown name")
	}
	if ActiveMutation() != "" {
		t.Fatalf("ActiveMutation = %q with nothing enabled", ActiveMutation())
	}
	if err := EnableMutation("test.hook"); err != nil {
		t.Fatal(err)
	}
	if !hook.Load() {
		t.Fatal("EnableMutation did not set the hook")
	}
	if ActiveMutation() != "test.hook" {
		t.Fatalf("ActiveMutation = %q, want test.hook", ActiveMutation())
	}
	DisableAll()
	if hook.Load() || ActiveMutation() != "" {
		t.Fatal("DisableAll left a hook enabled")
	}
}
