package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsrepro/consensus/internal/obs"
)

// DumpVersion is the flight-dump format version stamped into every header.
const DumpVersion = 1

// State is the protocol-level shared-state snapshot embedded in a flight
// dump: whatever of the per-process preferences, round positions, coin
// counters and strip edges the protocol exposes. Slices the protocol does
// not populate are omitted from the JSON.
type State struct {
	// Prefs is the per-process current preference.
	Prefs []int `json:"prefs,omitempty"`
	// Rounds is the per-process current round.
	Rounds []int64 `json:"rounds,omitempty"`
	// Coins is the per-process current coin counter (bounded protocols: the
	// active slot's counter; unbounded: the current round's strip cell).
	Coins []int `json:"coins,omitempty"`
	// Edges is the strip edge-counter matrix e[i][j] (bounded protocols).
	Edges [][]int `json:"edges,omitempty"`
	// Strips is the per-process explicit coin strip (unbounded protocols).
	Strips [][]int `json:"strips,omitempty"`
}

// Dump is one flight-recorder dump: the violation that triggered it, the
// run's identity (enough to replay it deterministically), the protocol state
// snapshot at the moment of violation, and the most recent events from the
// bounded ring.
//
// On the wire a dump is JSONL: the first line is the header (Dump without
// Events, distinguished by the "audit_dump" version key), each following
// line one event in the shared obs JSONL encoding, so every existing trace
// tool (traceview, ReadJSONL) understands the tail of a dump file.
type Dump struct {
	Version int     `json:"audit_dump"`
	Probe   string  `json:"probe"`
	Step    int64   `json:"step"`
	Pid     int     `json:"pid"`
	Detail  string  `json:"detail"`
	Info    RunInfo `json:"run"`
	State   State   `json:"state"`
	// EventsDropped is how many older events the bounded ring overwrote
	// before the dump (the tail below is the most recent FlightCap only).
	EventsDropped int64 `json:"events_dropped,omitempty"`

	// Events is the ring's retained tail, oldest first. Encoded as the JSONL
	// body, not part of the header object.
	Events []obs.Event `json:"-"`
}

// WriteDump encodes d as JSONL (header line + one line per event).
func WriteDump(w io.Writer, d Dump) error {
	d.Version = DumpVersion
	head, err := json.Marshal(d)
	if err != nil {
		return err
	}
	head = append(head, '\n')
	if _, err := w.Write(head); err != nil {
		return err
	}
	var buf []byte
	for _, e := range d.Events {
		buf = e.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadDump decodes a JSONL flight dump written by WriteDump.
func ReadDump(r io.Reader) (Dump, error) {
	var d Dump
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return d, err
		}
		return d, fmt.Errorf("audit: empty dump")
	}
	head := sc.Bytes()
	if err := json.Unmarshal(head, &d); err != nil {
		return d, fmt.Errorf("audit: bad dump header: %w", err)
	}
	if d.Version != DumpVersion {
		return d, fmt.Errorf("audit: dump version %d not supported (want %d)", d.Version, DumpVersion)
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := obs.ParseEvent(line)
		if err != nil {
			return d, fmt.Errorf("audit: bad dump event line: %w", err)
		}
		d.Events = append(d.Events, e)
	}
	return d, sc.Err()
}

// ReadDumpFile reads a flight dump from a file.
func ReadDumpFile(path string) (Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return Dump{}, err
	}
	defer f.Close()
	return ReadDump(f)
}

// dump builds one flight dump for a violation and writes it out (to DumpDir
// when configured, in-memory otherwise), bounded by MaxDumps per instance.
func (m *Monitor) dump(p Probe, step int64, pid int, detail string) {
	m.dumpMu.Lock()
	defer m.dumpMu.Unlock()
	if len(m.dumps)+len(m.dumpFiles) >= m.opts.MaxDumps {
		return
	}
	d := Dump{
		Version: DumpVersion,
		Probe:   p.String(),
		Step:    step,
		Pid:     pid,
		Detail:  detail,
		Info:    m.info,
	}
	if m.stateFn != nil {
		d.State = m.stateFn()
	}
	if m.ring != nil {
		d.Events = m.ring.Events()
		d.EventsDropped = m.ring.Dropped()
	}
	if m.opts.DumpDir == "" {
		m.dumps = append(m.dumps, d)
		m.sink.Emit(obs.Event{Step: step, Pid: pid, Kind: obs.FlightDump, Value: int64(len(d.Events)),
			Detail: p.String()})
		return
	}
	seq := len(m.dumpFiles)
	inst := m.info.Instance
	if inst < 0 {
		inst = 0
	}
	path := filepath.Join(m.opts.DumpDir, fmt.Sprintf("audit-i%d-%s-%d.jsonl", inst, p.String(), seq))
	if err := m.writeDumpFile(path, d); err != nil {
		// Fall back to in-memory so the evidence survives an unwritable dir.
		m.dumps = append(m.dumps, d)
		m.sink.Emit(obs.Event{Step: step, Pid: pid, Kind: obs.FlightDump, Value: int64(len(d.Events)),
			Detail: p.String() + " (write failed: " + err.Error() + ")"})
		return
	}
	m.dumpFiles = append(m.dumpFiles, path)
	m.sink.Emit(obs.Event{Step: step, Pid: pid, Kind: obs.FlightDump, Value: int64(len(d.Events)),
		Detail: path})
}

func (m *Monitor) writeDumpFile(path string, d Dump) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteDump(bw, d); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Dumps returns the in-memory dumps produced so far (DumpDir unset, or
// fallback after a write failure).
func (m *Monitor) Dumps() []Dump {
	if m == nil {
		return nil
	}
	m.dumpMu.Lock()
	defer m.dumpMu.Unlock()
	return append([]Dump(nil), m.dumps...)
}

// DumpFiles returns the paths of the dump files written to DumpDir.
func (m *Monitor) DumpFiles() []string {
	if m == nil {
		return nil
	}
	m.dumpMu.Lock()
	defer m.dumpMu.Unlock()
	return append([]string(nil), m.dumpFiles...)
}
