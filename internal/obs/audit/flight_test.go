package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

func sampleDump() Dump {
	return Dump{
		Probe:  "coin.range",
		Step:   944,
		Pid:    3,
		Detail: "|c|=10 exceeds M+1=9",
		Info: RunInfo{
			Algorithm: "bounded",
			N:         4,
			Seed:      1,
			Instance:  -1,
			Inputs:    []int{0, 1, 1, 0},
			Schedule:  "lagger:0:3",
			Crash:     "1@50,2@90",
			M:         8,
			Memory:    "arrow",
			Mutation:  "walk.unclamped",
		},
		State: State{
			Prefs:  []int{0, 1, 1, 0},
			Rounds: []int64{2, 2, 3, 2},
			Coins:  []int{-1, 4, 10, 0},
			Edges:  [][]int{{0, 1}, {2, 0}},
		},
		EventsDropped: 7,
		Events: []obs.Event{
			{Step: 942, Pid: 3, Kind: obs.WalkStep, Value: 9},
			{Step: 943, Pid: 1, Kind: obs.ScanClean, Value: 0},
			{Step: 944, Pid: 3, Kind: obs.AuditViolation, Value: 10, Detail: "coin.range: |c|=10"},
		},
	}
}

func TestDumpRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != DumpVersion {
		t.Fatalf("Version = %d, want %d", got.Version, DumpVersion)
	}
	if got.Probe != d.Probe || got.Step != d.Step || got.Pid != d.Pid || got.Detail != d.Detail {
		t.Fatalf("header = %+v, want %+v", got, d)
	}
	if got.EventsDropped != d.EventsDropped {
		t.Fatalf("EventsDropped = %d, want %d", got.EventsDropped, d.EventsDropped)
	}
	if got.Info.Algorithm != d.Info.Algorithm || got.Info.Seed != d.Info.Seed ||
		got.Info.Schedule != d.Info.Schedule || got.Info.Crash != d.Info.Crash ||
		got.Info.Mutation != d.Info.Mutation || len(got.Info.Inputs) != len(d.Info.Inputs) {
		t.Fatalf("Info = %+v, want %+v", got.Info, d.Info)
	}
	if len(got.State.Prefs) != 4 || len(got.State.Edges) != 2 || got.State.Coins[2] != 10 {
		t.Fatalf("State = %+v", got.State)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("round-tripped %d events, want %d", len(got.Events), len(d.Events))
	}
	for i, e := range got.Events {
		if e != d.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, d.Events[i])
		}
	}
}

func TestReadDumpRejectsBadInput(t *testing.T) {
	if _, err := ReadDump(strings.NewReader("")); err == nil {
		t.Fatal("empty dump accepted")
	}
	if _, err := ReadDump(strings.NewReader("not json\n")); err == nil {
		t.Fatal("non-JSON header accepted")
	}
	if _, err := ReadDump(strings.NewReader(`{"audit_dump":99,"probe":"x"}` + "\n")); err == nil {
		t.Fatal("future dump version accepted")
	}
	// Valid header, corrupt event line.
	var buf bytes.Buffer
	if err := WriteDump(&buf, Dump{Probe: "strip.range"}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("{broken\n")
	if _, err := ReadDump(&buf); err == nil {
		t.Fatal("corrupt event line accepted")
	}
}

// TestMonitorDumpToDir drives a violation on a monitor configured with a
// DumpDir and checks the dump file round-trips through ReadDumpFile with the
// run identity, state snapshot and ring tail intact.
func TestMonitorDumpToDir(t *testing.T) {
	dir := t.TempDir()
	m := New(Options{DumpDir: dir, FlightCap: 4})
	m.SetRun(RunInfo{Algorithm: "bounded", N: 2, Seed: 7, Instance: 3, Inputs: []int{0, 1}})
	m.SetStateFn(func() State { return State{Prefs: []int{0, 1}} })
	for i := 0; i < 6; i++ { // overfill the 4-slot ring: 2 drops
		m.FlightRecorder().Record(obs.Event{Step: int64(i), Kind: obs.WalkStep})
	}
	m.ScanHandshake(42, 1, 0)

	files := m.DumpFiles()
	if len(files) != 1 {
		t.Fatalf("DumpFiles = %v, want one file", files)
	}
	if want := filepath.Join(dir, "audit-i3-scan.handshake-0.jsonl"); files[0] != want {
		t.Fatalf("dump path = %q, want %q", files[0], want)
	}
	if got := m.Dumps(); len(got) != 0 {
		t.Fatalf("in-memory dumps = %d, want 0 when DumpDir is set", len(got))
	}
	d, err := ReadDumpFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Probe != "scan.handshake" || d.Step != 42 || d.Pid != 1 {
		t.Fatalf("dump header = %+v", d)
	}
	if d.Info.Algorithm != "bounded" || d.Info.Instance != 3 || d.Info.Seed != 7 {
		t.Fatalf("dump run info = %+v", d.Info)
	}
	if len(d.State.Prefs) != 2 {
		t.Fatalf("dump state = %+v", d.State)
	}
	if len(d.Events) != 4 || d.EventsDropped != 2 {
		t.Fatalf("dump tail = %d events, %d dropped; want 4 and 2",
			len(d.Events), d.EventsDropped)
	}
	if d.Events[0].Step != 2 || d.Events[3].Step != 5 {
		t.Fatalf("ring tail out of order: %+v", d.Events)
	}
}

func TestMaxDumpsCap(t *testing.T) {
	m := New(Options{MaxDumps: 2})
	for i := 0; i < 5; i++ {
		m.ScanHandshake(int64(i), 0, 0)
	}
	if got := m.ViolationCount(ProbeScanHandshake); got != 5 {
		t.Fatalf("violations = %d, want 5 (counting is never capped)", got)
	}
	if got := len(m.Dumps()); got != 2 {
		t.Fatalf("dumps = %d, want MaxDumps = 2", got)
	}
}

// TestDumpFallsBackInMemory checks an unwritable DumpDir degrades to an
// in-memory dump instead of losing the evidence.
func TestDumpFallsBackInMemory(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// DumpDir nested under a regular file: MkdirAll must fail.
	m := New(Options{DumpDir: filepath.Join(blocked, "sub")})
	m.ScanHandshake(1, 0, 0)
	if len(m.DumpFiles()) != 0 {
		t.Fatal("dump file written under an unwritable dir")
	}
	if got := len(m.Dumps()); got != 1 {
		t.Fatalf("in-memory fallback dumps = %d, want 1", got)
	}
}

// FuzzAuditDump throws arbitrary bytes at the dump reader: it must return an
// error or a dump, never panic, and anything it accepts must re-encode and
// re-parse to the same header.
func FuzzAuditDump(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteDump(&seed, sampleDump()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{\"audit_dump\":1}\n"))
	f.Add([]byte("{\"audit_dump\":2}\n"))
	f.Add([]byte("{broken"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDump(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDump(&buf, d); err != nil {
			t.Fatalf("re-encoding an accepted dump failed: %v", err)
		}
		d2, err := ReadDump(&buf)
		if err != nil {
			t.Fatalf("re-parsing a re-encoded dump failed: %v", err)
		}
		if d2.Probe != d.Probe || d2.Step != d.Step || d2.Pid != d.Pid ||
			d2.EventsDropped != d.EventsDropped || len(d2.Events) != len(d.Events) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", d2, d)
		}
	})
}
