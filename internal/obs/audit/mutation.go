package audit

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Mutation hooks are deliberate fault injectors used to prove the probes
// actually fire: each protocol layer registers one or more named
// atomic.Bool switches (via its init function) that, when enabled, break a
// specific invariant — the coin clamp, the strip pointer cycle, the scan
// handshake. The mutation tests enable one, run an instance with the monitor
// on, and assert the matching probe fired; ReplayConfig re-enables the
// mutation named in a dump header so replays reproduce the violation.
//
// Hooks are runtime switches rather than build tags so `go test ./...` runs
// the mutation tests without special flags; each hook is a single atomic
// load on its hot path, disabled by default.

var (
	mutMu  sync.Mutex
	mutTab = map[string]*atomic.Bool{}
)

// RegisterMutation registers a named fault-injection switch. Layers call it
// from init; registering the same name twice panics.
func RegisterMutation(name string, flag *atomic.Bool) {
	mutMu.Lock()
	defer mutMu.Unlock()
	if _, dup := mutTab[name]; dup {
		panic("audit: duplicate mutation " + name)
	}
	mutTab[name] = flag
}

// EnableMutation turns the named fault injector on. It errors on unknown
// names so tests fail loudly when a hook is renamed.
func EnableMutation(name string) error {
	mutMu.Lock()
	defer mutMu.Unlock()
	f, ok := mutTab[name]
	if !ok {
		return fmt.Errorf("audit: unknown mutation %q (have %v)", name, mutationNamesLocked())
	}
	f.Store(true)
	return nil
}

// DisableAll turns every registered fault injector off (test cleanup).
func DisableAll() {
	mutMu.Lock()
	defer mutMu.Unlock()
	for _, f := range mutTab {
		f.Store(false)
	}
}

// Mutations returns the registered mutation names, sorted.
func Mutations() []string {
	mutMu.Lock()
	defer mutMu.Unlock()
	return mutationNamesLocked()
}

func mutationNamesLocked() []string {
	names := make([]string, 0, len(mutTab))
	for n := range mutTab {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ActiveMutation returns the name of the enabled fault injector ("" when all
// are off; the first in sorted order if several are on). Recorded into
// RunInfo so dumps are self-describing.
func ActiveMutation() string {
	mutMu.Lock()
	defer mutMu.Unlock()
	for _, n := range mutationNamesLocked() {
		if mutTab[n].Load() {
			return n
		}
	}
	return ""
}
