// Package obs is the unified cross-layer observability bus: every protocol
// layer (register, scan, walk, strip, sched, core) reports onto one event
// stream and one metrics registry through a *Sink.
//
// The design point is a zero-cost disabled path: a nil *Sink is a valid sink
// whose methods are nil-checked no-ops, so instrumented hot paths (register
// reads, walk steps) pay one predictable branch and zero allocations when
// observability is off. When only metrics are wanted, a Sink with a nil
// Recorder counts every event into the registry without recording it;
// emitters must guard Detail-string construction behind Sink.Tracing so the
// metrics-only mode stays allocation-free too.
//
// The package is a leaf: it imports only the standard library, so every
// other package in the repository (including sched) can depend on it.
package obs

import (
	"fmt"
	"strconv"
)

// Layer identifies the protocol layer an event originated from.
type Layer uint8

// Layers, bottom-up through the protocol stack.
const (
	LayerUnknown Layer = iota
	LayerRegister
	LayerScan
	LayerWalk
	LayerStrip
	LayerSched
	LayerCore
	LayerPhase
	// LayerAudit carries the invariant monitor's events (violations, flight
	// dumps); see internal/obs/audit.
	LayerAudit
	// LayerObs carries the bus's own bookkeeping (trace-loss accounting).
	LayerObs
	numLayers
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerRegister:
		return "register"
	case LayerScan:
		return "scan"
	case LayerWalk:
		return "walk"
	case LayerStrip:
		return "strip"
	case LayerSched:
		return "sched"
	case LayerCore:
		return "core"
	case LayerPhase:
		return "phase"
	case LayerAudit:
		return "audit"
	case LayerObs:
		return "obs"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Kind classifies an event. Kinds are namespaced per layer; Kind.Layer maps
// each kind back to its layer.
type Kind uint8

// Event kinds, grouped by layer.
const (
	KindUnknown Kind = iota

	// register layer: one event per register operation, per register class.
	RegSWMRRead
	RegSWMRWrite
	Reg2WRead
	Reg2WWrite
	RegBloomRead
	RegBloomWrite
	RegMRMWRead  // anonymous-setting multi-writer register; Value = reader pid
	RegMRMWWrite // Value = writer pid

	// scan layer.
	ScanClean  // a scan returned; Value = retries this scan took
	ScanRetry  // one retried collect iteration
	ScanBorrow // a wait-free scan completed by borrowing an embedded view
	ScanHandshake

	// walk layer.
	WalkStep     // one random-walk counter move; Value = new counter
	WalkOverflow // a counter saturated at ±(M+1)
	WalkDecided  // a process observed a decided coin; Value = Outcome

	// strip layer.
	StripMove  // one inc_graph application; Value = edge counters advanced
	StripClamp // edges already saturated at weight K during an inc; Value = count

	// sched layer.
	SchedGrant // the adversary granted one atomic step

	// core layer (the protocol events formerly on core's traceSink).
	CoreStart
	CoreRound
	CorePref
	CoreFlip
	CoreCoin
	CoreDecide

	// phase layer: one event per closed phase span; Value = atomic steps the
	// process spent in the phase segment (zero-length spans are not emitted).
	SpanPrefer
	SpanCoin
	SpanStrip
	SpanDecide

	// audit layer: the invariant monitor's surface. AuditViolation is one
	// probe firing (Detail names the probe); FlightDump is one flight-recorder
	// dump being produced (Detail carries the file path or probe name).
	AuditViolation
	FlightDump

	// obs layer: TraceDropped counts ring-recorder events lost to overwrite
	// (see Ring.CountDropsInto) so trace loss shows up at /metrics.
	TraceDropped

	numKinds
)

// kindInfo is the static per-kind table: wire identifier (JSONL), short
// human label (text traces), and owning layer.
var kindInfo = [numKinds]struct {
	id    string
	human string
	layer Layer
}{
	KindUnknown:   {"unknown", "unknown", LayerUnknown},
	RegSWMRRead:   {"register.swmr.read", "swmr-r", LayerRegister},
	RegSWMRWrite:  {"register.swmr.write", "swmr-w", LayerRegister},
	Reg2WRead:     {"register.2w2r.read", "2w2r-r", LayerRegister},
	Reg2WWrite:    {"register.2w2r.write", "2w2r-w", LayerRegister},
	RegBloomRead:  {"register.bloom.read", "bloom-r", LayerRegister},
	RegBloomWrite: {"register.bloom.write", "bloom-w", LayerRegister},
	RegMRMWRead:   {"register.mrmw.read", "mrmw-r", LayerRegister},
	RegMRMWWrite:  {"register.mrmw.write", "mrmw-w", LayerRegister},
	ScanClean:     {"scan.clean", "scan", LayerScan},
	ScanRetry:     {"scan.retry", "retry", LayerScan},
	ScanBorrow:    {"scan.borrow", "borrow", LayerScan},
	ScanHandshake: {"scan.handshake", "hshake", LayerScan},
	WalkStep:      {"walk.step", "wstep", LayerWalk},
	WalkOverflow:  {"walk.overflow", "ovflow", LayerWalk},
	WalkDecided:   {"walk.decided", "wdec", LayerWalk},
	StripMove:     {"strip.move", "move", LayerStrip},
	StripClamp:    {"strip.clamp", "clamp", LayerStrip},
	SchedGrant:    {"sched.grant", "grant", LayerSched},
	CoreStart:     {"core.start", "start", LayerCore},
	CoreRound:     {"core.round_advance", "round+", LayerCore},
	CorePref:      {"core.pref_change", "pref", LayerCore},
	CoreFlip:      {"core.coin_flip", "flip", LayerCore},
	CoreCoin:      {"core.coin_decided", "coin", LayerCore},
	CoreDecide:    {"core.decide", "decide", LayerCore},
	SpanPrefer:    {"phase.prefer", "s-pref", LayerPhase},
	SpanCoin:      {"phase.coin", "s-coin", LayerPhase},
	SpanStrip:     {"phase.strip", "s-strip", LayerPhase},
	SpanDecide:    {"phase.decide", "s-dec", LayerPhase},

	AuditViolation: {"audit.violation", "viol", LayerAudit},
	FlightDump:     {"audit.flight_dump", "fdump", LayerAudit},
	TraceDropped:   {"obs.trace_dropped", "tdrop", LayerObs},
}

// kindByID inverts kindInfo for the JSONL decoder.
var kindByID = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[kindInfo[k].id] = k
	}
	return m
}()

// Layer returns the layer the kind belongs to.
func (k Kind) Layer() Layer {
	if k >= numKinds {
		return LayerUnknown
	}
	return kindInfo[k].layer
}

// ID returns the stable wire identifier ("scan.retry") used in JSONL traces
// and metrics snapshots.
func (k Kind) ID() string {
	if k >= numKinds {
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
	return kindInfo[k].id
}

// String returns the short human label used in text traces ("retry").
func (k Kind) String() string {
	if k >= numKinds {
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
	return kindInfo[k].human
}

// KindForID returns the kind with the given wire identifier.
func KindForID(id string) (Kind, bool) {
	k, ok := kindByID[id]
	return k, ok
}

// Kinds returns every defined kind in declaration order (registry and
// rendering helpers iterate it).
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds-1)
	for k := KindUnknown + 1; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Event is one cross-layer observation. The struct is a plain value: emitting
// one allocates nothing.
type Event struct {
	// Step is the global scheduler step at emission.
	Step int64
	// Pid is the process the event belongs to.
	Pid int
	// Kind classifies the event (and determines its layer).
	Kind Kind
	// Round is the process's protocol round at emission, when meaningful.
	Round int64
	// Value is a kind-specific numeric payload (counter value, retry count,
	// moved-edge count, ...). Zero when the kind carries none.
	Value int64
	// Detail is an optional human-readable annotation. Emitters must only
	// build it when Sink.Tracing reports a recorder is installed.
	Detail string
}

// String renders the event for text traces:
//
//	step    1234  p0  r3   core     round+ [detail]
func (e Event) String() string {
	s := fmt.Sprintf("step %7d  p%-2d r%-3d %-8s %-7s",
		e.Step, e.Pid, e.Round, e.Kind.Layer(), e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}
