package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of int64 observations, safe for
// concurrent use. Buckets are defined by ascending inclusive upper bounds;
// an observation lands in the first bucket whose bound is >= the value, or in
// the implicit overflow bucket. Count, sum and exact min/max are tracked on
// the side, so Mean/Min/Max are exact while Percentile is a bucket-resolution
// estimate.
//
// The harness re-exports this type (internal/harness/stats.go) so experiment
// tables and the metrics registry share one implementation; it lives here
// because obs must stay a leaf package.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// Bucket is one histogram bucket in a snapshot: the inclusive upper bound
// (math.MaxInt64 for the overflow bucket) and the number of observations.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// NewHistogram returns a histogram with the given ascending inclusive upper
// bounds. NewHistogram() (no bounds) degenerates to a single overflow bucket
// that still tracks count/sum/min/max exactly.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Percentile returns a bucket-resolution estimate of the p-th percentile
// (0 <= p <= 100): the upper bound of the bucket the nearest-rank observation
// falls in, clamped to the exact observed min/max.
func (h *Histogram) Percentile(p float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			var est float64
			if i < len(h.bounds) {
				est = float64(h.bounds[i])
			} else {
				est = float64(h.Max())
			}
			// The estimate cannot be outside the exact observed range.
			if lo := float64(h.Min()); est < lo {
				est = lo
			}
			if hi := float64(h.Max()); est > hi {
				est = hi
			}
			return est
		}
	}
	return float64(h.Max())
}

// Buckets returns a snapshot of the bucket counts, overflow bucket last.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = Bucket{Le: le, Count: h.counts[i].Load()}
	}
	return out
}

// HistSnapshot is an immutable summary of a histogram. The JSON field names
// are the wire schema of benchmark reports (BENCH_batch.json "hists",
// consensus-load -json; see DESIGN.md §10).
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// P999 is the 99.9th percentile, added for the tail-latency family
	// (lat.solve); omitted from artifacts that predate it, and zero decodes as
	// "not recorded" (a real p999 of a non-empty histogram is >= min > 0 for
	// duration data).
	P999    float64  `json:"p999,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Min:     h.Min(),
		Max:     h.Max(),
		Mean:    h.Mean(),
		P50:     h.Percentile(50),
		P90:     h.Percentile(90),
		P99:     h.Percentile(99),
		P999:    h.Percentile(99.9),
		Buckets: h.Buckets(),
	}
}

// percentileFromBuckets is Histogram.Percentile over snapshot buckets: the
// nearest-rank bucket's upper bound, clamped to [min, max]. Used when summary
// percentiles must be recomputed after merging snapshots.
func percentileFromBuckets(buckets []Bucket, count, min, max int64, p float64) float64 {
	if count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		if cum >= rank {
			est := float64(b.Le)
			if b.Le == math.MaxInt64 {
				est = float64(max)
			}
			if lo := float64(min); est < lo {
				est = lo
			}
			if hi := float64(max); est > hi {
				est = hi
			}
			return est
		}
	}
	return float64(max)
}
