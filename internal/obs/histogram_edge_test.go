package obs

import (
	"math"
	"testing"
)

// TestPercentileEdgeCases pins Percentile's contract at the boundaries of its
// domain: empty histogram, a single sample, and the degenerate p=0 / p=100
// requests.
func TestPercentileEdgeCases(t *testing.T) {
	empty := NewHistogram(10, 100)
	for _, p := range []float64{0, 50, 100} {
		if got := empty.Percentile(p); got != 0 {
			t.Errorf("empty: Percentile(%v) = %v, want 0", p, got)
		}
	}

	single := NewHistogram(10, 100)
	single.Observe(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := single.Percentile(p); got != 42 {
			// One sample: every percentile is that sample (clamped to the
			// exact observed range despite bucket resolution).
			t.Errorf("single sample: Percentile(%v) = %v, want 42", p, got)
		}
	}

	h := NewHistogram(10, 100)
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	// p=0 resolves to rank 1, whose bucket bound is 10 — bucket resolution,
	// not the exact min (which only clamps estimates below it).
	if got := h.Percentile(0); got != 10 {
		t.Errorf("p=0: got %v, want 10 (rank-1 bucket bound)", got)
	}
	if got := h.Percentile(100); got != 500 {
		t.Errorf("p=100 should clamp to max: got %v, want 500", got)
	}
}

// TestPercentileBucketBoundaries checks values landing exactly on inclusive
// upper bounds, and the estimate's bucket-bound/clamping interplay.
func TestPercentileBucketBoundaries(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(10)  // exactly on the first bound → first bucket
	h.Observe(11)  // one past → second bucket
	h.Observe(100) // exactly on the second bound → second bucket

	if got := h.Percentile(1); got != 10 {
		t.Errorf("p1 = %v, want 10 (rank 1 in first bucket)", got)
	}
	// Rank 2 lands in the (10,100] bucket whose bound is 100.
	if got := h.Percentile(50); got != 100 {
		t.Errorf("p50 = %v, want 100 (second bucket's upper bound)", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}

	// Overflow bucket: the estimate is the exact max, not +Inf.
	o := NewHistogram(10)
	o.Observe(10_000)
	if got := o.Percentile(50); got != 10_000 {
		t.Errorf("overflow bucket p50 = %v, want exact max 10000", got)
	}
	if s := o.Snapshot(); s.Buckets[len(s.Buckets)-1].Le != math.MaxInt64 {
		t.Errorf("overflow bucket bound should be MaxInt64")
	}
}

// TestPercentileFromBucketsMatchesLive checks the snapshot-side re-estimator
// against the live histogram's Percentile for the same data.
func TestPercentileFromBucketsMatchesLive(t *testing.T) {
	h := NewHistogram(phaseStepsBounds...)
	for _, v := range []int64{0, 3, 17, 250, 999, 40_000, 2_000_000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		live := h.Percentile(p)
		fromSnap := percentileFromBuckets(s.Buckets, s.Count, s.Min, s.Max, p)
		if live != fromSnap {
			t.Errorf("p=%v: live %v != snapshot %v", p, live, fromSnap)
		}
	}
	if got := percentileFromBuckets(nil, 0, 0, 0, 50); got != 0 {
		t.Errorf("empty snapshot percentile = %v, want 0", got)
	}
}

// TestHistSnapshotSum pins the Sum field added for the phase-decomposition
// invariant (phase sums must total steps_to_decide's sum).
func TestHistSnapshotSum(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(4)
	h.Observe(40)
	if s := h.Snapshot(); s.Sum != 44 {
		t.Errorf("snapshot sum = %d, want 44", s.Sum)
	}
}
