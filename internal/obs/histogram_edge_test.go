package obs

import (
	"math"
	"testing"
)

// TestPercentileEdgeCases pins Percentile's contract at the boundaries of its
// domain: empty histogram, a single sample, and the degenerate p=0 / p=100
// requests.
func TestPercentileEdgeCases(t *testing.T) {
	empty := NewHistogram(10, 100)
	for _, p := range []float64{0, 50, 100} {
		if got := empty.Percentile(p); got != 0 {
			t.Errorf("empty: Percentile(%v) = %v, want 0", p, got)
		}
	}

	single := NewHistogram(10, 100)
	single.Observe(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := single.Percentile(p); got != 42 {
			// One sample: every percentile is that sample (clamped to the
			// exact observed range despite bucket resolution).
			t.Errorf("single sample: Percentile(%v) = %v, want 42", p, got)
		}
	}

	h := NewHistogram(10, 100)
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	// p=0 resolves to rank 1, whose bucket bound is 10 — bucket resolution,
	// not the exact min (which only clamps estimates below it).
	if got := h.Percentile(0); got != 10 {
		t.Errorf("p=0: got %v, want 10 (rank-1 bucket bound)", got)
	}
	if got := h.Percentile(100); got != 500 {
		t.Errorf("p=100 should clamp to max: got %v, want 500", got)
	}
}

// TestPercentileBucketBoundaries checks values landing exactly on inclusive
// upper bounds, and the estimate's bucket-bound/clamping interplay.
func TestPercentileBucketBoundaries(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(10)  // exactly on the first bound → first bucket
	h.Observe(11)  // one past → second bucket
	h.Observe(100) // exactly on the second bound → second bucket

	if got := h.Percentile(1); got != 10 {
		t.Errorf("p1 = %v, want 10 (rank 1 in first bucket)", got)
	}
	// Rank 2 lands in the (10,100] bucket whose bound is 100.
	if got := h.Percentile(50); got != 100 {
		t.Errorf("p50 = %v, want 100 (second bucket's upper bound)", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}

	// Overflow bucket: the estimate is the exact max, not +Inf.
	o := NewHistogram(10)
	o.Observe(10_000)
	if got := o.Percentile(50); got != 10_000 {
		t.Errorf("overflow bucket p50 = %v, want exact max 10000", got)
	}
	if s := o.Snapshot(); s.Buckets[len(s.Buckets)-1].Le != math.MaxInt64 {
		t.Errorf("overflow bucket bound should be MaxInt64")
	}
}

// TestPercentileFromBucketsMatchesLive checks the snapshot-side re-estimator
// against the live histogram's Percentile for the same data.
func TestPercentileFromBucketsMatchesLive(t *testing.T) {
	h := NewHistogram(phaseStepsBounds...)
	for _, v := range []int64{0, 3, 17, 250, 999, 40_000, 2_000_000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		live := h.Percentile(p)
		fromSnap := percentileFromBuckets(s.Buckets, s.Count, s.Min, s.Max, p)
		if live != fromSnap {
			t.Errorf("p=%v: live %v != snapshot %v", p, live, fromSnap)
		}
	}
	if got := percentileFromBuckets(nil, 0, 0, 0, 50); got != 0 {
		t.Errorf("empty snapshot percentile = %v, want 0", got)
	}
}

// TestP999EdgeCases pins the 99.9th percentile (added for the lat.solve tail
// family) at the degenerate shapes: empty histograms, a single sample, a
// single-bucket (bound-less) histogram, and the snapshot/merge paths.
func TestP999EdgeCases(t *testing.T) {
	empty := NewHistogram(10, 100)
	if got := empty.Percentile(99.9); got != 0 {
		t.Errorf("empty p999 = %v, want 0", got)
	}
	if s := empty.Snapshot(); s.P999 != 0 {
		t.Errorf("empty snapshot p999 = %v, want 0", s.P999)
	}

	single := NewHistogram(10, 100)
	single.Observe(42)
	if got := single.Percentile(99.9); got != 42 {
		t.Errorf("single-sample p999 = %v, want 42", got)
	}

	// A bound-less histogram is one overflow bucket: every percentile of the
	// bucket estimate must clamp to the exact max.
	oneBucket := NewHistogram()
	oneBucket.Observe(7)
	oneBucket.Observe(9_999)
	if s := oneBucket.Snapshot(); s.P999 != 9_999 {
		t.Errorf("single-bucket snapshot p999 = %v, want exact max 9999", s.P999)
	}

	// p999 is monotone with the other quantiles and lands in the top bucket
	// once the population is big enough to resolve it.
	h := NewHistogram(10, 100, 1000)
	for i := 0; i < 999; i++ {
		h.Observe(5)
	}
	h.Observe(500)
	s := h.Snapshot()
	if s.P999 < s.P99 || s.P999 > float64(s.Max) {
		t.Errorf("p999 = %v out of order (p99 %v, max %d)", s.P999, s.P99, s.Max)
	}
	if s.P999 != 500 {
		// Rank ceil(0.999*1000) = 999 ... the 1000th value is the outlier;
		// rank 999 is still a 5. Nearest-rank puts p999 at the 5s' bucket
		// bound (10).
		if s.P999 != 10 {
			t.Errorf("p999 = %v, want the rank-999 bucket bound 10", s.P999)
		}
	}

	// The snapshot-side re-estimator agrees with the live histogram at 99.9.
	if live, snap := h.Percentile(99.9), percentileFromBuckets(s.Buckets, s.Count, s.Min, s.Max, 99.9); live != snap {
		t.Errorf("p999 live %v != snapshot %v", live, snap)
	}

	// Merging preserves p999 re-estimation from the merged buckets.
	a, b := NewHistogram(10, 100), NewHistogram(10, 100)
	a.Observe(5)
	b.Observe(90)
	m := MergeHistSnapshots(a.Snapshot(), b.Snapshot())
	if m.P999 != 90 {
		t.Errorf("merged p999 = %v, want 90 (rank-2 bucket bound clamped to max)", m.P999)
	}
	// Mismatched bucket shapes degrade every quantile to the range endpoints.
	c := NewHistogram(7)
	c.Observe(3)
	deg := MergeHistSnapshots(a.Snapshot(), c.Snapshot())
	if deg.P999 != float64(deg.Max) {
		t.Errorf("degraded p999 = %v, want max %d", deg.P999, deg.Max)
	}
}

// TestHistSnapshotSum pins the Sum field added for the phase-decomposition
// invariant (phase sums must total steps_to_decide's sum).
func TestHistSnapshotSum(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(4)
	h.Observe(40)
	if s := h.Snapshot(); s.Sum != 44 {
		t.Errorf("snapshot sum = %d, want 44", s.Sum)
	}
}
