package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d min=%d max=%d mean=%v",
			h.Count(), h.Min(), h.Max(), h.Mean())
	}
	if p := h.Percentile(50); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, v := range []int64{0, 0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	got := h.Buckets()
	want := []Bucket{
		{Le: 0, Count: 2},
		{Le: 1, Count: 1},
		{Le: 4, Count: 2},
		{Le: math.MaxInt64, Count: 2}, // overflow: 5 and 100
	}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if h.Count() != 7 || h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("count/min/max = %d/%d/%d, want 7/0/100", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-112.0/7) > 1e-9 {
		t.Fatalf("mean = %v, want %v", m, 112.0/7)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	// 90 observations of 1, 10 of 8: p50 is in the "<=1" bucket, p99 in "<=8".
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(8)
	}
	if p := h.Percentile(50); p != 1 {
		t.Errorf("p50 = %v, want 1", p)
	}
	if p := h.Percentile(99); p != 8 {
		t.Errorf("p99 = %v, want 8", p)
	}
	// The estimate is clamped to the exact observed range.
	if p := h.Percentile(100); p != 8 {
		t.Errorf("p100 = %v, want 8", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Errorf("p0 = %v, want 1 (observed min)", p)
	}
}

func TestHistogramNoBounds(t *testing.T) {
	h := NewHistogram()
	h.Observe(7)
	h.Observe(3)
	if h.Count() != 2 || h.Min() != 3 || h.Max() != 7 || h.Sum() != 10 {
		t.Fatalf("degenerate histogram: count=%d min=%d max=%d sum=%d",
			h.Count(), h.Min(), h.Max(), h.Sum())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(2, 1) did not panic")
		}
	}()
	NewHistogram(2, 1)
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(10, 100)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 0 || h.Max() != workers*per-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", h.Min(), h.Max(), workers*per-1)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []int64{0, 1, 5, 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Min != 0 || s.Max != 20 {
		t.Fatalf("snapshot count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("snapshot buckets = %d, want 3", len(s.Buckets))
	}
}
