package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// The JSONL trace schema: one event per line, stable keys
//
//	{"step":1234,"pid":0,"layer":"core","kind":"core.decide","round":3,"value":0,"detail":"1"}
//
// round, value and detail are omitted when zero/empty. The schema is
// documented in README.md §Observability and consumed by cmd/traceview.

// AppendJSON appends the event's JSONL encoding (without trailing newline)
// to b and returns the extended slice. Hand-rolled so the export path does
// not pay encoding/json reflection per event.
func (e Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"step":`...)
	b = strconv.AppendInt(b, e.Step, 10)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(e.Pid), 10)
	b = append(b, `,"layer":"`...)
	b = append(b, e.Kind.Layer().String()...)
	b = append(b, `","kind":"`...)
	b = append(b, e.Kind.ID()...)
	b = append(b, '"')
	if e.Round != 0 {
		b = append(b, `,"round":`...)
		b = strconv.AppendInt(b, e.Round, 10)
	}
	if e.Value != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	if e.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, e.Detail)
	}
	b = append(b, '}')
	return b
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters (multi-byte UTF-8 passes through raw,
// which is valid JSON).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// JSONLRecorder streams events to w as JSON lines. It buffers internally;
// call Flush when the run completes. Safe for concurrent use.
type JSONLRecorder struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	n   int64
}

// NewJSONLRecorder returns a JSONL recorder writing to w.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	return &JSONLRecorder{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Record implements Recorder.
func (j *JSONLRecorder) Record(e Event) {
	j.mu.Lock()
	j.buf = e.AppendJSON(j.buf[:0])
	j.buf = append(j.buf, '\n')
	j.bw.Write(j.buf)
	j.n++
	j.mu.Unlock()
}

// Count returns how many events were written.
func (j *JSONLRecorder) Count() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Flush drains the internal buffer to the underlying writer.
func (j *JSONLRecorder) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// jsonEvent mirrors the wire schema for decoding.
type jsonEvent struct {
	Step   int64  `json:"step"`
	Pid    int    `json:"pid"`
	Layer  string `json:"layer"`
	Kind   string `json:"kind"`
	Round  int64  `json:"round"`
	Value  int64  `json:"value"`
	Detail string `json:"detail"`
}

// ParseEvent decodes one JSONL trace line.
func ParseEvent(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, fmt.Errorf("obs: bad trace line: %w", err)
	}
	k, ok := KindForID(je.Kind)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", je.Kind)
	}
	return Event{Step: je.Step, Pid: je.Pid, Kind: k, Round: je.Round, Value: je.Value, Detail: je.Detail}, nil
}

// ReadJSONL decodes an entire JSONL trace stream (blank lines skipped).
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := ParseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSONL encodes events to w, one per line.
func WriteJSONL(w io.Writer, events []Event) error {
	j := NewJSONLRecorder(w)
	for _, e := range events {
		j.Record(e)
	}
	return j.Flush()
}
