package obs

import (
	"bytes"
	"testing"
)

// FuzzParseEvent hammers the JSONL trace-line parser (the input surface of
// cmd/traceview, which reads trace files users hand it). Malformed lines must
// come back as errors — never a panic — and any line the parser accepts must
// round-trip unchanged through the hand-rolled encoder.
func FuzzParseEvent(f *testing.F) {
	f.Add([]byte(`{"step":1234,"pid":0,"layer":"core","kind":"core.decide","round":3,"value":1,"detail":"x"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"step":1,"pid":0,"kind":"no.such.kind"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"step":1e999,"kind":"core.decide"}`))
	f.Add([]byte("{\"kind\":\"scan.clean\",\"detail\":\"\\u0000\\\"\\\\\"}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		e, err := ParseEvent(line)
		if err != nil {
			return // malformed input is reported, not fatal
		}
		out := e.AppendJSON(nil)
		e2, err := ParseEvent(out)
		if err != nil {
			t.Fatalf("re-encoded event failed to parse: %v\n in: %q\nout: %q", err, line, out)
		}
		if e2 != e {
			t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", e, e2)
		}
		if _, err := ReadJSONL(bytes.NewReader(append(out, '\n'))); err != nil {
			t.Fatalf("ReadJSONL rejected a line ParseEvent accepted: %v", err)
		}
	})
}
