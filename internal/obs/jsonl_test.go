package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Step: 1, Pid: 0, Kind: CoreStart},
		{Step: 42, Pid: 1, Kind: ScanClean, Value: 3},
		{Step: 100, Pid: 2, Kind: CoreDecide, Round: 5, Detail: "1"},
		{Step: 101, Pid: 3, Kind: WalkStep, Value: -7},
		{Step: 102, Pid: 0, Kind: CorePref, Round: 2, Detail: `quo"te\back`},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLOmitsZeroFields(t *testing.T) {
	line := string(Event{Step: 9, Pid: 1, Kind: RegSWMRRead}.AppendJSON(nil))
	want := `{"step":9,"pid":1,"layer":"register","kind":"register.swmr.read"}`
	if line != want {
		t.Fatalf("line = %s, want %s", line, want)
	}
}

func TestJSONLControlCharEscape(t *testing.T) {
	line := Event{Kind: CoreDecide, Detail: "a\nb\tc"}.AppendJSON(nil)
	if _, err := ParseEvent(line); err != nil {
		t.Fatalf("control chars not valid JSON: %v (line %s)", err, line)
	}
	if strings.ContainsAny(string(line), "\n\t") {
		t.Fatalf("control characters not escaped: %q", line)
	}
	if !strings.Contains(string(line), "\\u000a") {
		t.Fatalf("newline not \\u-escaped: %q", line)
	}
}

func TestParseEventErrors(t *testing.T) {
	if _, err := ParseEvent([]byte(`not json`)); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ParseEvent([]byte(`{"step":1,"pid":0,"kind":"no.such.kind"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := `{"step":1,"pid":0,"layer":"core","kind":"core.start"}` + "\n\n" +
		`{"step":2,"pid":1,"layer":"core","kind":"core.decide"}` + "\n"
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != 2 || got[0].Kind != CoreStart || got[1].Kind != CoreDecide {
		t.Fatalf("got %+v", got)
	}
}

func TestJSONLRecorderCounts(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLRecorder(&buf)
	for i := 0; i < 5; i++ {
		j.Record(Event{Step: int64(i), Kind: SchedGrant})
	}
	if j.Count() != 5 {
		t.Fatalf("Count = %d, want 5", j.Count())
	}
	if err := j.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("wrote %d lines, want 5", n)
	}
}
