// Package live serves the observability registry over HTTP while a run is in
// flight: a Prometheus text-format /metrics endpoint built from merged
// registry snapshots, a /healthz liveness probe, expvar, and net/http/pprof
// profiling — one process-local telemetry surface shared by consensus-load
// and consensus-sim (the -listen flag).
//
// The server is strictly read-only with respect to execution: it samples
// atomic registries and progress probes, so scraping never perturbs a run.
package live

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"github.com/dsrepro/consensus/internal/obs"
)

// Server aggregates snapshot sources and batch-progress probes and serves
// them over HTTP. The zero value is ready to use; add sources, then call
// Start (or mount Handler on an existing mux).
type Server struct {
	mu      sync.Mutex
	sources []func() obs.Snapshot
	progs   []*obs.BatchProgress

	httpSrv *http.Server
	ln      net.Listener
}

// New returns an empty server.
func New() *Server { return &Server{} }

// AddRegistry registers a live registry: every /metrics scrape takes a fresh
// snapshot. Nil registries are ignored.
func (s *Server) AddRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	s.AddSnapshot(r.Snapshot)
}

// AddSnapshot registers an arbitrary snapshot source (e.g. a pre-merged or
// filtered view). Snapshots from every source are merged per scrape with
// obs.MergeSnapshots. Nil funcs are ignored.
func (s *Server) AddSnapshot(f func() obs.Snapshot) {
	if f == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, f)
	s.mu.Unlock()
}

// AddProgress registers a batch-progress probe, exported as the
// consensus_batch_* gauge family. Nil probes are ignored.
func (s *Server) AddProgress(p *obs.BatchProgress) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.progs = append(s.progs, p)
	s.mu.Unlock()
}

// Handler returns the telemetry mux: /metrics, /healthz, /debug/vars
// (expvar) and /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics merges one snapshot per source and writes the Prometheus
// text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sources := append([]func() obs.Snapshot(nil), s.sources...)
	progs := append([]*obs.BatchProgress(nil), s.progs...)
	s.mu.Unlock()

	snaps := make([]obs.Snapshot, 0, len(sources))
	for _, f := range sources {
		snaps = append(snaps, f())
	}
	merged := obs.MergeSnapshots(snaps...)

	prog := aggregateProgress(progs)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, merged, prog, len(progs) > 0)
}

// aggregateProgress folds multiple probes into one view: instance counts sum,
// elapsed takes the longest-running probe, throughput sums.
func aggregateProgress(progs []*obs.BatchProgress) obs.ProgressSnapshot {
	var out obs.ProgressSnapshot
	for _, p := range progs {
		ps := p.Snapshot()
		out.Total += ps.Total
		out.Completed += ps.Completed
		out.InFlight += ps.InFlight
		if ps.ElapsedSec > out.ElapsedSec {
			out.ElapsedSec = ps.ElapsedSec
		}
		out.PerSec += ps.PerSec
	}
	return out
}

// Start listens on addr (":0" picks a free port) and serves the telemetry
// handler until Close. It returns the bound address, so callers can print a
// scrapeable URL even with a kernel-assigned port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener started by Start (no-op otherwise).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
