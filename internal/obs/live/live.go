// Package live serves the observability registry over HTTP while a run is in
// flight: a Prometheus text-format /metrics endpoint built from merged
// registry snapshots, a /timeseries ring plus /stream SSE feed of windowed
// rates (trends, not point snapshots), a /healthz JSON probe carrying batch
// progress and ETA, expvar, and net/http/pprof profiling — one process-local
// telemetry surface shared by consensus-load and consensus-sim (the -listen
// flag).
//
// The server is strictly read-only with respect to execution: it samples
// atomic registries and progress probes, so scraping never perturbs a run.
package live

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/tail"
)

// Server aggregates snapshot sources and batch-progress probes and serves
// them over HTTP. The zero value is ready to use; add sources, then call
// Start (or mount Handler on an existing mux).
type Server struct {
	mu      sync.Mutex
	sources []func() obs.Snapshot
	progs   []*obs.BatchProgress

	ts         *tail.Timeseries
	tsStop     chan struct{}
	tsStopped  chan struct{}
	streamPoll time.Duration // /stream poll cadence; tests shorten it

	httpSrv *http.Server
	ln      net.Listener
}

// New returns an empty server.
func New() *Server { return &Server{} }

// AddRegistry registers a live registry: every /metrics scrape takes a fresh
// snapshot. Nil registries are ignored.
func (s *Server) AddRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	s.AddSnapshot(r.Snapshot)
}

// AddSnapshot registers an arbitrary snapshot source (e.g. a pre-merged or
// filtered view). Snapshots from every source are merged per scrape with
// obs.MergeSnapshots. Nil funcs are ignored.
func (s *Server) AddSnapshot(f func() obs.Snapshot) {
	if f == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, f)
	s.mu.Unlock()
}

// AddProgress registers a batch-progress probe, exported as the
// consensus_batch_* gauge family. Nil probes are ignored.
func (s *Server) AddProgress(p *obs.BatchProgress) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.progs = append(s.progs, p)
	s.mu.Unlock()
}

// EnableTimeseries arms the /timeseries ring and /stream SSE feed: a sampler
// goroutine snapshots the merged sources every interval into a bounded ring
// of the most recent capacity deltas (windowed decisions/sec, scan retry
// ratio, latency quantiles — see tail.Delta). The sampler runs until Close.
// Calling it again replaces the ring. The returned ring lets callers sample
// on demand (e.g. one final sample when a batch ends).
func (s *Server) EnableTimeseries(capacity int, interval time.Duration) *tail.Timeseries {
	if interval <= 0 {
		interval = time.Second
	}
	ts := tail.NewTimeseries(capacity)
	stop := make(chan struct{})
	stopped := make(chan struct{})

	s.mu.Lock()
	prevStop, prevStopped := s.tsStop, s.tsStopped
	s.ts = ts
	s.tsStop = stop
	s.tsStopped = stopped
	s.mu.Unlock()
	if prevStop != nil {
		close(prevStop)
		<-prevStopped
	}

	go func() {
		defer close(stopped)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				ts.Sample(s.merged())
			}
		}
	}()
	return ts
}

// SampleTimeseries takes one sample immediately (no-op before
// EnableTimeseries). Callers use it to stamp a final sample at batch end and
// tests to fill the ring without waiting on the sampler cadence.
func (s *Server) SampleTimeseries() {
	s.mu.Lock()
	ts := s.ts
	s.mu.Unlock()
	if ts != nil {
		ts.Sample(s.merged())
	}
}

// merged returns the merged snapshot of every source plus the aggregated
// progress view — the single input both /metrics and the sampler consume.
func (s *Server) merged() (obs.Snapshot, obs.ProgressSnapshot) {
	s.mu.Lock()
	sources := append([]func() obs.Snapshot(nil), s.sources...)
	progs := append([]*obs.BatchProgress(nil), s.progs...)
	s.mu.Unlock()

	snaps := make([]obs.Snapshot, 0, len(sources))
	for _, f := range sources {
		snaps = append(snaps, f())
	}
	return obs.MergeSnapshots(snaps...), aggregateProgress(progs)
}

// Handler returns the telemetry mux: /metrics, /healthz, /timeseries,
// /stream, /debug/vars (expvar) and /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/timeseries", s.handleTimeseries)
	mux.HandleFunc("/stream", s.handleStream)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics merges one snapshot per source and writes the Prometheus
// text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	merged, prog := s.merged()
	s.mu.Lock()
	withProgress := len(s.progs) > 0
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, merged, prog, withProgress)
}

// healthzBody is the /healthz JSON schema: liveness plus the batch-progress
// view (all progress fields zero when no probe is registered).
type healthzBody struct {
	Status       string  `json:"status"`
	Total        int64   `json:"total"`
	Completed    int64   `json:"completed"`
	InFlight     int64   `json:"inflight"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	PerSec       float64 `json:"per_sec"`
	WindowPerSec float64 `json:"window_per_sec"`
	// ETASec estimates remaining seconds: 0 done/idle, -1 no rate yet.
	ETASec float64 `json:"eta_sec"`
}

// handleHealthz reports liveness as JSON with the aggregated batch progress
// and ETA, so `curl /healthz` answers "is it up" and "how long to go" in one
// round trip.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	progs := append([]*obs.BatchProgress(nil), s.progs...)
	s.mu.Unlock()
	prog := aggregateProgress(progs)

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	_ = enc.Encode(healthzBody{
		Status:       "ok",
		Total:        prog.Total,
		Completed:    prog.Completed,
		InFlight:     prog.InFlight,
		ElapsedSec:   prog.ElapsedSec,
		PerSec:       prog.PerSec,
		WindowPerSec: prog.WindowPerSec,
		ETASec:       prog.ETASec,
	})
}

// handleTimeseries dumps the retained ring as {"samples": [...]}, oldest
// first. 404 when the ring was never enabled — the endpoint's absence is
// itself the signal that the process runs without -listen telemetry sampling.
func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ts := s.ts
	s.mu.Unlock()
	if ts == nil {
		http.Error(w, "timeseries not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(struct {
		Samples []tail.Delta `json:"samples"`
	}{Samples: ts.Samples()})
}

// handleStream serves the ring as Server-Sent Events: each sample is one
// `data:` frame of tail.Delta JSON. The handler first replays the retained
// ring, then polls for new samples until the client disconnects. Frames are
// keyed by Seq, so a reconnecting client skips what it already saw by
// discarding seqs it has (the ring is small; replay is cheap).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ts := s.ts
	poll := s.streamPoll
	s.mu.Unlock()
	if ts == nil {
		http.Error(w, "timeseries not enabled", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	var lastSeq int64
	write := func(deltas []tail.Delta) bool {
		for _, d := range deltas {
			data, err := tail.EncodeDelta(d)
			if err != nil {
				return false
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
			if _, err := w.Write(data); err != nil {
				return false
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return false
			}
			lastSeq = d.Seq
		}
		if len(deltas) > 0 {
			flusher.Flush()
		}
		return true
	}

	if !write(ts.Since(0)) {
		return
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !write(ts.Since(lastSeq)) {
				return
			}
		}
	}
}

// aggregateProgress folds multiple probes into one view: instance counts and
// rates sum, elapsed takes the longest-running probe, and the ETA is
// recomputed from the summed remaining work and summed rates (preferring the
// windowed rate, like the per-probe estimate).
func aggregateProgress(progs []*obs.BatchProgress) obs.ProgressSnapshot {
	var out obs.ProgressSnapshot
	for _, p := range progs {
		ps := p.Snapshot()
		out.Total += ps.Total
		out.Completed += ps.Completed
		out.InFlight += ps.InFlight
		if ps.ElapsedSec > out.ElapsedSec {
			out.ElapsedSec = ps.ElapsedSec
		}
		out.PerSec += ps.PerSec
		out.WindowPerSec += ps.WindowPerSec
	}
	remaining := out.Total - out.Completed
	switch {
	case remaining <= 0:
		out.ETASec = 0
	case out.WindowPerSec > 0:
		out.ETASec = float64(remaining) / out.WindowPerSec
	case out.PerSec > 0:
		out.ETASec = float64(remaining) / out.PerSec
	default:
		out.ETASec = -1
	}
	return out
}

// Start listens on addr (":0" picks a free port) and serves the telemetry
// handler until Close. It returns the bound address, so callers can print a
// scrapeable URL even with a kernel-assigned port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener started by Start and the timeseries sampler
// (no-ops for whichever was never started).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.ln = nil
	stop, stopped := s.tsStop, s.tsStopped
	s.tsStop, s.tsStopped = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-stopped
	}
	if srv == nil {
		return nil
	}
	return srv.Close()
}
