package live

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/tail"
)

// populated returns a registry with every family the exposition covers:
// counters, a gauge, a plain histogram and the full phase family.
func populated() *obs.Registry {
	r := obs.NewRegistry()
	for i := 0; i < 3; i++ {
		r.Hist(obs.HistStepsToDecide).Observe(int64(100 * (i + 1)))
	}
	for ph := obs.PhaseID(0); ph < obs.NumPhases; ph++ {
		r.Hist(ph.HistID()).Observe(int64(10 * int(ph)))
	}
	r.GaugeMax(obs.GaugeMaxRound, 7)
	return r
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := populated()
	sink := obs.NewSink(nil)
	sink.Count(obs.ScanRetry)
	sink.Count(obs.ScanRetry)

	prog := &obs.BatchProgress{}
	prog.Begin(10)
	prog.InstanceStarted()
	prog.InstanceDone()

	srv := New()
	srv.AddRegistry(reg)
	srv.AddRegistry(sink.Registry())
	srv.AddProgress(prog)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	} else {
		var h healthzBody
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Errorf("/healthz not JSON: %v (%q)", err, body)
		} else if h.Total != 10 || h.Completed != 1 {
			t.Errorf("/healthz progress = %+v, want total 10 completed 1", h)
		}
	}

	code, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`consensus_events_total{layer="scan",kind="scan.retry"} 2`,
		"# TYPE consensus_core_max_round gauge",
		"consensus_core_max_round 7",
		"# TYPE consensus_core_steps_to_decide histogram",
		"consensus_core_steps_to_decide_count 3",
		"consensus_core_steps_to_decide_sum 600",
		`consensus_core_steps_to_decide_bucket{le="+Inf"} 3`,
		"# TYPE consensus_phase_steps histogram",
		`consensus_phase_steps_bucket{phase="prefer",le="0"} 1`,
		`consensus_phase_steps_sum{phase="coin"} 10`,
		`consensus_phase_steps_count{phase="strip"} 1`,
		`consensus_phase_steps_sum{phase="decide"} 30`,
		"consensus_batch_total 10",
		"consensus_batch_completed 1",
		"consensus_batch_inflight 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// The phase TYPE header must appear exactly once even with four members.
	if n := strings.Count(body, "# TYPE consensus_phase_steps histogram"); n != 1 {
		t.Errorf("phase family TYPE header appears %d times, want 1", n)
	}

	if code, body := get(t, ts, "/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
	if code, body := get(t, ts, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d (len %d)", code, len(body))
	}
}

// TestMetricsMergesRegistries checks that two registries feeding one server
// are summed per scrape.
func TestMetricsMergesRegistries(t *testing.T) {
	a, b := obs.NewSink(nil), obs.NewSink(nil)
	a.Count(obs.WalkStep)
	b.Count(obs.WalkStep)
	b.Count(obs.WalkStep)
	a.Observe(obs.HistScanRetries, 1)
	b.Observe(obs.HistScanRetries, 3)

	srv := New()
	srv.AddRegistry(a.Registry())
	srv.AddRegistry(b.Registry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		`consensus_events_total{layer="walk",kind="walk.step"} 3`,
		"consensus_scan_retries_per_scan_count 2",
		"consensus_scan_retries_per_scan_sum 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestMetricsProfSeries checks the profiler surface of the exposition: the
// prof.* counters leave the events family for their own series, the derived
// scan retry ratio appears when clean scans were counted, and matrices render
// as labeled cell counters (nonzero cells only, single-row matrices without
// the redundant row label).
func TestMetricsProfSeries(t *testing.T) {
	sink := obs.NewSink(nil)
	sink.Count(obs.ScanClean)
	sink.Count(obs.ScanClean)
	sink.Count(obs.ScanRetry)

	profSnap := obs.Snapshot{
		Counters: map[string]int64{"prof.steps.total": 120, "prof.steps.scan_retry": 30},
		Matrices: map[string]obs.MatrixSnapshot{
			"prof.blame": {Rows: 2, Cols: 2, Cells: []int64{0, 3, 1, 0},
				RowLabel: "scanner", ColLabel: "writer"},
			"prof.contention": {Rows: 1, Cols: 2, Cells: []int64{4, 0},
				ColLabel: "register"},
		},
	}

	srv := New()
	srv.AddRegistry(sink.Registry())
	srv.AddSnapshot(func() obs.Snapshot { return profSnap })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		"# TYPE consensus_prof_steps_total counter",
		"consensus_prof_steps_total 120",
		"consensus_prof_steps_scan_retry 30",
		"# TYPE consensus_scan_retry_ratio gauge",
		"consensus_scan_retry_ratio 0.5",
		"# TYPE consensus_prof_blame_cells_total counter",
		`consensus_prof_blame_cells_total{scanner="0",writer="1"} 3`,
		`consensus_prof_blame_cells_total{scanner="1",writer="0"} 1`,
		`consensus_prof_contention_cells_total{register="0"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// prof.* counters must not leak into the events family, and zero matrix
	// cells must not be emitted.
	for _, reject := range []string{
		`kind="prof.steps.total"`,
		`consensus_prof_blame_cells_total{scanner="0",writer="0"}`,
		`consensus_prof_contention_cells_total{register="1"}`,
	} {
		if strings.Contains(body, reject) {
			t.Errorf("/metrics contains %q\n%s", reject, body)
		}
	}
}

// TestMetricsDeterministic scrapes twice with no writes in between and
// expects byte-identical expositions (sorted keys, stable formatting) —
// modulo the progress elapsed/rate gauges, which track wall-clock, so the
// test uses no progress probe.
func TestMetricsDeterministic(t *testing.T) {
	srv := New()
	srv.AddRegistry(populated())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := get(t, ts, "/metrics")
	_, second := get(t, ts, "/metrics")
	if first != second {
		t.Errorf("static registry scraped differently:\n%s\nvs\n%s", first, second)
	}
}

// TestTimeseriesEndpoint drives the ring through SampleTimeseries and checks
// the /timeseries JSON dump, plus the 404 before the ring is enabled.
func TestTimeseriesEndpoint(t *testing.T) {
	sink := obs.NewSink(nil)
	srv := New()
	srv.AddRegistry(sink.Registry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	if code, _ := get(t, ts, "/timeseries"); code != 404 {
		t.Errorf("/timeseries before enable = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/stream"); code != 404 {
		t.Errorf("/stream before enable = %d, want 404", code)
	}

	srv.EnableTimeseries(16, time.Hour) // sampler effectively idle; we sample by hand
	sink.Count(obs.CoreDecide)
	srv.SampleTimeseries()
	sink.Count(obs.CoreDecide)
	srv.SampleTimeseries()

	code, body := get(t, ts, "/timeseries")
	if code != 200 {
		t.Fatalf("/timeseries = %d", code)
	}
	var out struct {
		Samples []tail.Delta `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/timeseries not JSON: %v (%q)", err, body)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("got %d samples, want 2: %+v", len(out.Samples), out.Samples)
	}
	if out.Samples[0].Seq != 1 || out.Samples[1].Seq != 2 {
		t.Errorf("sample seqs = %d,%d, want 1,2", out.Samples[0].Seq, out.Samples[1].Seq)
	}
	if out.Samples[0].Decisions != 1 || out.Samples[1].Decisions != 2 {
		t.Errorf("cumulative decisions = %d,%d, want 1,2",
			out.Samples[0].Decisions, out.Samples[1].Decisions)
	}
}

// TestStreamSSE opens /stream, takes samples while the stream is live, and
// checks that each arrives as a data: frame with increasing seqs.
func TestStreamSSE(t *testing.T) {
	sink := obs.NewSink(nil)
	srv := New()
	srv.AddRegistry(sink.Registry())
	srv.streamPoll = 5 * time.Millisecond
	srv.EnableTimeseries(16, time.Hour)
	srv.SampleTimeseries() // one retained sample to replay on connect

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// A second sample lands while the stream is open; the poller must emit it.
	go func() {
		time.Sleep(20 * time.Millisecond)
		sink.Count(obs.CoreDecide)
		srv.SampleTimeseries()
	}()

	sc := bufio.NewScanner(resp.Body)
	var seqs []int64
	deadline := time.After(5 * time.Second)
	for len(seqs) < 2 {
		select {
		case <-deadline:
			t.Fatalf("stream produced %d frames before timeout: %v", len(seqs), seqs)
		default:
		}
		if !sc.Scan() {
			t.Fatalf("stream ended early (frames %v): %v", seqs, sc.Err())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		d, err := tail.DecodeDelta([]byte(strings.TrimPrefix(line, "data: ")))
		if err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		seqs = append(seqs, d.Seq)
	}
	if seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("frame seqs = %v, want [1 2]", seqs)
	}
}

// TestHealthzETA: with a progress probe mid-batch, /healthz carries a usable
// ETA estimate (completed instances give it a rate).
func TestHealthzETA(t *testing.T) {
	prog := &obs.BatchProgress{}
	prog.Begin(100)
	for i := 0; i < 10; i++ {
		prog.InstanceStarted()
		prog.InstanceDone()
	}
	srv := New()
	srv.AddProgress(prog)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/healthz")
	var h healthzBody
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v (%q)", err, body)
	}
	if h.Status != "ok" || h.Total != 100 || h.Completed != 10 {
		t.Errorf("healthz = %+v", h)
	}
	if h.ETASec <= 0 {
		t.Errorf("mid-batch ETA = %v, want > 0 (10 done should give a rate)", h.ETASec)
	}
}

func TestStartAndClose(t *testing.T) {
	srv := New()
	srv.AddRegistry(populated())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET over Start's listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close should be a no-op, got %v", err)
	}
}
