package live

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/dsrepro/consensus/internal/obs"
)

// writeProm renders a merged snapshot in the Prometheus text exposition
// format (0.0.4). The mapping from snapshot keys to series is fixed:
//
//   - counters fold into one family, consensus_events_total{layer,kind},
//     keyed by the event kind's wire id — except the prof.* family, which is
//     not on the event bus and gets one counter series per key
//     (consensus_prof_steps_total, ...);
//   - gauges become consensus_<key with dots as underscores>; when the scan
//     counters are present, the derived consensus_scan_retry_ratio gauge
//     (scan.retry / scan.clean) is emitted alongside them;
//   - matrices (prof.blame, prof.contention) become one counter family per
//     key with the matrix's axis names as labels, nonzero cells only;
//   - the phase.steps.* histogram family folds into
//     consensus_phase_steps{phase="..."}; every other histogram becomes
//     consensus_<key> with the standard _bucket/_sum/_count series
//     (cumulative le bounds, +Inf last);
//   - when withProgress, the batch probe is exported as the
//     consensus_batch_* gauges.
//
// Keys are emitted in sorted order so the exposition is deterministic for a
// given snapshot (the smoke test and live_test diff on it).
func writeProm(w io.Writer, snap obs.Snapshot, prog obs.ProgressSnapshot, withProgress bool) {
	var profCounters []string
	if len(snap.Counters) > 0 {
		fmt.Fprint(w, "# HELP consensus_events_total Events observed per kind on the obs bus.\n")
		fmt.Fprint(w, "# TYPE consensus_events_total counter\n")
		for _, id := range sortedKeys(snap.Counters) {
			if strings.HasPrefix(id, "prof.") {
				profCounters = append(profCounters, id)
				continue
			}
			layer := "unknown"
			if k, ok := obs.KindForID(id); ok {
				layer = k.Layer().String()
			}
			fmt.Fprintf(w, "consensus_events_total{layer=%q,kind=%q} %d\n", layer, id, snap.Counters[id])
		}
	}

	// Profiler counters are whole-run aggregates, not bus events: one series
	// each, no layer/kind labels.
	for _, id := range profCounters {
		name := "consensus_" + sanitize(id)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[id])
	}

	for _, id := range sortedKeys(snap.Gauges) {
		name := "consensus_" + sanitize(id)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[id])
	}

	// Derived scan health gauge: retries per clean scan, the headline
	// contention figure (matches the harness metrics table and benchfmt).
	if clean := snap.Counters[obs.ScanClean.ID()]; clean > 0 {
		fmt.Fprint(w, "# TYPE consensus_scan_retry_ratio gauge\n")
		fmt.Fprintf(w, "consensus_scan_retry_ratio %g\n",
			float64(snap.Counters[obs.ScanRetry.ID()])/float64(clean))
	}

	for _, key := range sortedKeys(snap.Matrices) {
		writePromMatrix(w, key, snap.Matrices[key])
	}

	// Histograms: the phase family shares one metric name with a phase label;
	// everything else gets its own name. Sorted keys put the family members
	// adjacent, so the TYPE header is emitted once per name.
	lastName := ""
	for _, key := range sortedKeys(snap.Hists) {
		name, label := histSeries(key)
		if name != lastName {
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			lastName = name
		}
		writePromHist(w, name, label, snap.Hists[key])
	}

	if withProgress {
		writeProgressGauge(w, "consensus_batch_total", "Instances in the current batch.", float64(prog.Total))
		writeProgressGauge(w, "consensus_batch_completed", "Instances completed so far.", float64(prog.Completed))
		writeProgressGauge(w, "consensus_batch_inflight", "Instances currently executing.", float64(prog.InFlight))
		writeProgressGauge(w, "consensus_batch_elapsed_seconds", "Wall-clock seconds since the batch began.", prog.ElapsedSec)
		writeProgressGauge(w, "consensus_batch_instances_per_sec", "Completed instances per second.", prog.PerSec)
		writeProgressGauge(w, "consensus_batch_window_instances_per_sec", "Completed instances per second over the recent window.", prog.WindowPerSec)
		writeProgressGauge(w, "consensus_batch_eta_seconds", "Estimated seconds until the batch completes (-1 unknown).", prog.ETASec)
	}
}

// histSeries maps a snapshot histogram key to its Prometheus metric name and
// optional label pair.
func histSeries(key string) (name, label string) {
	if ph, ok := strings.CutPrefix(key, obs.PhaseStepsPrefix); ok {
		return "consensus_phase_steps", fmt.Sprintf("phase=%q", ph)
	}
	return "consensus_" + sanitize(key), ""
}

// writePromHist emits the _bucket/_sum/_count series of one histogram. Bucket
// counts in snapshots are per-bucket; Prometheus wants cumulative, with the
// overflow bucket as le="+Inf".
func writePromHist(w io.Writer, name, label string, h obs.HistSnapshot) {
	brace := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + label + "}"
		default:
			return "{" + label + "," + extra + "}"
		}
	}
	var cum int64
	sawInf := false
	for _, b := range h.Buckets {
		cum += b.Count
		le := `le="+Inf"`
		if b.Le == math.MaxInt64 {
			sawInf = true
		} else {
			le = fmt.Sprintf(`le="%d"`, b.Le)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(le), cum)
	}
	if !sawInf {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), h.Count)
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, brace(""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace(""), h.Count)
}

// writePromMatrix emits one matrix-valued metric as a counter family with the
// matrix's axis names as labels. Single-row matrices (the per-register
// contention heatmap) drop the redundant row label; zero cells are skipped so
// an n×n blame matrix stays readable at large n.
func writePromMatrix(w io.Writer, key string, m obs.MatrixSnapshot) {
	if m.Empty() {
		return
	}
	rowLabel, colLabel := m.RowLabel, m.ColLabel
	if rowLabel == "" {
		rowLabel = "row"
	}
	if colLabel == "" {
		colLabel = "col"
	}
	name := "consensus_" + sanitize(key) + "_cells_total"
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			v := m.At(r, c)
			if v == 0 {
				continue
			}
			if m.Rows == 1 {
				fmt.Fprintf(w, "%s{%s=\"%d\"} %d\n", name, colLabel, c, v)
			} else {
				fmt.Fprintf(w, "%s{%s=\"%d\",%s=\"%d\"} %d\n", name, rowLabel, r, colLabel, c, v)
			}
		}
	}
}

// writeProgressGauge emits one consensus_batch_* gauge with its header.
func writeProgressGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	fmt.Fprintf(w, "%s %g\n", name, v)
}

// sanitize maps a snapshot key to a Prometheus metric-name fragment (dots are
// the only non-name character the registry uses).
func sanitize(id string) string { return strings.ReplaceAll(id, ".", "_") }

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
