package obs

// MatrixSnapshot is an immutable matrix-valued metric: a dense row-major
// int64 grid with optional axis labels (used as Prometheus label names when
// the matrix is exported). The step profiler's n×n scan-blame matrix and its
// per-register contention heatmap (a 1×n matrix) are the first producers.
//
// Matrices merge like counters: element-wise sums, with the smaller operand
// zero-padded to the larger shape. Padded addition is commutative and
// associative, so merged snapshots are independent of argument order and
// grouping — the property MergeSnapshots guarantees for every metric family.
type MatrixSnapshot struct {
	// Rows and Cols are the matrix dimensions; Cells holds Rows*Cols values
	// in row-major order.
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	Cells []int64 `json:"cells"`
	// RowLabel and ColLabel name the axes ("scanner", "writer", ...); empty
	// labels render as "row"/"col".
	RowLabel string `json:"row_label,omitempty"`
	ColLabel string `json:"col_label,omitempty"`
}

// Empty reports whether the matrix has no cells.
func (m MatrixSnapshot) Empty() bool { return m.Rows*m.Cols == 0 }

// At returns the cell at (r, c), or 0 when out of range (padded view).
func (m MatrixSnapshot) At(r, c int) int64 {
	if r < 0 || c < 0 || r >= m.Rows || c >= m.Cols {
		return 0
	}
	i := r*m.Cols + c
	if i >= len(m.Cells) {
		return 0
	}
	return m.Cells[i]
}

// Sum returns the sum of every cell.
func (m MatrixSnapshot) Sum() int64 {
	var t int64
	for _, v := range m.Cells {
		t += v
	}
	return t
}

// MergeMatrixSnapshots combines two matrix metrics by element-wise addition,
// zero-padding the smaller operand to the larger shape. An empty side returns
// the other unchanged; labels take the first non-empty value per axis.
func MergeMatrixSnapshots(a, b MatrixSnapshot) MatrixSnapshot {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	m := MatrixSnapshot{
		Rows:     max(a.Rows, b.Rows),
		Cols:     max(a.Cols, b.Cols),
		RowLabel: a.RowLabel,
		ColLabel: a.ColLabel,
	}
	if m.RowLabel == "" {
		m.RowLabel = b.RowLabel
	}
	if m.ColLabel == "" {
		m.ColLabel = b.ColLabel
	}
	m.Cells = make([]int64, m.Rows*m.Cols)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.Cells[r*m.Cols+c] = a.At(r, c) + b.At(r, c)
		}
	}
	return m
}
