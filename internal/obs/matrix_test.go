package obs

import "testing"

func mat(rows, cols int, cells ...int64) MatrixSnapshot {
	return MatrixSnapshot{Rows: rows, Cols: cols, Cells: cells,
		RowLabel: "scanner", ColLabel: "writer"}
}

func TestMatrixAtAndSum(t *testing.T) {
	m := mat(2, 2, 1, 2, 3, 4)
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %d %d", m.At(0, 1), m.At(1, 0))
	}
	if m.At(-1, 0) != 0 || m.At(0, 5) != 0 || m.At(9, 9) != 0 {
		t.Fatal("out-of-range At must read 0 (padded view)")
	}
	if m.Sum() != 10 {
		t.Fatalf("Sum = %d, want 10", m.Sum())
	}
	if m.Empty() {
		t.Fatal("non-empty matrix reports Empty")
	}
	if !(MatrixSnapshot{}).Empty() {
		t.Fatal("zero matrix must report Empty")
	}
}

func TestMergeMatrixSnapshotsElementwise(t *testing.T) {
	a := mat(2, 2, 1, 2, 3, 4)
	b := mat(2, 2, 10, 20, 30, 40)
	m := MergeMatrixSnapshots(a, b)
	want := []int64{11, 22, 33, 44}
	for i, v := range want {
		if m.Cells[i] != v {
			t.Fatalf("cell %d = %d, want %d", i, m.Cells[i], v)
		}
	}
	if m.RowLabel != "scanner" || m.ColLabel != "writer" {
		t.Fatalf("labels lost: %q/%q", m.RowLabel, m.ColLabel)
	}
}

// TestMergeMatrixSnapshotsPadding: merging different shapes (e.g. an n=4
// batch shard with an n=8 shard) zero-pads the smaller to the larger.
func TestMergeMatrixSnapshotsPadding(t *testing.T) {
	small := mat(1, 2, 5, 7)
	big := mat(2, 3, 1, 1, 1, 1, 1, 1)
	m := MergeMatrixSnapshots(small, big)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	want := []int64{6, 8, 1, 1, 1, 1}
	for i, v := range want {
		if m.Cells[i] != v {
			t.Fatalf("cell %d = %d, want %d (got %v)", i, m.Cells[i], v, m.Cells)
		}
	}
	// Padding commutes.
	m2 := MergeMatrixSnapshots(big, small)
	for i := range want {
		if m2.Cells[i] != m.Cells[i] {
			t.Fatal("padded merge is order-dependent")
		}
	}
}

// TestMergeMatrixSnapshotsEmptyIdentity: empty operands are identities and
// labels fall back to the first non-empty axis name.
func TestMergeMatrixSnapshotsEmptyIdentity(t *testing.T) {
	a := mat(2, 2, 1, 2, 3, 4)
	if got := MergeMatrixSnapshots(MatrixSnapshot{}, a); got.Sum() != a.Sum() || got.Rows != 2 {
		t.Fatalf("empty left not identity: %+v", got)
	}
	if got := MergeMatrixSnapshots(a, MatrixSnapshot{}); got.Sum() != a.Sum() || got.Cols != 2 {
		t.Fatalf("empty right not identity: %+v", got)
	}
	if got := MergeMatrixSnapshots(MatrixSnapshot{}, MatrixSnapshot{}); !got.Empty() {
		t.Fatalf("empty merge not empty: %+v", got)
	}
	unlabeled := MatrixSnapshot{Rows: 1, Cols: 1, Cells: []int64{1}}
	if got := MergeMatrixSnapshots(unlabeled, a); got.RowLabel != "scanner" {
		t.Fatalf("label fallback lost: %q", got.RowLabel)
	}
}

// TestMergeSnapshotsMatrices: matrices ride MergeSnapshots like every other
// family — element-wise sums, grouping- and order-independent, with nil-map
// (empty-shard) snapshots as identity elements.
func TestMergeSnapshotsMatrices(t *testing.T) {
	a := Snapshot{Matrices: map[string]MatrixSnapshot{"prof.blame": mat(2, 2, 1, 0, 0, 1)}}
	b := Snapshot{Matrices: map[string]MatrixSnapshot{"prof.blame": mat(2, 2, 0, 2, 2, 0)}}
	empty := Snapshot{} // nil maps: an empty shard

	flat := MergeSnapshots(a, b, empty)
	nested := MergeSnapshots(MergeSnapshots(a, empty), b)
	reversed := MergeSnapshots(empty, b, a)
	for _, got := range []Snapshot{flat, nested, reversed} {
		m := got.Matrices["prof.blame"]
		if m.Rows != 2 || m.Cols != 2 {
			t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
		}
		want := []int64{1, 2, 2, 1}
		for i, v := range want {
			if m.Cells[i] != v {
				t.Fatalf("cell %d = %d, want %d", i, m.Cells[i], v)
			}
		}
	}
	// A key present in only one shard survives unchanged.
	c := Snapshot{Matrices: map[string]MatrixSnapshot{"prof.contention": mat(1, 2, 9, 9)}}
	m := MergeSnapshots(a, c)
	if m.Matrices["prof.contention"].Sum() != 18 || m.Matrices["prof.blame"].Sum() != 2 {
		t.Fatalf("disjoint keys mangled: %+v", m.Matrices)
	}
}
