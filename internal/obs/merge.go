package obs

// MergeSnapshots combines registry snapshots from independent sources (e.g.
// per-worker registries feeding one live /metrics endpoint) into one:
// counters sum, gauges take the maximum, histograms merge bucket-wise with
// summary percentiles re-estimated from the merged buckets, and matrices add
// element-wise (zero-padded to the larger shape). Counter addition, gauge
// max and padded matrix addition all commute, and the percentile re-estimate
// depends only on the merged buckets, so the result is independent of
// argument order and grouping — MergeSnapshots(a, b, c) equals
// MergeSnapshots(MergeSnapshots(a, b), c). Snapshots with nil maps (empty
// shards) merge as identity elements.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
		Matrices: make(map[string]MatrixSnapshot),
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if v > out.Gauges[k] {
				out.Gauges[k] = v
			}
		}
		for k, h := range s.Hists {
			if prev, ok := out.Hists[k]; ok {
				out.Hists[k] = MergeHistSnapshots(prev, h)
			} else {
				out.Hists[k] = h
			}
		}
		for k, m := range s.Matrices {
			if prev, ok := out.Matrices[k]; ok {
				out.Matrices[k] = MergeMatrixSnapshots(prev, m)
			} else {
				out.Matrices[k] = m
			}
		}
	}
	return out
}

// MergeHistSnapshots combines two snapshots of same-shaped histograms
// (identical bucket bounds — true for any two registries, whose histograms
// are fixed per HistID). An empty side returns the other unchanged. On a
// bucket-shape mismatch the buckets are dropped and only the exact aggregates
// (count/sum/min/max/mean) survive; percentiles then degrade to the observed
// range endpoints.
func MergeHistSnapshots(a, b HistSnapshot) HistSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	m := HistSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   a.Min,
		Max:   a.Max,
	}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	m.Mean = float64(m.Sum) / float64(m.Count)
	if len(a.Buckets) == len(b.Buckets) {
		m.Buckets = make([]Bucket, len(a.Buckets))
		for i := range a.Buckets {
			if a.Buckets[i].Le != b.Buckets[i].Le {
				m.Buckets = nil
				break
			}
			m.Buckets[i] = Bucket{Le: a.Buckets[i].Le, Count: a.Buckets[i].Count + b.Buckets[i].Count}
		}
	}
	if m.Buckets != nil {
		m.P50 = percentileFromBuckets(m.Buckets, m.Count, m.Min, m.Max, 50)
		m.P90 = percentileFromBuckets(m.Buckets, m.Count, m.Min, m.Max, 90)
		m.P99 = percentileFromBuckets(m.Buckets, m.Count, m.Min, m.Max, 99)
		m.P999 = percentileFromBuckets(m.Buckets, m.Count, m.Min, m.Max, 99.9)
	} else {
		m.P50, m.P90, m.P99 = float64(m.Min), float64(m.Max), float64(m.Max)
		m.P999 = float64(m.Max)
	}
	return m
}
