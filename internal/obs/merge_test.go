package obs

import (
	"math"
	"testing"
)

func snapOf(obsv ...func(*Registry)) Snapshot {
	r := NewRegistry()
	for _, f := range obsv {
		f(r)
	}
	return r.Snapshot()
}

func TestMergeSnapshotsCountersAndGauges(t *testing.T) {
	a := snapOf(func(r *Registry) {
		r.countKind(ScanRetry)
		r.countKind(ScanRetry)
		r.GaugeMax(GaugeMaxRound, 5)
	})
	b := snapOf(func(r *Registry) {
		r.countKind(ScanRetry)
		r.countKind(WalkStep)
		r.GaugeMax(GaugeMaxRound, 3)
	})
	m := MergeSnapshots(a, b)
	if m.Counters[ScanRetry.ID()] != 3 {
		t.Errorf("merged scan.retry = %d, want 3", m.Counters[ScanRetry.ID()])
	}
	if m.Counters[WalkStep.ID()] != 1 {
		t.Errorf("merged walk.step = %d, want 1", m.Counters[WalkStep.ID()])
	}
	if m.Gauges[GaugeMaxRound.String()] != 5 {
		t.Errorf("merged max_round = %d, want 5 (gauges take the max)", m.Gauges[GaugeMaxRound.String()])
	}
}

// TestMergeSnapshotsGroupingIndependent is the property the live server
// relies on: merging per-worker snapshots must give the same result in any
// order or grouping.
func TestMergeSnapshotsGroupingIndependent(t *testing.T) {
	mk := func(vals ...int64) Snapshot {
		return snapOf(func(r *Registry) {
			for _, v := range vals {
				r.Hist(HistStepsToDecide).Observe(v)
				r.countKind(CoreDecide)
			}
		})
	}
	a, b, c := mk(10, 200), mk(3000), mk(45, 70_000, 12)

	flat := MergeSnapshots(a, b, c)
	nested := MergeSnapshots(MergeSnapshots(a, b), c)
	reversed := MergeSnapshots(c, b, a)

	for _, got := range []Snapshot{nested, reversed} {
		gh, fh := got.Hists[HistStepsToDecide.String()], flat.Hists[HistStepsToDecide.String()]
		if gh.Count != fh.Count || gh.Sum != fh.Sum || gh.Min != fh.Min || gh.Max != fh.Max ||
			gh.P50 != fh.P50 || gh.P90 != fh.P90 || gh.P99 != fh.P99 {
			t.Errorf("merge not grouping-independent: %+v vs %+v", gh, fh)
		}
		if got.Counters[CoreDecide.ID()] != flat.Counters[CoreDecide.ID()] {
			t.Errorf("counter merge not grouping-independent")
		}
	}
}

// TestMergeHistEqualsWhole merges two partial histograms and compares against
// one histogram that observed everything: exact aggregates must match, and
// percentiles must match because both sides share the registry bucket ladder.
func TestMergeHistEqualsWhole(t *testing.T) {
	vals := []int64{5, 80, 950, 12_000, 33, 7, 400_000, 88, 2}
	half1, half2, whole := NewRegistry(), NewRegistry(), NewRegistry()
	for i, v := range vals {
		whole.Hist(HistStepsToDecide).Observe(v)
		if i%2 == 0 {
			half1.Hist(HistStepsToDecide).Observe(v)
		} else {
			half2.Hist(HistStepsToDecide).Observe(v)
		}
	}
	m := MergeHistSnapshots(
		half1.Hist(HistStepsToDecide).Snapshot(),
		half2.Hist(HistStepsToDecide).Snapshot(),
	)
	w := whole.Hist(HistStepsToDecide).Snapshot()
	if m.Count != w.Count || m.Sum != w.Sum || m.Min != w.Min || m.Max != w.Max {
		t.Errorf("merged aggregates %+v differ from whole %+v", m, w)
	}
	if m.P50 != w.P50 || m.P90 != w.P90 || m.P99 != w.P99 {
		t.Errorf("merged percentiles (%.0f/%.0f/%.0f) differ from whole (%.0f/%.0f/%.0f)",
			m.P50, m.P90, m.P99, w.P50, w.P90, w.P99)
	}
	if len(m.Buckets) != len(w.Buckets) {
		t.Fatalf("merged bucket count %d, want %d", len(m.Buckets), len(w.Buckets))
	}
	for i := range m.Buckets {
		if m.Buckets[i] != w.Buckets[i] {
			t.Errorf("bucket %d: %+v vs %+v", i, m.Buckets[i], w.Buckets[i])
		}
	}
}

func TestMergeHistEmptySides(t *testing.T) {
	r := NewRegistry()
	r.Hist(HistScanRetries).Observe(4)
	s := r.Hist(HistScanRetries).Snapshot()
	if got := MergeHistSnapshots(HistSnapshot{}, s); got.Count != 1 || got.Sum != 4 {
		t.Errorf("empty left: got %+v", got)
	}
	if got := MergeHistSnapshots(s, HistSnapshot{}); got.Count != 1 || got.Sum != 4 {
		t.Errorf("empty right: got %+v", got)
	}
	if got := MergeHistSnapshots(HistSnapshot{}, HistSnapshot{}); got.Count != 0 {
		t.Errorf("both empty: got %+v", got)
	}
}

func TestMergeHistShapeMismatch(t *testing.T) {
	a := HistSnapshot{Count: 2, Sum: 6, Min: 1, Max: 5, Mean: 3,
		Buckets: []Bucket{{Le: 4, Count: 1}, {Le: math.MaxInt64, Count: 1}}}
	b := HistSnapshot{Count: 1, Sum: 9, Min: 9, Max: 9, Mean: 9,
		Buckets: []Bucket{{Le: 8, Count: 0}, {Le: math.MaxInt64, Count: 1}}}
	m := MergeHistSnapshots(a, b)
	if m.Count != 3 || m.Sum != 15 || m.Min != 1 || m.Max != 9 {
		t.Errorf("aggregates survive a shape mismatch: got %+v", m)
	}
	if m.Buckets != nil {
		t.Errorf("mismatched buckets should be dropped, got %v", m.Buckets)
	}
	if m.P50 != 1 || m.P99 != 9 {
		t.Errorf("degraded percentiles should be range endpoints, got p50=%v p99=%v", m.P50, m.P99)
	}
}
