package obs

// Phase attribution decomposes a process's atomic steps by what the protocol
// was working toward when it took them. The paper's complexity claims are
// per-phase — scan retries under the handshake (§2), random-walk coin flips
// within the bounded range (§3), strip/round transitions (§4) — and Aspnes'
// survey frames exactly this split (agreement work vs. coin work) as the
// quantity separating protocol families, so the taxonomy is protocol-agnostic
// and shared by all five implementations in internal/core:
//
//   - prefer: agreement work — scanning, decoding the view, leader checks,
//     adopting or withdrawing a preference.
//   - coin:   randomness work — producing and publishing one coin flip
//     (a bounded-walk counter move, a fresh-strip move, a local flip, or an
//     oracle draw, depending on the protocol).
//   - strip:  round bookkeeping — inc (the strip/round advance) and the write
//     publishing the advanced entry.
//   - decide: publishing the decision (zero steps unless the protocol writes
//     a decided marker, as Bounded does under FastDecide).
//
// Spans are cut at phase boundaries inside each protocol's Run loop; a cut
// emits one phase-layer event carrying the segment's step count, and at
// decision time the per-process totals land in the phase.steps histogram
// family, so the same data is visible in traces (cmd/traceview -phase), in
// metrics snapshots (consensus.Result.Hists, harness tables), and on the live
// /metrics endpoint (internal/obs/live).

// PhaseID names one phase of the consensus main loop.
type PhaseID uint8

// Phases, in declaration order (also the histogram-family order).
const (
	PhasePrefer PhaseID = iota
	PhaseCoin
	PhaseStrip
	PhaseDecide
	// NumPhases is the number of defined phases.
	NumPhases
)

// String implements fmt.Stringer (the stable phase label).
func (ph PhaseID) String() string {
	switch ph {
	case PhasePrefer:
		return "prefer"
	case PhaseCoin:
		return "coin"
	case PhaseStrip:
		return "strip"
	case PhaseDecide:
		return "decide"
	default:
		return "phase.unknown"
	}
}

// SpanKind returns the event kind recording closed spans of the phase.
func (ph PhaseID) SpanKind() Kind {
	switch ph {
	case PhasePrefer:
		return SpanPrefer
	case PhaseCoin:
		return SpanCoin
	case PhaseStrip:
		return SpanStrip
	case PhaseDecide:
		return SpanDecide
	default:
		return KindUnknown
	}
}

// HistID returns the phase.steps histogram of the phase.
func (ph PhaseID) HistID() HistID {
	switch ph {
	case PhasePrefer:
		return HistPhasePrefer
	case PhaseCoin:
		return HistPhaseCoin
	case PhaseStrip:
		return HistPhaseStrip
	case PhaseDecide:
		return HistPhaseDecide
	default:
		return numHists
	}
}

// PhaseForName parses a phase label ("prefer", "coin", "strip", "decide").
func PhaseForName(s string) (PhaseID, bool) {
	for ph := PhaseID(0); ph < NumPhases; ph++ {
		if ph.String() == s {
			return ph, true
		}
	}
	return 0, false
}

// PhaseForSpanKind inverts PhaseID.SpanKind (trace analysis helpers).
func PhaseForSpanKind(k Kind) (PhaseID, bool) {
	switch k {
	case SpanPrefer:
		return PhasePrefer, true
	case SpanCoin:
		return PhaseCoin, true
	case SpanStrip:
		return PhaseStrip, true
	case SpanDecide:
		return PhaseDecide, true
	default:
		return 0, false
	}
}

// SpanObserver receives phase-span lifecycle callbacks — the step profiler's
// view of the main loop (internal/obs/prof). All callbacks are strictly
// passive: they must take no scheduler steps and consume no randomness, so
// observed runs stay byte-identical to unobserved ones. With no observer
// attached the span pays one nil check per cut.
type SpanObserver interface {
	// PhaseBegin fires when the process's current phase changes to ph.
	PhaseBegin(pid int, ph PhaseID)
	// SpanCut fires for every closed non-empty segment: the process spent
	// segSteps of its own atomic steps in ph, between global scheduler steps
	// gstart and gend.
	SpanCut(pid int, ph PhaseID, gstart, gend, segSteps int64)
	// SpanFinish fires when the process decides, with the global step and the
	// process's total step count.
	SpanFinish(pid int, gend, steps int64)
}

// PhaseSpan attributes one process's atomic steps to protocol phases. It is a
// plain value held on the Run loop's stack: starting, cutting and finishing a
// span allocate nothing, and with a nil sink the only residual cost is the
// bookkeeping of the struct itself — observation stays zero-cost when
// disabled and never perturbs execution (it only reads the step counters the
// scheduler already maintains).
type PhaseSpan struct {
	phase PhaseID
	mark  int64
	gmark int64
	obs   SpanObserver
	acc   [NumPhases]int64
}

// Observe attaches a span observer (nil detaches). Attach only an enabled
// observer: protocols guard the call with prof.Enabled() so the disabled
// path keeps its zero interface dispatch.
func (s *PhaseSpan) Observe(o SpanObserver) { s.obs = o }

// StartPhaseSpan opens a tracker in PhasePrefer with the process's current
// per-process step count as the first span's start mark.
func StartPhaseSpan(steps int64) PhaseSpan {
	return PhaseSpan{phase: PhasePrefer, mark: steps}
}

// To cuts the current span at the process's step count and continues in ph.
// The closed segment's steps are accumulated into the current phase and, when
// non-empty, emitted as one phase-layer event (Step = global step now, Value =
// segment steps). Cutting to the current phase is a no-op.
func (s *PhaseSpan) To(sink *Sink, ph PhaseID, pid int, now, steps int64) {
	if ph == s.phase {
		return
	}
	s.cut(sink, pid, now, steps)
	s.phase = ph
	if s.obs != nil {
		s.obs.PhaseBegin(pid, ph)
	}
}

// cut closes the segment since the last mark into the current phase.
func (s *PhaseSpan) cut(sink *Sink, pid int, now, steps int64) {
	d := steps - s.mark
	gstart := s.gmark
	s.mark = steps
	s.gmark = now
	if d == 0 {
		return
	}
	s.acc[s.phase] += d
	sink.Emit(Event{Step: now, Pid: pid, Kind: s.phase.SpanKind(), Value: d})
	if s.obs != nil {
		s.obs.SpanCut(pid, s.phase, gstart, now, d)
	}
}

// Finish closes the current span and flushes the process's accumulated
// per-phase totals into the phase.steps histogram family. Every phase is
// observed — including zero totals — so each histogram carries exactly one
// sample per decided process and the family sums to steps-to-decision.
func (s *PhaseSpan) Finish(sink *Sink, pid int, now, steps int64) {
	s.cut(sink, pid, now, steps)
	if s.obs != nil {
		s.obs.SpanFinish(pid, now, steps)
	}
	if sink == nil {
		return
	}
	for ph := PhaseID(0); ph < NumPhases; ph++ {
		sink.Observe(ph.HistID(), s.acc[ph])
	}
}

// Steps returns the steps accumulated so far for ph (closed segments only).
func (s *PhaseSpan) Steps(ph PhaseID) int64 {
	if ph >= NumPhases {
		return 0
	}
	return s.acc[ph]
}
