package obs

import "testing"

func TestPhaseIDRoundTrips(t *testing.T) {
	for ph := PhaseID(0); ph < NumPhases; ph++ {
		got, ok := PhaseForName(ph.String())
		if !ok || got != ph {
			t.Errorf("PhaseForName(%q) = %v, %v; want %v, true", ph.String(), got, ok, ph)
		}
		back, ok := PhaseForSpanKind(ph.SpanKind())
		if !ok || back != ph {
			t.Errorf("PhaseForSpanKind(%v) = %v, %v; want %v, true", ph.SpanKind(), back, ok, ph)
		}
		if ph.SpanKind().Layer() != LayerPhase {
			t.Errorf("span kind %v not in phase layer", ph.SpanKind())
		}
	}
	if _, ok := PhaseForName("bogus"); ok {
		t.Error("PhaseForName accepted a bogus label")
	}
	if _, ok := PhaseForSpanKind(CoreDecide); ok {
		t.Error("PhaseForSpanKind accepted a non-span kind")
	}
}

// TestPhaseSpanAccumulates drives a span through the phases a protocol loop
// visits and checks the per-phase attribution, the emitted span events, and
// the histogram flush.
func TestPhaseSpanAccumulates(t *testing.T) {
	var events []Event
	sink := NewSink(FuncRecorder(func(e Event) { events = append(events, e) }))

	steps := int64(10) // spans track deltas, not absolute positions
	span := StartPhaseSpan(steps)

	steps += 4 // 4 steps of prefer work
	span.To(sink, PhaseCoin, 3, 100, steps)
	steps += 2 // 2 steps of coin work
	span.To(sink, PhasePrefer, 3, 102, steps)
	span.To(sink, PhaseStrip, 3, 102, steps) // zero-length prefer segment
	steps += 5                               // 5 steps of strip work
	span.To(sink, PhaseDecide, 3, 107, steps)
	span.Finish(sink, 3, 107, steps) // decide segment is empty

	want := map[PhaseID]int64{PhasePrefer: 4, PhaseCoin: 2, PhaseStrip: 5, PhaseDecide: 0}
	for ph, w := range want {
		if got := span.Steps(ph); got != w {
			t.Errorf("phase %v: accumulated %d steps, want %d", ph, got, w)
		}
	}

	// Zero-length segments must not emit events: expect exactly three span
	// events (prefer 4, coin 2, strip 5).
	var spanEvents []Event
	for _, e := range events {
		if e.Kind.Layer() == LayerPhase {
			spanEvents = append(spanEvents, e)
		}
	}
	wantEvents := []Event{
		{Step: 100, Pid: 3, Kind: SpanPrefer, Value: 4},
		{Step: 102, Pid: 3, Kind: SpanCoin, Value: 2},
		{Step: 107, Pid: 3, Kind: SpanStrip, Value: 5},
	}
	if len(spanEvents) != len(wantEvents) {
		t.Fatalf("got %d span events, want %d: %v", len(spanEvents), len(wantEvents), spanEvents)
	}
	for i, e := range spanEvents {
		if e != wantEvents[i] {
			t.Errorf("span event %d = %+v, want %+v", i, e, wantEvents[i])
		}
	}

	// Finish flushes one observation per phase — including zero totals — so
	// the family's counts match and its sums decompose the total.
	snap := sink.Registry().Snapshot()
	var total int64
	for ph := PhaseID(0); ph < NumPhases; ph++ {
		h, ok := snap.Hists[ph.HistID().String()]
		if !ok {
			t.Fatalf("phase %v: histogram missing from snapshot", ph)
		}
		if h.Count != 1 {
			t.Errorf("phase %v: count %d, want 1", ph, h.Count)
		}
		if h.Sum != want[ph] {
			t.Errorf("phase %v: sum %d, want %d", ph, h.Sum, want[ph])
		}
		total += h.Sum
	}
	if total != 11 {
		t.Errorf("phase sums total %d, want 11 (all steps attributed)", total)
	}
}

// TestPhaseSpanNilSinkStillTracks confirms attribution works without any sink
// (the accumulator is what protocols could consult even when unobserved).
func TestPhaseSpanNilSinkStillTracks(t *testing.T) {
	span := StartPhaseSpan(0)
	span.To(nil, PhaseCoin, 0, 0, 6)
	span.Finish(nil, 0, 0, 10)
	if got := span.Steps(PhasePrefer); got != 6 {
		t.Errorf("prefer steps = %d, want 6", got)
	}
	if got := span.Steps(PhaseCoin); got != 4 {
		t.Errorf("coin steps = %d, want 4", got)
	}
}
