package prof

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

// FuzzProfReport fuzzes the profile parser with arbitrary bytes: it must
// never panic, and any input it accepts must re-serialize into a profile it
// accepts again (idempotent validation). A valid exported profile seeds the
// corpus so the fuzzer starts from the real schema.
func FuzzProfReport(f *testing.F) {
	pr := New(Options{N: 3, RetainSpans: true})
	pr.PhaseBegin(0, obs.PhasePrefer)
	pr.SpanCut(0, obs.PhasePrefer, 0, 12, 12)
	pr.NoteWrite(0, 4, 4)
	pr.CleanScan(1, 7, 3)
	pr.ScanRetry(1, 0, BlameArrow, 2, 9)
	pr.ScanRetry(2, 0, BlameToggle, 3, 11)
	pr.SpanFinish(1, 15, 8)
	seed, err := json.Marshal(pr.Report())
	if err != nil {
		f.Fatalf("seed profile: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"n":2,"blame":{"rows":2,"cols":2,"cells":[1,0,0,1]}}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseProfile(data)
		if err != nil {
			return
		}
		re, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted profile does not re-marshal: %v", err)
		}
		p2, err := ParseProfile(re)
		if err != nil {
			t.Fatalf("re-marshaled profile rejected: %v\n%s", err, re)
		}
		re2, err := json.Marshal(p2)
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("marshal not stable:\n%s\n%s", re, re2)
		}
	})
}
