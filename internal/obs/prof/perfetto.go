package prof

import (
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto export renders a profiled schedule in the Chrome trace-event JSON
// format (loadable in Perfetto's UI and chrome://tracing): one track per
// process (pid == tid == process id), one complete slice ("X") per closed
// phase segment, and one flow arrow ("s" → "f") per attributed scan failure,
// drawn from the blamed writer's write to the scanner's failed re-check.
// Scheduler steps stand in for microseconds — the trace-event format has no
// notion of logical time, and steps are the run's only clock.

// traceEvent is one Chrome trace-event record. Field order is fixed by the
// struct, and events are emitted in a deterministic order (metadata by pid,
// slices in span order, flows in blame order), so the same profile always
// serializes to the same bytes — the property the traceview golden and
// prof-smoke rely on.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the top-level trace-event JSON object.
type perfettoTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WritePerfetto writes the profile as Chrome trace-event JSON. The profile
// must carry spans (Profiler built with RetainSpans); flows additionally
// need blame events, and are omitted for failures whose blamed write
// predates the run (WriteStep < 0).
func WritePerfetto(w io.Writer, p *Profile) error {
	if p == nil {
		return fmt.Errorf("prof: nil profile")
	}
	evs := make([]traceEvent, 0, p.N+len(p.Spans)+2*len(p.Blames))
	for pid := 0; pid < p.N; pid++ {
		evs = append(evs, traceEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Tid:  pid,
			Args: map[string]any{"name": fmt.Sprintf("proc %d", pid)},
		})
	}
	for _, s := range p.Spans {
		dur := s.End - s.Start
		evs = append(evs, traceEvent{
			Name: s.Phase,
			Ph:   "X",
			Pid:  s.Pid,
			Tid:  s.Pid,
			Ts:   s.Start,
			Dur:  &dur,
			Cat:  "phase",
			Args: map[string]any{"steps": s.Steps},
		})
	}
	for i, b := range p.Blames {
		if b.WriteStep < 0 {
			continue
		}
		evs = append(evs, traceEvent{
			Name: "scan-blame",
			Ph:   "s",
			Pid:  b.Writer,
			Tid:  b.Writer,
			Ts:   b.WriteStep,
			Cat:  "blame",
			ID:   i + 1,
			Args: map[string]any{"reason": b.Reason, "reg": b.Reg},
		}, traceEvent{
			Name: "scan-blame",
			Ph:   "f",
			Pid:  b.Scanner,
			Tid:  b.Scanner,
			Ts:   b.FailStep,
			Cat:  "blame",
			ID:   i + 1,
			BP:   "e",
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// PerfettoStats summarizes a parsed trace for validation and reporting.
type PerfettoStats struct {
	Events    int // total trace events
	Tracks    int // distinct process tracks (metadata records)
	Slices    int // complete ("X") phase slices
	Flows     int // flow arrows (paired "s"/"f" records count as one)
	LastStep  int64
	FirstStep int64
}

// ParsePerfetto decodes and validates trace-event JSON produced by
// WritePerfetto: every record must carry a known phase ("M"/"X"/"s"/"f"),
// slices must have non-negative durations, and flow starts and finishes
// must pair up by id.
func ParsePerfetto(data []byte) (*PerfettoStats, error) {
	var t perfettoTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("prof: parse perfetto trace: %w", err)
	}
	st := &PerfettoStats{FirstStep: -1}
	starts := map[int]int{}
	finishes := map[int]int{}
	for i, ev := range t.TraceEvents {
		switch ev.Ph {
		case "M":
			st.Tracks++
			continue
		case "X":
			st.Slices++
			if ev.Dur == nil || *ev.Dur < 0 {
				return nil, fmt.Errorf("prof: slice %d has invalid duration", i)
			}
			if end := ev.Ts + *ev.Dur; end > st.LastStep {
				st.LastStep = end
			}
		case "s":
			starts[ev.ID]++
		case "f":
			finishes[ev.ID]++
			if ev.BP != "e" {
				return nil, fmt.Errorf("prof: flow finish %d missing bp=e", i)
			}
		default:
			return nil, fmt.Errorf("prof: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ts < 0 {
			return nil, fmt.Errorf("prof: event %d has negative timestamp", i)
		}
		if st.FirstStep < 0 || ev.Ts < st.FirstStep {
			st.FirstStep = ev.Ts
		}
		if ev.Ts > st.LastStep {
			st.LastStep = ev.Ts
		}
		st.Events++
	}
	st.Events += st.Tracks
	for id, c := range starts {
		if finishes[id] != c {
			return nil, fmt.Errorf("prof: flow %d has %d starts but %d finishes", id, c, finishes[id])
		}
		st.Flows += c
	}
	for id := range finishes {
		if starts[id] == 0 {
			return nil, fmt.Errorf("prof: flow %d has a finish but no start", id)
		}
	}
	if st.FirstStep < 0 {
		st.FirstStep = 0
	}
	return st, nil
}
