// Package prof is the causal step profiler: an opt-in observer that
// classifies every granted scheduler step as productive, scan-retry,
// coin-spin or strip-wait, attributes each failed scan handshake to the
// specific (writer, register) that tripped the double-collect re-check, and
// reconstructs the reads-from happens-before chain that gated the decision
// (the critical path).
//
// Like the audit monitor (internal/obs/audit), the profiler is strictly
// passive: its hooks take no scheduler steps, consume no randomness and emit
// no trace events, so a profiled run is byte-identical to an unprofiled one
// (locked by TestProfDoesNotPerturb at the repo root). A nil *Profiler is
// the disabled profiler — Enabled() is false and every hook is a no-op —
// and every call site guards with Enabled(), so the disabled path costs one
// nil check and allocates nothing.
//
// Concurrency: the step scheduler (internal/sched) grants steps one at a
// time and fully serializes process bodies between grants, so hooks invoked
// from step-granted protocol code never run concurrently. The profiler
// therefore uses plain (non-atomic) fields — the same safety argument as
// Arrow.local in internal/scan. Snapshot and Report must only be called
// after the run completes.
package prof

import "github.com/dsrepro/consensus/internal/obs"

// Defaults for the bounded retention buffers.
const (
	// DefaultMaxSpans bounds the retained phase slices (Perfetto export).
	DefaultMaxSpans = 1 << 16
	// DefaultMaxBlames bounds the retained blame events (Perfetto flows).
	DefaultMaxBlames = 1 << 12
	// DefaultMaxNodes bounds the critical-path node arena.
	DefaultMaxNodes = 1 << 16
)

// Options configures a Profiler.
type Options struct {
	// N is the number of processes (required, > 0).
	N int
	// RetainSpans keeps every closed phase segment for Perfetto export. Off
	// for batch workloads, where only the counters and matrices are merged.
	RetainSpans bool
	// MaxSpans / MaxBlames / MaxNodes override the retention bounds
	// (DefaultMaxSpans / DefaultMaxBlames / DefaultMaxNodes when zero).
	MaxSpans  int
	MaxBlames int
	MaxNodes  int
}

// BlameReason says which re-check the blamed writer tripped.
type BlameReason uint8

// Blame reasons, per scannable-memory implementation: Arrow scans fail on a
// set arrow register or a toggle-bit mismatch between the two collects;
// SeqSnap scans fail on a sequence-number mismatch; WaitFree scans fail on a
// handshake-bit latch or a toggle change.
const (
	BlameArrow BlameReason = iota
	BlameToggle
	BlameSeq
	BlameHandshake
	numBlameReasons
)

// String implements fmt.Stringer (the stable report label).
func (r BlameReason) String() string {
	switch r {
	case BlameArrow:
		return "arrow"
	case BlameToggle:
		return "toggle"
	case BlameSeq:
		return "seq"
	case BlameHandshake:
		return "handshake"
	default:
		return "blame.unknown"
	}
}

// perProc is one process's step ledger.
type perProc struct {
	total        int64                // steps in closed phase segments
	phase        [obs.NumPhases]int64 // closed-segment steps by phase
	retrySteps   int64                // steps burned in failed scan passes
	retryByPhase [obs.NumPhases]int64 // retrySteps split by phase
	scanClean    int64                // completed scans
	scanRetry    int64                // failed scan passes
	decided      bool
	decideStep   int64 // global step of the decision
	decideSteps  int64 // per-process steps at decision
	decideCP     int64 // critical-path length at decision
}

// cpNode is one arena entry of the happens-before chain: reader pid joined
// writer from's chain by reading its write (published at global step wstep)
// at global step step, reaching chain length cp. A from of -1 marks a decide
// node. parent indexes the previous node on the chain (-1 at the root or
// past a truncation).
type cpNode struct {
	parent int32
	pid    int32
	from   int32
	step   int64
	wstep  int64
	cp     int64
	phase  obs.PhaseID
}

// Profiler accumulates the causal step profile of one instance. Create one
// per instance with New; install it with consensus.Config.Profile (or
// core.ExecConfig.Profiler); read it with Report or Snapshot after the run.
type Profiler struct {
	n           int
	retainSpans bool
	maxSpans    int
	maxBlames   int
	maxNodes    int

	procs    []perProc
	curPhase []obs.PhaseID

	// blame[s*n+w]: scans by s that failed because of writer w's register.
	// contention[w]: failed re-checks tripped by register w (slot w is
	// written only by process w, so the heatmap is indexed by writer slot).
	// reasons[r]: failed passes by re-check kind.
	blame      []int64
	contention []int64
	reasons    [numBlameReasons]int64

	// lastWriteStep[w]: global step of w's most recent write (-1 before the
	// first) — the source anchor of blame flow events.
	lastWriteStep []int64

	// Critical-path DP state. cp(r at local step s) = joinLen[r] + s -
	// joinSteps[r]: every granted step extends the chain by one, and a clean
	// scan that observes a longer remote chain replaces the local one.
	// slot*[w] stamp w's latest write with its chain head at write time;
	// lastSeen[r*n+w] dedups joins per observed write step.
	joinLen   []int64
	joinSteps []int64
	joinNode  []int32
	slotStep  []int64
	slotCP    []int64
	slotNode  []int32
	lastSeen  []int64

	nodes       []cpNode
	cpTruncated bool

	spans        []Span
	spansDropped int64

	blames       []BlameEvent
	blameDropped int64
}

// New builds a profiler for n processes. Panics on N <= 0 — an enabled
// profiler without a population cannot attribute anything.
func New(o Options) *Profiler {
	if o.N <= 0 {
		panic("prof: Options.N must be positive")
	}
	n := o.N
	f := &Profiler{
		n:             n,
		retainSpans:   o.RetainSpans,
		maxSpans:      o.MaxSpans,
		maxBlames:     o.MaxBlames,
		maxNodes:      o.MaxNodes,
		procs:         make([]perProc, n),
		curPhase:      make([]obs.PhaseID, n),
		blame:         make([]int64, n*n),
		contention:    make([]int64, n),
		lastWriteStep: make([]int64, n),
		joinLen:       make([]int64, n),
		joinSteps:     make([]int64, n),
		joinNode:      make([]int32, n),
		slotStep:      make([]int64, n),
		slotCP:        make([]int64, n),
		slotNode:      make([]int32, n),
		lastSeen:      make([]int64, n*n),
	}
	if f.maxSpans <= 0 {
		f.maxSpans = DefaultMaxSpans
	}
	if f.maxBlames <= 0 {
		f.maxBlames = DefaultMaxBlames
	}
	if f.maxNodes <= 0 {
		f.maxNodes = DefaultMaxNodes
	}
	for i := 0; i < n; i++ {
		f.curPhase[i] = obs.PhasePrefer
		f.joinNode[i] = -1
		f.slotStep[i] = -1
		f.slotNode[i] = -1
		f.lastWriteStep[i] = -1
	}
	for i := range f.lastSeen {
		f.lastSeen[i] = -1
	}
	return f
}

// Enabled reports whether profiling is on. The nil profiler is the disabled
// profiler; call sites guard every hook with this.
func (f *Profiler) Enabled() bool { return f != nil }

// N returns the process count (0 when disabled).
func (f *Profiler) N() int {
	if f == nil {
		return 0
	}
	return f.n
}

// cpLen is the DP invariant: pid's chain length at local step steps.
func (f *Profiler) cpLen(pid int, steps int64) int64 {
	return f.joinLen[pid] + steps - f.joinSteps[pid]
}

// addNode appends to the bounded node arena, returning -1 once full.
func (f *Profiler) addNode(nd cpNode) int32 {
	if len(f.nodes) >= f.maxNodes {
		f.cpTruncated = true
		return -1
	}
	f.nodes = append(f.nodes, nd)
	return int32(len(f.nodes) - 1)
}

// PhaseBegin implements obs.SpanObserver: pid entered phase ph.
func (f *Profiler) PhaseBegin(pid int, ph obs.PhaseID) {
	if f == nil || pid < 0 || pid >= f.n || ph >= obs.NumPhases {
		return
	}
	f.curPhase[pid] = ph
}

// SpanCut implements obs.SpanObserver: pid spent segSteps of its own steps
// in ph between global steps gstart and gend.
func (f *Profiler) SpanCut(pid int, ph obs.PhaseID, gstart, gend, segSteps int64) {
	if f == nil || pid < 0 || pid >= f.n || ph >= obs.NumPhases {
		return
	}
	pp := &f.procs[pid]
	pp.total += segSteps
	pp.phase[ph] += segSteps
	if !f.retainSpans {
		return
	}
	if len(f.spans) >= f.maxSpans {
		f.spansDropped++
		return
	}
	f.spans = append(f.spans, Span{Pid: pid, Phase: ph.String(), Start: gstart, End: gend, Steps: segSteps})
}

// SpanFinish implements obs.SpanObserver: pid decided at global step gend
// with steps total per-process steps. Records the decide node closing pid's
// happens-before chain.
func (f *Profiler) SpanFinish(pid int, gend, steps int64) {
	if f == nil || pid < 0 || pid >= f.n {
		return
	}
	pp := &f.procs[pid]
	pp.decided = true
	pp.decideStep = gend
	pp.decideSteps = steps
	pp.decideCP = f.cpLen(pid, steps)
	idx := f.addNode(cpNode{
		parent: f.joinNode[pid],
		pid:    int32(pid),
		from:   -1,
		step:   gend,
		wstep:  -1,
		cp:     pp.decideCP,
		phase:  obs.PhaseDecide,
	})
	f.joinNode[pid] = idx
	f.joinLen[pid] = pp.decideCP
	f.joinSteps[pid] = steps
}

// NoteWrite records that writer completed a write of its slot at global step
// now with steps per-process steps: the slot is stamped with writer's
// current chain head so later scans can join it, and the write step anchors
// blame flow events.
func (f *Profiler) NoteWrite(writer int, now, steps int64) {
	if f == nil || writer < 0 || writer >= f.n {
		return
	}
	f.lastWriteStep[writer] = now
	f.slotCP[writer] = f.cpLen(writer, steps)
	f.slotStep[writer] = now
	f.slotNode[writer] = f.joinNode[writer]
}

// CleanScan records a completed scan by reader at global step now with steps
// per-process steps: the reader has observed every slot's freshest write, so
// its chain joins the longest stamped chain if that beats its own. One join
// node is appended per improving scan; writes already seen (per lastSeen)
// cannot improve the chain again and are skipped, so the arena stays
// proportional to genuine information flow.
func (f *Profiler) CleanScan(reader int, now, steps int64) {
	if f == nil || reader < 0 || reader >= f.n {
		return
	}
	f.procs[reader].scanClean++
	cur := f.cpLen(reader, steps)
	best, bestW := cur, -1
	for w := 0; w < f.n; w++ {
		if w == reader {
			continue
		}
		ws := f.slotStep[w]
		if ws < 0 || f.lastSeen[reader*f.n+w] >= ws {
			continue
		}
		f.lastSeen[reader*f.n+w] = ws
		// The read of w's slot is itself one chain step.
		if cand := f.slotCP[w] + 1; cand > best {
			best, bestW = cand, w
		}
	}
	if bestW < 0 {
		return
	}
	idx := f.addNode(cpNode{
		parent: f.slotNode[bestW],
		pid:    int32(reader),
		from:   int32(bestW),
		step:   now,
		wstep:  f.slotStep[bestW],
		cp:     best,
		phase:  f.curPhase[reader],
	})
	f.joinLen[reader] = best
	f.joinSteps[reader] = steps
	f.joinNode[reader] = idx
}

// ScanRetry records a failed scan pass by reader: the double-collect
// re-check was tripped by culprit's register (culprit == slot index, since
// slot w is written only by process w) for the given reason, burning burned
// per-process steps; now is the global step of the failed re-check. A
// negative culprit (unknown, e.g. under fault injection) still counts the
// pass but attributes no blame.
func (f *Profiler) ScanRetry(reader, culprit int, reason BlameReason, burned, now int64) {
	if f == nil || reader < 0 || reader >= f.n {
		return
	}
	pp := &f.procs[reader]
	pp.scanRetry++
	if burned > 0 {
		pp.retrySteps += burned
		pp.retryByPhase[f.curPhase[reader]] += burned
	}
	if reason < numBlameReasons {
		f.reasons[reason]++
	}
	if culprit < 0 || culprit >= f.n {
		return
	}
	f.blame[reader*f.n+culprit]++
	f.contention[culprit]++
	if !f.retainSpans {
		return
	}
	if len(f.blames) >= f.maxBlames {
		f.blameDropped++
		return
	}
	f.blames = append(f.blames, BlameEvent{
		Scanner:   reader,
		Writer:    culprit,
		Reg:       culprit,
		Reason:    reason.String(),
		WriteStep: f.lastWriteStep[culprit],
		FailStep:  now,
	})
}
