package prof

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

// TestNilProfilerIsDisabled: the nil profiler reports disabled and every
// hook is a safe no-op.
func TestNilProfilerIsDisabled(t *testing.T) {
	var f *Profiler
	if f.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
	if f.N() != 0 {
		t.Fatal("nil profiler has processes")
	}
	f.PhaseBegin(0, obs.PhaseCoin)
	f.SpanCut(0, obs.PhaseCoin, 0, 10, 10)
	f.SpanFinish(0, 10, 10)
	f.NoteWrite(0, 1, 1)
	f.CleanScan(0, 2, 2)
	f.ScanRetry(0, 1, BlameArrow, 3, 3)
	if p := f.Report(); p != nil {
		t.Fatalf("nil profiler produced a report: %+v", p)
	}
	s := f.Snapshot()
	if len(s.Counters) != 0 || len(s.Matrices) != 0 {
		t.Fatalf("nil profiler produced a snapshot: %+v", s)
	}
}

// TestStepClassification: a hand-driven run partitions steps exactly.
func TestStepClassification(t *testing.T) {
	f := New(Options{N: 2})
	// pid 0: 100 steps in prefer, 40 of them burned in failed scans; then 20
	// coin steps, 8 of them retries; then 10 strip steps; decide.
	f.PhaseBegin(0, obs.PhasePrefer)
	f.ScanRetry(0, 1, BlameArrow, 40, 50)
	f.SpanCut(0, obs.PhasePrefer, 0, 100, 100)
	f.PhaseBegin(0, obs.PhaseCoin)
	f.ScanRetry(0, 1, BlameToggle, 8, 110)
	f.SpanCut(0, obs.PhaseCoin, 100, 120, 20)
	f.PhaseBegin(0, obs.PhaseStrip)
	f.SpanCut(0, obs.PhaseStrip, 120, 130, 10)
	f.SpanFinish(0, 130, 130)

	p := f.Report()
	c := p.PerProc[0].Classes
	want := StepClasses{Total: 130, Productive: 60, ScanRetry: 48, CoinSpin: 12, StripWait: 10}
	if c != want {
		t.Fatalf("classes = %+v, want %+v", c, want)
	}
	if got := c.Productive + c.ScanRetry + c.CoinSpin + c.StripWait; got != c.Total {
		t.Fatalf("partition does not sum: %d != %d", got, c.Total)
	}
	if p.Reasons["arrow"] != 1 || p.Reasons["toggle"] != 1 {
		t.Fatalf("reasons = %v", p.Reasons)
	}
}

// TestBlameMatrix: failed passes land in the (scanner, writer) cell and the
// register heatmap; unknown culprits count the pass but attribute nothing.
func TestBlameMatrix(t *testing.T) {
	f := New(Options{N: 3, RetainSpans: true})
	f.ScanRetry(0, 1, BlameArrow, 5, 10)
	f.ScanRetry(0, 1, BlameArrow, 5, 20)
	f.ScanRetry(2, 1, BlameToggle, 5, 30)
	f.ScanRetry(0, 2, BlameArrow, 5, 40)
	f.ScanRetry(1, -1, BlameArrow, 5, 50) // unknown culprit

	p := f.Report()
	if p.Blame.At(0, 1) != 2 || p.Blame.At(2, 1) != 1 || p.Blame.At(0, 2) != 1 {
		t.Fatalf("blame = %+v", p.Blame)
	}
	if p.Blame.Sum() != 4 {
		t.Fatalf("blame sum = %d, want 4 (unknown culprit attributed)", p.Blame.Sum())
	}
	if p.ScanRetry != 5 {
		t.Fatalf("scan retry count = %d, want 5", p.ScanRetry)
	}
	if p.Contention.At(0, 1) != 3 || p.Contention.At(0, 2) != 1 {
		t.Fatalf("contention = %+v", p.Contention)
	}
	if len(p.Blames) != 4 {
		t.Fatalf("retained %d blame events, want 4", len(p.Blames))
	}
}

// TestCriticalPath: the chain follows the freshest reads-from edges. Writer
// 0 publishes, reader 1 joins its chain, publishes in turn, reader 2 joins
// 1's longer chain and decides: the path must be 0 → 1 → 2.
func TestCriticalPath(t *testing.T) {
	f := New(Options{N: 3, RetainSpans: true})
	f.NoteWrite(0, 5, 5)    // 0's chain: 5 local steps
	f.CleanScan(1, 8, 3)    // 1 joins 0's write: cp = 5+1 = 6 > 3
	f.NoteWrite(1, 12, 6)   // 1's chain: 6 + (6-3) = 9
	f.CleanScan(2, 15, 4)   // 2 joins 1's write: cp = 9+1 = 10 > 4
	f.SpanFinish(2, 20, 7)  // 2 decides: cp = 10 + (7-4) = 13
	f.SpanFinish(1, 18, 10) // 1 decided earlier (global step 18 < 20)

	p := f.Report()
	cp := p.CriticalPath
	if cp.Decider != 2 {
		t.Fatalf("decider = %d, want 2 (last to decide)", cp.Decider)
	}
	if cp.Len != 13 {
		t.Fatalf("cp len = %d, want 13", cp.Len)
	}
	if len(cp.Nodes) != 3 {
		t.Fatalf("cp has %d nodes, want 3 (join, join, decide): %+v", len(cp.Nodes), cp.Nodes)
	}
	if cp.Nodes[0].Kind != "join" || cp.Nodes[0].Pid != 1 || cp.Nodes[0].From != 0 {
		t.Fatalf("node 0 = %+v, want join 1<-0", cp.Nodes[0])
	}
	if cp.Nodes[1].Kind != "join" || cp.Nodes[1].Pid != 2 || cp.Nodes[1].From != 1 {
		t.Fatalf("node 1 = %+v, want join 2<-1", cp.Nodes[1])
	}
	if cp.Nodes[2].Kind != "decide" || cp.Nodes[2].Pid != 2 || cp.Nodes[2].Step != 20 {
		t.Fatalf("node 2 = %+v, want decide by 2 at step 20", cp.Nodes[2])
	}
}

// TestCriticalPathDedup: re-reading an already-seen write must not extend
// the chain — joins key on the observed write step.
func TestCriticalPathDedup(t *testing.T) {
	f := New(Options{N: 2})
	f.NoteWrite(0, 5, 5)
	f.CleanScan(1, 8, 3)
	first := f.cpLen(1, 3)
	for i := 0; i < 10; i++ {
		f.CleanScan(1, 9+int64(i), 3) // same write, no new info, no local steps
	}
	if got := f.cpLen(1, 3); got != first {
		t.Fatalf("re-reading the same write grew the chain: %d -> %d", first, got)
	}
	if n := len(f.nodes); n != 1 {
		t.Fatalf("arena has %d nodes, want 1", n)
	}
}

// TestNodeArenaBound: the arena stops growing at MaxNodes and the report
// flags truncation instead of allocating without bound.
func TestNodeArenaBound(t *testing.T) {
	f := New(Options{N: 2, MaxNodes: 4})
	for i := 0; i < 20; i++ {
		step := int64(i*2 + 1)
		f.NoteWrite(0, step, step)
		f.CleanScan(1, step+1, int64(i))
	}
	f.SpanFinish(1, 100, 25)
	if len(f.nodes) != 4 {
		t.Fatalf("arena grew to %d, want cap 4", len(f.nodes))
	}
	p := f.Report()
	if !p.CriticalPath.Truncated {
		t.Fatal("truncation not flagged")
	}
}

// TestSnapshotMerge: two profiler snapshots merge like any other shards —
// counters sum and matrices add element-wise.
func TestSnapshotMerge(t *testing.T) {
	a := New(Options{N: 2})
	a.SpanCut(0, obs.PhasePrefer, 0, 10, 10)
	a.ScanRetry(0, 1, BlameArrow, 4, 5)
	b := New(Options{N: 2})
	b.SpanCut(1, obs.PhasePrefer, 0, 20, 20)
	b.ScanRetry(1, 0, BlameToggle, 6, 7)

	m := obs.MergeSnapshots(a.Snapshot(), b.Snapshot())
	if m.Counters[CounterStepsTotal] != 30 {
		t.Fatalf("merged total = %d, want 30", m.Counters[CounterStepsTotal])
	}
	bm := m.Matrices[MatrixBlame]
	if bm.At(0, 1) != 1 || bm.At(1, 0) != 1 {
		t.Fatalf("merged blame = %+v", bm)
	}
	// Merge order must not matter.
	m2 := obs.MergeSnapshots(b.Snapshot(), a.Snapshot())
	if m2.Matrices[MatrixBlame].Sum() != bm.Sum() ||
		m2.Counters[CounterStepsTotal] != m.Counters[CounterStepsTotal] {
		t.Fatal("merge is order-dependent")
	}
}

// TestProfileJSONRoundTrip: Report -> JSON -> ParseProfile is lossless for
// the aggregate fields, and ParseProfile validates shape.
func TestProfileJSONRoundTrip(t *testing.T) {
	f := New(Options{N: 2, RetainSpans: true})
	f.SpanCut(0, obs.PhasePrefer, 0, 10, 10)
	f.NoteWrite(0, 5, 5)
	f.CleanScan(1, 8, 3)
	f.ScanRetry(1, 0, BlameSeq, 2, 9)
	f.SpanFinish(1, 12, 6)
	p := f.Report()

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseProfile(data)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if got.Classes != p.Classes || got.N != p.N || got.ScanRetry != p.ScanRetry {
		t.Fatalf("round trip changed aggregates: %+v vs %+v", got.Classes, p.Classes)
	}
	if len(got.CriticalPath.Nodes) != len(p.CriticalPath.Nodes) {
		t.Fatalf("round trip changed the critical path")
	}

	// Shape violations must be rejected.
	bad := *p
	bad.Blame.Cells = bad.Blame.Cells[:1]
	data, _ = json.Marshal(&bad)
	if _, err := ParseProfile(data); err == nil {
		t.Fatal("ParseProfile accepted a malformed blame matrix")
	}
}

// TestPerfettoDeterminism: the same profile serializes to the same bytes.
func TestPerfettoDeterminism(t *testing.T) {
	f := New(Options{N: 3, RetainSpans: true})
	f.SpanCut(0, obs.PhasePrefer, 0, 10, 10)
	f.SpanCut(1, obs.PhaseCoin, 3, 17, 9)
	f.NoteWrite(2, 4, 4)
	f.ScanRetry(0, 2, BlameArrow, 3, 12)
	p := f.Report()

	var a, b bytes.Buffer
	if err := WritePerfetto(&a, p); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if err := WritePerfetto(&b, p); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Perfetto export is nondeterministic")
	}
	st, err := ParsePerfetto(a.Bytes())
	if err != nil {
		t.Fatalf("ParsePerfetto: %v", err)
	}
	if st.Tracks != 3 || st.Slices != 2 || st.Flows != 1 {
		t.Fatalf("stats = %+v, want 3 tracks, 2 slices, 1 flow", st)
	}
}

// TestPerfettoRejectsBrokenFlows: a flow start without its finish fails
// validation.
func TestPerfettoRejectsBrokenFlows(t *testing.T) {
	raw := `{"traceEvents":[{"name":"scan-blame","ph":"s","pid":0,"tid":0,"ts":1,"id":1}],"displayTimeUnit":"ms"}`
	if _, err := ParsePerfetto([]byte(raw)); err == nil {
		t.Fatal("unpaired flow accepted")
	}
}

// TestSpanRetention: spans are kept only when requested, and the bound
// counts drops instead of growing.
func TestSpanRetention(t *testing.T) {
	off := New(Options{N: 1})
	off.SpanCut(0, obs.PhasePrefer, 0, 10, 10)
	if p := off.Report(); len(p.Spans) != 0 {
		t.Fatalf("spans retained without RetainSpans: %d", len(p.Spans))
	}
	on := New(Options{N: 1, RetainSpans: true, MaxSpans: 2})
	for i := int64(0); i < 5; i++ {
		on.SpanCut(0, obs.PhasePrefer, i*10, i*10+10, 10)
	}
	p := on.Report()
	if len(p.Spans) != 2 || p.SpansDropped != 3 {
		t.Fatalf("spans = %d dropped = %d, want 2/3", len(p.Spans), p.SpansDropped)
	}
	// The class ledger still saw every segment.
	if p.Classes.Total != 50 {
		t.Fatalf("total = %d, want 50", p.Classes.Total)
	}
}
