package prof

import (
	"encoding/json"
	"fmt"

	"github.com/dsrepro/consensus/internal/obs"
)

// Snapshot-key identifiers of the profiler's metrics. Counters under
// "prof.steps." are the step-class partition; matrices carry the blame and
// contention grids. They are not event kinds — the profiler emits nothing
// into traces — so they enter snapshots only through Profiler.Snapshot and
// obs.MergeSnapshots.
const (
	CounterStepsTotal      = "prof.steps.total"
	CounterStepsProductive = "prof.steps.productive"
	CounterStepsScanRetry  = "prof.steps.scan_retry"
	CounterStepsCoinSpin   = "prof.steps.coin_spin"
	CounterStepsStripWait  = "prof.steps.strip_wait"
	CounterScanClean       = "prof.scan.clean"
	CounterScanRetry       = "prof.scan.retry"
	CounterCPNodes         = "prof.cp.nodes"
	GaugeCPLen             = "prof.cp.len"
	GaugeCPDecideStep      = "prof.cp.decide_step"
	MatrixBlame            = "prof.blame"
	MatrixContention       = "prof.contention"
)

// StepClasses partitions granted steps by what they bought. scan_retry is
// every step burned in a failed scan pass; coin_spin and strip_wait are the
// coin and strip phase residues after removing their retry steps; productive
// is the remainder. Classes are clamped at zero (a process killed mid-pass
// can have retries charged against a phase segment that was never closed),
// so the partition is exact for decided processes and conservative for
// undecided ones.
type StepClasses struct {
	Total      int64 `json:"total"`
	Productive int64 `json:"productive"`
	ScanRetry  int64 `json:"scan_retry"`
	CoinSpin   int64 `json:"coin_spin"`
	StripWait  int64 `json:"strip_wait"`
}

// add accumulates o into c.
func (c *StepClasses) add(o StepClasses) {
	c.Total += o.Total
	c.Productive += o.Productive
	c.ScanRetry += o.ScanRetry
	c.CoinSpin += o.CoinSpin
	c.StripWait += o.StripWait
}

// ProcProfile is one process's profile.
type ProcProfile struct {
	Pid        int         `json:"pid"`
	Classes    StepClasses `json:"classes"`
	ScanClean  int64       `json:"scan_clean"`
	ScanRetry  int64       `json:"scan_retry"`
	Decided    bool        `json:"decided"`
	DecideStep int64       `json:"decide_step,omitempty"`
	CPLen      int64       `json:"cp_len,omitempty"`
}

// Span is one closed phase segment: Pid spent Steps of its own steps in
// Phase between global steps Start and End.
type Span struct {
	Pid   int    `json:"pid"`
	Phase string `json:"phase"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
	Steps int64  `json:"steps"`
}

// BlameEvent is one attributed scan failure: Scanner's re-check at global
// step FailStep was tripped by Writer's register Reg, whose most recent
// write completed at WriteStep (-1 if the initial value tripped it).
type BlameEvent struct {
	Scanner   int    `json:"scanner"`
	Writer    int    `json:"writer"`
	Reg       int    `json:"reg"`
	Reason    string `json:"reason"`
	WriteStep int64  `json:"write_step"`
	FailStep  int64  `json:"fail_step"`
}

// CPNode is one link of the critical path. A join node (Kind "join") says
// reader Pid observed writer From's write (published at WriteStep) at global
// step Step while in Phase, extending the chain to length CP; the decide
// node (Kind "decide", From -1) closes the chain.
type CPNode struct {
	Kind      string `json:"kind"`
	Pid       int    `json:"pid"`
	From      int    `json:"from"`
	Step      int64  `json:"step"`
	WriteStep int64  `json:"write_step,omitempty"`
	Phase     string `json:"phase"`
	CP        int64  `json:"cp"`
}

// CriticalPath is the reads-from chain that gated the last decision: the
// longest happens-before path ending at the final decider's decide step.
// Len counts chain steps (local steps plus one per joined read); Nodes are
// the information-transfer links in chronological order (local runs between
// them are implicit in the CP deltas). Truncated is set when the node arena
// filled and the chain's tail was cut.
type CriticalPath struct {
	Decider    int      `json:"decider"`
	DecideStep int64    `json:"decide_step"`
	Len        int64    `json:"len"`
	Truncated  bool     `json:"truncated,omitempty"`
	Nodes      []CPNode `json:"nodes"`
}

// Profile is the full report of one profiled run (or a batch aggregate,
// where spans, blame events and the critical path come from the designated
// exemplar instance and everything else is summed).
type Profile struct {
	N            int                `json:"n"`
	Classes      StepClasses        `json:"classes"`
	PerProc      []ProcProfile      `json:"per_proc"`
	ScanClean    int64              `json:"scan_clean"`
	ScanRetry    int64              `json:"scan_retry"`
	Reasons      map[string]int64   `json:"reasons,omitempty"`
	Blame        obs.MatrixSnapshot `json:"blame"`
	Contention   obs.MatrixSnapshot `json:"contention"`
	CriticalPath CriticalPath       `json:"critical_path"`
	Spans        []Span             `json:"spans,omitempty"`
	SpansDropped int64              `json:"spans_dropped,omitempty"`
	Blames       []BlameEvent       `json:"blame_events,omitempty"`
	BlameDropped int64              `json:"blame_dropped,omitempty"`
}

// classes computes pp's step-class partition.
func (pp *perProc) classes() StepClasses {
	c := StepClasses{Total: pp.total, ScanRetry: pp.retrySteps}
	c.CoinSpin = pp.phase[obs.PhaseCoin] - pp.retryByPhase[obs.PhaseCoin]
	c.StripWait = pp.phase[obs.PhaseStrip] - pp.retryByPhase[obs.PhaseStrip]
	if c.CoinSpin < 0 {
		c.CoinSpin = 0
	}
	if c.StripWait < 0 {
		c.StripWait = 0
	}
	c.Productive = c.Total - c.ScanRetry - c.CoinSpin - c.StripWait
	if c.Productive < 0 {
		c.Productive = 0
	}
	return c
}

// blameMatrix copies the n×n blame grid into a snapshot.
func (f *Profiler) blameMatrix() obs.MatrixSnapshot {
	return obs.MatrixSnapshot{
		Rows:     f.n,
		Cols:     f.n,
		Cells:    append([]int64(nil), f.blame...),
		RowLabel: "scanner",
		ColLabel: "writer",
	}
}

// contentionMatrix copies the 1×n register heatmap into a snapshot.
func (f *Profiler) contentionMatrix() obs.MatrixSnapshot {
	return obs.MatrixSnapshot{
		Rows:     1,
		Cols:     f.n,
		Cells:    append([]int64(nil), f.contention...),
		ColLabel: "register",
	}
}

// criticalPath reconstructs the chain of the last decider (ties broken
// toward the lower pid; global steps make ties impossible in practice since
// each step is granted to one process).
func (f *Profiler) criticalPath() CriticalPath {
	decider, deciderStep := -1, int64(-1)
	for pid := range f.procs {
		pp := &f.procs[pid]
		if pp.decided && pp.decideStep > deciderStep {
			decider, deciderStep = pid, pp.decideStep
		}
	}
	if decider < 0 {
		return CriticalPath{Decider: -1, DecideStep: -1}
	}
	cp := CriticalPath{
		Decider:    decider,
		DecideStep: deciderStep,
		Len:        f.procs[decider].decideCP,
		Truncated:  f.cpTruncated,
	}
	// Walk parent pointers from the decide node, then reverse into
	// chronological order.
	var rev []CPNode
	for idx := f.joinNode[decider]; idx >= 0; idx = f.nodes[idx].parent {
		nd := &f.nodes[idx]
		out := CPNode{
			Kind:      "join",
			Pid:       int(nd.pid),
			From:      int(nd.from),
			Step:      nd.step,
			WriteStep: nd.wstep,
			Phase:     nd.phase.String(),
			CP:        nd.cp,
		}
		if nd.from < 0 {
			out.Kind = "decide"
			out.WriteStep = 0
		}
		rev = append(rev, out)
	}
	cp.Nodes = make([]CPNode, len(rev))
	for i, nd := range rev {
		cp.Nodes[len(rev)-1-i] = nd
	}
	return cp
}

// Report builds the full profile. Call only after the run completes.
func (f *Profiler) Report() *Profile {
	if f == nil {
		return nil
	}
	p := &Profile{
		N:            f.n,
		PerProc:      make([]ProcProfile, f.n),
		Blame:        f.blameMatrix(),
		Contention:   f.contentionMatrix(),
		CriticalPath: f.criticalPath(),
		SpansDropped: f.spansDropped,
		BlameDropped: f.blameDropped,
	}
	for pid := range f.procs {
		pp := &f.procs[pid]
		c := pp.classes()
		p.Classes.add(c)
		p.ScanClean += pp.scanClean
		p.ScanRetry += pp.scanRetry
		p.PerProc[pid] = ProcProfile{
			Pid:        pid,
			Classes:    c,
			ScanClean:  pp.scanClean,
			ScanRetry:  pp.scanRetry,
			Decided:    pp.decided,
			DecideStep: pp.decideStep,
			CPLen:      pp.decideCP,
		}
	}
	for r := BlameReason(0); r < numBlameReasons; r++ {
		if f.reasons[r] != 0 {
			if p.Reasons == nil {
				p.Reasons = make(map[string]int64)
			}
			p.Reasons[r.String()] = f.reasons[r]
		}
	}
	if f.retainSpans {
		p.Spans = append([]Span(nil), f.spans...)
		p.Blames = append([]BlameEvent(nil), f.blames...)
	}
	return p
}

// Snapshot renders the profiler's aggregates as an obs.Snapshot: the
// prof.* counters, the critical-path gauges, and the blame/contention
// matrices. Per-instance snapshots merge deterministically with
// obs.MergeSnapshots — counters sum, gauges max, matrices add element-wise —
// so batch aggregation in instance order is independent of Parallel.
func (f *Profiler) Snapshot() obs.Snapshot {
	if f == nil {
		return obs.Snapshot{}
	}
	var agg StepClasses
	var clean, retry int64
	for pid := range f.procs {
		agg.add(f.procs[pid].classes())
		clean += f.procs[pid].scanClean
		retry += f.procs[pid].scanRetry
	}
	cp := f.criticalPath()
	s := obs.Snapshot{
		Counters: map[string]int64{
			CounterStepsTotal:      agg.Total,
			CounterStepsProductive: agg.Productive,
			CounterStepsScanRetry:  agg.ScanRetry,
			CounterStepsCoinSpin:   agg.CoinSpin,
			CounterStepsStripWait:  agg.StripWait,
			CounterScanClean:       clean,
			CounterScanRetry:       retry,
			CounterCPNodes:         int64(len(f.nodes)),
		},
		Gauges:   map[string]int64{},
		Hists:    map[string]obs.HistSnapshot{},
		Matrices: map[string]obs.MatrixSnapshot{},
	}
	if cp.Decider >= 0 {
		s.Gauges[GaugeCPLen] = cp.Len
		s.Gauges[GaugeCPDecideStep] = cp.DecideStep
	}
	if b := f.blameMatrix(); b.Sum() != 0 {
		s.Matrices[MatrixBlame] = b
	}
	if c := f.contentionMatrix(); c.Sum() != 0 {
		s.Matrices[MatrixContention] = c
	}
	return s
}

// ParseProfile decodes and validates a Profile produced by Report (the
// contract traceview -prof relies on; also the fuzz target's subject).
func ParseProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("prof: parse profile: %w", err)
	}
	if p.N < 0 {
		return nil, fmt.Errorf("prof: invalid profile: n = %d", p.N)
	}
	if got := len(p.Blame.Cells); got != p.Blame.Rows*p.Blame.Cols {
		return nil, fmt.Errorf("prof: blame matrix has %d cells, want %d",
			got, p.Blame.Rows*p.Blame.Cols)
	}
	if got := len(p.Contention.Cells); got != p.Contention.Rows*p.Contention.Cols {
		return nil, fmt.Errorf("prof: contention matrix has %d cells, want %d",
			got, p.Contention.Rows*p.Contention.Cols)
	}
	for i, pp := range p.PerProc {
		if pp.Pid != i {
			return nil, fmt.Errorf("prof: per_proc[%d] has pid %d", i, pp.Pid)
		}
	}
	prev := int64(-1)
	for i, nd := range p.CriticalPath.Nodes {
		if nd.CP < prev {
			return nil, fmt.Errorf("prof: critical path not monotone at node %d (%d < %d)",
				i, nd.CP, prev)
		}
		prev = nd.CP
	}
	return &p, nil
}
