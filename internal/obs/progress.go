package obs

import (
	"sync/atomic"
	"time"
)

// progressWindowBuckets x progressBucketNanos is the sliding window behind
// the ETA estimate: completion events are binned into one-second epochs in a
// small ring, so the windowed rate tracks the current regime (e.g. the slow
// n=32 tail of a mixed batch) instead of the whole-batch average.
const (
	progressWindowBuckets = 8
	progressBucketNanos   = int64(time.Second)
)

// progressBucket is one ring slot: the epoch it currently holds and the
// completions counted in that epoch. A slot is lazily reclaimed when a newer
// epoch lands on it; the reclaim (CAS epoch, then reset count) can drop a
// concurrent increment, which is acceptable for a reporting-only probe.
type progressBucket struct {
	epoch atomic.Int64 // 0 = never used; otherwise 1 + (doneNano-startNano)/bucketNanos
	count atomic.Int64
}

// BatchProgress is an atomic probe into a running batch: total, completed and
// in-flight instance counts plus the wall-clock start, updated by the batch
// engine's workers (core.RunBatch) and read concurrently by the live
// telemetry server. Like *Sink, a nil *BatchProgress is a valid disabled
// probe — every method nil-checks the receiver — so the engine pays one
// branch when nobody is watching. The probe is reporting-only: it never feeds
// back into execution, so batch results stay deterministic with or without
// it.
type BatchProgress struct {
	total     atomic.Int64
	completed atomic.Int64
	inflight  atomic.Int64
	startNano atomic.Int64
	window    [progressWindowBuckets]progressBucket
}

// Begin (re)arms the probe for a batch of total instances, stamping the
// wall-clock start.
func (p *BatchProgress) Begin(total int) {
	p.beginAt(total, time.Now().UnixNano())
}

func (p *BatchProgress) beginAt(total int, nowNano int64) {
	if p == nil {
		return
	}
	p.total.Store(int64(total))
	p.completed.Store(0)
	p.inflight.Store(0)
	for i := range p.window {
		p.window[i].epoch.Store(0)
		p.window[i].count.Store(0)
	}
	p.startNano.Store(nowNano)
}

// InstanceStarted marks one instance as picked up by a worker.
func (p *BatchProgress) InstanceStarted() {
	if p == nil {
		return
	}
	p.inflight.Add(1)
}

// InstanceDone marks one in-flight instance as completed.
func (p *BatchProgress) InstanceDone() {
	p.instanceDoneAt(time.Now().UnixNano())
}

func (p *BatchProgress) instanceDoneAt(nowNano int64) {
	if p == nil {
		return
	}
	p.inflight.Add(-1)
	p.completed.Add(1)
	start := p.startNano.Load()
	if start == 0 || nowNano < start {
		return
	}
	epoch := (nowNano-start)/progressBucketNanos + 1
	b := &p.window[epoch%progressWindowBuckets]
	for {
		e := b.epoch.Load()
		if e == epoch {
			b.count.Add(1)
			return
		}
		if e > epoch {
			// A newer epoch already owns the slot (clock skew between
			// workers); drop the sample rather than corrupt the newer bin.
			return
		}
		if b.epoch.CompareAndSwap(e, epoch) {
			b.count.Store(1)
			return
		}
	}
}

// ProgressSnapshot is a point-in-time view of a BatchProgress.
type ProgressSnapshot struct {
	// Total, Completed and InFlight count instances.
	Total, Completed, InFlight int64
	// ElapsedSec is the wall-clock time since Begin (0 before Begin).
	ElapsedSec float64
	// PerSec is Completed / ElapsedSec (0 when elapsed is 0).
	PerSec float64
	// WindowPerSec is the completion rate over the recent sliding window
	// (~8s), which tracks the current regime in batches whose instances vary
	// wildly in cost. 0 when nothing completed within the window.
	WindowPerSec float64
	// ETASec estimates the remaining wall-clock seconds: instances remaining
	// divided by WindowPerSec, falling back to the whole-batch PerSec when
	// the window is empty. 0 when done; negative (-1) when no rate exists yet
	// to estimate from.
	ETASec float64
}

// Snapshot reads the probe. Safe to call concurrently with worker updates; a
// nil probe returns the zero snapshot.
func (p *BatchProgress) Snapshot() ProgressSnapshot {
	return p.snapshotAt(time.Now().UnixNano())
}

func (p *BatchProgress) snapshotAt(nowNano int64) ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Total:     p.total.Load(),
		Completed: p.completed.Load(),
		InFlight:  p.inflight.Load(),
	}
	start := p.startNano.Load()
	if start != 0 && nowNano > start {
		s.ElapsedSec = float64(nowNano-start) / float64(time.Second)
	}
	if s.ElapsedSec > 0 {
		s.PerSec = float64(s.Completed) / s.ElapsedSec
	}
	if start != 0 && nowNano >= start {
		curEpoch := (nowNano-start)/progressBucketNanos + 1
		var recent int64
		for i := range p.window {
			e := p.window[i].epoch.Load()
			if e > 0 && e <= curEpoch && curEpoch-e < progressWindowBuckets {
				recent += p.window[i].count.Load()
			}
		}
		winSec := s.ElapsedSec
		if max := float64(progressWindowBuckets) * float64(progressBucketNanos) / float64(time.Second); winSec > max {
			winSec = max
		}
		if winSec > 0 && recent > 0 {
			s.WindowPerSec = float64(recent) / winSec
		}
	}
	remaining := s.Total - s.Completed
	switch {
	case remaining <= 0:
		s.ETASec = 0
	case s.WindowPerSec > 0:
		s.ETASec = float64(remaining) / s.WindowPerSec
	case s.PerSec > 0:
		s.ETASec = float64(remaining) / s.PerSec
	default:
		s.ETASec = -1
	}
	return s
}
