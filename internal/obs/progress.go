package obs

import (
	"sync/atomic"
	"time"
)

// BatchProgress is an atomic probe into a running batch: total, completed and
// in-flight instance counts plus the wall-clock start, updated by the batch
// engine's workers (core.RunBatch) and read concurrently by the live
// telemetry server. Like *Sink, a nil *BatchProgress is a valid disabled
// probe — every method nil-checks the receiver — so the engine pays one
// branch when nobody is watching. The probe is reporting-only: it never feeds
// back into execution, so batch results stay deterministic with or without
// it.
type BatchProgress struct {
	total     atomic.Int64
	completed atomic.Int64
	inflight  atomic.Int64
	startNano atomic.Int64
}

// Begin (re)arms the probe for a batch of total instances, stamping the
// wall-clock start.
func (p *BatchProgress) Begin(total int) {
	if p == nil {
		return
	}
	p.total.Store(int64(total))
	p.completed.Store(0)
	p.inflight.Store(0)
	p.startNano.Store(time.Now().UnixNano())
}

// InstanceStarted marks one instance as picked up by a worker.
func (p *BatchProgress) InstanceStarted() {
	if p == nil {
		return
	}
	p.inflight.Add(1)
}

// InstanceDone marks one in-flight instance as completed.
func (p *BatchProgress) InstanceDone() {
	if p == nil {
		return
	}
	p.inflight.Add(-1)
	p.completed.Add(1)
}

// ProgressSnapshot is a point-in-time view of a BatchProgress.
type ProgressSnapshot struct {
	// Total, Completed and InFlight count instances.
	Total, Completed, InFlight int64
	// ElapsedSec is the wall-clock time since Begin (0 before Begin).
	ElapsedSec float64
	// PerSec is Completed / ElapsedSec (0 when elapsed is 0).
	PerSec float64
}

// Snapshot reads the probe. Safe to call concurrently with worker updates; a
// nil probe returns the zero snapshot.
func (p *BatchProgress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Total:     p.total.Load(),
		Completed: p.completed.Load(),
		InFlight:  p.inflight.Load(),
	}
	if start := p.startNano.Load(); start != 0 {
		s.ElapsedSec = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.ElapsedSec > 0 {
		s.PerSec = float64(s.Completed) / s.ElapsedSec
	}
	return s
}
