package obs

import (
	"testing"
	"time"
)

func TestBatchProgressLifecycle(t *testing.T) {
	var p BatchProgress
	if s := p.Snapshot(); s.Total != 0 || s.ElapsedSec != 0 {
		t.Errorf("zero probe snapshot: %+v", s)
	}
	p.Begin(3)
	p.InstanceStarted()
	p.InstanceStarted()
	if s := p.Snapshot(); s.Total != 3 || s.InFlight != 2 || s.Completed != 0 {
		t.Errorf("mid-batch snapshot: %+v", s)
	}
	p.InstanceDone()
	p.InstanceDone()
	p.InstanceStarted()
	p.InstanceDone()
	s := p.Snapshot()
	if s.Completed != 3 || s.InFlight != 0 {
		t.Errorf("end-of-batch snapshot: %+v", s)
	}
	if s.ElapsedSec < 0 {
		t.Errorf("elapsed went negative: %v", s.ElapsedSec)
	}
	// Re-arming resets the counters for the next batch.
	p.Begin(10)
	if s := p.Snapshot(); s.Total != 10 || s.Completed != 0 || s.InFlight != 0 {
		t.Errorf("re-armed snapshot: %+v", s)
	}
}

func TestBatchProgressNilSafe(t *testing.T) {
	var p *BatchProgress
	p.Begin(5)
	p.InstanceStarted()
	p.InstanceDone()
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Errorf("nil probe snapshot: %+v", s)
	}
}

// TestBatchProgressETA drives the probe with explicit clocks: a steady 10
// completions/sec for 4 seconds must yield a windowed rate near 10/s and an
// ETA near remaining/rate.
func TestBatchProgressETA(t *testing.T) {
	var p BatchProgress
	start := int64(1_000_000_000)
	sec := int64(time.Second)
	p.beginAt(100, start)

	// Before anything completes there is no rate: ETA is the -1 sentinel.
	if s := p.snapshotAt(start + sec); s.ETASec != -1 || s.WindowPerSec != 0 {
		t.Errorf("pre-completion snapshot: %+v", s)
	}

	now := start
	for tick := 0; tick < 4; tick++ { // 4 seconds x 10 completions
		for i := 0; i < 10; i++ {
			p.InstanceStarted()
			now += sec / 10
			p.instanceDoneAt(now)
		}
	}
	s := p.snapshotAt(now)
	if s.Completed != 40 {
		t.Fatalf("completed = %d, want 40", s.Completed)
	}
	if s.WindowPerSec < 8 || s.WindowPerSec > 12 {
		t.Errorf("window rate = %v, want ~10/s", s.WindowPerSec)
	}
	// 60 remaining at ~10/s: the estimate must land in the same decade.
	if s.ETASec < 4 || s.ETASec > 9 {
		t.Errorf("eta = %v, want ~6s", s.ETASec)
	}

	// Drain the batch: a finished batch has ETA 0 regardless of rates.
	for i := 0; i < 60; i++ {
		p.InstanceStarted()
		now += sec / 10
		p.instanceDoneAt(now)
	}
	if s := p.snapshotAt(now); s.ETASec != 0 {
		t.Errorf("finished-batch eta = %v, want 0", s.ETASec)
	}
}

// TestBatchProgressWindowTracksRegimeChange: after a fast phase and a stall,
// the windowed rate decays toward the recent (empty) window while the overall
// PerSec still remembers the fast phase — the property that makes the ETA
// honest for mixed batches.
func TestBatchProgressWindowTracksRegimeChange(t *testing.T) {
	var p BatchProgress
	start := int64(5_000_000_000)
	sec := int64(time.Second)
	p.beginAt(1000, start)
	now := start
	for i := 0; i < 100; i++ { // 100 done in the first second
		p.InstanceStarted()
		now += sec / 100
		p.instanceDoneAt(now)
	}
	// 60 seconds of silence: the window slides past every completion.
	s := p.snapshotAt(now + 60*sec)
	if s.WindowPerSec != 0 {
		t.Errorf("stalled window rate = %v, want 0", s.WindowPerSec)
	}
	if s.PerSec <= 0 {
		t.Errorf("overall rate lost: %+v", s)
	}
	// With an empty window the ETA falls back to the overall rate.
	if s.ETASec <= 0 {
		t.Errorf("stalled eta = %v, want fallback > 0", s.ETASec)
	}
}
