package obs

import "testing"

func TestBatchProgressLifecycle(t *testing.T) {
	var p BatchProgress
	if s := p.Snapshot(); s.Total != 0 || s.ElapsedSec != 0 {
		t.Errorf("zero probe snapshot: %+v", s)
	}
	p.Begin(3)
	p.InstanceStarted()
	p.InstanceStarted()
	if s := p.Snapshot(); s.Total != 3 || s.InFlight != 2 || s.Completed != 0 {
		t.Errorf("mid-batch snapshot: %+v", s)
	}
	p.InstanceDone()
	p.InstanceDone()
	p.InstanceStarted()
	p.InstanceDone()
	s := p.Snapshot()
	if s.Completed != 3 || s.InFlight != 0 {
		t.Errorf("end-of-batch snapshot: %+v", s)
	}
	if s.ElapsedSec < 0 {
		t.Errorf("elapsed went negative: %v", s.ElapsedSec)
	}
	// Re-arming resets the counters for the next batch.
	p.Begin(10)
	if s := p.Snapshot(); s.Total != 10 || s.Completed != 0 || s.InFlight != 0 {
		t.Errorf("re-armed snapshot: %+v", s)
	}
}

func TestBatchProgressNilSafe(t *testing.T) {
	var p *BatchProgress
	p.Begin(5)
	p.InstanceStarted()
	p.InstanceDone()
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Errorf("nil probe snapshot: %+v", s)
	}
}
