package obs

import (
	"fmt"
	"io"
	"sync"
)

// Recorder receives the event stream. Under the step scheduler invocations
// are serialized; in free-running mode a Recorder must synchronize itself
// (the recorders in this package all do).
type Recorder interface {
	Record(Event)
}

// FuncRecorder adapts a function to the Recorder interface.
type FuncRecorder func(Event)

// Record implements Recorder.
func (f FuncRecorder) Record(e Event) { f(e) }

// Ring is a bounded ring-buffer recorder: it keeps the most recent Cap
// events and counts how many older ones were overwritten. It is safe for
// concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped int64
	drops   *Sink // optional: overwrites counted as TraceDropped (CountDropsInto)
}

// NewRing returns a ring buffer holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// CountDropsInto makes every future ring overwrite also count a TraceDropped
// event into s's registry, so trace loss is visible live (e.g. on the
// /metrics endpoint of a server holding the same registry) rather than only
// in the post-run Dropped() total. Call before recording starts; a nil s
// disables the counting again.
func (r *Ring) CountDropsInto(s *Sink) {
	r.mu.Lock()
	r.drops = s
	r.mu.Unlock()
}

// Record implements Recorder.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
		r.drops.Count(TraceDropped)
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were overwritten after the buffer filled.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tee fans one event stream out to several recorders (nils are skipped).
func Tee(recs ...Recorder) Recorder {
	kept := make([]Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return teeRecorder(kept)
}

type teeRecorder []Recorder

// Record implements Recorder.
func (t teeRecorder) Record(e Event) {
	for _, r := range t {
		r.Record(e)
	}
}

// FilterLayers passes through only events whose kind belongs to one of the
// given layers.
func FilterLayers(inner Recorder, layers ...Layer) Recorder {
	var mask uint64
	for _, l := range layers {
		mask |= 1 << l
	}
	return FuncRecorder(func(e Event) {
		if mask&(1<<e.Kind.Layer()) != 0 {
			inner.Record(e)
		}
	})
}

// TextRecorder writes one human-readable line per event (Event.String) to w.
// It is the formatting path shared by every human-facing trace surface
// (consensus-sim -trace, cointool); the JSONL path shares the same events
// through JSONLRecorder.
type TextRecorder struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextRecorder returns a text recorder writing to w.
func NewTextRecorder(w io.Writer) *TextRecorder { return &TextRecorder{w: w} }

// Record implements Recorder.
func (t *TextRecorder) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.w, e)
}
