package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRingWrapAround(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(Event{Step: int64(i), Kind: CoreFlip})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	got := r.Events()
	for i, want := range []int64{3, 4, 5} {
		if got[i].Step != want {
			t.Errorf("event %d step = %d, want %d (oldest first)", i, got[i].Step, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Step: 1})
	r.Record(Event{Step: 2})
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("Len/Dropped = %d/%d, want 2/0", r.Len(), r.Dropped())
	}
	if got := r.Events(); len(got) != 2 || got[0].Step != 1 {
		t.Fatalf("Events = %+v", got)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(Event{Step: 1})
	r.Record(Event{Step: 2})
	if r.Len() != 1 || r.Events()[0].Step != 2 {
		t.Fatalf("capacity-0 ring: len=%d events=%+v", r.Len(), r.Events())
	}
}

func TestRingCountDropsInto(t *testing.T) {
	r := NewRing(2)
	sink := NewSink(nil)
	r.CountDropsInto(sink)
	for i := 1; i <= 5; i++ {
		r.Record(Event{Step: int64(i)})
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
	key := TraceDropped.ID()
	if got := sink.Registry().Snapshot().Counters[key]; got != 3 {
		t.Fatalf("registry %s = %d, want 3", key, got)
	}
	// Detach: further overwrites keep counting locally but not in the registry.
	r.CountDropsInto(nil)
	r.Record(Event{Step: 6})
	if got := sink.Registry().Snapshot().Counters[key]; got != 3 {
		t.Fatalf("detached ring still counted into registry: %d", got)
	}
	if r.Dropped() != 4 {
		t.Fatalf("Dropped after detach = %d, want 4", r.Dropped())
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee should collapse to nil")
	}
	a := NewRing(4)
	if Tee(nil, a, nil) != Recorder(a) {
		t.Fatal("single-recorder Tee should return the recorder itself")
	}
	b := NewRing(4)
	tee := Tee(a, b)
	tee.Record(Event{Step: 7})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee did not fan out: %d/%d", a.Len(), b.Len())
	}
}

func TestFilterLayers(t *testing.T) {
	r := NewRing(16)
	f := FilterLayers(r, LayerCore)
	f.Record(Event{Kind: CoreDecide})
	f.Record(Event{Kind: RegSWMRRead})
	f.Record(Event{Kind: ScanRetry})
	f.Record(Event{Kind: CoreStart})
	if r.Len() != 2 {
		t.Fatalf("filter kept %d events, want 2", r.Len())
	}
	for _, e := range r.Events() {
		if e.Kind.Layer() != LayerCore {
			t.Errorf("non-core event passed filter: %v", e)
		}
	}
}

func TestTextRecorderFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTextRecorder(&buf)
	tr.Record(Event{Step: 12, Pid: 1, Round: 3, Kind: CoreDecide, Detail: "0"})
	line := strings.TrimRight(buf.String(), "\n")
	// The legacy trace format: "step" first, then pid/round, layer, label,
	// detail. cointool and consensus-sim -trace both rely on this shape.
	for _, want := range []string{"step", "p1", "r3", "core", "decide", "0"} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line %q missing %q", line, want)
		}
	}
	if !strings.HasPrefix(line, "step") {
		t.Errorf("trace line %q does not start with \"step\"", line)
	}
}

func TestFuncRecorder(t *testing.T) {
	var got []Event
	r := FuncRecorder(func(e Event) { got = append(got, e) })
	r.Record(Event{Step: 1})
	if len(got) != 1 {
		t.Fatalf("FuncRecorder captured %d events", len(got))
	}
}
