package obs

import "sync/atomic"

// GaugeID names a max-tracking gauge in the registry.
type GaugeID uint8

// Gauges.
const (
	// GaugeMaxAbsCoin is the largest |coin counter| ever written.
	GaugeMaxAbsCoin GaugeID = iota
	// GaugeMaxRound is the largest explicit round number ever written
	// (unbounded protocols only).
	GaugeMaxRound
	// GaugeMaxStripLen is the largest per-process coin-strip length ever
	// written (unbounded protocols only).
	GaugeMaxStripLen
	// GaugeAuditLastStep is the scheduler step of the most recent audit
	// violation (0 when no probe ever fired; see internal/obs/audit).
	GaugeAuditLastStep
	// GaugeSpacePeakRegs..GaugeSpaceMaxBits are the space-accounting totals
	// (see internal/obs/space): physical registers attached, registers
	// actually written, peak state words, and the widest effective
	// per-word width in bits.
	GaugeSpacePeakRegs
	GaugeSpaceLiveRegs
	GaugeSpacePeakWords
	GaugeSpaceMaxBits
	// GaugeSpaceBitsRegister..GaugeSpaceBitsCore are the per-layer effective
	// width family, in space.Layer enum order (register, scan, strip, walk,
	// core). Contiguity is relied on by the publisher.
	GaugeSpaceBitsRegister
	GaugeSpaceBitsScan
	GaugeSpaceBitsStrip
	GaugeSpaceBitsWalk
	GaugeSpaceBitsCore
	numGauges
)

// String implements fmt.Stringer (the stable metrics-snapshot key).
func (g GaugeID) String() string {
	switch g {
	case GaugeMaxAbsCoin:
		return "core.max_abs_coin"
	case GaugeMaxRound:
		return "core.max_round"
	case GaugeMaxStripLen:
		return "core.max_strip_len"
	case GaugeAuditLastStep:
		return "audit.last_violation_step"
	case GaugeSpacePeakRegs:
		return "space.peak_regs"
	case GaugeSpaceLiveRegs:
		return "space.live_regs"
	case GaugeSpacePeakWords:
		return "space.peak_words"
	case GaugeSpaceMaxBits:
		return "space.max_bits"
	case GaugeSpaceBitsRegister:
		return "space.bits.register"
	case GaugeSpaceBitsScan:
		return "space.bits.scan"
	case GaugeSpaceBitsStrip:
		return "space.bits.strip"
	case GaugeSpaceBitsWalk:
		return "space.bits.walk"
	case GaugeSpaceBitsCore:
		return "space.bits.core"
	default:
		return "gauge.unknown"
	}
}

// HistID names a histogram in the registry.
type HistID uint8

// Histograms.
const (
	// HistScanRetries is the distribution of retries per completed scan.
	HistScanRetries HistID = iota
	// HistStepsToDecide is the distribution of per-process atomic steps from
	// start to decision.
	HistStepsToDecide
	// HistPhasePrefer..HistPhaseDecide are the phase.steps family: the
	// per-process total atomic steps attributed to each protocol phase (one
	// sample per decided process; see PhaseSpan). Together they decompose
	// HistStepsToDecide.
	HistPhasePrefer
	HistPhaseCoin
	HistPhaseStrip
	HistPhaseDecide
	// HistLatSolve is the distribution of per-instance wall-clock solve
	// latencies in nanoseconds (one sample per instance, recorded only when
	// latency metering is on — see core.Instance.Latency). Unlike every other
	// histogram it measures real time, so its contents are NOT deterministic
	// per seed; determinism suites must compare snapshots modulo this key.
	HistLatSolve
	numHists
)

// PhaseStepsPrefix is the snapshot-key prefix of the phase.steps histogram
// family; the suffix is the PhaseID label ("phase.steps.prefer", ...).
const PhaseStepsPrefix = "phase.steps."

// String implements fmt.Stringer (the stable metrics-snapshot key).
func (h HistID) String() string {
	switch h {
	case HistScanRetries:
		return "scan.retries_per_scan"
	case HistStepsToDecide:
		return "core.steps_to_decide"
	case HistPhasePrefer:
		return PhaseStepsPrefix + "prefer"
	case HistPhaseCoin:
		return PhaseStepsPrefix + "coin"
	case HistPhaseStrip:
		return PhaseStepsPrefix + "strip"
	case HistPhaseDecide:
		return PhaseStepsPrefix + "decide"
	case HistLatSolve:
		return "lat.solve"
	default:
		return "hist.unknown"
	}
}

// LatSolveKey is the snapshot key of the per-instance wall-clock latency
// histogram (nanoseconds). Exported so determinism suites and report tooling
// can filter the one non-deterministic histogram by name.
const LatSolveKey = "lat.solve"

// Registry is the unified metrics registry: one counter per event kind, a
// small set of max-gauges, and fixed-bucket histograms. All mutation paths
// are atomic, fixed-index array accesses — no locks, no maps, no allocation.
// It replaces and extends core.Metrics, which remains as a per-protocol
// compatibility view.
type Registry struct {
	kinds  [numKinds]atomic.Int64
	gauges [numGauges]atomic.Int64
	hists  [numHists]*Histogram
}

// phaseStepsBounds are the shared buckets of the phase.steps family: phase
// totals range from zero (a phase the protocol never entered) to the full
// steps-to-decision count, so the ladder starts below the steps one.
var phaseStepsBounds = []int64{
	0, 10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 10_000_000}

// NewRegistry returns a registry with the standard histograms installed.
func NewRegistry() *Registry {
	r := &Registry{}
	r.hists[HistScanRetries] = NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128)
	r.hists[HistStepsToDecide] = NewHistogram(
		100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 10_000_000)
	for ph := PhaseID(0); ph < NumPhases; ph++ {
		r.hists[ph.HistID()] = NewHistogram(phaseStepsBounds...)
	}
	r.hists[HistLatSolve] = NewHistogram(latSolveBounds...)
	return r
}

// latSolveBounds are the lat.solve buckets in nanoseconds: a coarse
// exponential ladder from 10µs (a trivial n=4 instance on the native
// substrate) to 100s (an n=32 simulated straggler), ~3 buckets per decade so
// tail quantiles resolve without bloating every snapshot.
var latSolveBounds = []int64{
	10_000, 30_000, 100_000, 300_000, // 10µs .. 300µs
	1_000_000, 3_000_000, 10_000_000, 30_000_000, // 1ms .. 30ms
	100_000_000, 300_000_000, 1_000_000_000, 3_000_000_000, // 100ms .. 3s
	10_000_000_000, 30_000_000_000, 100_000_000_000, // 10s .. 100s
}

// countKind increments the counter of kind k.
func (r *Registry) countKind(k Kind) {
	if k < numKinds {
		r.kinds[k].Add(1)
	}
}

// countKindN adds n to the counter of kind k (batched counting).
func (r *Registry) countKindN(k Kind, n int64) {
	if k < numKinds {
		r.kinds[k].Add(n)
	}
}

// KindCount returns the event count of kind k.
func (r *Registry) KindCount(k Kind) int64 {
	if k >= numKinds {
		return 0
	}
	return r.kinds[k].Load()
}

// LayerCount returns the event count summed over every kind of the layer.
func (r *Registry) LayerCount(l Layer) int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		if k.Layer() == l {
			t += r.kinds[k].Load()
		}
	}
	return t
}

// GaugeMax raises gauge id to v if v is larger.
func (r *Registry) GaugeMax(id GaugeID, v int64) {
	if id >= numGauges {
		return
	}
	g := &r.gauges[id]
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Gauge returns the current value of gauge id.
func (r *Registry) Gauge(id GaugeID) int64 {
	if id >= numGauges {
		return 0
	}
	return r.gauges[id].Load()
}

// Hist returns the histogram with the given id (nil for unknown ids).
func (r *Registry) Hist(id HistID) *Histogram {
	if id >= numHists {
		return nil
	}
	return r.hists[id]
}

// Snapshot is an immutable point-in-time copy of a registry, keyed by the
// stable wire identifiers. Zero-count entries are omitted.
//
// Matrices carries matrix-valued metrics ("prof.blame", "prof.contention").
// The registry itself holds no matrices — they come from sources with
// dynamic shapes, such as the step profiler (internal/obs/prof), and enter
// merged snapshots through MergeSnapshots. The field is nil on registry
// snapshots.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
	Matrices map[string]MatrixSnapshot
}

// Snapshot summarizes the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	for k := Kind(0); k < numKinds; k++ {
		if c := r.kinds[k].Load(); c != 0 {
			s.Counters[k.ID()] = c
		}
	}
	for g := GaugeID(0); g < numGauges; g++ {
		if v := r.gauges[g].Load(); v != 0 {
			s.Gauges[g.String()] = v
		}
	}
	for h := HistID(0); h < numHists; h++ {
		if hist := r.hists[h]; hist != nil && hist.Count() > 0 {
			s.Hists[h.String()] = hist.Snapshot()
		}
	}
	return s
}

// LayerCounts aggregates the snapshot's counters by layer prefix
// ("scan.retry" counts toward "scan").
func (s Snapshot) LayerCounts() map[string]int64 {
	out := make(map[string]int64)
	for id, c := range s.Counters {
		if k, ok := KindForID(id); ok {
			out[k.Layer().String()] += c
		}
	}
	return out
}
