package obs

import (
	"strings"
	"testing"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.countKind(ScanRetry)
	r.countKind(ScanRetry)
	r.countKind(ScanClean)
	r.countKind(CoreDecide)
	if c := r.KindCount(ScanRetry); c != 2 {
		t.Fatalf("ScanRetry = %d, want 2", c)
	}
	if c := r.LayerCount(LayerScan); c != 3 {
		t.Fatalf("scan layer = %d, want 3", c)
	}
	if c := r.LayerCount(LayerWalk); c != 0 {
		t.Fatalf("walk layer = %d, want 0", c)
	}
}

func TestRegistryGaugeMax(t *testing.T) {
	r := NewRegistry()
	r.GaugeMax(GaugeMaxAbsCoin, 5)
	r.GaugeMax(GaugeMaxAbsCoin, 3) // smaller: ignored
	r.GaugeMax(GaugeMaxAbsCoin, 9)
	if g := r.Gauge(GaugeMaxAbsCoin); g != 9 {
		t.Fatalf("gauge = %d, want 9", g)
	}
}

func TestSnapshotOmitsZeros(t *testing.T) {
	r := NewRegistry()
	r.countKind(WalkStep)
	r.GaugeMax(GaugeMaxRound, 4)
	r.Hist(HistScanRetries).Observe(1)
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters["walk.step"] != 1 {
		t.Fatalf("Counters = %v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges["core.max_round"] != 4 {
		t.Fatalf("Gauges = %v", s.Gauges)
	}
	if len(s.Hists) != 1 {
		t.Fatalf("Hists = %v", s.Hists)
	}
	if _, ok := s.Hists["scan.retries_per_scan"]; !ok {
		t.Fatalf("histogram key missing: %v", s.Hists)
	}
}

func TestSnapshotLayerCounts(t *testing.T) {
	r := NewRegistry()
	r.countKind(RegSWMRRead)
	r.countKind(RegSWMRWrite)
	r.countKind(Reg2WRead)
	r.countKind(CoreDecide)
	lc := r.Snapshot().LayerCounts()
	if lc["register"] != 3 || lc["core"] != 1 {
		t.Fatalf("LayerCounts = %v", lc)
	}
}

func TestKindWireIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		id := k.ID()
		if seen[id] {
			t.Errorf("duplicate wire id %q", id)
		}
		seen[id] = true
		// Every wire id is "<layer>.<rest>" so LayerCounts can aggregate by
		// prefix and traces group naturally.
		if prefix := k.Layer().String() + "."; !strings.HasPrefix(id, prefix) {
			t.Errorf("kind %v id %q does not start with its layer prefix %q", k, id, prefix)
		}
		got, ok := KindForID(id)
		if !ok || got != k {
			t.Errorf("KindForID(%q) = %v,%v want %v", id, got, ok, k)
		}
	}
}

func TestHistIDs(t *testing.T) {
	r := NewRegistry()
	if r.Hist(HistScanRetries) == nil || r.Hist(HistStepsToDecide) == nil {
		t.Fatal("standard histograms not installed")
	}
	if r.Hist(numHists) != nil {
		t.Fatal("out-of-range hist id returned a histogram")
	}
}
