package obs

// Sink is the per-run observability hub handed to every instrumented layer:
// an optional event recorder plus an always-on metrics registry.
//
// A nil *Sink is a valid, fully disabled sink: every method nil-checks the
// receiver and returns immediately, so instrumented hot paths cost one branch
// and zero allocations when observability is off. A non-nil Sink with a nil
// Recorder is metrics-only: events are counted into the registry but not
// recorded. Emitters building Detail strings (the only allocating part of an
// event) must guard them behind Tracing.
type Sink struct {
	rec Recorder
	reg *Registry
}

// NewSink returns a sink recording to rec (nil rec = metrics-only) with a
// fresh registry.
func NewSink(rec Recorder) *Sink {
	return &Sink{rec: rec, reg: NewRegistry()}
}

// WithRecorder returns a sink sharing this sink's registry but recording to
// rec (used to stack an extra trace consumer onto an existing sink).
func (s *Sink) WithRecorder(rec Recorder) *Sink {
	if s == nil {
		return NewSink(rec)
	}
	return &Sink{rec: rec, reg: s.reg}
}

// Recorder returns the installed recorder (nil when metrics-only or s is
// nil).
func (s *Sink) Recorder() Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Registry returns the metrics registry (nil when s is nil).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Enabled reports whether any observability (metrics or tracing) is on.
func (s *Sink) Enabled() bool { return s != nil }

// Tracing reports whether a recorder is installed — emitters must only build
// Detail strings when it returns true.
func (s *Sink) Tracing() bool { return s != nil && s.rec != nil }

// Emit counts the event's kind in the registry and, if a recorder is
// installed, records the full event. No-op on a nil sink.
func (s *Sink) Emit(e Event) {
	if s == nil {
		return
	}
	s.reg.countKind(e.Kind)
	if s.rec != nil {
		s.rec.Record(e)
	}
}

// Count increments kind k's counter without recording an event — for
// high-frequency observations (handshake bits, scheduler grants) that would
// drown a trace.
func (s *Sink) Count(k Kind) {
	if s == nil {
		return
	}
	s.reg.countKind(k)
}

// CountN adds n to kind k's counter in one atomic update — the batched form
// of Count for producers (the step engine) that accumulate counts locally and
// flush periodically. Counter sums commute, so final totals are identical to
// n individual Counts.
func (s *Sink) CountN(k Kind, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.reg.countKindN(k, n)
}

// Observe records v into histogram id. No-op on a nil sink.
func (s *Sink) Observe(id HistID, v int64) {
	if s == nil {
		return
	}
	if h := s.reg.Hist(id); h != nil {
		h.Observe(v)
	}
}

// GaugeMax raises gauge id to v if larger. No-op on a nil sink.
func (s *Sink) GaugeMax(id GaugeID, v int64) {
	if s == nil {
		return
	}
	s.reg.GaugeMax(id, v)
}
