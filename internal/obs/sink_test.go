package obs

import "testing"

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	// Every method must be a no-op on a nil receiver.
	s.Emit(Event{Kind: CoreDecide})
	s.Count(SchedGrant)
	s.Observe(HistScanRetries, 3)
	s.GaugeMax(GaugeMaxAbsCoin, 9)
	if s.Enabled() || s.Tracing() {
		t.Fatal("nil sink reports enabled/tracing")
	}
	if s.Registry() != nil || s.Recorder() != nil {
		t.Fatal("nil sink returned a registry or recorder")
	}
}

func TestMetricsOnlySink(t *testing.T) {
	s := NewSink(nil)
	if !s.Enabled() || s.Tracing() {
		t.Fatal("metrics-only sink should be enabled but not tracing")
	}
	s.Emit(Event{Kind: ScanRetry})
	s.Emit(Event{Kind: ScanRetry})
	s.Count(SchedGrant)
	if c := s.Registry().KindCount(ScanRetry); c != 2 {
		t.Fatalf("ScanRetry count = %d, want 2", c)
	}
	if c := s.Registry().KindCount(SchedGrant); c != 1 {
		t.Fatalf("SchedGrant count = %d, want 1", c)
	}
}

func TestSinkRecords(t *testing.T) {
	r := NewRing(8)
	s := NewSink(r)
	if !s.Tracing() {
		t.Fatal("recording sink not tracing")
	}
	s.Emit(Event{Step: 5, Kind: CoreFlip})
	s.Count(SchedGrant) // counted, never recorded
	if r.Len() != 1 {
		t.Fatalf("recorded %d events, want 1 (Count must not record)", r.Len())
	}
	if s.Registry().KindCount(CoreFlip) != 1 || s.Registry().KindCount(SchedGrant) != 1 {
		t.Fatal("Emit and Count must both feed the registry")
	}
}

func TestWithRecorderSharesRegistry(t *testing.T) {
	base := NewSink(nil)
	base.Emit(Event{Kind: CoreStart})
	r := NewRing(8)
	s2 := base.WithRecorder(r)
	s2.Emit(Event{Kind: CoreDecide})
	if base.Registry() != s2.Registry() {
		t.Fatal("WithRecorder must share the registry")
	}
	if base.Registry().KindCount(CoreDecide) != 1 {
		t.Fatal("event emitted on derived sink missing from shared registry")
	}
	if r.Len() != 1 {
		t.Fatal("derived sink did not record")
	}
	var nilSink *Sink
	if got := nilSink.WithRecorder(r); got == nil || got.Registry() == nil {
		t.Fatal("WithRecorder on nil sink must build a fresh sink")
	}
}

// TestEmitZeroAlloc is the tentpole's zero-cost guarantee: emitting with
// observability disabled (nil sink) or in metrics-only mode must not allocate.
func TestEmitZeroAlloc(t *testing.T) {
	var disabled *Sink
	if n := testing.AllocsPerRun(1000, func() {
		disabled.Emit(Event{Step: 1, Pid: 0, Kind: RegSWMRRead, Value: 3})
		disabled.Count(SchedGrant)
		disabled.Observe(HistScanRetries, 2)
		disabled.GaugeMax(GaugeMaxAbsCoin, 5)
	}); n != 0 {
		t.Errorf("nil sink: %v allocs per emit, want 0", n)
	}

	metricsOnly := NewSink(nil)
	if n := testing.AllocsPerRun(1000, func() {
		metricsOnly.Emit(Event{Step: 1, Pid: 0, Kind: RegSWMRRead, Value: 3})
		metricsOnly.Count(SchedGrant)
		metricsOnly.Observe(HistScanRetries, 2)
		metricsOnly.GaugeMax(GaugeMaxAbsCoin, 5)
	}); n != 0 {
		t.Errorf("metrics-only sink: %v allocs per emit, want 0", n)
	}
}

// TestPhaseSpanZeroAlloc extends the zero-cost guarantee to the phase-span
// tracker: a full start/cut/finish cycle must not allocate, with the sink
// disabled or metrics-only.
func TestPhaseSpanZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		sink *Sink
	}{
		{"nil sink", nil},
		{"metrics-only", NewSink(nil)},
	} {
		steps := int64(0)
		if n := testing.AllocsPerRun(1000, func() {
			span := StartPhaseSpan(steps)
			steps += 7
			span.To(tc.sink, PhaseStrip, 0, steps, steps)
			steps += 3
			span.To(tc.sink, PhaseCoin, 0, steps, steps)
			steps += 5
			span.To(tc.sink, PhaseDecide, 0, steps, steps)
			span.Finish(tc.sink, 0, steps, steps)
		}); n != 0 {
			t.Errorf("%s: %v allocs per span cycle, want 0", tc.name, n)
		}
	}
}
