package space

import (
	"encoding/json"
	"testing"
)

// FuzzParseUsage drives arbitrary bytes through the -space input path:
// malformed input must come back as an error — never a panic — and any
// snapshot the parser accepts must survive a marshal/parse round trip and
// merge cleanly with itself (Merge must be idempotent on a single snapshot).
func FuzzParseUsage(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"regs": 16, "live_regs": 16, "peak_words": 56, "max_bits": 12}`))
	f.Add([]byte(`{"layers": {"walk": {"words": 12, "declared_bits": 12, "measured_bits": 5, "max_abs": 9}}}`))
	f.Add([]byte(`{"layers": {"core": {"declared_bits": -1, "measured_bits": 3}}}`))
	f.Add([]byte(`{"layers": {"turbo": {}}}`))
	f.Add([]byte(`{"regs": -5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := ParseUsage(data)
		if err != nil {
			return
		}
		out, merr := json.Marshal(u)
		if merr != nil {
			t.Fatalf("accepted snapshot does not marshal: %v", merr)
		}
		back, perr := ParseUsage(out)
		if perr != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\nre-encoded: %q", perr, data, out)
		}
		if back.Regs != u.Regs || back.LiveRegs != u.LiveRegs ||
			back.PeakWords != u.PeakWords || back.MaxBits != u.MaxBits {
			t.Fatalf("round trip changed totals: %+v vs %+v", back, u)
		}
		self := Merge(u, u)
		if self.Regs != u.Regs || self.PeakWords != u.PeakWords || self.MaxBits != u.MaxBits {
			t.Fatalf("Merge(u, u) changed totals: %+v vs %+v", self, u)
		}
		if err := self.Validate(); err != nil {
			t.Fatalf("self-merge of a valid snapshot does not validate: %v", err)
		}
	})
}
