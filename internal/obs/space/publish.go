package space

import "github.com/dsrepro/consensus/internal/obs"

// Publish pushes the meter's final readings into the sink's registry as the
// space gauge family: the four totals plus one effective-width gauge per
// layer. GaugeMax semantics make publication idempotent and batch merging
// (MergeSnapshots takes gauge maxima) agree with space.Merge. Publishing
// emits no events, so metered traces stay byte-identical to unmetered ones;
// from the registry the family flows into Result.Gauges, harness tables and
// the Prometheus exporter without further wiring.
func (m *Meter) Publish(s *obs.Sink) {
	if m == nil {
		return
	}
	u := m.Usage()
	s.GaugeMax(obs.GaugeSpacePeakRegs, u.Regs)
	s.GaugeMax(obs.GaugeSpaceLiveRegs, u.LiveRegs)
	s.GaugeMax(obs.GaugeSpacePeakWords, u.PeakWords)
	s.GaugeMax(obs.GaugeSpaceMaxBits, int64(u.MaxBits))
	for l := Layer(0); l < NumLayers; l++ {
		if lu, ok := u.Layers[l.String()]; ok {
			s.GaugeMax(obs.GaugeSpaceBitsRegister+obs.GaugeID(l), int64(lu.Bits()))
		}
	}
}
