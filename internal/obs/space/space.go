// Package space implements the space-accounting layer: per-instance online
// meters for register count, state words and bits-per-register, attributed to
// the layer of the memory hierarchy that owns each quantity.
//
// The paper's headline claim is *bounded* space with polynomial time; this
// package turns that claim into a continuously measured quantity. A Meter
// tracks, per layer (register / scan / strip / walk / core):
//
//   - Regs: physical registers attached to the instance (atomic cells — a
//     Bloom 2W2R arrow counts as its two single-writer halves).
//   - LiveRegs: registers actually written at least once during the run.
//   - Words: bounded-domain state words held in register payloads (slice
//     elements count individually; an unbounded strip adds words online as
//     it grows, so peak == final and merging is order-independent).
//   - Declared domain: the information-theoretic value domain of the layer's
//     words, from static protocol parameters (coin counters clamp to
//     ±(M+1) → 2M+3 values; strip counters live mod 3K; preferences are
//     {⊥,0,1}). Declaring an unbounded domain (round numbers) records that
//     no static width exists.
//   - Measured payload: the max |value| actually stored, noted at the typed
//     mutation sites (walk clamps, strip row publications, core round/pref
//     writes) — never at the generic register layer, which would need
//     boxing and therefore allocation.
//
// Every meter method is nil-safe and allocation-free: a disabled (nil) meter
// costs one branch per hook site, and an enabled one only atomic ops, so
// metered runs are byte-identical to unmetered ones (observation does not
// perturb).
package space

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Layer attributes a metered quantity to the level of the memory hierarchy
// that owns it.
type Layer int

// Layers, ordered from physical to semantic.
const (
	// LayerRegister is the physical register file: the scannable-memory value
	// cells themselves.
	LayerRegister Layer = iota
	// LayerScan is the snapshot machinery: handshake arrows, toggle bits,
	// sequence numbers — overhead the double-collect protocol adds on top of
	// the value cells.
	LayerScan
	// LayerStrip is the bounded-rounds strip: the mod-3K edge counters (or
	// the unbounded coin strip of the AH baseline).
	LayerStrip
	// LayerWalk is the shared-coin random walk: the clamped ±(M+1) counters.
	LayerWalk
	// LayerCore is protocol core state: preferences, round numbers, cyclic
	// coin pointers, decided flags.
	LayerCore
	// NumLayers bounds the enum.
	NumLayers
)

// String implements fmt.Stringer (the stable wire identifier).
func (l Layer) String() string {
	switch l {
	case LayerRegister:
		return "register"
	case LayerScan:
		return "scan"
	case LayerStrip:
		return "strip"
	case LayerWalk:
		return "walk"
	case LayerCore:
		return "core"
	default:
		return fmt.Sprintf("layer(%d)", int(l))
	}
}

// LayerNames lists the stable layer identifiers in enum order.
func LayerNames() []string {
	out := make([]string, NumLayers)
	for l := Layer(0); l < NumLayers; l++ {
		out[l] = l.String()
	}
	return out
}

// layerMeter is one layer's accounting: all fields atomic so native
// (free-running) substrates meter safely.
type layerMeter struct {
	regs     atomic.Int64
	liveRegs atomic.Int64
	words    atomic.Int64
	domain   atomic.Int64 // declared domain size (max over declarations)
	unbound  atomic.Bool  // an unbounded domain was declared
	maxAbs   atomic.Int64 // measured max |payload value|
	negSeen  atomic.Bool  // a negative payload value was stored
}

// Meter is a per-instance space meter. The zero value is ready to use; a nil
// *Meter is the disabled meter — every method nil-checks and returns, so
// hook sites need no guards of their own.
type Meter struct {
	layers [NumLayers]layerMeter
}

// NewMeter returns an enabled meter.
func NewMeter() *Meter { return &Meter{} }

// Enabled reports whether the meter is collecting. Hook sites with per-item
// loops should guard on it so a disabled meter costs one branch, not a loop.
func (m *Meter) Enabled() bool { return m != nil }

// AddRegs attributes n physical registers to the layer (attach-time for
// static layouts, online for lazily grown ones).
func (m *Meter) AddRegs(l Layer, n int64) {
	if m == nil || l < 0 || l >= NumLayers {
		return
	}
	m.layers[l].regs.Add(n)
}

// RegTouched records one register's first write (register liveness). The
// register layer is responsible for calling it at most once per register per
// run (a CAS-guarded first-write mark).
func (m *Meter) RegTouched(l Layer) {
	if m == nil || l < 0 || l >= NumLayers {
		return
	}
	m.layers[l].liveRegs.Add(1)
}

// AddWords attributes n state words to the layer. Words only ever grow
// (bounded layouts declare them once at attach; unbounded strips add as they
// extend), so the running total is also the peak and merging by max is
// order-independent.
func (m *Meter) AddWords(l Layer, n int64) {
	if m == nil || l < 0 || l >= NumLayers {
		return
	}
	m.layers[l].words.Add(n)
}

// DeclareDomain records the information-theoretic value domain of the
// layer's words: size is the number of distinct representable values (the
// max over all declarations is kept). size <= 0 declares the domain
// unbounded (equivalent to DeclareUnbounded).
func (m *Meter) DeclareDomain(l Layer, size int64) {
	if m == nil || l < 0 || l >= NumLayers {
		return
	}
	if size <= 0 {
		m.layers[l].unbound.Store(true)
		return
	}
	atomicMax(&m.layers[l].domain, size)
}

// DeclareUnbounded records that the layer holds words with no static bound
// (explicit round numbers, growing strips).
func (m *Meter) DeclareUnbounded(l Layer) { m.DeclareDomain(l, 0) }

// NoteValue records a payload value actually stored by the layer: the max
// |v| and a negative-seen flag drive the measured width.
func (m *Meter) NoteValue(l Layer, v int64) {
	if m == nil || l < 0 || l >= NumLayers {
		return
	}
	lm := &m.layers[l]
	if v < 0 {
		if !lm.negSeen.Load() {
			lm.negSeen.Store(true)
		}
		v = -v
	}
	atomicMax(&lm.maxAbs, v)
}

// MaxAbs returns the measured max |payload| of the layer (the E6 hook: the
// bounded protocol's walk layer must never exceed M+1).
func (m *Meter) MaxAbs(l Layer) int64 {
	if m == nil || l < 0 || l >= NumLayers {
		return 0
	}
	return m.layers[l].maxAbs.Load()
}

// atomicMax raises *g to v if v is larger.
func atomicMax(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// UnboundedBits is the DeclaredBits sentinel for layers whose declared
// domain has no static bound.
const UnboundedBits = -1

// DomainBits returns the information-theoretic width of a domain with the
// given number of distinct values: ceil(log2(size)) bits (0 for size <= 1).
func DomainBits(size int64) int {
	if size <= 1 {
		return 0
	}
	return bits.Len64(uint64(size - 1))
}

// MeasuredBits returns the width needed for the measured payload range: the
// magnitude bits of the max |value| plus a sign bit if a negative value was
// stored.
func MeasuredBits(maxAbs int64, negSeen bool) int {
	if maxAbs < 0 {
		maxAbs = -maxAbs
	}
	b := bits.Len64(uint64(maxAbs))
	if negSeen {
		b++
	}
	return b
}

// LayerUsage is one layer's slice of a Usage snapshot.
type LayerUsage struct {
	// Regs / LiveRegs: physical registers attached / actually written.
	Regs     int64 `json:"regs,omitempty"`
	LiveRegs int64 `json:"live_regs,omitempty"`
	// Words is the peak bounded-domain state words (see Meter.AddWords).
	Words int64 `json:"words,omitempty"`
	// DeclaredBits is the information-theoretic width from the declared
	// domain: 0 if no domain was declared, UnboundedBits (-1) if an
	// unbounded domain was declared.
	DeclaredBits int `json:"declared_bits,omitempty"`
	// MeasuredBits is the width of the widest payload actually stored;
	// MaxAbs is its magnitude.
	MeasuredBits int   `json:"measured_bits,omitempty"`
	MaxAbs       int64 `json:"max_abs,omitempty"`
}

// zero reports whether the layer recorded nothing (omitted from snapshots).
func (u LayerUsage) zero() bool {
	return u.Regs == 0 && u.LiveRegs == 0 && u.Words == 0 &&
		u.DeclaredBits == 0 && u.MeasuredBits == 0 && u.MaxAbs == 0
}

// Bits returns the layer's effective width: the larger of declared and
// measured (measured alone when the declared domain is unbounded).
func (u LayerUsage) Bits() int {
	b := u.MeasuredBits
	if u.DeclaredBits > b {
		b = u.DeclaredBits
	}
	return b
}

// Usage is an immutable point-in-time snapshot of a meter, the unit that
// flows through Result.Space, batch aggregation, benchfmt reports and
// traceview. Layers with nothing recorded are omitted; map keys are the
// stable layer names, so encoded JSON is deterministic (encoding/json sorts
// map keys).
type Usage struct {
	// Layers holds the per-layer attribution, keyed by Layer.String().
	Layers map[string]LayerUsage `json:"layers,omitempty"`
	// Regs / LiveRegs: total physical registers attached / written.
	Regs     int64 `json:"regs"`
	LiveRegs int64 `json:"live_regs"`
	// PeakWords is the peak total state words over all layers.
	PeakWords int64 `json:"peak_words"`
	// MaxBits is the widest effective per-word width over all layers.
	MaxBits int `json:"max_bits"`
}

// Usage snapshots the meter. A nil meter yields the zero Usage.
func (m *Meter) Usage() Usage {
	var u Usage
	if m == nil {
		return u
	}
	for l := Layer(0); l < NumLayers; l++ {
		lm := &m.layers[l]
		lu := LayerUsage{
			Regs:         lm.regs.Load(),
			LiveRegs:     lm.liveRegs.Load(),
			Words:        lm.words.Load(),
			MaxAbs:       lm.maxAbs.Load(),
			MeasuredBits: MeasuredBits(lm.maxAbs.Load(), lm.negSeen.Load()),
		}
		if lm.unbound.Load() {
			lu.DeclaredBits = UnboundedBits
		} else {
			lu.DeclaredBits = DomainBits(lm.domain.Load())
		}
		if lu.zero() {
			continue
		}
		if u.Layers == nil {
			u.Layers = make(map[string]LayerUsage, NumLayers)
		}
		u.Layers[l.String()] = lu
		u.Regs += lu.Regs
		u.LiveRegs += lu.LiveRegs
		u.PeakWords += lu.Words
		if b := lu.Bits(); b > u.MaxBits {
			u.MaxBits = b
		}
	}
	return u
}

// Empty reports whether the snapshot recorded nothing (the disabled-meter
// snapshot).
func (u Usage) Empty() bool {
	return len(u.Layers) == 0 && u.Regs == 0 && u.LiveRegs == 0 &&
		u.PeakWords == 0 && u.MaxBits == 0
}

// Merge combines two usage snapshots element-wise: counts and widths take
// the max (an instance's usage is itself a max over its run, so batch
// aggregation is "the biggest any instance got"), and an unbounded declared
// width absorbs any bounded one. Merge is commutative and associative, so
// batch results are deterministic at any worker count.
func Merge(a, b Usage) Usage {
	out := Usage{
		Regs:      maxI64(a.Regs, b.Regs),
		LiveRegs:  maxI64(a.LiveRegs, b.LiveRegs),
		PeakWords: maxI64(a.PeakWords, b.PeakWords),
		MaxBits:   maxInt(a.MaxBits, b.MaxBits),
	}
	if len(a.Layers) == 0 && len(b.Layers) == 0 {
		return out
	}
	out.Layers = make(map[string]LayerUsage, maxInt(len(a.Layers), len(b.Layers)))
	for k, v := range a.Layers {
		out.Layers[k] = v
	}
	for k, v := range b.Layers {
		out.Layers[k] = mergeLayer(out.Layers[k], v)
	}
	return out
}

func mergeLayer(a, b LayerUsage) LayerUsage {
	return LayerUsage{
		Regs:         maxI64(a.Regs, b.Regs),
		LiveRegs:     maxI64(a.LiveRegs, b.LiveRegs),
		Words:        maxI64(a.Words, b.Words),
		DeclaredBits: mergeBits(a.DeclaredBits, b.DeclaredBits),
		MeasuredBits: maxInt(a.MeasuredBits, b.MeasuredBits),
		MaxAbs:       maxI64(a.MaxAbs, b.MaxAbs),
	}
}

// mergeBits merges declared widths: the unbounded sentinel absorbs bounded
// widths.
func mergeBits(a, b int) int {
	if a == UnboundedBits || b == UnboundedBits {
		return UnboundedBits
	}
	return maxInt(a, b)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ParseUsage decodes and validates a Usage snapshot from JSON (the traceview
// -space input path). It rejects negative counts, widths below the
// unbounded sentinel and unknown layer names.
func ParseUsage(data []byte) (Usage, error) {
	var u Usage
	if err := json.Unmarshal(data, &u); err != nil {
		return Usage{}, fmt.Errorf("space: parse usage: %w", err)
	}
	if err := u.Validate(); err != nil {
		return Usage{}, err
	}
	return u, nil
}

// Validate checks a snapshot's internal consistency (see ParseUsage).
func (u Usage) Validate() error {
	if u.Regs < 0 || u.LiveRegs < 0 || u.PeakWords < 0 || u.MaxBits < 0 {
		return fmt.Errorf("space: negative total in usage")
	}
	known := make(map[string]bool, NumLayers)
	for l := Layer(0); l < NumLayers; l++ {
		known[l.String()] = true
	}
	for name, lu := range u.Layers {
		if !known[name] {
			return fmt.Errorf("space: unknown layer %q", name)
		}
		if lu.Regs < 0 || lu.LiveRegs < 0 || lu.Words < 0 || lu.MaxAbs < 0 {
			return fmt.Errorf("space: negative count in layer %q", name)
		}
		if lu.DeclaredBits < UnboundedBits || lu.MeasuredBits < 0 {
			return fmt.Errorf("space: invalid width in layer %q", name)
		}
	}
	return nil
}
