package space

import (
	"encoding/json"
	"testing"
)

func TestDomainBits(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{2051, 12}, // the bounded walk at default M=1024: 2M+3 values
	}
	for _, c := range cases {
		if got := DomainBits(c.size); got != c.want {
			t.Errorf("DomainBits(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestMeasuredBits(t *testing.T) {
	cases := []struct {
		maxAbs  int64
		negSeen bool
		want    int
	}{
		{0, false, 0}, {1, false, 1}, {1, true, 2}, {2, false, 2},
		{3, false, 2}, {4, false, 3}, {7, true, 4}, {1024, false, 11},
	}
	for _, c := range cases {
		if got := MeasuredBits(c.maxAbs, c.negSeen); got != c.want {
			t.Errorf("MeasuredBits(%d, %v) = %d, want %d", c.maxAbs, c.negSeen, got, c.want)
		}
	}
}

func TestMeterUsage(t *testing.T) {
	m := NewMeter()
	m.AddRegs(LayerRegister, 4)
	m.RegTouched(LayerRegister)
	m.RegTouched(LayerRegister)
	m.AddWords(LayerWalk, 12)
	m.DeclareDomain(LayerWalk, 2051)
	m.NoteValue(LayerWalk, -9)
	m.NoteValue(LayerWalk, 5)
	m.DeclareUnbounded(LayerCore)
	m.NoteValue(LayerCore, 3)

	u := m.Usage()
	if u.Regs != 4 || u.LiveRegs != 2 || u.PeakWords != 12 {
		t.Errorf("totals = regs %d live %d words %d, want 4/2/12", u.Regs, u.LiveRegs, u.PeakWords)
	}
	walk := u.Layers["walk"]
	if walk.DeclaredBits != 12 {
		t.Errorf("walk declared bits = %d, want 12", walk.DeclaredBits)
	}
	if walk.MeasuredBits != 5 { // |−9| needs 4 magnitude bits + sign
		t.Errorf("walk measured bits = %d, want 5", walk.MeasuredBits)
	}
	if walk.MaxAbs != 9 {
		t.Errorf("walk max|v| = %d, want 9", walk.MaxAbs)
	}
	core := u.Layers["core"]
	if core.DeclaredBits != UnboundedBits {
		t.Errorf("core declared bits = %d, want unbounded sentinel", core.DeclaredBits)
	}
	if core.Bits() != 2 { // unbounded declaration: measured width wins
		t.Errorf("core effective bits = %d, want 2", core.Bits())
	}
	if u.MaxBits != 12 {
		t.Errorf("MaxBits = %d, want 12", u.MaxBits)
	}
	if _, ok := u.Layers["strip"]; ok {
		t.Error("untouched layer must be omitted from the snapshot")
	}
}

// TestNilMeterSafe locks the disabled-meter contract: every method on a nil
// *Meter is a no-op, and its Usage is the zero value.
func TestNilMeterSafe(t *testing.T) {
	var m *Meter
	if m.Enabled() {
		t.Fatal("nil meter reports enabled")
	}
	m.AddRegs(LayerRegister, 1)
	m.RegTouched(LayerScan)
	m.AddWords(LayerWalk, 1)
	m.DeclareDomain(LayerStrip, 6)
	m.DeclareUnbounded(LayerCore)
	m.NoteValue(LayerWalk, 99)
	if got := m.MaxAbs(LayerWalk); got != 0 {
		t.Errorf("nil meter MaxAbs = %d, want 0", got)
	}
	if u := m.Usage(); !u.Empty() {
		t.Errorf("nil meter usage = %+v, want empty", u)
	}
}

// TestMeterBoundsChecked locks that out-of-range layers are ignored, not a
// panic (hook sites pass compile-time constants, but the meter is also fed
// from parsed artifacts).
func TestMeterBoundsChecked(t *testing.T) {
	m := NewMeter()
	m.AddRegs(Layer(-1), 5)
	m.NoteValue(NumLayers, 5)
	if u := m.Usage(); !u.Empty() {
		t.Errorf("out-of-range layer recorded: %+v", u)
	}
}

// TestMeterAllocFree locks the hot-path contract behind observation-does-not-
// perturb: metering, enabled or disabled, never allocates.
func TestMeterAllocFree(t *testing.T) {
	var nilMeter *Meter
	if avg := testing.AllocsPerRun(200, func() {
		nilMeter.AddWords(LayerWalk, 1)
		nilMeter.NoteValue(LayerWalk, 7)
		nilMeter.RegTouched(LayerRegister)
	}); avg != 0 {
		t.Errorf("nil meter allocates %.1f/op", avg)
	}
	m := NewMeter()
	if avg := testing.AllocsPerRun(200, func() {
		m.AddWords(LayerWalk, 1)
		m.NoteValue(LayerWalk, -7)
		m.DeclareDomain(LayerStrip, 6)
		m.RegTouched(LayerRegister)
	}); avg != 0 {
		t.Errorf("enabled meter allocates %.1f/op", avg)
	}
}

func TestMergeSemantics(t *testing.T) {
	mk := func(walkBits int, maxAbs int64, regs int64) Usage {
		return Usage{
			Layers: map[string]LayerUsage{
				"walk": {DeclaredBits: walkBits, MeasuredBits: MeasuredBits(maxAbs, false), MaxAbs: maxAbs, Words: regs},
			},
			Regs: regs, LiveRegs: regs, PeakWords: regs, MaxBits: walkBits,
		}
	}
	a := mk(12, 9, 16)
	b := mk(UnboundedBits, 20, 8)

	got := Merge(a, b)
	if got.Regs != 16 || got.PeakWords != 16 {
		t.Errorf("merge totals = %d/%d, want element-wise max 16/16", got.Regs, got.PeakWords)
	}
	if got.Layers["walk"].DeclaredBits != UnboundedBits {
		t.Error("unbounded declared width must absorb the bounded one")
	}
	if got.Layers["walk"].MaxAbs != 20 {
		t.Errorf("merged max|v| = %d, want 20", got.Layers["walk"].MaxAbs)
	}

	// Commutative, and the zero Usage is the identity.
	if ab, ba := Merge(a, b), Merge(b, a); ab.Layers["walk"] != ba.Layers["walk"] || ab.Regs != ba.Regs {
		t.Error("Merge is not commutative")
	}
	if id := Merge(a, Usage{}); id.Layers["walk"] != a.Layers["walk"] || id.Regs != a.Regs {
		t.Error("zero Usage is not the Merge identity")
	}
}

func TestParseUsageRoundTrip(t *testing.T) {
	m := NewMeter()
	m.AddRegs(LayerRegister, 4)
	m.AddWords(LayerWalk, 12)
	m.DeclareDomain(LayerWalk, 2051)
	m.NoteValue(LayerWalk, -9)
	u := m.Usage()

	data, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseUsage(data)
	if err != nil {
		t.Fatalf("ParseUsage: %v", err)
	}
	if back.Regs != u.Regs || back.MaxBits != u.MaxBits || back.Layers["walk"] != u.Layers["walk"] {
		t.Errorf("round trip diverged: %+v vs %+v", back, u)
	}
}

func TestParseUsageRejects(t *testing.T) {
	bad := []string{
		`{"regs": -1}`,
		`{"layers": {"turbo": {}}}`,
		`{"layers": {"walk": {"words": -2}}}`,
		`{"layers": {"walk": {"declared_bits": -2}}}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := ParseUsage([]byte(s)); err == nil {
			t.Errorf("ParseUsage(%q) accepted invalid input", s)
		}
	}
}
