// Package tail is the tail-latency layer of the observability stack:
// per-instance wall-clock latency summaries (exact nearest-rank quantiles up
// to p999), a deterministic top-k straggler digest over a batch, and a
// bounded time-series ring of metric-snapshot deltas behind the live server.
//
// Latency is the one observable the repo cannot make deterministic — wall
// clocks jitter — so the package splits the concern: latency *values* are
// summarized and gated statistically (benchdiff tail thresholds), while
// straggler *identities* carry the seed and step count that make the instance
// byte-reproducible, so forensics replay the deterministic part with full
// instrumentation instead of trusting the noisy part.
package tail

import (
	"container/heap"
	"math"
	"sort"
)

// Straggler identifies one slow batch instance: everything needed to re-run
// it deterministically (the derived seed) plus what the original run measured
// (wall-clock latency, step count, decision). The JSON field names are the
// wire schema of bench artifacts and straggler bundles.
type Straggler struct {
	// Index is the instance's position in the batch; Seed is its derived
	// per-instance seed (consensus.InstanceSeed(batchSeed, Index)).
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// LatencyNS is the measured wall-clock solve latency in nanoseconds. Not
	// deterministic — replays will measure a different value.
	LatencyNS int64 `json:"latency_ns"`
	// Steps and Decision are the deterministic fingerprint a replay must
	// reproduce exactly: total atomic steps and the agreed value (-1 if the
	// instance did not decide).
	Steps    int64 `json:"steps"`
	Decision int   `json:"decision"`
	// Err carries the instance's error text ("step budget exhausted", ...),
	// empty for a clean run.
	Err string `json:"error,omitempty"`
}

// TopK accumulates the k largest-latency stragglers. Selection is
// deterministic given the latency values: ties break toward the lower
// instance index, so equal-latency instances never reorder between runs with
// identical measurements. The zero value with K <= 0 keeps nothing.
type TopK struct {
	K    int
	heap stragglerHeap
}

// Add offers one straggler to the digest.
func (t *TopK) Add(s Straggler) {
	if t.K <= 0 {
		return
	}
	if t.heap.Len() < t.K {
		heap.Push(&t.heap, s)
		return
	}
	if less(t.heap[0], s) {
		t.heap[0] = s
		heap.Fix(&t.heap, 0)
	}
}

// Sorted returns the retained stragglers, slowest first (ties by ascending
// instance index).
func (t *TopK) Sorted() []Straggler {
	out := append([]Straggler(nil), t.heap...)
	sort.Slice(out, func(i, j int) bool { return less(out[j], out[i]) })
	return out
}

// less orders stragglers by "keep b over a": smaller latency first, and at
// equal latency the larger index first (so the heap evicts it before the
// smaller index).
func less(a, b Straggler) bool {
	if a.LatencyNS != b.LatencyNS {
		return a.LatencyNS < b.LatencyNS
	}
	return a.Index > b.Index
}

// stragglerHeap is a min-heap under less: the root is the straggler to evict
// next.
type stragglerHeap []Straggler

func (h stragglerHeap) Len() int            { return len(h) }
func (h stragglerHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h stragglerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stragglerHeap) Push(x interface{}) { *h = append(*h, x.(Straggler)) }
func (h *stragglerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Summary is the exact latency distribution of a batch: nearest-rank
// quantiles over the raw per-instance values (not bucket estimates — the
// batch engine has every sample in hand, so nothing is approximated). The
// JSON field names are the bench-artifact wire schema; units are nanoseconds.
type Summary struct {
	Count  int     `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	MinNS  int64   `json:"min_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Summarize computes the exact latency summary of the given per-instance
// nanosecond values. An empty input returns the zero Summary.
func Summarize(ns []int64) Summary {
	if len(ns) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	rank := func(p float64) int64 {
		r := int(math.Ceil(p/100*float64(len(s)))) - 1
		if r < 0 {
			r = 0
		}
		if r >= len(s) {
			r = len(s) - 1
		}
		return s[r]
	}
	return Summary{
		Count:  len(s),
		MeanNS: sum / float64(len(s)),
		MinNS:  s[0],
		P50NS:  rank(50),
		P90NS:  rank(90),
		P99NS:  rank(99),
		P999NS: rank(99.9),
		MaxNS:  s[len(s)-1],
	}
}
