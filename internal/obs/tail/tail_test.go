package tail

import (
	"reflect"
	"testing"
)

// TestTopKSelectsSlowest pins the digest's contract: the k largest latencies
// survive, ordered slowest first.
func TestTopKSelectsSlowest(t *testing.T) {
	tk := TopK{K: 3}
	lats := []int64{50, 900, 10, 300, 700, 5, 800}
	for i, l := range lats {
		tk.Add(Straggler{Index: i, Seed: int64(100 + i), LatencyNS: l})
	}
	got := tk.Sorted()
	wantLat := []int64{900, 800, 700}
	if len(got) != 3 {
		t.Fatalf("kept %d stragglers, want 3", len(got))
	}
	for i, s := range got {
		if s.LatencyNS != wantLat[i] {
			t.Errorf("rank %d latency = %d, want %d", i, s.LatencyNS, wantLat[i])
		}
	}
	if got[0].Index != 1 || got[0].Seed != 101 {
		t.Errorf("slowest straggler lost its identity: %+v", got[0])
	}
}

// TestTopKTiesBreakByIndex: equal latencies keep the lower instance index, so
// the digest is a pure function of the measured values.
func TestTopKTiesBreakByIndex(t *testing.T) {
	tk := TopK{K: 2}
	for i := 0; i < 5; i++ {
		tk.Add(Straggler{Index: i, LatencyNS: 100})
	}
	got := tk.Sorted()
	if len(got) != 2 || got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("tie-break wrong: %+v (want indices 0, 1)", got)
	}
}

// TestTopKDeterministicAcrossOrder: the digest must not depend on Add order —
// batch workers complete out of order, but the post-run pass feeds instances
// in index order; this locks that even adversarial orders agree.
func TestTopKDeterministicAcrossOrder(t *testing.T) {
	lats := []int64{5, 42, 42, 7, 99, 3, 42, 77}
	forward := TopK{K: 4}
	backward := TopK{K: 4}
	for i, l := range lats {
		forward.Add(Straggler{Index: i, LatencyNS: l})
	}
	for i := len(lats) - 1; i >= 0; i-- {
		backward.Add(Straggler{Index: i, LatencyNS: lats[i]})
	}
	if !reflect.DeepEqual(forward.Sorted(), backward.Sorted()) {
		t.Errorf("order-dependent digest:\nforward  %+v\nbackward %+v", forward.Sorted(), backward.Sorted())
	}
}

// TestTopKDisabled: K <= 0 keeps nothing (the batch default).
func TestTopKDisabled(t *testing.T) {
	var tk TopK
	tk.Add(Straggler{LatencyNS: 1})
	if got := tk.Sorted(); len(got) != 0 {
		t.Errorf("disabled digest kept %d stragglers", len(got))
	}
}

// TestSummarizeExact checks the nearest-rank quantiles on a small exact set.
func TestSummarizeExact(t *testing.T) {
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(i + 1) // 1..100
	}
	s := Summarize(ns)
	if s.Count != 100 || s.MinNS != 1 || s.MaxNS != 100 {
		t.Fatalf("count/min/max wrong: %+v", s)
	}
	if s.P50NS != 50 || s.P90NS != 90 || s.P99NS != 99 || s.P999NS != 100 {
		t.Errorf("quantiles wrong: %+v", s)
	}
	if s.MeanNS != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.MeanNS)
	}
}

// TestSummarizeEdges: empty and single-sample inputs.
func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary not zero: %+v", s)
	}
	s := Summarize([]int64{42})
	if s.Count != 1 || s.P50NS != 42 || s.P999NS != 42 || s.MinNS != 42 || s.MaxNS != 42 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

// TestSummarizeDoesNotMutate: the input slice must stay in caller order
// (BatchResult.Latencies is indexed by instance).
func TestSummarizeDoesNotMutate(t *testing.T) {
	ns := []int64{3, 1, 2}
	Summarize(ns)
	if !reflect.DeepEqual(ns, []int64{3, 1, 2}) {
		t.Errorf("Summarize reordered its input: %v", ns)
	}
}
