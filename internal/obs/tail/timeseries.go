package tail

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/dsrepro/consensus/internal/obs"
)

// Delta is one time-series sample: the windowed rates since the previous
// sample plus the cumulative tail quantiles at sample time. The JSON field
// names are the wire schema of the live server's /timeseries and /stream
// endpoints (DESIGN.md §17); rates are 0 on the first sample of a series
// (there is no previous window to rate against).
type Delta struct {
	// Seq numbers samples monotonically from 1 within one Timeseries; clients
	// resume an SSE stream with Since(Seq).
	Seq int64 `json:"seq"`
	// UnixNano is the sample's wall-clock timestamp; WindowSec the seconds
	// since the previous sample (0 on the first).
	UnixNano  int64   `json:"unix_nano"`
	WindowSec float64 `json:"window_sec"`

	// Decisions is the cumulative core.decide count; DecisionsPerSec its rate
	// over the window.
	Decisions       int64   `json:"decisions"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// ScanRetryRatio is the cumulative scan.retry / scan.clean ratio (0 when
	// no scan completed yet).
	ScanRetryRatio float64 `json:"scan_retry_ratio"`

	// Completed/Total mirror the batch-progress probe; InstancesPerSec is the
	// windowed completion rate and ETASec the probe's remaining-time estimate
	// (0 done, -1 unknown).
	Completed       int64   `json:"completed"`
	Total           int64   `json:"total"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	ETASec          float64 `json:"eta_sec"`

	// LatP50NS..LatMaxNS are the cumulative lat.solve quantiles (bucket
	// resolution, nanoseconds); all zero when latency metering is off.
	LatP50NS  float64 `json:"lat_p50_ns"`
	LatP90NS  float64 `json:"lat_p90_ns"`
	LatP99NS  float64 `json:"lat_p99_ns"`
	LatP999NS float64 `json:"lat_p999_ns"`
	LatMaxNS  int64   `json:"lat_max_ns"`
}

// EncodeDelta renders one sample as its wire JSON.
func EncodeDelta(d Delta) ([]byte, error) {
	return json.Marshal(d)
}

// DecodeDelta parses one wire-JSON sample, rejecting anything that is not a
// JSON object. Unknown fields are ignored (the schema only ever grows).
func DecodeDelta(data []byte) (Delta, error) {
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return Delta{}, fmt.Errorf("tail: parsing delta: %w", err)
	}
	return d, nil
}

// Timeseries is a bounded ring of samples: a sampler calls Sample on a fixed
// cadence with the current merged metrics snapshot and progress view, and the
// ring keeps the most recent capacity deltas for /timeseries scrapes and SSE
// resume. Reads never block the sampler for long — all methods copy under a
// mutex held for O(capacity).
type Timeseries struct {
	mu            sync.Mutex
	capacity      int
	ring          []Delta
	seq           int64
	prevNano      int64
	prevDecisions int64
	prevCompleted int64
}

// NewTimeseries returns a ring keeping the most recent capacity samples
// (minimum 1).
func NewTimeseries(capacity int) *Timeseries {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeseries{capacity: capacity}
}

// Sample appends one sample stamped with the current wall clock.
func (t *Timeseries) Sample(snap obs.Snapshot, prog obs.ProgressSnapshot) Delta {
	return t.SampleAt(time.Now().UnixNano(), snap, prog)
}

// SampleAt is Sample with an explicit timestamp, so tests drive the ring
// deterministically.
func (t *Timeseries) SampleAt(nowNano int64, snap obs.Snapshot, prog obs.ProgressSnapshot) Delta {
	t.mu.Lock()
	defer t.mu.Unlock()

	t.seq++
	d := Delta{
		Seq:       t.seq,
		UnixNano:  nowNano,
		Decisions: snap.Counters["core.decide"],
		Completed: prog.Completed,
		Total:     prog.Total,
		ETASec:    prog.ETASec,
	}
	if clean := snap.Counters["scan.clean"]; clean > 0 {
		d.ScanRetryRatio = float64(snap.Counters["scan.retry"]) / float64(clean)
	}
	if lat, ok := snap.Hists[obs.LatSolveKey]; ok && lat.Count > 0 {
		d.LatP50NS = lat.P50
		d.LatP90NS = lat.P90
		d.LatP99NS = lat.P99
		d.LatP999NS = lat.P999
		d.LatMaxNS = lat.Max
	}
	if t.prevNano != 0 && nowNano > t.prevNano {
		d.WindowSec = float64(nowNano-t.prevNano) / float64(time.Second)
		if dd := d.Decisions - t.prevDecisions; dd > 0 {
			d.DecisionsPerSec = float64(dd) / d.WindowSec
		}
		if dc := d.Completed - t.prevCompleted; dc > 0 {
			d.InstancesPerSec = float64(dc) / d.WindowSec
		}
	}
	t.prevNano = nowNano
	t.prevDecisions = d.Decisions
	t.prevCompleted = d.Completed

	t.ring = append(t.ring, d)
	if len(t.ring) > t.capacity {
		t.ring = append(t.ring[:0], t.ring[len(t.ring)-t.capacity:]...)
	}
	return d
}

// Samples returns a copy of the retained samples, oldest first.
func (t *Timeseries) Samples() []Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Delta(nil), t.ring...)
}

// Since returns the retained samples with Seq > seq, oldest first — the SSE
// resume primitive. Samples evicted from the ring are gone; a client that
// fell more than capacity samples behind simply resumes from what remains.
func (t *Timeseries) Since(seq int64) []Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := 0
	for i < len(t.ring) && t.ring[i].Seq <= seq {
		i++
	}
	return append([]Delta(nil), t.ring[i:]...)
}
