package tail

import (
	"testing"
	"time"

	"github.com/dsrepro/consensus/internal/obs"
)

func snapAt(decisions, retries, cleans int64) obs.Snapshot {
	return obs.Snapshot{
		Counters: map[string]int64{
			"core.decide": decisions,
			"scan.retry":  retries,
			"scan.clean":  cleans,
		},
		Hists: map[string]obs.HistSnapshot{
			obs.LatSolveKey: {Count: decisions, P50: 1000, P90: 2000, P99: 3000, P999: 4000, Max: 5000},
		},
	}
}

// TestTimeseriesWindowedRates drives the ring with explicit timestamps: the
// first sample has no window, later samples rate the counter deltas.
func TestTimeseriesWindowedRates(t *testing.T) {
	ts := NewTimeseries(16)
	base := int64(1_000_000_000)
	sec := int64(time.Second)

	d1 := ts.SampleAt(base, snapAt(10, 0, 10), obs.ProgressSnapshot{Total: 100, Completed: 10, ETASec: -1})
	if d1.Seq != 1 || d1.WindowSec != 0 || d1.DecisionsPerSec != 0 {
		t.Errorf("first sample should have no window: %+v", d1)
	}
	if d1.Decisions != 10 || d1.LatP99NS != 3000 || d1.LatP999NS != 4000 || d1.LatMaxNS != 5000 {
		t.Errorf("cumulative fields wrong: %+v", d1)
	}

	d2 := ts.SampleAt(base+2*sec, snapAt(50, 30, 20), obs.ProgressSnapshot{Total: 100, Completed: 30, ETASec: 7})
	if d2.Seq != 2 || d2.WindowSec != 2 {
		t.Fatalf("second sample window wrong: %+v", d2)
	}
	if d2.DecisionsPerSec != 20 { // (50-10)/2s
		t.Errorf("decisions/sec = %v, want 20", d2.DecisionsPerSec)
	}
	if d2.InstancesPerSec != 10 { // (30-10)/2s
		t.Errorf("instances/sec = %v, want 10", d2.InstancesPerSec)
	}
	if d2.ScanRetryRatio != 1.5 {
		t.Errorf("scan retry ratio = %v, want 1.5", d2.ScanRetryRatio)
	}
	if d2.ETASec != 7 {
		t.Errorf("eta = %v, want 7", d2.ETASec)
	}
}

// TestTimeseriesRingBounds: the ring keeps only the newest capacity samples,
// and Since resumes past evictions.
func TestTimeseriesRingBounds(t *testing.T) {
	ts := NewTimeseries(3)
	for i := 0; i < 10; i++ {
		ts.SampleAt(int64(i+1)*int64(time.Second), obs.Snapshot{}, obs.ProgressSnapshot{})
	}
	got := ts.Samples()
	if len(got) != 3 || got[0].Seq != 8 || got[2].Seq != 10 {
		t.Fatalf("ring contents wrong: %+v", got)
	}
	since := ts.Since(8)
	if len(since) != 2 || since[0].Seq != 9 || since[1].Seq != 10 {
		t.Errorf("Since(8) = %+v, want seqs 9,10", since)
	}
	if all := ts.Since(0); len(all) != 3 {
		t.Errorf("Since(0) should return the whole ring, got %d", len(all))
	}
	if none := ts.Since(10); len(none) != 0 {
		t.Errorf("Since(latest) should be empty, got %+v", none)
	}
}

// TestDeltaRoundTrip: encode/decode is lossless for a fully populated sample.
func TestDeltaRoundTrip(t *testing.T) {
	d := Delta{
		Seq: 7, UnixNano: 123456789, WindowSec: 0.25,
		Decisions: 42, DecisionsPerSec: 168, ScanRetryRatio: 1.25,
		Completed: 10, Total: 20, InstancesPerSec: 4, ETASec: 2.5,
		LatP50NS: 1e6, LatP90NS: 2e6, LatP99NS: 3e6, LatP999NS: 4e6, LatMaxNS: 5_000_000,
	}
	data, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDelta(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip changed the sample:\n in  %+v\n out %+v", d, back)
	}
}

// FuzzTimeseriesDelta fuzzes the wire decoder: any input that decodes must
// re-encode and decode to the same value (the schema is float64/int64 only,
// which JSON round-trips exactly), and the decoder must never panic.
func FuzzTimeseriesDelta(f *testing.F) {
	seed, err := EncodeDelta(Delta{Seq: 1, UnixNano: 2, WindowSec: 0.5, Decisions: 3, LatP999NS: 4.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seq":-1,"lat_p99_ns":1e308}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		enc, err := EncodeDelta(d)
		if err != nil {
			// Unrepresentable floats (NaN/Inf) cannot come out of a JSON
			// decode, so encode must succeed for any decoded value.
			t.Fatalf("decoded delta failed to re-encode: %v (%+v)", err, d)
		}
		back, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("re-encoded delta failed to decode: %v (%s)", err, enc)
		}
		if back != d {
			t.Fatalf("round trip not stable:\n in  %+v\n out %+v", d, back)
		}
	})
}
