// Package pad provides cache-line-padded atomic counters.
//
// Per-pid metric counters (scan retries, protocol rounds, coin flips) live in
// slices indexed by pid; adjacent elements would otherwise share a 64-byte
// cache line, so counters updated by different batch workers ping-pong the
// line between cores (false sharing). Padding each counter to a full line
// keeps the per-pid updates independent.
package pad

import "sync/atomic"

// Int64 is an atomic.Int64 padded to a 64-byte cache line. The atomic's
// methods are promoted, so a []Int64 is a drop-in replacement for
// []atomic.Int64 wherever elements are updated from different goroutines.
type Int64 struct {
	atomic.Int64
	_ [56]byte
}
