package pad

import (
	"testing"
	"unsafe"
)

func TestInt64FillsOneCacheLine(t *testing.T) {
	if got := unsafe.Sizeof(Int64{}); got != 64 {
		t.Fatalf("pad.Int64 is %d bytes, want 64", got)
	}
	var s [4]Int64
	if d := uintptr(unsafe.Pointer(&s[1])) - uintptr(unsafe.Pointer(&s[0])); d != 64 {
		t.Fatalf("adjacent elements %d bytes apart, want 64", d)
	}
}

func TestInt64PromotesAtomicMethods(t *testing.T) {
	var c Int64
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("after Store(0), Load = %d", got)
	}
}
