package register

import (
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/sched"
)

// TestRegisterOpsZeroAlloc pins the observability tentpole's zero-cost
// guarantee at the hottest layer: a register access must not allocate when
// observability is off (nil sink) or metrics-only (sink without recorder).
func TestRegisterOpsZeroAlloc(t *testing.T) {
	swmr := NewSWMR(0, 0)
	tog := NewToggledSWMR(0, 0)
	d2w := NewDirect2W(0, 1, false)
	bloom := NewBloom2W(0, 1, false)
	check := func(mode string) {
		sched.RunFree(1, 1, func(p *sched.Proc) {
			if n := testing.AllocsPerRun(500, func() {
				swmr.Write(p, 7)
				_ = swmr.Read(p)
				tog.Write(p, 3)
				_ = tog.Read(p)
				d2w.Write(p, true)
				_ = d2w.Read(p)
				bloom.Write(p, true)
				_ = bloom.Read(p)
			}); n != 0 {
				t.Errorf("%s: %v allocs per register-op batch, want 0", mode, n)
			}
		})
	}

	check("no sink")

	s := obs.NewSink(nil) // metrics-only: counted, never recorded
	for _, r := range []SinkSetter{swmr, tog, d2w, bloom} {
		r.SetSink(s)
	}
	check("metrics-only sink")
	if got := s.Registry().KindCount(obs.RegSWMRRead); got == 0 {
		t.Error("metrics-only sink did not count SWMR reads")
	}
}
