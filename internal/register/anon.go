package register

import (
	"sync"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/sched"
)

// DirectMRMW is a direct atomic model of a multi-writer multi-reader
// register: any process may read or write, one operation is one atomic step.
// It is the primitive of Gelashvili's anonymous-process setting ("On the
// Optimal Space Complexity of Consensus for Anonymous Processes"), where
// registers carry no ownership and protocols may not index them — or their
// payloads — by process id. Unlike MRMW (the Vitányi–Awerbuch construction
// from pid-owned SWMR cells), it deliberately has no owner or party check
// and no per-process structure; anonymity is enforced by construction in the
// protocol that uses it.
//
// Storage mirrors SWMR: a mutex-guarded value under the deterministic
// substrate, a padded atomic cell in native mode (see SWMR.SetNative).
type DirectMRMW[T any] struct {
	fp     int64 // footprint key for commuting dispatch
	sink   *obs.Sink
	native bool
	space  spaceMark
	mu     sync.Mutex
	v      T
	cell   natCell[T]
}

// NewDirectMRMW returns a multi-writer register initialized to init. Native
// mode can be chosen at construction so lazily grown register files match
// the substrate of the run that grows them.
func NewDirectMRMW[T any](init T, native bool) *DirectMRMW[T] {
	r := &DirectMRMW[T]{fp: sched.NewFootprintKey(), v: init}
	if native {
		r.SetNative(true)
	}
	return r
}

// SetSink installs the observability sink (call before the run starts, or at
// creation time for lazily grown registers).
func (r *DirectMRMW[T]) SetSink(s *obs.Sink) { r.sink = s }

// SetSpace implements SpaceSetter: one physical register.
func (r *DirectMRMW[T]) SetSpace(m *space.Meter, l space.Layer) { r.space.set(m, l, 1) }

// SetNative switches the storage mode (see SWMR.SetNative: call only while
// no process is active).
func (r *DirectMRMW[T]) SetNative(on bool) {
	if on == r.native {
		return
	}
	if on {
		v := r.v
		r.cell.v.Store(&v)
	} else {
		r.v = *r.cell.v.Load()
	}
	r.native = on
}

// Read returns the register's current value. One atomic step.
func (r *DirectMRMW[T]) Read(p *sched.Proc) T {
	p.DeclareRead(r.fp)
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.RegMRMWRead, Value: int64(p.ID())})
	if r.native {
		return *r.cell.v.Load()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write stores v. One atomic step. Any process may write.
func (r *DirectMRMW[T]) Write(p *sched.Proc, v T) {
	p.DeclareWrite(r.fp)
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.RegMRMWWrite, Value: int64(p.ID())})
	r.space.markWrite()
	if r.native {
		c := new(T)
		*c = v
		r.cell.v.Store(c)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Peek returns the current value without a scheduler step or process context
// (test oracles and flight dumps only).
func (r *DirectMRMW[T]) Peek() T {
	if r.native {
		return *r.cell.v.Load()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Reset restores the register to the initial value v between runs (pooling
// path only).
func (r *DirectMRMW[T]) Reset(v T) {
	if r.native {
		c := new(T)
		*c = v
		r.cell.v.Store(c)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}
