package register

import (
	"fmt"

	"github.com/dsrepro/consensus/internal/sched"
)

// MRMW is a multi-reader multi-writer atomic register built from n SWMR
// atomic registers with unbounded timestamps, after Vitányi and Awerbuch
// ([VA86], cited by the paper). The paper's footnote 3 notes that its arrows
// technique exists precisely "to save on the complexity of constructing
// multi-writer registers"; this type is the construction being avoided,
// provided for completeness and for the substrate test suite.
//
// Each writer owns one SWMR cell holding (value, timestamp, writer id). A
// write collects all cells, picks a timestamp one above the maximum seen, and
// publishes. A read collects all cells and returns the value of the
// lexicographically largest (timestamp, writer id) pair. Timestamps grow
// without bound — the unboundedness that Dolev–Shavit style concurrent
// time-stamp systems (and this paper's arrows) eliminate; MaxTimestamp
// exposes it for the space-accounting tests.
type MRMW[T any] struct {
	n     int
	cells []*SWMR[mrmwCell[T]]
}

type mrmwCell[T any] struct {
	val T
	ts  int64
	wid int
}

// NewMRMW returns an MRMW register for n processes holding init.
func NewMRMW[T any](n int, init T) *MRMW[T] {
	r := &MRMW[T]{n: n, cells: make([]*SWMR[mrmwCell[T]], n)}
	for i := 0; i < n; i++ {
		r.cells[i] = NewSWMR(i, mrmwCell[T]{})
	}
	// The initial value lives in cell 0 at timestamp 0 with wid -1 so any
	// real write (wid >= 0) supersedes it.
	r.cells[0] = NewSWMR(0, mrmwCell[T]{val: init, wid: -1})
	return r
}

// SetNative switches every SWMR cell's storage mode (see SWMR.SetNative).
func (r *MRMW[T]) SetNative(on bool) {
	for _, c := range r.cells {
		c.SetNative(on)
	}
}

func (r *MRMW[T]) checkPid(pid int) {
	if pid < 0 || pid >= r.n {
		panic(fmt.Sprintf("register: process %d accessed MRMW register of %d processes", pid, r.n))
	}
}

// collectMax returns the lexicographically largest (ts, wid) cell. n atomic
// steps.
func (r *MRMW[T]) collectMax(p *sched.Proc) mrmwCell[T] {
	best := r.cells[0].Read(p)
	for j := 1; j < r.n; j++ {
		c := r.cells[j].Read(p)
		if c.ts > best.ts || (c.ts == best.ts && c.wid > best.wid) {
			best = c
		}
	}
	return best
}

// Write stores v. 2n atomic steps (collect + publish... the publish is one).
func (r *MRMW[T]) Write(p *sched.Proc, v T) {
	r.checkPid(p.ID())
	best := r.collectMax(p)
	r.cells[p.ID()].Write(p, mrmwCell[T]{val: v, ts: best.ts + 1, wid: p.ID()})
}

// Read returns the current value. n atomic steps.
func (r *MRMW[T]) Read(p *sched.Proc) T {
	r.checkPid(p.ID())
	return r.collectMax(p).val
}

// MaxTimestamp returns the largest timestamp published so far — the
// unbounded quantity this construction pays for atomicity.
func (r *MRMW[T]) MaxTimestamp() int64 {
	var m int64
	for _, c := range r.cells {
		if v := c.Peek(); v.ts > m {
			m = v.ts
		}
	}
	return m
}
