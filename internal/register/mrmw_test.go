package register

import (
	"testing"

	"github.com/dsrepro/consensus/internal/linearize"
	"github.com/dsrepro/consensus/internal/sched"
)

func TestMRMWSequential(t *testing.T) {
	_, err := sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		r := NewMRMW(1, 10)
		if got := r.Read(p); got != 10 {
			t.Errorf("initial Read = %d", got)
		}
		r.Write(p, 20)
		r.Write(p, 30)
		if got := r.Read(p); got != 30 {
			t.Errorf("Read = %d, want 30", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMRMWPidChecked(t *testing.T) {
	r := NewMRMW(2, 0)
	_, err := sched.Run(sched.Config{N: 3, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 2 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range pid")
			}
		}()
		r.Read(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMRMWIsAtomic records histories with multiple concurrent writers and
// readers under random adversarial schedules and checks linearizability —
// the property the timestamp construction must provide.
func TestMRMWIsAtomic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		const n = 3
		reg := NewMRMW(n, 0)
		var rec linearize.Recorder
		nextVal := 1 // unique write values (serialized under the scheduler)
		_, err := sched.Run(sched.Config{
			N: n, Seed: seed, Adversary: sched.NewRandom(seed*19 + 7),
		}, func(p *sched.Proc) {
			p.Step() // enter the serialized regime before touching nextVal
			for k := 0; k < 4; k++ {
				if p.Rand().Intn(2) == 0 {
					v := nextVal
					nextVal++
					start := p.Now()
					reg.Write(p, v)
					rec.Add(linearize.Op{Proc: p.ID(), IsWrite: true, Val: v, Start: start, End: p.Now()})
				} else {
					start := p.Now()
					v := reg.Read(p)
					rec.Add(linearize.Op{Proc: p.ID(), Val: v, Start: start, End: p.Now()})
				}
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, err := linearize.Check(rec.History(), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable MRMW history:\n%v", seed, rec.History())
		}
	}
}

func TestMRMWTimestampsGrowWithoutBound(t *testing.T) {
	reg := NewMRMW(2, 0)
	_, err := sched.Run(sched.Config{N: 2, Seed: 4}, func(p *sched.Proc) {
		for k := 0; k < 50; k++ {
			reg.Write(p, k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ts := reg.MaxTimestamp(); ts < 50 {
		t.Fatalf("MaxTimestamp = %d, want >= 50 (unbounded growth)", ts)
	}
}
