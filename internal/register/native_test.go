package register

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestNativeModeRoundTrip pins the storage-mode switch: values survive
// SetNative(true), native reads/writes/peeks/resets, and the fold back to
// mutex storage.
func TestNativeModeRoundTrip(t *testing.T) {
	r := NewSWMR(0, 10)
	r.SetNative(true)
	if got := r.Peek(); got != 10 {
		t.Fatalf("native Peek after switch = %d, want 10", got)
	}
	r.Reset(20)
	if got := r.Peek(); got != 20 {
		t.Fatalf("native Peek after Reset = %d, want 20", got)
	}
	r.SetNative(false)
	if got := r.Peek(); got != 20 {
		t.Fatalf("mutex Peek after fold-back = %d, want 20", got)
	}

	d := NewDirect2W(0, 1, true)
	d.SetNative(true)
	d.Reset(false)
	d.SetNative(false)
	if d.Peekish() {
		t.Fatal("Direct2W fold-back lost the reset")
	}
}

// Peekish reads the Direct2W bit without a process context (test-only).
func (r *Direct2W) Peekish() bool {
	if r.native {
		return r.cell.v.Load()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// TestNativeRegistersUnderRealConcurrency drives every register type from
// racing goroutines on the native substrate: each owner publishes a strictly
// increasing sequence and readers must only ever observe published values,
// never torn or stale-beyond-owner ones. Run with -race this also proves the
// lock-free storage paths are data-race-free.
func TestNativeRegistersUnderRealConcurrency(t *testing.T) {
	const n, writes = 4, 200
	regs := make([]*ToggledSWMR[int], n)
	for i := range regs {
		regs[i] = NewToggledSWMR(i, 0)
		regs[i].SetNative(true)
	}
	d2w := NewDirect2W(0, 1, false)
	d2w.SetNative(true)
	bloom := NewBloom2W(2, 3, false)
	bloom.SetNative(true)
	mrmw := NewMRMW(n, 0)
	mrmw.SetNative(true)

	res, err := sched.NewNative(sched.NativeOptions{}).Run(sched.Config{N: n, Seed: 9},
		func(p *sched.Proc) {
			id := p.ID()
			last := make([]int, n)
			for k := 1; k <= writes; k++ {
				regs[id].Write(p, k)
				for j := 0; j < n; j++ {
					got := regs[j].Read(p).Val
					if got < last[j] || got > writes {
						t.Errorf("reader %d saw register %d go backwards or out of range: %d after %d", id, j, got, last[j])
						return
					}
					last[j] = got
				}
				switch id {
				case 0, 1:
					d2w.Write(p, k%2 == 0)
					d2w.Read(p)
				case 2, 3:
					bloom.Write(p, k%2 == 1)
					bloom.Read(p)
				}
				mrmw.Write(p, id*writes+k)
				if got := mrmw.Read(p); got < 0 || got > (n-1)*writes+writes {
					t.Errorf("MRMW returned unpublished value %d", got)
					return
				}
			}
		})
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	for i, f := range res.Finished {
		if !f {
			t.Fatalf("process %d did not finish", i)
		}
	}
}
