// Package register models the atomic read/write registers the paper builds
// on: single-writer multi-reader (SWMR) atomic registers, toggle-bit wrappers
// (the paper adds an alternating bit to every V_i so consecutive writes always
// differ), and two-writer two-reader (2W2R) atomic registers — both a direct
// model and Bloom's 1987 construction of a 2W2R register from two SWMR
// registers, the construction the paper cites for its arrow registers.
//
// Every register operation counts as one atomic step of the owning process:
// implementations call Proc.Step before touching shared state, so under the
// step scheduler (package sched) register operations serialize exactly at the
// scheduler's grant points. A mutex guards the stored value only to keep
// free-running mode (real goroutines) race-free; under the step scheduler it
// is never contended.
package register

import (
	"fmt"
	"sync"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/sched"
)

// SinkSetter is implemented by every register (and by the scannable
// memories built from them) so an observability sink installed at the top of
// a protocol stack propagates down to each primitive.
type SinkSetter interface {
	SetSink(*obs.Sink)
}

// SWMR is a single-writer multi-reader atomic register holding a value of
// type T. Only the owner process may write; any process may read. It models a
// hardware atomic register: one read or write is one atomic step.
type SWMR[T any] struct {
	owner int
	sink  *obs.Sink
	mu    sync.Mutex
	v     T
}

// NewSWMR returns an SWMR register owned (writable) by process owner,
// initialized to init.
func NewSWMR[T any](owner int, init T) *SWMR[T] {
	return &SWMR[T]{owner: owner, v: init}
}

// Owner returns the pid of the register's single writer.
func (r *SWMR[T]) Owner() int { return r.owner }

// SetSink installs the observability sink (call before the run starts).
func (r *SWMR[T]) SetSink(s *obs.Sink) { r.sink = s }

// Read returns the register's current value. One atomic step.
func (r *SWMR[T]) Read(p *sched.Proc) T {
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.RegSWMRRead, Value: int64(r.owner)})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write stores v. One atomic step. Calling Write from a process other than
// the owner is a bug in the algorithm under simulation and panics.
func (r *SWMR[T]) Write(p *sched.Proc, v T) {
	if p.ID() != r.owner {
		panic(fmt.Sprintf("register: process %d wrote SWMR register owned by %d", p.ID(), r.owner))
	}
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.RegSWMRWrite, Value: int64(r.owner)})
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Peek returns the current value without a scheduler step or process context.
// It is for test oracles and metrics collection only — never for algorithm
// logic, which must pay for its reads.
func (r *SWMR[T]) Peek() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Reset restores the register to the initial value v without a scheduler step.
// It is part of the instance-pooling path (see core.Arena) and must only be
// called between runs, never while simulated processes are active.
func (r *SWMR[T]) Reset(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Toggled pairs a value with the paper's alternating bit: "an alternating bit
// field is assumed to be added to each register V_i, such that two values
// written in consecutive writes by the same process, always differ" (§2.2).
type Toggled[T any] struct {
	Val    T
	Toggle bool
}

// ToggledSWMR wraps an SWMR register so every write flips the toggle bit.
// The writer tracks the bit locally (it is the only writer).
type ToggledSWMR[T any] struct {
	reg   *SWMR[Toggled[T]]
	next  bool
	mon   *audit.Monitor
	regID int
}

// NewToggledSWMR returns a toggle-bit SWMR register owned by owner.
func NewToggledSWMR[T any](owner int, init T) *ToggledSWMR[T] {
	return &ToggledSWMR[T]{reg: NewSWMR(owner, Toggled[T]{Val: init}), next: true}
}

// SetSink installs the observability sink on the wrapped register.
func (r *ToggledSWMR[T]) SetSink(s *obs.Sink) { r.reg.SetSink(s) }

// SetMonitor attaches the invariant monitor's sampled register-regularity
// probe, identifying this register as id in recorded histories (a nil m
// detaches). The toggle bit doubles as the recorded value: it alternates on
// every write, which is exactly what makes the regularity check decisive.
func (r *ToggledSWMR[T]) SetMonitor(m *audit.Monitor, id int) {
	r.mon = m
	r.regID = id
}

// Read returns the current value and toggle bit. One atomic step.
func (r *ToggledSWMR[T]) Read(p *sched.Proc) Toggled[T] {
	if !r.mon.AuditRegisters() {
		return r.reg.Read(p)
	}
	start := p.Now()
	v := r.reg.Read(p)
	r.mon.RegOp(r.regID, p.ID(), false, toggleInt(v.Toggle), start, p.Now())
	return v
}

// Write stores v with a flipped toggle bit. One atomic step.
func (r *ToggledSWMR[T]) Write(p *sched.Proc, v T) {
	if !r.mon.AuditRegisters() {
		r.reg.Write(p, Toggled[T]{Val: v, Toggle: r.next})
		r.next = !r.next
		return
	}
	start := p.Now()
	tog := r.next
	r.reg.Write(p, Toggled[T]{Val: v, Toggle: tog})
	r.next = !r.next
	r.mon.RegOp(r.regID, p.ID(), true, toggleInt(tog), start, p.Now())
}

func toggleInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Peek is the no-step test/metrics accessor.
func (r *ToggledSWMR[T]) Peek() Toggled[T] { return r.reg.Peek() }

// Reset restores the register to its initial state (value v, toggle cleared,
// next write toggling to true) between runs. Pooling path only.
func (r *ToggledSWMR[T]) Reset(v T) {
	r.reg.Reset(Toggled[T]{Val: v})
	r.next = true
}

// TwoWriter is a two-writer two-reader atomic boolean register, the primitive
// the paper's arrow registers A_ij require. Implementations are provided both
// as a direct atomic model (Direct2W) and as Bloom's construction from SWMR
// registers (Bloom2W); the scannable memory accepts either via this
// interface.
type TwoWriter interface {
	// Read returns the current bit. p must be one of the two parties.
	Read(p *sched.Proc) bool
	// Write stores the bit. p must be one of the two parties.
	Write(p *sched.Proc, v bool)
}

// Direct2W is the direct atomic model of a 2W2R boolean register: one read or
// write is one atomic step. It stands in for the bounded constructions cited
// by the paper when experiments do not need sub-operation granularity.
type Direct2W struct {
	a, b int // the two parties allowed to access the register
	sink *obs.Sink
	mu   sync.Mutex
	v    bool
}

// NewDirect2W returns a direct-model 2W2R register shared by processes a and b.
func NewDirect2W(a, b int, init bool) *Direct2W {
	return &Direct2W{a: a, b: b, v: init}
}

func (r *Direct2W) checkParty(pid int) {
	if pid != r.a && pid != r.b {
		panic(fmt.Sprintf("register: process %d accessed 2W2R register of (%d,%d)", pid, r.a, r.b))
	}
}

// SetSink installs the observability sink.
func (r *Direct2W) SetSink(s *obs.Sink) { r.sink = s }

// Read implements TwoWriter. One atomic step.
func (r *Direct2W) Read(p *sched.Proc) bool {
	r.checkParty(p.ID())
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.Reg2WRead})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write implements TwoWriter. One atomic step.
func (r *Direct2W) Write(p *sched.Proc, v bool) {
	r.checkParty(p.ID())
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.Reg2WWrite})
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Reset restores the register to the initial bit between runs. Pooling path
// only.
func (r *Direct2W) Reset(v bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Bloom2W implements a two-writer atomic boolean register from two SWMR
// atomic registers, after B. Bloom, "Constructing two-writer atomic
// registers" (PODC 1987) — the construction the paper cites ([Bl87]) as a
// source of bounded 2W2R registers.
//
// Each writer w ∈ {0,1} owns an SWMR sub-register holding (value, tag).
// Writer 0 writes its value with tag equal to writer 1's current tag; writer
// 1 writes its value with tag equal to the complement of writer 0's current
// tag. Tags equal ⇒ writer 0 wrote last; tags differ ⇒ writer 1 wrote last. A
// reader reads both sub-registers and returns the value of the later writer.
// A write costs two atomic steps (read other tag, write own sub-register); a
// read costs two atomic steps.
type Bloom2W struct {
	a, b  int // a plays Bloom writer 0, b plays writer 1
	sink  *obs.Sink
	sub   [2]*SWMR[bloomCell]
	party func(pid int) int
}

type bloomCell struct {
	val bool
	tag bool
}

// NewBloom2W returns a Bloom-construction 2W2R register shared by processes
// a and b (a is Bloom's writer 0, b is writer 1).
func NewBloom2W(a, b int, init bool) *Bloom2W {
	r := &Bloom2W{a: a, b: b}
	// Initial state: tags equal, writer 0's cell holds the initial value —
	// consistent with "writer 0 wrote last".
	r.sub[0] = NewSWMR(a, bloomCell{val: init})
	r.sub[1] = NewSWMR(b, bloomCell{})
	return r
}

func (r *Bloom2W) role(pid int) int {
	switch pid {
	case r.a:
		return 0
	case r.b:
		return 1
	default:
		panic(fmt.Sprintf("register: process %d accessed Bloom 2W2R register of (%d,%d)", pid, r.a, r.b))
	}
}

// SetSink installs the observability sink on the wrapper and both SWMR
// sub-registers, so Bloom-level and SWMR-level operations are both accounted.
func (r *Bloom2W) SetSink(s *obs.Sink) {
	r.sink = s
	r.sub[0].SetSink(s)
	r.sub[1].SetSink(s)
}

// Write implements TwoWriter. Two atomic steps.
func (r *Bloom2W) Write(p *sched.Proc, v bool) {
	r.sink.Count(obs.RegBloomWrite)
	w := r.role(p.ID())
	other := r.sub[1-w].Read(p)
	tag := other.tag
	if w == 1 {
		tag = !tag
	}
	r.sub[w].Write(p, bloomCell{val: v, tag: tag})
}

// Read implements TwoWriter. Two atomic steps.
func (r *Bloom2W) Read(p *sched.Proc) bool {
	r.sink.Count(obs.RegBloomRead)
	r.role(p.ID()) // enforce that only the two parties access the register
	c0 := r.sub[0].Read(p)
	c1 := r.sub[1].Read(p)
	if c0.tag == c1.tag {
		return c0.val // writer 0 wrote last
	}
	return c1.val // writer 1 wrote last
}

// Reset restores the register to the initial bit between runs (tags equal,
// writer 0's cell holding the value — the construction's initial state).
// Pooling path only.
func (r *Bloom2W) Reset(v bool) {
	r.sub[0].Reset(bloomCell{val: v})
	r.sub[1].Reset(bloomCell{})
}

// TwoWriterResetter is the optional Reset capability of a TwoWriter; both
// provided implementations have it, and the scannable memory's own Reset
// reports failure when a custom register lacks it.
type TwoWriterResetter interface {
	Reset(v bool)
}

// TwoWriterFactory builds a 2W2R register for parties (a, b); it lets the
// scannable memory be assembled over either register substrate.
type TwoWriterFactory func(a, b int, init bool) TwoWriter

// DirectFactory builds direct-model 2W2R registers.
func DirectFactory(a, b int, init bool) TwoWriter { return NewDirect2W(a, b, init) }

// BloomFactory builds Bloom-construction 2W2R registers over SWMR registers.
func BloomFactory(a, b int, init bool) TwoWriter { return NewBloom2W(a, b, init) }
