// Package register models the atomic read/write registers the paper builds
// on: single-writer multi-reader (SWMR) atomic registers, toggle-bit wrappers
// (the paper adds an alternating bit to every V_i so consecutive writes always
// differ), and two-writer two-reader (2W2R) atomic registers — both a direct
// model and Bloom's 1987 construction of a 2W2R register from two SWMR
// registers, the construction the paper cites for its arrow registers.
//
// Every register operation counts as one atomic step of the owning process:
// implementations call Proc.Step before touching shared state, so under the
// step scheduler (package sched) register operations serialize exactly at the
// scheduler's grant points. A mutex guards the stored value only to keep
// free-running mode (real goroutines) race-free; under the step scheduler it
// is never contended.
//
// On the native substrate (sched.NewNative) registers switch to lock-free
// storage instead: SetNative(true) moves the value into a cache-line-padded
// sync/atomic cell, so concurrent process goroutines are serialized by the
// hardware's atomics rather than by a mutex. The mode is set by
// core.ExecuteProto before the run starts and propagates down the memory
// stack exactly like SetSink; it must never be flipped while processes are
// active.
package register

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/sched"
)

// SpaceSetter is implemented by every register (and the scannable memories
// built from them) so a space meter installed at the top of a protocol stack
// propagates down to each primitive. Installing a meter (re)declares the
// register under the given layer and re-arms its first-write liveness mark;
// a nil meter detaches. Call before the run starts, never while processes
// are active.
type SpaceSetter interface {
	SetSpace(m *space.Meter, l space.Layer)
}

// spaceMark is the embedded per-register liveness bookkeeping: the meter a
// register reports to and a CAS-guarded first-write flag, atomic so the
// native substrate's concurrent writers mark exactly once.
type spaceMark struct {
	spc     *space.Meter
	layer   space.Layer
	touched atomic.Bool
}

// set installs the meter (nil detaches), declaring regs physical registers
// and re-arming the first-write mark.
func (s *spaceMark) set(m *space.Meter, l space.Layer, regs int64) {
	s.spc = m
	s.layer = l
	s.touched.Store(false)
	m.AddRegs(l, regs)
}

// markWrite records the register's first write of the run. It takes no
// scheduler steps and allocates nothing, so metered runs stay byte-identical
// to unmetered ones.
func (s *spaceMark) markWrite() {
	if s.spc != nil && !s.touched.Load() && s.touched.CompareAndSwap(false, true) {
		s.spc.RegTouched(s.layer)
	}
}

// NativeSetter is implemented by every register and scannable memory so the
// storage mode chosen by the substrate propagates down a protocol stack the
// same way sinks do.
type NativeSetter interface {
	SetNative(on bool)
}

// natCell is the native-mode storage of a generic register: an atomic
// pointer to an immutable snapshot of the value, padded on both sides so two
// registers adjacent in memory never share a cache line. Each Write
// publishes a fresh snapshot allocation — the price of generic atomicity —
// which is why the deterministic substrate keeps its allocation-free mutex
// path instead of unifying on this one.
type natCell[T any] struct {
	_ [64]byte
	v atomic.Pointer[T]
	_ [56]byte
}

// SinkSetter is implemented by every register (and by the scannable
// memories built from them) so an observability sink installed at the top of
// a protocol stack propagates down to each primitive.
type SinkSetter interface {
	SetSink(*obs.Sink)
}

// SWMR is a single-writer multi-reader atomic register holding a value of
// type T. Only the owner process may write; any process may read. It models a
// hardware atomic register: one read or write is one atomic step.
type SWMR[T any] struct {
	owner  int
	fp     int64 // footprint key for commuting dispatch (sched.NewFootprintKey)
	sink   *obs.Sink
	native bool
	space  spaceMark
	mu     sync.Mutex
	v      T
	cell   natCell[T]
}

// NewSWMR returns an SWMR register owned (writable) by process owner,
// initialized to init.
func NewSWMR[T any](owner int, init T) *SWMR[T] {
	return &SWMR[T]{owner: owner, fp: sched.NewFootprintKey(), v: init}
}

// Owner returns the pid of the register's single writer.
func (r *SWMR[T]) Owner() int { return r.owner }

// SetSink installs the observability sink (call before the run starts).
func (r *SWMR[T]) SetSink(s *obs.Sink) { r.sink = s }

// SetSpace implements SpaceSetter: one physical register.
func (r *SWMR[T]) SetSpace(m *space.Meter, l space.Layer) { r.space.set(m, l, 1) }

// SetNative switches the storage mode (call before the run starts, never
// while processes are active): true moves the current value into the padded
// atomic cell for the native substrate, false folds it back into the mutex
// storage for the deterministic one.
func (r *SWMR[T]) SetNative(on bool) {
	if on == r.native {
		return // idempotent: a pooled register may be re-armed between runs
	}
	if on {
		v := r.v
		r.cell.v.Store(&v)
	} else {
		r.v = *r.cell.v.Load()
	}
	r.native = on
}

// Read returns the register's current value. One atomic step.
func (r *SWMR[T]) Read(p *sched.Proc) T {
	p.DeclareRead(r.fp)
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.RegSWMRRead, Value: int64(r.owner)})
	if r.native {
		return *r.cell.v.Load()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write stores v. One atomic step. Calling Write from a process other than
// the owner is a bug in the algorithm under simulation and panics.
func (r *SWMR[T]) Write(p *sched.Proc, v T) {
	if p.ID() != r.owner {
		panic(fmt.Sprintf("register: process %d wrote SWMR register owned by %d", p.ID(), r.owner))
	}
	p.DeclareWrite(r.fp)
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.RegSWMRWrite, Value: int64(r.owner)})
	r.space.markWrite()
	if r.native {
		// Copy via new(T) rather than &v: taking the parameter's address
		// would make it escape on the simulated path too, breaking the
		// zero-alloc guarantee the mutex mode keeps.
		c := new(T)
		*c = v
		r.cell.v.Store(c)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Peek returns the current value without a scheduler step or process context.
// It is for test oracles and metrics collection only — never for algorithm
// logic, which must pay for its reads.
func (r *SWMR[T]) Peek() T {
	if r.native {
		// Native Peek stays safe mid-run (flight dumps snapshot state while
		// other goroutines are in flight): it is one atomic load.
		return *r.cell.v.Load()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Reset restores the register to the initial value v without a scheduler step.
// It is part of the instance-pooling path (see core.Arena) and must only be
// called between runs, never while simulated processes are active.
func (r *SWMR[T]) Reset(v T) {
	if r.native {
		c := new(T)
		*c = v
		r.cell.v.Store(c)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Toggled pairs a value with the paper's alternating bit: "an alternating bit
// field is assumed to be added to each register V_i, such that two values
// written in consecutive writes by the same process, always differ" (§2.2).
type Toggled[T any] struct {
	Val    T
	Toggle bool
}

// ToggledSWMR wraps an SWMR register so every write flips the toggle bit.
// The writer tracks the bit locally (it is the only writer).
type ToggledSWMR[T any] struct {
	reg   *SWMR[Toggled[T]]
	next  bool
	mon   *audit.Monitor
	regID int
}

// NewToggledSWMR returns a toggle-bit SWMR register owned by owner.
func NewToggledSWMR[T any](owner int, init T) *ToggledSWMR[T] {
	return &ToggledSWMR[T]{reg: NewSWMR(owner, Toggled[T]{Val: init}), next: true}
}

// SetSink installs the observability sink on the wrapped register.
func (r *ToggledSWMR[T]) SetSink(s *obs.Sink) { r.reg.SetSink(s) }

// SetSpace installs the space meter on the wrapped register (the toggle bit
// is part of the same physical register, accounted as scan-layer overhead by
// the memory that owns this wrapper).
func (r *ToggledSWMR[T]) SetSpace(m *space.Meter, l space.Layer) { r.reg.SetSpace(m, l) }

// SetNative switches the wrapped register's storage mode. The toggle-bit
// bookkeeping needs no change: r.next is owner-local state.
func (r *ToggledSWMR[T]) SetNative(on bool) { r.reg.SetNative(on) }

// SetMonitor attaches the invariant monitor's sampled register-regularity
// probe, identifying this register as id in recorded histories (a nil m
// detaches). The toggle bit doubles as the recorded value: it alternates on
// every write, which is exactly what makes the regularity check decisive.
func (r *ToggledSWMR[T]) SetMonitor(m *audit.Monitor, id int) {
	r.mon = m
	r.regID = id
}

// Read returns the current value and toggle bit. One atomic step.
func (r *ToggledSWMR[T]) Read(p *sched.Proc) Toggled[T] {
	if !r.mon.AuditRegisters() {
		return r.reg.Read(p)
	}
	start := p.Now()
	v := r.reg.Read(p)
	r.mon.RegOp(r.regID, p.ID(), false, toggleInt(v.Toggle), start, p.Now())
	return v
}

// Write stores v with a flipped toggle bit. One atomic step.
func (r *ToggledSWMR[T]) Write(p *sched.Proc, v T) {
	if !r.mon.AuditRegisters() {
		r.reg.Write(p, Toggled[T]{Val: v, Toggle: r.next})
		r.next = !r.next
		return
	}
	start := p.Now()
	tog := r.next
	r.reg.Write(p, Toggled[T]{Val: v, Toggle: tog})
	r.next = !r.next
	r.mon.RegOp(r.regID, p.ID(), true, toggleInt(tog), start, p.Now())
}

func toggleInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Peek is the no-step test/metrics accessor.
func (r *ToggledSWMR[T]) Peek() Toggled[T] { return r.reg.Peek() }

// Reset restores the register to its initial state (value v, toggle cleared,
// next write toggling to true) between runs. Pooling path only.
func (r *ToggledSWMR[T]) Reset(v T) {
	r.reg.Reset(Toggled[T]{Val: v})
	r.next = true
}

// TwoWriter is a two-writer two-reader atomic boolean register, the primitive
// the paper's arrow registers A_ij require. Implementations are provided both
// as a direct atomic model (Direct2W) and as Bloom's construction from SWMR
// registers (Bloom2W); the scannable memory accepts either via this
// interface.
type TwoWriter interface {
	// Read returns the current bit. p must be one of the two parties.
	Read(p *sched.Proc) bool
	// Write stores the bit. p must be one of the two parties.
	Write(p *sched.Proc, v bool)
}

// Direct2W is the direct atomic model of a 2W2R boolean register: one read or
// write is one atomic step. It stands in for the bounded constructions cited
// by the paper when experiments do not need sub-operation granularity.
type Direct2W struct {
	a, b   int   // the two parties allowed to access the register
	fp     int64 // footprint key for commuting dispatch
	sink   *obs.Sink
	native bool
	space  spaceMark
	mu     sync.Mutex
	v      bool
	cell   natBoolCell
}

// natBoolCell is the native-mode storage of a boolean register: a padded
// atomic.Bool (no pointer indirection, no per-write allocation).
type natBoolCell struct {
	_ [64]byte
	v atomic.Bool
	_ [63]byte
}

// NewDirect2W returns a direct-model 2W2R register shared by processes a and b.
func NewDirect2W(a, b int, init bool) *Direct2W {
	return &Direct2W{a: a, b: b, fp: sched.NewFootprintKey(), v: init}
}

func (r *Direct2W) checkParty(pid int) {
	if pid != r.a && pid != r.b {
		panic(fmt.Sprintf("register: process %d accessed 2W2R register of (%d,%d)", pid, r.a, r.b))
	}
}

// SetSink installs the observability sink.
func (r *Direct2W) SetSink(s *obs.Sink) { r.sink = s }

// SetSpace implements SpaceSetter: one physical register holding one
// boolean word.
func (r *Direct2W) SetSpace(m *space.Meter, l space.Layer) {
	r.space.set(m, l, 1)
	m.AddWords(l, 1)
	m.DeclareDomain(l, 2)
}

// SetNative switches the storage mode (see SWMR.SetNative).
func (r *Direct2W) SetNative(on bool) {
	if on == r.native {
		return // idempotent: a pooled register may be re-armed between runs
	}
	if on {
		r.cell.v.Store(r.v)
	} else {
		r.v = r.cell.v.Load()
	}
	r.native = on
}

// Read implements TwoWriter. One atomic step.
func (r *Direct2W) Read(p *sched.Proc) bool {
	r.checkParty(p.ID())
	p.DeclareRead(r.fp)
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.Reg2WRead})
	if r.native {
		return r.cell.v.Load()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write implements TwoWriter. One atomic step.
func (r *Direct2W) Write(p *sched.Proc, v bool) {
	r.checkParty(p.ID())
	p.DeclareWrite(r.fp)
	p.Step()
	r.sink.Emit(obs.Event{Step: p.Now(), Pid: p.ID(), Kind: obs.Reg2WWrite})
	r.space.markWrite()
	if r.native {
		r.cell.v.Store(v)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Reset restores the register to the initial bit between runs. Pooling path
// only.
func (r *Direct2W) Reset(v bool) {
	if r.native {
		r.cell.v.Store(v)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Bloom2W implements a two-writer atomic boolean register from two SWMR
// atomic registers, after B. Bloom, "Constructing two-writer atomic
// registers" (PODC 1987) — the construction the paper cites ([Bl87]) as a
// source of bounded 2W2R registers.
//
// Each writer w ∈ {0,1} owns an SWMR sub-register holding (value, tag).
// Writer 0 writes its value with tag equal to writer 1's current tag; writer
// 1 writes its value with tag equal to the complement of writer 0's current
// tag. Tags equal ⇒ writer 0 wrote last; tags differ ⇒ writer 1 wrote last. A
// reader reads both sub-registers and returns the value of the later writer.
// A write costs two atomic steps (read other tag, write own sub-register); a
// read costs two atomic steps.
type Bloom2W struct {
	a, b  int // a plays Bloom writer 0, b plays writer 1
	sink  *obs.Sink
	sub   [2]*SWMR[bloomCell]
	party func(pid int) int
}

type bloomCell struct {
	val bool
	tag bool
}

// NewBloom2W returns a Bloom-construction 2W2R register shared by processes
// a and b (a is Bloom's writer 0, b is writer 1).
func NewBloom2W(a, b int, init bool) *Bloom2W {
	r := &Bloom2W{a: a, b: b}
	// Initial state: tags equal, writer 0's cell holds the initial value —
	// consistent with "writer 0 wrote last".
	r.sub[0] = NewSWMR(a, bloomCell{val: init})
	r.sub[1] = NewSWMR(b, bloomCell{})
	return r
}

func (r *Bloom2W) role(pid int) int {
	switch pid {
	case r.a:
		return 0
	case r.b:
		return 1
	default:
		panic(fmt.Sprintf("register: process %d accessed Bloom 2W2R register of (%d,%d)", pid, r.a, r.b))
	}
}

// SetSink installs the observability sink on the wrapper and both SWMR
// sub-registers, so Bloom-level and SWMR-level operations are both accounted.
func (r *Bloom2W) SetSink(s *obs.Sink) {
	r.sink = s
	r.sub[0].SetSink(s)
	r.sub[1].SetSink(s)
}

// SetNative switches both SWMR sub-registers' storage mode. The construction
// itself needs no change: its correctness argument only assumes the
// sub-registers are atomic, which both storage modes provide.
func (r *Bloom2W) SetNative(on bool) {
	r.sub[0].SetNative(on)
	r.sub[1].SetNative(on)
}

// SetSpace installs the space meter on both SWMR sub-registers: the Bloom
// construction's physical footprint is its two single-writer halves, each
// holding a (value, tag) pair of booleans.
func (r *Bloom2W) SetSpace(m *space.Meter, l space.Layer) {
	r.sub[0].SetSpace(m, l)
	r.sub[1].SetSpace(m, l)
	m.AddWords(l, 4)
	m.DeclareDomain(l, 2)
}

// Write implements TwoWriter. Two atomic steps.
func (r *Bloom2W) Write(p *sched.Proc, v bool) {
	r.sink.Count(obs.RegBloomWrite)
	w := r.role(p.ID())
	other := r.sub[1-w].Read(p)
	tag := other.tag
	if w == 1 {
		tag = !tag
	}
	r.sub[w].Write(p, bloomCell{val: v, tag: tag})
}

// Read implements TwoWriter. Two atomic steps.
func (r *Bloom2W) Read(p *sched.Proc) bool {
	r.sink.Count(obs.RegBloomRead)
	r.role(p.ID()) // enforce that only the two parties access the register
	c0 := r.sub[0].Read(p)
	c1 := r.sub[1].Read(p)
	if c0.tag == c1.tag {
		return c0.val // writer 0 wrote last
	}
	return c1.val // writer 1 wrote last
}

// Reset restores the register to the initial bit between runs (tags equal,
// writer 0's cell holding the value — the construction's initial state).
// Pooling path only.
func (r *Bloom2W) Reset(v bool) {
	r.sub[0].Reset(bloomCell{val: v})
	r.sub[1].Reset(bloomCell{})
}

// TwoWriterResetter is the optional Reset capability of a TwoWriter; both
// provided implementations have it, and the scannable memory's own Reset
// reports failure when a custom register lacks it.
type TwoWriterResetter interface {
	Reset(v bool)
}

// TwoWriterFactory builds a 2W2R register for parties (a, b); it lets the
// scannable memory be assembled over either register substrate.
type TwoWriterFactory func(a, b int, init bool) TwoWriter

// DirectFactory builds direct-model 2W2R registers.
func DirectFactory(a, b int, init bool) TwoWriter { return NewDirect2W(a, b, init) }

// BloomFactory builds Bloom-construction 2W2R registers over SWMR registers.
func BloomFactory(a, b int, init bool) TwoWriter { return NewBloom2W(a, b, init) }
