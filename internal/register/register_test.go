package register

import (
	"fmt"
	"testing"

	"github.com/dsrepro/consensus/internal/linearize"
	"github.com/dsrepro/consensus/internal/sched"
)

func TestSWMRReadsBackWrites(t *testing.T) {
	_, err := sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		r := NewSWMR(0, 10)
		if got := r.Read(p); got != 10 {
			t.Errorf("initial Read = %d, want 10", got)
		}
		r.Write(p, 42)
		if got := r.Read(p); got != 42 {
			t.Errorf("Read after Write = %d, want 42", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSWMROwnerEnforced(t *testing.T) {
	r := NewSWMR(0, 0)
	if r.Owner() != 0 {
		t.Fatalf("Owner = %d, want 0", r.Owner())
	}
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 1 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic on non-owner write")
			}
		}()
		r.Write(p, 5)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSWMRPeekDoesNotStep(t *testing.T) {
	r := NewSWMR(0, 7)
	if r.Peek() != 7 { // no Proc, no step: must not block or panic
		t.Fatal("Peek returned wrong value")
	}
}

func TestToggledSWMRAlternatesBit(t *testing.T) {
	_, err := sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		r := NewToggledSWMR(0, 0)
		prev := r.Read(p)
		for i := 1; i <= 5; i++ {
			r.Write(p, 0) // same payload every time
			cur := r.Read(p)
			if cur.Toggle == prev.Toggle {
				t.Errorf("write %d did not flip toggle bit", i)
			}
			prev = cur
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDirect2WPartiesEnforced(t *testing.T) {
	r := NewDirect2W(0, 2, false)
	_, err := sched.Run(sched.Config{N: 3, Seed: 1}, func(p *sched.Proc) {
		switch p.ID() {
		case 0:
			r.Write(p, true)
		case 2:
			r.Read(p)
		case 1:
			defer func() {
				if recover() == nil {
					t.Error("expected panic for third-party access")
				}
			}()
			r.Read(p)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBloom2WSequentialSemantics(t *testing.T) {
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 0 {
			return
		}
		r := NewBloom2W(0, 1, true)
		if !r.Read(p) {
			t.Error("initial value lost")
		}
		r.Write(p, false)
		if r.Read(p) {
			t.Error("write by party 0 not visible")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBloom2WAlternatingWriters(t *testing.T) {
	r := NewBloom2W(0, 1, false)
	// Round-robin schedule: each pid alternates write(own bit) / read. With
	// the deterministic round-robin adversary semantics are still atomic;
	// here we just check a sequential-ish sanity pattern via one process at
	// a time using distinct runs.
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		for k := 0; k < 4; k++ {
			v := (p.ID()+k)%2 == 0
			r.Write(p, v)
			_ = r.Read(p) // value depends on interleaving; atomicity checked below
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBloom2WThirdPartyPanics(t *testing.T) {
	r := NewBloom2W(0, 1, false)
	_, err := sched.Run(sched.Config{N: 3, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 2 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for third-party access")
			}
		}()
		r.Read(p)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// checkTwoWriterAtomic runs two parties performing random reads and writes on
// one 2W2R register under a random adversary and verifies the recorded
// history linearizes. Values are encoded 0/1.
func checkTwoWriterAtomic(t *testing.T, name string, factory TwoWriterFactory, seeds int) {
	t.Helper()
	for seed := int64(0); seed < int64(seeds); seed++ {
		reg := factory(0, 1, false)
		var rec linearize.Recorder
		_, err := sched.Run(sched.Config{
			N: 2, Seed: seed, Adversary: sched.NewRandom(seed * 31),
		}, func(p *sched.Proc) {
			for k := 0; k < 6; k++ {
				if p.Rand().Intn(2) == 0 {
					v := p.Rand().Intn(2) == 1
					start := p.Now()
					reg.Write(p, v)
					rec.Add(linearize.Op{Proc: p.ID(), IsWrite: true, Val: b2i(v), Start: start, End: p.Now()})
				} else {
					start := p.Now()
					v := reg.Read(p)
					rec.Add(linearize.Op{Proc: p.ID(), Val: b2i(v), Start: start, End: p.Now()})
				}
			}
		})
		if err != nil {
			t.Fatalf("%s seed %d: Run: %v", name, seed, err)
		}
		ok, err := linearize.Check(rec.History(), 0)
		if err != nil {
			t.Fatalf("%s seed %d: Check: %v", name, seed, err)
		}
		if !ok {
			t.Fatalf("%s seed %d: non-linearizable history:\n%v", name, seed, rec.History())
		}
	}
}

func TestDirect2WIsAtomic(t *testing.T) { checkTwoWriterAtomic(t, "direct", DirectFactory, 150) }
func TestBloom2WConstructionIsAtomic(t *testing.T) {
	checkTwoWriterAtomic(t, "bloom", BloomFactory, 300)
}

// TestBloom2WWithReaderProcessIsAtomicForParties exercises interleavings where
// one party mostly reads while the other mostly writes — the access pattern
// the scannable memory's arrow registers actually use (scanner clears and
// reads, writer sets).
func TestBloom2WArrowUsagePattern(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		reg := NewBloom2W(0, 1, false)
		var rec linearize.Recorder
		_, err := sched.Run(sched.Config{
			N: 2, Seed: seed, Adversary: sched.NewRandom(seed*17 + 3),
		}, func(p *sched.Proc) {
			for k := 0; k < 5; k++ {
				if p.ID() == 0 { // scanner: clear then read
					start := p.Now()
					reg.Write(p, false)
					rec.Add(linearize.Op{Proc: 0, IsWrite: true, Val: 0, Start: start, End: p.Now()})
					start = p.Now()
					v := reg.Read(p)
					rec.Add(linearize.Op{Proc: 0, Val: b2i(v), Start: start, End: p.Now()})
				} else { // writer: set
					start := p.Now()
					reg.Write(p, true)
					rec.Add(linearize.Op{Proc: 1, IsWrite: true, Val: 1, Start: start, End: p.Now()})
				}
			}
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		ok, err := linearize.Check(rec.History(), 0)
		if err != nil {
			t.Fatalf("seed %d: Check: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable arrow history:\n%v", seed, rec.History())
		}
	}
}

// TestSWMRConcurrentReadersAtomic records a history with one writer and three
// readers under random schedules and checks linearizability.
func TestSWMRConcurrentReadersAtomic(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		reg := NewSWMR(0, 0)
		var rec linearize.Recorder
		_, err := sched.Run(sched.Config{
			N: 4, Seed: seed, Adversary: sched.NewRandom(seed + 1000),
		}, func(p *sched.Proc) {
			if p.ID() == 0 {
				for k := 1; k <= 5; k++ {
					start := p.Now()
					reg.Write(p, k)
					rec.Add(linearize.Op{Proc: 0, IsWrite: true, Val: k, Start: start, End: p.Now()})
				}
				return
			}
			for k := 0; k < 4; k++ {
				start := p.Now()
				v := reg.Read(p)
				rec.Add(linearize.Op{Proc: p.ID(), Val: v, Start: start, End: p.Now()})
			}
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		ok, err := linearize.Check(rec.History(), 0)
		if err != nil {
			t.Fatalf("seed %d: Check: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable SWMR history:\n%v", seed, rec.History())
		}
	}
}

func TestFreeRunningSWMRIsRaceFree(t *testing.T) {
	reg := NewSWMR(0, 0)
	sched.RunFree(4, 5, func(p *sched.Proc) {
		for k := 0; k < 200; k++ {
			if p.ID() == 0 {
				reg.Write(p, k)
			} else {
				_ = reg.Read(p)
			}
		}
	})
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func ExampleNewSWMR() {
	_, _ = sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		r := NewSWMR(0, "init")
		r.Write(p, "hello")
		fmt.Println(r.Read(p))
	})
	// Output: hello
}
