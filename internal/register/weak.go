package register

import (
	"fmt"
	"sync"

	"github.com/dsrepro/consensus/internal/sched"
)

// This file models the weaker register classes below the atomic registers the
// paper assumes, and Lamport's classical constructions between them — the
// substrate the paper's citations ([L86b], [BL87], [IL88], ...) provide. The
// point of including them is fidelity: the repository demonstrates, under the
// same adversarial scheduler, that
//
//   - a safe register really can return garbage when a read overlaps a write
//     (its operations take multiple scheduler steps, so overlap is real);
//   - suppressing writes that do not change the value turns a safe bit into a
//     regular bit (Lamport);
//   - a unary array of regular bits yields a multivalued regular register
//     (Lamport's construction from "On Interprocess Communication II").
//
// Histories are validated with linearize.CheckRegularSWMR.

// SafeBool is a single-writer safe boolean register. A write takes two
// scheduler steps (begin, commit); a read takes one. A read that lands
// between a write's begin and commit is torn: it returns an arbitrary value
// drawn from the reader's randomness, as the safe-register contract allows.
type SafeBool struct {
	owner   int
	mu      sync.Mutex
	v       bool
	writing bool
}

// NewSafeBool returns a safe boolean register owned by owner.
func NewSafeBool(owner int, init bool) *SafeBool {
	return &SafeBool{owner: owner, v: init}
}

// Write stores v. Two atomic steps; reads between them are torn.
func (r *SafeBool) Write(p *sched.Proc, v bool) {
	if p.ID() != r.owner {
		panic(fmt.Sprintf("register: process %d wrote SafeBool owned by %d", p.ID(), r.owner))
	}
	p.Step()
	r.mu.Lock()
	r.writing = true
	r.mu.Unlock()

	p.Step()
	r.mu.Lock()
	r.v = v
	r.writing = false
	r.mu.Unlock()
}

// Read returns the stored value, or an arbitrary value if it overlaps a
// write. One atomic step.
func (r *SafeBool) Read(p *sched.Proc) bool {
	p.Step()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.writing {
		return p.Rand().Intn(2) == 1 // torn read: anything goes
	}
	return r.v
}

// RegularBool is Lamport's regular boolean register built from a safe one:
// the writer suppresses writes that do not change the value, so every
// overlapping read's arbitrary bit is necessarily either the old or the new
// value — exactly the regular contract.
type RegularBool struct {
	safe *SafeBool
	last bool // writer-local cache of the stored value
}

// NewRegularBool returns a regular boolean register owned by owner.
func NewRegularBool(owner int, init bool) *RegularBool {
	return &RegularBool{safe: NewSafeBool(owner, init), last: init}
}

// Write stores v: zero steps if the value is unchanged, two otherwise.
func (r *RegularBool) Write(p *sched.Proc, v bool) {
	if v == r.last {
		return
	}
	r.safe.Write(p, v)
	r.last = v
}

// Read returns the current or a concurrently-written value. One atomic step.
func (r *RegularBool) Read(p *sched.Proc) bool { return r.safe.Read(p) }

// RegularInt is Lamport's m-valued regular register built from a unary array
// of regular bits: writing v sets bit v and then clears bits v-1 .. 0 in
// descending order; a read scans upward and returns the index of the first
// set bit. Bits above the latest written value may stay stale-set, which is
// harmless: a reader that passes the current value's bit can only stop at a
// bit set by an older (then-current) or concurrent write — regular behaviour.
type RegularInt struct {
	owner int
	m     int
	bits  []*RegularBool
}

// NewRegularInt returns a regular register over values 0..m-1, owned by
// owner, initialized to init.
func NewRegularInt(owner, m, init int) (*RegularInt, error) {
	if m < 2 {
		return nil, fmt.Errorf("register: RegularInt needs m >= 2, got %d", m)
	}
	if init < 0 || init >= m {
		return nil, fmt.Errorf("register: init %d outside [0..%d)", init, m)
	}
	r := &RegularInt{owner: owner, m: m, bits: make([]*RegularBool, m)}
	for i := range r.bits {
		r.bits[i] = NewRegularBool(owner, i == init)
	}
	return r, nil
}

// Write stores v in at most 2·(v+1) atomic steps.
func (r *RegularInt) Write(p *sched.Proc, v int) {
	if v < 0 || v >= r.m {
		panic(fmt.Sprintf("register: RegularInt write %d outside [0..%d)", v, r.m))
	}
	r.bits[v].Write(p, true)
	for j := v - 1; j >= 0; j-- {
		r.bits[j].Write(p, false)
	}
}

// Read scans upward and returns the first set bit's index, in at most m
// atomic steps. If every bit reads false (possible only under torn
// interleavings the construction's proof excludes for regular sub-bits), the
// maximal value is returned.
func (r *RegularInt) Read(p *sched.Proc) int {
	for j := 0; j < r.m; j++ {
		if r.bits[j].Read(p) {
			return j
		}
	}
	return r.m - 1
}
