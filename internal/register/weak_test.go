package register

import (
	"testing"

	"github.com/dsrepro/consensus/internal/linearize"
	"github.com/dsrepro/consensus/internal/sched"
)

// recordWeakHistory drives one writer (pid 0) and one reader (pid 1) over a
// register with Write(p, int)/Read(p) int semantics and records the history.
type intReg interface {
	write(p *sched.Proc, v int)
	read(p *sched.Proc) int
}

type safeAsInt struct{ r *SafeBool }

func (a safeAsInt) write(p *sched.Proc, v int) { a.r.Write(p, v == 1) }
func (a safeAsInt) read(p *sched.Proc) int     { return b2i(a.r.Read(p)) }

type regularAsInt struct{ r *RegularBool }

func (a regularAsInt) write(p *sched.Proc, v int) { a.r.Write(p, v == 1) }
func (a regularAsInt) read(p *sched.Proc) int     { return b2i(a.r.Read(p)) }

type regularIntAsInt struct{ r *RegularInt }

func (a regularIntAsInt) write(p *sched.Proc, v int) { a.r.Write(p, v) }
func (a regularIntAsInt) read(p *sched.Proc) int     { return a.r.Read(p) }

func recordWeakHistory(t *testing.T, reg intReg, seed int64, writeVals []int, reads int) linearize.History {
	t.Helper()
	var rec linearize.Recorder
	_, err := sched.Run(sched.Config{N: 2, Seed: seed, Adversary: sched.NewRandom(seed * 131)}, func(p *sched.Proc) {
		if p.ID() == 0 {
			for _, v := range writeVals {
				start := p.Now()
				reg.write(p, v)
				end := p.Now()
				if end < start {
					end = start
				}
				rec.Add(linearize.Op{Proc: 0, IsWrite: true, Val: v, Start: start, End: end})
			}
			return
		}
		for k := 0; k < reads; k++ {
			start := p.Now()
			v := reg.read(p)
			rec.Add(linearize.Op{Proc: 1, Val: v, Start: start, End: p.Now()})
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rec.History()
}

// filterRealWrites drops zero-duration writes (suppressed no-op writes of
// RegularBool record Start==End with no steps; they are not operations).
func filterRealWrites(h linearize.History) linearize.History {
	var out linearize.History
	for _, o := range h {
		if o.IsWrite && o.Start == o.End {
			continue
		}
		out = append(out, o)
	}
	return out
}

func TestSafeBoolViolatesRegularityEventually(t *testing.T) {
	// Writer repeatedly writes true (no value change); torn reads may return
	// false — a regularity violation the checker must catch on some seed.
	violated := false
	for seed := int64(0); seed < 400 && !violated; seed++ {
		reg := NewSafeBool(0, true)
		h := recordWeakHistory(t, safeAsInt{reg}, seed, []int{1, 1, 1, 1, 1, 1}, 8)
		ok, err := linearize.CheckRegularSWMR(h, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			violated = true
		}
	}
	if !violated {
		t.Fatal("safe register never produced a torn read over 400 adversarial schedules (model too strong)")
	}
}

func TestSafeBoolIsRegularWhenValuesChange(t *testing.T) {
	// For a *bit*, a torn read during a value-changing write returns one of
	// {false,true} = {old,new}: no regularity violation is possible.
	for seed := int64(0); seed < 100; seed++ {
		reg := NewSafeBool(0, false)
		h := recordWeakHistory(t, safeAsInt{reg}, seed, []int{1, 0, 1, 0, 1}, 8)
		ok, err := linearize.CheckRegularSWMR(h, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: alternating writes to a safe bit violated regularity:\n%v", seed, h)
		}
	}
}

func TestRegularBoolIsRegular(t *testing.T) {
	// Lamport: suppressing no-op writes makes the safe bit regular, even with
	// repeated same-value writes.
	for seed := int64(0); seed < 300; seed++ {
		reg := NewRegularBool(0, true)
		h := recordWeakHistory(t, regularAsInt{reg}, seed, []int{1, 1, 0, 0, 1, 1, 1}, 8)
		ok, err := linearize.CheckRegularSWMR(filterRealWrites(h), 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: RegularBool violated regularity:\n%v", seed, h)
		}
	}
}

func TestRegularIntSequential(t *testing.T) {
	_, err := sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		reg, err := NewRegularInt(0, 5, 3)
		if err != nil {
			t.Errorf("NewRegularInt: %v", err)
			return
		}
		if got := reg.Read(p); got != 3 {
			t.Errorf("initial Read = %d, want 3", got)
		}
		for _, v := range []int{0, 4, 2, 2, 1} {
			reg.Write(p, v)
			if got := reg.Read(p); got != v {
				t.Errorf("Read after Write(%d) = %d", v, got)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRegularIntIsRegularUnderConcurrency(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		reg, err := NewRegularInt(0, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		h := recordWeakHistory(t, regularIntAsInt{reg}, seed, []int{2, 3, 1, 0, 3, 2}, 8)
		ok, err := linearize.CheckRegularSWMR(filterRealWrites(h), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: RegularInt violated regularity:\n%v", seed, h)
		}
	}
}

func TestRegularIntValidation(t *testing.T) {
	if _, err := NewRegularInt(0, 1, 0); err == nil {
		t.Fatal("expected error for m < 2")
	}
	if _, err := NewRegularInt(0, 3, 7); err == nil {
		t.Fatal("expected error for init out of range")
	}
	reg, err := NewRegularInt(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sched.Run(sched.Config{N: 1, Seed: 1}, func(p *sched.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range write")
			}
		}()
		reg.Write(p, 9)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSafeBoolOwnerEnforced(t *testing.T) {
	reg := NewSafeBool(0, false)
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 1 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic on non-owner write")
			}
		}()
		reg.Write(p, true)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
