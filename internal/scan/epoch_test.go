package scan

import (
	"testing"

	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

// The tests in this file pin the dirty-bit epoch retry path (Arrow.SetEpoch):
// it must satisfy the same P1–P3 properties as the classic double collect —
// under sequential and commuting dispatch, over direct and Bloom arrow
// registers — while costing strictly less on contended retries.

// runWorkloadCommuting is runWorkload under the commuting-dispatch engine.
func runWorkloadCommuting(t *testing.T, mem Memory[int], n, rounds int, seed int64, adv sched.Adversary) *HistoryRec {
	t.Helper()
	h := &HistoryRec{N: n}
	written := make([]int, n)
	_, err := sched.Run(sched.Config{N: n, Seed: seed, Adversary: adv, MaxSteps: 2_000_000, Commuting: true}, func(p *sched.Proc) {
		i := p.ID()
		for k := 0; k < rounds; k++ {
			start := p.Now()
			view := mem.Scan(p)
			end := p.Now()
			rec := ScanRec{Proc: i, View: append([]int(nil), view...), Start: start, End: end}
			rec.View[i] = written[i]
			h.Scans = append(h.Scans, rec)

			written[i]++
			start = p.Now()
			mem.Write(p, written[i])
			h.Writes = append(h.Writes, WriteRec{Proc: i, Seq: written[i], Start: start, End: p.Now()})
		}
	})
	if err != nil {
		t.Fatalf("workload run: %v", err)
	}
	return h
}

func TestEpochArrowSatisfiesP123UnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		mem := NewArrow[int](3, register.DirectFactory)
		mem.SetEpoch(true)
		h := runWorkload(t, mem, 3, 4, seed, sched.NewRandom(seed*7+1))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestEpochArrowSatisfiesP123UnderLagger(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mem := NewArrow[int](4, register.DirectFactory)
		mem.SetEpoch(true)
		h := runWorkload(t, mem, 4, 3, seed, sched.NewLagger(0, 25, seed+2))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestEpochArrowOverBloomSatisfiesP123(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		mem := NewArrow[int](3, register.BloomFactory)
		mem.SetEpoch(true)
		h := runWorkload(t, mem, 3, 3, seed, sched.NewRandom(seed*13+5))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestEpochArrowUnderCommutingDispatch drives the pairing the knob ships as:
// epoch scans executing on the commuting engine, with batches actually
// forming across the scanners' and writers' register footprints.
func TestEpochArrowUnderCommutingDispatch(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		mem := NewArrow[int](4, register.DirectFactory)
		mem.SetEpoch(true)
		h := runWorkloadCommuting(t, mem, 4, 4, seed, sched.NewRandom(seed*7+1))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestEpochCleanFirstPassStepIdentical: with no contention, a scan costs the
// same 4(n-1) steps on both paths — the epoch machinery only changes retry
// passes.
func TestEpochCleanFirstPassStepIdentical(t *testing.T) {
	for _, epoch := range []bool{false, true} {
		const n = 5
		mem := NewArrow[int](n, register.DirectFactory)
		mem.SetEpoch(epoch)
		var steps int64
		_, err := sched.Run(sched.Config{N: n, Seed: 1}, func(p *sched.Proc) {
			if p.ID() != 0 {
				return
			}
			before := p.Steps()
			mem.Scan(p)
			steps = p.Steps() - before
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(4 * (n - 1)); steps != want {
			t.Fatalf("epoch=%v: uncontended scan cost %d steps, want %d", epoch, steps, want)
		}
	}
}

// TestEpochRetriesCostLess: under a write-heavy contended schedule, the epoch
// path must spend fewer total steps than the classic path for the same
// workload shape. Both runs are deterministic; the margin is generous so the
// pin survives incidental schedule drift.
func TestEpochRetriesCostLess(t *testing.T) {
	total := func(epoch bool) int64 {
		var sum int64
		for seed := int64(0); seed < 10; seed++ {
			mem := NewArrow[int](6, register.DirectFactory)
			mem.SetEpoch(epoch)
			res, err := sched.Run(sched.Config{N: 6, Seed: seed, Adversary: sched.NewRandom(seed*3 + 1), MaxSteps: 2_000_000}, func(p *sched.Proc) {
				for k := 0; k < 6; k++ {
					mem.Scan(p)
					mem.Write(p, k)
				}
			})
			if err != nil {
				t.Fatalf("seed %d epoch=%v: %v", seed, epoch, err)
			}
			sum += res.Steps
		}
		return sum
	}
	classic, epoch := total(false), total(true)
	if epoch >= classic {
		t.Fatalf("epoch path not cheaper under contention: epoch=%d classic=%d total steps", epoch, classic)
	}
	t.Logf("contended steps: classic=%d epoch=%d (%.1f%% saved)", classic, epoch,
		100*(1-float64(epoch)/float64(classic)))
}

// TestEpochTornScanCaughtByHandshakeProbe: the fault injection that returns a
// torn double collect as clean must still be caught on the epoch path — the
// handshake audit independently re-compares each register's two window reads,
// so any pass whose toggle mismatch was suppressed fires the probe.
func TestEpochTornScanCaughtByHandshakeProbe(t *testing.T) {
	MutTornScan.Store(true)
	defer MutTornScan.Store(false)
	var fired int64
	for seed := int64(0); seed < 50 && fired == 0; seed++ {
		mem := NewArrow[int](4, register.DirectFactory)
		mem.SetEpoch(true)
		mon := audit.New(audit.Options{SampleEvery: 1})
		mem.SetMonitor(mon)
		runWorkload(t, mem, 4, 6, seed, sched.NewRandom(seed*3+7))
		fired += mon.Violations()["scan.handshake"]
	}
	if fired == 0 {
		t.Fatal("torn-scan injection never fired scan.handshake in 50 epoch-mode schedules; the epoch path is masking tears the probe should see")
	}
}
