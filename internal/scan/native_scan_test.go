package scan

import (
	"runtime"
	"testing"

	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

// TestNativeScanSnapshotsComparable is the linearizability oracle for the
// native-mode scan stack: every process bumps a monotone counter in its own
// slot and scans between bumps, free-running on the native substrate with
// randomized preemption. Any two linearizable snapshots of monotone values
// must be componentwise comparable — an incomparable pair would prove the
// arrow handshake returned a view that was never the memory's state at any
// instant. (This property held while diagnosing a native strip.graph
// firing, which is how the blame landed on scan-to-write staleness rather
// than on the scan itself; see audit.Monitor.AuditGraphs.)
func TestNativeScanSnapshotsComparable(t *testing.T) {
	const n = 8
	trials, writes := 20, 150
	if testing.Short() {
		trials, writes = 5, 60
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for trial := 0; trial < trials; trial++ {
		mem := NewArrow[int](n, register.DirectFactory)
		mem.SetNative(true)
		views := make([][][]int, n)
		sub := sched.NewNative(sched.NativeOptions{PreemptEvery: 3, PreemptSeed: int64(trial + 1)})
		_, err := sub.Run(sched.Config{N: n, Seed: int64(trial)}, func(p *sched.Proc) {
			i := p.ID()
			for c := 1; c <= writes; c++ {
				mem.Write(p, c)
				v := mem.Scan(p)
				views[i] = append(views[i], append([]int(nil), v...))
			}
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var all [][]int
		for i := range views {
			all = append(all, views[i]...)
		}
		for a := 0; a < len(all); a++ {
			for b := a + 1; b < len(all); b++ {
				le, ge := true, true
				for k := 0; k < n; k++ {
					if all[a][k] < all[b][k] {
						ge = false
					}
					if all[a][k] > all[b][k] {
						le = false
					}
				}
				if !le && !ge {
					t.Fatalf("trial %d: incomparable snapshots %v vs %v", trial, all[a], all[b])
				}
			}
		}
	}
}
