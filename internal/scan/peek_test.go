package scan

import (
	"testing"

	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

func TestArrowPeekSlotSeesLatestWrite(t *testing.T) {
	mem := NewArrow[int](2, register.DirectFactory)
	if got := mem.PeekSlot(0); got != 0 {
		t.Fatalf("initial PeekSlot = %d", got)
	}
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() == 0 {
			mem.Write(p, 41)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.PeekSlot(0); got != 41 {
		t.Fatalf("PeekSlot = %d, want 41", got)
	}
	if got := mem.PeekSlot(1); got != 0 {
		t.Fatalf("unwritten PeekSlot = %d, want 0", got)
	}
}

func TestSeqSnapPeekSlotSeesLatestWrite(t *testing.T) {
	mem := NewSeqSnap[string](2)
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() == 1 {
			mem.Write(p, "x")
			mem.Write(p, "y")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.PeekSlot(1); got != "y" {
		t.Fatalf("PeekSlot = %q, want y", got)
	}
}
