package scan

import "fmt"

// This file contains a history-based checker for the paper's three scannable
// memory properties (§2.1). Tests record every write and scan with global
// step timestamps and ask the checker whether P1 (regularity), P2 (snapshot)
// and P3 (scan serializability) held.
//
// The paper's global-time model: operation a precedes b (a → b) iff a.End <
// b.Start; a can affect b iff not (b → a). A write W by process j
// "potentially coexists" with an operation O iff W can affect O and no later
// write W' by j satisfies W → W' → O (Definition 2.1). Because a process's
// writes are sequential, only j's next write after W needs checking.

// WriteRec records one write operation execution. Seq is the 1-based index of
// this write among the writes of Proc; Seq 0 is reserved for the virtual
// initial write (which precedes everything).
type WriteRec struct {
	Proc  int
	Seq   int
	Start int64
	End   int64
}

// ScanRec records one scan operation execution. View[j] is the Seq of the
// write by process j whose value the scan returned (0 = initial value).
type ScanRec struct {
	Proc  int
	View  []int
	Start int64
	End   int64
}

// HistoryRec is a complete recorded execution over one scannable memory.
type HistoryRec struct {
	N      int
	Writes []WriteRec
	Scans  []ScanRec
}

// writeTable indexes writes by (proc, seq) and fabricates the virtual initial
// write (seq 0) with an interval preceding all operations.
type writeTable struct {
	byProc map[int][]WriteRec // sorted by Seq, Seq k at index k-1
}

func newWriteTable(h *HistoryRec) (*writeTable, error) {
	t := &writeTable{byProc: make(map[int][]WriteRec)}
	for _, w := range h.Writes {
		t.byProc[w.Proc] = append(t.byProc[w.Proc], w)
	}
	for proc, ws := range t.byProc {
		for k, w := range ws {
			if w.Seq != k+1 {
				return nil, fmt.Errorf("scan: writes of process %d not recorded in Seq order (got Seq %d at position %d)", proc, w.Seq, k)
			}
			// End == next Start is adjacency under the step-clock convention
			// (Start is sampled before the op's first step), not overlap.
			if k > 0 && ws[k-1].End > w.Start {
				return nil, fmt.Errorf("scan: writes %d and %d of process %d overlap", k, k+1, proc)
			}
		}
	}
	return t, nil
}

// get returns the write (proc, seq). Seq 0 yields the virtual initial write.
func (t *writeTable) get(proc, seq int) (WriteRec, error) {
	if seq == 0 {
		return WriteRec{Proc: proc, Seq: 0, Start: -1, End: -1}, nil
	}
	ws := t.byProc[proc]
	if seq < 1 || seq > len(ws) {
		return WriteRec{}, fmt.Errorf("scan: scan returned nonexistent write (proc %d, seq %d, have %d)", proc, seq, len(ws))
	}
	return ws[seq-1], nil
}

// next returns the write following (proc, seq), if any.
func (t *writeTable) next(proc, seq int) (WriteRec, bool) {
	ws := t.byProc[proc]
	if seq < len(ws) {
		return ws[seq], true
	}
	return WriteRec{}, false
}

// potentiallyCoexists reports Definition 2.1 for write W versus an operation
// interval [oStart, oEnd].
func (t *writeTable) potentiallyCoexists(w WriteRec, oStart, oEnd int64) bool {
	if w.Start > oEnd { // o precedes w: w cannot affect o
		return false
	}
	if nw, ok := t.next(w.Proc, w.Seq); ok && nw.End < oStart {
		return false // a later write by the same process fully precedes o
	}
	return true
}

// CheckP1 verifies regularity: every value a scan returns was written by a
// write that potentially coexisted with the scan.
func CheckP1(h *HistoryRec) error {
	t, err := newWriteTable(h)
	if err != nil {
		return err
	}
	for si, s := range h.Scans {
		if len(s.View) != h.N {
			return fmt.Errorf("scan: scan %d has view of length %d, want %d", si, len(s.View), h.N)
		}
		for j, seq := range s.View {
			w, err := t.get(j, seq)
			if err != nil {
				return fmt.Errorf("scan %d (proc %d): %w", si, s.Proc, err)
			}
			if !t.potentiallyCoexists(w, s.Start, s.End) {
				return fmt.Errorf("P1 violated: scan %d (proc %d, [%d,%d]) returned write (proc %d, seq %d, [%d,%d]) that did not potentially coexist",
					si, s.Proc, s.Start, s.End, j, seq, w.Start, w.End)
			}
		}
	}
	return nil
}

// CheckP2 verifies the snapshot property: any two writes whose values appear
// in the same scan potentially coexist in at least one direction.
func CheckP2(h *HistoryRec) error {
	t, err := newWriteTable(h)
	if err != nil {
		return err
	}
	for si, s := range h.Scans {
		for j := 0; j < len(s.View); j++ {
			for k := j + 1; k < len(s.View); k++ {
				wj, err := t.get(j, s.View[j])
				if err != nil {
					return err
				}
				wk, err := t.get(k, s.View[k])
				if err != nil {
					return err
				}
				// Virtual initial writes (Seq 0) participate too: their
				// interval precedes everything and their successor is the
				// process's first real write.
				if !t.potentiallyCoexists(wj, wk.Start, wk.End) && !t.potentiallyCoexists(wk, wj.Start, wj.End) {
					return fmt.Errorf("P2 violated: scan %d (proc %d) returned writes (proc %d seq %d [%d,%d]) and (proc %d seq %d [%d,%d]) that do not potentially coexist in either direction",
						si, s.Proc, j, wj.Seq, wj.Start, wj.End, k, wk.Seq, wk.Start, wk.End)
				}
			}
		}
	}
	return nil
}

// CheckP3 verifies scan serializability: the views of any two scans are
// comparable under the componentwise write-index order.
func CheckP3(h *HistoryRec) error {
	for a := 0; a < len(h.Scans); a++ {
		for b := a + 1; b < len(h.Scans); b++ {
			sa, sb := h.Scans[a], h.Scans[b]
			aLEb, bLEa := true, true
			for j := 0; j < h.N; j++ {
				if sa.View[j] > sb.View[j] {
					aLEb = false
				}
				if sb.View[j] > sa.View[j] {
					bLEa = false
				}
			}
			if !aLEb && !bLEa {
				return fmt.Errorf("P3 violated: scans %d (proc %d, view %v) and %d (proc %d, view %v) are incomparable",
					a, sa.Proc, sa.View, b, sb.Proc, sb.View)
			}
		}
	}
	return nil
}

// CheckAll runs P1, P2 and P3 and returns the first violation.
func CheckAll(h *HistoryRec) error {
	if err := CheckP1(h); err != nil {
		return err
	}
	if err := CheckP2(h); err != nil {
		return err
	}
	return CheckP3(h)
}
