// Package scan implements the paper's §2 scannable memory: an n-slot shared
// abstract data type with per-process write and a scan returning a snapshot
// view satisfying regularity (P1), snapshot (P2), and scan serializability
// (P3).
//
// Three implementations are provided:
//
//   - Arrow: the paper's bounded construction from SWMR registers with toggle
//     bits plus pairs of 2W2R "arrow" registers and a double collect.
//   - SeqSnap: an unbounded baseline that tags every write with a monotone
//     sequence number and double-collects until clean; it satisfies P1–P3 but
//     its registers grow without bound (the behaviour the paper eliminates).
//   - Collect: a single-collect baseline that is only regular — it satisfies
//     P1 but can violate P2/P3; it exists as a negative control for the
//     property checker in properties.go.
//
// As in the paper, write is wait-free while scan may retry as long as new
// writes keep completing (it never waits for other scans).
package scan

import (
	"fmt"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/audit"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

// MutTornScan is the scan layer's fault injector: when enabled, Arrow.Scan
// ignores the toggle-bit comparison between its two collects, so a scan
// overlapped by exactly one write returns a torn double collect as if it
// were clean — the bug ProbeScanHandshake exists to catch. Registered as
// "scan.torn".
var MutTornScan atomic.Bool

func init() { audit.RegisterMutation("scan.torn", &MutTornScan) }

// Memory is the scannable-memory abstract data type shared by n processes.
// Slot i is written only by process i; Scan returns one value per slot.
type Memory[T any] interface {
	// Write stores v in the calling process's slot. Wait-free.
	Write(p *sched.Proc, v T)
	// Scan returns a view of all n slots (index = pid). Slot p.ID() is the
	// value the caller last wrote (zero value of T before any write).
	//
	// The returned slice is a per-process buffer owned by the memory: it is
	// valid (and may be mutated by the caller) only until the caller's next
	// Scan on the same memory, which reuses it. Callers retaining a view
	// across scans must copy it first.
	Scan(p *sched.Proc) []T
	// N returns the number of slots.
	N() int
}

// Arrow is the paper's bounded scannable memory (§2.2).
//
// For every ordered pair (i, j), arrows[i][j] is a 2W2R register written by
// scanner i (clearing it to false) and writer j (setting it to true). A scan
// by i clears its arrows, collects all values twice, re-reads its arrows, and
// retries if any arrow was set or any toggle bit changed between the two
// collects. A write by j first sets the arrow in every potential scanner's
// register, then writes its value.
//
// Comparing only the toggle bits between the two collects is sufficient: a
// single intervening write flips the toggle, and two or more intervening
// writes necessarily set the scanner's arrow after it was cleared (the second
// write's arrow-set follows the first write's value-write, which follows the
// scanner's clear).
type Arrow[T any] struct {
	n      int
	sink   *obs.Sink
	mon    *audit.Monitor
	prof   *prof.Profiler
	vals   []*register.ToggledSWMR[T]
	arrows [][]register.TwoWriter // arrows[i][j], i != j
	local  []T                    // local[i]: last value written by i (owner-only access)

	// c1/c2/view[i] are pid i's double-collect and result buffers, owned by
	// i's goroutine so a steady-state scan performs zero allocations (the
	// returned view is reused; see Memory.Scan).
	c1, c2 [][]register.Toggled[T]
	view   [][]T

	retries []pad.Int64 // per-pid scan retry counts (metrics)

	// epoch selects the dirty-bit retry path (see SetEpoch / scanEpoch). The
	// per-pid scratch below is allocated on first enable and owned by each
	// pid's goroutine, like c1/c2.
	epoch   bool
	epTrip  [][]bool  // epTrip[i][j]: register j tripped in i's last pass
	epArrow [][]bool  // epArrow[i][j]: arrow (i,j) observed set, needs re-clearing
	epHot   [][]int32 // epHot[i][j]: consecutive passes j has tripped
}

// NewArrow builds an Arrow memory for n processes using factory (direct
// atomic 2W2R registers or Bloom's construction) for the arrow registers.
func NewArrow[T any](n int, factory register.TwoWriterFactory) *Arrow[T] {
	a := &Arrow[T]{
		n:       n,
		vals:    make([]*register.ToggledSWMR[T], n),
		arrows:  make([][]register.TwoWriter, n),
		local:   make([]T, n),
		c1:      make([][]register.Toggled[T], n),
		c2:      make([][]register.Toggled[T], n),
		view:    make([][]T, n),
		retries: make([]pad.Int64, n),
	}
	var zero T
	for i := 0; i < n; i++ {
		a.vals[i] = register.NewToggledSWMR(i, zero)
		a.arrows[i] = make([]register.TwoWriter, n)
		a.c1[i] = make([]register.Toggled[T], n)
		a.c2[i] = make([]register.Toggled[T], n)
		a.view[i] = make([]T, n)
		for j := 0; j < n; j++ {
			if i != j {
				a.arrows[i][j] = factory(i, j, false)
			}
		}
	}
	return a
}

// Reset restores the memory to its initial state (zero values, cleared
// toggles and arrows) for instance pooling, reporting whether every arrow
// register supported it. Call only between runs.
func (a *Arrow[T]) Reset() bool {
	var zero T
	for i := 0; i < a.n; i++ {
		a.vals[i].Reset(zero)
		a.local[i] = zero
		a.retries[i].Store(0)
		for j := 0; j < a.n; j++ {
			if i == j {
				continue
			}
			r, ok := a.arrows[i][j].(register.TwoWriterResetter)
			if !ok {
				return false
			}
			r.Reset(false)
		}
	}
	return true
}

// N implements Memory.
func (a *Arrow[T]) N() int { return a.n }

// SetSink installs the observability sink on the memory and every register
// beneath it.
func (a *Arrow[T]) SetSink(s *obs.Sink) {
	a.sink = s
	for i := 0; i < a.n; i++ {
		a.vals[i].SetSink(s)
		for j := 0; j < a.n; j++ {
			if i != j {
				if ss, ok := a.arrows[i][j].(register.SinkSetter); ok {
					ss.SetSink(s)
				}
			}
		}
	}
}

// SetNative switches every underlying register's storage mode for the
// chosen substrate (see register.NativeSetter), propagating exactly like
// SetSink. The per-pid scratch buffers need no change: each is owned by one
// process's goroutine on either substrate.
func (a *Arrow[T]) SetNative(on bool) {
	for i := 0; i < a.n; i++ {
		a.vals[i].SetNative(on)
		for j := 0; j < a.n; j++ {
			if i != j {
				if ns, ok := a.arrows[i][j].(register.NativeSetter); ok {
					ns.SetNative(on)
				}
			}
		}
	}
}

// SetMonitor attaches the invariant monitor to the memory (the scan
// handshake probe) and to every value register beneath it (the sampled
// register-regularity probe). A nil m detaches — ExecuteProto always calls
// it so pooled instances never carry a stale monitor.
func (a *Arrow[T]) SetMonitor(m *audit.Monitor) {
	a.mon = m
	for i := range a.vals {
		a.vals[i].SetMonitor(m, i)
	}
}

// SetProfiler attaches the step profiler (nil detaches — ExecuteProto
// always calls it so pooled instances never carry a stale profiler). The
// profiler is strictly passive; every hook site is guarded by Enabled().
func (a *Arrow[T]) SetProfiler(f *prof.Profiler) { a.prof = f }

// SetSpace installs the space meter down the register stack, attributing the
// n value registers to the register layer and the snapshot machinery — one
// toggle bit per value register plus the n(n-1) arrow registers — to the
// scan layer (nil detaches; see register.SpaceSetter). The payload width of
// the values themselves is declared by the protocol that owns the entries.
func (a *Arrow[T]) SetSpace(m *space.Meter, _ space.Layer) {
	for i := 0; i < a.n; i++ {
		a.vals[i].SetSpace(m, space.LayerRegister)
		for j := 0; j < a.n; j++ {
			if i != j {
				if sp, ok := a.arrows[i][j].(register.SpaceSetter); ok {
					sp.SetSpace(m, space.LayerScan)
				}
			}
		}
	}
	m.AddWords(space.LayerScan, int64(a.n)) // toggle bits
	m.DeclareDomain(space.LayerScan, 2)
}

// SetEpoch selects (or deselects) the dirty-bit epoch retry path for every
// scanner. It changes only the *cost* of retrying scans — views, events and
// probe verdicts keep their semantics — but it does change step counts on
// retry, so it is opt-in: ExecuteProto enables it together with commuting
// dispatch and leaves the default path byte-identical to previous releases.
// Idempotent; call only between runs (pooled instances are re-armed like
// SetNative).
func (a *Arrow[T]) SetEpoch(on bool) {
	a.epoch = on
	if on && a.epTrip == nil {
		a.epTrip = make([][]bool, a.n)
		a.epArrow = make([][]bool, a.n)
		a.epHot = make([][]int32, a.n)
		for i := 0; i < a.n; i++ {
			a.epTrip[i] = make([]bool, a.n)
			a.epArrow[i] = make([]bool, a.n)
			a.epHot[i] = make([]int32, a.n)
		}
	}
}

// Write implements Memory: set the arrow in every other process's scanner
// register, then publish the value. Wait-free; n atomic steps (2n with Bloom
// arrow registers).
func (a *Arrow[T]) Write(p *sched.Proc, v T) {
	i := p.ID()
	for j := 0; j < a.n; j++ {
		if j != i {
			a.arrows[j][i].Write(p, true)
		}
	}
	a.vals[i].Write(p, v)
	a.local[i] = v
	if a.prof.Enabled() {
		a.prof.NoteWrite(i, p.Now(), p.Steps())
	}
}

// Scan implements Memory: clear arrows, double-collect, re-read arrows, retry
// until a clean pass. Not wait-free, but lock-free in the paper's sense: a
// retry implies some other process completed a new write.
func (a *Arrow[T]) Scan(p *sched.Proc) []T {
	if a.epoch {
		return a.scanEpoch(p)
	}
	i := p.ID()
	v1, v2, out := a.c1[i], a.c2[i], a.view[i]
	var tries, passStart int64
	for {
		if a.prof.Enabled() {
			passStart = p.Steps()
		}
		for j := 0; j < a.n; j++ {
			if j != i {
				a.arrows[i][j].Write(p, false)
			}
		}
		for j := 0; j < a.n; j++ {
			if j != i {
				v1[j] = a.vals[j].Read(p)
			}
		}
		// Second collect, fused with the toggle comparison and the view copy:
		// both are register-local (no scheduler step), so folding them in here
		// makes a clean scan one pass over the collect buffers instead of
		// re-walking them in the check loop and the copy-out loop.
		firstMismatch := a.n
		for j := 0; j < a.n; j++ {
			if j == i {
				continue
			}
			v2[j] = a.vals[j].Read(p)
			out[j] = v2[j].Val
			if firstMismatch == a.n && v1[j].Toggle != v2[j].Toggle {
				firstMismatch = j
			}
		}
		if MutTornScan.Load() {
			firstMismatch = a.n // fault injection: ignore the handshake
		}
		// Arrow re-reads are scheduler steps, so they must happen for exactly
		// the prefix the unfused loop would have checked: every j up to and
		// including the first dirty slot (set arrow or toggle mismatch). The
		// first dirty slot is also the blame culprit: the arrow (or toggle)
		// was tripped by writer j's register.
		clean := true
		dirtyAt, dirtyArrow := -1, false
		for j := 0; j < a.n && clean; j++ {
			if j == i {
				continue
			}
			set := a.arrows[i][j].Read(p)
			if set || j == firstMismatch {
				clean = false
				dirtyAt, dirtyArrow = j, set
			}
		}
		if clean {
			if a.mon.Enabled() {
				// Independent handshake audit: re-compare the two collects'
				// toggle bits (register-local, no scheduler steps). A returning
				// scan whose collects disagree is a torn double collect.
				firstBad := -1
				for j := 0; j < a.n; j++ {
					if j != i && v1[j].Toggle != v2[j].Toggle {
						firstBad = j
						break
					}
				}
				a.mon.ScanHandshake(p.Now(), i, firstBad)
			}
			a.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanClean, Value: tries})
			a.sink.Observe(obs.HistScanRetries, tries)
			out[i] = a.local[i]
			if a.prof.Enabled() {
				a.prof.CleanScan(i, p.Now(), p.Steps())
			}
			return out
		}
		a.retries[i].Add(1)
		tries++
		a.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanRetry, Value: tries})
		if a.prof.Enabled() {
			reason := prof.BlameToggle
			if dirtyArrow {
				reason = prof.BlameArrow
			}
			a.prof.ScanRetry(i, dirtyAt, reason, p.Steps()-passStart, p.Now())
		}
	}
}

// Epoch-path tuning: hotTrips is how many consecutive passes a register must
// trip before the scanner tight-loops on it, and maxHotSettle caps the extra
// settling reads per hot register per pass (each costs one step, so the cap
// bounds the worst case at maxHotSettle·k extra steps for k hot registers).
const (
	hotTrips     = 2
	maxHotSettle = 8
)

// scanEpoch is the dirty-bit retry path (profile-guided: the n=8 blame
// matrix attributes 57.9% of steps to scan-retry burn concentrated on two
// registers, and the classic retry re-pays 4(n-1) steps to re-check n-3
// registers that never moved). Each failed pass records exactly which
// registers tripped — by toggle mismatch or set arrow — and the retry
// re-establishes a first read only for those: it re-clears their arrows,
// re-reads them (tight-looping on persistently hot registers until their
// toggle settles, the backoff-free path), and then runs one *unified* read
// pass over all n-1 registers followed by a full arrow check.
//
// Soundness (the P1–P3 argument, spelled out in DESIGN.md §16): for every
// register j the pair (v1[j], v2[j]) is a valid per-register double collect —
// both reads happen after arrow (i,j) was last cleared, and the final arrow
// check reads it clear, so at most one write of j completed between them and
// the toggle comparison is decisive (P1). All v1 reads precede the unified
// pass and all v2 reads are inside it, so the instant U just before the
// unified pass's first read lies in every register's constancy window: the
// view is the memory state at U, a true snapshot (P2), and scans linearize at
// their U instants (P3). The first pass is step-identical to the classic path
// on success; only retry passes cost differently (≈ 2(n-1)+2k instead of
// 4(n-1) for k tripped registers).
func (a *Arrow[T]) scanEpoch(p *sched.Proc) []T {
	i := p.ID()
	v1, v2, out := a.c1[i], a.c2[i], a.view[i]
	trip, arr, hot := a.epTrip[i], a.epArrow[i], a.epHot[i]
	for j := 0; j < a.n; j++ {
		// First pass: every register is unconfirmed, every arrow needs a clear.
		trip[j] = j != i
		arr[j] = j != i
		hot[j] = 0
	}
	var tries, passStart int64
	for {
		if a.prof.Enabled() {
			passStart = p.Steps()
		}
		// Re-clear only the arrows observed set (all of them on the first pass).
		for j := 0; j < a.n; j++ {
			if arr[j] {
				a.arrows[i][j].Write(p, false)
			}
		}
		// Re-establish the first read of each tripped register. For registers
		// hot across consecutive passes, keep re-reading until the toggle
		// settles: the writer is mid-burst, and one step per extra read is far
		// cheaper than failing the pass and re-paying the unified sweep.
		for j := 0; j < a.n; j++ {
			if !trip[j] {
				continue // v1[j] keeps the confirmed read from the previous pass
			}
			v1[j] = a.vals[j].Read(p)
			if hot[j] >= hotTrips {
				for s := 0; s < maxHotSettle; s++ {
					nv := a.vals[j].Read(p)
					if nv.Toggle == v1[j].Toggle {
						break
					}
					v1[j] = nv
				}
			}
		}
		// Unified confirm pass: one read of every register. The instant before
		// its first read is the scan's linearization point candidate.
		for j := 0; j < a.n; j++ {
			if j == i {
				continue
			}
			v2[j] = a.vals[j].Read(p)
			out[j] = v2[j].Val
			trip[j] = v1[j].Toggle != v2[j].Toggle && !MutTornScan.Load()
		}
		// Full arrow check — every slot, no prefix short-circuit: a retry pass
		// must know the complete tripped set, or an unread dirty arrow would be
		// mistaken for a confirmed register next pass.
		firstTrip, firstArrow := -1, false
		for j := 0; j < a.n; j++ {
			if j == i {
				continue
			}
			arr[j] = a.arrows[i][j].Read(p)
			trip[j] = trip[j] || arr[j]
			if trip[j] && firstTrip < 0 {
				firstTrip, firstArrow = j, arr[j]
			}
		}
		if firstTrip < 0 {
			if a.mon.Enabled() {
				// Independent handshake audit, as on the classic path: v1/v2
				// hold each register's two window reads.
				firstBad := -1
				for j := 0; j < a.n; j++ {
					if j != i && v1[j].Toggle != v2[j].Toggle {
						firstBad = j
						break
					}
				}
				a.mon.ScanHandshake(p.Now(), i, firstBad)
			}
			a.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanClean, Value: tries})
			a.sink.Observe(obs.HistScanRetries, tries)
			out[i] = a.local[i]
			if a.prof.Enabled() {
				a.prof.CleanScan(i, p.Now(), p.Steps())
			}
			return out
		}
		// Failed pass: confirmed registers carry their unified read forward as
		// next pass's first read; tripped ones accumulate heat.
		for j := 0; j < a.n; j++ {
			if j == i {
				continue
			}
			if trip[j] {
				hot[j]++
			} else {
				hot[j] = 0
				v1[j] = v2[j]
			}
		}
		a.retries[i].Add(1)
		tries++
		a.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanRetry, Value: tries})
		if a.prof.Enabled() {
			reason := prof.BlameToggle
			if firstArrow {
				reason = prof.BlameArrow
			}
			a.prof.ScanRetry(i, firstTrip, reason, p.Steps()-passStart, p.Now())
		}
	}
}

// Retries returns the total number of scan retries performed by pid so far.
func (a *Arrow[T]) Retries(pid int) int64 { return a.retries[pid].Load() }

// PeekSlot returns the current value of slot j without a scheduler step or
// process context — for protocol-aware adversaries and metrics only, never
// for algorithm logic (which must pay for a scan).
func (a *Arrow[T]) PeekSlot(j int) T { return a.vals[j].Peek().Val }

// seqCell is a value stamped with an unbounded sequence number.
type seqCell[T any] struct {
	val T
	seq uint64
}

// SeqSnap is the unbounded sequence-number snapshot baseline: every write
// increments a per-process counter with no bound, and a scan double-collects
// until two consecutive collects see identical sequence vectors.
type SeqSnap[T any] struct {
	n     int
	sink  *obs.Sink
	prof  *prof.Profiler
	spc   *space.Meter
	vals  []*register.SWMR[seqCell[T]]
	local []T
	seq   []uint64 // next sequence number per writer (owner-only access)

	// c1/c2/view[i] are pid i's double-collect and result buffers (owner-only
	// access); the returned view is reused across scans (see Memory.Scan).
	c1, c2 [][]seqCell[T]
	view   [][]T

	retries []pad.Int64
}

// NewSeqSnap builds a SeqSnap memory for n processes.
func NewSeqSnap[T any](n int) *SeqSnap[T] {
	s := &SeqSnap[T]{
		n:       n,
		vals:    make([]*register.SWMR[seqCell[T]], n),
		local:   make([]T, n),
		seq:     make([]uint64, n),
		c1:      make([][]seqCell[T], n),
		c2:      make([][]seqCell[T], n),
		view:    make([][]T, n),
		retries: make([]pad.Int64, n),
	}
	for i := 0; i < n; i++ {
		s.vals[i] = register.NewSWMR(i, seqCell[T]{})
		s.c1[i] = make([]seqCell[T], n)
		s.c2[i] = make([]seqCell[T], n)
		s.view[i] = make([]T, n)
	}
	return s
}

// Reset restores the memory to its initial state (zero values, sequence
// numbers rewound) for instance pooling. Call only between runs.
func (s *SeqSnap[T]) Reset() bool {
	var zero T
	for i := 0; i < s.n; i++ {
		s.vals[i].Reset(seqCell[T]{})
		s.local[i] = zero
		s.seq[i] = 0
		s.retries[i].Store(0)
	}
	return true
}

// N implements Memory.
func (s *SeqSnap[T]) N() int { return s.n }

// SetSink installs the observability sink on the memory and its registers.
func (s *SeqSnap[T]) SetSink(sk *obs.Sink) {
	s.sink = sk
	for _, r := range s.vals {
		r.SetSink(sk)
	}
}

// SetProfiler attaches the step profiler (nil detaches; see Arrow).
func (s *SeqSnap[T]) SetProfiler(f *prof.Profiler) { s.prof = f }

// SetSpace installs the space meter: value registers on the register layer,
// the per-register sequence number — the unbounded word this baseline pays
// for its snapshots — on the scan layer, with its growth measured online in
// Write.
func (s *SeqSnap[T]) SetSpace(m *space.Meter, _ space.Layer) {
	s.spc = m
	for _, r := range s.vals {
		r.SetSpace(m, space.LayerRegister)
	}
	m.AddWords(space.LayerScan, int64(s.n)) // sequence numbers
	m.DeclareUnbounded(space.LayerScan)
}

// SetNative switches every value register's storage mode (see Arrow).
func (s *SeqSnap[T]) SetNative(on bool) {
	for _, r := range s.vals {
		r.SetNative(on)
	}
}

// Write implements Memory. One atomic step; the sequence number grows without
// bound (this is the point of the baseline).
func (s *SeqSnap[T]) Write(p *sched.Proc, v T) {
	i := p.ID()
	s.seq[i]++
	s.spc.NoteValue(space.LayerScan, int64(s.seq[i]))
	s.vals[i].Write(p, seqCell[T]{val: v, seq: s.seq[i]})
	s.local[i] = v
	if s.prof.Enabled() {
		s.prof.NoteWrite(i, p.Now(), p.Steps())
	}
}

// Scan implements Memory: double-collect until two consecutive collects agree
// on every sequence number.
func (s *SeqSnap[T]) Scan(p *sched.Proc) []T {
	i := p.ID()
	prev, cur := s.c1[i], s.c2[i]
	for j := 0; j < s.n; j++ {
		if j != i {
			prev[j] = s.vals[j].Read(p)
		}
	}
	out := s.view[i]
	var tries, passStart int64
	for {
		if s.prof.Enabled() {
			passStart = p.Steps()
		}
		// Collect, fused with the sequence comparison and the view copy (both
		// register-local): a clean scan finishes in this single pass. The
		// first sequence mismatch is the blame culprit.
		clean := true
		dirtyAt := -1
		for j := 0; j < s.n; j++ {
			if j == i {
				continue
			}
			cur[j] = s.vals[j].Read(p)
			out[j] = cur[j].val
			if cur[j].seq != prev[j].seq {
				clean = false
				if dirtyAt < 0 {
					dirtyAt = j
				}
			}
		}
		if clean {
			s.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanClean, Value: tries})
			s.sink.Observe(obs.HistScanRetries, tries)
			out[i] = s.local[i]
			if s.prof.Enabled() {
				s.prof.CleanScan(i, p.Now(), p.Steps())
			}
			return out
		}
		s.retries[i].Add(1)
		tries++
		s.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanRetry, Value: tries})
		if s.prof.Enabled() {
			s.prof.ScanRetry(i, dirtyAt, prof.BlameSeq, p.Steps()-passStart, p.Now())
		}
		prev, cur = cur, prev
		s.c1[i], s.c2[i] = prev, cur
	}
}

// Retries returns the total number of scan retries performed by pid so far.
func (s *SeqSnap[T]) Retries(pid int) int64 { return s.retries[pid].Load() }

// PeekSlot returns the current value of slot j without a scheduler step —
// for adversaries and metrics only.
func (s *SeqSnap[T]) PeekSlot(j int) T { return s.vals[j].Peek().val }

// MaxSeq returns the largest sequence number written so far — the
// space-accounting hook showing this implementation is unbounded.
func (s *SeqSnap[T]) MaxSeq() uint64 {
	var m uint64
	for _, r := range s.vals {
		if c := r.Peek(); c.seq > m {
			m = c.seq
		}
	}
	return m
}

// Collect is the single-collect baseline: a "scan" is one read of each slot
// with no consistency check. It is regular (P1) but not a snapshot (P2/P3
// can fail). It exists as a negative control proving the property checker
// can detect violations.
type Collect[T any] struct {
	n     int
	vals  []*register.SWMR[T]
	local []T
	view  [][]T // per-pid reused result buffer (see Memory.Scan)
}

// NewCollect builds a Collect memory for n processes.
func NewCollect[T any](n int) *Collect[T] {
	c := &Collect[T]{
		n:     n,
		vals:  make([]*register.SWMR[T], n),
		local: make([]T, n),
		view:  make([][]T, n),
	}
	for i := 0; i < n; i++ {
		c.vals[i] = register.NewSWMR[T](i, *new(T))
		c.view[i] = make([]T, n)
	}
	return c
}

// Reset restores the memory to its initial state for instance pooling.
func (c *Collect[T]) Reset() bool {
	var zero T
	for i := 0; i < c.n; i++ {
		c.vals[i].Reset(zero)
		c.local[i] = zero
	}
	return true
}

// N implements Memory.
func (c *Collect[T]) N() int { return c.n }

// SetSink installs the observability sink on the underlying registers (the
// single-collect scan has no retries of its own to report).
func (c *Collect[T]) SetSink(s *obs.Sink) {
	for _, r := range c.vals {
		r.SetSink(s)
	}
}

// SetNative switches every value register's storage mode (see Arrow).
func (c *Collect[T]) SetNative(on bool) {
	for _, r := range c.vals {
		r.SetNative(on)
	}
}

// SetSpace installs the space meter on the value registers (the
// single-collect baseline has no snapshot machinery to account).
func (c *Collect[T]) SetSpace(m *space.Meter, _ space.Layer) {
	for _, r := range c.vals {
		r.SetSpace(m, space.LayerRegister)
	}
}

// Write implements Memory. One atomic step.
func (c *Collect[T]) Write(p *sched.Proc, v T) {
	c.vals[p.ID()].Write(p, v)
	c.local[p.ID()] = v
}

// Scan implements Memory: one read per slot, no retry.
func (c *Collect[T]) Scan(p *sched.Proc) []T {
	i := p.ID()
	out := c.view[i]
	for j := 0; j < c.n; j++ {
		if j == i {
			out[j] = c.local[i]
		} else {
			out[j] = c.vals[j].Read(p)
		}
	}
	return out
}

// Kind names a Memory implementation for configuration surfaces.
type Kind int

// Memory implementation kinds.
const (
	KindArrow Kind = iota + 1
	KindSeqSnap
	KindCollect
	KindWaitFree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindArrow:
		return "arrow"
	case KindSeqSnap:
		return "seqsnap"
	case KindCollect:
		return "collect"
	case KindWaitFree:
		return "waitfree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New builds a Memory of the given kind for n processes. The factory is used
// only by KindArrow (pass nil for the others to get direct registers).
func New[T any](kind Kind, n int, factory register.TwoWriterFactory) (Memory[T], error) {
	switch kind {
	case KindArrow:
		if factory == nil {
			factory = register.DirectFactory
		}
		return NewArrow[T](n, factory), nil
	case KindSeqSnap:
		return NewSeqSnap[T](n), nil
	case KindCollect:
		return NewCollect[T](n), nil
	case KindWaitFree:
		return NewWaitFree[T](n), nil
	default:
		return nil, fmt.Errorf("scan: unknown memory kind %d", int(kind))
	}
}
