package scan

import (
	"strings"
	"testing"

	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

// runWorkload drives n processes through rounds of scan-then-write on mem
// under the given adversary, recording a HistoryRec. Process j's k-th write
// stores the integer k, so a view value read from slot j *is* the write Seq.
func runWorkload(t *testing.T, mem Memory[int], n, rounds int, seed int64, adv sched.Adversary) *HistoryRec {
	t.Helper()
	h := &HistoryRec{N: n}
	written := make([]int, n) // per-proc write count; owner-only then read after Run
	_, err := sched.Run(sched.Config{N: n, Seed: seed, Adversary: adv, MaxSteps: 2_000_000}, func(p *sched.Proc) {
		i := p.ID()
		for k := 0; k < rounds; k++ {
			start := p.Now()
			view := mem.Scan(p)
			end := p.Now()
			rec := ScanRec{Proc: i, View: append([]int(nil), view...), Start: start, End: end}
			rec.View[i] = written[i] // own slot: last own write
			h.Scans = append(h.Scans, rec)

			written[i]++
			start = p.Now()
			mem.Write(p, written[i])
			h.Writes = append(h.Writes, WriteRec{Proc: i, Seq: written[i], Start: start, End: p.Now()})
		}
	})
	if err != nil {
		t.Fatalf("workload run: %v", err)
	}
	return h
}

func TestArrowSatisfiesP123UnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		mem := NewArrow[int](3, register.DirectFactory)
		h := runWorkload(t, mem, 3, 4, seed, sched.NewRandom(seed*7+1))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestArrowOverBloomRegistersSatisfiesP123(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		mem := NewArrow[int](3, register.BloomFactory)
		h := runWorkload(t, mem, 3, 3, seed, sched.NewRandom(seed*13+5))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestArrowSatisfiesP123UnderLagger(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mem := NewArrow[int](4, register.DirectFactory)
		h := runWorkload(t, mem, 4, 3, seed, sched.NewLagger(0, 25, seed+2))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSeqSnapSatisfiesP123(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		mem := NewSeqSnap[int](3)
		h := runWorkload(t, mem, 3, 4, seed, sched.NewRandom(seed*11+3))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCollectViolatesSnapshotProperties: the single-collect baseline must be
// caught by the checker on at least one seed — this is the negative control
// showing the property checker has teeth.
func TestCollectViolatesSnapshotProperties(t *testing.T) {
	violated := false
	for seed := int64(0); seed < 300 && !violated; seed++ {
		mem := NewCollect[int](4)
		h := runWorkload(t, mem, 4, 6, seed, sched.NewRandom(seed*3+7))
		if err := CheckP2(h); err != nil {
			violated = true
			break
		}
		if err := CheckP3(h); err != nil {
			violated = true
			break
		}
	}
	if !violated {
		t.Fatal("single-collect memory passed P2 and P3 on 300 adversarial schedules; checker (or workload) is too weak")
	}
}

// TestCollectStillRegular: the single collect must still satisfy P1 — every
// returned value comes from a potentially coexisting write.
func TestCollectStillRegular(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		mem := NewCollect[int](4)
		h := runWorkload(t, mem, 4, 6, seed, sched.NewRandom(seed*3+7))
		if err := CheckP1(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestArrowScanSeesOwnLastWrite(t *testing.T) {
	mem := NewArrow[int](2, register.DirectFactory)
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 0 {
			return
		}
		mem.Write(p, 41)
		view := mem.Scan(p)
		if view[0] != 41 {
			t.Errorf("own slot = %d, want 41", view[0])
		}
		if view[1] != 0 {
			t.Errorf("unwritten slot = %d, want zero value", view[1])
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestArrowWriteIsWaitFreeUnderScanStorm(t *testing.T) {
	// One writer, three scanners that scan forever. The writer must finish
	// its writes regardless (write is wait-free); the run ends on budget with
	// only the writer finished.
	mem := NewArrow[int](4, register.DirectFactory)
	res, _ := sched.Run(sched.Config{N: 4, Seed: 9, MaxSteps: 50_000, Adversary: sched.NewRandom(4)}, func(p *sched.Proc) {
		if p.ID() == 0 {
			for k := 1; k <= 20; k++ {
				mem.Write(p, k)
			}
			return
		}
		for {
			mem.Scan(p)
		}
	})
	if !res.Finished[0] {
		t.Fatal("writer did not finish: write is not wait-free")
	}
}

func TestArrowScanRetriesUnderWriterContention(t *testing.T) {
	// A scanner interleaved with a busy writer must retry at least once under
	// a schedule that alternates write steps into the scan window.
	mem := NewArrow[int](2, register.DirectFactory)
	_, _ = sched.Run(sched.Config{N: 2, Seed: 3, MaxSteps: 20_000, Adversary: sched.NewRandom(8)}, func(p *sched.Proc) {
		if p.ID() == 0 {
			for k := 0; k < 200; k++ {
				mem.Write(p, k)
			}
			return
		}
		for k := 0; k < 20; k++ {
			mem.Scan(p)
		}
	})
	if mem.Retries(1) == 0 {
		t.Fatal("scanner never retried under writer contention (suspicious schedule)")
	}
}

func TestSeqSnapMaxSeqGrowsWithoutBound(t *testing.T) {
	mem := NewSeqSnap[int](2)
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		for k := 0; k < 100; k++ {
			mem.Write(p, k)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := mem.MaxSeq(); got != 100 {
		t.Fatalf("MaxSeq = %d, want 100", got)
	}
}

func TestNewFactory(t *testing.T) {
	for _, k := range []Kind{KindArrow, KindSeqSnap, KindCollect} {
		m, err := New[int](k, 3, nil)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if m.N() != 3 {
			t.Fatalf("New(%v).N() = %d, want 3", k, m.N())
		}
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("Kind %d has no name", int(k))
		}
	}
	if _, err := New[int](Kind(99), 3, nil); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestWriteTableRejectsMalformedHistories(t *testing.T) {
	h := &HistoryRec{
		N:      1,
		Writes: []WriteRec{{Proc: 0, Seq: 2, Start: 0, End: 1}},
	}
	if err := CheckP1(h); err == nil {
		t.Fatal("expected error for out-of-order Seq")
	}
	h = &HistoryRec{
		N: 1,
		Writes: []WriteRec{
			{Proc: 0, Seq: 1, Start: 0, End: 5},
			{Proc: 0, Seq: 2, Start: 3, End: 8},
		},
	}
	if err := CheckP1(h); err == nil {
		t.Fatal("expected error for overlapping same-process writes")
	}
}

func TestCheckersCatchHandCraftedViolations(t *testing.T) {
	// P1: scan returns a write that is two writes stale.
	h := &HistoryRec{
		N: 1,
		Writes: []WriteRec{
			{Proc: 0, Seq: 1, Start: 0, End: 1},
			{Proc: 0, Seq: 2, Start: 2, End: 3},
		},
		Scans: []ScanRec{{Proc: 0, View: []int{1}, Start: 10, End: 11}},
	}
	if err := CheckP1(h); err == nil {
		t.Fatal("P1 checker missed a stale read")
	}

	// P2: scan pairs a stale write of proc 0 with a much later write of proc 1.
	h = &HistoryRec{
		N: 2,
		Writes: []WriteRec{
			{Proc: 0, Seq: 1, Start: 0, End: 1},
			{Proc: 0, Seq: 2, Start: 4, End: 5},
			{Proc: 1, Seq: 1, Start: 10, End: 11},
		},
		Scans: []ScanRec{{Proc: 1, View: []int{1, 1}, Start: 0, End: 20}},
	}
	if err := CheckP2(h); err == nil {
		t.Fatal("P2 checker missed a non-coexisting pair")
	}

	// P3: two incomparable views.
	h = &HistoryRec{
		N: 2,
		Writes: []WriteRec{
			{Proc: 0, Seq: 1, Start: 0, End: 0},
			{Proc: 1, Seq: 1, Start: 1, End: 1},
		},
		Scans: []ScanRec{
			{Proc: 0, View: []int{1, 0}, Start: 2, End: 3},
			{Proc: 1, View: []int{0, 1}, Start: 2, End: 3},
		},
	}
	if err := CheckP3(h); err == nil {
		t.Fatal("P3 checker missed incomparable views")
	}
}
