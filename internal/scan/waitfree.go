package scan

import (
	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/obs/prof"
	"github.com/dsrepro/consensus/internal/obs/space"
	"github.com/dsrepro/consensus/internal/pad"
	"github.com/dsrepro/consensus/internal/register"
	"github.com/dsrepro/consensus/internal/sched"
)

// WaitFree is a bounded, wait-free atomic snapshot, after Afek, Attiya,
// Dolev, Gafni, Merritt and Shavit ("Atomic Snapshots of Shared Memory") —
// the successor construction, by an overlapping author set, to this paper's
// non-wait-free §2 scannable memory. It is included as the natural
// "extensions" item: the consensus protocol runs unchanged over it, and its
// scans cannot be starved by writers (contrast experiment E7).
//
// Structure (single-writer registers only, all bounded):
//
//   - R_i holds (value, embedded view, toggle, handshake bits p_i[1..n]).
//   - For every pair, scanner i owns a handshake bit h_i[j].
//   - update_i(v): take an embedded snapshot d := Scan(); for every j read
//     h_j[i] and set p_i[j] := ¬h_j[i]; publish (v, d, ¬toggle, p) in one
//     atomic write.
//   - scan_i: repeat { for every j: read R_j and equalize h_i[j] := p_j[i]
//     ("shake hands"); double collect; writer j moved iff p_j[i] ≠ h_i[j]
//     (a latch — further writes keep it set, so no ABA) or its toggle
//     changed between the collects (catches the one write per iteration
//     that straddles the handshake). If no writer moved, the second collect
//     is a snapshot. Otherwise count a move event per moved writer; on a
//     writer's second event, borrow its embedded view. }
//
// Why borrowing is safe: every observed move event is caused by a write that
// *landed* inside the scan. A writer's second event is caused by a later
// write of the same (sequential) writer, whose embedded Scan began after the
// first event's write completed — i.e. entirely within this scan — so its
// embedded view is a snapshot valid inside this scan's interval.
//
// Why it is wait-free: every retried iteration fires at least one move
// event, and a writer is borrowed from at its second event, so a scan
// finishes within at most 2n+1 iterations.
type WaitFree[T any] struct {
	n     int
	sink  *obs.Sink
	prof  *prof.Profiler
	regs  []*register.SWMR[wfRec[T]]
	hands [][]*register.SWMR[bool] // hands[i][j]: scanner i's bit toward writer j
	local []T                      // local[i]: last value written by i (owner-only)

	// writer-local mirrors (owner-only access)
	toggles []bool
	pvecs   [][]bool

	// per-pid scan scratch (owner-only access): move-event counters, handshake
	// mirror, the two collect buffers, and the reused result buffer (see
	// Memory.Scan).
	events [][]int
	myHand [][]bool
	s1, s2 [][]wfRec[T]
	view   [][]T

	retries []pad.Int64
	borrows []pad.Int64
}

type wfRec[T any] struct {
	val    T
	view   []T // immutable once published
	toggle bool
	p      []bool // immutable once published
}

// NewWaitFree builds a wait-free snapshot for n processes.
func NewWaitFree[T any](n int) *WaitFree[T] {
	w := &WaitFree[T]{
		n:       n,
		regs:    make([]*register.SWMR[wfRec[T]], n),
		hands:   make([][]*register.SWMR[bool], n),
		local:   make([]T, n),
		toggles: make([]bool, n),
		pvecs:   make([][]bool, n),
		events:  make([][]int, n),
		myHand:  make([][]bool, n),
		s1:      make([][]wfRec[T], n),
		s2:      make([][]wfRec[T], n),
		view:    make([][]T, n),
		retries: make([]pad.Int64, n),
		borrows: make([]pad.Int64, n),
	}
	for i := 0; i < n; i++ {
		w.regs[i] = register.NewSWMR(i, wfRec[T]{p: make([]bool, n)})
		w.hands[i] = make([]*register.SWMR[bool], n)
		w.pvecs[i] = make([]bool, n)
		w.events[i] = make([]int, n)
		w.myHand[i] = make([]bool, n)
		w.s1[i] = make([]wfRec[T], n)
		w.s2[i] = make([]wfRec[T], n)
		w.view[i] = make([]T, n)
		for j := 0; j < n; j++ {
			if i != j {
				w.hands[i][j] = register.NewSWMR(i, false)
			}
		}
	}
	return w
}

// Reset restores the snapshot to its initial state (zero values, empty views,
// cleared toggles and handshake bits) for instance pooling. The published
// p-vectors are reallocated rather than cleared in place: records already
// handed out to readers treat them as immutable. Call only between runs.
func (w *WaitFree[T]) Reset() bool {
	var zero T
	for i := 0; i < w.n; i++ {
		w.regs[i].Reset(wfRec[T]{p: make([]bool, w.n)})
		w.local[i] = zero
		w.toggles[i] = false
		w.pvecs[i] = make([]bool, w.n)
		w.retries[i].Store(0)
		w.borrows[i].Store(0)
		for j := 0; j < w.n; j++ {
			if i != j {
				w.hands[i][j].Reset(false)
			}
		}
	}
	return true
}

// N implements Memory.
func (w *WaitFree[T]) N() int { return w.n }

// SetSink installs the observability sink on the memory and every register
// beneath it. Handshake-bit traffic is counted (not recorded): one scan
// iteration touches n-1 handshake registers and would drown a trace.
func (w *WaitFree[T]) SetSink(s *obs.Sink) {
	w.sink = s
	for i := 0; i < w.n; i++ {
		w.regs[i].SetSink(s)
		for j := 0; j < w.n; j++ {
			if i != j {
				w.hands[i][j].SetSink(s)
			}
		}
	}
}

// SetProfiler attaches the step profiler (nil detaches; see Arrow).
func (w *WaitFree[T]) SetProfiler(f *prof.Profiler) { w.prof = f }

// SetSpace installs the space meter: the n value registers on the register
// layer, and the construction's bounded snapshot machinery on the scan layer
// — per register one toggle bit, n handshake p-bits, one embedded view slot
// per process, plus the n(n-1) handshake-bit registers. The payload width of
// the values is declared by the protocol that owns the entries.
func (w *WaitFree[T]) SetSpace(m *space.Meter, _ space.Layer) {
	n := int64(w.n)
	for i := 0; i < w.n; i++ {
		w.regs[i].SetSpace(m, space.LayerRegister)
		for j := 0; j < w.n; j++ {
			if i != j {
				w.hands[i][j].SetSpace(m, space.LayerScan)
			}
		}
	}
	// toggle + p-vector + embedded view per record, one bit per handshake reg.
	m.AddWords(space.LayerScan, n*(1+n+n)+n*(n-1))
	m.DeclareDomain(space.LayerScan, 2)
}

// SetNative switches every underlying register's storage mode (see Arrow).
func (w *WaitFree[T]) SetNative(on bool) {
	for i := 0; i < w.n; i++ {
		w.regs[i].SetNative(on)
		for j := 0; j < w.n; j++ {
			if i != j {
				w.hands[i][j].SetNative(on)
			}
		}
	}
}

// Write implements Memory (the construction's update): embedded snapshot,
// handshake flips, one atomic publish. Wait-free.
func (w *WaitFree[T]) Write(p *sched.Proc, v T) {
	i := p.ID()
	// Scan returns the per-pid reused buffer; the embedded view published in
	// the record must stay immutable, so copy it out.
	view := append([]T(nil), w.Scan(p)...)
	newP := make([]bool, w.n)
	for j := 0; j < w.n; j++ {
		if j == i {
			continue
		}
		newP[j] = !w.hands[j][i].Read(p)
	}
	w.toggles[i] = !w.toggles[i]
	w.regs[i].Write(p, wfRec[T]{val: v, view: view, toggle: w.toggles[i], p: newP})
	w.local[i] = v
	w.pvecs[i] = newP
	if w.prof.Enabled() {
		w.prof.NoteWrite(i, p.Now(), p.Steps())
	}
}

// Scan implements Memory. Wait-free: at most 2n+1 handshake/double-collect
// iterations before a clean return or a borrow.
func (w *WaitFree[T]) Scan(p *sched.Proc) []T {
	i := p.ID()
	events, myHand := w.events[i], w.myHand[i]
	c1, c2 := w.s1[i], w.s2[i]
	for j := range events {
		events[j] = 0
	}
	var tries, passStart int64
	for {
		if w.prof.Enabled() {
			passStart = p.Steps()
		}
		// Handshake: equalize my bit with each writer's current bit.
		for j := 0; j < w.n; j++ {
			if j == i {
				continue
			}
			rec := w.regs[j].Read(p)
			myHand[j] = rec.p[i]
			w.hands[i][j].Write(p, myHand[j])
			w.sink.Count(obs.ScanHandshake)
		}
		for j := 0; j < w.n; j++ {
			if j != i {
				c1[j] = w.regs[j].Read(p)
			}
		}
		for j := 0; j < w.n; j++ {
			if j != i {
				c2[j] = w.regs[j].Read(p)
			}
		}
		clean := true
		dirtyAt, dirtyHand := -1, false
		for j := 0; j < w.n; j++ {
			if j == i {
				continue
			}
			handMoved := c1[j].p[i] != myHand[j] || c2[j].p[i] != myHand[j]
			moved := handMoved || c1[j].toggle != c2[j].toggle
			if !moved {
				continue
			}
			clean = false
			if dirtyAt < 0 {
				dirtyAt, dirtyHand = j, handMoved
			}
			events[j]++
			if events[j] >= 2 && c2[j].view != nil {
				// Borrow: c2[j]'s embedded view was taken entirely within
				// this scan.
				w.borrows[i].Add(1)
				w.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanBorrow, Value: int64(j)})
				w.sink.Observe(obs.HistScanRetries, tries)
				out := w.view[i]
				copy(out, c2[j].view)
				if w.prof.Enabled() {
					// A borrowed view is a completed scan for causal purposes:
					// the reader just absorbed j's embedded snapshot.
					w.prof.CleanScan(i, p.Now(), p.Steps())
				}
				return out
			}
		}
		if clean {
			w.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanClean, Value: tries})
			w.sink.Observe(obs.HistScanRetries, tries)
			out := w.view[i]
			for j := 0; j < w.n; j++ {
				if j == i {
					out[j] = w.local[i]
				} else {
					out[j] = c2[j].val
				}
			}
			if w.prof.Enabled() {
				w.prof.CleanScan(i, p.Now(), p.Steps())
			}
			return out
		}
		w.retries[i].Add(1)
		tries++
		w.sink.Emit(obs.Event{Step: p.Now(), Pid: i, Kind: obs.ScanRetry, Value: tries})
		if w.prof.Enabled() {
			reason := prof.BlameToggle
			if dirtyHand {
				reason = prof.BlameHandshake
			}
			w.prof.ScanRetry(i, dirtyAt, reason, p.Steps()-passStart, p.Now())
		}
	}
}

// Retries returns the number of retried scan iterations by pid.
func (w *WaitFree[T]) Retries(pid int) int64 { return w.retries[pid].Load() }

// Borrows returns how many of pid's scans completed by borrowing an embedded
// view.
func (w *WaitFree[T]) Borrows(pid int) int64 { return w.borrows[pid].Load() }

// PeekSlot returns the current value of slot j without a scheduler step —
// for adversaries and metrics only.
func (w *WaitFree[T]) PeekSlot(j int) T { return w.regs[j].Peek().val }
