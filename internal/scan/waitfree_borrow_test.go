package scan

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

// TestWaitFreeBorrowedScansSatisfyP123 records full histories from a
// contended workload where scans demonstrably borrow embedded views, and
// checks P1/P2/P3 on them — the borrow path is where a subtle bug would
// produce stale or incomparable views.
//
// Process 0 mostly scans; the others write rapidly (each write also performs
// an embedded scan, which is recorded too via the workload's own scans). The
// write values encode per-writer sequence numbers, so views map to write
// records exactly as in runWorkload.
func TestWaitFreeBorrowedScansSatisfyP123(t *testing.T) {
	const n = 3
	borrowsSeen := false
	for seed := int64(0); seed < 120; seed++ {
		mem := NewWaitFree[int](n)
		h := &HistoryRec{N: n}
		written := make([]int, n)
		_, err := sched.Run(sched.Config{
			N: n, Seed: seed, Adversary: sched.NewRandom(seed*41 + 13), MaxSteps: 3_000_000,
		}, func(p *sched.Proc) {
			i := p.ID()
			if i == 0 {
				for k := 0; k < 6; k++ {
					start := p.Now()
					view := mem.Scan(p)
					end := p.Now()
					rec := ScanRec{Proc: i, View: append([]int(nil), view...), Start: start, End: end}
					rec.View[i] = written[i]
					h.Scans = append(h.Scans, rec)
				}
				return
			}
			for k := 0; k < 10; k++ {
				written[i]++
				start := p.Now()
				mem.Write(p, written[i])
				h.Writes = append(h.Writes, WriteRec{Proc: i, Seq: written[i], Start: start, End: p.Now()})
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if mem.Borrows(0) > 0 {
			borrowsSeen = true
		}
	}
	if !borrowsSeen {
		t.Fatal("no borrow occurred across 120 contended runs — the borrow path went untested")
	}
}

// TestWaitFreeInterleavedScannersSerialize records scans from ALL processes
// (writers scan between writes) and checks P3 comparability across the whole
// set, including borrowed views against direct ones.
func TestWaitFreeInterleavedScannersSerialize(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		mem := NewWaitFree[int](3)
		h := runWorkload(t, mem, 3, 5, seed, sched.NewRandom(seed*53+17))
		if err := CheckP3(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
