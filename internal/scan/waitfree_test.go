package scan

import (
	"testing"

	"github.com/dsrepro/consensus/internal/sched"
)

func TestWaitFreeBasics(t *testing.T) {
	mem := NewWaitFree[int](2)
	_, err := sched.Run(sched.Config{N: 2, Seed: 1}, func(p *sched.Proc) {
		if p.ID() != 0 {
			return
		}
		view := mem.Scan(p)
		if view[0] != 0 || view[1] != 0 {
			t.Errorf("initial view = %v", view)
		}
		mem.Write(p, 41)
		view = mem.Scan(p)
		if view[0] != 41 {
			t.Errorf("own slot = %d, want 41", view[0])
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mem.PeekSlot(0) != 41 {
		t.Fatalf("PeekSlot = %d", mem.PeekSlot(0))
	}
}

func TestWaitFreeSatisfiesP123UnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		mem := NewWaitFree[int](3)
		h := runWorkload(t, mem, 3, 4, seed, sched.NewRandom(seed*23+9))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestWaitFreeSatisfiesP123UnderLagger(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		mem := NewWaitFree[int](4)
		h := runWorkload(t, mem, 4, 3, seed, sched.NewLagger(1, 20, seed+4))
		if err := CheckAll(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestWaitFreeScanCannotBeStarved is the construction's point: under
// back-to-back writers (the schedule that starves the arrow memory's scans,
// see E7), every scan still completes — by borrowing embedded views.
func TestWaitFreeScanCannotBeStarved(t *testing.T) {
	const n, scans = 4, 30
	mem := NewWaitFree[int](n)
	done := false
	completed := 0
	res, err := sched.Run(sched.Config{
		N: n, Seed: 7, Adversary: sched.NewRandom(3), MaxSteps: 30_000_000,
	}, func(p *sched.Proc) {
		if p.ID() == 0 {
			for k := 0; k < scans; k++ {
				mem.Scan(p)
				completed++
			}
			done = true
			return
		}
		for k := 0; !done; k++ {
			mem.Write(p, k)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v (completed %d/%d scans)", err, completed, scans)
	}
	if !res.Finished[0] || completed != scans {
		t.Fatalf("scanner starved: %d/%d scans", completed, scans)
	}
}

// TestWaitFreeBorrowedViewsHappen verifies the borrow path actually fires
// under contention (otherwise the starvation test would be vacuous).
func TestWaitFreeBorrowedViewsHappen(t *testing.T) {
	const n = 4
	mem := NewWaitFree[int](n)
	done := false
	_, err := sched.Run(sched.Config{
		N: n, Seed: 9, Adversary: sched.NewRandom(5), MaxSteps: 30_000_000,
	}, func(p *sched.Proc) {
		if p.ID() == 0 {
			for k := 0; k < 50; k++ {
				mem.Scan(p)
			}
			done = true
			return
		}
		for k := 0; !done; k++ {
			mem.Write(p, k)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var borrows int64
	for i := 0; i < n; i++ {
		borrows += mem.Borrows(i)
	}
	if borrows == 0 {
		t.Fatal("no scan ever borrowed under sustained writes — borrow path untested")
	}
}

// TestWaitFreeScanIterationBound checks the 2n+1 iteration bound: retries per
// scan never exceed it.
func TestWaitFreeScanIterationBound(t *testing.T) {
	const n = 5
	for seed := int64(0); seed < 20; seed++ {
		mem := NewWaitFree[int](n)
		done := false
		scansDone := 0
		_, err := sched.Run(sched.Config{
			N: n, Seed: seed, Adversary: sched.NewRandom(seed * 3), MaxSteps: 30_000_000,
		}, func(p *sched.Proc) {
			if p.ID() == 0 {
				for k := 0; k < 20; k++ {
					mem.Scan(p)
					scansDone++
				}
				done = true
				return
			}
			for k := 0; !done; k++ {
				mem.Write(p, k)
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		maxRetries := int64(scansDone * (2*n + 1))
		if got := mem.Retries(0); got > maxRetries {
			t.Fatalf("seed %d: %d retries for %d scans exceeds the 2n+1 bound (%d)", seed, got, scansDone, maxRetries)
		}
	}
}

func TestWaitFreeKindFactory(t *testing.T) {
	m, err := New[int](KindWaitFree, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	if KindWaitFree.String() != "waitfree" {
		t.Fatalf("String = %q", KindWaitFree.String())
	}
}
