package sched

import "math/rand"

// NewRoundRobin returns an adversary that cycles through processes fairly in
// pid order. It is the most benign schedule and the default.
func NewRoundRobin() Adversary { return &roundRobin{last: -1} }

type roundRobin struct{ last int }

func (a *roundRobin) Next(waiting []int, _ int64) int {
	// Pick the smallest pid strictly greater than last, wrapping around.
	for _, pid := range waiting {
		if pid > a.last {
			a.last = pid
			return pid
		}
	}
	a.last = waiting[0]
	return waiting[0]
}

// Eligible implements Extender: round-robin has no starvation semantics, so
// the commuting engine may batch and extend freely.
func (a *roundRobin) Eligible(int, int64) bool { return true }

// NewRandom returns an adversary that picks a uniformly random waiting
// process at every step, deterministically from seed.
func NewRandom(seed int64) Adversary {
	return &randomAdv{rng: rand.New(rand.NewSource(seed))}
}

type randomAdv struct{ rng *rand.Rand }

func (a *randomAdv) Next(waiting []int, _ int64) int {
	return waiting[a.rng.Intn(len(waiting))]
}

// Eligible implements Extender: the random adversary constrains nothing
// beyond its leader picks.
func (a *randomAdv) Eligible(int, int64) bool { return true }

// NewLagger returns an adversary that starves the victim process: the victim
// is scheduled only once every period steps (period >= 1), and otherwise the
// schedule is random. This creates the large round gaps that the paper's
// shrunken rounds strip must absorb. With period == 1 it degenerates to
// NewRandom.
func NewLagger(victim, period int, seed int64) Adversary {
	if period < 1 {
		period = 1
	}
	return &lagger{victim: victim, period: int64(period), rng: rand.New(rand.NewSource(seed))}
}

type lagger struct {
	victim int
	period int64
	rng    *rand.Rand
}

func (a *lagger) Next(waiting []int, step int64) int {
	others := make([]int, 0, len(waiting))
	for _, pid := range waiting {
		if pid != a.victim {
			others = append(others, pid)
		}
	}
	if len(others) == 0 || step%a.period == a.period-1 {
		return waiting[a.rng.Intn(len(waiting))]
	}
	return others[a.rng.Intn(len(others))]
}

// Eligible implements Extender: the victim only ever moves through the
// adversary's own periodic picks — engine-chosen grants would break the
// starvation the lagger exists to model.
func (a *lagger) Eligible(pid int, _ int64) bool { return pid != a.victim }

// NewCrash returns an adversary that behaves like inner but permanently stops
// scheduling each pid in crashAt once the global step count reaches its
// value. If every waiting process is crashed it returns -1, stalling the run
// (survivors that already finished keep their results).
func NewCrash(inner Adversary, crashAt map[int]int64) Adversary {
	m := make(map[int]int64, len(crashAt))
	for pid, at := range crashAt {
		m[pid] = at
	}
	return &crash{inner: inner, crashAt: m}
}

type crash struct {
	inner   Adversary
	crashAt map[int]int64
}

func (a *crash) Next(waiting []int, step int64) int {
	alive := make([]int, 0, len(waiting))
	for _, pid := range waiting {
		if at, ok := a.crashAt[pid]; ok && step >= at {
			continue
		}
		alive = append(alive, pid)
	}
	if len(alive) == 0 {
		return -1
	}
	return a.inner.Next(alive, step)
}

// Eligible implements Extender: a crashed pid never moves again; otherwise
// defer to the inner adversary's eligibility (absent, unconstrained).
func (a *crash) Eligible(pid int, step int64) bool {
	if at, ok := a.crashAt[pid]; ok && step >= at {
		return false
	}
	if e, ok := a.inner.(Extender); ok {
		return e.Eligible(pid, step)
	}
	return true
}

// FuncAdversary adapts a plain function to the Adversary interface. It is the
// hook through which protocol-aware ("adaptive") adversaries are built in the
// consensus packages: the function may inspect shared state it closes over.
type FuncAdversary func(waiting []int, step int64) int

// Next implements Adversary.
func (f FuncAdversary) Next(waiting []int, step int64) int { return f(waiting, step) }

// NewQuantum returns an OS-like time-slicing scheduler: the current process
// runs for quantum consecutive steps (or until it stops being runnable),
// then the next runnable pid takes over, round-robin. quantum == 1 is plain
// round-robin; large quanta approximate sequential execution with context
// switches — the schedule shape real machines actually produce.
func NewQuantum(quantum int) Adversary {
	if quantum < 1 {
		quantum = 1
	}
	return &quantumAdv{quantum: quantum, cur: -1}
}

type quantumAdv struct {
	quantum int
	cur     int
	used    int
}

func (a *quantumAdv) Next(waiting []int, _ int64) int {
	if a.cur >= 0 && a.used < a.quantum {
		for _, pid := range waiting {
			if pid == a.cur {
				a.used++
				return pid
			}
		}
	}
	// Rotate: first waiting pid strictly greater than cur, wrapping.
	pick := waiting[0]
	for _, pid := range waiting {
		if pid > a.cur {
			pick = pid
			break
		}
	}
	a.cur, a.used = pick, 1
	return pick
}

// Eligible implements Extender: the quantum scheduler already hands out runs;
// commuting batches only coarsen them further.
func (a *quantumAdv) Eligible(int, int64) bool { return true }

// NewPCT returns a Probabilistic Concurrency Testing scheduler after
// Burckhardt, Kothari, Musuvathi and Nagarakatte (ASPLOS 2010): processes get
// random static priorities, depth-1 priority-change points are placed
// uniformly over the first horizon steps, and at every step the
// highest-priority waiting process moves (its priority dropping below all
// others when it crosses a change point). For a concurrency bug of depth d,
// one run hits it with probability at least 1/(n·horizonᵈ⁻¹) — so sweeping
// seeds gives systematic (not just random-walk) schedule coverage. Note PCT
// deliberately starves low-priority processes for long stretches; that is
// legal adversarial behaviour for wait-free algorithms.
func NewPCT(n int, horizon int64, depth int, seed int64) Adversary {
	if depth < 1 {
		depth = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	rng := rand.New(rand.NewSource(seed))
	prio := rng.Perm(n) // prio[pid]: larger = runs first
	points := make(map[int64]bool, depth-1)
	for len(points) < depth-1 {
		points[rng.Int63n(horizon)] = true
	}
	return &pct{prio: prio, points: points, low: -1}
}

type pct struct {
	prio   []int
	points map[int64]bool
	low    int // next below-everything priority to hand out
}

func (a *pct) Next(waiting []int, step int64) int {
	best := waiting[0]
	for _, pid := range waiting[1:] {
		if a.prio[pid] > a.prio[best] {
			best = pid
		}
	}
	if a.points[step] {
		a.prio[best] = a.low
		a.low--
		// Re-pick after the demotion.
		best = waiting[0]
		for _, pid := range waiting[1:] {
			if a.prio[pid] > a.prio[best] {
				best = pid
			}
		}
	}
	return best
}
