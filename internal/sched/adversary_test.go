package sched

import (
	"sync"
	"testing"
)

// TestAdversaryEdgeCases drives each adversary's Next over a fixed waiting
// set and pins the exact pick sequence for the edge configurations: clamped
// quanta, empty and total crash maps, and a sole surviving victim.
func TestAdversaryEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		adv     Adversary
		waiting []int
		want    []int // expected picks at steps 0, 1, 2, ...
	}{
		{
			name: "quantum 0 clamps to 1 (plain round-robin)",
			adv:  NewQuantum(0), waiting: []int{0, 1, 2},
			want: []int{0, 1, 2, 0, 1, 2},
		},
		{
			name: "quantum 1 is plain round-robin",
			adv:  NewQuantum(1), waiting: []int{0, 1, 2},
			want: []int{0, 1, 2, 0, 1, 2},
		},
		{
			name: "quantum 3 runs each pid three consecutive steps",
			adv:  NewQuantum(3), waiting: []int{0, 1, 2},
			want: []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 0},
		},
		{
			name: "crash with empty map behaves as the inner adversary",
			adv:  NewCrash(NewRoundRobin(), nil), waiting: []int{0, 1, 2},
			want: []int{0, 1, 2, 0},
		},
		{
			name: "crash of every process at step 0 refuses to schedule",
			adv:  NewCrash(NewRoundRobin(), map[int]int64{0: 0, 1: 0, 2: 0}), waiting: []int{0, 1, 2},
			want: []int{-1, -1},
		},
		{
			name: "lagger whose victim is the only waiting process still schedules it",
			adv:  NewLagger(0, 16, 1), waiting: []int{0},
			want: []int{0, 0, 0},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for step, want := range c.want {
				if got := c.adv.Next(c.waiting, int64(step)); got != want {
					t.Fatalf("step %d: Next(%v) = %d, want %d", step, c.waiting, got, want)
				}
			}
		})
	}
}

// TestQuantumCurrentProcessLeaves checks the mid-quantum handoff: when the
// running process stops being runnable, the scheduler rotates instead of
// wedging, and the old quantum is not resurrected when the process returns.
func TestQuantumCurrentProcessLeaves(t *testing.T) {
	a := NewQuantum(4)
	if got := a.Next([]int{0, 1}, 0); got != 0 {
		t.Fatalf("step 0: Next = %d, want 0", got)
	}
	if got := a.Next([]int{1}, 1); got != 1 {
		t.Fatalf("step 1 (pid 0 blocked): Next = %d, want 1", got)
	}
	if got := a.Next([]int{0, 1}, 2); got != 1 {
		t.Fatalf("step 2 (pid 0 back): Next = %d, want 1 to finish its quantum", got)
	}
}

// TestLaggerVictimOutOfRange: a victim pid that matches no real process must
// not derail the schedule — every process keeps making progress and the run
// completes cleanly.
func TestLaggerVictimOutOfRange(t *testing.T) {
	counts := make([]int64, 3)
	var mu sync.Mutex
	res, err := Run(Config{N: 3, Seed: 9, Adversary: NewLagger(99, 8, 13)}, func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Step()
			mu.Lock()
			counts[p.ID()]++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for pid, c := range counts {
		if !res.Finished[pid] || c != 20 {
			t.Fatalf("process %d: finished=%v steps=%d, want finished with 20 steps", pid, res.Finished[pid], c)
		}
	}
}
