package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
)

// The commuting-dispatch engine (Config.Commuting) generalizes the direct
// dispatcher: instead of granting one step per adversary consult, the
// adversary's pick opens a *batch* — a set of waiting processes whose declared
// register footprints pairwise commute (see footprint.go) — and every batch
// member receives a run of steps before the adversary is consulted again.
//
// The engine never executes two steps at the same wall-clock instant: batch
// members run one after another in admission order, each holding the token
// for up to a quantum of steps, so the execution *is* a sequential schedule
// and stays byte-deterministic. What the batch buys is schedule shape and
// engine overhead: commuting runs let an O(n) scan complete without an
// adversary-inserted writer tripping it (the scan-retry burn the profiler
// blames for the n-scaling wall), coalesced runs replace channel handoffs
// with plain returns, and the adversary is consulted once per batch instead
// of once per step. Because every executed schedule is a legal sequential
// grant order, replaying its recorded grant sequence through the sequential
// dispatcher reproduces the run byte-for-byte — the equivalence suites
// (commute_test.go, core/engine_equiv_test.go) prove exactly that.
//
// Memory-model note: like the dispatcher, all mutable scheduling state is
// owned by the token holder. A parked process's last action before blocking
// is either its own grant send (token handoff) or a startPending atomic RMW
// (startup), both of which publish its footprint declaration to later token
// holders, so the batch former reads fps[pid] race-free.

// defaultCommuteQuantum bounds how many consecutive steps one batch member
// may coalesce before the token moves on. Large enough for a full scan pass
// plus a write at the ns the matrix measures, small enough that batch mates
// are not starved within their batch.
const defaultCommuteQuantum = 64

type commuter struct {
	n        int
	adv      Adversary
	ext      Extender // non-nil iff adv implements Extender
	quantum  int
	maxSteps int64
	onStep   func(pid int, step int64)
	sink     *obs.Sink

	slots    []procSlot
	live     []int
	isLive   []bool
	finished []bool

	// fps[pid] is the footprint pid declared for its pending step; it is
	// consumed (and only changes) when pid next runs, so for a parked batch
	// member it is exactly the admitted footprint.
	fps      []Footprint
	batch    []int // admitted commuting set, in grant order
	batchIdx int   // index of the member currently holding the token
	runLeft  int   // quantum remaining for the current member's run

	steps         int64
	grantsPending int64
	clock         atomic.Int64
	startPending  atomic.Int32

	doneMu  sync.Mutex
	err     error
	badPick string
}

func newCommuter(cfg Config, adv Adversary) *commuter {
	q := cfg.CommuteQuantum
	if q < 1 {
		q = defaultCommuteQuantum
	}
	ext, _ := adv.(Extender)
	c := &commuter{
		n:        cfg.N,
		adv:      adv,
		ext:      ext,
		quantum:  q,
		maxSteps: cfg.MaxSteps,
		onStep:   cfg.OnStep,
		sink:     cfg.Sink,
		slots:    make([]procSlot, cfg.N),
		live:     make([]int, cfg.N),
		isLive:   make([]bool, cfg.N),
		finished: make([]bool, cfg.N),
		fps:      make([]Footprint, cfg.N),
		batch:    make([]int, 0, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		c.slots[i].grant = make(chan bool, 1)
		c.slots[i].arrived = make(chan struct{})
		c.live[i] = i
		c.isLive[i] = true
	}
	c.batchIdx = 0 // batch is empty: batchIdx >= len(batch) means "no active batch"
	c.startPending.Store(int32(cfg.N))
	return c
}

func (c *commuter) now() int64 { return c.clock.Load() }

// step implements gate: capture the caller's declared footprint, then run the
// same arrival/dispatch protocol as the sequential dispatcher.
func (c *commuter) step(p *Proc) {
	pid := p.id
	c.fps[pid] = Footprint{Key: p.fpKey, Write: p.fpWrite}
	p.fpKey, p.fpWrite = 0, false
	c.slots[pid].enqueuedAt = c.steps
	if p.steps == 0 {
		close(c.slots[pid].arrived)
		if c.startPending.Add(-1) > 0 {
			c.park(pid)
			return
		}
	}
	switch c.dispatch(pid) {
	case grantedSelf:
		return
	case haltedRun:
		panic(haltSignal{})
	default:
		c.park(pid)
	}
}

func (c *commuter) park(pid int) {
	if ok := <-c.slots[pid].grant; !ok {
		panic(haltSignal{})
	}
}

// issue charges and counts one grant to pid. The caller has checked the
// budget and decided pid is the next token holder.
func (c *commuter) issue(pid int) {
	s := &c.slots[pid]
	s.waitSteps += c.steps - s.enqueuedAt
	c.steps++
	s.perProc++
	c.clock.Store(c.steps)
	if c.sink != nil {
		c.grantsPending++
		if c.grantsPending >= grantFlushBatch {
			c.flushGrants()
		}
	}
	if c.onStep != nil {
		c.onStep(pid, c.steps)
	}
}

// eligible reports whether the adversary permits engine-chosen grants to pid
// right now. Without an Extender nothing beyond the leader pick is permitted.
func (c *commuter) eligible(pid int) bool {
	return c.ext != nil && c.ext.Eligible(pid, c.steps)
}

// extensionCommutes reports whether self's newly declared footprint commutes
// with every admitted-but-not-yet-executed batch member's granted step. Only
// members after batchIdx are in flight: earlier members already executed
// their grants, and fps for them has moved on to their next (unadmitted) op.
func (c *commuter) extensionCommutes(self int) bool {
	for k := c.batchIdx + 1; k < len(c.batch); k++ {
		m := c.batch[k]
		if c.isLive[m] && !Commutes(c.fps[self], c.fps[m]) {
			return false
		}
	}
	return true
}

// dispatch issues the next grant: extend the current member's run, hand the
// token to the next admitted member, or consult the adversary for a new
// batch. self is -1 when called from a completion.
func (c *commuter) dispatch(self int) verdict {
	// Run extension: the current member keeps the token for up to a quantum,
	// as long as the adversary still considers it eligible and each new
	// footprint commutes with every in-flight granted step. An undeclared
	// footprint extends only when no other grants are in flight (the batch
	// tail is empty), where any op is trivially safe.
	if self >= 0 && c.batchIdx < len(c.batch) && c.batch[c.batchIdx] == self &&
		c.runLeft > 0 && c.eligible(self) &&
		(c.extensionCommutes(self) && (c.fps[self].Declared() || c.batchIdx == len(c.batch)-1)) {
		if c.maxSteps > 0 && c.steps >= c.maxSteps {
			c.halt(ErrStepBudget, self)
			return haltedRun
		}
		c.runLeft--
		c.issue(self)
		return grantedSelf
	}
	// Token handoff: advance to the next live, still-eligible admitted
	// member. A member that finished or crashed since admission is skipped —
	// its granted step never executes.
	for c.batchIdx+1 < len(c.batch) {
		c.batchIdx++
		pid := c.batch[c.batchIdx]
		if !c.isLive[pid] || !c.eligible(pid) {
			continue
		}
		if c.maxSteps > 0 && c.steps >= c.maxSteps {
			c.halt(ErrStepBudget, self)
			return haltedRun
		}
		c.runLeft = c.quantum - 1
		c.issue(pid)
		if pid == self {
			return grantedSelf
		}
		c.slots[pid].grant <- true
		return grantedOther
	}
	// Batch exhausted: the adversary picks the next leader; eligible waiters
	// with pairwise-commuting footprints join its batch.
	if c.maxSteps > 0 && c.steps >= c.maxSteps {
		c.halt(ErrStepBudget, self)
		return haltedRun
	}
	pick := c.adv.Next(c.live, c.steps)
	if pick == -1 {
		c.halt(ErrStalled, self)
		return haltedRun
	}
	if pick < 0 || pick >= c.n || !c.isLive[pick] {
		c.badPick = fmt.Sprintf("sched: adversary picked pid %d not in waiting set %v", pick, c.live)
		c.halt(ErrStalled, self)
		return haltedRun
	}
	var elig func(pid int) bool
	if c.ext != nil {
		elig = func(pid int) bool { return c.isLive[pid] && c.ext.Eligible(pid, c.steps) }
	}
	c.batch = BuildCommutingSet(pick, c.live, c.fps, elig, c.batch)
	if err := VerifyCommutingSet(c.batch, c.fps); err != nil {
		c.badPick = err.Error()
		c.halt(ErrStalled, self)
		return haltedRun
	}
	c.batchIdx = 0
	c.runLeft = c.quantum - 1
	c.issue(pick)
	if pick == self {
		return grantedSelf
	}
	c.slots[pick].grant <- true
	return grantedOther
}

func (c *commuter) halt(err error, self int) {
	c.err = err
	c.flushGrants()
	for _, pid := range c.live {
		if pid != self {
			c.slots[pid].grant <- false
		}
	}
}

func (c *commuter) flushGrants() {
	if c.grantsPending > 0 {
		c.sink.CountN(obs.SchedGrant, c.grantsPending)
		c.grantsPending = 0
	}
}

func (c *commuter) done(p *Proc) {
	c.doneMu.Lock()
	defer c.doneMu.Unlock()
	pid := p.id
	if p.steps == 0 {
		close(c.slots[pid].arrived)
	}
	c.finished[pid] = true
	c.isLive[pid] = false
	for i, v := range c.live {
		if v == pid {
			c.live = append(c.live[:i], c.live[i+1:]...)
			break
		}
	}
	if len(c.live) == 0 {
		c.flushGrants()
		return
	}
	if p.steps == 0 && c.startPending.Add(-1) > 0 {
		return
	}
	c.dispatch(-1)
}

// runCommuting executes body under the commuting-dispatch engine. Startup,
// teardown and Result assembly mirror Run's dispatcher path exactly.
func runCommuting(cfg Config, adv Adversary, body func(*Proc)) (Result, error) {
	c := newCommuter(cfg, adv)

	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		p := newProc(i, cfg.Seed, c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(haltSignal); !ok {
						panic(rec)
					}
				}
			}()
			body(p)
			c.done(p)
		}()
		<-c.slots[i].arrived
	}
	wg.Wait()
	c.flushGrants()
	if c.badPick != "" {
		panic(c.badPick)
	}
	res := Result{
		Steps:     c.steps,
		PerProc:   make([]int64, cfg.N),
		WaitSteps: make([]int64, cfg.N),
		Finished:  c.finished,
	}
	for i := range c.slots {
		res.PerProc[i] = c.slots[i].perProc
		res.WaitSteps[i] = c.slots[i].waitSteps
	}
	return res, c.err
}
