package sched

import (
	"fmt"
	"math/rand"
	"testing"
)

// The tests in this file prove the commuting-dispatch engine's determinism
// contract: every schedule it produces is a legal sequential grant order.
// Concretely, recording the commuting run's grant sequence and replaying it
// through the sequential direct-dispatch engine (a FuncAdversary that hands
// out the recorded picks one by one) reproduces the run exactly — same grant
// sequence, same Result accounting, same error. Batch formation itself is
// pinned by property tests over the commutation checker.

// commuteBodies are process bodies that declare register footprints the way
// the register layer does, covering the shapes that matter for batching:
// fully disjoint per-process cells, one shared write-contended cell, mixed
// declared/undeclared steps, and RNG-driven access patterns.
func commuteBodies(n int) []struct {
	name string
	body func(*Proc)
} {
	// Per-process "registers": cell[i] is written by i, readable by all, plus
	// one shared cell everyone writes. Fresh keys per call keep runs isolated.
	cell := make([]int64, n)
	for i := range cell {
		cell[i] = NewFootprintKey()
	}
	shared := NewFootprintKey()
	return []struct {
		name string
		body func(*Proc)
	}{
		{"disjoint", func(p *Proc) {
			for i := 0; i < 120; i++ {
				if i%4 == 0 {
					p.DeclareWrite(cell[p.ID()])
				} else {
					p.DeclareRead(cell[(p.ID()+i)%n])
				}
				p.Step()
			}
		}},
		{"shared-writes", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.DeclareWrite(shared)
				p.Step()
			}
		}},
		{"mixed-undeclared", func(p *Proc) {
			for i := 0; i < 30*(p.ID()+1); i++ {
				if i%2 == 0 {
					p.DeclareRead(cell[i%n])
				}
				p.Step()
			}
		}},
		{"rng", func(p *Proc) {
			for i := 0; i < 60+p.Rand().Intn(80); i++ {
				j := p.Rand().Intn(n)
				if p.Rand().Intn(3) == 0 && j == p.ID() {
					p.DeclareWrite(cell[j])
				} else {
					p.DeclareRead(cell[j])
				}
				p.Step()
			}
		}},
		{"early-exit", func(p *Proc) {
			if p.ID() == 0 {
				return
			}
			for i := 0; i < 90; i++ {
				p.DeclareRead(cell[p.ID()])
				p.Step()
			}
		}},
	}
}

// replayAdv returns a sequential adversary that re-issues a recorded grant
// sequence pick by pick, then stalls.
func replayAdv(seq []grantRec) Adversary {
	i := 0
	return FuncAdversary(func(waiting []int, step int64) int {
		if i >= len(seq) {
			return -1
		}
		pick := seq[i].pid
		i++
		return pick
	})
}

// assertCommutingReplays runs cfg under the commuting engine, replays the
// recorded grant sequence through the sequential dispatcher, and fails on any
// observable divergence.
func assertCommutingReplays(t *testing.T, mk func() Config, body func(*Proc)) {
	t.Helper()
	comCfg := mk()
	comCfg.Commuting = true
	comGrants, comRes, comErr, comCount := engineRun(t, comCfg, body)

	seqCfg := mk()
	seqCfg.Adversary = replayAdv(comGrants)
	seqGrants, seqRes, seqErr, seqCount := engineRun(t, seqCfg, body)

	if len(comGrants) != len(seqGrants) {
		t.Fatalf("grant sequence length: commuting=%d replay=%d", len(comGrants), len(seqGrants))
	}
	for i := range comGrants {
		if comGrants[i] != seqGrants[i] {
			t.Fatalf("grant %d diverges: commuting=%+v replay=%+v", i, comGrants[i], seqGrants[i])
		}
	}
	if comErr != seqErr {
		t.Fatalf("error: commuting=%v replay=%v", comErr, seqErr)
	}
	if comRes.Steps != seqRes.Steps {
		t.Fatalf("Steps: commuting=%d replay=%d", comRes.Steps, seqRes.Steps)
	}
	if comCount != seqCount {
		t.Fatalf("sched.grant count: commuting=%d replay=%d", comCount, seqCount)
	}
	for i := range comRes.PerProc {
		if comRes.PerProc[i] != seqRes.PerProc[i] {
			t.Fatalf("PerProc[%d]: commuting=%d replay=%d", i, comRes.PerProc[i], seqRes.PerProc[i])
		}
		if comRes.WaitSteps[i] != seqRes.WaitSteps[i] {
			t.Fatalf("WaitSteps[%d]: commuting=%d replay=%d", i, comRes.WaitSteps[i], seqRes.WaitSteps[i])
		}
		if comRes.Finished[i] != seqRes.Finished[i] {
			t.Fatalf("Finished[%d]: commuting=%v replay=%v", i, comRes.Finished[i], seqRes.Finished[i])
		}
	}
}

func TestCommutingReplaysSequentiallyAcrossSweep(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8} {
		bodies := commuteBodies(n)
		for _, adv := range equivAdversaries {
			for _, b := range bodies {
				for seed := int64(1); seed <= 3; seed++ {
					n, adv, b, seed := n, adv, b, seed
					name := fmt.Sprintf("n=%d/%s/%s/seed=%d", n, adv.name, b.name, seed)
					t.Run(name, func(t *testing.T) {
						assertCommutingReplays(t, func() Config {
							return Config{N: n, Seed: seed, Adversary: adv.mk(n, seed)}
						}, b.body)
					})
				}
			}
		}
	}
}

func TestCommutingReplaysOnStepBudget(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			bodies := commuteBodies(4)
			assertCommutingReplays(t, func() Config {
				return Config{N: 4, Seed: seed, Adversary: NewRandom(seed), MaxSteps: 123}
			}, bodies[0].body)
		})
	}
}

func TestCommutingReplaysOnStall(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			bodies := commuteBodies(4)
			assertCommutingReplays(t, func() Config {
				return Config{N: 4, Seed: seed,
					Adversary: NewCrash(NewRandom(seed), map[int]int64{0: 30, 1: 60, 2: 90, 3: 120})}
			}, bodies[0].body)
		})
	}
}

// TestCommutingDeterministic pins byte-determinism directly: two commuting
// runs from one (seed, adversary, body) triple produce identical grant
// sequences and results.
func TestCommutingDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mk := func() Config {
			return Config{N: 6, Seed: seed, Adversary: NewRandom(seed), Commuting: true}
		}
		body := commuteBodies(6)[3].body // rng body: the hardest to reproduce
		g1, r1, e1, _ := engineRun(t, mk(), body)
		g2, r2, e2, _ := engineRun(t, mk(), body)
		if len(g1) != len(g2) {
			t.Fatalf("seed %d: grant counts differ: %d vs %d", seed, len(g1), len(g2))
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("seed %d: grant %d differs: %+v vs %+v", seed, i, g1[i], g2[i])
			}
		}
		if e1 != e2 || r1.Steps != r2.Steps {
			t.Fatalf("seed %d: results differ", seed)
		}
	}
}

// TestCommutingMatchesSequentialForNonExtender: with an adversary that does
// not implement Extender (PCT), the commuting engine must degrade to exactly
// the sequential dispatcher's schedule — singleton batches, an adversary
// consult per step.
func TestCommutingMatchesSequentialForNonExtender(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		bodies := commuteBodies(4)
		for _, b := range bodies {
			mk := func(commuting bool) Config {
				return Config{N: 4, Seed: seed, Adversary: NewPCT(4, 2000, 3, seed), Commuting: commuting}
			}
			sg, sr, se, _ := engineRun(t, mk(false), b.body)
			cg, cr, ce, _ := engineRun(t, mk(true), b.body)
			if len(sg) != len(cg) {
				t.Fatalf("seed %d/%s: grant counts differ: seq=%d commuting=%d", seed, b.name, len(sg), len(cg))
			}
			for i := range sg {
				if sg[i] != cg[i] {
					t.Fatalf("seed %d/%s: grant %d differs: seq=%+v commuting=%+v", seed, b.name, i, sg[i], cg[i])
				}
			}
			if se != ce || sr.Steps != cr.Steps {
				t.Fatalf("seed %d/%s: results differ", seed, b.name)
			}
		}
	}
}

// countingAdv counts adversary consults, delegating scheduling (and
// eligibility) to the wrapped adversary.
type countingAdv struct {
	inner Adversary
	calls int
}

func (a *countingAdv) Next(waiting []int, step int64) int {
	a.calls++
	return a.inner.Next(waiting, step)
}

func (a *countingAdv) Eligible(pid int, step int64) bool {
	if e, ok := a.inner.(Extender); ok {
		return e.Eligible(pid, step)
	}
	return false
}

// TestCommutingBatchesReduceConsults pins the engine's reason to exist: with
// disjoint footprints under an Extender adversary, the adversary is consulted
// far less than once per step.
func TestCommutingBatchesReduceConsults(t *testing.T) {
	const n = 8
	adv := &countingAdv{inner: NewRandom(7)}
	body := commuteBodies(n)[0].body // disjoint cells
	var steps int
	_, err := Run(Config{N: n, Seed: 7, Adversary: adv, Commuting: true,
		OnStep: func(int, int64) { steps++ }}, body)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if steps == 0 {
		t.Fatal("no steps granted")
	}
	if adv.calls*4 > steps {
		t.Fatalf("batching ineffective: %d consults for %d steps (want < steps/4)", adv.calls, steps)
	}
}

// TestBuildCommutingSetProperties drives the batch former and checker over
// randomized footprint tables: the leader always leads, the checker accepts
// every formed set, and no admitted pair overlaps.
func TestBuildCommutingSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(10)
		fps := make([]Footprint, n)
		for i := range fps {
			fps[i] = Footprint{Key: int64(rng.Intn(4)), Write: rng.Intn(2) == 0} // key 0 = undeclared
		}
		cands := make([]int, n)
		for i := range cands {
			cands[i] = i
		}
		leader := rng.Intn(n)
		set := BuildCommutingSet(leader, cands, fps, func(int) bool { return true }, nil)
		if len(set) == 0 || set[0] != leader {
			t.Fatalf("trial %d: leader %d not first in %v", trial, leader, set)
		}
		if err := VerifyCommutingSet(set, fps); err != nil {
			t.Fatalf("trial %d: checker rejected formed set %v: %v", trial, set, err)
		}
		for x := 0; x < len(set); x++ {
			for y := x + 1; y < len(set); y++ {
				a, b := fps[set[x]], fps[set[y]]
				if !a.Declared() || !b.Declared() {
					t.Fatalf("trial %d: undeclared non-singleton member in %v", trial, set)
				}
				if a.Key == b.Key && (a.Write || b.Write) {
					t.Fatalf("trial %d: overlapping pair admitted: %v in %v", trial, []Footprint{a, b}, set)
				}
			}
		}
	}
}
