package sched

import (
	"fmt"
	"testing"

	"github.com/dsrepro/consensus/internal/obs"
)

// The tests in this file prove the direct-dispatch engine and the legacy
// rendezvous engine produce byte-identical executions: the same grant
// sequence (pid, step) pairs, the same Result accounting, the same error, and
// the same sched.grant totals, across a sweep of seeds, adversaries and
// process bodies. Adversaries are stateful, so each engine run constructs a
// fresh one from the same parameters.

// grantRec is one scheduler grant as observed through Config.OnStep.
type grantRec struct {
	pid  int
	step int64
}

// engineRun executes body under one engine and captures everything
// observable: the grant sequence, the Result, the error and the grant count.
func engineRun(t *testing.T, cfg Config, body func(*Proc)) (grants []grantRec, res Result, err error, grantCount int64) {
	t.Helper()
	sink := obs.NewSink(nil)
	cfg.Sink = sink
	cfg.OnStep = func(pid int, step int64) {
		grants = append(grants, grantRec{pid: pid, step: step})
	}
	res, err = Run(cfg, body)
	return grants, res, err, sink.Registry().KindCount(obs.SchedGrant)
}

// assertEnginesAgree runs the same configuration under both engines and
// fails on any observable divergence.
func assertEnginesAgree(t *testing.T, mk func() Config, body func(*Proc)) {
	t.Helper()
	oldCfg := mk()
	oldCfg.Rendezvous = true
	oldGrants, oldRes, oldErr, oldCount := engineRun(t, oldCfg, body)

	newCfg := mk()
	newGrants, newRes, newErr, newCount := engineRun(t, newCfg, body)

	if len(oldGrants) != len(newGrants) {
		t.Fatalf("grant sequence length: rendezvous=%d dispatch=%d", len(oldGrants), len(newGrants))
	}
	for i := range oldGrants {
		if oldGrants[i] != newGrants[i] {
			t.Fatalf("grant %d diverges: rendezvous=%+v dispatch=%+v", i, oldGrants[i], newGrants[i])
		}
	}
	if oldErr != newErr {
		t.Fatalf("error: rendezvous=%v dispatch=%v", oldErr, newErr)
	}
	if oldRes.Steps != newRes.Steps {
		t.Fatalf("Steps: rendezvous=%d dispatch=%d", oldRes.Steps, newRes.Steps)
	}
	if oldCount != newCount {
		t.Fatalf("sched.grant count: rendezvous=%d dispatch=%d", oldCount, newCount)
	}
	for i := range oldRes.PerProc {
		if oldRes.PerProc[i] != newRes.PerProc[i] {
			t.Fatalf("PerProc[%d]: rendezvous=%d dispatch=%d", i, oldRes.PerProc[i], newRes.PerProc[i])
		}
		if oldRes.WaitSteps[i] != newRes.WaitSteps[i] {
			t.Fatalf("WaitSteps[%d]: rendezvous=%d dispatch=%d", i, oldRes.WaitSteps[i], newRes.WaitSteps[i])
		}
		if oldRes.Finished[i] != newRes.Finished[i] {
			t.Fatalf("Finished[%d]: rendezvous=%v dispatch=%v", i, oldRes.Finished[i], newRes.Finished[i])
		}
	}
}

// equivBodies are process bodies covering the interesting completion shapes:
// uniform work, skewed work, RNG-dependent work, and an immediate return that
// exercises the finished-before-first-Step path.
var equivBodies = []struct {
	name string
	body func(*Proc)
}{
	{"uniform", func(p *Proc) {
		for i := 0; i < 120; i++ {
			p.Step()
		}
	}},
	{"skewed", func(p *Proc) {
		for i := 0; i < 30*(p.ID()+1); i++ {
			p.Step()
		}
	}},
	{"rng", func(p *Proc) {
		for i := 0; i < 60+p.Rand().Intn(80); i++ {
			p.Step()
		}
	}},
	{"early-exit", func(p *Proc) {
		if p.ID() == 0 {
			return // finishes without ever stepping
		}
		for i := 0; i < 90; i++ {
			p.Step()
		}
	}},
}

// equivAdversaries constructs each adversary family fresh per run.
var equivAdversaries = []struct {
	name string
	mk   func(n int, seed int64) Adversary
}{
	{"round-robin", func(n int, seed int64) Adversary { return NewRoundRobin() }},
	{"random", func(n int, seed int64) Adversary { return NewRandom(seed) }},
	{"lagger", func(n int, seed int64) Adversary { return NewLagger(1, 3, seed) }},
	{"quantum", func(n int, seed int64) Adversary { return NewQuantum(7) }},
	{"pct", func(n int, seed int64) Adversary { return NewPCT(n, 2000, 3, seed) }},
	{"crash", func(n int, seed int64) Adversary {
		return NewCrash(NewRandom(seed), map[int]int64{0: 40})
	}},
}

func TestEnginesByteIdenticalAcrossSweep(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8} {
		for _, adv := range equivAdversaries {
			for _, b := range equivBodies {
				for seed := int64(1); seed <= 5; seed++ {
					n, adv, b, seed := n, adv, b, seed
					name := fmt.Sprintf("n=%d/%s/%s/seed=%d", n, adv.name, b.name, seed)
					t.Run(name, func(t *testing.T) {
						assertEnginesAgree(t, func() Config {
							return Config{N: n, Seed: seed, Adversary: adv.mk(n, seed)}
						}, b.body)
					})
				}
			}
		}
	}
}

func TestEnginesAgreeOnStepBudget(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			assertEnginesAgree(t, func() Config {
				return Config{N: 4, Seed: seed, Adversary: NewRandom(seed), MaxSteps: 123}
			}, func(p *Proc) {
				for i := 0; i < 1000; i++ {
					p.Step()
				}
			})
		})
	}
}

func TestEnginesAgreeOnStall(t *testing.T) {
	// Crash every process mid-run: the adversary eventually returns -1 and
	// both engines must stall identically, with the same survivors.
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			assertEnginesAgree(t, func() Config {
				crash := NewCrash(NewRandom(seed), map[int]int64{0: 30, 1: 60, 2: 90, 3: 120})
				return Config{N: 4, Seed: seed, Adversary: crash}
			}, func(p *Proc) {
				for i := 0; i < 500; i++ {
					p.Step()
				}
			})
		})
	}
}

func TestDispatchEngineCoalescesWithoutParking(t *testing.T) {
	// A quantum adversary grants runs of steps to one process; the dispatch
	// engine must execute those runs via self-picks (plain returns). We can't
	// observe parks directly, but the grant sequence proves coalescing is
	// correct and the engine sweep above proves it is equivalent; here we pin
	// the run structure itself: with quantum q, grants come in blocks of q.
	const q = 5
	var grants []grantRec
	_, err := Run(Config{
		N:         3,
		Adversary: NewQuantum(q),
		OnStep: func(pid int, step int64) {
			grants = append(grants, grantRec{pid, step})
		},
	}, func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Step()
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	for i := 0; i+q <= len(grants); i += q {
		for j := 1; j < q; j++ {
			if grants[i+j].pid != grants[i].pid {
				t.Fatalf("grant block at %d not coalesced: %v", i, grants[i:i+q])
			}
		}
	}
}

// benchBody spins a fixed number of steps per process — the pure scheduler
// overhead benchmark, no algorithm work at all.
func benchBody(steps int) func(*Proc) {
	return func(p *Proc) {
		for i := 0; i < steps; i++ {
			p.Step()
		}
	}
}

func benchEngine(b *testing.B, rendezvous bool, adv func(n int, seed int64) Adversary) {
	const n, steps = 4, 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		_, err := Run(Config{
			N:          n,
			Seed:       seed,
			Adversary:  adv(n, seed),
			Rendezvous: rendezvous,
		}, benchBody(steps))
		if err != nil {
			b.Fatalf("run failed: %v", err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.N)*float64(n*steps)/b.Elapsed().Seconds(), "steps/s")
}

func BenchmarkDispatchRoundRobin(b *testing.B) {
	benchEngine(b, false, func(n int, seed int64) Adversary { return NewRoundRobin() })
}

func BenchmarkRendezvousRoundRobin(b *testing.B) {
	benchEngine(b, true, func(n int, seed int64) Adversary { return NewRoundRobin() })
}

func BenchmarkDispatchRandom(b *testing.B) {
	benchEngine(b, false, func(n int, seed int64) Adversary { return NewRandom(seed) })
}

func BenchmarkRendezvousRandom(b *testing.B) {
	benchEngine(b, true, func(n int, seed int64) Adversary { return NewRandom(seed) })
}

func BenchmarkDispatchQuantum(b *testing.B) {
	benchEngine(b, false, func(n int, seed int64) Adversary { return NewQuantum(8) })
}

func BenchmarkRendezvousQuantum(b *testing.B) {
	benchEngine(b, true, func(n int, seed int64) Adversary { return NewQuantum(8) })
}
