package sched

import (
	"fmt"
	"sync/atomic"
)

// This file defines the commutation classes behind the commuting-dispatch
// engine (see commute.go and DESIGN.md §16). Every atomic step either
// declares the single shared-memory cell it is about to touch — a Footprint —
// or stays undeclared. Two declared steps commute when they cannot observe
// each other: they touch distinct cells, or both only read the same cell.
// Undeclared steps commute with nothing, so any step the register layer has
// not been taught about degrades safely to fully sequential dispatch.

// Footprint declares the shared-memory cell a process's next atomic step will
// touch and whether it writes it. The zero Footprint is "undeclared": the
// step's effect is unknown and it conflicts with every other step.
type Footprint struct {
	Key   int64 // register identity from NewFootprintKey; 0 = undeclared
	Write bool
}

// Declared reports whether the footprint names a register.
func (f Footprint) Declared() bool { return f.Key != 0 }

// fpKeys allocates register identities. Key 0 is reserved for "undeclared".
var fpKeys atomic.Int64

// NewFootprintKey returns a fresh process-wide unique register identity.
// Register implementations call it once per cell at construction time.
func NewFootprintKey() int64 { return fpKeys.Add(1) }

// Commutes reports whether two steps with footprints a and b may be admitted
// to the same commuting grant set: both must be declared, and they must
// either touch distinct registers or both read the same one. Read/write and
// write/write pairs on one cell do not commute — their serialization order is
// observable.
func Commutes(a, b Footprint) bool {
	if !a.Declared() || !b.Declared() {
		return false
	}
	return a.Key != b.Key || (!a.Write && !b.Write)
}

// VerifyCommutingSet is the commutation-class checker: it re-validates an
// admitted grant set against the pairwise Commutes relation and returns an
// error naming the first conflicting pair. The commuting engine runs it on
// every batch it forms (O(k²), k ≤ n), so a bug in batch formation can never
// silently admit a conflicting pair; the FuzzCommutingGrant target drives the
// same checker over random footprint sets.
func VerifyCommutingSet(members []int, fps []Footprint) error {
	for x := 0; x < len(members); x++ {
		for y := x + 1; y < len(members); y++ {
			a, b := members[x], members[y]
			if !Commutes(fps[a], fps[b]) {
				return fmt.Errorf("sched: steps of pids %d and %d do not commute (%+v vs %+v)",
					a, b, fps[a], fps[b])
			}
		}
	}
	return nil
}

// BuildCommutingSet forms one batch's grant set: the adversary-picked leader
// first, then every eligible candidate (candidates is sorted ascending, so
// admission order is deterministic) whose declared footprint commutes with
// every member admitted so far. The leader is always admitted — even with an
// undeclared footprint, in which case the set stays a singleton — so every
// batch makes progress. out is reused as the backing slice.
func BuildCommutingSet(leader int, candidates []int, fps []Footprint, eligible func(pid int) bool, out []int) []int {
	out = append(out[:0], leader)
	if eligible == nil {
		return out
	}
	for _, pid := range candidates {
		if pid == leader || !fps[pid].Declared() || !eligible(pid) {
			continue
		}
		ok := true
		for _, m := range out {
			if !Commutes(fps[pid], fps[m]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, pid)
		}
	}
	return out
}

// Extender is an optional Adversary capability consulted by the commuting
// engine. Eligible reports whether pid may receive engine-chosen grants at
// the given global step count: admission to a commuting batch behind the
// adversary's leader pick, and run-coalescing extensions of a granted step.
// Adversaries whose semantics forbid granting some process (a crashed pid, a
// lagger's victim) return false for it; adversaries that do not implement
// Extender get strictly sequential dispatch (singleton batches, no
// extensions), which preserves their exact grant sequence.
type Extender interface {
	Eligible(pid int, step int64) bool
}
