package sched

import "testing"

// FuzzCommutingGrant drives batch formation over fuzzer-chosen footprint
// tables and asserts the safety property the commuting engine rests on: the
// checker never admits a pair of steps with overlapping register footprints
// (same key with at least one write, or any undeclared non-leader step).
func FuzzCommutingGrant(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(0))
	f.Add([]byte{1, 1, 1, 1}, uint8(2))
	f.Add([]byte{0x80, 0x81, 0x02, 0x83, 0x04}, uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, leaderByte uint8) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		n := len(raw)
		if n == 0 {
			return
		}
		// One byte per process: low 7 bits pick the key (0 = undeclared, a
		// small key space to force collisions), high bit is the write flag.
		fps := make([]Footprint, n)
		cands := make([]int, n)
		for i, b := range raw {
			fps[i] = Footprint{Key: int64(b & 0x7F % 5), Write: b&0x80 != 0}
			cands[i] = i
		}
		leader := int(leaderByte) % n
		set := BuildCommutingSet(leader, cands, fps, func(int) bool { return true }, nil)
		if len(set) == 0 || set[0] != leader {
			t.Fatalf("leader %d not first in %v", leader, set)
		}
		if err := VerifyCommutingSet(set, fps); err != nil {
			t.Fatalf("checker rejected its own formed set %v: %v", set, err)
		}
		seen := make(map[int]bool, len(set))
		for x, a := range set {
			if seen[a] {
				t.Fatalf("pid %d admitted twice in %v", a, set)
			}
			seen[a] = true
			if a != leader && !fps[a].Declared() {
				t.Fatalf("undeclared pid %d admitted as non-leader in %v", a, set)
			}
			for _, b := range set[x+1:] {
				fa, fb := fps[a], fps[b]
				if fa.Declared() && fb.Declared() && fa.Key == fb.Key && (fa.Write || fb.Write) {
					t.Fatalf("overlapping footprints admitted: pids %d,%d (%+v vs %+v) in %v",
						a, b, fa, fb, set)
				}
			}
		}
	})
}
