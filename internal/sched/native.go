package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
	"github.com/dsrepro/consensus/internal/pad"
)

// NativeOptions configures the native substrate's fault injection. The zero
// value is a plain free-for-all: every process runs at full speed until it
// finishes or the step budget trips.
//
// The simulated scheduler's adversary cannot be reproduced natively — the Go
// runtime picks the interleaving — so the fault matrix is emulated at the
// step gate instead: crashes stop a process at a global step count, laggers
// are slowed by forced yields, and randomized preemption injects scheduling
// points the runtime would otherwise elide on spin-heavy sections.
type NativeOptions struct {
	// CrashAt stops each listed process permanently once the global step
	// clock reaches the given value, mirroring Schedule.CrashAt: the process
	// never takes another step and the run ends with ErrStalled (unless the
	// budget trips first), exactly like the simulated crash adversary.
	CrashAt map[int]int64

	// LaggerPeriod > 0 starves process LaggerVictim: the victim yields the
	// processor LaggerPeriod times before every step, the native analogue of
	// the simulated lagger granting it one step per period.
	LaggerVictim int
	LaggerPeriod int

	// PreemptEvery > 0 makes every process yield before a step with
	// probability 1/PreemptEvery, drawn from a per-process generator seeded
	// by PreemptSeed. Used by the stress suite to force interleavings that
	// a quiet runtime (especially GOMAXPROCS=1) would never produce.
	// Preemption draws never touch Proc.Rand, so protocol coin flips are
	// unaffected.
	PreemptEvery int
	PreemptSeed  int64
}

// nativeGate implements gate with no arbiter: a step is a fetch-add on a
// padded global clock plus halt/crash checks. Processes are never parked —
// teardown happens by panicking haltSignal out of the next Step call, which
// every live process reaches (the protocols are wait-free loops of steps).
type nativeGate struct {
	clock    pad.Int64
	halted   atomic.Bool // set once: budget tripped, all steppers unwind
	budget   atomic.Bool // the halt was the step budget (vs a stall)
	maxSteps int64

	crashAt              []int64 // per-pid crash step, 0 = never; nil = no crashes
	lagVictim, lagPeriod int
	preemptEvery         uint64
	preempt              []pad.Int64 // per-pid xorshift state (padded: hot path)
}

func (g *nativeGate) now() int64 { return g.clock.Load() }

func (g *nativeGate) step(p *Proc) {
	if g.halted.Load() {
		panic(haltSignal{})
	}
	if g.crashAt != nil {
		if c := g.crashAt[p.id]; c > 0 && g.clock.Load() >= c {
			panic(haltSignal{})
		}
	}
	if g.lagPeriod > 0 && p.id == g.lagVictim {
		for i := 0; i < g.lagPeriod; i++ {
			runtime.Gosched()
		}
	}
	if g.preemptEvery > 0 {
		x := uint64(g.preempt[p.id].Load())
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		g.preempt[p.id].Store(int64(x))
		if x%g.preemptEvery == 0 {
			runtime.Gosched()
		}
	}
	if t := g.clock.Add(1); g.maxSteps > 0 && t > g.maxSteps {
		g.halted.Store(true)
		g.budget.Store(true)
		panic(haltSignal{})
	}
}

// nativeSubstrate runs each process body as a plain goroutine against the
// registers' lock-free storage. See DESIGN.md §14.
type nativeSubstrate struct {
	opts NativeOptions
}

// NewNative returns the native-hardware substrate: n real goroutines, no
// step arbiter, the runtime scheduler as the adversary. Determinism is
// forfeited — equal seeds reproduce each process's private coins but not the
// interleaving — so correctness under this substrate is checked online by
// the audit monitor rather than by trace replay.
func NewNative(opts NativeOptions) Substrate { return &nativeSubstrate{opts: opts} }

func (s *nativeSubstrate) Name() string          { return "native" }
func (s *nativeSubstrate) NativeRegisters() bool { return true }

// Run implements Substrate. Config.Adversary and Config.OnStep are ignored:
// there is no grant sequence to pick or observe. Result.WaitSteps is zero —
// nothing ever waits in a queue — and Result.Steps can overshoot MaxSteps by
// up to one step per process (each in-flight stepper learns of the halt from
// its own clock increment).
func (s *nativeSubstrate) Run(cfg Config, body func(*Proc)) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("sched: invalid N=%d", cfg.N)
	}
	g := &nativeGate{
		maxSteps:     cfg.MaxSteps,
		lagVictim:    s.opts.LaggerVictim,
		lagPeriod:    s.opts.LaggerPeriod,
		preemptEvery: uint64(max(s.opts.PreemptEvery, 0)),
	}
	if len(s.opts.CrashAt) > 0 {
		g.crashAt = make([]int64, cfg.N)
		for pid, step := range s.opts.CrashAt {
			if pid >= 0 && pid < cfg.N {
				g.crashAt[pid] = step
			}
		}
	}
	if g.preemptEvery > 0 {
		g.preempt = make([]pad.Int64, cfg.N)
		for i := range g.preempt {
			// Seed each lane non-zero; xorshift has a zero fixed point.
			g.preempt[i].Store(s.opts.PreemptSeed ^ int64(i+1)*0x7E3779B97F4A7C15 | 1)
		}
	}

	procs := make([]*Proc, cfg.N)
	finished := make([]bool, cfg.N)
	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		p := newProc(i, cfg.Seed, g)
		procs[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(haltSignal); !ok {
						panic(rec) // real bug in the algorithm body: propagate
					}
					// Crash or budget teardown: the process stays unfinished.
				}
			}()
			body(p)
			finished[p.id] = true
		}()
	}
	wg.Wait()

	res := Result{
		Steps:     g.clock.Load(),
		PerProc:   make([]int64, cfg.N),
		WaitSteps: make([]int64, cfg.N),
		Finished:  finished,
	}
	for i, p := range procs {
		res.PerProc[i] = p.steps
	}
	if cfg.Sink != nil {
		cfg.Sink.CountN(obs.SchedGrant, res.Steps)
	}
	if g.budget.Load() {
		return res, ErrStepBudget
	}
	for _, f := range finished {
		if !f {
			// Only crashes leave a process unfinished without a budget trip,
			// matching the simulated crash adversary's ErrStalled.
			return res, ErrStalled
		}
	}
	return res, nil
}
