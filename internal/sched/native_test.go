package sched

import (
	"errors"
	"sync/atomic"
	"testing"
)

// stepper returns a body that performs k atomic steps, optionally spinning
// forever (k < 0) until torn down.
func stepper(k int, total *atomic.Int64) func(*Proc) {
	return func(p *Proc) {
		for i := 0; k < 0 || i < k; i++ {
			p.Step()
			if total != nil {
				total.Add(1)
			}
		}
	}
}

func TestNativeRunCompletes(t *testing.T) {
	const n, k = 4, 100
	var total atomic.Int64
	res, err := NewNative(NativeOptions{}).Run(Config{N: n, Seed: 7}, stepper(k, &total))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != n*k {
		t.Fatalf("Steps = %d, want %d", res.Steps, n*k)
	}
	if total.Load() != n*k {
		t.Fatalf("bodies performed %d steps, want %d", total.Load(), n*k)
	}
	for i := 0; i < n; i++ {
		if res.PerProc[i] != k {
			t.Fatalf("PerProc[%d] = %d, want %d", i, res.PerProc[i], k)
		}
		if !res.Finished[i] {
			t.Fatalf("Finished[%d] = false", i)
		}
		if res.WaitSteps[i] != 0 {
			t.Fatalf("WaitSteps[%d] = %d, want 0 (no grant queue natively)", i, res.WaitSteps[i])
		}
	}
}

func TestNativeStepBudget(t *testing.T) {
	res, err := NewNative(NativeOptions{}).Run(Config{N: 3, Seed: 1, MaxSteps: 500}, stepper(-1, nil))
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	for i, f := range res.Finished {
		if f {
			t.Fatalf("Finished[%d] = true for a spinning body", i)
		}
	}
	// Each in-flight stepper can overshoot by one clock tick before it
	// observes the halt.
	if res.Steps < 500 || res.Steps > 500+3 {
		t.Fatalf("Steps = %d, want 500..503", res.Steps)
	}
}

func TestNativeCrashStallsVictim(t *testing.T) {
	const n, k = 3, 200
	res, err := NewNative(NativeOptions{CrashAt: map[int]int64{1: 5}}).
		Run(Config{N: n, Seed: 3}, stepper(k, nil))
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if res.Finished[1] {
		t.Fatal("crashed process reported finished")
	}
	if !res.Finished[0] || !res.Finished[2] {
		t.Fatalf("survivors not finished: %v", res.Finished)
	}
	if res.PerProc[1] >= k {
		t.Fatalf("victim performed all %d steps despite crashing", k)
	}
}

func TestNativeLaggerAndPreemptComplete(t *testing.T) {
	res, err := NewNative(NativeOptions{
		LaggerVictim: 0, LaggerPeriod: 4,
		PreemptEvery: 3, PreemptSeed: 99,
	}).Run(Config{N: 4, Seed: 11}, stepper(50, nil))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != 4*50 {
		t.Fatalf("Steps = %d, want %d", res.Steps, 4*50)
	}
}

func TestNativeSeedReproducesPrivateCoins(t *testing.T) {
	// Interleavings are nondeterministic, but each process's private random
	// stream must still derive from (seed, pid) exactly as on the simulated
	// substrate.
	draw := func(sub Substrate) [4][3]int64 {
		var got [4][3]int64
		_, err := sub.Run(Config{N: 4, Seed: 42}, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Step()
				got[p.ID()][i] = p.Rand().Int63()
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return got
	}
	if draw(NewNative(NativeOptions{})) != draw(Simulated()) {
		t.Fatal("per-process random streams differ across substrates for equal seeds")
	}
}

func TestSubstrateRegistry(t *testing.T) {
	names := SubstrateNames()
	want := map[string]bool{"simulated": false, "native": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("substrate %q not registered (have %v)", n, names)
		}
	}
	for _, name := range names {
		sub, err := NewSubstrate(name)
		if err != nil {
			t.Fatalf("NewSubstrate(%q): %v", name, err)
		}
		if sub.Name() != name {
			t.Fatalf("NewSubstrate(%q).Name() = %q", name, sub.Name())
		}
	}
	if _, err := NewSubstrate("no-such-substrate"); err == nil {
		t.Fatal("NewSubstrate accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterSubstrate("simulated", Simulated)
}

func TestSimulatedSubstrateMatchesRun(t *testing.T) {
	body := func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Step()
			p.Rand().Int63()
		}
	}
	direct, err := Run(Config{N: 3, Seed: 5}, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	viaSub, err := Simulated().Run(Config{N: 3, Seed: 5}, body)
	if err != nil {
		t.Fatalf("Simulated().Run: %v", err)
	}
	if direct.Steps != viaSub.Steps {
		t.Fatalf("Steps differ: %d vs %d", direct.Steps, viaSub.Steps)
	}
	for i := range direct.PerProc {
		if direct.PerProc[i] != viaSub.PerProc[i] {
			t.Fatalf("PerProc[%d] differ: %d vs %d", i, direct.PerProc[i], viaSub.PerProc[i])
		}
	}
}
