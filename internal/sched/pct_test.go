package sched

import (
	"sync"
	"testing"
)

func TestPCTPrefersOneProcessBetweenChangePoints(t *testing.T) {
	// With depth 1 (no change points) the highest-priority process runs
	// whenever it is waiting: in a run where all processes loop forever, one
	// process should take the overwhelming majority of steps.
	counts := make([]int64, 3)
	var mu sync.Mutex
	_, _ = Run(Config{N: 3, Seed: 2, MaxSteps: 3000, Adversary: NewPCT(3, 3000, 1, 7)}, func(p *Proc) {
		for {
			p.Step()
			mu.Lock()
			counts[p.ID()]++
			mu.Unlock()
		}
	})
	max := counts[0]
	for _, c := range counts[1:] {
		if c > max {
			max = c
		}
	}
	if max < 2900 {
		t.Fatalf("PCT depth 1 did not dominate with one process: %v", counts)
	}
}

func TestPCTChangePointsRotateLeadership(t *testing.T) {
	// With many change points, several processes should get solid step
	// shares.
	counts := make([]int64, 3)
	var mu sync.Mutex
	_, _ = Run(Config{N: 3, Seed: 2, MaxSteps: 3000, Adversary: NewPCT(3, 3000, 10, 7)}, func(p *Proc) {
		for {
			p.Step()
			mu.Lock()
			counts[p.ID()]++
			mu.Unlock()
		}
	})
	active := 0
	for _, c := range counts {
		if c > 100 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("PCT with 10 change points kept leadership static: %v", counts)
	}
}

func TestPCTIsDeterministicPerSeed(t *testing.T) {
	trace := func(seed int64) []int {
		var order []int
		var mu sync.Mutex
		_, _ = Run(Config{N: 4, Seed: 1, MaxSteps: 200, Adversary: NewPCT(4, 200, 3, seed)}, func(p *Proc) {
			for {
				p.Step()
				mu.Lock()
				order = append(order, p.ID())
				mu.Unlock()
			}
		})
		return order
	}
	a, b := trace(5), trace(5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestPCTParameterClamping(t *testing.T) {
	// Degenerate parameters must not panic.
	adv := NewPCT(2, 0, 0, 1)
	if got := adv.Next([]int{0, 1}, 0); got != 0 && got != 1 {
		t.Fatalf("Next = %d", got)
	}
}

func TestQuantumSlicesInBursts(t *testing.T) {
	var order []int
	var mu sync.Mutex
	_, _ = Run(Config{N: 3, Seed: 1, MaxSteps: 90, Adversary: NewQuantum(10)}, func(p *Proc) {
		for {
			p.Step()
			mu.Lock()
			order = append(order, p.ID())
			mu.Unlock()
		}
	})
	if len(order) != 90 {
		t.Fatalf("got %d steps", len(order))
	}
	// Expect runs of length 10 rotating 0,1,2,0,1,2,...
	for i := 0; i < 90; i++ {
		want := (i / 10) % 3
		if order[i] != want {
			t.Fatalf("step %d ran p%d, want p%d (order %v...)", i, order[i], want, order[:min(i+3, 90)])
		}
	}
}

func TestQuantumOneIsRoundRobin(t *testing.T) {
	var order []int
	var mu sync.Mutex
	_, _ = Run(Config{N: 2, Seed: 1, MaxSteps: 8, Adversary: NewQuantum(0)}, func(p *Proc) {
		for {
			p.Step()
			mu.Lock()
			order = append(order, p.ID())
			mu.Unlock()
		}
	})
	for i, pid := range order {
		if pid != i%2 {
			t.Fatalf("quantum 1 not round-robin: %v", order)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
