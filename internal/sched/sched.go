// Package sched provides a deterministic, adversarially scheduled execution
// substrate for asynchronous shared-memory algorithms.
//
// Every atomic shared-memory action performed by a simulated process must be
// preceded by a call to Proc.Step. Under the step scheduler, Step blocks the
// calling goroutine until an Adversary selects that process to move; at most
// one process is between Step and its atomic action at any time, so the
// interleaving of atomic actions is exactly the sequence of scheduler grants.
// This yields fully deterministic executions for a given (seed, adversary)
// pair, which is what the correctness and complexity experiments in this
// repository rely on.
//
// Two step engines implement that contract:
//
//   - The direct-dispatch engine (the default): scheduling runs inside the
//     process goroutines themselves. The goroutine holding the "token" (the
//     one process currently between a grant and its next Step) consults the
//     adversary inline at its next Step; when the adversary picks the token
//     holder again the grant coalesces into a plain function return — no
//     channel operation, no goroutine park — and consecutive grants to one
//     process execute as a run of steps. A cross-process handoff is a single
//     send on the target's one-slot grant channel. See DESIGN.md §11.
//   - The legacy rendezvous engine (Config.Rendezvous, test-only): a
//     dedicated scheduler goroutine mediates every step through an event
//     send plus a grant send — two channel crossings per atomic step. It is
//     retained solely so the equivalence suite can prove the two engines
//     produce byte-identical executions, and will be deleted once the parity
//     tests have soaked.
//
// The package also provides a free-running mode (see RunFree) in which Step is
// a no-op and processes race natively as goroutines; atomicity of individual
// register operations is then guaranteed by the register implementations
// themselves. Free-running mode is used for smoke tests that exercise real
// concurrency.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/dsrepro/consensus/internal/obs"
)

// Sentinel errors returned by Run.
var (
	// ErrStepBudget indicates the run exceeded Config.MaxSteps before every
	// live process finished.
	ErrStepBudget = errors.New("sched: step budget exceeded")

	// ErrStalled indicates the adversary refused to schedule any waiting
	// process (all remaining processes are crashed) while at least one
	// process had not finished.
	ErrStalled = errors.New("sched: execution stalled (all waiting processes crashed)")
)

// haltSignal is thrown (via panic) into a process goroutine blocked in Step
// when the run is being torn down (budget exceeded or stall). It is recovered
// by the goroutine wrapper inside Run and never escapes this package.
type haltSignal struct{}

// Proc is the handle a simulated process uses to interact with the scheduler.
// It carries the process identity, a private deterministic random source, and
// the gate through which every atomic step must pass. A Proc is owned by a
// single goroutine and must not be shared.
type Proc struct {
	id    int
	rng   *rand.Rand
	steps int64
	gate  gate

	// Pending footprint declaration for the next Step (see footprint.go).
	// Written by DeclareRead/DeclareWrite immediately before Step and consumed
	// by the commuting engine's gate; a step taken without a declaration has
	// fpKey 0 (undeclared) and is treated as conflicting with everything.
	fpKey   int64
	fpWrite bool
}

// gate abstracts how a Step is granted.
type gate interface {
	step(p *Proc)
	now() int64
}

// ID returns the process identifier in [0, n).
func (p *Proc) ID() int { return p.id }

// Rand returns the process-private deterministic random source. Algorithms
// must draw all randomness from here so runs are reproducible from the seed.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Steps reports how many atomic steps this process has performed so far.
func (p *Proc) Steps() int64 { return p.steps }

// Now returns the global step count at the time of the call. It is used by
// instrumentation (history recording) to timestamp operation intervals; it is
// not meant to be consulted by algorithm logic.
func (p *Proc) Now() int64 { return p.gate.now() }

// Step blocks until the scheduler grants this process its next atomic
// shared-memory action. Register implementations call it internally; most
// algorithm code never needs to call it directly.
func (p *Proc) Step() {
	p.gate.step(p)
	p.steps++
}

// DeclareRead declares that this process's next Step reads the register
// identified by key (from NewFootprintKey). Register implementations call it
// immediately before Step; the commuting engine uses the declaration to admit
// provably-commuting steps into one batch. Under every other gate the two
// field stores are the entire cost.
func (p *Proc) DeclareRead(key int64) { p.fpKey, p.fpWrite = key, false }

// DeclareWrite declares that this process's next Step writes the register
// identified by key. See DeclareRead.
func (p *Proc) DeclareWrite(key int64) { p.fpKey, p.fpWrite = key, true }

// newProc builds the per-process handle; the RNG derivation is shared by both
// engines and free-running mode so a seed reproduces identical private coins
// everywhere.
func newProc(id int, seed int64, g gate) *Proc {
	return &Proc{
		id:   id,
		rng:  rand.New(rand.NewSource(seed ^ int64(id)*0x7E3779B97F4A7C15 ^ 0x5DEECE66D)),
		gate: g,
	}
}

// Adversary chooses which waiting process performs the next atomic step.
type Adversary interface {
	// Next picks a pid from waiting (sorted ascending, always non-empty) to
	// schedule for the step numbered step (0-based). Returning a pid not in
	// waiting is a programming error and aborts the run. Returning -1 means
	// "refuse to schedule anyone" (every waiting process is considered
	// crashed); if no further process can finish, the run ends with
	// ErrStalled, and processes that already finished keep their results.
	Next(waiting []int, step int64) int
}

// Config configures a scheduled run.
type Config struct {
	// N is the number of processes. Must be >= 1.
	N int

	// Seed seeds the run: the adversary constructors in this package and the
	// per-process random sources are all derived from it.
	Seed int64

	// Adversary picks the interleaving. Nil defaults to round-robin.
	Adversary Adversary

	// MaxSteps bounds the total number of atomic steps; 0 means no bound.
	// Exceeding it aborts the run with ErrStepBudget.
	MaxSteps int64

	// OnStep, if non-nil, is invoked from the scheduling hot path after each
	// grant with the granted pid and the (1-based) global step count.
	// Invocations are serialized; keep the hook cheap.
	OnStep func(pid int, step int64)

	// Sink, if non-nil, receives scheduler-level accounting (sched.grant
	// counts) in the unified observability registry. Grants are counted, not
	// recorded as events — one event per atomic step would drown any trace.
	// The dispatch engine batches the counter updates (final totals are
	// exact; mid-run registry scrapes may lag by at most grantFlushBatch).
	Sink *obs.Sink

	// Rendezvous selects the legacy per-step rendezvous engine (a dedicated
	// scheduler goroutine, two channel crossings per step) instead of the
	// direct-dispatch engine. The two engines produce byte-identical
	// executions — identical grant sequences, step accounting, traces and
	// decisions per seed. The flag exists only so the equivalence tests can
	// prove that, and will be removed once the legacy gate is retired.
	Rendezvous bool

	// Commuting selects the commuting-dispatch engine (see commute.go): each
	// adversary consult opens a batch of pairwise-commuting steps and every
	// batch member receives a quantum-bounded run before the adversary is
	// consulted again. Executions remain sequential and deterministic, and
	// every produced schedule replays byte-identically through the sequential
	// dispatcher. Ignored when Rendezvous is set.
	Commuting bool

	// CommuteQuantum caps the run length one batch member may coalesce under
	// the commuting engine; <= 0 selects defaultCommuteQuantum. Only
	// meaningful with Commuting.
	CommuteQuantum int
}

// Result reports what happened during a run.
type Result struct {
	// Steps is the total number of atomic steps granted.
	Steps int64

	// PerProc is the number of steps each process performed.
	PerProc []int64

	// WaitSteps[i] is the contention accounting for process i: the total
	// number of global steps granted to *other* processes while i was parked
	// in Step waiting for a grant. A fairly scheduled process accumulates
	// about (n-1) wait steps per own step; a starved one accumulates far
	// more. Zero in free-running mode, which has no grant queue.
	WaitSteps []int64

	// Finished reports which processes ran their body to completion. A
	// process can be unfinished if it was crashed by the adversary or if the
	// run hit the step budget.
	Finished []bool
}

// grantFlushBatch is how many sched.grant counts the dispatch engine
// accumulates locally before flushing them into the registry in one atomic
// add. Totals are exact at run end; only mid-run scrapes can lag.
const grantFlushBatch = 256

// procSlot is one process's scheduling state in the dispatch engine, padded
// to a cache line so per-proc accounting updates in concurrent batch workers
// never false-share (each instance has its own slots, but instances from
// different workers can be allocated adjacently).
type procSlot struct {
	grant      chan bool     // one-slot token gate; false grant means halt
	arrived    chan struct{} // closed when the proc reaches its first Step (or finishes without one)
	enqueuedAt int64         // global step count when the proc last entered Step
	perProc    int64
	waitSteps  int64
	_          [32]byte
}

// dispatcher implements gate for the direct-dispatch engine. All mutable
// scheduling state is owned by whichever goroutine holds the token; token
// handoffs through the grant channels (and, at startup, the startPending
// counter) provide the happens-before edges, so no lock is needed anywhere
// on the step path.
type dispatcher struct {
	n        int
	adv      Adversary
	maxSteps int64
	onStep   func(pid int, step int64)
	sink     *obs.Sink

	slots    []procSlot
	live     []int  // sorted unfinished pids == the adversary's waiting set
	isLive   []bool // isLive[pid]: O(1) validation of adversary picks
	finished []bool

	steps         int64
	grantsPending int64
	clock         atomic.Int64
	startPending  atomic.Int32 // procs not yet at their first Step (or done)

	// doneMu serializes completions that race during startup (bodies that
	// finish before their first Step run concurrently). Post-startup it is
	// uncontended: only the token holder can complete.
	doneMu  sync.Mutex
	err     error
	badPick string // deferred adversary-misbehavior panic, rethrown by Run
}

// verdict is the outcome of one dispatch: who got the token.
type verdict uint8

const (
	grantedSelf  verdict = iota // caller keeps running, no park
	grantedOther                // token handed off, caller parks
	haltedRun                   // run torn down during this dispatch
)

func newDispatcher(cfg Config, adv Adversary) *dispatcher {
	d := &dispatcher{
		n:        cfg.N,
		adv:      adv,
		maxSteps: cfg.MaxSteps,
		onStep:   cfg.OnStep,
		sink:     cfg.Sink,
		slots:    make([]procSlot, cfg.N),
		live:     make([]int, cfg.N),
		isLive:   make([]bool, cfg.N),
		finished: make([]bool, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		d.slots[i].grant = make(chan bool, 1)
		d.slots[i].arrived = make(chan struct{})
		d.live[i] = i
		d.isLive[i] = true
	}
	d.startPending.Store(int32(cfg.N))
	return d
}

func (d *dispatcher) now() int64 { return d.clock.Load() }

// step implements gate. The caller holds the token (it is the one process
// running user code), so it consults the adversary for the next grant
// directly: a self-pick coalesces into a plain return, a cross-pick hands the
// token over with one channel send and parks.
func (d *dispatcher) step(p *Proc) {
	pid := p.id
	d.slots[pid].enqueuedAt = d.steps
	if p.steps == 0 {
		// First Step: register arrival. Until every process has reached its
		// first Step (or finished without one) there is no token; the last
		// arriver performs the run's first dispatch. The arrival signal lets
		// Run serialize body startup so pre-Step preamble code (which may
		// emit trace events) executes in pid order.
		close(d.slots[pid].arrived)
		if d.startPending.Add(-1) > 0 {
			d.park(pid)
			return
		}
	}
	switch d.dispatch(pid) {
	case grantedSelf:
		return // continue the run of steps without parking
	case haltedRun:
		panic(haltSignal{})
	default:
		d.park(pid)
	}
}

// park blocks until granted; a false grant tears the process down.
func (d *dispatcher) park(pid int) {
	if ok := <-d.slots[pid].grant; !ok {
		panic(haltSignal{})
	}
}

// dispatch consults the adversary and issues one grant, reporting who got the
// token. self is -1 when called from a completion (the finishing process
// cannot be picked: it has already been removed from the live set).
func (d *dispatcher) dispatch(self int) verdict {
	if d.maxSteps > 0 && d.steps >= d.maxSteps {
		d.halt(ErrStepBudget, self)
		return haltedRun
	}
	pick := d.adv.Next(d.live, d.steps)
	if pick == -1 {
		d.halt(ErrStalled, self)
		return haltedRun
	}
	if pick < 0 || pick >= d.n || !d.isLive[pick] {
		d.badPick = fmt.Sprintf("sched: adversary picked pid %d not in waiting set %v", pick, d.live)
		d.halt(ErrStalled, self)
		return haltedRun
	}
	s := &d.slots[pick]
	s.waitSteps += d.steps - s.enqueuedAt
	d.steps++
	s.perProc++
	d.clock.Store(d.steps)
	if d.sink != nil {
		d.grantsPending++
		if d.grantsPending >= grantFlushBatch {
			d.flushGrants()
		}
	}
	if d.onStep != nil {
		d.onStep(pick, d.steps)
	}
	if pick == self {
		return grantedSelf
	}
	s.grant <- true
	return grantedOther
}

// halt ends the run: every parked process is woken with a false grant and
// unwinds via haltSignal. self (when >= 0) is the in-flight dispatcher; it
// must not be woken — it learns of the halt from dispatch's verdict.
func (d *dispatcher) halt(err error, self int) {
	d.err = err
	d.flushGrants()
	for _, pid := range d.live {
		if pid != self {
			d.slots[pid].grant <- false
		}
	}
}

// flushGrants publishes the locally batched sched.grant count.
func (d *dispatcher) flushGrants() {
	if d.grantsPending > 0 {
		d.sink.CountN(obs.SchedGrant, d.grantsPending)
		d.grantsPending = 0
	}
}

// done records a completed body. A process that has taken at least one step
// holds the token and dispatches the next grant itself; one that finished
// before its first Step participates in startup registration instead.
func (d *dispatcher) done(p *Proc) {
	d.doneMu.Lock()
	defer d.doneMu.Unlock()
	pid := p.id
	if p.steps == 0 {
		// Finished without ever calling Step: this is the proc's arrival.
		close(d.slots[pid].arrived)
	}
	d.finished[pid] = true
	d.isLive[pid] = false
	for i, v := range d.live {
		if v == pid {
			d.live = append(d.live[:i], d.live[i+1:]...)
			break
		}
	}
	if len(d.live) == 0 {
		d.flushGrants()
		return
	}
	if p.steps == 0 && d.startPending.Add(-1) > 0 {
		// Finished before the first dispatch existed and other processes are
		// still on their way to it: nothing to dispatch yet.
		return
	}
	d.dispatch(-1)
}

// Run executes body once per process under the configured adversarial
// scheduler and blocks until every process has finished, crashed, or the step
// budget is exhausted. It returns a Result together with ErrStepBudget or
// ErrStalled when the run did not complete cleanly; the Result is valid in
// all cases.
func Run(cfg Config, body func(*Proc)) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("sched: invalid N=%d", cfg.N)
	}
	if cfg.Rendezvous {
		return runRendezvous(cfg, body)
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = NewRoundRobin()
	}
	if cfg.Commuting {
		return runCommuting(cfg, adv, body)
	}
	d := newDispatcher(cfg, adv)

	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		p := newProc(i, cfg.Seed, d)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(haltSignal); !ok {
						panic(rec) // real bug in the algorithm body: propagate
					}
					// Halt teardown: no completion bookkeeping.
				}
			}()
			body(p)
			d.done(p)
		}()
		// Serialized startup: wait for this body to reach its first Step (or
		// finish without one) before launching the next. Protocol preambles
		// run user code — and may emit trace events — before the scheduler
		// has any token to hand out; without this barrier their interleaving
		// would be wall-clock goroutine order and traces would not be
		// byte-deterministic. No grant is issued until every body has
		// arrived, so grant sequences and step counts are unchanged.
		<-d.slots[i].arrived
	}
	wg.Wait()
	d.flushGrants()
	if d.badPick != "" {
		panic(d.badPick)
	}
	res := Result{
		Steps:     d.steps,
		PerProc:   make([]int64, cfg.N),
		WaitSteps: make([]int64, cfg.N),
		Finished:  d.finished,
	}
	for i := range d.slots {
		res.PerProc[i] = d.slots[i].perProc
		res.WaitSteps[i] = d.slots[i].waitSteps
	}
	return res, d.err
}

// event is how process goroutines talk to the rendezvous scheduler loop.
type event struct {
	pid  int
	done bool // true: body returned (or halted); false: requesting a step
}

// runner implements gate for the legacy rendezvous engine.
type runner struct {
	events  chan event
	grants  []chan bool     // per-pid; false grant means halt
	arrived []chan struct{} // closed at the proc's first Step (or finish without one)
	clock   atomic.Int64
}

func (r *runner) step(p *Proc) {
	if p.steps == 0 {
		// Signal arrival before blocking on the (unbuffered) event channel:
		// during serialized startup the spawner is waiting on this signal and
		// the scheduler loop is not yet consuming events.
		close(r.arrived[p.id])
	}
	r.events <- event{pid: p.id}
	if ok := <-r.grants[p.id]; !ok {
		panic(haltSignal{})
	}
}

func (r *runner) now() int64 { return r.clock.Load() }

// runRendezvous is the legacy engine: a dedicated scheduler goroutine grants
// steps one event/grant rendezvous at a time. Kept behind Config.Rendezvous
// only for the engine-equivalence tests.
func runRendezvous(cfg Config, body func(*Proc)) (Result, error) {
	adv := cfg.Adversary
	if adv == nil {
		adv = NewRoundRobin()
	}

	r := &runner{
		events:  make(chan event),
		grants:  make([]chan bool, cfg.N),
		arrived: make([]chan struct{}, cfg.N),
	}
	res := Result{
		PerProc:   make([]int64, cfg.N),
		WaitSteps: make([]int64, cfg.N),
		Finished:  make([]bool, cfg.N),
	}
	// enqueuedAt[pid] is the global step count when pid last entered the
	// waiting set; the grant charges the elapsed steps as wait time.
	enqueuedAt := make([]int64, cfg.N)

	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		r.grants[i] = make(chan bool, 1)
		r.arrived[i] = make(chan struct{})
		p := newProc(i, cfg.Seed, r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(haltSignal); !ok {
						panic(rec) // real bug in the algorithm body: propagate
					}
					r.events <- event{pid: p.id, done: true}
				}
			}()
			body(p)
			if p.steps == 0 {
				// Never called Step: returning is this proc's arrival. Close
				// before the (blocking) done send so the spawner can proceed.
				close(r.arrived[p.id])
			}
			r.events <- event{pid: p.id, done: true}
		}()
		// Serialized startup, mirroring the dispatch engine: pre-Step
		// preamble code (which may emit trace events) executes in pid order,
		// keeping traces byte-deterministic. Grant order is unaffected — the
		// loop below only consults the adversary once all procs are parked.
		<-r.arrived[i]
	}

	// Scheduler loop. Invariant: inflight counts goroutines that are running
	// user code (granted, or not yet blocked for the first time). We only
	// consult the adversary when inflight == 0, i.e. every live process is
	// parked in Step, so the grant order fully determines the interleaving.
	var err error
	inflight := cfg.N
	live := cfg.N
	waiting := make([]int, 0, cfg.N)
	halted := false

	halt := func() {
		if halted {
			return
		}
		halted = true
		for _, pid := range waiting {
			r.grants[pid] <- false
		}
		inflight += len(waiting) // woken goroutines are now running their halt path
		waiting = waiting[:0]
	}

	for live > 0 {
		for inflight > 0 {
			ev := <-r.events
			if ev.done {
				live--
				inflight--
				if !halted {
					res.Finished[ev.pid] = true
				}
				continue
			}
			if halted {
				// Late Step request after halt began: refuse immediately. The
				// goroutine stays in flight; it will report done via its
				// halt-panic recovery path.
				r.grants[ev.pid] <- false
				continue
			}
			waiting = insertSorted(waiting, ev.pid)
			enqueuedAt[ev.pid] = res.Steps
			inflight--
		}
		if live == 0 {
			break
		}
		if halted {
			continue
		}
		if cfg.MaxSteps > 0 && res.Steps >= cfg.MaxSteps {
			err = ErrStepBudget
			halt()
			continue
		}
		pick := adv.Next(waiting, res.Steps)
		if pick == -1 {
			err = ErrStalled
			halt()
			continue
		}
		idx := indexOf(waiting, pick)
		if idx < 0 {
			panic(fmt.Sprintf("sched: adversary picked pid %d not in waiting set %v", pick, waiting))
		}
		waiting = append(waiting[:idx], waiting[idx+1:]...)
		res.WaitSteps[pick] += res.Steps - enqueuedAt[pick]
		res.Steps++
		res.PerProc[pick]++
		r.clock.Store(res.Steps)
		cfg.Sink.Count(obs.SchedGrant)
		if cfg.OnStep != nil {
			cfg.OnStep(pick, res.Steps)
		}
		inflight++
		r.grants[pick] <- true
	}
	wg.Wait()
	return res, err
}

// freeGate is a no-op gate for free-running (real concurrency) mode.
type freeGate struct{ clock atomic.Int64 }

func (g *freeGate) step(*Proc) { g.clock.Add(1) }
func (g *freeGate) now() int64 { return g.clock.Load() }

// RunFree executes body once per process as plain goroutines with no
// scheduling gate: processes race natively and atomicity relies on the
// register implementations. It blocks until all bodies return.
func RunFree(n int, seed int64, body func(*Proc)) Result {
	g := &freeGate{}
	var wg sync.WaitGroup
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = newProc(i, seed, g)
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			body(p)
		}(procs[i])
	}
	wg.Wait()
	res := Result{
		Steps:     g.clock.Load(),
		PerProc:   make([]int64, n),
		WaitSteps: make([]int64, n),
		Finished:  make([]bool, n),
	}
	for i, p := range procs {
		res.PerProc[i] = p.steps
		res.Finished[i] = true
	}
	return res
}

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
